(* The runtime eventlog: a fixed-capacity ring buffer of typed events
   behind a single static flag.

   Disabled (the default) the whole subsystem is one branch: [on ()]
   reads a bool ref, every instrumentation site is written
   [if Trace.on () then Trace.emit ...], and nothing allocates, so the
   frozen counter tables and pinned benchmark outputs are bit-identical
   with tracing compiled in.  Enabled, events go into a pre-allocated
   circular buffer; when it fills, the oldest events are overwritten
   (drop-oldest) and the loss is counted — both locally and, when the
   metrics registry is live, as the [trace_dropped_events] counter.

   Timestamps are virtual: sites either pass [~ts] from their own
   virtual time base, or default to the process-wide [Vclock]. *)

module Vclock = Retrofit_util.Vclock
module Metrics = Retrofit_metrics.Metrics

type t = {
  buf : Event.t array;
  capacity : int;
  mutable first : int; (* index of the oldest live event *)
  mutable len : int;
  mutable dropped : int;
}

let null_event = { Event.ts = 0; ev = Event.Mark { name = "" } }

let create ~capacity =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { buf = Array.make capacity null_event; capacity; first = 0; len = 0; dropped = 0 }

let length t = t.len

let dropped t = t.dropped

let capacity t = t.capacity

let add t e =
  if t.len < t.capacity then begin
    t.buf.((t.first + t.len) mod t.capacity) <- e;
    t.len <- t.len + 1
  end
  else begin
    (* full: overwrite the oldest slot and advance the window *)
    t.buf.(t.first) <- e;
    t.first <- (t.first + 1) mod t.capacity;
    t.dropped <- t.dropped + 1;
    if Metrics.on () then Metrics.inc "trace_dropped_events"
  end

let iter t f =
  for i = 0 to t.len - 1 do
    f t.buf.((t.first + i) mod t.capacity)
  done

let to_list t =
  let out = ref [] in
  iter t (fun e -> out := e :: !out);
  List.rev !out

(* ------------------------------------------------------------------ *)
(* The process-wide session *)

let enabled = ref false

let current : t option ref = ref None

let on () = !enabled

let default_capacity = 1 lsl 16

let start ?(capacity = default_capacity) () =
  let t = create ~capacity in
  current := Some t;
  enabled := true;
  t

let stop () =
  enabled := false;
  let t = !current in
  current := None;
  t

(* Trace for the duration of [f]; returns (result, eventlog).  Restores
   whatever session was live before, so scopes nest safely. *)
let scoped ?capacity f =
  let saved_enabled = !enabled and saved = !current in
  let t = start ?capacity () in
  let restore () =
    enabled := saved_enabled;
    current := saved
  in
  match f () with
  | v ->
      restore ();
      (v, t)
  | exception e ->
      restore ();
      raise e

let emit ?ts ev =
  match !current with
  | None -> ()
  | Some t ->
      let ts = match ts with Some x -> x | None -> Vclock.now () in
      add t { Event.ts; ev }

let events () = match !current with Some t -> to_list t | None -> []

let dropped_events () = match !current with Some t -> t.dropped | None -> 0
