(** The runtime eventlog: a fixed-capacity ring buffer of typed events
    behind one static flag.

    Disabled (the default), the entire subsystem is a single branch:
    instrumentation sites read [on ()] and skip both the event
    construction and the call, so nothing allocates and every pinned
    counter/table stays bit-identical.  Enabled, events land in a
    pre-allocated ring; overflow drops the {e oldest} events and counts
    the loss (also incrementing the [trace_dropped_events] metric when
    the metrics registry is enabled). *)

type t

(** {1 Ring buffer} *)

val create : capacity:int -> t
(** @raise Invalid_argument unless [capacity > 0]. *)

val add : t -> Event.t -> unit

val length : t -> int

val capacity : t -> int

val dropped : t -> int
(** Events overwritten because the ring was full. *)

val iter : t -> (Event.t -> unit) -> unit
(** Oldest surviving event first. *)

val to_list : t -> Event.t list

(** {1 The process-wide session} *)

val on : unit -> bool
(** The static flag every instrumentation site branches on. *)

val default_capacity : int
(** 65536 events. *)

val start : ?capacity:int -> unit -> t
(** Install a fresh ring as the current session and enable tracing. *)

val stop : unit -> t option
(** Disable tracing and detach the current ring (returned for export). *)

val scoped : ?capacity:int -> (unit -> 'a) -> 'a * t
(** Trace for the duration of the thunk; restores the previous session
    (enabled or not) afterwards, so scopes nest safely. *)

val emit : ?ts:int -> Event.ev -> unit
(** Append to the current session (no-op without one).  [ts] defaults
    to {!Retrofit_util.Vclock.now}.  Call sites on hot paths must guard
    with [on ()] so the disabled path does not even build the event. *)

val events : unit -> Event.t list

val dropped_events : unit -> int
