(** Eventlog exporters and the Chrome trace_event schema checker. *)

val to_chrome : ?dropped:int -> Event.t list -> string
(** Chrome trace_event "JSON Array Format" (loadable in chrome://tracing
    and Perfetto): a top-level object with a [traceEvents] array.
    Timestamps are virtual nanoseconds; no wall clock is consulted, so
    the bytes are a pure function of the events. *)

val of_trace_chrome : Trace.t -> string

val to_text : Event.t list -> string
(** Human-readable flat form: one line per event — timestamp, category,
    name, key=value args. *)

val of_trace_text : Trace.t -> string

(** {1 Schema checking} *)

type json =
  | J_null
  | J_bool of bool
  | J_int of int
  | J_float of float
  | J_string of string
  | J_list of json list
  | J_obj of (string * json) list

exception Bad_json of string

val parse_json : string -> json
(** Minimal self-contained JSON reader.  @raise Bad_json on malformed
    input. *)

val validate_chrome : string -> (int, string) result
(** Check the schema the trace viewers rely on: [traceEvents] is an
    array of objects, each with string [name]/[cat]/[ph], integer
    [ts]/[pid]/[tid], a known phase letter, and [dur] on complete
    events.  Returns the event count. *)
