lib/trace/event.ml:
