lib/trace/export.mli: Event Trace
