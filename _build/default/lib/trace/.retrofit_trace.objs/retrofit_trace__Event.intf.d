lib/trace/event.mli:
