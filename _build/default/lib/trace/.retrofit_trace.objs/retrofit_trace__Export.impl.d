lib/trace/export.ml: Buffer Char Event List Printf Result String Trace
