lib/trace/trace.ml: Array Event List Retrofit_metrics Retrofit_util
