(** ASCII table rendering for the benchmark reports.

    The benchmark harness prints each of the paper's tables and figures as
    a plain-text table; this module handles alignment and layout. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the rows out under the header with a
    separator rule.  Columns default to left alignment; [align] overrides
    per column (missing entries default to [Left]).  Rows shorter than the
    header are padded with empty cells. *)

val render_kv : (string * string) list -> string
(** Two-column key/value block without a header. *)

val bar_chart : ?width:int -> ?baseline:float -> (string * float) list -> string
(** A horizontal ASCII bar chart: one row per (label, value).  [baseline]
    (default 1.0) draws a reference mark, used for normalized-time figures
    like Fig 4.  [width] is the maximum bar width in characters. *)
