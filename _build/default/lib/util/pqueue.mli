(** Binary min-heap priority queue.

    The discrete-event network simulator orders events by timestamp with
    this queue.  Ties are broken by insertion order, which makes event
    execution deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val add : 'a t -> priority:int -> 'a -> unit
(** O(log n).  Smaller priorities are served first; equal priorities are
    served in insertion order. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the minimum (priority, value); [None] if empty. *)

val peek : 'a t -> (int * 'a) option

val clear : 'a t -> unit
