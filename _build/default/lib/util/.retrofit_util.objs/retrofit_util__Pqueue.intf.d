lib/util/pqueue.mli:
