lib/util/rng.mli:
