lib/util/histogram.mli:
