lib/util/stats.mli:
