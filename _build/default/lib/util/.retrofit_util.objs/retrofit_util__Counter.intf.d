lib/util/counter.mli:
