lib/util/vec.mli:
