lib/util/vclock.mli:
