lib/util/vclock.ml: Fun
