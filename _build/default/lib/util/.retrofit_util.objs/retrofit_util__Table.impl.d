lib/util/table.ml: Buffer Bytes Float List Printf Stdlib String
