lib/util/table.mli:
