(* A process-wide virtual clock, in integer nanoseconds.

   Deterministic subsystems (the fiber machine, the schedulers, the
   httpsim world) each keep their own notion of virtual time; this
   clock is the shared rendezvous the observability layer reads when an
   event site does not pass an explicit timestamp.  It never consults
   the host clock, so anything stamped from it is reproducible. *)

let clock = ref 0

let now () = !clock

let set v = if v < 0 then invalid_arg "Vclock.set: negative time" else clock := v

let advance n = if n > 0 then clock := !clock + n

let reset () = clock := 0

(* Run [f] against a clock temporarily rewound to [at] (default 0),
   restoring the previous reading afterwards — used by scoped
   experiments so one run's time does not leak into the next. *)
let scoped ?(at = 0) f =
  let saved = !clock in
  set at;
  Fun.protect ~finally:(fun () -> clock := saved) f
