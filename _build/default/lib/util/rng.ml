type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

(* splitmix64: used only to expand a small seed into the 256-bit xoshiro
   state, as recommended by the xoshiro authors. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let rotl x k = Int64.(logor (shift_left x k) (shift_right_logical x (64 - k)))

let bits64 t =
  let open Int64 in
  let result = mul (rotl (mul t.s1 5L) 7) 9L in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let seed = Int64.to_int (bits64 t) in
  create (seed lxor 0x6a09e667)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let mask = Int64.of_int max_int in
  let rec go () =
    let r = Int64.to_int (Int64.logand (bits64 t) mask) in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then go () else v
  in
  go ()

let float t bound =
  (* 53 random bits scaled into [0,1). *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  -.mean *. log1p (-.u)

let pareto t ~shape ~scale =
  let u = float t 1.0 in
  scale /. ((1.0 -. u) ** (1.0 /. shape))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
