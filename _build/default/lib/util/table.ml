type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render ?(align = []) ~header rows =
  let ncols = List.length header in
  let normalize row =
    let n = List.length row in
    if n >= ncols then row else row @ List.init (ncols - n) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row -> Stdlib.max acc (String.length (List.nth row i)))
          (String.length h) rows)
      header
  in
  let align_of i = match List.nth_opt align i with Some a -> a | None -> Left in
  let render_row row =
    row
    |> List.mapi (fun i cell -> pad (align_of i) (List.nth widths i) cell)
    |> String.concat "  "
    |> fun s -> String.trim (" " ^ s) |> fun s -> s
  in
  let rule = widths |> List.map (fun w -> String.make w '-') |> String.concat "  " in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (render_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let render_kv kvs =
  let width =
    List.fold_left (fun acc (k, _) -> Stdlib.max acc (String.length k)) 0 kvs
  in
  kvs
  |> List.map (fun (k, v) -> Printf.sprintf "%s : %s" (pad Left width k) v)
  |> String.concat "\n"
  |> fun s -> s ^ "\n"

let bar_chart ?(width = 50) ?(baseline = 1.0) entries =
  if entries = [] then ""
  else begin
    let max_value =
      List.fold_left (fun acc (_, v) -> Stdlib.max acc v) baseline entries
    in
    let label_width =
      List.fold_left (fun acc (l, _) -> Stdlib.max acc (String.length l)) 0 entries
    in
    let scale v = int_of_float (Float.round (v /. max_value *. float_of_int width)) in
    let baseline_col = scale baseline in
    let buf = Buffer.create 256 in
    List.iter
      (fun (label, v) ->
        let n = Stdlib.max 0 (scale v) in
        let bar = Bytes.make (Stdlib.max (n + 1) (baseline_col + 1)) ' ' in
        Bytes.fill bar 0 n '#';
        if baseline_col < Bytes.length bar then Bytes.set bar baseline_col '|';
        Buffer.add_string buf
          (Printf.sprintf "%s  %s %.3f\n" (pad Left label_width label)
             (Bytes.to_string bar) v))
      entries;
    Buffer.contents buf
  end
