(* Log-linear bucketing, following HdrHistogram: values are grouped into
   exponentially growing "buckets", each containing [sub_bucket_count]
   linear sub-buckets, so the representation error of a value is at most
   one part in [sub_bucket_count / 2]. *)

type t = {
  sig_figs : int;
  max_value : int;
  sub_bucket_count : int;
  sub_bucket_half_count : int;
  sub_bucket_mask : int;
  unit_magnitude : int;  (* always 0 here: unit precision of 1 *)
  counts : int array;
  mutable total : int;
  mutable saturated : int;
  mutable min_seen : int;
  mutable max_seen : int;
}

let bucket_index t v =
  (* Index of the exponential bucket holding [v]. *)
  let pow2ceiling =
    let x = v lor t.sub_bucket_mask in
    (* position of highest set bit, +1 *)
    let rec msb n acc = if n = 0 then acc else msb (n lsr 1) (acc + 1) in
    msb x 0
  in
  let sub_bucket_count_magnitude =
    let rec msb n acc = if n <= 1 then acc else msb (n lsr 1) (acc + 1) in
    msb t.sub_bucket_count 0
  in
  pow2ceiling - t.unit_magnitude - sub_bucket_count_magnitude

let sub_bucket_index t v bucket =
  v lsr (bucket + t.unit_magnitude)

let counts_index t v =
  let bucket = bucket_index t v in
  let sub = sub_bucket_index t v bucket in
  (* Buckets overlap in their lower half; the canonical flat index skips
     the redundant lower halves of buckets > 0. *)
  let base = (bucket + 1) * t.sub_bucket_half_count in
  base + (sub - t.sub_bucket_half_count)

let value_from_index t idx =
  let bucket = (idx / t.sub_bucket_half_count) - 1 in
  let sub = (idx mod t.sub_bucket_half_count) + t.sub_bucket_half_count in
  (* indices below one half-count decode bucket 0 exactly *)
  if bucket < 0 then (sub - t.sub_bucket_half_count) lsl t.unit_magnitude
  else sub lsl (bucket + t.unit_magnitude)

let create ?(significant_figures = 3) ~max_value () =
  if significant_figures < 1 || significant_figures > 5 then
    invalid_arg "Histogram.create: significant_figures must be in 1..5";
  if max_value < 2 then invalid_arg "Histogram.create: max_value must be >= 2";
  let largest_resolvable = 2 * int_of_float (10.0 ** float_of_int significant_figures) in
  let sub_bucket_count =
    let rec next_pow2 n p = if p >= n then p else next_pow2 n (p * 2) in
    next_pow2 largest_resolvable 2
  in
  let sub_bucket_half_count = sub_bucket_count / 2 in
  let t =
    {
      sig_figs = significant_figures;
      max_value;
      sub_bucket_count;
      sub_bucket_half_count;
      sub_bucket_mask = sub_bucket_count - 1;
      unit_magnitude = 0;
      counts = [||];
      total = 0;
      saturated = 0;
      min_seen = Stdlib.max_int;
      max_seen = 0;
    }
  in
  let buckets_needed =
    let rec go smallest n =
      if smallest > max_value then n else go (smallest * 2) (n + 1)
    in
    go sub_bucket_count 1
  in
  let counts_len = (buckets_needed + 1) * sub_bucket_half_count in
  { t with counts = Array.make counts_len 0 }

let record_n t v n =
  if v < 0 then invalid_arg "Histogram.record: negative value";
  if n < 0 then invalid_arg "Histogram.record_n: negative count";
  if n > 0 then begin
    let v =
      if v > t.max_value then begin
        t.saturated <- t.saturated + n;
        t.max_value
      end
      else v
    in
    let idx = counts_index t v in
    t.counts.(idx) <- t.counts.(idx) + n;
    t.total <- t.total + n;
    if v < t.min_seen then t.min_seen <- v;
    if v > t.max_seen then t.max_seen <- v
  end

let record t v = record_n t v 1

let count t = t.total

let saturated t = t.saturated

let min_value t = if t.total = 0 then 0 else t.min_seen

let max_recorded t = if t.total = 0 then 0 else t.max_seen

let value_at_percentile t p =
  if t.total = 0 then invalid_arg "Histogram.value_at_percentile: empty";
  if p <= 0.0 || p > 100.0 then
    invalid_arg "Histogram.value_at_percentile: p out of range";
  let target =
    let x = int_of_float (ceil (p /. 100.0 *. float_of_int t.total)) in
    Stdlib.max x 1
  in
  let acc = ref 0 in
  let result = ref t.max_seen in
  (try
     for i = 0 to Array.length t.counts - 1 do
       acc := !acc + t.counts.(i);
       if !acc >= target then begin
         result := value_from_index t i;
         raise Exit
       end
     done
   with Exit -> ());
  !result

let mean t =
  if t.total = 0 then 0.0
  else begin
    let sum = ref 0.0 in
    Array.iteri
      (fun i c ->
        if c > 0 then sum := !sum +. (float_of_int (value_from_index t i) *. float_of_int c))
      t.counts;
    !sum /. float_of_int t.total
  end

let merge_into ~dst src =
  if
    dst.sig_figs <> src.sig_figs
    || dst.max_value <> src.max_value
    || Array.length dst.counts <> Array.length src.counts
  then invalid_arg "Histogram.merge_into: parameter mismatch";
  Array.iteri (fun i c -> dst.counts.(i) <- dst.counts.(i) + c) src.counts;
  dst.total <- dst.total + src.total;
  dst.saturated <- dst.saturated + src.saturated;
  if src.total > 0 then begin
    if src.min_seen < dst.min_seen then dst.min_seen <- src.min_seen;
    if src.max_seen > dst.max_seen then dst.max_seen <- src.max_seen
  end

let copy t = { t with counts = Array.copy t.counts }

(* Non-destructive merge: a fresh histogram holding the union of both
   recording sets.  Aggregating per-fiber (or per-run) latency
   histograms into a registry snapshot goes through here. *)
let merge a b =
  let dst = copy a in
  merge_into ~dst b;
  dst

let add_hist = merge_into

(* The raw bucket counts, for property tests: merge must preserve the
   per-bucket sums exactly, not just the total. *)
let bucket_counts t = Array.copy t.counts
