let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty input")

(* Order statistics are meaningless with NaN in the sample (polymorphic
   compare even sorts it inconsistently); reject it up front. *)
let check_no_nan name xs =
  Array.iter (fun x -> if Float.is_nan x then invalid_arg (name ^ ": NaN input")) xs

let mean xs =
  check_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let geomean xs =
  check_nonempty "Stats.geomean" xs;
  let sum_logs =
    Array.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive entry";
        acc +. log x)
      0.0 xs
  in
  exp (sum_logs /. float_of_int (Array.length xs))

let stddev xs =
  check_nonempty "Stats.stddev" xs;
  let n = Array.length xs in
  if n = 1 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let percentile xs p =
  check_nonempty "Stats.percentile" xs;
  check_no_nan "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (* frac = 0 must return the order statistic exactly: interpolating
       would turn an infinite spread into 0 * inf = NaN *)
    if frac = 0.0 then sorted.(lo)
    else sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median xs = percentile xs 50.0

let min xs =
  check_nonempty "Stats.min" xs;
  check_no_nan "Stats.min" xs;
  Array.fold_left Float.min xs.(0) xs

let max xs =
  check_nonempty "Stats.max" xs;
  check_no_nan "Stats.max" xs;
  Array.fold_left Float.max xs.(0) xs

let normalize ~baseline xs =
  if Array.length baseline <> Array.length xs then
    invalid_arg "Stats.normalize: length mismatch";
  Array.map2
    (fun b x ->
      if b = 0.0 then invalid_arg "Stats.normalize: zero baseline";
      x /. b)
    baseline xs

let percent_diff ~baseline x =
  if baseline = 0.0 then invalid_arg "Stats.percent_diff: zero baseline";
  (x -. baseline) /. baseline *. 100.0

let slowdown ~baseline x =
  if baseline = 0.0 then invalid_arg "Stats.slowdown: zero baseline";
  x /. baseline
