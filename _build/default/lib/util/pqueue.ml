type 'a entry = { prio : int; seq : int; value : 'a }

type 'a t = { heap : 'a entry Vec.t; mutable next_seq : int }

let create () = { heap = Vec.create (); next_seq = 0 }

let length t = Vec.length t.heap

let is_empty t = Vec.length t.heap = 0

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let swap t i j =
  let x = Vec.get t.heap i in
  Vec.set t.heap i (Vec.get t.heap j);
  Vec.set t.heap j x

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less (Vec.get t.heap i) (Vec.get t.heap parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let n = Vec.length t.heap in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < n && less (Vec.get t.heap l) (Vec.get t.heap !smallest) then smallest := l;
  if r < n && less (Vec.get t.heap r) (Vec.get t.heap !smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let add t ~priority value =
  let entry = { prio = priority; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  Vec.push t.heap entry;
  sift_up t (Vec.length t.heap - 1)

let pop t =
  if is_empty t then None
  else begin
    let min = Vec.get t.heap 0 in
    let last = Vec.pop t.heap in
    if not (is_empty t) then begin
      Vec.set t.heap 0 last;
      sift_down t 0
    end;
    Some (min.prio, min.value)
  end

let peek t =
  if is_empty t then None
  else begin
    let min = Vec.get t.heap 0 in
    Some (min.prio, min.value)
  end

let clear t =
  Vec.clear t.heap;
  t.next_seq <- 0
