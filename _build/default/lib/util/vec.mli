(** Growable arrays.

    A ['a t] is a mutable sequence with amortised O(1) [push] at the end,
    O(1) random access, and O(1) [pop].  Used throughout the runtime model
    for operand stacks, frame tables and event queues. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [create ()] is an empty vector.  [capacity] pre-sizes the backing
    store; it does not affect [length]. *)

val of_list : 'a list -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get v i] is the [i]th element.  @raise Invalid_argument if [i] is out
    of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** [set v i x] replaces the [i]th element.  @raise Invalid_argument if
    [i] is out of bounds. *)

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a
(** Removes and returns the last element.  @raise Invalid_argument on an
    empty vector. *)

val top : 'a t -> 'a
(** The last element without removing it.  @raise Invalid_argument on an
    empty vector. *)

val clear : 'a t -> unit

val truncate : 'a t -> int -> unit
(** [truncate v n] drops elements so that [length v = n].
    @raise Invalid_argument if [n] exceeds the current length. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_list : 'a t -> 'a list

val to_array : 'a t -> 'a array

val map : ('a -> 'b) -> 'a t -> 'b t

val exists : ('a -> bool) -> 'a t -> bool

val copy : 'a t -> 'a t
