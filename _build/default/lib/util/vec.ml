type 'a t = { mutable data : 'a array; mutable len : int }

(* The backing array may contain stale slots beyond [len]; they are never
   exposed.  [Obj.magic 0] is only used as an inert filler for empty slots. *)
let dummy () : 'a = Obj.magic 0

let create ?(capacity = 8) () =
  { data = Array.make (max capacity 1) (dummy ()); len = 0 }

let length v = v.len

let is_empty v = v.len = 0

let check v i =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds (len %d)" i v.len)

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let ensure v n =
  if n > Array.length v.data then begin
    let cap = max n (2 * Array.length v.data) in
    let data = Array.make cap (dummy ()) in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push v x =
  ensure v (v.len + 1);
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop: empty";
  v.len <- v.len - 1;
  let x = v.data.(v.len) in
  v.data.(v.len) <- dummy ();
  x

let top v =
  if v.len = 0 then invalid_arg "Vec.top: empty";
  v.data.(v.len - 1)

let clear v =
  Array.fill v.data 0 v.len (dummy ());
  v.len <- 0

let truncate v n =
  if n < 0 || n > v.len then invalid_arg "Vec.truncate";
  Array.fill v.data n (v.len - n) (dummy ());
  v.len <- n

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v = List.init v.len (fun i -> v.data.(i))

let to_array v = Array.sub v.data 0 v.len

let of_list xs =
  let v = create ~capacity:(max 1 (List.length xs)) () in
  List.iter (push v) xs;
  v

let map f v =
  let w = create ~capacity:(max 1 v.len) () in
  iter (fun x -> push w (f x)) v;
  w

let exists p v =
  let rec go i = i < v.len && (p v.data.(i) || go (i + 1)) in
  go 0

let copy v = { data = Array.copy v.data; len = v.len }
