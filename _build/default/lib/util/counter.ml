type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 16

let cell t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t name r;
      r

let add t name n = cell t name := !(cell t name) + n

let incr t name = add t name 1

let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let reset t = Hashtbl.reset t

let to_list t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let diff a b =
  let names = Hashtbl.create 16 in
  Hashtbl.iter (fun k _ -> Hashtbl.replace names k ()) a;
  Hashtbl.iter (fun k _ -> Hashtbl.replace names k ()) b;
  Hashtbl.fold (fun k () acc -> k :: acc) names []
  |> List.sort String.compare
  |> List.filter_map (fun k ->
         let d = get a k - get b k in
         if d = 0 then None else Some (k, d))
