(** Deterministic pseudo-random number generation.

    All stochastic components of the reproduction (workload generators, the
    network simulator, property tests that need auxiliary randomness) draw
    from explicitly seeded generators so that every experiment is exactly
    repeatable.  The implementation is xoshiro256** seeded via splitmix64,
    the combination recommended by Blackman and Vigna. *)

type t

val create : int -> t
(** [create seed] is a fresh generator.  Equal seeds yield equal streams. *)

val split : t -> t
(** A new generator whose stream is independent of (but determined by) the
    parent's current state.  Advances the parent. *)

val bits64 : t -> int64
(** The next 64 uniformly random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  @raise Invalid_argument if
    [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** A draw from the exponential distribution with the given mean; used for
    Poisson arrival processes in the load generator. *)

val pareto : t -> shape:float -> scale:float -> float
(** A draw from the Pareto distribution; used for heavy-tailed service
    times. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
