(** Named monotonic counters.

    The fiber machine reports its costs (instructions executed, overflow
    checks, stack copies, mallocs, cache hits, fiber switches) through a
    counter set so that experiments can diff configurations. *)

type t

val create : unit -> t

val incr : t -> string -> unit

val add : t -> string -> int -> unit

val get : t -> string -> int
(** 0 for names never incremented. *)

val reset : t -> unit

val to_list : t -> (string * int) list
(** Sorted by name. *)

val diff : t -> t -> (string * int) list
(** [diff a b] is, for each name present in either, [get a n - get b n],
    omitting zero entries; sorted by name. *)
