(* Fannkuch-redux: permutation generation and prefix reversal;
   array-intensive integer code with small leaf helpers. *)

let name = "fannkuch"

let category = "numerical"

let default_size = 9  (* permutation width *)

let expected = Some 11629
(* checksum 8629 and max flips 30 for n = 9, encoded as
   |checksum| + 100 * maxflips = 8629 + 3000 *)

let functions =
  [
    Fn_meta.make "flip_count" Fn_meta.Leaf_small ~body_bytes:140;
    Fn_meta.make "next_perm" Fn_meta.Leaf_small ~body_bytes:150;
    Fn_meta.make "run" Fn_meta.Nonleaf ~body_bytes:220;
  ]

module Make (R : Runtime.RUNTIME) = struct
  let flip_count perm scratch =
    R.leaf_small ();
    Array.blit perm 0 scratch 0 (Array.length perm);
    let flips = ref 0 in
    while scratch.(0) <> 0 do
      let k = scratch.(0) in
      (* reverse scratch[0..k] *)
      let i = ref 0 and j = ref k in
      while !i < !j do
        let tmp = scratch.(!i) in
        scratch.(!i) <- scratch.(!j);
        scratch.(!j) <- tmp;
        incr i;
        decr j
      done;
      incr flips
    done;
    !flips

  (* Advance [perm] to the next permutation in fannkuch order using the
     count array; returns false when exhausted. *)
  let next_perm perm count =
    R.leaf_small ();
    let n = Array.length perm in
    let rec rotate i =
      if i >= n then false
      else begin
        let first = perm.(0) in
        for j = 0 to i - 1 do
          perm.(j) <- perm.(j + 1)
        done;
        perm.(i) <- first;
        count.(i) <- count.(i) - 1;
        if count.(i) > 0 then true
        else begin
          count.(i) <- i + 1;
          rotate (i + 1)
        end
      end
    in
    rotate 1

  let run ~size =
    R.nonleaf ();
    let n = max size 3 in
    let perm = Array.init n Fun.id in
    let scratch = Array.make n 0 in
    let count = Array.init n (fun i -> i + 1) in
    let checksum = ref 0 in
    let max_flips = ref 0 in
    let sign = ref 1 in
    let continue_ = ref true in
    while !continue_ do
      let flips = flip_count perm scratch in
      checksum := !checksum + (!sign * flips);
      if flips > !max_flips then max_flips := flips;
      sign := - !sign;
      continue_ := next_perm perm count
    done;
    abs !checksum + (100 * !max_flips)
end
