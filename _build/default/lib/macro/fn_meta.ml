type kind = Leaf_small | Leaf_mid | Leaf_big | Nonleaf

type t = { fn_name : string; kind : kind; body_bytes : int }

let make fn_name kind ~body_bytes =
  if body_bytes <= 0 then invalid_arg "Fn_meta.make: body_bytes must be positive";
  { fn_name; kind; body_bytes }

let frame_words_of_kind = function
  | Leaf_small -> 8
  | Leaf_mid -> 24
  | Leaf_big -> 48
  | Nonleaf -> 12

let checked ~red_zone kind =
  match red_zone with
  | None -> false
  | Some rz -> (
      match kind with
      | Nonleaf -> true
      | Leaf_small | Leaf_mid | Leaf_big -> frame_words_of_kind kind > rz)

let check_bytes = 12

let otss ~red_zone fns =
  List.fold_left
    (fun acc f ->
      acc + f.body_bytes + if checked ~red_zone f.kind then check_bytes else 0)
    0 fns

let checked_count ~red_zone fns =
  List.fold_left (fun acc f -> acc + if checked ~red_zone f.kind then 1 else 0) 0 fns
