(* K-nucleotide: count k-mer frequencies in generated DNA with a hash
   table — hashing and allocation heavy, as in the paper's suite. *)

let name = "knucleotide"

let category = "bioinformatics"

let default_size = 8_000

let expected = None

let functions =
  [
    Fn_meta.make "clean_sequence" Fn_meta.Nonleaf ~body_bytes:140;
    Fn_meta.make "count_kmers" Fn_meta.Nonleaf ~body_bytes:160;
    Fn_meta.make "top_count" Fn_meta.Nonleaf ~body_bytes:120;
    Fn_meta.make "run" Fn_meta.Nonleaf ~body_bytes:160;
  ]

module Make (R : Runtime.RUNTIME) = struct
  let clean_sequence raw =
    R.nonleaf ();
    let buf = Buffer.create (String.length raw) in
    String.iter
      (fun c ->
        match c with
        | 'a' .. 'z' -> Buffer.add_char buf (Char.uppercase_ascii c)
        | 'A' .. 'Z' -> Buffer.add_char buf c
        | _ -> ())
      raw;
    Buffer.contents buf

  let count_kmers seq k =
    R.nonleaf ();
    let counts = Hashtbl.create 1024 in
    for i = 0 to String.length seq - k do
      let kmer = String.sub seq i k in
      match Hashtbl.find_opt counts kmer with
      | Some r -> incr r
      | None -> Hashtbl.add counts kmer (ref 1)
    done;
    counts

  let top_count counts =
    R.nonleaf ();
    Hashtbl.fold
      (fun kmer r (best_k, best_n) ->
        if !r > best_n || (!r = best_n && kmer < best_k) then (kmer, !r)
        else (best_k, best_n))
      counts ("", 0)

  let run ~size =
    R.nonleaf ();
    let dna = W_fasta.make_dna ~size in
    let seq = clean_sequence dna in
    let acc = ref 0 in
    List.iter
      (fun k ->
        let counts = count_kmers seq k in
        let kmer, n = top_count counts in
        acc := !acc lxor Hashtbl.hash (kmer, n, Hashtbl.length counts))
      [ 1; 2; 3; 4; 6 ];
    !acc
end
