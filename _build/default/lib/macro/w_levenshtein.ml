(* Levenshtein distances over a word list: dynamic programming with a
   small leaf kernel, string-indexing heavy. *)

let name = "levenshtein"

let category = "text"

let default_size = 120  (* number of words *)

let expected = None

let functions =
  [
    Fn_meta.make "gen_words" Fn_meta.Nonleaf ~body_bytes:120;
    Fn_meta.make "distance" Fn_meta.Leaf_big ~body_bytes:220;
    Fn_meta.make "run" Fn_meta.Nonleaf ~body_bytes:110;
  ]

module Make (R : Runtime.RUNTIME) = struct
  let gen_words n =
    R.nonleaf ();
    let state = ref 24680 in
    List.init n (fun i ->
        let len = 4 + (i mod 9) in
        String.init len (fun _ ->
            state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
            Char.chr (Char.code 'a' + (!state mod 26))))

  let distance a b =
    R.leaf_big ();
    let la = String.length a and lb = String.length b in
    let prev = Array.init (lb + 1) Fun.id in
    let curr = Array.make (lb + 1) 0 in
    for i = 1 to la do
      curr.(0) <- i;
      for j = 1 to lb do
        let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
        curr.(j) <- min (min (curr.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit curr 0 prev 0 (lb + 1)
    done;
    prev.(lb)

  let run ~size =
    R.nonleaf ();
    let words = Array.of_list (gen_words size) in
    let n = Array.length words in
    let acc = ref 0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        acc := !acc + distance words.(i) words.(j)
      done
    done;
    !acc
end
