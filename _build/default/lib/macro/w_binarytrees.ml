(* Binary trees: allocation- and GC-heavy tree building and checking,
   with deep non-tail recursion — the shape the red zone targets. *)

let name = "binarytrees"

let category = "gc"

let default_size = 14  (* max tree depth *)

let expected = None

let functions =
  [
    Fn_meta.make "make_tree" Fn_meta.Nonleaf ~body_bytes:90;
    Fn_meta.make "check_tree" Fn_meta.Nonleaf ~body_bytes:70;
    Fn_meta.make "stretch" Fn_meta.Nonleaf ~body_bytes:60;
    Fn_meta.make "run" Fn_meta.Nonleaf ~body_bytes:200;
  ]

module Make (R : Runtime.RUNTIME) = struct
  type tree = Nil | Node of tree * tree

  let rec make_tree depth =
    R.nonleaf ();
    if depth = 0 then Node (Nil, Nil)
    else Node (make_tree (depth - 1), make_tree (depth - 1))

  let rec check_tree = function
    | Nil -> 0
    | Node (l, r) ->
        R.nonleaf ();
        1 + check_tree l + check_tree r

  let stretch depth =
    R.nonleaf ();
    check_tree (make_tree depth)

  let run ~size =
    R.nonleaf ();
    let max_depth = max (size + 1) 6 in
    let acc = ref (stretch (max_depth + 1)) in
    let long_lived = make_tree max_depth in
    let depth = ref 4 in
    while !depth <= max_depth do
      let iterations = 1 lsl (max_depth - !depth + 4) in
      let sum = ref 0 in
      for _ = 1 to iterations do
        sum := !sum + check_tree (make_tree !depth)
      done;
      acc := !acc lxor (!sum + !depth);
      depth := !depth + 2
    done;
    !acc lxor check_tree long_lived
end
