(* N-body: the Jovian-planet simulation from the benchmarks game.
   Numerical, loop-heavy, no allocation in the hot path. *)

let name = "nbody"

let category = "numerical"

let default_size = 150_000

let expected = None

let functions =
  [
    Fn_meta.make "advance" Fn_meta.Leaf_mid ~body_bytes:640;
    Fn_meta.make "energy" Fn_meta.Leaf_mid ~body_bytes:320;
    Fn_meta.make "offset_momentum" Fn_meta.Leaf_small ~body_bytes:120;
    Fn_meta.make "run" Fn_meta.Nonleaf ~body_bytes:160;
  ]

let solar_mass = 4.0 *. Float.pi *. Float.pi

let days_per_year = 365.24

module Make (R : Runtime.RUNTIME) = struct
  type body = {
    mutable x : float;
    mutable y : float;
    mutable z : float;
    mutable vx : float;
    mutable vy : float;
    mutable vz : float;
    mass : float;
  }

  let bodies () =
    [|
      { x = 0.; y = 0.; z = 0.; vx = 0.; vy = 0.; vz = 0.; mass = solar_mass };
      {
        x = 4.84143144246472090;
        y = -1.16032004402742839;
        z = -0.103622044471123109;
        vx = 0.00166007664274403694 *. days_per_year;
        vy = 0.00769901118419740425 *. days_per_year;
        vz = -0.0000690460016972063023 *. days_per_year;
        mass = 0.000954791938424326609 *. solar_mass;
      };
      {
        x = 8.34336671824457987;
        y = 4.12479856412430479;
        z = -0.403523417114321381;
        vx = -0.00276742510726862411 *. days_per_year;
        vy = 0.00499852801234917238 *. days_per_year;
        vz = 0.0000230417297573763929 *. days_per_year;
        mass = 0.000285885980666130812 *. solar_mass;
      };
      {
        x = 12.8943695621391310;
        y = -15.1111514016986312;
        z = -0.223307578892655734;
        vx = 0.00296460137564761618 *. days_per_year;
        vy = 0.00237847173959480950 *. days_per_year;
        vz = -0.0000296589568540237556 *. days_per_year;
        mass = 0.0000436624404335156298 *. solar_mass;
      };
      {
        x = 15.3796971148509165;
        y = -25.9193146099879641;
        z = 0.179258772950371181;
        vx = 0.00268067772490389322 *. days_per_year;
        vy = 0.00162824170038242295 *. days_per_year;
        vz = -0.0000951592254519715870 *. days_per_year;
        mass = 0.0000515138902046611451 *. solar_mass;
      };
    |]

  let advance bodies dt =
    R.leaf_mid ();
    let n = Array.length bodies in
    for i = 0 to n - 1 do
      let b = bodies.(i) in
      for j = i + 1 to n - 1 do
        let b' = bodies.(j) in
        let dx = b.x -. b'.x and dy = b.y -. b'.y and dz = b.z -. b'.z in
        let dist2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
        let mag = dt /. (dist2 *. sqrt dist2) in
        b.vx <- b.vx -. (dx *. b'.mass *. mag);
        b.vy <- b.vy -. (dy *. b'.mass *. mag);
        b.vz <- b.vz -. (dz *. b'.mass *. mag);
        b'.vx <- b'.vx +. (dx *. b.mass *. mag);
        b'.vy <- b'.vy +. (dy *. b.mass *. mag);
        b'.vz <- b'.vz +. (dz *. b.mass *. mag)
      done
    done;
    for i = 0 to n - 1 do
      let b = bodies.(i) in
      b.x <- b.x +. (dt *. b.vx);
      b.y <- b.y +. (dt *. b.vy);
      b.z <- b.z +. (dt *. b.vz)
    done

  let energy bodies =
    R.leaf_mid ();
    let e = ref 0.0 in
    let n = Array.length bodies in
    for i = 0 to n - 1 do
      let b = bodies.(i) in
      e :=
        !e
        +. (0.5 *. b.mass *. ((b.vx *. b.vx) +. (b.vy *. b.vy) +. (b.vz *. b.vz)));
      for j = i + 1 to n - 1 do
        let b' = bodies.(j) in
        let dx = b.x -. b'.x and dy = b.y -. b'.y and dz = b.z -. b'.z in
        let dist = sqrt ((dx *. dx) +. (dy *. dy) +. (dz *. dz)) in
        e := !e -. (b.mass *. b'.mass /. dist)
      done
    done;
    !e

  let offset_momentum bodies =
    R.leaf_small ();
    let px = ref 0.0 and py = ref 0.0 and pz = ref 0.0 in
    Array.iter
      (fun b ->
        px := !px +. (b.vx *. b.mass);
        py := !py +. (b.vy *. b.mass);
        pz := !pz +. (b.vz *. b.mass))
      bodies;
    let sun = bodies.(0) in
    sun.vx <- -. !px /. solar_mass;
    sun.vy <- -. !py /. solar_mass;
    sun.vz <- -. !pz /. solar_mass

  let run ~size =
    R.nonleaf ();
    let bodies = bodies () in
    offset_momentum bodies;
    let e0 = energy bodies in
    for _ = 1 to size do
      advance bodies 0.01
    done;
    let e1 = energy bodies in
    int_of_float (e0 *. 1e9) lxor int_of_float (e1 *. 1e9)
end
