module type RUNTIME = sig
  val name : string

  val red_zone : int option

  val nonleaf : unit -> unit

  val leaf_small : unit -> unit

  val leaf_mid : unit -> unit

  val leaf_big : unit -> unit
end

(* The simulated stack-pointer state: the check compares and (almost)
   never branches, exactly like a real prologue whose stack has room.
   [Sys.opaque_identity] keeps the compiler from folding the compare
   away. *)
let sim_sp = ref 0x7FFF_FFFF

let sim_threshold = ref 64

let[@inline] check () =
  if Sys.opaque_identity !sim_sp < !sim_threshold then sim_sp := 0x7FFF_FFFF

let nop () = ()

module Stock = struct
  let name = "stock"

  let red_zone = None

  let nonleaf = nop

  let leaf_small = nop

  let leaf_mid = nop

  let leaf_big = nop
end

module Mc16 = struct
  let name = "mc"

  let red_zone = Some 16

  let nonleaf = check

  let leaf_small = nop

  let leaf_mid = check

  let leaf_big = check
end

module Rz0 = struct
  let name = "mc+rz0"

  let red_zone = Some 0

  let nonleaf = check

  let leaf_small = check

  let leaf_mid = check

  let leaf_big = check
end

module Rz32 = struct
  let name = "mc+rz32"

  let red_zone = Some 32

  let nonleaf = check

  let leaf_small = nop

  let leaf_mid = nop

  let leaf_big = check
end

let all : (module RUNTIME) list =
  [ (module Stock); (module Mc16); (module Rz0); (module Rz32) ]

let check_count = ref 0

let checks_counted () = !check_count

let reset_check_count () = check_count := 0

module Mc16_counting = struct
  let name = "mc-counting"

  let red_zone = Some 16

  let counted () =
    incr check_count;
    check ()

  let nonleaf = counted

  let leaf_small = nop

  let leaf_mid = counted

  let leaf_big = counted
end
