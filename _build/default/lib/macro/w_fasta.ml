(* Fasta: pseudo-random DNA sequence generation (bioinformatics,
   string/buffer heavy).  Also the input producer for knucleotide and
   revcomp, so the generator is exposed. *)

let name = "fasta"

let category = "bioinformatics"

let default_size = 25_000  (* bases per section *)

let expected = None

let functions =
  [
    Fn_meta.make "gen_random" Fn_meta.Leaf_small ~body_bytes:60;
    Fn_meta.make "select_base" Fn_meta.Leaf_small ~body_bytes:80;
    Fn_meta.make "repeat_fasta" Fn_meta.Nonleaf ~body_bytes:180;
    Fn_meta.make "random_fasta" Fn_meta.Nonleaf ~body_bytes:200;
    Fn_meta.make "run" Fn_meta.Nonleaf ~body_bytes:120;
  ]

let alu =
  "GGCCGGGCGCGGTGGCTCACGCCTGTAATCCCAGCACTTTGGGAGGCCGAGGCGGGCGGATCACCTGAGGTC\
   AGGAGTTCGAGACCAGCCTGGCCAACATGGTGAAACCCCGTCTCTACTAAAAATACAAAAATTAGCCGGGCG\
   TGGTGGCGCGCGCCTGTAATCCCAGCTACTCGGGAGGCTGAGGCAGGAGAATCGCTTGAACCCGGGAGGCGG\
   AGGTTGCAGTGAGCCGAGATCGCGCCACTGCACTCCAGCCTGGGCGACAGAGCGAGACTCCGTCTCAAAAA"

let iub =
  [
    ('a', 0.27); ('c', 0.12); ('g', 0.12); ('t', 0.27); ('B', 0.02); ('D', 0.02);
    ('H', 0.02); ('K', 0.02); ('M', 0.02); ('N', 0.02); ('R', 0.02); ('S', 0.02);
    ('V', 0.02); ('W', 0.02); ('Y', 0.02);
  ]

let homosapiens =
  [
    ('a', 0.3029549426680); ('c', 0.1979883004921); ('g', 0.1975473066391);
    ('t', 0.3015094502008);
  ]

(* Shared between variants so all workloads consume identical input. *)
let make_dna ~size =
  let module I = struct
    (* the benchmarks-game linear congruential generator *)
    let seed = ref 42

    let gen_random max =
      seed := ((!seed * 3877) + 29573) mod 139968;
      max *. float_of_int !seed /. 139968.0
  end in
  let buf = Buffer.create (size * 4) in
  let cumulative table =
    let acc = ref 0.0 in
    List.map
      (fun (c, p) ->
        acc := !acc +. p;
        (c, !acc))
      table
  in
  let select table r =
    let rec go = function
      | [ (c, _) ] -> c
      | (c, bound) :: rest -> if r < bound then c else go rest
      | [] -> assert false
    in
    go table
  in
  let random_section table n =
    let table = cumulative table in
    for i = 1 to n do
      Buffer.add_char buf (select table (I.gen_random 1.0));
      if i mod 60 = 0 then Buffer.add_char buf '\n'
    done;
    Buffer.add_char buf '\n'
  in
  let repeat_section n =
    let len = String.length alu in
    for i = 0 to n - 1 do
      Buffer.add_char buf alu.[i mod len];
      if (i + 1) mod 60 = 0 then Buffer.add_char buf '\n'
    done;
    Buffer.add_char buf '\n'
  in
  repeat_section (size * 2);
  random_section iub (size * 3);
  random_section homosapiens (size * 5);
  Buffer.contents buf

module Make (R : Runtime.RUNTIME) = struct
  let seed = ref 42

  let gen_random max =
    R.leaf_small ();
    seed := ((!seed * 3877) + 29573) mod 139968;
    max *. float_of_int !seed /. 139968.0

  let select_base table r =
    R.leaf_small ();
    let rec go = function
      | [ (c, _) ] -> c
      | (c, bound) :: rest -> if r < bound then c else go rest
      | [] -> assert false
    in
    go table

  let repeat_fasta buf n =
    R.nonleaf ();
    let len = String.length alu in
    for i = 0 to n - 1 do
      Buffer.add_char buf alu.[i mod len];
      if (i + 1) mod 60 = 0 then Buffer.add_char buf '\n'
    done;
    Buffer.add_char buf '\n'

  let random_fasta buf table n =
    R.nonleaf ();
    let cumulative =
      let acc = ref 0.0 in
      List.map
        (fun (c, p) ->
          acc := !acc +. p;
          (c, !acc))
        table
    in
    for i = 1 to n do
      Buffer.add_char buf (select_base cumulative (gen_random 1.0));
      if i mod 60 = 0 then Buffer.add_char buf '\n'
    done;
    Buffer.add_char buf '\n'

  let run ~size =
    R.nonleaf ();
    seed := 42;
    let buf = Buffer.create (size * 4) in
    repeat_fasta buf (size * 2);
    random_fasta buf iub (size * 3);
    random_fasta buf homosapiens (size * 5);
    Hashtbl.hash (Buffer.contents buf)
end
