(* N-queens: deep non-tail recursion with bit tricks — the recursion
   pattern the stack-overflow checks tax the most. *)

let name = "nqueens"

let category = "search"

let default_size = 11

let expected = None

let functions =
  [
    Fn_meta.make "solve" Fn_meta.Nonleaf ~body_bytes:140;
    Fn_meta.make "run" Fn_meta.Nonleaf ~body_bytes:70;
  ]

module Make (R : Runtime.RUNTIME) = struct
  (* Classic bitboard backtracking: cols/diag1/diag2 are occupancy
     masks; count complete placements. *)
  let rec solve n row cols diag1 diag2 =
    R.nonleaf ();
    if row = n then 1
    else begin
      let free = lnot (cols lor diag1 lor diag2) land ((1 lsl n) - 1) in
      let count = ref 0 in
      let remaining = ref free in
      while !remaining <> 0 do
        let bit = !remaining land - !remaining in
        remaining := !remaining land lnot bit;
        count :=
          !count
          + solve n (row + 1) (cols lor bit) ((diag1 lor bit) lsl 1)
              ((diag2 lor bit) lsr 1)
      done;
      !count
    end

  let run ~size =
    R.nonleaf ();
    solve size 0 0 0 0
end
