(** The interface every macro workload implements.

    A workload is written once as a functor over {!Runtime.RUNTIME};
    instantiating it at the four runtimes gives the Fig 4 variants.
    [run] returns a checksum that must be identical across runtimes
    (the tests enforce it), and [functions] is the inventory the OTSS
    model consumes. *)

module type S = sig
  val name : string

  val category : string
  (** e.g. "numerical", "parser", "simulation" — the suite spans the
      same categories as the paper's (§6.1). *)

  val default_size : int

  val expected : int option
  (** The checksum at [default_size], when known in closed form. *)

  val functions : Fn_meta.t list

  module Make (_ : Runtime.RUNTIME) : sig
    val run : size:int -> int
  end
end

type t = (module S)

val run_with : t -> (module Runtime.RUNTIME) -> size:int -> int

val name : t -> string

val default_size : t -> int

val functions : t -> Fn_meta.t list
