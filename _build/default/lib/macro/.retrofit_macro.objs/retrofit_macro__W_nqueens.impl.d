lib/macro/w_nqueens.ml: Fn_meta Runtime
