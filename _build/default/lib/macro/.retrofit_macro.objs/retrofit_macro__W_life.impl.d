lib/macro/w_life.ml: Array Fn_meta Runtime
