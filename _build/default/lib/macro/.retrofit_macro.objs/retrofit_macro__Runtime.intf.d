lib/macro/runtime.mli:
