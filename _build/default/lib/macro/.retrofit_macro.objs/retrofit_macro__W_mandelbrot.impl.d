lib/macro/w_mandelbrot.ml: Bytes Char Fn_meta Hashtbl Runtime
