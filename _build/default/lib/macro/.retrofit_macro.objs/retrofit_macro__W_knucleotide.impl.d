lib/macro/w_knucleotide.ml: Buffer Char Fn_meta Hashtbl List Runtime String W_fasta
