lib/macro/w_regexredux.ml: Fn_meta List Retrofit_regex Runtime String W_fasta
