lib/macro/w_revcomp.ml: Array Bytes Char Fn_meta Hashtbl List Runtime String W_fasta
