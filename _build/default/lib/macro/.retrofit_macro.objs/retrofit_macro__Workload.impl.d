lib/macro/workload.ml: Fn_meta Runtime
