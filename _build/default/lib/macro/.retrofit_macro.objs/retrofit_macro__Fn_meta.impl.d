lib/macro/fn_meta.ml: List
