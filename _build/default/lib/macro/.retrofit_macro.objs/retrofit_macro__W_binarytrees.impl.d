lib/macro/w_binarytrees.ml: Fn_meta Runtime
