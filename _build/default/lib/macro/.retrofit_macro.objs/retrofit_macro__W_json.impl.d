lib/macro/w_json.ml: Buffer Fn_meta List Printf Runtime String
