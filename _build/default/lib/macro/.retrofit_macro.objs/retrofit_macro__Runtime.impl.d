lib/macro/runtime.ml: Sys
