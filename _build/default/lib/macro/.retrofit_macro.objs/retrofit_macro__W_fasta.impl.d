lib/macro/w_fasta.ml: Buffer Fn_meta Hashtbl List Runtime String
