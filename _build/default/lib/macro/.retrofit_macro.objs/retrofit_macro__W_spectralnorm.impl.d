lib/macro/w_spectralnorm.ml: Array Fn_meta Runtime
