lib/macro/w_fannkuch.ml: Array Fn_meta Fun Runtime
