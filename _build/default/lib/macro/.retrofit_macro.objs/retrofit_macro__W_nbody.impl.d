lib/macro/w_nbody.ml: Array Float Fn_meta Runtime
