lib/macro/registry.mli: Workload
