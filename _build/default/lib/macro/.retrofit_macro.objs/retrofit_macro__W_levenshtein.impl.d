lib/macro/w_levenshtein.ml: Array Char Fn_meta Fun List Runtime String
