lib/macro/w_sexp.ml: Buffer Fn_meta List Printf Runtime String
