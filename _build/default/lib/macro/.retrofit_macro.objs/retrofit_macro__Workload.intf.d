lib/macro/workload.mli: Fn_meta Runtime
