lib/macro/w_lu.ml: Array Float Fn_meta Runtime
