lib/macro/w_grammatrix.ml: Array Fn_meta Runtime
