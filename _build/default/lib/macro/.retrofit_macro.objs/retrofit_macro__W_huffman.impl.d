lib/macro/w_huffman.ml: Array Buffer Char Fn_meta Hashtbl List Runtime String
