lib/macro/w_kmeans.ml: Array Fn_meta Runtime
