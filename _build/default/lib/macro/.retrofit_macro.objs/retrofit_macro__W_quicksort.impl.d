lib/macro/w_quicksort.ml: Array Fn_meta Runtime
