lib/macro/fn_meta.mli:
