(* Quicksort: in-place recursive sort with an insertion-sort base case
   — branchy integer code with two recursion sites per call. *)

let name = "quicksort"

let category = "sorting"

let default_size = 200_000

let expected = None

let functions =
  [
    Fn_meta.make "insertion" Fn_meta.Leaf_small ~body_bytes:120;
    Fn_meta.make "partition" Fn_meta.Leaf_small ~body_bytes:140;
    Fn_meta.make "quicksort" Fn_meta.Nonleaf ~body_bytes:120;
    Fn_meta.make "run" Fn_meta.Nonleaf ~body_bytes:130;
  ]

module Make (R : Runtime.RUNTIME) = struct
  let insertion arr lo hi =
    R.leaf_small ();
    for i = lo + 1 to hi do
      let key = arr.(i) in
      let j = ref (i - 1) in
      while !j >= lo && arr.(!j) > key do
        arr.(!j + 1) <- arr.(!j);
        decr j
      done;
      arr.(!j + 1) <- key
    done

  let partition arr lo hi =
    R.leaf_small ();
    (* median-of-three pivot *)
    let mid = (lo + hi) / 2 in
    let a = arr.(lo) and b = arr.(mid) and c = arr.(hi) in
    let pivot = max (min a b) (min (max a b) c) in
    let i = ref (lo - 1) and j = ref (hi + 1) in
    let result = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      incr i;
      while arr.(!i) < pivot do
        incr i
      done;
      decr j;
      while arr.(!j) > pivot do
        decr j
      done;
      if !i >= !j then begin
        result := !j;
        continue_ := false
      end
      else begin
        let tmp = arr.(!i) in
        arr.(!i) <- arr.(!j);
        arr.(!j) <- tmp
      end
    done;
    !result

  let rec quicksort arr lo hi =
    R.nonleaf ();
    if hi - lo < 16 then insertion arr lo hi
    else begin
      let p = partition arr lo hi in
      quicksort arr lo p;
      quicksort arr (p + 1) hi
    end

  let run ~size =
    R.nonleaf ();
    let state = ref 987654321 in
    let arr =
      Array.init size (fun _ ->
          state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
          !state)
    in
    quicksort arr 0 (size - 1);
    (* checksum: sortedness + sampled content *)
    let sorted = ref true in
    for i = 1 to size - 1 do
      if arr.(i - 1) > arr.(i) then sorted := false
    done;
    let sample = ref 0 in
    let i = ref 0 in
    while !i < size do
      sample := (!sample * 31) + arr.(!i);
      i := !i + (size / 13) + 1
    done;
    if !sorted then !sample else -1
end
