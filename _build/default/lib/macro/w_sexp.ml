(* S-expression parsing and rewriting — the "verification tool front
   end" flavour of the paper's suite (Coq, AltErgo are s-expression/term
   manipulating programs at heart). *)

let name = "sexp"

let category = "parser"

let default_size = 14  (* depth of the generated term *)

let expected = None

let functions =
  [
    Fn_meta.make "gen_term" Fn_meta.Nonleaf ~body_bytes:120;
    Fn_meta.make "print_sexp" Fn_meta.Nonleaf ~body_bytes:110;
    Fn_meta.make "parse_sexp" Fn_meta.Nonleaf ~body_bytes:220;
    Fn_meta.make "rewrite" Fn_meta.Nonleaf ~body_bytes:140;
    Fn_meta.make "measure" Fn_meta.Nonleaf ~body_bytes:80;
    Fn_meta.make "run" Fn_meta.Nonleaf ~body_bytes:100;
  ]

type sexp = Atom of string | List of sexp list

module Make (R : Runtime.RUNTIME) = struct
  (* A balanced arithmetic term: (add (mul x0 (add ...)) ...) *)
  let rec gen_term depth idx =
    R.nonleaf ();
    if depth = 0 then Atom (Printf.sprintf "x%d" (idx mod 7))
    else begin
      let op = if depth mod 2 = 0 then "add" else "mul" in
      List
        [ Atom op; gen_term (depth - 1) (idx * 2); gen_term (depth - 1) ((idx * 2) + 1) ]
    end

  let rec print_sexp buf s =
    R.nonleaf ();
    match s with
    | Atom a -> Buffer.add_string buf a
    | List xs ->
        Buffer.add_char buf '(';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ' ';
            print_sexp buf x)
          xs;
        Buffer.add_char buf ')'

  let to_string s =
    let buf = Buffer.create 1024 in
    print_sexp buf s;
    Buffer.contents buf

  exception Parse_error of string

  let parse_sexp src =
    R.nonleaf ();
    let pos = ref 0 in
    let n = String.length src in
    let rec skip () =
      if !pos < n && src.[!pos] = ' ' then begin
        incr pos;
        skip ()
      end
    in
    let rec value () =
      skip ();
      if !pos >= n then raise (Parse_error "unexpected end")
      else if src.[!pos] = '(' then begin
        incr pos;
        let items = ref [] in
        skip ();
        while !pos < n && src.[!pos] <> ')' do
          items := value () :: !items;
          skip ()
        done;
        if !pos >= n then raise (Parse_error "unclosed paren");
        incr pos;
        List (List.rev !items)
      end
      else begin
        let start = !pos in
        while !pos < n && src.[!pos] <> ' ' && src.[!pos] <> '(' && src.[!pos] <> ')' do
          incr pos
        done;
        if !pos = start then raise (Parse_error "empty atom");
        Atom (String.sub src start (!pos - start))
      end
    in
    let v = value () in
    skip ();
    if !pos <> n then raise (Parse_error "trailing input");
    v

  (* Constant-fold-like rewrite: (mul x x) -> (sq x), (add t t) ->
     (dbl t); applied bottom-up. *)
  let rec rewrite s =
    R.nonleaf ();
    match s with
    | Atom _ -> s
    | List [ Atom "mul"; a; b ] when a = b -> List [ Atom "sq"; rewrite a ]
    | List [ Atom "add"; a; b ] when a = b -> List [ Atom "dbl"; rewrite a ]
    | List xs -> List (List.map rewrite xs)

  let rec measure s =
    R.nonleaf ();
    match s with
    | Atom a -> String.length a
    | List xs -> List.fold_left (fun acc x -> acc + measure x) 1 xs

  let run ~size =
    R.nonleaf ();
    let term = gen_term size 1 in
    let text = to_string term in
    let reparsed = parse_sexp text in
    if reparsed <> term then -1
    else begin
      let rewritten = rewrite reparsed in
      (measure rewritten * 31) + String.length text
    end
end
