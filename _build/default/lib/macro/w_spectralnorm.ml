(* Spectral-norm: power iteration with the implicit infinite matrix
   A(i,j) = 1/((i+j)(i+j+1)/2 + i + 1) — float kernels and vector ops. *)

let name = "spectralnorm"

let category = "numerical"

let default_size = 300  (* vector length *)

let expected = None

let functions =
  [
    Fn_meta.make "a" Fn_meta.Leaf_small ~body_bytes:50;
    Fn_meta.make "mult_av" Fn_meta.Nonleaf ~body_bytes:120;
    Fn_meta.make "mult_atv" Fn_meta.Nonleaf ~body_bytes:120;
    Fn_meta.make "mult_at_a_v" Fn_meta.Nonleaf ~body_bytes:70;
    Fn_meta.make "run" Fn_meta.Nonleaf ~body_bytes:150;
  ]

module Make (R : Runtime.RUNTIME) = struct
  let a i j =
    R.leaf_small ();
    1.0 /. float_of_int (((i + j) * (i + j + 1) / 2) + i + 1)

  let mult_av v out =
    R.nonleaf ();
    let n = Array.length v in
    for i = 0 to n - 1 do
      let sum = ref 0.0 in
      for j = 0 to n - 1 do
        sum := !sum +. (a i j *. v.(j))
      done;
      out.(i) <- !sum
    done

  let mult_atv v out =
    R.nonleaf ();
    let n = Array.length v in
    for i = 0 to n - 1 do
      let sum = ref 0.0 in
      for j = 0 to n - 1 do
        sum := !sum +. (a j i *. v.(j))
      done;
      out.(i) <- !sum
    done

  let mult_at_a_v v out tmp =
    R.nonleaf ();
    mult_av v tmp;
    mult_atv tmp out

  let run ~size =
    R.nonleaf ();
    let n = size in
    let u = Array.make n 1.0 in
    let v = Array.make n 0.0 in
    let tmp = Array.make n 0.0 in
    for _ = 1 to 10 do
      mult_at_a_v u v tmp;
      mult_at_a_v v u tmp
    done;
    let vbv = ref 0.0 and vv = ref 0.0 in
    for i = 0 to n - 1 do
      vbv := !vbv +. (u.(i) *. v.(i));
      vv := !vv +. (v.(i) *. v.(i))
    done;
    int_of_float (sqrt (!vbv /. !vv) *. 1e9)
end
