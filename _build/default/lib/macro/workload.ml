module type S = sig
  val name : string

  val category : string

  val default_size : int

  val expected : int option

  val functions : Fn_meta.t list

  module Make (_ : Runtime.RUNTIME) : sig
    val run : size:int -> int
  end
end

type t = (module S)

let run_with (module W : S) (module R : Runtime.RUNTIME) ~size =
  let module I = W.Make (R) in
  I.run ~size

let name (module W : S) = W.name

let default_size (module W : S) = W.default_size

let functions (module W : S) = W.functions
