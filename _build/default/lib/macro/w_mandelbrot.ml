(* Mandelbrot: escape-time fractal over a bit-packed plane — pure float
   loops with a small leaf kernel. *)

let name = "mandelbrot"

let category = "numerical"

let default_size = 300  (* image width/height *)

let expected = None

let functions =
  [
    Fn_meta.make "escapes" Fn_meta.Leaf_small ~body_bytes:130;
    Fn_meta.make "row" Fn_meta.Nonleaf ~body_bytes:110;
    Fn_meta.make "run" Fn_meta.Nonleaf ~body_bytes:120;
  ]

module Make (R : Runtime.RUNTIME) = struct
  let max_iter = 50

  let escapes cr ci =
    R.leaf_small ();
    let zr = ref 0.0 and zi = ref 0.0 in
    let i = ref 0 in
    let escaped = ref false in
    while (not !escaped) && !i < max_iter do
      let zr2 = !zr *. !zr and zi2 = !zi *. !zi in
      if zr2 +. zi2 > 4.0 then escaped := true
      else begin
        zi := (2.0 *. !zr *. !zi) +. ci;
        zr := zr2 -. zi2 +. cr;
        incr i
      end
    done;
    not !escaped

  let row bits n y =
    R.nonleaf ();
    let ci = (2.0 *. float_of_int y /. float_of_int n) -. 1.0 in
    for x = 0 to n - 1 do
      let cr = (2.0 *. float_of_int x /. float_of_int n) -. 1.5 in
      if escapes cr ci then begin
        let idx = (y * n) + x in
        Bytes.set bits (idx lsr 3)
          (Char.chr (Char.code (Bytes.get bits (idx lsr 3)) lor (0x80 lsr (idx land 7))))
      end
    done

  let run ~size =
    R.nonleaf ();
    let n = size in
    let bits = Bytes.make (((n * n) + 7) / 8) '\000' in
    for y = 0 to n - 1 do
      row bits n y
    done;
    Hashtbl.hash (Bytes.to_string bits)
end
