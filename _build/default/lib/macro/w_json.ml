(* JSON parsing: a complete recursive-descent JSON parser (the yojson
   stand-in) run over a synthetic document, then queried. *)

let name = "json"

let category = "parser"

let default_size = 4_000  (* records in the synthetic document *)

let expected = None

let functions =
  [
    Fn_meta.make "gen_doc" Fn_meta.Nonleaf ~body_bytes:180;
    Fn_meta.make "parse_value" Fn_meta.Nonleaf ~body_bytes:260;
    Fn_meta.make "parse_string" Fn_meta.Leaf_mid ~body_bytes:160;
    Fn_meta.make "parse_number" Fn_meta.Leaf_small ~body_bytes:140;
    Fn_meta.make "query" Fn_meta.Nonleaf ~body_bytes:120;
    Fn_meta.make "run" Fn_meta.Nonleaf ~body_bytes:110;
  ]

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

module Make (R : Runtime.RUNTIME) = struct
  let gen_doc n =
    R.nonleaf ();
    let buf = Buffer.create (n * 80) in
    Buffer.add_string buf "{\"records\": [";
    for i = 0 to n - 1 do
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"id\": %d, \"name\": \"record-%d\", \"score\": %d.%02d, \"tags\": \
            [\"a%d\", \"b%d\"], \"active\": %s, \"ref\": null}"
           i i (i mod 97) (i mod 100) (i mod 5) (i mod 3)
           (if i mod 2 = 0 then "true" else "false"))
    done;
    Buffer.add_string buf "], \"count\": ";
    Buffer.add_string buf (string_of_int n);
    Buffer.add_char buf '}';
    Buffer.contents buf

  exception Parse_error of string

  type state = { src : string; mutable pos : int }

  let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

  let skip_ws st =
    while
      st.pos < String.length st.src
      && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      st.pos <- st.pos + 1
    done

  let expect st c =
    skip_ws st;
    match peek st with
    | Some x when x = c -> st.pos <- st.pos + 1
    | _ -> raise (Parse_error (Printf.sprintf "expected %c at %d" c st.pos))

  let parse_string st =
    R.leaf_mid ();
    expect st '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek st with
      | None -> raise (Parse_error "unterminated string")
      | Some '"' -> st.pos <- st.pos + 1
      | Some '\\' ->
          st.pos <- st.pos + 1;
          (match peek st with
          | Some 'n' -> Buffer.add_char buf '\n'
          | Some 't' -> Buffer.add_char buf '\t'
          | Some 'r' -> Buffer.add_char buf '\r'
          | Some c -> Buffer.add_char buf c
          | None -> raise (Parse_error "dangling escape"));
          st.pos <- st.pos + 1;
          go ()
      | Some c ->
          Buffer.add_char buf c;
          st.pos <- st.pos + 1;
          go ()
    in
    go ();
    Buffer.contents buf

  let parse_number st =
    R.leaf_small ();
    let start = st.pos in
    let is_num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while st.pos < String.length st.src && is_num_char st.src.[st.pos] do
      st.pos <- st.pos + 1
    done;
    match float_of_string_opt (String.sub st.src start (st.pos - start)) with
    | Some f -> f
    | None -> raise (Parse_error (Printf.sprintf "bad number at %d" start))

  let literal st word value =
    if
      st.pos + String.length word <= String.length st.src
      && String.sub st.src st.pos (String.length word) = word
    then begin
      st.pos <- st.pos + String.length word;
      value
    end
    else raise (Parse_error (Printf.sprintf "bad literal at %d" st.pos))

  let rec parse_value st =
    R.nonleaf ();
    skip_ws st;
    match peek st with
    | Some '"' -> Str (parse_string st)
    | Some '{' ->
        st.pos <- st.pos + 1;
        skip_ws st;
        if peek st = Some '}' then begin
          st.pos <- st.pos + 1;
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws st;
            let key = parse_string st in
            expect st ':';
            let value = parse_value st in
            skip_ws st;
            match peek st with
            | Some ',' ->
                st.pos <- st.pos + 1;
                members ((key, value) :: acc)
            | Some '}' ->
                st.pos <- st.pos + 1;
                List.rev ((key, value) :: acc)
            | _ -> raise (Parse_error "expected , or }")
          in
          Obj (members [])
        end
    | Some '[' ->
        st.pos <- st.pos + 1;
        skip_ws st;
        if peek st = Some ']' then begin
          st.pos <- st.pos + 1;
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value st in
            skip_ws st;
            match peek st with
            | Some ',' ->
                st.pos <- st.pos + 1;
                elements (v :: acc)
            | Some ']' ->
                st.pos <- st.pos + 1;
                List.rev (v :: acc)
            | _ -> raise (Parse_error "expected , or ]")
          in
          List (elements [])
        end
    | Some 't' -> literal st "true" (Bool true)
    | Some 'f' -> literal st "false" (Bool false)
    | Some 'n' -> literal st "null" Null
    | Some _ -> Num (parse_number st)
    | None -> raise (Parse_error "unexpected end of input")

  let parse src =
    let st = { src; pos = 0 } in
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length src then raise (Parse_error "trailing input");
    v

  let rec query v =
    R.nonleaf ();
    match v with
    | Null -> 1
    | Bool b -> if b then 3 else 5
    | Num f -> int_of_float (f *. 100.0) lor 1
    | Str s -> String.length s
    | List xs -> List.fold_left (fun acc x -> acc + query x) 7 xs
    | Obj kvs -> List.fold_left (fun acc (k, x) -> acc + String.length k + query x) 11 kvs

  let run ~size =
    R.nonleaf ();
    let doc = gen_doc size in
    let v = parse doc in
    query v
end
