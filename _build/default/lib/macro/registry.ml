let all : Workload.t list =
  [
    (module W_nbody);
    (module W_binarytrees);
    (module W_fannkuch);
    (module W_fasta);
    (module W_knucleotide);
    (module W_revcomp);
    (module W_regexredux);
    (module W_mandelbrot);
    (module W_spectralnorm);
    (module W_lu);
    (module W_grammatrix);
    (module W_life);
    (module W_nqueens);
    (module W_quicksort);
    (module W_json);
    (module W_sexp);
    (module W_levenshtein);
    (module W_huffman);
    (module W_kmeans);
  ]

let find name = List.find_opt (fun w -> Workload.name w = name) all

let names () = List.map Workload.name all

let total_functions () =
  List.fold_left (fun acc w -> acc + List.length (Workload.functions w)) 0 all
