(** Prologue-check injection for the macro suite (Fig 4).

    The paper compares stock OCaml against Multicore variants that add a
    stack-overflow check to function prologues, eliding it for leaf
    functions whose frame fits in the red zone (§5.2).  We cannot
    recompile the OCaml compiler, so each macro workload is a functor
    over a [RUNTIME] whose prologue operations either do nothing (stock)
    or perform the check (a two-load compare against a threshold, the
    same work as the emitted [cmp]/[jb] pair).

    Because the functor call itself costs the same in every
    instantiation, the measured Stock→MC delta isolates the check body —
    the quantity Fig 4 reports.  Call sites are classified by the
    function's shape:

    - [nonleaf]: the function makes calls — always checked under MC;
    - [leaf_small]: a leaf with a frame of at most 16 words — elided
      under red zones 16 and 32, checked under red zone 0;
    - [leaf_mid]: a leaf with a 17–32-word frame — checked under red
      zones 0 and 16, elided under 32;
    - [leaf_big]: a leaf with a frame above 32 words — always checked
      under MC. *)

module type RUNTIME = sig
  val name : string

  val red_zone : int option
  (** [None] for stock (no checks at all). *)

  val nonleaf : unit -> unit

  val leaf_small : unit -> unit

  val leaf_mid : unit -> unit

  val leaf_big : unit -> unit
end

module Stock : RUNTIME

module Mc16 : RUNTIME
(** The Multicore default: red zone of 16 words. *)

module Rz0 : RUNTIME
(** MC+RedZone0: every function checked. *)

module Rz32 : RUNTIME

val all : (module RUNTIME) list
(** In Fig 4's order: stock, MC, MC+RedZone0, MC+RedZone32. *)

val checks_counted : unit -> int
(** Dynamic check count accumulated by the {e counting} variants below;
    zero unless they are used.  The measuring variants above do not
    count (counting would perturb timing). *)

val reset_check_count : unit -> unit

module Mc16_counting : RUNTIME
(** Like {!Mc16} but tallies executed checks, for the check-density
    analysis. *)
