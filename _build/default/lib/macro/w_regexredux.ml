(* Regex-redux on our own Thompson-NFA engine (lib/regex): count DNA
   variant patterns and apply IUB replacements, as in the benchmarks
   game (the paper's suite includes regexredux2). *)

let name = "regexredux"

let category = "text"

let default_size = 2_000

let expected = None

let functions =
  [
    Fn_meta.make "strip_headers" Fn_meta.Nonleaf ~body_bytes:110;
    Fn_meta.make "count_variants" Fn_meta.Nonleaf ~body_bytes:130;
    Fn_meta.make "apply_replacements" Fn_meta.Nonleaf ~body_bytes:120;
    Fn_meta.make "run" Fn_meta.Nonleaf ~body_bytes:150;
  ]

let variants =
  [
    "agggtaaa|tttaccct";
    "[cgt]gggtaaa|tttaccc[acg]";
    "a[act]ggtaaa|tttacc[agt]t";
    "ag[act]gtaaa|tttac[agt]ct";
    "agg[act]taaa|ttta[agt]cct";
    "aggg[acg]aaa|ttt[cgt]ccct";
    "agggt[cgt]aa|tt[acg]accct";
    "agggta[cgt]a|t[acg]taccct";
    "agggtaa[cgt]|[acg]ttaccct";
  ]

(* The magic-sequence rewrites of the original benchmark; the two
   catch-all patterns are omitted because they are line-oriented and our
   input has headers stripped already. *)
let replacements =
  [ ("tHa[Nt]", "<4>"); ("aND|caN|Ha[DS]|WaS", "<3>"); ("a[NSt]|BY", "<2>") ]

module Make (R : Runtime.RUNTIME) = struct
  module E = Retrofit_regex.Engine

  let strip_headers input =
    R.nonleaf ();
    input
    |> String.split_on_char '\n'
    |> List.filter (fun line -> String.length line = 0 || line.[0] <> '>')
    |> String.concat ""

  let count_variants seq =
    R.nonleaf ();
    List.map
      (fun pattern ->
        let re = E.of_string pattern in
        (pattern, E.count re seq))
      variants

  let apply_replacements seq =
    R.nonleaf ();
    List.fold_left
      (fun s (pattern, by) ->
        let re = E.of_string pattern in
        E.replace_all re ~by s)
      seq replacements

  let run ~size =
    R.nonleaf ();
    let dna = W_fasta.make_dna ~size in
    let seq = strip_headers dna in
    let counts = count_variants seq in
    let replaced = apply_replacements seq in
    List.fold_left (fun acc (_, n) -> (acc * 31) + n) (String.length replaced) counts
end
