(* Reverse-complement: byte-table translation and in-place reversal of
   DNA sequences (string processing). *)

let name = "revcomp"

let category = "bioinformatics"

let default_size = 20_000

let expected = None

let functions =
  [
    Fn_meta.make "complement" Fn_meta.Leaf_small ~body_bytes:90;
    Fn_meta.make "revcomp_line_block" Fn_meta.Leaf_mid ~body_bytes:160;
    Fn_meta.make "run" Fn_meta.Nonleaf ~body_bytes:140;
  ]

module Make (R : Runtime.RUNTIME) = struct
  let table =
    let t = Array.init 256 Char.chr in
    let pairs =
      [
        ('A', 'T'); ('C', 'G'); ('G', 'C'); ('T', 'A'); ('U', 'A'); ('M', 'K');
        ('R', 'Y'); ('W', 'W'); ('S', 'S'); ('Y', 'R'); ('K', 'M'); ('V', 'B');
        ('H', 'D'); ('D', 'H'); ('B', 'V'); ('N', 'N');
      ]
    in
    List.iter
      (fun (a, b) ->
        t.(Char.code a) <- b;
        t.(Char.code (Char.lowercase_ascii a)) <- b)
      pairs;
    t

  let complement c =
    R.leaf_small ();
    table.(Char.code c)

  let revcomp_block block =
    R.leaf_mid ();
    let n = String.length block in
    let out = Bytes.create n in
    for i = 0 to n - 1 do
      Bytes.set out i table.(Char.code block.[n - 1 - i])
    done;
    Bytes.to_string out

  let run ~size =
    R.nonleaf ();
    let dna = W_fasta.make_dna ~size in
    let lines = String.split_on_char '\n' dna in
    let seq = String.concat "" lines in
    let rc = revcomp_block seq in
    (* a double reverse-complement must be the identity on ACGT bases *)
    let rc2 = revcomp_block rc in
    let sanity = ref 0 in
    String.iteri
      (fun i c ->
        match seq.[i] with
        | 'A' | 'C' | 'G' | 'T' | 'a' | 'c' | 'g' | 't' ->
            if Char.uppercase_ascii seq.[i] <> Char.uppercase_ascii c then incr sanity
        | _ -> ())
      rc2;
    ignore (complement 'A');
    Hashtbl.hash rc lxor !sanity
end
