(* Gram matrix: pairwise dot products of feature vectors plus a
   Frobenius-norm reduction (the paper's suite has grammatrix). *)

let name = "grammatrix"

let category = "numerical"

let default_size = 320  (* number of vectors; dimension fixed *)

let expected = None

let functions =
  [
    Fn_meta.make "gen_vectors" Fn_meta.Leaf_mid ~body_bytes:100;
    Fn_meta.make "dot" Fn_meta.Leaf_small ~body_bytes:70;
    Fn_meta.make "gram" Fn_meta.Nonleaf ~body_bytes:130;
    Fn_meta.make "frobenius" Fn_meta.Leaf_mid ~body_bytes:90;
    Fn_meta.make "run" Fn_meta.Nonleaf ~body_bytes:100;
  ]

module Make (R : Runtime.RUNTIME) = struct
  let dim = 64

  let gen_vectors n =
    R.leaf_mid ();
    Array.init n (fun i ->
        Array.init dim (fun j ->
            sin (float_of_int ((i * dim) + j) *. 0.1) +. (float_of_int (i mod 7) *. 0.01)))

  let dot a b =
    R.leaf_small ();
    let sum = ref 0.0 in
    for i = 0 to Array.length a - 1 do
      sum := !sum +. (a.(i) *. b.(i))
    done;
    !sum

  let gram vectors =
    R.nonleaf ();
    let n = Array.length vectors in
    let g = Array.make_matrix n n 0.0 in
    for i = 0 to n - 1 do
      for j = i to n - 1 do
        let d = dot vectors.(i) vectors.(j) in
        g.(i).(j) <- d;
        g.(j).(i) <- d
      done
    done;
    g

  let frobenius g =
    R.leaf_mid ();
    let sum = ref 0.0 in
    Array.iter (fun row -> Array.iter (fun x -> sum := !sum +. (x *. x)) row) g;
    sqrt !sum

  let run ~size =
    R.nonleaf ();
    let vectors = gen_vectors size in
    let g = gram vectors in
    int_of_float (frobenius g *. 1e6)
end
