(** All macro workloads, in a fixed order.

    The suite spans the paper's categories (§6.1): numerical analysis,
    GC-heavy allocation, bioinformatics text processing, regular
    expressions, parsers, simulation, search and sorting. *)

val all : Workload.t list

val find : string -> Workload.t option

val names : unit -> string list

val total_functions : unit -> int
(** Size of the combined function inventory, for OTSS reporting. *)
