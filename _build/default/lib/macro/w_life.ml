(* Game of Life: cellular-automaton simulation on a torus (the paper's
   suite has game_of_life). *)

let name = "game_of_life"

let category = "simulation"

let default_size = 120  (* board side; generations scale with it *)

let expected = None

let functions =
  [
    Fn_meta.make "seed_board" Fn_meta.Leaf_mid ~body_bytes:100;
    Fn_meta.make "neighbours" Fn_meta.Leaf_small ~body_bytes:120;
    Fn_meta.make "step_board" Fn_meta.Nonleaf ~body_bytes:140;
    Fn_meta.make "population" Fn_meta.Leaf_small ~body_bytes:60;
    Fn_meta.make "run" Fn_meta.Nonleaf ~body_bytes:110;
  ]

module Make (R : Runtime.RUNTIME) = struct
  let seed_board n =
    R.leaf_mid ();
    (* deterministic pseudo-random soup *)
    let state = ref 123456789 in
    Array.init n (fun _ ->
        Array.init n (fun _ ->
            state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
            (* the low bits of an LCG are periodic; sample high bits *)
            (!state lsr 16) land 7 = 0))

  let neighbours board n x y =
    R.leaf_small ();
    let count = ref 0 in
    for dx = -1 to 1 do
      for dy = -1 to 1 do
        if dx <> 0 || dy <> 0 then begin
          let x' = (x + dx + n) mod n and y' = (y + dy + n) mod n in
          if board.(x').(y') then incr count
        end
      done
    done;
    !count

  let step_board board =
    R.nonleaf ();
    let n = Array.length board in
    Array.init n (fun x ->
        Array.init n (fun y ->
            let alive = board.(x).(y) in
            let nb = neighbours board n x y in
            if alive then nb = 2 || nb = 3 else nb = 3))

  let population board =
    R.leaf_small ();
    Array.fold_left
      (fun acc row -> Array.fold_left (fun a c -> if c then a + 1 else a) acc row)
      0 board

  let run ~size =
    R.nonleaf ();
    let generations = max 10 (size / 4) in
    let board = ref (seed_board size) in
    let trace = ref 0 in
    for g = 1 to generations do
      board := step_board !board;
      if g mod 8 = 0 then trace := (!trace * 31) + population !board
    done;
    (!trace * 31) + population !board
end
