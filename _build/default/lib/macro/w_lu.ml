(* LU decomposition with partial pivoting (the paper's suite includes
   LU_decomposition): dense linear algebra over float arrays. *)

let name = "lu_decomposition"

let category = "numerical"

let default_size = 220  (* matrix dimension *)

let expected = None

let functions =
  [
    Fn_meta.make "gen_matrix" Fn_meta.Leaf_mid ~body_bytes:100;
    Fn_meta.make "pivot_row" Fn_meta.Leaf_small ~body_bytes:90;
    Fn_meta.make "eliminate" Fn_meta.Leaf_mid ~body_bytes:150;
    Fn_meta.make "decompose" Fn_meta.Nonleaf ~body_bytes:180;
    Fn_meta.make "run" Fn_meta.Nonleaf ~body_bytes:120;
  ]

module Make (R : Runtime.RUNTIME) = struct
  let gen_matrix n =
    R.leaf_mid ();
    (* deterministic well-conditioned test matrix *)
    Array.init n (fun i ->
        Array.init n (fun j ->
            let v = float_of_int (((i * 37) + (j * 17)) mod 31) /. 31.0 in
            if i = j then v +. float_of_int n else v))

  let pivot_row m col start =
    R.leaf_small ();
    let n = Array.length m in
    let best = ref start in
    for r = start + 1 to n - 1 do
      if Float.abs m.(r).(col) > Float.abs m.(!best).(col) then best := r
    done;
    !best

  let eliminate m row col =
    R.leaf_mid ();
    let n = Array.length m in
    let pivot = m.(col).(col) in
    let factor = m.(row).(col) /. pivot in
    m.(row).(col) <- factor;
    for j = col + 1 to n - 1 do
      m.(row).(j) <- m.(row).(j) -. (factor *. m.(col).(j))
    done

  let decompose m =
    R.nonleaf ();
    let n = Array.length m in
    let sign = ref 1.0 in
    for col = 0 to n - 2 do
      let p = pivot_row m col col in
      if p <> col then begin
        let tmp = m.(p) in
        m.(p) <- m.(col);
        m.(col) <- tmp;
        sign := -. !sign
      end;
      for row = col + 1 to n - 1 do
        eliminate m row col
      done
    done;
    (* log-determinant from the diagonal, with the permutation sign *)
    let logdet = ref 0.0 in
    for i = 0 to n - 1 do
      logdet := !logdet +. log (Float.abs m.(i).(i))
    done;
    (!sign, !logdet)

  let run ~size =
    R.nonleaf ();
    let m = gen_matrix size in
    let sign, logdet = decompose m in
    int_of_float (logdet *. 1e6) * int_of_float sign
end
