(* K-means clustering: Lloyd's algorithm on 2-D points — the iterative
   numerical-analysis flavour of the paper's suite. *)

let name = "kmeans"

let category = "numerical"

let default_size = 6_000  (* points *)

let expected = None

let functions =
  [
    Fn_meta.make "gen_points" Fn_meta.Leaf_mid ~body_bytes:110;
    Fn_meta.make "nearest" Fn_meta.Leaf_small ~body_bytes:110;
    Fn_meta.make "assign" Fn_meta.Nonleaf ~body_bytes:100;
    Fn_meta.make "recenter" Fn_meta.Leaf_mid ~body_bytes:150;
    Fn_meta.make "run" Fn_meta.Nonleaf ~body_bytes:150;
  ]

module Make (R : Runtime.RUNTIME) = struct
  let k = 8

  let gen_points n =
    R.leaf_mid ();
    let state = ref 55_555 in
    let next () =
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      float_of_int ((!state lsr 8) mod 10_000) /. 100.0
    in
    Array.init n (fun i ->
        (* clustered around k seeds so convergence is meaningful *)
        let cx = float_of_int (i mod k) *. 12.0 in
        (cx +. (next () /. 25.0), (next () /. 25.0) +. float_of_int (i mod k)))

  let nearest centroids (x, y) =
    R.leaf_small ();
    let best = ref 0 and best_d = ref infinity in
    Array.iteri
      (fun i (cx, cy) ->
        let d = ((x -. cx) *. (x -. cx)) +. ((y -. cy) *. (y -. cy)) in
        if d < !best_d then begin
          best_d := d;
          best := i
        end)
      centroids;
    !best

  let assign centroids points memberships =
    R.nonleaf ();
    let changed = ref 0 in
    Array.iteri
      (fun i p ->
        let c = nearest centroids p in
        if memberships.(i) <> c then begin
          memberships.(i) <- c;
          incr changed
        end)
      points;
    !changed

  let recenter points memberships =
    R.leaf_mid ();
    let sx = Array.make k 0.0 and sy = Array.make k 0.0 and n = Array.make k 0 in
    Array.iteri
      (fun i (x, y) ->
        let c = memberships.(i) in
        sx.(c) <- sx.(c) +. x;
        sy.(c) <- sy.(c) +. y;
        n.(c) <- n.(c) + 1)
      points;
    Array.init k (fun c ->
        if n.(c) = 0 then (float_of_int c, float_of_int c)
        else (sx.(c) /. float_of_int n.(c), sy.(c) /. float_of_int n.(c)))

  let run ~size =
    R.nonleaf ();
    let points = gen_points size in
    let centroids = ref (Array.init k (fun i -> points.(i * (size / k)))) in
    let memberships = Array.make size (-1) in
    let iterations = ref 0 in
    let continue_ = ref true in
    while !continue_ && !iterations < 50 do
      let changed = assign !centroids points memberships in
      centroids := recenter points memberships;
      incr iterations;
      if changed = 0 then continue_ := false
    done;
    let inertia = ref 0.0 in
    Array.iteri
      (fun i (x, y) ->
        let cx, cy = !centroids.(memberships.(i)) in
        inertia := !inertia +. ((x -. cx) *. (x -. cx)) +. ((y -. cy) *. (y -. cy)))
      points;
    (!iterations * 1_000_000) + int_of_float !inertia
end
