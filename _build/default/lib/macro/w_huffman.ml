(* Huffman coding: build a code from symbol frequencies, encode a
   corpus to a bit stream, decode it back, and verify the roundtrip —
   the compression-utility flavour of the paper's suite (decompress). *)

let name = "huffman"

let category = "compression"

let default_size = 60_000  (* corpus bytes *)

let expected = None

let functions =
  [
    Fn_meta.make "gen_corpus" Fn_meta.Leaf_mid ~body_bytes:120;
    Fn_meta.make "frequencies" Fn_meta.Leaf_small ~body_bytes:80;
    Fn_meta.make "build_tree" Fn_meta.Nonleaf ~body_bytes:220;
    Fn_meta.make "assign_codes" Fn_meta.Nonleaf ~body_bytes:140;
    Fn_meta.make "encode" Fn_meta.Nonleaf ~body_bytes:160;
    Fn_meta.make "decode" Fn_meta.Nonleaf ~body_bytes:180;
    Fn_meta.make "run" Fn_meta.Nonleaf ~body_bytes:140;
  ]

module Make (R : Runtime.RUNTIME) = struct
  type tree = Leaf of int | Node of tree * tree

  let gen_corpus n =
    R.leaf_mid ();
    (* skewed symbol distribution so the code is non-trivial *)
    let state = ref 1_234_567 in
    String.init n (fun _ ->
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        let r = (!state lsr 12) mod 100 in
        let sym =
          if r < 40 then 0
          else if r < 65 then 1
          else if r < 80 then 2
          else if r < 90 then 3
          else 4 + ((!state lsr 20) mod 12)
        in
        Char.chr (Char.code 'a' + sym))

  let frequencies corpus =
    R.leaf_small ();
    let freq = Array.make 256 0 in
    String.iter (fun c -> freq.(Char.code c) <- freq.(Char.code c) + 1) corpus;
    freq

  (* Standard greedy construction over a leaf worklist: repeatedly merge
     the two lightest subtrees.  A sorted association list stands in for
     the priority queue to keep the workload self-contained. *)
  let build_tree freq =
    R.nonleaf ();
    let initial =
      Array.to_list freq
      |> List.mapi (fun sym count -> (count, Leaf sym))
      |> List.filter (fun (count, _) -> count > 0)
      |> List.sort compare
    in
    let rec insert weight tree = function
      | [] -> [ (weight, tree) ]
      | (w, t) :: rest when w < weight -> (w, t) :: insert weight tree rest
      | worklist -> (weight, tree) :: worklist
    in
    let rec merge = function
      | [] -> invalid_arg "empty corpus"
      | [ (_, tree) ] -> tree
      | (w1, t1) :: (w2, t2) :: rest -> merge (insert (w1 + w2) (Node (t1, t2)) rest)
    in
    merge initial

  let assign_codes tree =
    R.nonleaf ();
    let codes = Array.make 256 [] in
    let rec walk path = function
      | Leaf sym -> codes.(sym) <- List.rev path
      | Node (l, r) ->
          walk (false :: path) l;
          walk (true :: path) r
    in
    (match tree with
    | Leaf sym -> codes.(sym) <- [ false ]  (* degenerate one-symbol code *)
    | Node _ -> walk [] tree);
    codes

  let encode codes corpus =
    R.nonleaf ();
    let bits = Buffer.create (String.length corpus) in
    String.iter
      (fun c ->
        List.iter (fun bit -> Buffer.add_char bits (if bit then '1' else '0'))
          codes.(Char.code c))
      corpus;
    Buffer.contents bits

  let decode tree bits n =
    R.nonleaf ();
    let out = Buffer.create n in
    let pos = ref 0 in
    let total = String.length bits in
    while Buffer.length out < n do
      let rec walk = function
        | Leaf sym -> Buffer.add_char out (Char.chr sym)
        | Node (l, r) ->
            if !pos >= total then invalid_arg "truncated bit stream";
            let bit = bits.[!pos] = '1' in
            incr pos;
            walk (if bit then r else l)
      in
      (match tree with
      | Leaf sym ->
          incr pos;
          Buffer.add_char out (Char.chr sym)
      | Node _ -> walk tree)
    done;
    Buffer.contents out

  let run ~size =
    R.nonleaf ();
    let corpus = gen_corpus size in
    let freq = frequencies corpus in
    let tree = build_tree freq in
    let codes = assign_codes tree in
    let bits = encode codes corpus in
    let decoded = decode tree bits (String.length corpus) in
    if decoded <> corpus then -1
    else (String.length bits * 31) + (Hashtbl.hash bits land 0xFFFF)
end
