(** Hand-written edge-case programs with traced expected outcomes.

    These are the seed corpus for the fuzzer: each entry is replayed
    through the oracle before any generated programs run, and its
    native outcome is additionally pinned to [expect] so a bug that
    shifts all three models in lockstep still fails.  The battery
    covers the one-shot / discontinue corners called out in the issue
    (double-resume after a normal return, discontinue of a
    never-resumed continuation, effects raised in a handler's return
    branch) plus division payloads, callbacks-as-effect-barriers,
    reperform chains, exceptions crossing handlers, and a
    deep-recursion capture. *)

type entry = {
  name : string;
  note : string;
  program : Ir.program;
  expect : Outcome.t;
}

val entries : entry list
