lib/conformance/corpus.mli: Ir Outcome
