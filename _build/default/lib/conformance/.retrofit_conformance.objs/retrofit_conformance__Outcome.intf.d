lib/conformance/outcome.mli:
