lib/conformance/ir.mli:
