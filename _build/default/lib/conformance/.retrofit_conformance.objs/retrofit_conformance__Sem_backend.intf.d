lib/conformance/sem_backend.mli: Ir Outcome Retrofit_semantics
