lib/conformance/oracle.mli: Ir Outcome Retrofit_fiber
