lib/conformance/fuzz.mli: Gen Ir Oracle Retrofit_fiber
