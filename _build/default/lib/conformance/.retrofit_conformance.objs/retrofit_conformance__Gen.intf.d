lib/conformance/gen.mli: Ir Retrofit_util
