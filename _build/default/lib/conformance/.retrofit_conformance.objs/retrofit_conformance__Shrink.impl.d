lib/conformance/shrink.ml: Hashtbl Ir List
