lib/conformance/ir.ml: Hashtbl List Printf String
