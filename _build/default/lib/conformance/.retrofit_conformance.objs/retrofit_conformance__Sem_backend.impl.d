lib/conformance/sem_backend.ml: Ir List Outcome Printf Retrofit_semantics
