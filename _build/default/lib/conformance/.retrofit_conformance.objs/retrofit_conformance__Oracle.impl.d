lib/conformance/oracle.ml: Buffer Fiber_backend Ir List Native_backend Outcome Printf Retrofit_fiber Sem_backend
