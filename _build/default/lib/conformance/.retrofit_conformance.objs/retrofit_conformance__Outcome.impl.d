lib/conformance/outcome.ml: Printf
