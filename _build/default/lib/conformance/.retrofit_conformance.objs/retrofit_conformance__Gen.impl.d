lib/conformance/gen.ml: Ir List Printf Retrofit_util
