lib/conformance/corpus.ml: Ir Outcome Printf
