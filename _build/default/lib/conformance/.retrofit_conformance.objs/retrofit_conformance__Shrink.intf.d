lib/conformance/shrink.mli: Ir
