lib/conformance/fuzz.ml: Buffer Corpus Gen Hashtbl Ir List Oracle Outcome Printf Shrink
