lib/conformance/fiber_backend.ml: Array Ir List Outcome Retrofit_dwarf Retrofit_fiber Retrofit_util
