lib/conformance/fiber_backend.mli: Ir Outcome Retrofit_fiber Retrofit_util
