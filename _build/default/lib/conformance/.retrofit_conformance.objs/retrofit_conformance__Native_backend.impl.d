lib/conformance/native_backend.ml: Effect Fun Hashtbl Ir List Outcome Retrofit_core
