lib/conformance/native_backend.mli: Ir Outcome
