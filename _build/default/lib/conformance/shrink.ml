(* Candidate replacements for a single expression node: simpler
   expressions that keep the program well-formed often enough to be
   worth trying (Ir.validate filters the rest). *)
let node_candidates (e : Ir.expr) : Ir.expr list =
  let subs =
    match e with
    | Ir.Int _ | Ir.Var _ -> []
    | Ir.Binop (_, a, b) | Ir.Let (_, a, b) | Ir.Seq (a, b) -> [ a; b ]
    | Ir.If (a, b, c) -> [ a; b; c ]
    | Ir.Call (_, args) -> args
    | Ir.Raise (_, e) | Ir.Perform (_, e) | Ir.Continue (_, e) | Ir.Ext_id e -> [ e ]
    | Ir.Discontinue (_, _, e) | Ir.Callback (_, e) -> [ e ]
    | Ir.Try (b, _) -> [ b ]
    | Ir.Handle h -> snd h.h_body
  in
  let structural =
    match e with
    | Ir.Try (b, cases) when List.length cases > 1 ->
        (* drop one case at a time *)
        List.mapi
          (fun i _ -> Ir.Try (b, List.filteri (fun j _ -> j <> i) cases))
          cases
    | Ir.Try (b, [ _ ]) -> [ b ]
    | Ir.Handle h ->
        Ir.Call (fst h.h_body, snd h.h_body)
        :: List.mapi
             (fun i _ ->
               Ir.Handle
                 { h with h_exncs = List.filteri (fun j _ -> j <> i) h.h_exncs })
             h.h_exncs
        @ List.mapi
            (fun i _ ->
              Ir.Handle { h with h_effcs = List.filteri (fun j _ -> j <> i) h.h_effcs })
            h.h_effcs
    | _ -> []
  in
  let const = match e with Ir.Int 0 -> [] | _ -> [ Ir.Int 0 ] in
  const @ subs @ structural

(* Every program obtained from [e] by replacing exactly one node with
   one of its candidates; [wrap] rebuilds the whole program around the
   modified expression. *)
let rec expr_variants (e : Ir.expr) (wrap : Ir.expr -> Ir.program) : Ir.program list =
  let here = List.map wrap (node_candidates e) in
  let inside =
    match e with
    | Ir.Int _ | Ir.Var _ -> []
    | Ir.Binop (op, a, b) ->
        expr_variants a (fun a' -> wrap (Ir.Binop (op, a', b)))
        @ expr_variants b (fun b' -> wrap (Ir.Binop (op, a, b')))
    | Ir.If (a, b, c) ->
        expr_variants a (fun a' -> wrap (Ir.If (a', b, c)))
        @ expr_variants b (fun b' -> wrap (Ir.If (a, b', c)))
        @ expr_variants c (fun c' -> wrap (Ir.If (a, b, c')))
    | Ir.Let (x, a, b) ->
        expr_variants a (fun a' -> wrap (Ir.Let (x, a', b)))
        @ expr_variants b (fun b' -> wrap (Ir.Let (x, a, b')))
    | Ir.Seq (a, b) ->
        expr_variants a (fun a' -> wrap (Ir.Seq (a', b)))
        @ expr_variants b (fun b' -> wrap (Ir.Seq (a, b')))
    | Ir.Call (f, args) ->
        List.concat
          (List.mapi
             (fun i a ->
               expr_variants a (fun a' ->
                   wrap (Ir.Call (f, List.mapi (fun j x -> if j = i then a' else x) args))))
             args)
    | Ir.Raise (l, e) -> expr_variants e (fun e' -> wrap (Ir.Raise (l, e')))
    | Ir.Perform (l, e) -> expr_variants e (fun e' -> wrap (Ir.Perform (l, e')))
    | Ir.Continue (k, e) -> expr_variants e (fun e' -> wrap (Ir.Continue (k, e')))
    | Ir.Discontinue (k, l, e) ->
        expr_variants e (fun e' -> wrap (Ir.Discontinue (k, l, e')))
    | Ir.Ext_id e -> expr_variants e (fun e' -> wrap (Ir.Ext_id e'))
    | Ir.Callback (f, e) -> expr_variants e (fun e' -> wrap (Ir.Callback (f, e')))
    | Ir.Try (b, cases) ->
        expr_variants b (fun b' -> wrap (Ir.Try (b', cases)))
        @ List.concat
            (List.mapi
               (fun i (l, x, h) ->
                 expr_variants h (fun h' ->
                     wrap
                       (Ir.Try
                          ( b,
                            List.mapi
                              (fun j c -> if j = i then (l, x, h') else c)
                              cases ))))
               cases)
    | Ir.Handle h ->
        let f, args = h.h_body in
        List.concat
          (List.mapi
             (fun i a ->
               expr_variants a (fun a' ->
                   wrap
                     (Ir.Handle
                        {
                          h with
                          h_body =
                            (f, List.mapi (fun j x -> if j = i then a' else x) args);
                        })))
             args)
  in
  here @ inside

let variants (p : Ir.program) : Ir.program list =
  List.concat
    (List.mapi
       (fun i (fn : Ir.fn) ->
         expr_variants fn.fn_body (fun body' ->
             {
               p with
               Ir.fns =
                 List.mapi
                   (fun j f -> if j = i then { f with Ir.fn_body = body' } else f)
                   p.fns;
             }))
       p.fns)

let fn_refs (fn : Ir.fn) =
  let acc = ref [] in
  let add f = if not (List.mem f !acc) then acc := f :: !acc in
  let rec go = function
    | Ir.Int _ | Ir.Var _ -> ()
    | Ir.Binop (_, a, b) | Ir.Let (_, a, b) | Ir.Seq (a, b) ->
        go a;
        go b
    | Ir.If (a, b, c) ->
        go a;
        go b;
        go c
    | Ir.Call (f, args) ->
        add f;
        List.iter go args
    | Ir.Raise (_, e) | Ir.Perform (_, e) | Ir.Continue (_, e)
    | Ir.Discontinue (_, _, e)
    | Ir.Ext_id e ->
        go e
    | Ir.Callback (f, e) ->
        add f;
        go e
    | Ir.Try (b, cases) ->
        go b;
        List.iter (fun (_, _, e) -> go e) cases
    | Ir.Handle h ->
        add (fst h.h_body);
        add h.h_ret;
        List.iter (fun (_, g) -> add g) h.h_exncs;
        List.iter (fun (_, g) -> add g) h.h_effcs;
        List.iter go (snd h.h_body)
  in
  go fn.Ir.fn_body;
  !acc

let prune (p : Ir.program) : Ir.program =
  let by_name = List.map (fun (f : Ir.fn) -> (f.fn_name, f)) p.fns in
  let live = Hashtbl.create 16 in
  let rec mark name =
    if not (Hashtbl.mem live name) then begin
      Hashtbl.replace live name ();
      match List.assoc_opt name by_name with
      | None -> ()
      | Some fn -> List.iter mark (fn_refs fn)
    end
  in
  mark p.main;
  { p with Ir.fns = List.filter (fun (f : Ir.fn) -> Hashtbl.mem live f.fn_name) p.fns }

let minimize ~interesting (p : Ir.program) : Ir.program =
  let valid q = match Ir.validate q with Ok () -> true | Error _ -> false in
  let current = ref p in
  let progress = ref true in
  let rounds = ref 0 in
  while !progress && !rounds < 200 do
    incr rounds;
    progress := false;
    let n = Ir.program_nodes !current in
    let cands =
      variants !current
      |> List.map prune
      |> List.filter (fun q -> Ir.program_nodes q < n && valid q)
      |> List.sort (fun a b -> compare (Ir.program_nodes a) (Ir.program_nodes b))
    in
    match List.find_opt interesting cands with
    | Some q ->
        current := q;
        progress := true
    | None -> ()
  done;
  !current
