type binop = Add | Sub | Mul | Div | Lt | Le | Eq

type expr =
  | Int of int
  | Var of string
  | Binop of binop * expr * expr
  | If of expr * expr * expr
  | Let of string * expr * expr
  | Seq of expr * expr
  | Call of string * expr list
  | Raise of string * expr
  | Try of expr * (string * string * expr) list
  | Perform of string * expr
  | Handle of handle
  | Continue of string * expr
  | Discontinue of string * string * expr
  | Ext_id of expr
  | Callback of string * expr

and handle = {
  h_body : string * expr list;
  h_ret : string;
  h_exncs : (string * string) list;
  h_effcs : (string * string) list;
}

type kind = Plain | Eff_case

type fn = {
  fn_name : string;
  fn_params : string list;
  fn_kind : kind;
  fn_body : expr;
}

type program = { fns : fn list; main : string }

(* ------------------------------------------------------------------ *)
(* Size *)

let rec expr_nodes = function
  | Int _ | Var _ -> 1
  | Binop (_, a, b) | Seq (a, b) | Let (_, a, b) -> 1 + expr_nodes a + expr_nodes b
  | If (a, b, c) -> 1 + expr_nodes a + expr_nodes b + expr_nodes c
  | Call (_, args) -> List.fold_left (fun n a -> n + expr_nodes a) 1 args
  | Raise (_, e) | Perform (_, e) | Continue (_, e) | Discontinue (_, _, e)
  | Ext_id e
  | Callback (_, e) ->
      1 + expr_nodes e
  | Try (b, cases) ->
      List.fold_left (fun n (_, _, e) -> n + expr_nodes e) (1 + expr_nodes b) cases
  | Handle h -> List.fold_left (fun n a -> n + expr_nodes a) 1 (snd h.h_body)

let program_nodes p =
  List.fold_left (fun n f -> n + expr_nodes f.fn_body) 0 p.fns

(* ------------------------------------------------------------------ *)
(* Printing *)

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Lt -> "<"
  | Le -> "<="
  | Eq -> "=="

let rec expr_to_string = function
  | Int n -> string_of_int n
  | Var x -> x
  | Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_to_string op)
        (expr_to_string b)
  | If (c, t, f) ->
      Printf.sprintf "(if %s then %s else %s)" (expr_to_string c) (expr_to_string t)
        (expr_to_string f)
  | Let (x, e1, e2) ->
      Printf.sprintf "(let %s = %s in %s)" x (expr_to_string e1) (expr_to_string e2)
  | Seq (a, b) -> Printf.sprintf "(%s; %s)" (expr_to_string a) (expr_to_string b)
  | Call (f, args) ->
      Printf.sprintf "%s(%s)" f (String.concat ", " (List.map expr_to_string args))
  | Raise (l, e) -> Printf.sprintf "(raise %s %s)" l (expr_to_string e)
  | Try (b, cases) ->
      Printf.sprintf "(try %s with %s)" (expr_to_string b)
        (String.concat " | "
           (List.map
              (fun (l, x, e) -> Printf.sprintf "%s %s -> %s" l x (expr_to_string e))
              cases))
  | Perform (l, e) -> Printf.sprintf "(perform %s %s)" l (expr_to_string e)
  | Handle h ->
      let f, args = h.h_body in
      let cases =
        Printf.sprintf "ret %s" h.h_ret
        :: List.map (fun (l, g) -> Printf.sprintf "exn %s -> %s" l g) h.h_exncs
        @ List.map (fun (l, g) -> Printf.sprintf "eff %s -> %s" l g) h.h_effcs
      in
      Printf.sprintf "(handle %s(%s) { %s })" f
        (String.concat ", " (List.map expr_to_string args))
        (String.concat " | " cases)
  | Continue (k, e) -> Printf.sprintf "(continue %s %s)" k (expr_to_string e)
  | Discontinue (k, l, e) ->
      Printf.sprintf "(discontinue %s %s %s)" k l (expr_to_string e)
  | Ext_id e -> Printf.sprintf "(ext_id %s)" (expr_to_string e)
  | Callback (f, e) -> Printf.sprintf "(callback %s %s)" f (expr_to_string e)

let fn_to_string f =
  Printf.sprintf "%s %s(%s) = %s"
    (match f.fn_kind with Plain -> "fun" | Eff_case -> "eff")
    f.fn_name
    (String.concat ", " f.fn_params)
    (expr_to_string f.fn_body)

let program_to_string p =
  String.concat "\n" (List.map fn_to_string p.fns @ [ "main = " ^ p.main ])

(* ------------------------------------------------------------------ *)
(* Well-formedness *)

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

(* [known] maps a function name to its definition for names legal at
   the current point: earlier functions plus (for calls) the function
   being checked, so recursion is self- or backward-referencing only —
   which is what the semantics lowering's nested [let rec]s scope. *)
let check_fn known (self : fn) =
  let lookup ctx name =
    match Hashtbl.find_opt known name with
    | Some f -> f
    | None ->
        if name = self.fn_name then self
        else invalid "%s: %s references %s before its definition" self.fn_name ctx name
  in
  let kvar =
    match (self.fn_kind, self.fn_params) with
    | Eff_case, [ _; k ] -> Some k
    | Eff_case, _ -> invalid "%s: Eff_case must take exactly two parameters" self.fn_name
    | Plain, _ -> None
  in
  let int_params =
    match kvar with Some _ -> [ List.hd self.fn_params ] | None -> self.fn_params
  in
  let check_plain ctx ~arity name =
    let f = lookup ctx name in
    if f.fn_kind <> Plain then invalid "%s: %s must be a plain function" self.fn_name name;
    if List.length f.fn_params <> arity then
      invalid "%s: %s has arity %d, %s needs %d" self.fn_name name
        (List.length f.fn_params) ctx arity
  in
  let rec go vars = function
    | Int _ -> ()
    | Var x ->
        if Some x = kvar then
          invalid "%s: continuation %s used as an integer" self.fn_name x;
        if not (List.mem x vars) then invalid "%s: unbound variable %s" self.fn_name x
    | Binop (_, a, b) | Seq (a, b) ->
        go vars a;
        go vars b
    | If (a, b, c) ->
        go vars a;
        go vars b;
        go vars c
    | Let (x, a, b) ->
        go vars a;
        go (x :: vars) b
    | Call (f, args) ->
        check_plain "call" ~arity:(List.length args) f;
        List.iter (go vars) args
    | Raise (_, e) | Perform (_, e) -> go vars e
    | Try (b, cases) ->
        go vars b;
        List.iter (fun (_, x, e) -> go (x :: vars) e) cases
    | Handle h ->
        let f, args = h.h_body in
        check_plain "handle body" ~arity:(List.length args) f;
        List.iter (go vars) args;
        check_plain "return case" ~arity:1 h.h_ret;
        List.iter (fun (_, g) -> check_plain "exception case" ~arity:1 g) h.h_exncs;
        List.iter
          (fun (_, g) ->
            let gf = lookup "effect case" g in
            if gf.fn_kind <> Eff_case then
              invalid "%s: effect case %s is not an Eff_case function" self.fn_name g)
          h.h_effcs
    | Continue (k, e) | Discontinue (k, _, e) ->
        if Some k <> kvar then
          invalid "%s: %s is not this function's continuation parameter" self.fn_name k;
        go vars e
    | Ext_id e -> go vars e
    | Callback (f, e) ->
        check_plain "callback" ~arity:1 f;
        go vars e
  in
  go int_params self.fn_body

let validate (p : program) : (unit, string) result =
  try
    let known = Hashtbl.create 16 in
    List.iter
      (fun f ->
        if Hashtbl.mem known f.fn_name then invalid "duplicate function %s" f.fn_name;
        check_fn known f;
        Hashtbl.add known f.fn_name f)
      p.fns;
    (match Hashtbl.find_opt known p.main with
    | Some { fn_kind = Plain; fn_params = []; _ } -> ()
    | Some _ -> invalid "main %s must be a 0-argument plain function" p.main
    | None -> invalid "main %s is not defined" p.main);
    Ok ()
  with Invalid msg -> Error msg
