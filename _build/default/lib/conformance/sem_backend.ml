module S = Retrofit_semantics

let binop : Ir.binop -> S.Ast.binop = function
  | Ir.Add -> S.Ast.Add
  | Ir.Sub -> S.Ast.Sub
  | Ir.Mul -> S.Ast.Mul
  | Ir.Div -> S.Ast.Div
  | Ir.Lt -> S.Ast.Lt
  | Ir.Le -> S.Ast.Le
  | Ir.Eq -> S.Ast.Eq

(* Calls are curried applications; a 0-argument function takes a dummy
   unit stand-in.  Currying preserves left-to-right argument order: the
   partial applications interleave, but each argument is still fully
   evaluated before the next one starts. *)
let apply f args =
  match args with
  | [] -> S.Ast.App (S.Ast.Var f, S.Ast.Int 0)
  | args -> List.fold_left (fun acc a -> S.Ast.App (acc, a)) (S.Ast.Var f) args

let rec lower_expr (e : Ir.expr) : S.Ast.t =
  match e with
  | Ir.Int n -> S.Ast.Int n
  | Ir.Var x -> S.Ast.Var x
  | Ir.Binop (op, a, b) -> S.Ast.Binop (binop op, lower_expr a, lower_expr b)
  | Ir.If (c, t, f) -> S.Ast.If (lower_expr c, lower_expr t, lower_expr f)
  | Ir.Let (x, a, b) -> S.Ast.Let (x, lower_expr a, lower_expr b)
  | Ir.Seq (a, b) -> S.Ast.Let ("%seq", lower_expr a, lower_expr b)
  | Ir.Call (f, args) -> apply f (List.map lower_expr args)
  | Ir.Raise (l, e) -> S.Ast.Raise (l, lower_expr e)
  | Ir.Try (b, cases) ->
      S.Ast.Match
        ( lower_expr b,
          {
            S.Ast.return_var = "%v";
            return_body = S.Ast.Var "%v";
            exn_cases = List.map (fun (l, x, e) -> (l, x, lower_expr e)) cases;
            eff_cases = [];
          } )
  | Ir.Perform (l, e) -> S.Ast.Perform (l, lower_expr e)
  | Ir.Handle h ->
      (* Evaluate the body arguments before installing the handler:
         the fiber machine pushes them before HandleI switches fibers,
         and the native backend evaluates them before match_with. *)
      let f, args = h.h_body in
      let names = List.mapi (fun i _ -> Printf.sprintf "%%a%d" i) args in
      let handler =
        {
          S.Ast.return_var = "%r";
          return_body = S.Ast.App (S.Ast.Var h.h_ret, S.Ast.Var "%r");
          exn_cases =
            List.map
              (fun (l, g) -> (l, "%x", S.Ast.App (S.Ast.Var g, S.Ast.Var "%x")))
              h.h_exncs;
          eff_cases =
            List.map
              (fun (l, g) ->
                ( l,
                  "%x",
                  "%k",
                  S.Ast.App (S.Ast.App (S.Ast.Var g, S.Ast.Var "%x"), S.Ast.Var "%k")
                ))
              h.h_effcs;
        }
      in
      let call = apply f (List.map (fun x -> S.Ast.Var x) names) in
      List.fold_right2
        (fun x a acc -> S.Ast.Let (x, lower_expr a, acc))
        names args
        (S.Ast.Match (call, handler))
  | Ir.Continue (k, e) -> S.Ast.Continue (S.Ast.Var k, lower_expr e)
  | Ir.Discontinue (k, l, e) -> S.Ast.Discontinue (S.Ast.Var k, l, lower_expr e)
  | Ir.Ext_id e ->
      S.Ast.App (S.Ast.Lam (S.Ast.C_lam, "%x", S.Ast.Var "%x"), lower_expr e)
  | Ir.Callback (f, e) ->
      (* λᶜ whose body applies an OCaml closure: ExtCall then Callback
         in the Fig 2d rules — a fresh OCaml stack over the C frames. *)
      S.Ast.App
        ( S.Ast.Lam (S.Ast.C_lam, "%x", S.Ast.App (S.Ast.Var f, S.Ast.Var "%x")),
          lower_expr e )

(* Each function is a [let rec] over the rest of the program; multiple
   parameters curry into inner λ°s bound under the recursive binding. *)
let lower_fn (fn : Ir.fn) rest =
  let p0, inner =
    match fn.fn_params with
    | [] -> ("%u", lower_expr fn.fn_body)
    | p :: ps ->
        ( p,
          List.fold_right
            (fun p acc -> S.Ast.Lam (S.Ast.OCaml_lam, p, acc))
            ps (lower_expr fn.fn_body) )
  in
  S.Ast.Letrec (fn.fn_name, p0, inner, rest)

let lower (p : Ir.program) : S.Ast.t =
  List.fold_right lower_fn p.fns (S.Ast.App (S.Ast.Var p.main, S.Ast.Int 0))

let run ?(fuel = 5_000_000) ?(one_shot = true) (p : Ir.program) : Outcome.t =
  match S.Machine.run ~fuel ~one_shot (lower p) with
  | S.Machine.Value (S.Syntax.V_int n) -> Outcome.Value n
  | S.Machine.Value _ -> Outcome.Model_error "semantics: non-integer result"
  | S.Machine.Uncaught_exception (l, v) ->
      Outcome.normalize_exn l (match v with S.Syntax.V_int n -> n | _ -> 0)
  | S.Machine.Stuck_config (msg, _) -> Outcome.Model_error ("semantics stuck: " ^ msg)
  | S.Machine.Out_of_fuel _ -> Outcome.Fuel_out
