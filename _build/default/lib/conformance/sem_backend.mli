(** Lowering to the §4 semantics (the {!Retrofit_semantics} CEK
    machine).

    Functions become a chain of curried [let rec]s (earlier functions
    scope over later ones, matching the IR's definition-before-use
    rule); [Handle] pre-evaluates its body arguments in [let]s {e
    outside} the installed handler, so an effect or exception raised
    while evaluating an argument escapes the new handler exactly as it
    does in the fiber machine and natively; [Ext_id]/[Callback] wrap
    their target in a λᶜ so the value round-trips through a C stack
    segment.  Runs under the one-shot discipline by default so all
    three models share §5's linearity. *)

val lower : Ir.program -> Retrofit_semantics.Ast.t

val run : ?fuel:int -> ?one_shot:bool -> Ir.program -> Outcome.t
(** Default fuel 5 million steps; [one_shot] defaults to [true] (pass
    [false] to re-expose the multi-shot semantics as a seeded
    mutation). *)
