type t =
  | Value of int
  | Exn of string * int
  | Unhandled
  | One_shot
  | Fuel_out
  | Model_error of string

let normalize_exn l p =
  if l = "Unhandled" then Unhandled
  else if l = "Invalid_argument" then One_shot
  else Exn (l, p)

let equal a b =
  match (a, b) with
  | Value m, Value n -> m = n
  | Exn (l, p), Exn (l', p') -> l = l' && p = p'
  | Unhandled, Unhandled | One_shot, One_shot | Fuel_out, Fuel_out -> true
  | Model_error _, _ | _, Model_error _ -> false
  | _ -> false

let to_string = function
  | Value n -> Printf.sprintf "value %d" n
  | Exn (l, p) -> Printf.sprintf "exn %s %d" l p
  | Unhandled -> "unhandled"
  | One_shot -> "one-shot violation"
  | Fuel_out -> "fuel exhausted"
  | Model_error m -> Printf.sprintf "model error: %s" m
