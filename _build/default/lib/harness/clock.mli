(** Monotonic wall-clock time in nanoseconds. *)

val now_ns : unit -> int64

val elapsed_ns : (unit -> 'a) -> 'a * int64
(** Run the thunk and return its result with the elapsed time. *)
