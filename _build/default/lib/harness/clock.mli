(** Monotonic wall-clock time in nanoseconds. *)

val now_ns : unit -> int64

val elapsed_ns : (unit -> 'a) -> 'a * int64
(** Run the thunk and return its result with the elapsed time. *)

(** {1 Virtual time}

    The deterministic clock that stamps eventlog entries: advanced by
    simulated workloads, never by the host.  These delegate to
    {!Retrofit_util.Vclock}, the process-wide instance shared with the
    trace and metrics libraries. *)

val virtual_now : unit -> int

val set_virtual : int -> unit

val advance_virtual : int -> unit

val reset_virtual : unit -> unit
