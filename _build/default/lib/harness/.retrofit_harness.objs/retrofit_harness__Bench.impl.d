lib/harness/bench.ml: Array Clock Int64 Retrofit_util Sys
