lib/harness/bench.mli:
