lib/harness/clock.mli:
