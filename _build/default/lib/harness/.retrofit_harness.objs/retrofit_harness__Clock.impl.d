lib/harness/clock.ml: Int64 Monotonic_clock Retrofit_util
