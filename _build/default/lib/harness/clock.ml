let now_ns () = Monotonic_clock.now ()

let elapsed_ns f =
  let t0 = now_ns () in
  let result = f () in
  let t1 = now_ns () in
  (result, Int64.sub t1 t0)
