(** Recursive-descent parser for regex source strings.

    Grammar (standard precedence: alternation < concatenation <
    repetition):

    {v
      alt    ::= concat ('|' concat)*
      concat ::= repeat*
      repeat ::= atom ('*' | '+' | '?')*
      atom   ::= literal | '.' | class | '(' alt ')' | '\' meta
      class  ::= '[' '^'? (item)+ ']'     item ::= c | c '-' c
    v} *)

val parse : string -> (Syntax.t, string) result
(** [Error msg] carries a human-readable description including the
    offending position. *)

val parse_exn : string -> Syntax.t
(** @raise Invalid_argument on a malformed pattern. *)
