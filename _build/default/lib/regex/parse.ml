exception Error of string

type state = { src : string; mutable pos : int }

let fail st msg = raise (Error (Printf.sprintf "%s at position %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let eat st c =
  match peek st with
  | Some x when x = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

let parse_escaped st =
  advance st;
  match peek st with
  | None -> fail st "dangling backslash"
  | Some c ->
      advance st;
      let resolved =
        match c with 'n' -> '\n' | 't' -> '\t' | 'r' -> '\r' | c -> c
      in
      resolved

let parse_class st =
  eat st '[';
  let negated = peek st = Some '^' in
  if negated then advance st;
  let ranges = ref [] in
  let rec items () =
    match peek st with
    | None -> fail st "unterminated class"
    | Some ']' -> advance st
    | Some c ->
        let lo = if c = '\\' then parse_escaped st else (advance st; c) in
        (match (peek st, st.pos + 1 < String.length st.src) with
        | Some '-', true when st.src.[st.pos + 1] <> ']' ->
            advance st;
            let hi =
              match peek st with
              | Some '\\' -> parse_escaped st
              | Some h ->
                  advance st;
                  h
              | None -> fail st "unterminated range"
            in
            if hi < lo then fail st "inverted range";
            ranges := (lo, hi) :: !ranges
        | _ -> ranges := (lo, lo) :: !ranges);
        items ()
  in
  items ();
  if !ranges = [] then fail st "empty class";
  Syntax.Class { negated; ranges = List.rev !ranges }

let rec parse_alt st =
  let left = parse_concat st in
  match peek st with
  | Some '|' ->
      advance st;
      Syntax.Alt (left, parse_alt st)
  | _ -> left

and parse_concat st =
  let rec go acc =
    match peek st with
    | None | Some ')' | Some '|' -> acc
    | _ ->
        let atom = parse_repeat st in
        go (if acc = Syntax.Empty then atom else Syntax.Seq (acc, atom))
  in
  go Syntax.Empty

and parse_repeat st =
  let atom = parse_atom st in
  let rec go acc =
    match peek st with
    | Some '*' ->
        advance st;
        go (Syntax.Star acc)
    | Some '+' ->
        advance st;
        go (Syntax.Plus acc)
    | Some '?' ->
        advance st;
        go (Syntax.Opt acc)
    | _ -> acc
  in
  go atom

and parse_atom st =
  match peek st with
  | None -> fail st "expected an atom"
  | Some '(' ->
      advance st;
      let inner = parse_alt st in
      eat st ')';
      inner
  | Some '[' -> parse_class st
  | Some '.' ->
      advance st;
      Syntax.Any
  | Some '\\' -> Syntax.Char (parse_escaped st)
  | Some ('*' | '+' | '?' | ')' | '|' | ']') -> fail st "unexpected metacharacter"
  | Some c ->
      advance st;
      Syntax.Char c

let parse src =
  let st = { src; pos = 0 } in
  match parse_alt st with
  | re ->
      if st.pos <> String.length src then
        Result.Error (Printf.sprintf "trailing input at position %d" st.pos)
      else Result.Ok re
  | exception Error msg -> Result.Error msg

let parse_exn src =
  match parse src with
  | Ok re -> re
  | Error msg -> invalid_arg ("Regex.Parse: " ^ msg)
