type pred =
  | P_char of char
  | P_any
  | P_class of bool * (char * char) list

type inst =
  | Consume of pred * int
  | Split of int * int
  | Jmp of int
  | Accept

type t = {
  prog : inst array;
  start : int;
  first_set : bool array;  (* indexed by byte: can a match start with it? *)
  nullable : bool;
}

let pred_matches pred c =
  match pred with
  | P_char x -> c = x
  | P_any -> c <> '\n'
  | P_class (negated, ranges) -> Syntax.class_mem ~negated ~ranges c

(* Emit instructions into [code]; every fragment ends by jumping to the
   continuation address passed in. *)
let compile_syntax re =
  let code = Retrofit_util.Vec.create () in
  let emit i =
    Retrofit_util.Vec.push code i;
    Retrofit_util.Vec.length code - 1
  in
  let patch addr i = Retrofit_util.Vec.set code addr i in
  (* [go re k] compiles [re] with continuation address [k], returning the
     fragment's entry address.  Compilation proceeds right-to-left so that
     continuations are always known. *)
  let rec go re k =
    match re with
    | Syntax.Empty -> k
    | Syntax.Char c -> emit (Consume (P_char c, k))
    | Syntax.Any -> emit (Consume (P_any, k))
    | Syntax.Class { negated; ranges } -> emit (Consume (P_class (negated, ranges), k))
    | Syntax.Seq (a, b) ->
        let entry_b = go b k in
        go a entry_b
    | Syntax.Alt (a, b) ->
        let entry_a = go a k in
        let entry_b = go b k in
        emit (Split (entry_a, entry_b))
    | Syntax.Star a ->
        let split = emit (Jmp 0) (* placeholder *) in
        let entry_a = go a split in
        patch split (Split (entry_a, k));
        split
    | Syntax.Plus a ->
        let split = emit (Jmp 0) (* placeholder *) in
        let entry_a = go a split in
        patch split (Split (entry_a, k));
        entry_a
    | Syntax.Opt a ->
        let entry_a = go a k in
        emit (Split (entry_a, k))
  in
  let accept = emit Accept in
  let start = go re accept in
  (Retrofit_util.Vec.to_array code, start)

(* Epsilon-closure insertion of [addr] into the thread list, using a
   generation stamp to deduplicate. *)
let rec add_thread prog stamps gen list addr =
  if stamps.(addr) <> gen then begin
    stamps.(addr) <- gen;
    match prog.(addr) with
    | Jmp k -> add_thread prog stamps gen list k
    | Split (a, b) ->
        add_thread prog stamps gen list a;
        add_thread prog stamps gen list b
    | Consume _ | Accept -> Retrofit_util.Vec.push list addr
  end

let compute_first prog start =
  let n = Array.length prog in
  let stamps = Array.make n (-1) in
  let threads = Retrofit_util.Vec.create () in
  add_thread prog stamps 0 threads start;
  let first = Array.make 256 false in
  let nullable = ref false in
  Retrofit_util.Vec.iter
    (fun addr ->
      match prog.(addr) with
      | Accept -> nullable := true
      | Consume (pred, _) ->
          for b = 0 to 255 do
            if (not first.(b)) && pred_matches pred (Char.chr b) then first.(b) <- true
          done
      | Jmp _ | Split _ -> assert false)
    threads;
  (first, !nullable)

let compile re =
  let prog, start = compile_syntax re in
  let first_set, nullable = compute_first prog start in
  { prog; start; first_set; nullable }

let size t = Array.length t.prog

let can_start t c = t.first_set.(Char.code c)

let nullable t = t.nullable

let match_at t s pos =
  let prog = t.prog in
  let n = String.length s in
  if pos < 0 || pos > n then invalid_arg "Nfa.match_at: position out of bounds";
  let stamps = Array.make (Array.length prog) (-1) in
  let current = ref (Retrofit_util.Vec.create ()) in
  let next = ref (Retrofit_util.Vec.create ()) in
  let gen = ref 0 in
  add_thread prog stamps !gen !current t.start;
  let last_accept = ref None in
  let i = ref pos in
  let running = ref true in
  while !running do
    (* Record an accept at the current offset if any thread reached it. *)
    if Retrofit_util.Vec.exists (fun addr -> prog.(addr) = Accept) !current then
      last_accept := Some !i;
    if !i >= n || Retrofit_util.Vec.is_empty !current then running := false
    else begin
      let c = s.[!i] in
      incr gen;
      Retrofit_util.Vec.clear !next;
      Retrofit_util.Vec.iter
        (fun addr ->
          match prog.(addr) with
          | Consume (pred, k) when pred_matches pred c ->
              add_thread prog stamps !gen !next k
          | _ -> ())
        !current;
      let tmp = !current in
      current := !next;
      next := tmp;
      incr i
    end
  done;
  !last_accept
