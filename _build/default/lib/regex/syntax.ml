type t =
  | Empty
  | Char of char
  | Any
  | Class of { negated : bool; ranges : (char * char) list }
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t

let rec equal a b =
  match (a, b) with
  | Empty, Empty | Any, Any -> true
  | Char c, Char d -> c = d
  | Class a, Class b -> a.negated = b.negated && a.ranges = b.ranges
  | Seq (a1, a2), Seq (b1, b2) | Alt (a1, a2), Alt (b1, b2) ->
      equal a1 b1 && equal a2 b2
  | Star a, Star b | Plus a, Plus b | Opt a, Opt b -> equal a b
  | _ -> false

let is_meta c = String.contains "()[]|*+?.\\-^" c

let escape_char buf c =
  if is_meta c then Buffer.add_char buf '\\';
  Buffer.add_char buf c

(* Precedence levels: alternation 0, concatenation 1, repetition 2,
   atoms 3.  Parenthesise when printing a lower level inside a higher. *)
let rec emit buf prec re =
  let paren p body =
    if p < prec then begin
      Buffer.add_char buf '(';
      body ();
      Buffer.add_char buf ')'
    end
    else body ()
  in
  match re with
  | Empty -> if prec > 0 then Buffer.add_string buf "()"
  | Char c -> escape_char buf c
  | Any -> Buffer.add_char buf '.'
  | Class { negated; ranges } ->
      Buffer.add_char buf '[';
      if negated then Buffer.add_char buf '^';
      List.iter
        (fun (lo, hi) ->
          if lo = hi then escape_char buf lo
          else begin
            escape_char buf lo;
            Buffer.add_char buf '-';
            escape_char buf hi
          end)
        ranges;
      Buffer.add_char buf ']'
  | Seq (a, b) ->
      (* concatenation parses left-nested, so a right-nested child must
         be parenthesised to survive a print/parse roundtrip *)
      paren 1 (fun () ->
          emit buf 1 a;
          emit buf 2 b)
  | Alt (a, b) ->
      (* alternation parses right-nested; parenthesise the left child *)
      paren 0 (fun () ->
          emit buf 1 a;
          Buffer.add_char buf '|';
          emit buf 0 b)
  | Star a ->
      paren 2 (fun () ->
          emit buf 3 a;
          Buffer.add_char buf '*')
  | Plus a ->
      paren 2 (fun () ->
          emit buf 3 a;
          Buffer.add_char buf '+')
  | Opt a ->
      paren 2 (fun () ->
          emit buf 3 a;
          Buffer.add_char buf '?')

let to_string re =
  let buf = Buffer.create 32 in
  emit buf 0 re;
  Buffer.contents buf

let pp fmt re = Format.pp_print_string fmt (to_string re)

let class_mem ~negated ~ranges c =
  let inside = List.exists (fun (lo, hi) -> lo <= c && c <= hi) ranges in
  if negated then not inside else inside
