(** High-level regex operations.

    These are the operations the regex-redux benchmark needs: counting
    matches of alternation patterns and sequence-rewriting via
    replacement.  Matching is leftmost-longest over non-overlapping
    occurrences. *)

type t

val of_string : string -> t
(** Compile a pattern.  @raise Invalid_argument on a malformed pattern. *)

val of_syntax : Syntax.t -> t

val is_match : t -> string -> bool
(** Does the pattern match anywhere in the subject? *)

val find : t -> ?start:int -> string -> (int * int) option
(** Leftmost match at or after [start] (default 0), as an
    [(offset, length)] pair with the longest length at that offset. *)

val count : t -> string -> int
(** Number of non-overlapping leftmost-longest matches.  Empty-width
    matches advance by one byte so counting always terminates. *)

val replace_all : t -> by:string -> string -> string
(** Replace every non-overlapping match with [by]. *)

val split_on : t -> string -> string list
(** Subject fragments between matches (no empty trailing fragment is
    dropped; a subject with no match yields a singleton list). *)
