type t = { nfa : Nfa.t }

let of_syntax re = { nfa = Nfa.compile re }

let of_string src = of_syntax (Parse.parse_exn src)

let find t ?(start = 0) s =
  let n = String.length s in
  if start < 0 || start > n then invalid_arg "Engine.find: start out of bounds";
  let rec scan pos =
    if pos > n then None
    else if pos < n && not (Nfa.can_start t.nfa s.[pos] || Nfa.nullable t.nfa) then
      scan (pos + 1)
    else begin
      match Nfa.match_at t.nfa s pos with
      | Some stop -> Some (pos, stop - pos)
      | None -> scan (pos + 1)
    end
  in
  scan start

let is_match t s = find t s <> None

let fold_matches t s f acc =
  let n = String.length s in
  let rec go pos acc =
    if pos > n then acc
    else begin
      match find t ~start:pos s with
      | None -> acc
      | Some (off, len) ->
          let acc = f acc off len in
          (* Zero-width matches must still make progress. *)
          go (if len = 0 then off + 1 else off + len) acc
    end
  in
  go 0 acc

let count t s = fold_matches t s (fun acc _ _ -> acc + 1) 0

let replace_all t ~by s =
  let buf = Buffer.create (String.length s) in
  let last =
    fold_matches t s
      (fun last off len ->
        Buffer.add_substring buf s last (off - last);
        Buffer.add_string buf by;
        off + len)
      0
  in
  Buffer.add_substring buf s last (String.length s - last);
  Buffer.contents buf

let split_on t s =
  let pieces, last =
    fold_matches t s
      (fun (pieces, last) off len -> (String.sub s last (off - last) :: pieces, off + len))
      ([], 0)
  in
  List.rev (String.sub s last (String.length s - last) :: pieces)
