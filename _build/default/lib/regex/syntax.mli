(** Abstract syntax of the regular-expression dialect.

    The engine supports the constructs needed by the regex-redux
    benchmark and general text workloads: literals, the any-byte wildcard,
    character classes (with ranges and negation), concatenation,
    alternation, and the [*], [+], [?] repetitions. *)

type t =
  | Empty  (** matches the empty string *)
  | Char of char
  | Any  (** [.] — any byte except newline *)
  | Class of { negated : bool; ranges : (char * char) list }
      (** [\[a-z0\]] style classes; a singleton char is the range (c, c) *)
  | Seq of t * t
  | Alt of t * t
  | Star of t
  | Plus of t
  | Opt of t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints a regex source string that re-parses to an equal AST. *)

val to_string : t -> string

val class_mem : negated:bool -> ranges:(char * char) list -> char -> bool
(** Membership test used by both the compiler and the tests. *)
