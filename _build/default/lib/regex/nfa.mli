(** Thompson construction and NFA simulation.

    A regex is compiled to a program of [Consume]/[Split]/[Jmp]/[Accept]
    instructions (Thompson, 1968; the "Pike VM" layout).  Simulation runs
    all threads in lockstep, so matching is O(input × states) with no
    backtracking blow-up. *)

type t

val compile : Syntax.t -> t

val size : t -> int
(** Number of compiled instructions, for diagnostics. *)

val match_at : t -> string -> int -> int option
(** [match_at t s pos] is [Some e] when the regex matches [s] between
    [pos] (inclusive) and [e] (exclusive), with [e] the {e longest} such
    end; [None] when no match starts at [pos]. *)

val can_start : t -> char -> bool
(** [can_start t c] is false only if no match can begin with byte [c];
    used to skip positions quickly when scanning. *)

val nullable : t -> bool
(** Whether the regex accepts the empty string. *)
