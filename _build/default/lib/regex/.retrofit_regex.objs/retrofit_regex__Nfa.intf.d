lib/regex/nfa.mli: Syntax
