lib/regex/engine.mli: Syntax
