lib/regex/parse.ml: List Printf Result String Syntax
