lib/regex/engine.ml: Buffer List Nfa Parse String
