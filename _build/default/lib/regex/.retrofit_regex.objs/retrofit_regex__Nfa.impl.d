lib/regex/nfa.ml: Array Char Retrofit_util String Syntax
