lib/regex/parse.mli: Syntax
