lib/monadlib/conc.mli:
