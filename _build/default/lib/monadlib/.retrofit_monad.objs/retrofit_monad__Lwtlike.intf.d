lib/monadlib/lwtlike.mli:
