lib/monadlib/lwtlike.ml: List Queue
