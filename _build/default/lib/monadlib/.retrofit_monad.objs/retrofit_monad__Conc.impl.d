lib/monadlib/conc.ml: Queue
