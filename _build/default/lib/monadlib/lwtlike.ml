type 'a state_internal =
  | Resolved of 'a
  | Failed of exn
  | Pending of ('a -> unit) list ref * (exn -> unit) list ref

type 'a t = { mutable st : 'a state_internal }

type 'a resolver = 'a t

let return v = { st = Resolved v }

let fail e = { st = Failed e }

let wait () =
  let p = { st = Pending (ref [], ref []) } in
  (p, p)

let on_completion p ~ok ~err =
  match p.st with
  | Resolved v -> ok v
  | Failed e -> err e
  | Pending (oks, errs) ->
      oks := ok :: !oks;
      errs := err :: !errs

let wakeup p v =
  match p.st with
  | Pending (oks, _) ->
      p.st <- Resolved v;
      List.iter (fun f -> f v) (List.rev !oks)
  | _ -> invalid_arg "Lwtlike.wakeup: already completed"

let wakeup_exn p e =
  match p.st with
  | Pending (_, errs) ->
      p.st <- Failed e;
      List.iter (fun f -> f e) (List.rev !errs)
  | _ -> invalid_arg "Lwtlike.wakeup_exn: already completed"

let bind m f =
  match m.st with
  | Resolved v -> f v
  | Failed e -> fail e
  | Pending _ ->
      let p, r = wait () in
      on_completion m
        ~ok:(fun v ->
          let inner = try f v with e -> fail e in
          on_completion inner ~ok:(fun w -> wakeup r w) ~err:(fun e -> wakeup_exn r e))
        ~err:(fun e -> wakeup_exn r e);
      p

let ( >>= ) = bind

let map f m = bind m (fun v -> return (f v))

let catch f handler =
  match (try f () with e -> fail e) with
  | { st = Resolved _ } as p -> p
  | { st = Failed e; _ } -> handler e
  | pending ->
      let p, r = wait () in
      on_completion pending
        ~ok:(fun v -> wakeup r v)
        ~err:(fun e ->
          let recovered = try handler e with e' -> fail e' in
          on_completion recovered ~ok:(fun v -> wakeup r v)
            ~err:(fun e' -> wakeup_exn r e'));
      p

(* The pause queue, drained by [run]'s main loop. *)
let paused : unit resolver Queue.t = Queue.create ()

let pause () =
  let p, r = wait () in
  Queue.push r paused;
  p

exception Async_failure of exn

let async f =
  let p = try f () with e -> fail e in
  on_completion p ~ok:(fun () -> ()) ~err:(fun e -> raise (Async_failure e))

let join ps =
  let remaining = ref (List.length ps) in
  if !remaining = 0 then return ()
  else begin
    let p, r = wait () in
    let failed = ref None in
    let finish () =
      decr remaining;
      if !remaining = 0 then begin
        match !failed with None -> wakeup r () | Some e -> wakeup_exn r e
      end
    in
    List.iter
      (fun q ->
        on_completion q ~ok:(fun () -> finish ())
          ~err:(fun e ->
            if !failed = None then failed := Some e;
            finish ()))
      ps;
    p
  end

let state p =
  match p.st with
  | Resolved v -> `Resolved v
  | Failed e -> `Failed e
  | Pending _ -> `Pending

let run p =
  let rec loop () =
    match p.st with
    | Resolved v -> v
    | Failed e -> raise e
    | Pending _ -> (
        match Queue.pop paused with
        | r ->
            wakeup r ();
            loop ()
        | exception Queue.Empty -> failwith "Lwtlike.run: deadlock")
  in
  loop ()

(* MVar from promises, mirroring Lwt_mvar. *)
type 'a mv_state =
  | Full of 'a * ('a * unit resolver) Queue.t
  | Empty of 'a resolver Queue.t

type 'a mvar = { mutable mst : 'a mv_state }

let mvar_empty () = { mst = Empty (Queue.create ()) }

let mvar_put mv v =
  match mv.mst with
  | Full (_, putters) ->
      let p, r = wait () in
      Queue.push (v, r) putters;
      p
  | Empty takers -> (
      match Queue.pop takers with
      | taker ->
          wakeup taker v;
          return ()
      | exception Queue.Empty ->
          mv.mst <- Full (v, Queue.create ());
          return ())

let mvar_take mv =
  match mv.mst with
  | Empty takers ->
      let p, r = wait () in
      Queue.push r takers;
      p
  | Full (v, putters) ->
      (match Queue.pop putters with
      | v', putter ->
          mv.mst <- Full (v', putters);
          wakeup putter ()
      | exception Queue.Empty -> mv.mst <- Empty (Queue.create ()));
      return v
