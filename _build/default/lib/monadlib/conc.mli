(** A Poor Man's Concurrency Monad (Claessen 1999).

    The paper's CPS baseline (§6.2, §6.3): threads are continuations
    allocated on the heap, scheduled round-robin from a queue of
    actions.  The downsides the paper lists — heap allocation of
    continuation frames, GC pressure, no stack for backtraces — are
    inherent to this representation and are what the effect-handler
    comparison measures.

    The scheduler is single-threaded and non-reentrant: one [run] (or
    one {!start}ed stepper) at a time. *)

type 'a t

val return : 'a -> 'a t

val bind : 'a t -> ('a -> 'b t) -> 'b t

val ( >>= ) : 'a t -> ('a -> 'b t) -> 'b t

val map : ('a -> 'b) -> 'a t -> 'b t

val atom : (unit -> 'a) -> 'a t
(** Run an effectful computation as one atomic step. *)

val yield : unit t
(** Go to the back of the run queue. *)

val fork : unit t -> unit t
(** Start a concurrent thread. *)

(** {1 MVars} *)

type 'a mvar

val mvar_empty : unit -> 'a mvar

val mvar_full : 'a -> 'a mvar

val put : 'a mvar -> 'a -> unit t
(** Parks the thread while the MVar is full. *)

val take : 'a mvar -> 'a t
(** Parks the thread while the MVar is empty. *)

val poll : 'a mvar -> 'a option
(** External non-blocking take, for driving a generator from outside
    the monad; never parks. *)

(** {1 Running} *)

val run : unit t -> unit
(** Drive the thread and all its forks to completion (or to a state
    where every thread is parked, which simply ends the run). *)

val run_main : 'a t -> 'a option
(** [run] a computation and return its result, [None] if it never
    finished (deadlock). *)

type stepper

val start : unit t -> stepper

val step : stepper -> bool
(** Execute one scheduled action; false when the queue is empty. *)
