(* Claessen's representation: a computation is CPS over actions, and an
   action is a resumable step tree. *)

type action = Atom of (unit -> action) | Fork_act of action * action | Stop

type 'a t = ('a -> action) -> action

let return v c = c v

let bind m f c = m (fun a -> f a c)

let ( >>= ) = bind

let map f m = bind m (fun a -> return (f a))

let atom f c = Atom (fun () -> c (f ()))

let yield c = Atom (fun () -> c ())

let stop _c = Stop

let fork m c = Fork_act (m (fun () -> Stop), c ())

(* The ready queue of the scheduler currently running.  Parked MVar
   continuations are enqueued here when their MVar is completed, which
   is why the scheduler is non-reentrant. *)
let ready : action Queue.t ref = ref (Queue.create ())

type 'a mv_state =
  | Full of 'a * ('a * (unit -> action)) Queue.t
  | Empty of ('a -> action) Queue.t

type 'a mvar = { mutable st : 'a mv_state }

let mvar_empty () = { st = Empty (Queue.create ()) }

let mvar_full v = { st = Full (v, Queue.create ()) }

let put mv v c =
  Atom
    (fun () ->
      match mv.st with
      | Full (_, putters) ->
          Queue.push (v, fun () -> c ()) putters;
          Stop
      | Empty takers -> (
          match Queue.pop takers with
          | taker ->
              Queue.push (taker v) !ready;
              c ()
          | exception Queue.Empty ->
              mv.st <- Full (v, Queue.create ());
              c ()))

let take mv c =
  Atom
    (fun () ->
      match mv.st with
      | Empty takers ->
          Queue.push c takers;
          Stop
      | Full (v, putters) -> (
          (match Queue.pop putters with
          | v', putter ->
              mv.st <- Full (v', putters);
              Queue.push (putter ()) !ready
          | exception Queue.Empty -> mv.st <- Empty (Queue.create ()));
          c v))

let poll mv =
  match mv.st with
  | Empty _ -> None
  | Full (v, putters) ->
      (match Queue.pop putters with
      | v', putter ->
          mv.st <- Full (v', putters);
          Queue.push (putter ()) !ready
      | exception Queue.Empty -> mv.st <- Empty (Queue.create ()));
      Some v

type stepper = action Queue.t

let start m =
  let q = Queue.create () in
  ready := q;
  Queue.push (m (fun () -> Stop)) q;
  q

let step q =
  ready := q;
  match Queue.pop q with
  | Atom thunk ->
      Queue.push (thunk ()) q;
      true
  | Fork_act (a, b) ->
      Queue.push a q;
      Queue.push b q;
      true
  | Stop -> not (Queue.is_empty q)
  | exception Queue.Empty -> false

let run m =
  let q = start m in
  while step q do
    ()
  done

let run_main m =
  let result = ref None in
  run (bind m (fun v -> atom (fun () -> result := Some v)) >>= fun () -> stop);
  !result
