(** A small Lwt-like promise library.

    The second monadic baseline (§6.3.2 compares against Lwt): promises
    with resolver-style completion, callback chaining in [bind], a
    [pause] queue driven by the scheduler loop, and an MVar built from
    promises.  As in Lwt, computation is structured around callbacks on
    heap-allocated promise records; there is no per-thread stack. *)

type 'a t

type 'a resolver

val return : 'a -> 'a t

val fail : exn -> 'a t

val bind : 'a t -> ('a -> 'b t) -> 'b t

val ( >>= ) : 'a t -> ('a -> 'b t) -> 'b t

val map : ('a -> 'b) -> 'a t -> 'b t

val catch : (unit -> 'a t) -> (exn -> 'a t) -> 'a t

val wait : unit -> 'a t * 'a resolver

val wakeup : 'a resolver -> 'a -> unit
(** @raise Invalid_argument if already resolved. *)

val wakeup_exn : 'a resolver -> exn -> unit

val async : (unit -> unit t) -> unit
(** Run a thread for its side effects; an escaping exception is raised
    by the main loop. *)

val pause : unit -> unit t
(** Cooperative yield: resumes on the next main-loop turn. *)

val join : unit t list -> unit t

val state : 'a t -> [ `Resolved of 'a | `Failed of exn | `Pending ]

val run : 'a t -> 'a
(** Drive the pause queue until the promise resolves.
    @raise Failure on deadlock (pending with an empty pause queue). *)

(** {1 MVar} *)

type 'a mvar

val mvar_empty : unit -> 'a mvar

val mvar_put : 'a mvar -> 'a -> unit t

val mvar_take : 'a mvar -> 'a t
