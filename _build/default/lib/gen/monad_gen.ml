module Conc = Retrofit_monad.Conc

let of_tree t =
  let mv : int option Conc.mvar = Conc.mvar_empty () in
  (* Monadic in-order traversal putting every element into the MVar. *)
  let rec produce tree =
    match tree with
    | Tree.Leaf -> Conc.return ()
    | Tree.Node (l, v, r) ->
        Conc.(produce l >>= fun () -> put mv (Some v) >>= fun () -> produce r)
  in
  let stepper =
    Conc.start Conc.(produce t >>= fun () -> put mv None)
  in
  let finished = ref false in
  fun () ->
    if !finished then None
    else begin
      let rec drive () =
        match Conc.poll mv with
        | Some (Some v) -> Some v
        | Some None ->
            finished := true;
            None
        | None -> if Conc.step stepper then drive () else None
      in
      drive ()
    end

let sum_all next =
  let rec go acc = match next () with Some v -> go (acc + v) | None -> acc in
  go 0
