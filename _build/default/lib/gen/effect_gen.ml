let of_iter (type a) (iter : (a -> unit) -> unit) : unit -> a option =
  let module M = struct
    type _ Effect.t += Yield : a -> unit Effect.t
  end in
  let open Effect.Deep in
  let next = ref (fun () -> None) in
  let start () =
    match_with
      (fun () -> iter (fun x -> Effect.perform (M.Yield x)))
      ()
      {
        retc =
          (fun () ->
            next := (fun () -> None);
            None);
        exnc = raise;
        effc =
          (fun (type c) (eff : c Effect.t) ->
            match eff with
            | M.Yield x ->
                Some
                  (fun (k : (c, a option) continuation) ->
                    next := (fun () -> continue k ());
                    Some x)
            | _ -> None);
      }
  in
  next := start;
  fun () -> !next ()

let of_tree t = of_iter (fun f -> Tree.iter f t)

let sum_all next =
  let rec go acc = match next () with Some v -> go (acc + v) | None -> acc in
  go 0
