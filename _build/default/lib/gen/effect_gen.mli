(** Generators derived from iterators with effect handlers (§6.3.1).

    Given {e any} data structure with an [iter], [of_iter] derives its
    generator: each element the iterator visits suspends the traversal
    in a fiber and hands the element out; the next demand resumes it.
    This is the generic construction the paper benchmarks (its footnoted
    gist), as opposed to the hand-specialised CPS version. *)

val of_iter : (('a -> unit) -> unit) -> unit -> 'a option
(** [of_iter iter] is a [next] function producing the elements [iter]
    visits, then [None] forever.  The traversal runs lazily inside a
    fiber; it starts on the first call. *)

val of_tree : Tree.t -> unit -> int option
(** The tree generator used by the benchmark: [of_iter (fun f -> Tree.iter f t)]. *)

val sum_all : (unit -> int option) -> int
(** Drain a generator, summing — the benchmark's consumption loop. *)
