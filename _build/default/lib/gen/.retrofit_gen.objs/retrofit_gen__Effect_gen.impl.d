lib/gen/effect_gen.ml: Effect Tree
