lib/gen/cps_gen.ml: Tree
