lib/gen/monad_gen.mli: Tree
