lib/gen/cps_gen.mli: Tree
