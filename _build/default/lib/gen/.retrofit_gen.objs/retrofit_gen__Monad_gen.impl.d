lib/gen/monad_gen.ml: Retrofit_monad Tree
