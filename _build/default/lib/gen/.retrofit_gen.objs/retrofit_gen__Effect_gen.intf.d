lib/gen/effect_gen.mli: Tree
