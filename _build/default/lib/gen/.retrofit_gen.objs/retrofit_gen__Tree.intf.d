lib/gen/tree.mli:
