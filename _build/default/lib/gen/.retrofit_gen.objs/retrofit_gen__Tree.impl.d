lib/gen/tree.ml: List
