(* Defunctionalised in-order traversal: [kont] is the data-type image of
   "what remains to visit" (Danvy-Nielsen defunctionalisation of the
   CPS'd iterator). *)
type kont = Done | Visit of int * Tree.t * kont
(* Visit (v, r, k): hand out v, then traverse r, then continue with k. *)

(* Descend the left spine, accumulating the pending visits. *)
let rec descend t k =
  match t with
  | Tree.Leaf -> k
  | Tree.Node (l, v, r) -> descend l (Visit (v, r, k))

let of_tree t =
  let state = ref (descend t Done) in
  fun () ->
    match !state with
    | Done -> None
    | Visit (v, r, k) ->
        state := descend r k;
        Some v

let sum_all next =
  let rec go acc = match next () with Some v -> go (acc + v) | None -> acc in
  go 0
