(** The hand-written, defunctionalised CPS generator (§6.3.1's [cps]
    baseline).

    Specialised to binary trees: the traversal's continuation is
    reified as a first-order data type and stored between calls, so no
    stack switching (and no genericity) is involved.  The paper finds
    this the fastest variant, with the effect version 2.76× slower but
    generic. *)

val of_tree : Tree.t -> unit -> int option

val sum_all : (unit -> int option) -> int
