(** The concurrency-monad generator (§6.3.1's [monad] baseline).

    A producer thread in the {!Retrofit_monad.Conc} monad traverses the
    tree, pushing each element through an MVar; [next] drives the
    monadic scheduler until the MVar fills and takes the element.  All
    suspended work lives in heap-allocated closures — the allocation
    behaviour the paper contrasts with fiber stacks. *)

val of_tree : Tree.t -> unit -> int option

val sum_all : (unit -> int option) -> int
