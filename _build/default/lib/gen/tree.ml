type t = Leaf | Node of t * int * t

let complete ~depth =
  if depth < 0 then invalid_arg "Tree.complete: negative depth";
  (* Number nodes in order, threading the next label through the build. *)
  let rec build depth next =
    if depth = 0 then (Leaf, next)
    else begin
      let left, next = build (depth - 1) next in
      let label = next in
      let right, next = build (depth - 1) (next + 1) in
      (Node (left, label, right), next)
    end
  in
  fst (build depth 1)

let rec size = function Leaf -> 0 | Node (l, _, r) -> size l + 1 + size r

let rec iter f = function
  | Leaf -> ()
  | Node (l, v, r) ->
      iter f l;
      f v;
      iter f r

let to_list t =
  let acc = ref [] in
  iter (fun v -> acc := v :: !acc) t;
  List.rev !acc

let sum t =
  let acc = ref 0 in
  iter (fun v -> acc := !acc + v) t;
  !acc
