(** Complete binary trees, the data structure of the generator
    benchmark (§6.3.1: traversing a complete binary tree of depth 25
    through a derived generator). *)

type t = Leaf | Node of t * int * t

val complete : depth:int -> t
(** A complete tree of the given depth whose nodes are numbered in
    in-order starting from 1; [complete ~depth:0] is a leaf. *)

val size : t -> int

val iter : (int -> unit) -> t -> unit
(** In-order traversal — the [iter] from which generators are derived. *)

val to_list : t -> int list

val sum : t -> int
(** In-order sum via [iter], used as the benchmark checksum. *)
