lib/metrics/metrics.mli: Retrofit_util
