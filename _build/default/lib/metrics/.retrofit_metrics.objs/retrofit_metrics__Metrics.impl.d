lib/metrics/metrics.ml: Buffer Fun Hashtbl List Printf Retrofit_util String
