(* A process-wide metrics registry: named, labelled instruments
   (counter / gauge / histogram) with an atomic snapshot and a
   Prometheus-style text exposition.

   The registry unifies the scattered per-subsystem statistics —
   fiber-machine probe counters, stack-cache hit/miss stats, the
   loadgen error taxonomy, scheduler run-queue accounting — behind one
   schema.  It is disabled by default: every mutator returns after a
   single branch on [enabled], so the pinned tables and frozen counters
   of the benchmark suite are bit-identical whether or not the library
   is linked.  Hot call sites should additionally guard with [on ()] so
   the disabled path allocates nothing (no label lists, no closures).

   Determinism: snapshots and expositions are sorted by (name, labels),
   never by hash order, so two runs of the same seeded workload render
   byte-identical text. *)

module Histogram = Retrofit_util.Histogram
module Counter_tbl = Retrofit_util.Counter

type labels = (string * string) list

type instrument =
  | Counter of int ref
  | Gauge of int ref
  | Hist of Histogram.t

type t = { tbl : ((string * labels) , instrument) Hashtbl.t }

let create () = { tbl = Hashtbl.create 64 }

let default = create ()

let enabled = ref false

let on () = !enabled

let set_enabled v = enabled := v

(* Enable for the duration of [f], restoring the previous state: tests
   and scoped experiment runs must not leak enablement. *)
let scoped ?(r = default) f =
  let saved = !enabled in
  enabled := true;
  Fun.protect ~finally:(fun () -> enabled := saved) (fun () -> f r)

let reset r = Hashtbl.reset r.tbl

let norm_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let find_or_add r name labels make =
  let key = (name, norm_labels labels) in
  match Hashtbl.find_opt r.tbl key with
  | Some i -> i
  | None ->
      let i = make () in
      Hashtbl.add r.tbl key i;
      i

let kind_mismatch name =
  invalid_arg (Printf.sprintf "Metrics: %s already registered with another kind" name)

let inc ?(r = default) ?(labels = []) ?(by = 1) name =
  if !enabled then
    match find_or_add r name labels (fun () -> Counter (ref 0)) with
    | Counter c -> c := !c + by
    | _ -> kind_mismatch name

let set_gauge ?(r = default) ?(labels = []) name v =
  if !enabled then
    match find_or_add r name labels (fun () -> Gauge (ref 0)) with
    | Gauge g -> g := v
    | _ -> kind_mismatch name

let default_hist_max = 60_000_000_000

let observe ?(r = default) ?(labels = []) ?(max_value = default_hist_max) name v =
  if !enabled then
    match
      find_or_add r name labels (fun () ->
          Hist (Histogram.create ~max_value ()))
    with
    | Hist h -> Histogram.record h v
    | _ -> kind_mismatch name

(* Fold a whole pre-recorded histogram into the registry's instrument
   (creating it as a copy on first sight), preserving bucket sums. *)
let observe_histogram ?(r = default) ?(labels = []) name src =
  if !enabled then begin
    let key = (name, norm_labels labels) in
    match Hashtbl.find_opt r.tbl key with
    | None -> Hashtbl.add r.tbl key (Hist (Histogram.copy src))
    | Some (Hist h) -> Histogram.merge_into ~dst:h src
    | Some _ -> kind_mismatch name
  end

(* Ingest an ad-hoc [Util.Counter] table (e.g. a fiber machine's probe
   counters) as registry counters under [prefix]. *)
let merge_counter_table ?(r = default) ?(labels = []) ?(prefix = "") table =
  if !enabled then
    List.iter
      (fun (name, v) -> inc ~r ~labels ~by:v (prefix ^ name))
      (Counter_tbl.to_list table)

let get ?(r = default) ?(labels = []) name =
  match Hashtbl.find_opt r.tbl (name, norm_labels labels) with
  | Some (Counter c) -> !c
  | Some (Gauge g) -> !g
  | Some (Hist h) -> Histogram.count h
  | None -> 0

(* ------------------------------------------------------------------ *)
(* Snapshots and exposition *)

type value =
  | Counter_v of int
  | Gauge_v of int
  | Hist_v of {
      count : int;
      saturated : int;
      min_v : int;
      max_v : int;
      p50 : int;
      p90 : int;
      p99 : int;
    }

type sample = { name : string; labels : labels; value : value }

let compare_sample a b =
  match String.compare a.name b.name with
  | 0 -> compare a.labels b.labels
  | c -> c

let snapshot ?(r = default) () =
  Hashtbl.fold
    (fun (name, labels) inst acc ->
      let value =
        match inst with
        | Counter c -> Counter_v !c
        | Gauge g -> Gauge_v !g
        | Hist h ->
            let q p =
              if Histogram.count h = 0 then 0 else Histogram.value_at_percentile h p
            in
            Hist_v
              {
                count = Histogram.count h;
                saturated = Histogram.saturated h;
                min_v = Histogram.min_value h;
                max_v = Histogram.max_recorded h;
                p50 = q 50.0;
                p90 = q 90.0;
                p99 = q 99.0;
              }
      in
      { name; labels; value } :: acc)
    r.tbl []
  |> List.sort compare_sample

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
      ^ "}"

let quantile_labels labels q = norm_labels (("quantile", q) :: labels)

(* Prometheus text exposition (version 0.0.4 flavoured): one # TYPE
   line per metric name, then one line per labelled sample.  Histograms
   render as summaries with fixed quantiles plus _count / _saturated. *)
let to_prometheus ?(r = default) () =
  let samples = snapshot ~r () in
  let buf = Buffer.create 1024 in
  let last_name = ref "" in
  List.iter
    (fun s ->
      let type_line kind =
        if s.name <> !last_name then begin
          Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" s.name kind);
          last_name := s.name
        end
      in
      match s.value with
      | Counter_v v ->
          type_line "counter";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" s.name (render_labels s.labels) v)
      | Gauge_v v ->
          type_line "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" s.name (render_labels s.labels) v)
      | Hist_v h ->
          type_line "summary";
          List.iter
            (fun (q, v) ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %d\n" s.name
                   (render_labels (quantile_labels s.labels q))
                   v))
            [ ("0.5", h.p50); ("0.9", h.p90); ("0.99", h.p99) ];
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" s.name (render_labels s.labels) h.count);
          Buffer.add_string buf
            (Printf.sprintf "%s_saturated%s %d\n" s.name (render_labels s.labels)
               h.saturated))
    samples;
  Buffer.contents buf
