(** Process-wide metrics registry.

    Named, labelled instruments — counters, gauges and HDR histograms —
    with a deterministic snapshot and a Prometheus-style text
    exposition.  Disabled by default: every mutator returns after a
    single branch on the static enable flag, so the frozen counter
    tables and pinned benchmark outputs are unchanged by linking this
    library.  Guard hot call sites with [on ()] so the disabled path
    performs no allocation at all.

    Snapshots and expositions are sorted by (name, labels), never by
    hash order: two runs of the same seeded workload render
    byte-identical text. *)

type t

type labels = (string * string) list

val create : unit -> t

val default : t
(** The process-wide registry used when [?r] is omitted. *)

val on : unit -> bool

val set_enabled : bool -> unit

val scoped : ?r:t -> (t -> 'a) -> 'a
(** Enable for the duration of the callback (restoring the previous
    state), passing the registry through. *)

val reset : t -> unit

val inc : ?r:t -> ?labels:labels -> ?by:int -> string -> unit
(** Increment a counter (created at zero on first use).
    @raise Invalid_argument if the name is registered as another kind. *)

val set_gauge : ?r:t -> ?labels:labels -> string -> int -> unit

val observe : ?r:t -> ?labels:labels -> ?max_value:int -> string -> int -> unit
(** Record one value into a histogram instrument (created on first use
    with [max_value], default 60 s in ns). *)

val observe_histogram : ?r:t -> ?labels:labels -> string -> Retrofit_util.Histogram.t -> unit
(** Fold an entire pre-recorded histogram into the instrument,
    preserving bucket sums (the registry stores a copy; the argument is
    not retained). *)

val merge_counter_table :
  ?r:t -> ?labels:labels -> ?prefix:string -> Retrofit_util.Counter.t -> unit
(** Ingest an ad-hoc counter table (e.g. a fiber machine's probe
    counters) as registry counters named [prefix ^ name]. *)

val get : ?r:t -> ?labels:labels -> string -> int
(** Current counter/gauge value (histograms: total count); 0 if absent. *)

type value =
  | Counter_v of int
  | Gauge_v of int
  | Hist_v of {
      count : int;
      saturated : int;
      min_v : int;
      max_v : int;
      p50 : int;
      p90 : int;
      p99 : int;
    }

type sample = { name : string; labels : labels; value : value }

val snapshot : ?r:t -> unit -> sample list
(** Atomic, deterministic view: sorted by (name, labels). *)

val to_prometheus : ?r:t -> unit -> string
(** Text exposition: [# TYPE] lines plus one line per sample;
    histograms render as summaries with 0.5/0.9/0.99 quantiles and
    [_count] / [_saturated] lines. *)
