type fde = { fde_fn : string; fde_start : int; fde_end : int; bytecode : int array }

type t = { entries : fde array }

let program_of_edits entry edits =
  (* edits are (code address, cfa offset), first at [entry] *)
  let rec go loc = function
    | [] -> []
    | (addr, offset) :: rest ->
        if addr < loc then invalid_arg "Table.build: edits out of order";
        let advance = if addr > loc then [ Cfi.Advance_loc (addr - loc) ] else [] in
        advance @ (Cfi.Def_cfa_offset offset :: go addr rest)
  in
  go entry edits

let build (compiled : Retrofit_fiber.Compile.compiled) =
  let entries =
    Array.map
      (fun (f : Retrofit_fiber.Compile.cfn) ->
        {
          fde_fn = f.fn_name;
          fde_start = f.entry;
          fde_end = f.code_end;
          bytecode = Cfi.encode (program_of_edits f.entry f.cfi_edits);
        })
      compiled.fns
  in
  Array.sort (fun a b -> compare a.fde_start b.fde_start) entries;
  { entries }

let find t ~pc =
  let lo = ref 0 and hi = ref (Array.length t.entries - 1) in
  let found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let e = t.entries.(mid) in
    if pc < e.fde_start then hi := mid - 1
    else if pc >= e.fde_end then lo := mid + 1
    else begin
      found := Some e;
      lo := !hi + 1
    end
  done;
  !found

let fdes t = t.entries

let total_bytecode_words t =
  Array.fold_left (fun acc e -> acc + Array.length e.bytecode) 0 t.entries
