(** Frame description entries and table construction.

    One FDE per compiled function, holding the function's code range and
    its encoded CFI bytecode.  [build] generates the table from the
    compiler's CFI edits — this is the analogue of the OCaml backend
    emitting [.cfi_*] directives (§5.5). *)

type fde = {
  fde_fn : string;
  fde_start : int;
  fde_end : int;  (** exclusive *)
  bytecode : int array;  (** encoded {!Cfi.program} *)
}

type t

val build : Retrofit_fiber.Compile.compiled -> t

val find : t -> pc:int -> fde option
(** Binary search by code address. *)

val fdes : t -> fde array

val total_bytecode_words : t -> int
(** Size of all unwind bytecode, for table-size reporting. *)
