lib/dwarf/cfi.ml: Array List Printf
