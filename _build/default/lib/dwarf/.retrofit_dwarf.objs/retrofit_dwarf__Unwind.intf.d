lib/dwarf/unwind.mli: Retrofit_fiber Table
