lib/dwarf/validate.mli: Retrofit_fiber Table
