lib/dwarf/cfi.mli:
