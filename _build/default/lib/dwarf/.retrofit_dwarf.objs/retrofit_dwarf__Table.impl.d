lib/dwarf/table.ml: Array Cfi Retrofit_fiber
