lib/dwarf/interp.mli: Table
