lib/dwarf/interp.ml: Array Cfi Table
