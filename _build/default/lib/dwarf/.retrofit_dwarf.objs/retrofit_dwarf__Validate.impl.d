lib/dwarf/validate.ml: List Printf Retrofit_fiber String Table Unwind
