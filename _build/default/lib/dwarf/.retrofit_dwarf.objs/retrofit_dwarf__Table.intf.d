lib/dwarf/table.mli: Retrofit_fiber
