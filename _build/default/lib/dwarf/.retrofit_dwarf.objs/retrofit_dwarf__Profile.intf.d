lib/dwarf/profile.mli: Retrofit_fiber Retrofit_metrics Table Unwind
