lib/dwarf/profile.ml: Buffer Hashtbl List Printf Retrofit_fiber Retrofit_metrics Retrofit_util String Table Unwind
