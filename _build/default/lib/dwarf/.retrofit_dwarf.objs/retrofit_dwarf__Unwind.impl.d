lib/dwarf/unwind.ml: Buffer Cfi Interp List Printf Retrofit_fiber Table
