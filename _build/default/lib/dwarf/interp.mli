(** CFI bytecode interpretation, and its precompiled alternative.

    [cfa_offset] interprets an FDE's bytecode from the function entry up
    to the requested pc — the on-demand interpretation DWARF mandates,
    whose cost is why perf prefers dumping the stack (§5.5).  Every
    executed bytecode operation is tallied in [ops] when a counter is
    supplied.

    [Precompiled] expands the bytecode once into a per-pc offset array,
    the technique Bastian et al. report speeds unwinding by up to 25×;
    the `ablation` bench compares the two. *)

val cfa_offset : ?ops:int ref -> Table.fde -> pc:int -> int
(** @raise Invalid_argument if [pc] is outside the FDE or precedes the
    first rule. *)

module Precompiled : sig
  type t

  val of_table : Table.t -> t

  val cfa_offset : t -> pc:int -> int option
  (** O(1) lookup. *)

  val size_words : t -> int
  (** Memory footprint of the expanded table, for the space-versus-time
      comparison. *)
end
