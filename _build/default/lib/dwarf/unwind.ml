module Machine = Retrofit_fiber.Machine
module Layout = Retrofit_fiber.Layout
module Fiber = Retrofit_fiber.Fiber
module Segment = Retrofit_fiber.Segment

type entry =
  | Frame of { fn : string; pc : int; cfa : int }
  | C_boundary
  | Fiber_boundary of int
  | Main_end
  | Captured_end

exception Unwind_error of string

let error fmt = Printf.ksprintf (fun msg -> raise (Unwind_error msg)) fmt

let backtrace_from ?interp_ops table machine ~pc ~sp =
  let out = ref [] in
  let emit e = out := e :: !out in
  let guard = ref 1_000_000 in
  let read addr =
    match Machine.read_mem machine addr with
    | v -> v
    | exception Invalid_argument msg -> error "bad memory read: %s" msg
  in
  let rec walk ~pc ~sp =
    decr guard;
    if !guard <= 0 then error "unwind did not terminate";
    match Table.find table ~pc with
    | None -> error "no FDE covers pc %d" pc
    | Some fde ->
        let offset = Interp.cfa_offset ?ops:interp_ops fde ~pc in
        let cfa = sp + offset in
        emit (Frame { fn = fde.Table.fde_fn; pc; cfa });
        let ra = read (cfa - Cfi.ra_offset) in
        if ra = Layout.ret_to_parent then begin
          (* Fiber bottom: locate the fiber from the address, read the
             parent id out of its handler_info, resume from the parent's
             saved registers. *)
          match Machine.fiber_of_addr machine cfa with
          | None -> error "no fiber owns address %d" cfa
          | Some f -> (
              let parent_id = read (Segment.top f.Fiber.seg - 1) in
              if parent_id < 0 then emit Captured_end
              else begin
                match Machine.fiber_by_id machine parent_id with
                | None -> error "parent fiber %d is not live" parent_id
                | Some p ->
                    emit (Fiber_boundary parent_id);
                    walk ~pc:p.Fiber.regs.pc ~sp:p.Fiber.regs.sp
              end)
        end
        else if ra = Layout.cb_done then begin
          emit C_boundary;
          (* Skip the boundary trap (2 words) and recover the saved
             pre-callback pc from the context word. *)
          let pre_pc = read (cfa + 2) in
          walk ~pc:pre_pc ~sp:(cfa + 3)
        end
        else if ra = Layout.main_done then emit Main_end
        else if Layout.is_sentinel ra then error "unexpected sentinel %d" ra
        else walk ~pc:ra ~sp:cfa
  in
  walk ~pc ~sp;
  List.rev !out

let backtrace ?interp_ops table machine =
  let f = Machine.current_fiber machine in
  backtrace_from ?interp_ops table machine ~pc:f.Fiber.regs.pc ~sp:f.Fiber.regs.sp

let backtrace_of_fiber ?interp_ops table machine (f : Fiber.t) =
  backtrace_from ?interp_ops table machine ~pc:f.Fiber.regs.pc ~sp:f.Fiber.regs.sp

let snapshot_continuations ?interp_ops table machine =
  List.map
    (fun (kid, fibers) ->
      (kid, backtrace_of_fiber ?interp_ops table machine (List.hd fibers)))
    (Machine.live_continuations machine)

let names entries =
  List.filter_map
    (function
      | Frame { fn; _ } -> Some fn
      | C_boundary -> Some "<C>"
      | Fiber_boundary _ -> None
      | Main_end -> Some "<main>"
      | Captured_end -> Some "<captured>")
    entries

let format entries =
  let buf = Buffer.create 256 in
  let n = ref 0 in
  List.iter
    (fun e ->
      (match e with
      | Frame { fn; pc; cfa } ->
          Buffer.add_string buf (Printf.sprintf "#%-2d %s () at pc=%d cfa=%d\n" !n fn pc cfa)
      | C_boundary -> Buffer.add_string buf (Printf.sprintf "#%-2d <C frames>\n" !n)
      | Fiber_boundary id ->
          Buffer.add_string buf (Printf.sprintf "--- fiber boundary (parent %d) ---\n" id)
      | Main_end -> Buffer.add_string buf (Printf.sprintf "#%-2d <main>\n" !n)
      | Captured_end ->
          Buffer.add_string buf "--- captured continuation (no parent) ---\n");
      match e with Fiber_boundary _ -> () | _ -> incr n)
    entries;
  Buffer.contents buf
