let cfa_offset ?ops (fde : Table.fde) ~pc =
  if pc < fde.fde_start || pc >= fde.fde_end then
    invalid_arg "Interp.cfa_offset: pc outside FDE";
  let tally () = match ops with Some r -> incr r | None -> () in
  let program = Cfi.decode fde.bytecode in
  let rec go loc offset = function
    | [] -> offset
    | Cfi.Advance_loc d :: rest ->
        tally ();
        let loc' = loc + d in
        if loc' > pc then offset else go loc' offset rest
    | Cfi.Def_cfa_offset o :: rest ->
        tally ();
        go loc (Some o) rest
  in
  match go fde.fde_start None program with
  | Some offset -> offset
  | None -> invalid_arg "Interp.cfa_offset: no rule at pc"

module Precompiled = struct
  type t = { base : int; offsets : int array }
  (* offsets.(pc - base) = cfa offset, or -1 for gaps between functions *)

  let of_table table =
    let fdes = Table.fdes table in
    if Array.length fdes = 0 then { base = 0; offsets = [||] }
    else begin
      let base = fdes.(0).Table.fde_start in
      let limit =
        Array.fold_left (fun acc f -> max acc f.Table.fde_end) base fdes
      in
      let offsets = Array.make (limit - base) (-1) in
      Array.iter
        (fun (f : Table.fde) ->
          let program = Cfi.decode f.bytecode in
          let rec fill loc offset = function
            | [] ->
                (match offset with
                | Some o ->
                    for a = loc to f.fde_end - 1 do
                      offsets.(a - base) <- o
                    done
                | None -> ())
            | Cfi.Advance_loc d :: rest ->
                (match offset with
                | Some o ->
                    for a = loc to min (loc + d) f.fde_end - 1 do
                      offsets.(a - base) <- o
                    done
                | None -> ());
                fill (loc + d) offset rest
            | Cfi.Def_cfa_offset o :: rest -> fill loc (Some o) rest
          in
          fill f.fde_start None program)
        fdes;
      { base; offsets }
    end

  let cfa_offset t ~pc =
    let i = pc - t.base in
    if i < 0 || i >= Array.length t.offsets then None
    else begin
      let o = t.offsets.(i) in
      if o < 0 then None else Some o
    end

  let size_words t = Array.length t.offsets
end
