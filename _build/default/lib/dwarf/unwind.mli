(** The cross-fiber stack walker (§5.5).

    Starting from the live registers of the current fiber, the walker
    repeatedly computes the CFA from the unwind table, reads the return
    address one word below it, and steps to the caller.  At segment
    boundaries it dispatches on the sentinel return addresses:

    - {e fiber bottom}: follow the fiber's parent pointer (read from the
      handler_info words in stack memory) and resume from the parent's
      saved registers — the paper's "follow the parent_fiber pointer and
      dereference the saved_sp";
    - {e callback bottom}: emit a C-frame marker, recover the
      pre-callback pc from the context word saved at callback entry, and
      continue below the boundary on the same fiber;
    - {e main bottom}: the walk is complete;
    - a fiber whose parent was severed (a captured continuation) ends
      the walk with a [Captured_end].

    The walker only consults the unwind table, stack memory, the fiber
    table and saved registers — never the machine's shadow stack, which
    exists precisely to validate this walk. *)

type entry =
  | Frame of { fn : string; pc : int; cfa : int }
  | C_boundary  (** intervening C frames *)
  | Fiber_boundary of int  (** crossed into the parent fiber with this id *)
  | Main_end
  | Captured_end

exception Unwind_error of string

val backtrace :
  ?interp_ops:int ref -> Table.t -> Retrofit_fiber.Machine.t -> entry list
(** @raise Unwind_error when the tables or memory are inconsistent —
    which the validator treats as a failure. *)

val backtrace_of_fiber :
  ?interp_ops:int ref ->
  Table.t ->
  Retrofit_fiber.Machine.t ->
  Retrofit_fiber.Fiber.t ->
  entry list
(** Unwind a {e suspended} fiber from its saved registers.  A captured
    continuation's chain ends with [Captured_end] at the severed
    parent. *)

val snapshot_continuations :
  ?interp_ops:int ref -> Table.t -> Retrofit_fiber.Machine.t -> (int * entry list) list
(** A backtrace for every live continuation — the "backtrace snapshot
    of all current requests" §6.3.4 credits effect handlers with
    enabling (available in Go, absent from Lwt/Async because monadic
    code has no stacks). *)

val names : entry list -> string list
(** Renders entries in the same format as
    {!Retrofit_fiber.Machine.shadow_backtrace}: function names, ["<C>"],
    ["<captured>"], ["<main>"].  [Fiber_boundary] is transparent, as the
    shadow walk does not mark it. *)

val format : entry list -> string
(** A gdb-style backtrace listing (one [#n] line per frame), as in
    Fig 1d. *)
