module Machine = Retrofit_fiber.Machine

type report = {
  probes : int;
  frames : int;
  mismatches : (string * string list * string list) list;
  interp_ops : int;
}

let empty = { probes = 0; frames = 0; mismatches = []; interp_ops = 0 }

let compare_traces table machine ~ops =
  let unwound = Unwind.names (Unwind.backtrace ~interp_ops:ops table machine) in
  let shadow = Machine.shadow_backtrace machine in
  if unwound = shadow then Ok (List.length unwound) else Error (unwound, shadow)

let check_now table machine =
  let ops = ref 0 in
  match compare_traces table machine ~ops with
  | Ok _ -> Ok ()
  | Error (unwound, shadow) ->
      Error
        (Printf.sprintf "unwound [%s] but shadow is [%s]"
           (String.concat "; " unwound)
           (String.concat "; " shadow))
  | exception Unwind.Unwind_error msg -> Error ("unwind error: " ^ msg)

let max_recorded_mismatches = 10

let probe_every n table =
  if n <= 0 then invalid_arg "Validate.probe_every: n must be positive";
  let report = ref empty in
  let calls = ref 0 in
  let hook machine =
    incr calls;
    if !calls mod n = 0 then begin
      let ops = ref 0 in
      let r = !report in
      let r =
        match compare_traces table machine ~ops with
        | Ok frames ->
            { r with probes = r.probes + 1; frames = r.frames + frames }
        | Error (unwound, shadow) ->
            let context = Printf.sprintf "probe at call %d" !calls in
            let mismatches =
              if List.length r.mismatches >= max_recorded_mismatches then
                r.mismatches
              else r.mismatches @ [ (context, unwound, shadow) ]
            in
            { r with probes = r.probes + 1; mismatches }
        | exception Unwind.Unwind_error msg ->
            let context = Printf.sprintf "probe at call %d: %s" !calls msg in
            { r with probes = r.probes + 1;
              mismatches = r.mismatches @ [ (context, [], []) ] }
      in
      report := { r with interp_ops = r.interp_ops + !ops }
    end
  in
  (hook, report)

let run_validated ?cfuns ?(every = 1) cfg compiled =
  let table = Table.build compiled in
  let hook, report = probe_every every table in
  let outcome, _counters = Machine.run ?cfuns ~on_call:hook cfg compiled in
  (outcome, !report)
