(** DWARF unwind validation in the style of Bastian et al. [2].

    The paper validates its unwind tables with an automated tool that
    compares DWARF-computed unwinds against ground truth.  Here the
    ground truth is the machine's shadow stack: at every probed point
    the unwinder's backtrace must equal the shadow backtrace frame for
    frame. *)

type report = {
  probes : int;  (** points at which the stack was unwound *)
  frames : int;  (** total frames compared *)
  mismatches : (string * string list * string list) list;
      (** (context, unwound, shadow) for each failed probe, capped *)
  interp_ops : int;  (** CFI bytecode operations interpreted *)
}

val check_now : Table.t -> Retrofit_fiber.Machine.t -> (unit, string) result
(** Unwind at the current machine state and compare against the shadow
    backtrace. *)

val probe_every : int -> Table.t -> (Retrofit_fiber.Machine.t -> unit) * report ref
(** [probe_every n table] returns an [on_call] hook that validates every
    [n]th call, together with the report it fills in.  Pass the hook to
    {!Retrofit_fiber.Machine.run}. *)

val run_validated :
  ?cfuns:(string * Retrofit_fiber.Machine.cfun) list ->
  ?every:int ->
  Retrofit_fiber.Config.t ->
  Retrofit_fiber.Compile.compiled ->
  Retrofit_fiber.Machine.outcome * report
(** Compile-time convenience: build the table, run the program with
    validation probes, and return the outcome with the report. *)
