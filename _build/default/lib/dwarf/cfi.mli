(** Call-frame information instructions (§5.5).

    DWARF represents the per-pc unwind table as a compact bytecode of
    edits from the start of each function; computing the rule at a pc
    means interpreting the bytecode up to it.  We model the two
    directives the OCaml backend needs for sp-relative frames —
    [DW_CFA_advance_loc] and [DW_CFA_def_cfa_offset] — with the CIE-level
    convention that the return address lives at CFA - 1 word.

    Instructions are serialised to a flat integer "bytecode" so that the
    interpretation cost (the reason perf dumps the stack rather than
    unwinding, §5.5) is observable: the interpreter counts the
    operations it executes, and the precompiled variant of Bastian et
    al. can be compared against it (bench `ablation`). *)

type instruction =
  | Advance_loc of int  (** move the current location forward *)
  | Def_cfa_offset of int  (** CFA = sp + offset from here on *)

type program = instruction list

val encode : program -> int array
(** Two words per instruction: opcode then operand. *)

val decode : int array -> program
(** @raise Invalid_argument on a malformed encoding. *)

val ra_offset : int
(** Words below the CFA where the return address is stored (1). *)
