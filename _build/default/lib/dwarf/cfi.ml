type instruction = Advance_loc of int | Def_cfa_offset of int

type program = instruction list

let op_advance = 1

let op_def_cfa_offset = 2

let encode program =
  let buf = Array.make (2 * List.length program) 0 in
  List.iteri
    (fun i instr ->
      let op, arg =
        match instr with
        | Advance_loc d ->
            if d < 0 then invalid_arg "Cfi.encode: negative advance";
            (op_advance, d)
        | Def_cfa_offset o ->
            if o < 0 then invalid_arg "Cfi.encode: negative offset";
            (op_def_cfa_offset, o)
      in
      buf.(2 * i) <- op;
      buf.((2 * i) + 1) <- arg)
    program;
  buf

let decode bytes =
  let n = Array.length bytes in
  if n mod 2 <> 0 then invalid_arg "Cfi.decode: odd length";
  let rec go i acc =
    if i >= n then List.rev acc
    else begin
      let instr =
        if bytes.(i) = op_advance then Advance_loc bytes.(i + 1)
        else if bytes.(i) = op_def_cfa_offset then Def_cfa_offset bytes.(i + 1)
        else invalid_arg (Printf.sprintf "Cfi.decode: bad opcode %d" bytes.(i))
      in
      go (i + 2) (instr :: acc)
    end
  in
  go 0 []

let ra_offset = 1
