type regs = {
  mutable pc : int;
  mutable sp : int;
  mutable cfa : int;
  mutable fn : int;
  mutable exn_ptr : int;
}

type shadow_frame = {
  sf_fn : int;
  sf_ra : int;
  sf_caller_cfa : int;
  sf_caller_fn : int;
  sf_cfa : int;
  sf_ops_base : int;
}

type t = {
  id : int;
  mutable seg : Segment.t;
  mutable parent : t option;
  mutable handler : Compile.handle_desc option;
  regs : regs;
  ops : int Retrofit_util.Vec.t;
  shadow : shadow_frame Retrofit_util.Vec.t;
  traps : (int * int) Retrofit_util.Vec.t;
  mutable live : bool;
}

let create ~id ~seg ~parent ~handler =
  {
    id;
    seg;
    parent;
    handler;
    regs = { pc = 0; sp = 0; cfa = 0; fn = -1; exn_ptr = 0 };
    ops = Retrofit_util.Vec.create ();
    shadow = Retrofit_util.Vec.create ();
    traps = Retrofit_util.Vec.create ();
    live = true;
  }

let shift delta addr = if addr = 0 then 0 else addr + delta

let rebase t ~delta =
  t.regs.sp <- shift delta t.regs.sp;
  t.regs.cfa <- shift delta t.regs.cfa;
  t.regs.exn_ptr <- shift delta t.regs.exn_ptr;
  Retrofit_util.Vec.iteri
    (fun i sf ->
      Retrofit_util.Vec.set t.shadow i
        {
          sf with
          sf_caller_cfa = shift delta sf.sf_caller_cfa;
          sf_cfa = shift delta sf.sf_cfa;
        })
    t.shadow;
  Retrofit_util.Vec.iteri
    (fun i (addr, depth) -> Retrofit_util.Vec.set t.traps i (addr + delta, depth))
    t.traps
