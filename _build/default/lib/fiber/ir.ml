type binop = Add | Sub | Mul | Div | Mod | Lt | Le | Eq | Ne

type expr =
  | Int of int
  | Var of string
  | Binop of binop * expr * expr
  | If of expr * expr * expr
  | Let of string * expr * expr
  | Seq of expr * expr
  | Call of string * expr list
  | Raise of string * expr
  | Trywith of expr * (string * string * expr) list
  | Perform of string * expr
  | Handle of handle_spec
  | Continue of expr * expr
  | Discontinue of expr * string * expr
  | Extcall of string * expr list
  | Repeat of expr * expr

and handle_spec = {
  body_fn : string;
  body_args : expr list;
  retc : string;
  exncs : (string * string) list;
  effcs : (string * string) list;
}

type fn = { fn_name : string; params : string list; body : expr }

type program = { fns : fn list; main : string }

type instr =
  | Const of int
  | Load of int
  | Store of int
  | Dup
  | Pop
  | Bin of binop
  | Jump of int
  | JumpIfNot of int
  | CallI of int
  | Ret
  | PushtrapI of int
  | PoptrapI
  | RaiseI of int
  | ReraiseI
  | PerformI of int
  | HandleI of int
  | ContinueI
  | DiscontinueI of int
  | ExtcallI of int * int
  | Stop

let binop_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Mod -> "mod"
  | Lt -> "lt"
  | Le -> "le"
  | Eq -> "eq"
  | Ne -> "ne"

let instr_to_string = function
  | Const n -> Printf.sprintf "const %d" n
  | Load i -> Printf.sprintf "load %d" i
  | Store i -> Printf.sprintf "store %d" i
  | Dup -> "dup"
  | Pop -> "pop"
  | Bin op -> binop_to_string op
  | Jump a -> Printf.sprintf "jump %d" a
  | JumpIfNot a -> Printf.sprintf "jumpifnot %d" a
  | CallI f -> Printf.sprintf "call f%d" f
  | Ret -> "ret"
  | PushtrapI a -> Printf.sprintf "pushtrap %d" a
  | PoptrapI -> "poptrap"
  | RaiseI e -> Printf.sprintf "raise e%d" e
  | ReraiseI -> "reraise"
  | PerformI e -> Printf.sprintf "perform eff%d" e
  | HandleI h -> Printf.sprintf "handle h%d" h
  | ContinueI -> "continue"
  | DiscontinueI e -> Printf.sprintf "discontinue e%d" e
  | ExtcallI (c, n) -> Printf.sprintf "extcall c%d/%d" c n
  | Stop -> "stop"

let call name args = Call (name, args)

let seq = function
  | [] -> invalid_arg "Ir.seq: empty sequence"
  | e :: rest -> List.fold_left (fun acc e -> Seq (acc, e)) e rest

let fn fn_name params body = { fn_name; params; body }
