let bytes_per_instruction = 5

let function_overhead_bytes = 8

let check_bytes = 12

let needs_check ~red_zone ~is_leaf ~frame_words =
  not (is_leaf && frame_words <= red_zone)

let checked (cfg : Config.t) (f : Compile.cfn) =
  match cfg.kind with
  | Config.Stock -> false
  | Config.Mc ->
      needs_check ~red_zone:cfg.red_zone ~is_leaf:f.is_leaf
        ~frame_words:f.frame_words

let function_size cfg (f : Compile.cfn) =
  let body = (f.code_end - f.entry) * bytes_per_instruction in
  let check = if checked cfg f then check_bytes else 0 in
  function_overhead_bytes + body + check

let total cfg (compiled : Compile.compiled) =
  Array.fold_left (fun acc f -> acc + function_size cfg f) 0 compiled.fns

let checked_functions cfg (compiled : Compile.compiled) =
  Array.fold_left (fun acc f -> acc + if checked cfg f then 1 else 0) 0 compiled.fns
