let handler_info_words = 4

let context_words = 2

let trap_words = 2

let return_pc_words = 1

let preamble_words = handler_info_words + context_words + trap_words + return_pc_words

let call_frame_overhead = 1

let callback_ctx_words = 1

let ret_to_parent = -101

let cb_done = -102

let main_done = -103

let trap_forward = -104

let c_trap = -105

let main_uncaught = -106

let is_sentinel pc = pc <= -101 && pc >= -106
