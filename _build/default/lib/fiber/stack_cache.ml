type t = { buckets : (int, Segment.t list ref) Hashtbl.t; max_per_bucket : int }

let create ?(max_per_bucket = 64) () =
  if max_per_bucket < 0 then invalid_arg "Stack_cache.create";
  { buckets = Hashtbl.create 8; max_per_bucket }

let bucket t size =
  match Hashtbl.find_opt t.buckets size with
  | Some b -> b
  | None ->
      let b = ref [] in
      Hashtbl.add t.buckets size b;
      b

let put t ~size seg =
  let b = bucket t size in
  if List.length !b < t.max_per_bucket then b := seg :: !b

let take t ~size =
  match Hashtbl.find_opt t.buckets size with
  | Some ({ contents = seg :: rest } as b) ->
      b := rest;
      Some seg
  | _ -> None

let population t =
  Hashtbl.fold (fun _ b acc -> acc + List.length !b) t.buckets 0

let clear t = Hashtbl.reset t.buckets
