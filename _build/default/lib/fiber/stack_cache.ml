type bucket = { mutable segs : Segment.t list; mutable count : int }

type t = {
  buckets : (int, bucket) Hashtbl.t;
  max_per_bucket : int;
  max_total_words : int;
  mutable total_words : int;
  mutable total_count : int;
}

let create ?(max_per_bucket = 64) ?(max_total_words = max_int) () =
  if max_per_bucket < 0 then invalid_arg "Stack_cache.create: max_per_bucket";
  if max_total_words < 0 then invalid_arg "Stack_cache.create: max_total_words";
  {
    buckets = Hashtbl.create 8;
    max_per_bucket;
    max_total_words;
    total_words = 0;
    total_count = 0;
  }

let bucket t size =
  match Hashtbl.find_opt t.buckets size with
  | Some b -> b
  | None ->
      let b = { segs = []; count = 0 } in
      Hashtbl.add t.buckets size b;
      b

let put t ~size seg =
  if
    t.max_per_bucket > 0
    && size <= t.max_total_words - t.total_words
  then begin
    let b = bucket t size in
    if b.count < t.max_per_bucket then begin
      b.segs <- seg :: b.segs;
      b.count <- b.count + 1;
      t.total_words <- t.total_words + size;
      t.total_count <- t.total_count + 1
    end
  end

let take t ~size =
  match Hashtbl.find_opt t.buckets size with
  | Some ({ segs = seg :: rest; _ } as b) ->
      b.segs <- rest;
      b.count <- b.count - 1;
      t.total_words <- t.total_words - size;
      t.total_count <- t.total_count - 1;
      Segment.zero seg;
      Some seg
  | _ -> None

let iter t f =
  Hashtbl.iter (fun _ b -> List.iter f b.segs) t.buckets

let population t = t.total_count

let total_words t = t.total_words

let clear t =
  Hashtbl.reset t.buckets;
  t.total_words <- 0;
  t.total_count <- 0
