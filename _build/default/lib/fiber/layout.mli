(** The fiber stack layout of Fig 3a, in words.

    A fiber's variable-size area sits below a fixed preamble at the high
    end of the stack (stacks grow downward):

    {v
      high addresses
        handler_info   : parent pointer + value/exn/effect closures
        context block  : DWARF and GC bookkeeping for callbacks
        forwarding trap: a trap frame that forwards exceptions to the
                         parent fiber
        return pc      : the address the handled computation returns to
                         (switches to the parent and runs clos_hval)
        ... variable-size area for OCaml frames ...
      low addresses (limit; red zone just above it)
    v} *)

val handler_info_words : int
(** parent (1) + clos_hval + clos_hexn + clos_heffect (3) = 4 *)

val context_words : int
(** saved system stack pointer and flags for callbacks = 2 *)

val trap_words : int
(** a trap frame is \[handler pc; previous exception pointer\] = 2 *)

val return_pc_words : int

val preamble_words : int
(** total words consumed by the preamble above the variable area *)

val call_frame_overhead : int
(** words pushed by a call before the callee's own data: the return
    address = 1 *)

val callback_ctx_words : int
(** words pushed at a callback entry to save the pre-callback program
    counter for unwinding (the context block of Fig 3a) = 1 *)

(** {1 Sentinel return addresses}

    Distinguished values stored in return-address slots; the runtime and
    the DWARF unwinder dispatch on them at segment boundaries. *)

val ret_to_parent : int
(** bottom of a handler fiber: return switches to the parent fiber and
    runs the value closure *)

val cb_done : int
(** bottom of a callback: return hands the value back to C *)

val main_done : int
(** bottom of the main stack: return terminates the program *)

val trap_forward : int
(** handler pc of a fiber's bottom trap: forwards the exception to the
    parent fiber *)

val c_trap : int
(** handler pc of a callback's boundary trap: forwards the exception to
    the calling C function *)

val main_uncaught : int
(** handler pc of the main stack's bottom trap: fatal uncaught
    exception *)

val is_sentinel : int -> bool

