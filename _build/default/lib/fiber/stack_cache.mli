(** Cache of recently freed fiber stacks (§5.2).

    Fibers are malloc-allocated and freed when the handled computation
    returns; a cache of freed stacks, bucketed by size, turns most
    allocations into a pop.  The machine's [fiber_alloc] counter versus
    [stack_cache_hit] quantifies the benefit (one of the DESIGN.md
    ablations). *)

type t

val create : ?max_per_bucket:int -> unit -> t
(** [max_per_bucket] (default 64) bounds retained stacks per size. *)

val put : t -> size:int -> Segment.t -> unit
(** Offer a freed segment to the cache; dropped if the bucket is full. *)

val take : t -> size:int -> Segment.t option
(** A cached segment of exactly [size] words, if any. *)

val population : t -> int
(** Number of segments currently held. *)

val clear : t -> unit
