type t = { seg_base : int; mem : int array }

let create ~base ~size =
  if size <= 0 then invalid_arg "Segment.create: size must be positive";
  { seg_base = base; mem = Array.make size 0 }

let base t = t.seg_base

let size t = Array.length t.mem

let limit t = t.seg_base

let top t = t.seg_base + Array.length t.mem

let contains t addr = addr >= t.seg_base && addr < top t

let check t addr =
  if not (contains t addr) then
    invalid_arg
      (Printf.sprintf "Segment: address %d outside [%d, %d)" addr t.seg_base (top t))

let read t addr =
  check t addr;
  t.mem.(addr - t.seg_base)

let write t addr v =
  check t addr;
  t.mem.(addr - t.seg_base) <- v

let zero t = Array.fill t.mem 0 (Array.length t.mem) 0

let blit_into ~src ~dst =
  let src_size = Array.length src.mem and dst_size = Array.length dst.mem in
  if dst_size < src_size then invalid_arg "Segment.blit_into: destination too small";
  Array.blit src.mem 0 dst.mem (dst_size - src_size) src_size
