lib/fiber/config.mli:
