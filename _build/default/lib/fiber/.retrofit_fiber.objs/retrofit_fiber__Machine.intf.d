lib/fiber/machine.mli: Compile Config Fiber Retrofit_util Stack_cache
