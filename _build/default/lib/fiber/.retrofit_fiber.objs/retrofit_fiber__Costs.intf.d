lib/fiber/costs.mli: Config
