lib/fiber/compile.ml: Array Buffer Hashtbl Ir Layout List Printf Retrofit_util
