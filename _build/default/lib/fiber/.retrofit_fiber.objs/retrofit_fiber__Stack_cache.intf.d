lib/fiber/stack_cache.mli: Segment
