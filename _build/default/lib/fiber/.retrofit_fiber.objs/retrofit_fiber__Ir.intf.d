lib/fiber/ir.mli:
