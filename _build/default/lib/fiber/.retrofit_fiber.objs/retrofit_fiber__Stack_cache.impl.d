lib/fiber/stack_cache.ml: Hashtbl Segment
