lib/fiber/stack_cache.ml: Hashtbl List Segment
