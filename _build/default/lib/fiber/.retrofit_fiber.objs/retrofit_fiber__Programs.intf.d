lib/fiber/programs.mli: Ir Machine
