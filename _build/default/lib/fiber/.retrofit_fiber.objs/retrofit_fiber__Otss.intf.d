lib/fiber/otss.mli: Compile Config
