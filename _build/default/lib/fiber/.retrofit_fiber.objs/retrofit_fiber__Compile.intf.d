lib/fiber/compile.mli: Ir
