lib/fiber/compile.mli: Hashtbl Ir
