lib/fiber/programs.ml: Array Ir Machine
