lib/fiber/costs.ml: Config
