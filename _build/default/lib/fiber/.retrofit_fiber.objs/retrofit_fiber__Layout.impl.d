lib/fiber/layout.ml:
