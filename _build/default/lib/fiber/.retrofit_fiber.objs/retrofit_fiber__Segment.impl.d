lib/fiber/segment.ml: Array Printf
