lib/fiber/fiber.ml: Compile Retrofit_util Segment
