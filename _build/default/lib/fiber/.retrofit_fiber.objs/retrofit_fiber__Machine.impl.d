lib/fiber/machine.ml: Array Compile Config Costs Fiber Hashtbl Ir Layout List Printf Retrofit_util Segment Stack_cache
