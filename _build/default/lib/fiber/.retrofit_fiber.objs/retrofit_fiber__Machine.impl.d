lib/fiber/machine.ml: Array Compile Config Costs Fiber Hashtbl Int Ir Layout List Map Otss Printf Retrofit_trace Retrofit_util Segment Stack_cache
