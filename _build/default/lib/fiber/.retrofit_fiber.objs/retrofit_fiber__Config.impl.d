lib/fiber/config.ml: Printf
