lib/fiber/otss.ml: Array Compile Config
