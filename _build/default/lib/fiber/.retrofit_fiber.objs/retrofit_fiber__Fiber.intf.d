lib/fiber/fiber.mli: Compile Retrofit_util Segment
