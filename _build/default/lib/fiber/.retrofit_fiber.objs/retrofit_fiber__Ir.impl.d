lib/fiber/ir.ml: List Printf
