lib/fiber/segment.mli:
