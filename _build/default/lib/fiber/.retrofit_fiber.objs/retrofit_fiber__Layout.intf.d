lib/fiber/layout.mli:
