(** Runtime fibers (§5.2).

    A fiber owns a stack [Segment.t], a parent pointer, the handler
    installed by the [match_with] that created it, and its suspended
    register state.  The machine additionally maintains, per fiber:

    - an operand stack ([ops]) standing in for the values OCaml keeps in
      registers — reserved in the frame size but not stored in stack
      memory;
    - a shadow control stack ([shadow]) recording the ground-truth call
      chain, against which the DWARF unwinder is validated (it is the
      model's analogue of sp-relative addressing and is never consulted
      by the unwinder);
    - a mirror of the in-memory trap chain carrying each trap's operand
      depth ([traps]), restored when an exception unwinds. *)

type regs = {
  mutable pc : int;
  mutable sp : int;
  mutable cfa : int;  (** canonical frame address of the running frame *)
  mutable fn : int;  (** index of the running function, -1 before any call *)
  mutable exn_ptr : int;  (** head of the trap chain; an address *)
}

type shadow_frame = {
  sf_fn : int;
  sf_ra : int;  (** return address (code address or Layout sentinel) *)
  sf_caller_cfa : int;
  sf_caller_fn : int;
  sf_cfa : int;
  sf_ops_base : int;  (** operand-stack length at frame entry *)
}

type t = {
  id : int;
  mutable seg : Segment.t;
  mutable parent : t option;
  mutable handler : Compile.handle_desc option;
      (** [None] for the main stack and inside callback boundaries *)
  regs : regs;
  ops : int Retrofit_util.Vec.t;
  shadow : shadow_frame Retrofit_util.Vec.t;
  traps : (int * int) Retrofit_util.Vec.t;  (** (trap address, operand depth) *)
  mutable live : bool;
}

val create : id:int -> seg:Segment.t -> parent:t option ->
  handler:Compile.handle_desc option -> t
(** A fiber with zeroed registers; the machine initialises the preamble
    and register state. *)

val rebase : t -> delta:int -> unit
(** Adjust every stored stack address after the segment moved by
    [delta]: registers, shadow frames, the trap mirror.  The in-memory
    trap chain is the machine's to fix, since it requires memory
    access. *)
