(** OCaml text-section size accounting (Fig 5).

    §6.1 defines OTSS as the total size of OCaml text sections in the
    compiled binary, and measures how much the prologue overflow checks
    inflate it: +19 % for the default 16-word red zone, +30 % with no
    red zone, and no further improvement at 32 words.

    For compiled fiber-machine programs we account bytes per emitted
    instruction plus a per-function prologue/epilogue, and add the size
    of an overflow-check sequence for every function the configuration
    requires to be checked (a function is exempt when it is a leaf whose
    frame fits in the red zone, §5.2). *)

val bytes_per_instruction : int

val function_overhead_bytes : int
(** prologue + epilogue common to all functions *)

val check_bytes : int
(** compare against the threshold, conditional branch, and the cold-path
    call to the growth routine *)

val needs_check : red_zone:int -> is_leaf:bool -> frame_words:int -> bool
(** The elision rule of §5.2, shared with the macro-suite OTSS model. *)

val function_size : Config.t -> Compile.cfn -> int
(** Modeled text bytes for one compiled function under the
    configuration. *)

val total : Config.t -> Compile.compiled -> int

val checked_functions : Config.t -> Compile.compiled -> int
(** How many functions carry a check under this configuration. *)
