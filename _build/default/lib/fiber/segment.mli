(** A word-addressed stack segment.

    Segments live in a flat virtual address space: each has a [base]
    (the address of its lowest word) assigned at allocation time, and
    occupies [\[base, base + size)].  Stack pointers and exception
    pointers are plain addresses in this space, so moving a fiber to a
    bigger segment changes the addresses of its contents — exactly the
    situation the runtime handles when growing a stack (§5.2). *)

type t

val create : base:int -> size:int -> t

val base : t -> int

val size : t -> int

val limit : t -> int
(** Lowest usable address, equal to [base]. *)

val top : t -> int
(** One past the highest address, i.e. [base + size]; the initial stack
    pointer of an empty stack. *)

val contains : t -> int -> bool

val read : t -> int -> int
(** @raise Invalid_argument when the address is outside the segment. *)

val write : t -> int -> int -> unit
(** @raise Invalid_argument when the address is outside the segment. *)

val zero : t -> unit
(** Clear every word to 0.  Freed stacks are zeroed before reuse so a
    recycled segment cannot leak a previous fiber's frames or
    handler_info into its next occupant. *)

val blit_into : src:t -> dst:t -> unit
(** Copy the full contents of [src] into the {e high} end of [dst],
    preserving distance-from-top; used when growing a stack by copying.
    @raise Invalid_argument if [dst] is smaller than [src]. *)
