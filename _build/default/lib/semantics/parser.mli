(** Recursive-descent parser for the surface language.

    Grammar (lowest precedence first):

    {v
      expr    ::= 'fun' x '->' expr | 'cfun' x '->' expr
                | 'let' x '=' expr 'in' expr
                | 'let' 'rec' f x '=' expr 'in' expr
                | 'if' expr 'then' expr 'else' expr
                | 'match' expr 'with' cases 'end'
                | cmp
      cmp     ::= add (('<' | '<=' | '=') add)?
      add     ::= mul (('+' | '-') mul)*
      mul     ::= prefix (('*' | '/') prefix)*
      prefix  ::= 'raise' L atom | 'perform' L atom
                | 'continue' atom atom | 'discontinue' atom L atom
                | app
      app     ::= atom atom+ | atom
      atom    ::= INT | '-' INT | x | '(' expr ')'
      cases   ::= '|'? x '->' expr case*
      case    ::= '|' 'exception' L x '->' expr
                | '|' 'effect' '(' L x ')' k '->' expr
    v}

    The value (return) case is mandatory and written first, as in the
    paper's [match e with h] whose handler always carries a return case.
    [end] closes every match so that handlers nest unambiguously. *)

val parse : string -> (Ast.t, string) result

val parse_exn : string -> Ast.t
(** @raise Invalid_argument on a syntax error. *)
