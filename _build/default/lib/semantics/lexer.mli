(** Lexer for the surface language of the core calculus. *)

type token =
  | INT of int
  | IDENT of string  (** lowercase identifier: variables *)
  | UIDENT of string  (** capitalised identifier: effect/exception labels *)
  | FUN
  | CFUN
  | LET
  | REC
  | IN
  | IF
  | THEN
  | ELSE
  | MATCH
  | WITH
  | END
  | EFFECT
  | EXCEPTION
  | RAISE
  | PERFORM
  | CONTINUE
  | DISCONTINUE
  | ARROW
  | BAR
  | LPAREN
  | RPAREN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | LT
  | LE
  | EQ
  | EOF

val token_to_string : token -> string

val tokenize : string -> (token * int) list
(** Tokens paired with their byte offsets, ending with [EOF].  Comments
    are [(* ... *)] and nest.  @raise Failure on an illegal character or
    unterminated comment, with the offset in the message. *)
