(** Machine domains of the operational semantics (Fig 2a).

    The program stack is an alternating sequence of C and OCaml stacks
    terminating in the empty OCaml stack [Empty].  An OCaml stack carries
    a {e continuation} — a list of {e fibers} — and each fiber pairs a
    frame list with a handler closure.  These are exactly the shapes the
    runtime of §5 implements with heap-allocated fibers. *)

type value =
  | V_int of int
  | V_cont of continuation  (** first-class captured continuation [k] *)
  | V_clos of closure
  | V_eff of string * continuation  (** [eff l k] — an effect in flight *)
  | V_exn of string  (** [exn l] — an exception in flight *)

and closure = {
  kind : Ast.lam_kind;
  self : string option;  (** [Some f] for recursive closures *)
  param : string;
  body : Ast.t;
  env : env;
}

and env = (string * value) list
(** Environments are association lists; lookup takes the most recent
    binding, which implements shadowing. *)

and frame =
  | F_arg of Ast.t * env  (** ⟨e ε⟩ₐ — pending argument *)
  | F_fun of value  (** ⟨v⟩f — evaluated function awaiting its argument *)
  | F_op1 of Ast.binop * Ast.t * env  (** ⟨⊙ e ε⟩b1 *)
  | F_op2 of Ast.binop * int  (** ⟨⊙ n⟩b2 *)
  | F_if of Ast.t * Ast.t * env  (** pending branches of a conditional *)
  | F_let of string * Ast.t * env  (** pending body of a let binding *)

and handler_closure = Ast.handler * env  (** η = (h, ε) *)

and fiber = frame list * handler_closure  (** φ = (ψ, η) *)

and continuation = fiber list  (** k = \[\] | φ ◁ k *)

and c_stack = { c_frames : frame list; c_under : ocaml_stack }  (** ⌈ψ, ω⌉c *)

and ocaml_stack =
  | O_empty  (** • *)
  | O_stack of { cont : continuation; o_under : c_stack }  (** ⌈k, γ⌉o *)

and stack = C_stack of c_stack | OCaml_stack of ocaml_stack

type term = Expr of Ast.t | Value of value

type config = { term : term; env : env; stack : stack }
(** ℭ = ‖τ, ε, σ‖ *)

val identity_handler : handler_closure
(** [({return x ↦ x}, ∅)] — the handler closure used for the empty
    continuation pushed by Perform and for callback fibers. *)

val identity_fiber : fiber
(** [(\[\], identity_handler)] *)

val is_identity_handler : handler_closure -> bool
(** Recognises (up to the return variable's name) the identity handler
    installed by Callback, as required by the RetToC and ExnFwdC side
    conditions. *)

val initial : Ast.t -> config
(** ‖(λ°x.e) 0, ∅, ⌈\[\], •⌉c‖ — programs start on the C stack and enter
    the program body through a callback, mirroring how [caml_startup]
    invokes [caml_program] in a real executable (Fig 1d).  The Callback
    rule then gives the program an OCaml stack whose bottom fiber is the
    identity fiber. *)

val env_lookup : env -> string -> value option

val env_bind : env -> string -> value -> env

val pp_value : Format.formatter -> value -> unit

val pp_frame : Format.formatter -> frame -> unit

val pp_stack : Format.formatter -> stack -> unit

val pp_config : Format.formatter -> config -> unit

val value_to_string : value -> string

val stack_depth : stack -> int
(** Total number of frames across all segments, for tests and traces. *)

val fiber_count : stack -> int
(** Number of fibers on the current OCaml stack segments. *)
