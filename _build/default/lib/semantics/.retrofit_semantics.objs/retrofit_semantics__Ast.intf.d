lib/semantics/ast.mli: Format
