lib/semantics/lexer.ml: List Printf String
