lib/semantics/machine.mli: Ast Syntax
