lib/semantics/examples.ml: List Machine Printf Syntax
