lib/semantics/ast.ml: Format Hashtbl List
