lib/semantics/machine.ml: Ast List Parser Printf Syntax
