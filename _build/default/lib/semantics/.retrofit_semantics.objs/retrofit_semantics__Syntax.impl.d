lib/semantics/syntax.ml: Ast Format List
