lib/semantics/syntax.mli: Ast Format
