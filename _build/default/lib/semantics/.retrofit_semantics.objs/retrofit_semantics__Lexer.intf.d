lib/semantics/lexer.mli:
