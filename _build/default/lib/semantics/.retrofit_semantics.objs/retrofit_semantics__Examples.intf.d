lib/semantics/examples.mli:
