lib/semantics/parser.ml: Ast Lexer List Printf Result
