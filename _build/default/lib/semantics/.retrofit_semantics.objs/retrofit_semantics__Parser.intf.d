lib/semantics/parser.mli: Ast
