(** Canonical programs for the executable semantics.

    Each example pairs a surface-language source with its expected
    outcome; the test suite runs them all and the [interp] executable can
    print their traces.  Together they exercise every reduction rule of
    Fig 2, including the meander example of §2 (exceptions thrown across
    C frames) and the §3.2 behaviour of unhandled effects. *)

type expected =
  | Returns of int
  | Raises of string  (** uncaught exception with the given label *)

type t = { name : string; description : string; source : string; expected : expected }

val all : t list

val find : string -> t option
(** Look up an example by name. *)

val check : t -> (unit, string) result
(** Runs the example and compares against [expected]. *)
