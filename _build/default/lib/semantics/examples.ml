type expected = Returns of int | Raises of string

type t = { name : string; description : string; source : string; expected : expected }

let all =
  [
    {
      name = "arith";
      description = "arithmetic and precedence";
      source = "2 + 3 * 4 - 6 / 2";
      expected = Returns 11;
    };
    {
      name = "let-shadowing";
      description = "let bindings shadow correctly";
      source = "let x = 1 in let x = x + 1 in x * 10";
      expected = Returns 20;
    };
    {
      name = "fib";
      description = "recursion through let rec";
      source = "let rec fib n = if n < 2 then n else fib (n-1) + fib (n-2) in fib 15";
      expected = Returns 610;
    };
    {
      name = "higher-order";
      description = "closures capture their environment";
      source = "let add = fun a -> fun b -> a + b in let inc = add 1 in inc 41";
      expected = Returns 42;
    };
    {
      name = "exn-handled";
      description = "ExnHn: a raised exception reaches its handler";
      source = "match 1 + raise E 7 with v -> v | exception E x -> x * 2 end";
      expected = Returns 14;
    };
    {
      name = "exn-forwarded";
      description = "ExnFwdFib: exceptions skip non-matching handlers";
      source =
        "match (match raise E 5 with v -> 0 | exception F x -> 1 end) with v -> v \
         | exception E x -> x + 100 end";
      expected = Returns 105;
    };
    {
      name = "exn-uncaught";
      description = "fatal_uncaught: no handler anywhere";
      source = "1 + raise Boom 0";
      expected = Raises "Boom";
    };
    {
      name = "div-by-zero";
      description = "division by zero raises Division_by_zero";
      source = "match 1 / 0 with v -> v | exception Division_by_zero x -> 42 end";
      expected = Returns 42;
    };
    {
      name = "meander";
      description =
        "Fig 1: OCaml calls C (cfun), C calls back into OCaml, the callback \
         raises E1, which unwinds across the C frames to the outer OCaml \
         handler";
      source =
        "let c_to_ocaml = fun u -> raise E1 0 in\n\
         let ocaml_to_c = cfun u -> c_to_ocaml u in\n\
         match (match ocaml_to_c 0 with v -> v | exception E2 x -> 0 end)\n\
         with v -> v | exception E1 x -> 42 end";
      expected = Returns 42;
    };
    {
      name = "extcall-return";
      description = "ExtCall/RetToO: values return across C frames";
      source = "let double = cfun x -> x * 2 in double 21";
      expected = Returns 42;
    };
    {
      name = "callback-return";
      description = "Callback/RetToC: values return from OCaml to C";
      source =
        "let ocaml_id = fun x -> x + 1 in let c_wrap = cfun x -> ocaml_id x in \
         c_wrap 41";
      expected = Returns 42;
    };
    {
      name = "eff-handled";
      description = "EffHn: perform with an immediate resume";
      source =
        "match perform E 0 + 1 with v -> v | effect (E x) k -> continue k 41 end";
      expected = Returns 42;
    };
    {
      name = "eff-sum-yields";
      description = "deep handlers: one handler serves every perform";
      source =
        "let rec loop i = if i = 0 then 0 else perform Yield i + loop (i - 1) in\n\
         match loop 5 with v -> v | effect (Yield x) k -> x + continue k 0 end";
      expected = Returns 15;
    };
    {
      name = "eff-forwarded";
      description = "EffFwd/reperform: inner handler passes the effect out";
      source =
        "match (match perform E 3 with v -> v | effect (F x) k -> 0 end)\n\
         with v -> v | effect (E x) k -> continue k (x * 10) end";
      expected = Returns 30;
    };
    {
      name = "eff-state";
      description = "parameter-passing state handler (get/put)";
      source =
        "let prog = fun u -> perform Put (perform Get 0 + 40) + perform Get 0 in\n\
         let run =\n\
         match prog 0 with\n\
         | v -> fun s -> v\n\
         | effect (Get u) k -> fun s -> (continue k s) s\n\
         | effect (Put s2) k -> fun s -> (continue k 0) s2\n\
         end in run 2";
      expected = Returns 42;
    };
    {
      name = "eff-unhandled";
      description = "EffUnHn: an unhandled effect raises Unhandled";
      source = "perform Nope 0";
      expected = Raises "Unhandled";
    };
    {
      name = "eff-unhandled-cleanup";
      description =
        "§3.2: Unhandled is raised at the perform site, so surrounding \
         exception handlers (resource cleanup) still run";
      source =
        "match (match perform Nope 0 with v -> v | exception Unhandled x -> 99 end)\n\
         with v -> v end";
      expected = Returns 99;
    };
    {
      name = "eff-not-across-c";
      description =
        "effects do not cross C frames: a perform inside a callback finds \
         only the callback's identity fiber, raises Unhandled, and that \
         exception unwinds across C to the outer OCaml handler";
      source =
        "let inner = fun u -> perform E 0 in\n\
         let through_c = cfun u -> inner u in\n\
         match (match through_c 0 with v -> v | effect (E x) k -> continue k 1 end)\n\
         with v -> v | exception Unhandled x -> 7 end";
      expected = Returns 7;
    };
    {
      name = "multi-shot";
      description =
        "the semantics is multi-shot: resuming one continuation twice";
      source =
        "match 10 * perform Choice 0 with v -> v\n\
         | effect (Choice u) k -> continue k 1 + continue k 2 end";
      expected = Returns 30;
    };
    {
      name = "discontinue";
      description =
        "discontinue raises at the perform site; the performer's handler \
         cleans up";
      source =
        "let body = fun u ->\n\
         match perform Ask 0 with v -> v | exception Cancel x -> x + 1 end in\n\
         match body 0 with v -> v | effect (Ask u) k -> discontinue k Cancel 41 end";
      expected = Returns 42;
    };
    {
      name = "return-case";
      description = "RetFib: the return case transforms the handled value";
      source = "match 21 with v -> v * 2 end";
      expected = Returns 42;
    };
    {
      name = "handler-in-recursion";
      description = "handlers install and tear down inside recursion";
      source =
        "let rec go n = if n = 0 then 0\n\
         else (match perform Tick 0 with v -> v | effect (Tick u) k -> continue k 1 end)\n\
         + go (n - 1) in go 10";
      expected = Returns 10;
    };
    {
      name = "exn-through-extcall";
      description =
        "OCaml exception raised by a C function (ExtCall then raise) is \
         caught by the enclosing OCaml handler";
      source =
        "let c_raiser = cfun u -> raise E 5 in\n\
         match c_raiser 0 with v -> v | exception E x -> x * 4 end";
      expected = Returns 20;
    };
    {
      name = "church-scheduler";
      description =
        "the §3.1 Fork/Yield scheduler written inside the calculus: the run \
         queue is a Church-encoded list, suspended threads are \
         queue-consuming closures, and an outer Emit handler observes the \
         interleaving (digits arrive in FIFO order 1,3,2,4)";
      source =
        "let nil = fun n -> fun c -> n 0 in\n\
         let cons = fun h -> fun t -> fun n -> fun c -> c h t in\n\
         let rec append q = fun x ->\n\
         q (fun z -> cons x nil) (fun h -> fun t -> cons h (append t x)) in\n\
         let run_next = fun q -> q (fun z -> 0) (fun h -> fun t -> h t) in\n\
         let rec spawn f =\n\
         match f 0 with\n\
         | v -> fun q -> run_next q\n\
         | effect (Fork g) k -> fun q -> spawn g (append q (fun q2 -> (continue k 0) q2))\n\
         | effect (Yield u) k -> fun q -> run_next (append q (fun q2 -> (continue k 0) q2))\n\
         end in\n\
         let worker_a = fun u ->\n\
         let z1 = perform Emit 1 in let z2 = perform Yield 0 in perform Emit 2 in\n\
         let worker_b = fun u ->\n\
         let z1 = perform Emit 3 in let z2 = perform Yield 0 in perform Emit 4 in\n\
         let main_thread = fun u ->\n\
         let z1 = perform Fork worker_a in\n\
         let z2 = perform Fork worker_b in 0 in\n\
         match spawn main_thread nil with\n\
         | v -> v\n\
         | effect (Emit d) k -> d + 10 * continue k 0\n\
         end";
      expected = Returns 4231;
    };
    {
      name = "eff-payload-order";
      description = "the performed value is evaluated before capture";
      source =
        "match perform E (2 + 3) with v -> v | effect (E x) k -> continue k (x * x) end";
      expected = Returns 25;
    };
  ]

let find name = List.find_opt (fun e -> e.name = name) all

let check ex =
  match Machine.run_string ex.source with
  | Machine.Value (Syntax.V_int n) -> (
      match ex.expected with
      | Returns m when m = n -> Ok ()
      | Returns m -> Error (Printf.sprintf "expected %d, got %d" m n)
      | Raises l -> Error (Printf.sprintf "expected uncaught %s, got value %d" l n))
  | Machine.Value v ->
      Error ("expected an integer, got " ^ Syntax.value_to_string v)
  | Machine.Uncaught_exception (l, _) -> (
      match ex.expected with
      | Raises l' when l = l' -> Ok ()
      | Raises l' -> Error (Printf.sprintf "expected uncaught %s, got %s" l' l)
      | Returns m -> Error (Printf.sprintf "expected %d, got uncaught %s" m l))
  | other -> Error (Machine.result_to_string other)
