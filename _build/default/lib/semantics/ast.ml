type binop = Add | Sub | Mul | Div | Lt | Le | Eq

type lam_kind = OCaml_lam | C_lam

type t =
  | Int of int
  | Var of string
  | Lam of lam_kind * string * t
  | App of t * t
  | Binop of binop * t * t
  | If of t * t * t
  | Let of string * t * t
  | Letrec of string * string * t * t
  | Raise of string * t
  | Perform of string * t
  | Match of t * handler
  | Continue of t * t
  | Discontinue of t * string * t

and handler = {
  return_var : string;
  return_body : t;
  exn_cases : (string * string * t) list;
  eff_cases : (string * string * string * t) list;
}

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Lt -> "<"
  | Le -> "<="
  | Eq -> "="

(* Precedences: match/fun/let/if/raise/perform 0, comparison 1,
   additive 2, multiplicative 3, application 4, atom 5. *)
let binop_prec = function
  | Lt | Le | Eq -> 1
  | Add | Sub -> 2
  | Mul | Div -> 3

let rec pp_prec prec fmt e =
  let open Format in
  let paren p body =
    if p < prec then fprintf fmt "(%t)" body else body fmt
  in
  match e with
  | Int n -> if n < 0 then fprintf fmt "(%d)" n else fprintf fmt "%d" n
  | Var x -> pp_print_string fmt x
  | Lam (OCaml_lam, x, b) ->
      paren 0 (fun fmt -> fprintf fmt "@[<2>fun %s ->@ %a@]" x (pp_prec 0) b)
  | Lam (C_lam, x, b) ->
      paren 0 (fun fmt -> fprintf fmt "@[<2>cfun %s ->@ %a@]" x (pp_prec 0) b)
  | App (f, a) ->
      paren 4 (fun fmt -> fprintf fmt "@[<2>%a@ %a@]" (pp_prec 4) f (pp_prec 5) a)
  | Binop (op, a, b) ->
      let p = binop_prec op in
      paren p (fun fmt ->
          fprintf fmt "@[<2>%a %s@ %a@]" (pp_prec p) a (binop_to_string op)
            (pp_prec (p + 1)) b)
  | If (c, t, f) ->
      paren 0 (fun fmt ->
          fprintf fmt "@[<2>if %a@ then %a@ else %a@]" (pp_prec 0) c (pp_prec 0) t
            (pp_prec 0) f)
  | Let (x, e1, e2) ->
      paren 0 (fun fmt ->
          fprintf fmt "@[<v>@[<2>let %s =@ %a in@]@ %a@]" x (pp_prec 0) e1
            (pp_prec 0) e2)
  | Letrec (f, x, e1, e2) ->
      paren 0 (fun fmt ->
          fprintf fmt "@[<v>@[<2>let rec %s %s =@ %a in@]@ %a@]" f x (pp_prec 0) e1
            (pp_prec 0) e2)
  (* prefix forms (raise/perform/continue/discontinue) parse at the
     prefix level: they cannot appear bare in function position or as a
     function's argument, so parenthesise in any context above the
     multiplicative level *)
  | Raise (l, e) -> paren 3 (fun fmt -> fprintf fmt "@[<2>raise %s@ %a@]" l (pp_prec 5) e)
  | Perform (l, e) ->
      paren 3 (fun fmt -> fprintf fmt "@[<2>perform %s@ %a@]" l (pp_prec 5) e)
  | Continue (k, e) ->
      paren 3 (fun fmt ->
          fprintf fmt "@[<2>continue %a@ %a@]" (pp_prec 5) k (pp_prec 5) e)
  | Discontinue (k, l, e) ->
      paren 3 (fun fmt ->
          fprintf fmt "@[<2>discontinue %a %s@ %a@]" (pp_prec 5) k l (pp_prec 5) e)
  | Match (e, h) ->
      paren 0 (fun fmt ->
          fprintf fmt "@[<v>@[<2>match %a with@]" (pp_prec 0) e;
          fprintf fmt "@ | %s -> %a" h.return_var (pp_prec 0) h.return_body;
          List.iter
            (fun (l, x, b) ->
              fprintf fmt "@ | exception %s %s -> %a" l x (pp_prec 0) b)
            h.exn_cases;
          List.iter
            (fun (l, x, k, b) ->
              fprintf fmt "@ | effect (%s %s) %s -> %a" l x k (pp_prec 0) b)
            h.eff_cases;
          fprintf fmt "@ end@]")

let pp fmt e = pp_prec 0 fmt e

let to_string e = Format.asprintf "%a" pp e

let free_vars e =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let add bound x =
    if (not (List.mem x bound)) && not (Hashtbl.mem seen x) then begin
      Hashtbl.add seen x ();
      order := x :: !order
    end
  in
  let rec go bound = function
    | Int _ -> ()
    | Var x -> add bound x
    | Lam (_, x, b) -> go (x :: bound) b
    | App (f, a) ->
        go bound f;
        go bound a
    | Binop (_, a, b) ->
        go bound a;
        go bound b
    | If (c, t, f) ->
        go bound c;
        go bound t;
        go bound f
    | Let (x, e1, e2) ->
        go bound e1;
        go (x :: bound) e2
    | Letrec (f, x, e1, e2) ->
        go (f :: x :: bound) e1;
        go (f :: bound) e2
    | Raise (_, e) | Perform (_, e) -> go bound e
    | Continue (k, e) ->
        go bound k;
        go bound e
    | Discontinue (k, _, e) ->
        go bound k;
        go bound e
    | Match (e, h) ->
        go bound e;
        go (h.return_var :: bound) h.return_body;
        List.iter (fun (_, x, b) -> go (x :: bound) b) h.exn_cases;
        List.iter (fun (_, x, k, b) -> go (x :: k :: bound) b) h.eff_cases
  in
  go [] e;
  List.rev !order

(* §4.2.4: continue k e = (k (λ°x.x)) e
           discontinue k l e = (k (λ°x.raise l x)) e *)
let rec elaborate = function
  | (Int _ | Var _) as e -> e
  | Lam (kind, x, b) -> Lam (kind, x, elaborate b)
  | App (f, a) -> App (elaborate f, elaborate a)
  | Binop (op, a, b) -> Binop (op, elaborate a, elaborate b)
  | If (c, t, f) -> If (elaborate c, elaborate t, elaborate f)
  | Let (x, e1, e2) -> Let (x, elaborate e1, elaborate e2)
  | Letrec (f, x, e1, e2) -> Letrec (f, x, elaborate e1, elaborate e2)
  | Raise (l, e) -> Raise (l, elaborate e)
  | Perform (l, e) -> Perform (l, elaborate e)
  | Continue (k, e) ->
      App (App (elaborate k, Lam (OCaml_lam, "%x", Var "%x")), elaborate e)
  | Discontinue (k, l, e) ->
      App (App (elaborate k, Lam (OCaml_lam, "%x", Raise (l, Var "%x"))), elaborate e)
  | Match (e, h) ->
      Match
        ( elaborate e,
          {
            return_var = h.return_var;
            return_body = elaborate h.return_body;
            exn_cases = List.map (fun (l, x, b) -> (l, x, elaborate b)) h.exn_cases;
            eff_cases =
              List.map (fun (l, x, k, b) -> (l, x, k, elaborate b)) h.eff_cases;
          } )
