type value =
  | V_int of int
  | V_cont of continuation
  | V_clos of closure
  | V_eff of string * continuation
  | V_exn of string

and closure = {
  kind : Ast.lam_kind;
  self : string option;
  param : string;
  body : Ast.t;
  env : env;
}

and env = (string * value) list

and frame =
  | F_arg of Ast.t * env
  | F_fun of value
  | F_op1 of Ast.binop * Ast.t * env
  | F_op2 of Ast.binop * int
  | F_if of Ast.t * Ast.t * env
  | F_let of string * Ast.t * env

and handler_closure = Ast.handler * env

and fiber = frame list * handler_closure

and continuation = fiber list

and c_stack = { c_frames : frame list; c_under : ocaml_stack }

and ocaml_stack =
  | O_empty
  | O_stack of { cont : continuation; o_under : c_stack }

and stack = C_stack of c_stack | OCaml_stack of ocaml_stack

type term = Expr of Ast.t | Value of value

type config = { term : term; env : env; stack : stack }

let identity_handler : handler_closure =
  ( {
      Ast.return_var = "%v";
      return_body = Ast.Var "%v";
      exn_cases = [];
      eff_cases = [];
    },
    [] )

let identity_fiber : fiber = ([], identity_handler)

let is_identity_handler ((h, env) : handler_closure) =
  env = []
  && h.Ast.exn_cases = []
  && h.Ast.eff_cases = []
  && h.Ast.return_body = Ast.Var h.Ast.return_var

(* Programs start on the C stack, and the program body is entered through
   a callback — exactly how caml_startup invokes caml_program.  The
   wrapper application makes the Callback rule fire first, giving the
   program an OCaml stack with the callback's identity fiber at its
   bottom. *)
let initial e =
  {
    term = Expr (Ast.App (Ast.Lam (Ast.OCaml_lam, "%start", e), Ast.Int 0));
    env = [];
    stack = C_stack { c_frames = []; c_under = O_empty };
  }

let env_lookup env x = List.assoc_opt x env

let env_bind env x v = (x, v) :: env

open Format

let rec pp_value fmt = function
  | V_int n -> fprintf fmt "%d" n
  | V_cont k -> fprintf fmt "<cont:%d fibers>" (List.length k)
  | V_clos { kind; self; param; _ } ->
      let tag = match kind with Ast.OCaml_lam -> "λo" | Ast.C_lam -> "λc" in
      let rec_tag = match self with Some f -> "rec " ^ f ^ "." | None -> "" in
      fprintf fmt "<%s%s %s. ...>" rec_tag tag param
  | V_eff (l, k) -> fprintf fmt "(eff %s <%d fibers>)" l (List.length k)
  | V_exn l -> fprintf fmt "(exn %s)" l

and pp_frame fmt = function
  | F_arg (e, _) -> fprintf fmt "<arg %s>" (Ast.to_string e)
  | F_fun v -> fprintf fmt "<fun %a>" pp_value v
  | F_op1 (op, e, _) -> fprintf fmt "<%s _ %s>" (Ast.binop_to_string op) (Ast.to_string e)
  | F_op2 (op, n) -> fprintf fmt "<%d %s _>" n (Ast.binop_to_string op)
  | F_if (_, _, _) -> fprintf fmt "<if>"
  | F_let (x, _, _) -> fprintf fmt "<let %s>" x

let pp_frames fmt frames =
  fprintf fmt "[%a]"
    (pp_print_list ~pp_sep:(fun fmt () -> fprintf fmt "; ") pp_frame)
    frames

let pp_fiber fmt ((frames, _) : fiber) = fprintf fmt "fiber%a" pp_frames frames

let rec pp_c_stack fmt { c_frames; c_under } =
  fprintf fmt "C%a :: %a" pp_frames c_frames pp_ocaml_stack c_under

and pp_ocaml_stack fmt = function
  | O_empty -> fprintf fmt "•"
  | O_stack { cont; o_under } ->
      fprintf fmt "O[%a] :: %a"
        (pp_print_list ~pp_sep:(fun fmt () -> fprintf fmt " ◁ ") pp_fiber)
        cont pp_c_stack o_under

let pp_stack fmt = function
  | C_stack g -> pp_c_stack fmt g
  | OCaml_stack w -> pp_ocaml_stack fmt w

let pp_term fmt = function
  | Expr e -> fprintf fmt "%s" (Ast.to_string e)
  | Value v -> pp_value fmt v

let pp_config fmt { term; env = _; stack } =
  fprintf fmt "@[<v2>‖ %a@ ⊢ %a ‖@]" pp_term term pp_stack stack

let value_to_string v = asprintf "%a" pp_value v

let frames_len = List.length

let cont_frames k =
  List.fold_left (fun acc (frames, _) -> acc + frames_len frames) 0 k

let rec c_stack_depth { c_frames; c_under } =
  frames_len c_frames + ocaml_stack_depth c_under

and ocaml_stack_depth = function
  | O_empty -> 0
  | O_stack { cont; o_under } -> cont_frames cont + c_stack_depth o_under

let stack_depth = function
  | C_stack g -> c_stack_depth g
  | OCaml_stack w -> ocaml_stack_depth w

let rec c_fibers { c_under; _ } = ocaml_fibers c_under

and ocaml_fibers = function
  | O_empty -> 0
  | O_stack { cont; o_under } -> List.length cont + c_fibers o_under

let fiber_count = function
  | C_stack g -> c_fibers g
  | OCaml_stack w -> ocaml_fibers w
