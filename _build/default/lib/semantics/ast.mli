(** Surface abstract syntax for the core calculus of §4.

    The expression grammar follows Fig 2a — integers, variables, OCaml and
    C abstractions, application, arithmetic, [raise], [perform] and
    [match ... with] handlers — plus three conservative conveniences that
    the paper's own executable semantics also needs to express its
    examples: [if]/comparison operators, [let]/[let rec], and first-class
    [continue]/[discontinue] syntax (the latter two are exactly the
    encodings given in §4.2.4, applied during elaboration). *)

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** division by zero raises the built-in label "Division_by_zero" *)
  | Lt
  | Le
  | Eq  (** comparisons yield 1 for true, 0 for false *)

type lam_kind =
  | OCaml_lam  (** λ° — evaluated on the OCaml stack *)
  | C_lam  (** λᶜ — evaluated on the C (system) stack *)

type t =
  | Int of int
  | Var of string
  | Lam of lam_kind * string * t
  | App of t * t
  | Binop of binop * t * t
  | If of t * t * t  (** zero is false, non-zero is true *)
  | Let of string * t * t
  | Letrec of string * string * t * t
      (** [Letrec (f, x, body, k)] is [let rec f x = body in k] *)
  | Raise of string * t
  | Perform of string * t
  | Match of t * handler
  | Continue of t * t  (** [continue k e]; sugar for [(k (λ°x.x)) e] *)
  | Discontinue of t * string * t
      (** [discontinue k l e]; sugar for [(k (λ°x.raise l x)) e] *)

and handler = {
  return_var : string;
  return_body : t;
  exn_cases : (string * string * t) list;  (** label, variable, body *)
  eff_cases : (string * string * string * t) list;
      (** label, variable, continuation variable, body *)
}

val binop_to_string : binop -> string

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val free_vars : t -> string list
(** Free variables in order of first occurrence; a closed program has
    none.  [Match] effect cases bind both the parameter and the
    continuation variable. *)

val elaborate : t -> t
(** Rewrites [Continue] and [Discontinue] into the §4.2.4 encodings so
    that the machine only ever sees core forms. *)
