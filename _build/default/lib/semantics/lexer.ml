type token =
  | INT of int
  | IDENT of string
  | UIDENT of string
  | FUN
  | CFUN
  | LET
  | REC
  | IN
  | IF
  | THEN
  | ELSE
  | MATCH
  | WITH
  | END
  | EFFECT
  | EXCEPTION
  | RAISE
  | PERFORM
  | CONTINUE
  | DISCONTINUE
  | ARROW
  | BAR
  | LPAREN
  | RPAREN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | LT
  | LE
  | EQ
  | EOF

let token_to_string = function
  | INT n -> string_of_int n
  | IDENT s | UIDENT s -> s
  | FUN -> "fun"
  | CFUN -> "cfun"
  | LET -> "let"
  | REC -> "rec"
  | IN -> "in"
  | IF -> "if"
  | THEN -> "then"
  | ELSE -> "else"
  | MATCH -> "match"
  | WITH -> "with"
  | END -> "end"
  | EFFECT -> "effect"
  | EXCEPTION -> "exception"
  | RAISE -> "raise"
  | PERFORM -> "perform"
  | CONTINUE -> "continue"
  | DISCONTINUE -> "discontinue"
  | ARROW -> "->"
  | BAR -> "|"
  | LPAREN -> "("
  | RPAREN -> ")"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | LT -> "<"
  | LE -> "<="
  | EQ -> "="
  | EOF -> "<eof>"

let keyword = function
  | "fun" -> Some FUN
  | "cfun" -> Some CFUN
  | "let" -> Some LET
  | "rec" -> Some REC
  | "in" -> Some IN
  | "if" -> Some IF
  | "then" -> Some THEN
  | "else" -> Some ELSE
  | "match" -> Some MATCH
  | "with" -> Some WITH
  | "end" -> Some END
  | "effect" -> Some EFFECT
  | "exception" -> Some EXCEPTION
  | "raise" -> Some RAISE
  | "perform" -> Some PERFORM
  | "continue" -> Some CONTINUE
  | "discontinue" -> Some DISCONTINUE
  | _ -> None

let is_digit c = c >= '0' && c <= '9'

let is_ident_start c = (c >= 'a' && c <= 'z') || c = '_'

let is_upper c = c >= 'A' && c <= 'Z'

let is_ident_char c =
  is_ident_start c || is_upper c || is_digit c || c = '\'' || c = '%'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let emit tok pos = tokens := (tok, pos) :: !tokens in
  let pos = ref 0 in
  let fail msg = failwith (Printf.sprintf "Lexer: %s at offset %d" msg !pos) in
  let rec skip_comment depth start =
    if !pos + 1 >= n then begin
      pos := start;
      fail "unterminated comment"
    end
    else if src.[!pos] = '*' && src.[!pos + 1] = ')' then begin
      pos := !pos + 2;
      if depth > 1 then skip_comment (depth - 1) start
    end
    else if src.[!pos] = '(' && src.[!pos + 1] = '*' then begin
      pos := !pos + 2;
      skip_comment (depth + 1) start
    end
    else begin
      incr pos;
      skip_comment depth start
    end
  in
  while !pos < n do
    let start = !pos in
    let c = src.[!pos] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr pos
    else if c = '(' && !pos + 1 < n && src.[!pos + 1] = '*' then begin
      pos := !pos + 2;
      skip_comment 1 start
    end
    else if is_digit c then begin
      while !pos < n && is_digit src.[!pos] do
        incr pos
      done;
      emit (INT (int_of_string (String.sub src start (!pos - start)))) start
    end
    else if is_ident_start c then begin
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      let word = String.sub src start (!pos - start) in
      emit (match keyword word with Some k -> k | None -> IDENT word) start
    end
    else if is_upper c then begin
      while !pos < n && is_ident_char src.[!pos] do
        incr pos
      done;
      emit (UIDENT (String.sub src start (!pos - start))) start
    end
    else begin
      let two =
        if !pos + 1 < n then Some (String.sub src !pos 2) else None
      in
      match two with
      | Some "->" ->
          pos := !pos + 2;
          emit ARROW start
      | Some "<=" ->
          pos := !pos + 2;
          emit LE start
      | _ -> (
          incr pos;
          match c with
          | '|' -> emit BAR start
          | '(' -> emit LPAREN start
          | ')' -> emit RPAREN start
          | '+' -> emit PLUS start
          | '-' -> emit MINUS start
          | '*' -> emit STAR start
          | '/' -> emit SLASH start
          | '<' -> emit LT start
          | '=' -> emit EQ start
          | _ ->
              pos := start;
              fail (Printf.sprintf "illegal character %C" c))
    end
  done;
  emit EOF n;
  List.rev !tokens
