exception Error of string

type state = { mutable toks : (Lexer.token * int) list }

let peek st = match st.toks with (t, _) :: _ -> t | [] -> Lexer.EOF

let pos st = match st.toks with (_, p) :: _ -> p | [] -> -1

let advance st = match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let fail st msg =
  raise
    (Error
       (Printf.sprintf "%s at offset %d (found '%s')" msg (pos st)
          (Lexer.token_to_string (peek st))))

let eat st tok =
  if peek st = tok then advance st
  else fail st (Printf.sprintf "expected '%s'" (Lexer.token_to_string tok))

let ident st =
  match peek st with
  | Lexer.IDENT x ->
      advance st;
      x
  | _ -> fail st "expected an identifier"

let uident st =
  match peek st with
  | Lexer.UIDENT l ->
      advance st;
      l
  | _ -> fail st "expected a label (capitalised identifier)"

let rec parse_expr st =
  match peek st with
  | Lexer.FUN ->
      advance st;
      let x = ident st in
      eat st Lexer.ARROW;
      Ast.Lam (Ast.OCaml_lam, x, parse_expr st)
  | Lexer.CFUN ->
      advance st;
      let x = ident st in
      eat st Lexer.ARROW;
      Ast.Lam (Ast.C_lam, x, parse_expr st)
  | Lexer.LET ->
      advance st;
      if peek st = Lexer.REC then begin
        advance st;
        let f = ident st in
        let x = ident st in
        eat st Lexer.EQ;
        let body = parse_expr st in
        eat st Lexer.IN;
        Ast.Letrec (f, x, body, parse_expr st)
      end
      else begin
        let x = ident st in
        eat st Lexer.EQ;
        let e1 = parse_expr st in
        eat st Lexer.IN;
        Ast.Let (x, e1, parse_expr st)
      end
  | Lexer.IF ->
      advance st;
      let c = parse_expr st in
      eat st Lexer.THEN;
      let t = parse_expr st in
      eat st Lexer.ELSE;
      Ast.If (c, t, parse_expr st)
  | Lexer.MATCH -> parse_match st
  | _ -> parse_cmp st

and parse_match st =
  eat st Lexer.MATCH;
  let scrutinee = parse_expr st in
  eat st Lexer.WITH;
  if peek st = Lexer.BAR then advance st;
  let return_var = ident st in
  eat st Lexer.ARROW;
  let return_body = parse_expr st in
  let exn_cases = ref [] in
  let eff_cases = ref [] in
  let rec more () =
    if peek st = Lexer.BAR then begin
      advance st;
      (match peek st with
      | Lexer.EXCEPTION ->
          advance st;
          let l = uident st in
          let x = ident st in
          eat st Lexer.ARROW;
          let body = parse_expr st in
          exn_cases := (l, x, body) :: !exn_cases
      | Lexer.EFFECT ->
          advance st;
          eat st Lexer.LPAREN;
          let l = uident st in
          let x = ident st in
          eat st Lexer.RPAREN;
          let k = ident st in
          eat st Lexer.ARROW;
          let body = parse_expr st in
          eff_cases := (l, x, k, body) :: !eff_cases
      | _ -> fail st "expected 'exception' or 'effect' case");
      more ()
    end
  in
  more ();
  eat st Lexer.END;
  Ast.Match
    ( scrutinee,
      {
        Ast.return_var;
        return_body;
        exn_cases = List.rev !exn_cases;
        eff_cases = List.rev !eff_cases;
      } )

and parse_cmp st =
  let left = parse_add st in
  match peek st with
  | Lexer.LT ->
      advance st;
      Ast.Binop (Ast.Lt, left, parse_add st)
  | Lexer.LE ->
      advance st;
      Ast.Binop (Ast.Le, left, parse_add st)
  | Lexer.EQ ->
      advance st;
      Ast.Binop (Ast.Eq, left, parse_add st)
  | _ -> left

and parse_add st =
  let rec go left =
    match peek st with
    | Lexer.PLUS ->
        advance st;
        go (Ast.Binop (Ast.Add, left, parse_mul st))
    | Lexer.MINUS ->
        advance st;
        go (Ast.Binop (Ast.Sub, left, parse_mul st))
    | _ -> left
  in
  go (parse_mul st)

and parse_mul st =
  let rec go left =
    match peek st with
    | Lexer.STAR ->
        advance st;
        go (Ast.Binop (Ast.Mul, left, parse_prefix st))
    | Lexer.SLASH ->
        advance st;
        go (Ast.Binop (Ast.Div, left, parse_prefix st))
    | _ -> left
  in
  go (parse_prefix st)

and parse_prefix st =
  match peek st with
  | Lexer.RAISE ->
      advance st;
      let l = uident st in
      Ast.Raise (l, parse_atom st)
  | Lexer.PERFORM ->
      advance st;
      let l = uident st in
      Ast.Perform (l, parse_atom st)
  | Lexer.CONTINUE ->
      advance st;
      let k = parse_atom st in
      Ast.Continue (k, parse_atom st)
  | Lexer.DISCONTINUE ->
      advance st;
      let k = parse_atom st in
      let l = uident st in
      Ast.Discontinue (k, l, parse_atom st)
  | _ -> parse_app st

and parse_app st =
  let rec go left =
    match peek st with
    | Lexer.INT _ | Lexer.IDENT _ | Lexer.LPAREN -> go (Ast.App (left, parse_atom st))
    | _ -> left
  in
  go (parse_atom st)

and parse_atom st =
  match peek st with
  | Lexer.INT n ->
      advance st;
      Ast.Int n
  | Lexer.MINUS -> (
      advance st;
      match peek st with
      | Lexer.INT n ->
          advance st;
          Ast.Int (-n)
      | _ -> fail st "expected an integer after unary minus")
  | Lexer.IDENT x ->
      advance st;
      Ast.Var x
  | Lexer.LPAREN ->
      advance st;
      let e = parse_expr st in
      eat st Lexer.RPAREN;
      e
  | _ -> fail st "expected an expression"

let parse src =
  match
    let st = { toks = Lexer.tokenize src } in
    let e = parse_expr st in
    if peek st <> Lexer.EOF then fail st "trailing input";
    e
  with
  | e -> Result.Ok e
  | exception Error msg -> Result.Error msg
  | exception Failure msg -> Result.Error msg

let parse_exn src =
  match parse src with
  | Ok e -> e
  | Error msg -> invalid_arg ("Parser: " ^ msg)
