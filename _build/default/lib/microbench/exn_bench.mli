(** Exception micro benchmarks (Table 1's exnval/exnraise rows).

    The paper's claim: exceptions cost the same after the retrofit,
    because Multicore keeps stock OCaml's linked handler frames (§5.1).
    On OCaml 5 we measure the shipped implementation directly. *)

val exnval_loop : int -> int
(** Install an exception handler and return normally, [n] times. *)

val exnraise_loop : int -> int
(** Install a handler and raise into it, [n] times. *)

val exn_depth_raise : depth:int -> int
(** Raise through [depth] stack frames to a single handler, exercising
    the constant-cost unwind (§2.2). *)
