let creatures = 4

let initial_colors = [ 0; 1; 2; 0 ]

(* complement: meeting two different colours yields the third; equal
   colours are unchanged *)
let complement c1 c2 = if c1 = c2 then c1 else 3 - c1 - c2

(* The meeting place holds either nothing or one waiting creature (its
   colour and the MVar on which it awaits its partner's colour).  The
   second arrival completes the meeting and decrements the budget; a
   waiter can only be posted while budget remains, so no creature is
   left parked at the end. *)

(* ------------------------------------------------------------------ *)
(* Effect-scheduler version *)

module Mvar = Retrofit_core.Mvar
module Sched = Retrofit_core.Sched

type eff_place = Free | Waiting of int * int Mvar.t

let run_effects ~meetings =
  let total = ref 0 in
  Sched.run (fun () ->
      let remaining = ref meetings in
      let place = Mvar.create Free in
      let creature color0 =
        let color = ref color0 in
        let mine = ref 0 in
        let rec loop () =
          match Mvar.take place with
          | Free ->
              if !remaining = 0 then Mvar.put place Free
              else begin
                let resp = Mvar.create_empty () in
                Mvar.put place (Waiting (!color, resp));
                let other = Mvar.take resp in
                color := complement !color other;
                incr mine;
                loop ()
              end
          | Waiting (other, resp) ->
              decr remaining;
              Mvar.put place Free;
              Mvar.put resp !color;
              color := complement !color other;
              incr mine;
              loop ()
        in
        loop ();
        total := !total + !mine
      in
      List.iter (fun c -> Sched.fork (fun () -> creature c)) initial_colors);
  !total

(* ------------------------------------------------------------------ *)
(* Concurrency-monad version *)

module C = Retrofit_monad.Conc

type monad_place = MFree | MWaiting of int * int C.mvar

let run_monad ~meetings =
  let total = ref 0 in
  let remaining = ref meetings in
  let place = C.mvar_full MFree in
  let creature color0 =
    let open C in
    let rec loop color mine =
      take place >>= function
      | MFree ->
          if !remaining = 0 then put place MFree >>= fun () -> finish mine
          else begin
            let resp = mvar_empty () in
            put place (MWaiting (color, resp)) >>= fun () ->
            take resp >>= fun other -> loop (complement color other) (mine + 1)
          end
      | MWaiting (other, resp) ->
          atom (fun () -> decr remaining) >>= fun () ->
          put place MFree >>= fun () ->
          put resp color >>= fun () -> loop (complement color other) (mine + 1)
    and finish mine = atom (fun () -> total := !total + mine)
    in
    loop color0 0
  in
  C.run
    (List.fold_left
       (fun acc c -> C.(acc >>= fun () -> fork (creature c)))
       (C.return ()) initial_colors);
  !total

(* ------------------------------------------------------------------ *)
(* Lwt-like version *)

module L = Retrofit_monad.Lwtlike

type lwt_place = LFree | LWaiting of int * int L.mvar

let run_lwt ~meetings =
  let total = ref 0 in
  let remaining = ref meetings in
  let place = L.mvar_empty () in
  let creature color0 =
    let open L in
    let rec loop color mine =
      (* pause each turn to bound callback recursion, as Lwt code does *)
      pause () >>= fun () ->
      mvar_take place >>= function
      | LFree ->
          if !remaining = 0 then mvar_put place LFree >>= fun () -> finish mine
          else begin
            let resp = mvar_empty () in
            mvar_put place (LWaiting (color, resp)) >>= fun () ->
            mvar_take resp >>= fun other -> loop (complement color other) (mine + 1)
          end
      | LWaiting (other, resp) ->
          remaining := !remaining - 1;
          mvar_put place LFree >>= fun () ->
          mvar_put resp color >>= fun () -> loop (complement color other) (mine + 1)
    and finish mine =
      total := !total + mine;
      return ()
    in
    loop color0 0
  in
  let threads = List.map creature initial_colors in
  L.run
    L.(
      mvar_put place LFree >>= fun () ->
      join threads);
  !total
