(** The recursive micro benchmarks (ack, fib, motzkin, sudan, tak) in
    the three styles of Tables 1 and 2:

    - [plain]: idiomatic non-tail recursion (the baseline);
    - [handler]: every non-tail recursive call surrounded by an effect
      handler that performs no effects — the setup/teardown cost Table 2
      isolates (each handler allocates and frees a fiber);
    - [monadic]: the concurrency-monad version, forking the non-tail
      call and collecting its result through an MVar, as described in
      §6.2. *)

type impl = {
  style : string;
  ack : int -> int -> int;
  fib : int -> int;
  motzkin : int -> int;
  sudan : int -> int -> int -> int;
  tak : int -> int -> int -> int;
}

val plain : impl

val handler : impl

val monadic : impl

val all : impl list

val reference : string -> int
(** Known values for cross-style checking, keyed by
    ["ack 2 3"]-style strings.  @raise Not_found for unknown keys. *)
