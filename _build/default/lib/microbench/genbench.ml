module G = Retrofit_gen

let tree_cache : (int, G.Tree.t) Hashtbl.t = Hashtbl.create 4

let tree depth =
  match Hashtbl.find_opt tree_cache depth with
  | Some t -> t
  | None ->
      let t = G.Tree.complete ~depth in
      Hashtbl.add tree_cache depth t;
      t

let effect_sum ~depth = G.Effect_gen.sum_all (G.Effect_gen.of_tree (tree depth))

let cps_sum ~depth = G.Cps_gen.sum_all (G.Cps_gen.of_tree (tree depth))

let monad_sum ~depth = G.Monad_gen.sum_all (G.Monad_gen.of_tree (tree depth))

let expected_sum ~depth =
  let n = (1 lsl depth) - 1 in
  n * (n + 1) / 2
