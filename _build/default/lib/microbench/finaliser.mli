(** The finalised-continuations experiment (§6.3.3).

    §5.6 shows how a [Gc.finalise] attached to every captured
    continuation would reclaim abandoned fibers and their resources;
    the paper measures a 4.1× slowdown on the generator and 2.1× on
    chameneos, which is why it is not done by default.  These variants
    attach the finaliser to every continuation the generator captures,
    to be compared against the plain versions. *)

val effect_sum_finalised : depth:int -> int
(** The effect generator with a finaliser on every captured
    continuation. *)

val roundtrip_finalised : int -> int
(** The opcost roundtrip loop with finalised continuations. *)

val roundtrip_plain : int -> int
(** Matching loop without finalisers, for the ratio. *)
