(** Chameneos-redux (§6.3.2): a concurrency game measuring context
    switching and synchronisation.

    Creatures meet pairwise at a meeting place and mutate colours; the
    game runs a fixed number of meetings.  Synchronisation is by MVars
    in all three implementations, matching the paper's setup:

    - [run_effects]: lightweight threads on the effect scheduler;
    - [run_monad]: the Claessen concurrency monad;
    - [run_lwt]: the Lwt-like promise library.

    Each returns the total number of individual meetings counted by the
    creatures, which must equal [2 * meetings]. *)

val creatures : int
(** Number of creatures in the standard game (4). *)

val run_effects : meetings:int -> int

val run_monad : meetings:int -> int

val run_lwt : meetings:int -> int
