module Eff = Retrofit_core.Eff

(* The effect generator of Gen.Effect_gen, with
   [Eff.finalise_continuation] attached to every captured
   continuation. *)
let of_iter_finalised (type a) (iter : (a -> unit) -> unit) : unit -> a option =
  let module M = struct
    type _ Effect.t += Yield : a -> unit Effect.t
  end in
  let open Effect.Deep in
  let next = ref (fun () -> None) in
  let start () =
    match_with
      (fun () -> iter (fun x -> Effect.perform (M.Yield x)))
      ()
      {
        retc =
          (fun () ->
            next := (fun () -> None);
            None);
        exnc = raise;
        effc =
          (fun (type c) (eff : c Effect.t) ->
            match eff with
            | M.Yield x ->
                Some
                  (fun (k : (c, a option) continuation) ->
                    Eff.finalise_continuation k;
                    next := (fun () -> continue k ());
                    Some x)
            | _ -> None);
      }
  in
  next := start;
  fun () -> !next ()

let effect_sum_finalised ~depth =
  let tree = Retrofit_gen.Tree.complete ~depth in
  let next = of_iter_finalised (fun f -> Retrofit_gen.Tree.iter f tree) in
  let rec go acc = match next () with Some v -> go (acc + v) | None -> acc in
  go 0

type _ Effect.t += Probe : unit Effect.t

let make_handler ~finalise : (int, int) Effect.Deep.handler =
  {
    Effect.Deep.retc = Fun.id;
    exnc = raise;
    effc =
      (fun (type c) (eff : c Effect.t) ->
        match eff with
        | Probe ->
            Some
              (fun (k : (c, int) Effect.Deep.continuation) ->
                if finalise then Eff.finalise_continuation k;
                Effect.Deep.continue k ())
        | _ -> None);
  }

let handler_fin = make_handler ~finalise:true

let handler_plain = make_handler ~finalise:false

let[@inline never] body x =
  Effect.perform Probe;
  x + 1

let roundtrip handler n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + Effect.Deep.match_with body i handler
  done;
  !acc

let roundtrip_finalised n = roundtrip handler_fin n

let roundtrip_plain n = roundtrip handler_plain n
