(** Generator benchmark (§6.3.1): traverse a complete binary tree
    through a generator, in the three implementations of lib/gen.

    The paper traverses depth 25 (2^26 stack switches); the depth here
    is a parameter so the harness can pick a laptop-scale size — the
    ratios are depth-independent once the tree dwarfs the caches. *)

val effect_sum : depth:int -> int

val cps_sum : depth:int -> int

val monad_sum : depth:int -> int

val expected_sum : depth:int -> int
(** n(n+1)/2 for the 2^depth - 1 nodes. *)
