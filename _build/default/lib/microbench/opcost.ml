type _ Effect.t += Probe : unit Effect.t

let handler : (int, int) Effect.Deep.handler =
  {
    Effect.Deep.retc = Fun.id;
    exnc = raise;
    effc =
      (fun (type c) (eff : c Effect.t) ->
        match eff with
        | Probe ->
            Some
              (fun (k : (c, int) Effect.Deep.continuation) ->
                Effect.Deep.continue k ())
        | _ -> None);
  }

let[@inline never] body_trivial x = x + 1

let[@inline never] body_perform x =
  Effect.perform Probe;
  x + 1

let[@inline never] body_perform_n n x =
  for _ = 1 to n do
    Effect.perform Probe
  done;
  x + 1

let handler_only_loop n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + Effect.Deep.match_with body_trivial i handler
  done;
  !acc

let roundtrip_loop n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + Effect.Deep.match_with body_perform i handler
  done;
  !acc

let perform_heavy_loop ~iters ~performs =
  let acc = ref 0 in
  for i = 1 to iters do
    acc := !acc + Effect.Deep.match_with (body_perform_n performs) i handler
  done;
  !acc

let baseline_call_loop n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + Sys.opaque_identity (body_trivial i)
  done;
  !acc
