exception E of int

let exnval_loop n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + (try i with E x -> x)
  done;
  !acc

let exnraise_loop n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + (try raise (E i) with E x -> x)
  done;
  !acc

let exn_depth_raise ~depth =
  let rec dive d = if d = 0 then raise (E depth) else 1 + dive (d - 1) in
  try dive depth with E x -> x
