/* C stubs for the external-call and callback micro benchmarks
   (Table 1).  retrofit_ext_id is the classic fast external call: no
   OCaml allocation, so it is invoked directly.  retrofit_ext_callback
   re-enters OCaml through caml_callback, the meander pattern of Fig 1. */

#include <caml/mlvalues.h>
#include <caml/callback.h>

CAMLprim value retrofit_ext_id(value v)
{
  return v;
}

CAMLprim value retrofit_ext_add(value a, value b)
{
  return Val_long(Long_val(a) + Long_val(b));
}

CAMLprim value retrofit_ext_callback(value v)
{
  static const value *cb = NULL;
  if (cb == NULL)
    cb = caml_named_value("retrofit_cb_id");
  return caml_callback(*cb, v);
}
