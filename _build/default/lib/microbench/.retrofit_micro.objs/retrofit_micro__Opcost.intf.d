lib/microbench/opcost.mli:
