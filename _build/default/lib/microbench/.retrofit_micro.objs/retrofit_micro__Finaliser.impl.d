lib/microbench/finaliser.ml: Effect Fun Retrofit_core Retrofit_gen
