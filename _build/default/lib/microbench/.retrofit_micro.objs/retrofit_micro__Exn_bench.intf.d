lib/microbench/exn_bench.mli:
