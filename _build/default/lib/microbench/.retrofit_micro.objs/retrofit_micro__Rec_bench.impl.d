lib/microbench/rec_bench.ml: Effect Fun Retrofit_monad
