lib/microbench/exn_bench.ml:
