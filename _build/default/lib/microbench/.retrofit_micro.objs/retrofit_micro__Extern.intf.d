lib/microbench/extern.mli:
