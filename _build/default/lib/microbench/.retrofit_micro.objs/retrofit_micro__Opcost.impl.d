lib/microbench/opcost.ml: Effect Fun Sys
