lib/microbench/chameneos.ml: List Retrofit_core Retrofit_monad
