lib/microbench/genbench.ml: Hashtbl Retrofit_gen
