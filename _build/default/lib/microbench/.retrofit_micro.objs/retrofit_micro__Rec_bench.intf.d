lib/microbench/rec_bench.mli:
