lib/microbench/genbench.mli:
