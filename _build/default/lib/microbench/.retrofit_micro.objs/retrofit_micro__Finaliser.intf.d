lib/microbench/finaliser.mli:
