lib/microbench/chameneos.mli:
