lib/microbench/extern.ml: Callback
