type impl = {
  style : string;
  ack : int -> int -> int;
  fib : int -> int;
  motzkin : int -> int;
  sudan : int -> int -> int -> int;
  tak : int -> int -> int -> int;
}

(* ------------------------------------------------------------------ *)
(* Idiomatic versions *)

let rec ack m n =
  if m = 0 then n + 1
  else if n = 0 then ack (m - 1) 1
  else ack (m - 1) (ack m (n - 1))

let rec fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)

let rec motzkin n =
  if n < 2 then 1 else motzkin (n - 1) + motzkin_sum n 0

and motzkin_sum n i =
  if i > n - 2 then 0
  else (motzkin i * motzkin (n - 2 - i)) + motzkin_sum n (i + 1)

let rec sudan n x y =
  if n = 0 then x + y
  else if y = 0 then x
  else begin
    let s = sudan n x (y - 1) in
    sudan (n - 1) s (s + y)
  end

let rec tak x y z =
  if y < x then tak (tak (x - 1) y z) (tak (y - 1) z x) (tak (z - 1) x y) else z

let plain = { style = "plain"; ack; fib; motzkin; sudan; tak }

(* ------------------------------------------------------------------ *)
(* Handler-wrapped versions: each non-tail call runs under a fresh
   effect handler (a fresh fiber) that performs no effects. *)

let value_handler : ('a, 'a) Effect.Deep.handler =
  { Effect.Deep.retc = Fun.id; exnc = raise; effc = (fun _ -> None) }

let[@inline never] handle f = Effect.Deep.match_with f () value_handler

let rec h_ack m n =
  if m = 0 then n + 1
  else if n = 0 then h_ack (m - 1) 1
  else h_ack (m - 1) (handle (fun () -> h_ack m (n - 1)))

let rec h_fib n =
  if n < 2 then n
  else
    handle (fun () -> h_fib (n - 1)) + handle (fun () -> h_fib (n - 2))

let rec h_motzkin n =
  if n < 2 then 1
  else handle (fun () -> h_motzkin (n - 1)) + handle (fun () -> h_motzkin_sum n 0)

and h_motzkin_sum n i =
  if i > n - 2 then 0
  else begin
    (handle (fun () -> h_motzkin i) * handle (fun () -> h_motzkin (n - 2 - i)))
    + h_motzkin_sum n (i + 1)
  end

let rec h_sudan n x y =
  if n = 0 then x + y
  else if y = 0 then x
  else begin
    let s = handle (fun () -> h_sudan n x (y - 1)) in
    h_sudan (n - 1) s (s + y)
  end

let rec h_tak x y z =
  if y < x then
    h_tak
      (handle (fun () -> h_tak (x - 1) y z))
      (handle (fun () -> h_tak (y - 1) z x))
      (handle (fun () -> h_tak (z - 1) x y))
  else z

let handler =
  { style = "handler"; ack = h_ack; fib = h_fib; motzkin = h_motzkin;
    sudan = h_sudan; tak = h_tak }

(* ------------------------------------------------------------------ *)
(* Monadic versions: fork the non-tail call and collect its result
   through an MVar (Claessen's monad, as in §6.2). *)

module C = Retrofit_monad.Conc

let via_fork m =
  (* fork [m] and read its result back from an MVar *)
  let open C in
  let mv = mvar_empty () in
  fork (m () >>= put mv) >>= fun () -> take mv

let rec m_ack m n =
  let open C in
  if m = 0 then return (n + 1)
  else if n = 0 then m_ack (m - 1) 1
  else via_fork (fun () -> m_ack m (n - 1)) >>= fun r -> m_ack (m - 1) r

let rec m_fib n =
  let open C in
  if n < 2 then return n
  else
    via_fork (fun () -> m_fib (n - 1)) >>= fun a ->
    m_fib (n - 2) >>= fun b -> return (a + b)

let rec m_motzkin n =
  let open C in
  if n < 2 then return 1
  else
    via_fork (fun () -> m_motzkin (n - 1)) >>= fun a ->
    m_motzkin_sum n 0 >>= fun b -> return (a + b)

and m_motzkin_sum n i =
  let open C in
  if i > n - 2 then return 0
  else
    via_fork (fun () -> m_motzkin i) >>= fun a ->
    via_fork (fun () -> m_motzkin (n - 2 - i)) >>= fun b ->
    m_motzkin_sum n (i + 1) >>= fun rest -> return ((a * b) + rest)

let rec m_sudan n x y =
  let open C in
  if n = 0 then return (x + y)
  else if y = 0 then return x
  else via_fork (fun () -> m_sudan n x (y - 1)) >>= fun s -> m_sudan (n - 1) s (s + y)

let rec m_tak x y z =
  let open C in
  if y < x then
    via_fork (fun () -> m_tak (x - 1) y z) >>= fun a ->
    via_fork (fun () -> m_tak (y - 1) z x) >>= fun b ->
    via_fork (fun () -> m_tak (z - 1) x y) >>= fun c -> m_tak a b c
  else return z

let force name m =
  match C.run_main m with
  | Some v -> v
  | None -> failwith ("monadic " ^ name ^ ": deadlock")

let monadic =
  {
    style = "monad";
    ack = (fun m n -> force "ack" (m_ack m n));
    fib = (fun n -> force "fib" (m_fib n));
    motzkin = (fun n -> force "motzkin" (m_motzkin n));
    sudan = (fun n x y -> force "sudan" (m_sudan n x y));
    tak = (fun x y z -> force "tak" (m_tak x y z));
  }

let all = [ plain; handler; monadic ]

let reference = function
  | "ack 2 3" -> 9
  | "ack 3 3" -> 61
  | "fib 15" -> 610
  | "fib 20" -> 6765
  | "motzkin 10" -> 2188
  | "motzkin 12" -> 15511
  | "sudan 2 2 1" -> 27
  | "tak 12 8 4" -> 5
  | "tak 18 12 6" -> 7
  | _ -> raise Not_found
