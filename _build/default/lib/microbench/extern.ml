external ext_id : int -> int = "retrofit_ext_id" [@@noalloc]

external ext_add : int -> int -> int = "retrofit_ext_add" [@@noalloc]

external ext_callback : int -> int = "retrofit_ext_callback"

let () = Callback.register "retrofit_cb_id" (fun (x : int) -> x)

let extcall_loop n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + ext_id i
  done;
  !acc

let callback_loop n =
  let acc = ref 0 in
  for i = 1 to n do
    acc := !acc + ext_callback i
  done;
  !acc
