(** Effect-operation cost probes (§6.3's annotated a–e sequence).

    The paper uses cycle-accurate tracing to time four segments: fiber
    allocation+switch (a–b, 23 ns), perform+handle (b–c, 5 ns), resume
    (c–d, 11 ns), and fiber return+free (d–e, 7 ns).  Without Intel PT
    we decompose by differencing loop measurements:

    - [handler_only_loop] runs a handler whose body performs nothing —
      its per-iteration cost is (a–b) + (d–e);
    - [roundtrip_loop] adds one perform+resume — subtracting gives
      (b–c) + (c–d);
    - [perform_heavy_loop n] performs [n] times per handler, so the
      slope against [n] is the per-perform cost alone. *)

val handler_only_loop : int -> int
(** [n] iterations of installing a handler around a trivial body. *)

val roundtrip_loop : int -> int
(** [n] iterations of handler + one perform immediately resumed. *)

val perform_heavy_loop : iters:int -> performs:int -> int
(** [iters] handlers, each of whose body performs [performs] times. *)

val baseline_call_loop : int -> int
(** The same loops' skeleton with a plain call, for calibration. *)
