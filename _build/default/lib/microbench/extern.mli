(** Real external calls and callbacks (Table 1's extcall/callback
    rows).

    [ext_id] is a [\[@@noalloc\]] external — the fast path of §2.1 where
    no bookkeeping is needed.  [ext_callback] calls into C, which calls
    back into a registered OCaml closure via [caml_callback], exercising
    the fiber-reuse path of §5.3 on OCaml 5. *)

val ext_id : int -> int

val ext_add : int -> int -> int

val ext_callback : int -> int
(** C calls back into an OCaml identity function with the argument. *)

val extcall_loop : int -> int
(** [extcall_loop n] performs [n] external calls, returning a checksum. *)

val callback_loop : int -> int
