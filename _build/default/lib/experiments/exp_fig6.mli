(** Fig 6: web-server throughput and tail latency. *)

val report : ?quick:bool -> unit -> string
