lib/experiments/exp_degradation.mli:
