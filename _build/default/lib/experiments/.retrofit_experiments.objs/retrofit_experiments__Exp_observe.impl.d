lib/experiments/exp_observe.ml: Buffer List Printf Retrofit_core Retrofit_dwarf Retrofit_fiber Retrofit_metrics Retrofit_trace String
