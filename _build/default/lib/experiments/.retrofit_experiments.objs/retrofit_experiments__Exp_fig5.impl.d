lib/experiments/exp_fig5.ml: Array List Printf Retrofit_fiber Retrofit_macro Retrofit_util
