lib/experiments/exp_opcost.mli:
