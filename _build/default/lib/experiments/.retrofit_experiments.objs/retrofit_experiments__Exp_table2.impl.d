lib/experiments/exp_table2.ml: Array List Printf Retrofit_harness Retrofit_micro Retrofit_util
