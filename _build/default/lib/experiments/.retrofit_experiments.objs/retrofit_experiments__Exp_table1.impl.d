lib/experiments/exp_table1.ml: List Printf Retrofit_fiber Retrofit_harness Retrofit_micro Retrofit_util
