lib/experiments/exp_ablation.ml: List Printf Retrofit_dwarf Retrofit_fiber Retrofit_util String
