lib/experiments/registry.ml: Exp_ablation Exp_backtrace Exp_concurrent Exp_degradation Exp_fig4 Exp_fig5 Exp_fig6 Exp_observe Exp_opcost Exp_table1 Exp_table2 List Printf String
