lib/experiments/exp_backtrace.mli:
