lib/experiments/exp_concurrent.ml: Printf Retrofit_harness Retrofit_micro Retrofit_util
