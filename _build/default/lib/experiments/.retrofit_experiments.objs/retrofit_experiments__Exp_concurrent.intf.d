lib/experiments/exp_concurrent.mli:
