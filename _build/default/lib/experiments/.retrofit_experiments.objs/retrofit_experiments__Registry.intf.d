lib/experiments/registry.mli:
