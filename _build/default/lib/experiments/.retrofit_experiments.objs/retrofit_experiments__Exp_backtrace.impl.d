lib/experiments/exp_backtrace.ml: Array List Printf Retrofit_dwarf Retrofit_fiber Retrofit_util
