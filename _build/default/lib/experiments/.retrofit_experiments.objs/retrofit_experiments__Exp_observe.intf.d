lib/experiments/exp_observe.mli: Retrofit_dwarf Retrofit_fiber
