lib/experiments/exp_degradation.ml: Hashtbl List Option Printf Retrofit_httpsim Retrofit_util String
