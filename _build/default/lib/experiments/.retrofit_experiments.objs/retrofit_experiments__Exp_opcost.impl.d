lib/experiments/exp_opcost.ml: Printf Retrofit_harness Retrofit_micro Retrofit_util
