lib/experiments/exp_fig6.ml: List Printf Retrofit_httpsim Retrofit_util
