lib/experiments/exp_fig4.ml: Array Int64 List Printf Retrofit_harness Retrofit_macro Retrofit_util Sys
