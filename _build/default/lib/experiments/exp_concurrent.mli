(** §6.3.1–6.3.3: generators, chameneos and finalised continuations. *)

type generator_result = {
  depth : int;
  cps_ms : float;
  effect_x : float;  (** effect generator / cps (paper: 2.76×) *)
  monad_x : float;  (** monad generator / cps (paper: 8.69×) *)
}

val generators : ?quick:bool -> unit -> generator_result

type chameneos_result = {
  meetings : int;
  effects_ms : float;
  monad_x : float;  (** monad / effects (paper: 1.67×) *)
  lwt_x : float;  (** lwt / effects (paper: 4.29×) *)
}

val chameneos : ?quick:bool -> unit -> chameneos_result

type finaliser_result = {
  generator_x : float;  (** finalised / plain generator (paper: 4.1×) *)
  roundtrip_x : float;  (** finalised / plain handler roundtrip *)
}

val finalisers : ?quick:bool -> unit -> finaliser_result

val report_generators : ?quick:bool -> unit -> string

val report_chameneos : ?quick:bool -> unit -> string

val report_finalisers : ?quick:bool -> unit -> string
