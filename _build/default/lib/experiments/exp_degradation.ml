module HS = Retrofit_httpsim

let cell_rows rates (cells : HS.Experiment.degradation_cell list) =
  (* Cells arrive intensity-major in the order of the sweep axes. *)
  let by_intensity = Hashtbl.create 8 in
  List.iter
    (fun (c : HS.Experiment.degradation_cell) ->
      let prev = try Hashtbl.find by_intensity c.intensity with Not_found -> [] in
      Hashtbl.replace by_intensity c.intensity (c :: prev))
    cells;
  let intensities =
    List.sort_uniq compare
      (List.map (fun (c : HS.Experiment.degradation_cell) -> c.intensity) cells)
  in
  List.map
    (fun i ->
      let row = List.rev (Hashtbl.find by_intensity i) in
      Printf.sprintf "%.1fx" i
      :: List.concat_map
           (fun rate ->
             match
               List.find_opt
                 (fun (c : HS.Experiment.degradation_cell) ->
                   c.outcome.HS.Loadgen.offered_rps = rate)
                 row
             with
             | Some c ->
                 [
                   Printf.sprintf "%.1fk" (c.outcome.HS.Loadgen.goodput_rps /. 1000.);
                   Printf.sprintf "%.2f"
                     (float_of_int c.outcome.HS.Loadgen.p99_ns /. 1e6);
                 ]
             | None -> [ "-"; "-" ])
           rates)
    intensities

let taxonomy_line name (o : HS.Loadgen.outcome) =
  Printf.sprintf
    "  %-4s %2.1fx @%2dk: total=%d ok=%d timeout=%d malformed=%d shed=%d 500s=%d \
     retries=%d | faults inj=%d -> malformed=%d retried=%d timeout=%d 500=%d \
     absorbed=%d"
    name 1.0
    (o.HS.Loadgen.offered_rps / 1000)
    o.HS.Loadgen.total_requests o.HS.Loadgen.completed o.HS.Loadgen.timeouts
    o.HS.Loadgen.malformed o.HS.Loadgen.shed o.HS.Loadgen.server_errors
    o.HS.Loadgen.retries o.HS.Loadgen.faults.HS.Loadgen.injected
    o.HS.Loadgen.faults.HS.Loadgen.to_malformed
    o.HS.Loadgen.faults.HS.Loadgen.to_retried
    o.HS.Loadgen.faults.HS.Loadgen.to_timeout
    o.HS.Loadgen.faults.HS.Loadgen.to_server_error
    o.HS.Loadgen.faults.HS.Loadgen.to_absorbed

let report ?(quick = false) () =
  let duration_ms = if quick then 300 else 1_000 in
  let rates = [ 10_000; 20_000; 30_000 ] in
  let sweep = HS.Experiment.degradation ~duration_ms ~rates () in
  let header =
    "intensity"
    :: List.concat_map
         (fun r ->
           let k = string_of_int (r / 1000) ^ "k" in
           [ k ^ " gput"; k ^ " p99ms" ])
         rates
  in
  let align =
    Retrofit_util.Table.Left :: List.map (fun _ -> Retrofit_util.Table.Right) (List.tl header)
  in
  let tables =
    List.map
      (fun (name, cells) ->
        Printf.sprintf "%s\n%s" name
          (Retrofit_util.Table.render ~align ~header (cell_rows rates cells)))
      sweep
  in
  let taxonomy =
    List.filter_map
      (fun (name, cells) ->
        List.find_opt
          (fun (c : HS.Experiment.degradation_cell) ->
            c.intensity = 1.0 && c.outcome.HS.Loadgen.offered_rps = 20_000)
          cells
        |> Option.map (fun (c : HS.Experiment.degradation_cell) ->
               taxonomy_line name c.outcome))
      sweep
  in
  Printf.sprintf
    "Degradation sweep: goodput (req/s) and p99 (ms) vs offered load x fault \
     intensity\n\
     (intensity scales the default fault plan; resilience = 1s deadline, 3 \
     attempts, cap 512)\n\n\
     %s\n\
     Error taxonomy at 1.0x / 20k req/s:\n%s\n"
    (String.concat "\n" tables)
    (String.concat "\n" taxonomy)
