(** The experiment registry: every table and figure of the paper's
    evaluation, addressable by id. *)

type t = {
  id : string;
  title : string;
  paper_ref : string;
  run : ?quick:bool -> unit -> string;
}

val all : t list

val find : string -> t option

val ids : unit -> string list

val run_all : ?quick:bool -> unit -> string
(** Every experiment's report, concatenated with separators — the body
    of [bench/main.exe]'s output. *)
