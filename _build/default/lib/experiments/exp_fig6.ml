module HS = Retrofit_httpsim

let report ?(quick = false) () =
  let duration_ms = if quick then 300 else 3_000 in
  let sweeps = HS.Experiment.fig6a ~duration_ms () in
  let rates = HS.Experiment.default_rates in
  let throughput_table =
    Retrofit_util.Table.render
      ~align:
        (Retrofit_util.Table.Left
        :: List.map (fun _ -> Retrofit_util.Table.Right) rates)
      ~header:("offered" :: List.map (fun r -> string_of_int (r / 1000) ^ "k") rates)
      (List.map
         (fun (name, points) ->
           name :: List.map (fun (_, a) -> Printf.sprintf "%.1fk" (a /. 1000.)) points)
         sweeps)
  in
  let lat = HS.Experiment.fig6b ~duration_ms:(duration_ms * 2) () in
  let ms ns = Printf.sprintf "%.2f" (float_of_int ns /. 1e6) in
  let latency_table =
    Retrofit_util.Table.render
      ~align:
        [
          Retrofit_util.Table.Left; Retrofit_util.Table.Right; Retrofit_util.Table.Right;
          Retrofit_util.Table.Right; Retrofit_util.Table.Right; Retrofit_util.Table.Right;
          Retrofit_util.Table.Right;
        ]
      ~header:[ "server"; "p50 ms"; "p90 ms"; "p99 ms"; "p99.9 ms"; "gc pauses"; "errors" ]
      (List.map
         (fun (o : HS.Loadgen.outcome) ->
           [
             o.model_name; ms o.p50_ns; ms o.p90_ns; ms o.p99_ns; ms o.p999_ns;
             string_of_int o.gc_pauses; string_of_int o.errors;
           ])
         lat)
  in
  Printf.sprintf
    "Fig 6a: achieved vs offered throughput (requests/s)\n\
     (paper: all three plateau around 30k req/s)\n\n%s\n\
     Fig 6b: latency at 20k req/s (2/3 of plateau)\n\
     (paper: OCaml versions competitive with go; MC best tail latency)\n\n%s"
    throughput_table latency_table
