(** §6.3 effect-operation costs.

    Decomposed by loop differencing (see {!Retrofit_micro.Opcost}):
    handler setup+teardown (the paper's a–b + d–e, 23 + 7 = 30 ns) and
    perform+handle+resume (b–c + c–d, 5 + 11 = 16 ns). *)

type result = {
  setup_teardown_ns : float;  (** per handler, no performs *)
  per_perform_ns : float;  (** slope of extra performs *)
  roundtrip_ns : float;  (** one handler + one perform *)
  baseline_call_ns : float;
}

val run : ?quick:bool -> unit -> result

val report : ?quick:bool -> unit -> string
