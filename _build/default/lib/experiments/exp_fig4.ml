module M = Retrofit_macro
module H = Retrofit_harness

type row = {
  workload : string;
  stock_ms : float;
  normalized : (string * float) list;
  checksum : int;
}

let quick_size w =
  (* conservative shrink that keeps every workload meaningful *)
  let d = M.Workload.default_size w in
  match M.Workload.name w with
  | "binarytrees" -> d - 4
  | "nqueens" -> d - 2
  | "sexp" -> d - 3
  | "huffman" -> d / 8
  | "kmeans" -> d / 8
  | _ -> max 1 (d / 4)

let runtime_name (module R : M.Runtime.RUNTIME) = R.name

(* Runs are interleaved across the runtime variants (stock, mc, rz0,
   rz32, stock, mc, ...) so that machine noise — CPU contention,
   frequency excursions — hits every variant alike; each variant's
   median is then taken over its own runs. *)
let rows ?(quick = false) () =
  let runs = if quick then 1 else 9 in
  let warmups = if quick then 0 else 1 in
  List.map
    (fun w ->
      let size = if quick then quick_size w else M.Workload.default_size w in
      let checksum = ref 0 in
      let variants = Array.of_list M.Runtime.all in
      let samples = Array.make_matrix (Array.length variants) runs 0.0 in
      Array.iter
        (fun r ->
          for _ = 1 to warmups do
            checksum := M.Workload.run_with w r ~size
          done)
        variants;
      for run = 0 to runs - 1 do
        Array.iteri
          (fun vi r ->
            let _, dt =
              H.Clock.elapsed_ns (fun () ->
                  checksum := Sys.opaque_identity (M.Workload.run_with w r ~size))
            in
            samples.(vi).(run) <- Int64.to_float dt)
          variants
      done;
      let times =
        Array.to_list
          (Array.mapi
             (fun vi r -> (runtime_name r, Retrofit_util.Stats.median samples.(vi)))
             variants)
      in
      let stock = List.assoc "stock" times in
      {
        workload = M.Workload.name w;
        stock_ms = stock /. 1e6;
        normalized = List.map (fun (n, t) -> (n, t /. stock)) times;
        checksum = !checksum;
      })
    M.Registry.all

let variant_names = List.map (fun (module R : M.Runtime.RUNTIME) -> R.name) M.Runtime.all

let geomeans rows =
  List.map
    (fun variant ->
      let values =
        rows |> List.map (fun r -> List.assoc variant r.normalized) |> Array.of_list
      in
      (variant, Retrofit_util.Stats.geomean values))
    variant_names

let report ?quick () =
  let rows = rows ?quick () in
  let header = "workload" :: "stock (ms)" :: List.tl variant_names in
  let body =
    List.map
      (fun r ->
        r.workload
        :: Printf.sprintf "%.1f" r.stock_ms
        :: List.filter_map
             (fun (name, v) ->
               if name = "stock" then None else Some (Printf.sprintf "%.3f" v))
             r.normalized)
      rows
  in
  let gm = geomeans rows in
  let gm_row =
    "geomean" :: ""
    :: List.filter_map
         (fun (name, v) ->
           if name = "stock" then None else Some (Printf.sprintf "%.3f" v))
         gm
  in
  let table =
    Retrofit_util.Table.render
      ~align:
        [
          Retrofit_util.Table.Left; Retrofit_util.Table.Right; Retrofit_util.Table.Right;
          Retrofit_util.Table.Right; Retrofit_util.Table.Right;
        ]
      ~header
      (body @ [ gm_row ])
  in
  let chart =
    Retrofit_util.Table.bar_chart ~baseline:1.0
      (List.map (fun r -> (r.workload, List.assoc "mc" r.normalized)) rows)
  in
  "Fig 4: macro benchmark time normalized to stock\n\
   (prologue checks injected per the red-zone rule; paper: geomean < 1.01,\n\
   32 of 54 programs within 5 %)\n\n" ^ table ^ "\nMC / stock (| marks 1.0):\n" ^ chart
