module R = Retrofit_micro.Rec_bench
module H = Retrofit_harness

type row = { bench : string; plain_ns : float; handler_x : float; monad_x : float }

let sizes ~quick =
  if quick then
    [
      ("ack", fun (i : R.impl) -> i.R.ack 2 3);
      ("fib", fun i -> i.R.fib 10);
      ("motzkin", fun i -> i.R.motzkin 6);
      ("sudan", fun i -> i.R.sudan 2 2 1);
      ("tak", fun i -> i.R.tak 8 5 2);
    ]
  else
    [
      ("ack", fun (i : R.impl) -> i.R.ack 2 8);
      ("fib", fun i -> i.R.fib 21);
      ("motzkin", fun i -> i.R.motzkin 13);
      ("sudan", fun i -> i.R.sudan 2 2 2);
      ("tak", fun i -> i.R.tak 16 10 4);
    ]

let rows ?(quick = false) () =
  let runs = if quick then 1 else 5 in
  let warmups = if quick then 0 else 2 in
  List.map
    (fun (bench, f) ->
      (* cross-check the three styles agree before timing *)
      let v_plain = f R.plain and v_handler = f R.handler and v_monad = f R.monadic in
      if v_plain <> v_handler || v_plain <> v_monad then
        failwith
          (Printf.sprintf "Table 2 %s: styles disagree (%d, %d, %d)" bench v_plain
             v_handler v_monad);
      let t_plain = H.Bench.median_ns ~warmups ~runs (fun () -> f R.plain) in
      let t_handler = H.Bench.median_ns ~warmups ~runs (fun () -> f R.handler) in
      let t_monad = H.Bench.median_ns ~warmups ~runs (fun () -> f R.monadic) in
      {
        bench;
        plain_ns = t_plain;
        handler_x = t_handler /. t_plain;
        monad_x = t_monad /. t_plain;
      })
    (sizes ~quick)

let report ?quick () =
  let rows = rows ?quick () in
  let table =
    Retrofit_util.Table.render
      ~align:
        [
          Retrofit_util.Table.Left; Retrofit_util.Table.Right; Retrofit_util.Table.Right;
          Retrofit_util.Table.Right;
        ]
      ~header:[ "bench"; "plain (ms)"; "handler x"; "monad x" ]
      (List.map
         (fun r ->
           [
             r.bench;
             Printf.sprintf "%.2f" (r.plain_ns /. 1e6);
             Printf.sprintf "%.2f" r.handler_x;
             Printf.sprintf "%.2f" r.monad_x;
           ])
         rows)
  in
  let geo sel =
    Retrofit_util.Stats.geomean (Array.of_list (List.map sel rows))
  in
  Printf.sprintf
    "Table 2: handlers but no perform (slowdown over idiomatic recursion)\n\
     (paper: MC 6.7-12.3x, monad 33-349x)\n\n\
     %s\ngeomean: handler %.2fx, monad %.2fx\n"
    table
    (geo (fun r -> r.handler_x))
    (geo (fun r -> r.monad_x))
