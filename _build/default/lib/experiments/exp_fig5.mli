(** Fig 5: normalized OCaml text-section size (OTSS).

    Two inventories feed the model: the declared function inventories
    of the macro workloads, and the actual code emitted by the fiber
    machine's compiler for its program suite.  Paper: MC ≈ +19 %,
    MC+RedZone0 ≈ +30 %, MC+RedZone32 ≈ +19 % (no improvement over 16
    words). *)

type row = {
  workload : string;
  stock_bytes : int;
  normalized : (string * float) list;
}

val macro_rows : unit -> row list

val ir_rows : unit -> row list
(** OTSS of the fiber-machine programs, computed from real emitted
    code. *)

val geomeans : row list -> (string * float) list

val report : ?quick:bool -> unit -> string
