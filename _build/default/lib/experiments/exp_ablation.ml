module F = Retrofit_fiber
module D = Retrofit_dwarf
module Counter = Retrofit_util.Counter

let run_counters cfg p =
  let compiled = F.Compile.compile p in
  match F.Machine.run ~cfuns:F.Programs.standard_cfuns cfg compiled with
  | F.Machine.Fatal msg, _ -> failwith ("ablation program failed: " ^ msg)
  | _, counters -> counters

let stack_cache ?(quick = false) () =
  let iters = if quick then 1_000 else 50_000 in
  let p = F.Programs.effect_roundtrip ~iters in
  let with_cache = run_counters F.Config.mc p in
  let without = run_counters (F.Config.with_cache false F.Config.mc) p in
  "Stack cache (fiber churn: one fiber per iteration, " ^ string_of_int iters
  ^ " iterations):\n"
  ^ Retrofit_util.Table.render
      ~align:[ Retrofit_util.Table.Left; Retrofit_util.Table.Right; Retrofit_util.Table.Right ]
      ~header:[ "counter"; "cache on"; "cache off" ]
      (List.map
         (fun name ->
           [
             name;
             string_of_int (Counter.get with_cache name);
             string_of_int (Counter.get without name);
           ])
         [ "malloc"; "stack_cache_hit"; "fiber_alloc"; "instructions" ])

(* A program with leaf functions in each frame class (small <= 16,
   mid <= 32, big > 32 words), so the sweep shows the elision rule
   actually firing: checks disappear class by class as the red zone
   widens, while the non-leaf driver stays checked. *)
let red_zone_program ~iters =
  let rec lets n body =
    if n = 0 then body
    else F.Ir.Let ("v" ^ string_of_int n, F.Ir.Int n, lets (n - 1) body)
  in
  {
    F.Ir.fns =
      [
        F.Ir.fn "leaf_small" [ "x" ] (F.Ir.Binop (F.Ir.Add, F.Ir.Var "x", F.Ir.Int 1));
        F.Ir.fn "leaf_mid" [ "x" ] (lets 22 (F.Ir.Var "x"));
        F.Ir.fn "leaf_big" [ "x" ] (lets 44 (F.Ir.Var "x"));
        F.Ir.fn "main" []
          (F.Ir.Repeat
             ( F.Ir.Int iters,
               F.Ir.Binop
                 ( F.Ir.Add,
                   F.Ir.Call ("leaf_small", [ F.Ir.Int 1 ]),
                   F.Ir.Binop
                     ( F.Ir.Add,
                       F.Ir.Call ("leaf_mid", [ F.Ir.Int 2 ]),
                       F.Ir.Call ("leaf_big", [ F.Ir.Int 3 ]) ) ) ));
      ];
    main = "main";
  }

let red_zone_sweep ?(quick = false) () =
  let p = red_zone_program ~iters:(if quick then 200 else 5_000) in
  let compiled = F.Compile.compile p in
  let rows =
    List.map
      (fun rz ->
        let cfg = F.Config.mc_red_zone rz in
        let counters = run_counters cfg p in
        [
          string_of_int rz;
          string_of_int (Counter.get counters "overflow_check");
          string_of_int (Counter.get counters "check_elided");
          string_of_int (F.Otss.checked_functions cfg compiled);
          string_of_int (F.Otss.total cfg compiled);
        ])
      [ 0; 8; 16; 32; 64 ]
  in
  "Red zone size (one leaf function per frame class + a non-leaf driver):\n"
  ^ Retrofit_util.Table.render
      ~align:
        [
          Retrofit_util.Table.Right; Retrofit_util.Table.Right; Retrofit_util.Table.Right;
          Retrofit_util.Table.Right; Retrofit_util.Table.Right;
        ]
      ~header:[ "red zone"; "checks run"; "checks elided"; "fns checked"; "otss (B)" ]
      rows

let initial_size_sweep ?(quick = false) () =
  let depth = if quick then 2_000 else 20_000 in
  let p = F.Programs.deep_recursion ~depth in
  let rows =
    List.map
      (fun words ->
        let cfg = F.Config.with_initial_words words F.Config.mc in
        let counters = run_counters cfg p in
        [
          string_of_int words;
          string_of_int (Counter.get counters "stack_grow");
          string_of_int (Counter.get counters "words_copied");
          string_of_int (Counter.get counters "instructions");
        ])
      [ 16; 64; 256; 1024 ]
  in
  "Initial fiber size (deep recursion inside a handler, depth "
  ^ string_of_int depth ^ "):\n"
  ^ Retrofit_util.Table.render
      ~align:
        [
          Retrofit_util.Table.Right; Retrofit_util.Table.Right; Retrofit_util.Table.Right;
          Retrofit_util.Table.Right;
        ]
      ~header:[ "initial words"; "growths"; "words copied"; "instructions" ]
      rows

(* §5.1: Multicore keeps stock's linked trap frames for exceptions
   instead of implementing them as effects.  Compare the instruction
   cost of a raise/handle loop against the same control transfer done
   with an effect handler and an abandoned continuation. *)
let exceptions_vs_effects ?(quick = false) () =
  let iters = if quick then 1_000 else 20_000 in
  let exn_prog = F.Programs.exnraise ~iters in
  let eff_prog =
    let open F.Ir in
    {
      fns =
        [
          fn "body" [ "u" ] (Perform ("E", Int 1));
          fn "ret" [ "v" ] (Var "v");
          (* handle the "exception" by not resuming: the fiber is
             abandoned, exactly what exceptions-as-effects would do *)
          fn "eff" [ "x"; "k" ] (Var "x");
          fn "main" []
            (Repeat
               ( Int iters,
                 Handle
                   {
                     body_fn = "body";
                     body_args = [ Int 0 ];
                     retc = "ret";
                     exncs = [];
                     effcs = [ ("E", "eff") ];
                   } ));
        ];
      main = "main";
    }
  in
  let exn_c = run_counters F.Config.mc exn_prog in
  let eff_c = run_counters F.Config.mc eff_prog in
  let per name c = float_of_int (Counter.get c "instructions") /. float_of_int iters |> fun v -> (name, Printf.sprintf "%.1f instr/iter" v) in
  "Exceptions as linked trap frames vs as effects (why §5.1 keeps stock\n\
   exceptions):\n"
  ^ Retrofit_util.Table.render_kv
      [ per "raise through a trap frame" exn_c; per "perform + abandoned fiber" eff_c ]
  ^ "(note: the effect encoding also leaks the unreclaimed fiber unless a\n\
     finaliser or explicit discontinue cleans it up)\n"

(* §5.2: "copying fibers is unnecessary and inefficient" for one-shot
   concurrency.  Quantify: the same effect-roundtrip workload under the
   one-shot discipline versus semantics-faithful copying resumption. *)
let one_shot_vs_multishot ?(quick = false) () =
  let iters = if quick then 500 else 20_000 in
  let p = F.Programs.effect_roundtrip ~iters in
  let one_shot = run_counters F.Config.mc p in
  let multi = run_counters (F.Config.with_multishot true F.Config.mc) p in
  let row name = [
    name;
    string_of_int (Counter.get one_shot name);
    string_of_int (Counter.get multi name);
  ] in
  "One-shot vs multi-shot (copying) resumption on the effect roundtrip\n\
   (the §5.2 trade-off: one-shot avoids copying entirely):\n"
  ^ Retrofit_util.Table.render
      ~align:[ Retrofit_util.Table.Left; Retrofit_util.Table.Right; Retrofit_util.Table.Right ]
      ~header:[ "counter"; "one-shot"; "multi-shot" ]
      [ row "instructions"; row "words_copied"; row "cont_copy"; row "malloc";
        row "fiber_alloc" ]

let unwind_strategy ?(quick = false) () =
  let p = if quick then F.Programs.fib ~n:10 else F.Programs.fib ~n:14 in
  let compiled = F.Compile.compile p in
  let table = D.Table.build compiled in
  let interp_ops = ref 0 in
  let probes = ref 0 in
  let hook m =
    incr probes;
    ignore (D.Unwind.backtrace ~interp_ops table m)
  in
  (match F.Machine.run ~cfuns:F.Programs.standard_cfuns ~on_call:hook F.Config.mc compiled with
  | F.Machine.Fatal msg, _ -> failwith msg
  | _ -> ());
  let pre = D.Interp.Precompiled.of_table table in
  "Interpreted vs precompiled unwind tables (Bastian et al. report up to\n\
   25x faster unwinding from precompilation, at a memory cost):\n"
  ^ Retrofit_util.Table.render_kv
      [
        ("unwind probes", string_of_int !probes);
        ("CFI bytecode ops interpreted", string_of_int !interp_ops);
        ( "bytecode table size",
          string_of_int (D.Table.total_bytecode_words table) ^ " words" );
        ( "precompiled table size",
          string_of_int (D.Interp.Precompiled.size_words pre) ^ " words" );
        ( "precompiled lookups per probe frame",
          "1 (O(1) array read instead of bytecode interpretation)" );
      ]

let report ?quick () =
  String.concat "\n"
    [
      stack_cache ?quick ();
      red_zone_sweep ?quick ();
      initial_size_sweep ?quick ();
      exceptions_vs_effects ?quick ();
      one_shot_vs_multishot ?quick ();
      unwind_strategy ?quick ();
    ]
