(** Table 2: handlers-but-no-perform.

    Each recursive benchmark's non-tail calls run under a fresh effect
    handler (MC row) or are forked in the concurrency monad with an
    MVar collecting the result (monad row); entries are slowdowns over
    the idiomatic version.  Paper: MC 6.7–12.3× (mean 10×), monad
    33–349× (mean 67×), with the gap explained by heap allocation of
    continuation frames versus stack allocation on fibers. *)

type row = {
  bench : string;
  plain_ns : float;
  handler_x : float;
  monad_x : float;
}

val rows : ?quick:bool -> unit -> row list

val report : ?quick:bool -> unit -> string
