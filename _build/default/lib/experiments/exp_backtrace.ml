module F = Retrofit_fiber
module D = Retrofit_dwarf

let meander_backtrace () =
  let compiled = F.Compile.compile F.Programs.meander in
  let table = D.Table.build compiled in
  let captured = ref "" in
  let hook m =
    let f = F.Machine.current_fiber m in
    if f.F.Fiber.regs.fn >= 0 then begin
      let fn = (F.Machine.compiled m).F.Compile.fns.(f.regs.fn).F.Compile.fn_name in
      if fn = "c_to_ocaml" && !captured = "" then
        captured := D.Unwind.format (D.Unwind.backtrace table m)
    end
  in
  (match F.Machine.run ~cfuns:F.Programs.standard_cfuns ~on_call:hook F.Config.mc compiled with
  | F.Machine.Done 42, _ -> ()
  | outcome, _ ->
      failwith
        ("meander did not return 42: "
        ^ (match outcome with
          | F.Machine.Done n -> string_of_int n
          | F.Machine.Uncaught (l, _) -> "uncaught " ^ l
          | F.Machine.Fatal m -> m)));
  !captured

let suite ~quick =
  [
    ("fib", F.Programs.fib ~n:(if quick then 10 else 14), true);
    ("meander", F.Programs.meander, true);
    ("exnraise", F.Programs.exnraise ~iters:(if quick then 20 else 200), true);
    ("callback", F.Programs.callback ~iters:(if quick then 20 else 200), true);
    ("effects", F.Programs.effect_roundtrip ~iters:(if quick then 20 else 200), false);
    ("reperform", F.Programs.effect_depth ~depth:4 ~iters:(if quick then 5 else 20), false);
    ("discontinue", F.Programs.discontinue_cleanup, false);
    ("deep", F.Programs.deep_recursion ~depth:(if quick then 500 else 3_000), false);
    ("eff-in-cb", F.Programs.effect_in_callback, false);
  ]

let validation_summary ?(quick = false) () =
  let rows =
    List.concat_map
      (fun (name, p, run_stock) ->
        let configs =
          if run_stock then [ F.Config.stock; F.Config.mc ] else [ F.Config.mc ]
        in
        List.map
          (fun cfg ->
            let compiled = F.Compile.compile p in
            let outcome, report =
              D.Validate.run_validated ~cfuns:F.Programs.standard_cfuns cfg compiled
            in
            let status =
              match outcome with
              | F.Machine.Fatal m -> "FATAL " ^ m
              | _ when report.D.Validate.mismatches = [] -> "ok"
              | _ -> Printf.sprintf "%d MISMATCHES" (List.length report.mismatches)
            in
            [
              name;
              F.Config.name cfg;
              string_of_int report.D.Validate.probes;
              string_of_int report.frames;
              string_of_int report.interp_ops;
              status;
            ])
          configs)
      (suite ~quick)
  in
  Retrofit_util.Table.render
    ~align:
      [
        Retrofit_util.Table.Left; Retrofit_util.Table.Left; Retrofit_util.Table.Right;
        Retrofit_util.Table.Right; Retrofit_util.Table.Right; Retrofit_util.Table.Left;
      ]
    ~header:[ "program"; "config"; "probes"; "frames"; "cfi ops"; "status" ]
    rows

let report ?quick () =
  "Fig 1d: DWARF backtrace at raise E1 in the meander program\n\
   (unwound from the callback, across the C frames, to main)\n\n"
  ^ meander_backtrace ()
  ^ "\nDWARF unwind validation against the shadow stack (Bastian-et-al style):\n\n"
  ^ validation_summary ?quick ()
