module F = Retrofit_fiber
module Micro = Retrofit_micro
module H = Retrofit_harness

type row = {
  bench : string;
  stock_instr : int;
  mc_instr : int;
  instr_pct : float;
  ocaml5_ns_per_op : float option;
}

let machine_instr cfg p =
  let compiled = F.Compile.compile p in
  match F.Machine.run ~cfuns:F.Programs.standard_cfuns cfg compiled with
  | F.Machine.Fatal msg, _ -> failwith ("Table 1 program failed: " ^ msg)
  | _, counters -> Retrofit_util.Counter.get counters "instructions"

let row ?(time = None) bench p =
  let stock_instr = machine_instr F.Config.stock p in
  let mc_instr = machine_instr F.Config.mc p in
  {
    bench;
    stock_instr;
    mc_instr;
    instr_pct =
      Retrofit_util.Stats.percent_diff ~baseline:(float_of_int stock_instr)
        (float_of_int mc_instr);
    ocaml5_ns_per_op = time;
  }

let rows ?(quick = false) () =
  let iters = if quick then 10_000 else 100_000 in
  let wall_iters = if quick then 100_000 else 2_000_000 in
  let per_op f = Some (H.Bench.per_op_ns ~iters:wall_iters (fun () -> f wall_iters)) in
  [
    row ~time:(per_op Micro.Exn_bench.exnval_loop) "exnval" (F.Programs.exnval ~iters);
    row ~time:(per_op Micro.Exn_bench.exnraise_loop) "exnraise"
      (F.Programs.exnraise ~iters);
    row ~time:(per_op Micro.Extern.extcall_loop) "extcall" (F.Programs.extcall ~iters);
    row ~time:(per_op Micro.Extern.callback_loop) "callback"
      (F.Programs.callback ~iters);
    row "ack"
      (if quick then F.Programs.ack ~m:2 ~n:4 else F.Programs.ack ~m:2 ~n:8)
      ~time:
        (Some
           (H.Bench.median_ns (fun () -> Micro.Rec_bench.plain.Micro.Rec_bench.ack 3 6)));
    row "fib"
      (if quick then F.Programs.fib ~n:12 else F.Programs.fib ~n:20)
      ~time:
        (Some (H.Bench.median_ns (fun () -> Micro.Rec_bench.plain.Micro.Rec_bench.fib 25)));
    row "motzkin"
      (if quick then F.Programs.motzkin ~n:8 else F.Programs.motzkin ~n:11)
      ~time:
        (Some
           (H.Bench.median_ns (fun () ->
                Micro.Rec_bench.plain.Micro.Rec_bench.motzkin 14)));
    row "sudan"
      (F.Programs.sudan ~iters:50 ~n:1 ~x:3 ~y:200 ())
      ~time:
        (Some
           (H.Bench.median_ns (fun () ->
                Micro.Rec_bench.plain.Micro.Rec_bench.sudan 2 2 2)));
    row "tak"
      (if quick then F.Programs.tak ~x:12 ~y:8 ~z:4 else F.Programs.tak ~x:14 ~y:10 ~z:6)
      ~time:
        (Some
           (H.Bench.median_ns (fun () ->
                Micro.Rec_bench.plain.Micro.Rec_bench.tak 18 12 6)));
  ]

let report ?quick () =
  let rows = rows ?quick () in
  let table =
    Retrofit_util.Table.render
      ~align:[ Retrofit_util.Table.Left; Right; Right; Right; Right ]
      ~header:[ "bench"; "stock instr"; "mc instr"; "Instr %"; "OCaml5 run (ns)" ]
      (List.map
         (fun r ->
           [
             r.bench;
             string_of_int r.stock_instr;
             string_of_int r.mc_instr;
             Printf.sprintf "%+.1f" r.instr_pct;
             (match r.ocaml5_ns_per_op with
             | Some ns -> Printf.sprintf "%.1f" ns
             | None -> "-");
           ])
         rows)
  in
  "Table 1: micro benchmarks without effects\n\
   (Instr: fiber-machine instruction counts, MC vs stock; paper: exn rows +0.0,\n\
   extcall +10, callback +72, recursives +14..+24.  Time column: absolute\n\
   OCaml 5 measurements of the same benchmark, for context.)\n\n" ^ table
