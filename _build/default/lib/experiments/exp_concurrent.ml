module Micro = Retrofit_micro
module H = Retrofit_harness

type generator_result = {
  depth : int;
  cps_ms : float;
  effect_x : float;
  monad_x : float;
}

let generators ?(quick = false) () =
  let depth = if quick then 12 else 18 in
  let runs = if quick then 1 else 5 in
  let expected = Micro.Genbench.expected_sum ~depth in
  let check name v =
    if v <> expected then failwith (Printf.sprintf "generator %s: bad sum" name)
  in
  check "cps" (Micro.Genbench.cps_sum ~depth);
  check "effect" (Micro.Genbench.effect_sum ~depth);
  check "monad" (Micro.Genbench.monad_sum ~depth);
  let t_cps = H.Bench.median_ns ~runs (fun () -> Micro.Genbench.cps_sum ~depth) in
  let t_eff = H.Bench.median_ns ~runs (fun () -> Micro.Genbench.effect_sum ~depth) in
  let t_mon = H.Bench.median_ns ~runs (fun () -> Micro.Genbench.monad_sum ~depth) in
  { depth; cps_ms = t_cps /. 1e6; effect_x = t_eff /. t_cps; monad_x = t_mon /. t_cps }

type chameneos_result = {
  meetings : int;
  effects_ms : float;
  monad_x : float;
  lwt_x : float;
}

let chameneos ?(quick = false) () =
  let meetings = if quick then 2_000 else 200_000 in
  let runs = if quick then 1 else 5 in
  let check name total =
    if total <> 2 * meetings then
      failwith (Printf.sprintf "chameneos %s: %d meetings counted" name total)
  in
  check "effects" (Micro.Chameneos.run_effects ~meetings);
  check "monad" (Micro.Chameneos.run_monad ~meetings);
  check "lwt" (Micro.Chameneos.run_lwt ~meetings);
  let t_eff = H.Bench.median_ns ~runs (fun () -> Micro.Chameneos.run_effects ~meetings) in
  let t_mon = H.Bench.median_ns ~runs (fun () -> Micro.Chameneos.run_monad ~meetings) in
  let t_lwt = H.Bench.median_ns ~runs (fun () -> Micro.Chameneos.run_lwt ~meetings) in
  { meetings; effects_ms = t_eff /. 1e6; monad_x = t_mon /. t_eff; lwt_x = t_lwt /. t_eff }

type finaliser_result = { generator_x : float; roundtrip_x : float }

let finalisers ?(quick = false) () =
  let depth = if quick then 10 else 15 in
  let iters = if quick then 10_000 else 200_000 in
  let runs = if quick then 1 else 3 in
  let t_plain =
    H.Bench.median_ns ~runs (fun () -> Micro.Genbench.effect_sum ~depth)
  in
  let t_fin =
    H.Bench.median_ns ~runs (fun () -> Micro.Finaliser.effect_sum_finalised ~depth)
  in
  let t_rt_plain = H.Bench.median_ns ~runs (fun () -> Micro.Finaliser.roundtrip_plain iters) in
  let t_rt_fin =
    H.Bench.median_ns ~runs (fun () -> Micro.Finaliser.roundtrip_finalised iters)
  in
  { generator_x = t_fin /. t_plain; roundtrip_x = t_rt_fin /. t_rt_plain }

let report_generators ?quick () =
  let r = generators ?quick () in
  Printf.sprintf
    "Generators (§6.3.1): complete binary tree of depth %d\n\
     (paper, depth 25: effect 2.76x over cps, monad 8.69x over cps)\n\n%s"
    r.depth
    (Retrofit_util.Table.render_kv
       [
         ("cps (hand-defunctionalised)", Printf.sprintf "%.2f ms (1.00x)" r.cps_ms);
         ("effect (generic, fibers)", Printf.sprintf "%.2fx" r.effect_x);
         ("monad (heap continuations)", Printf.sprintf "%.2fx" r.monad_x);
       ])

let report_chameneos ?quick () =
  let r = chameneos ?quick () in
  Printf.sprintf
    "Chameneos (§6.3.2): %d meetings, MVar synchronisation\n\
     (paper: monad 1.67x, lwt 4.29x over effects)\n\n%s"
    r.meetings
    (Retrofit_util.Table.render_kv
       [
         ("effects", Printf.sprintf "%.2f ms (1.00x)" r.effects_ms);
         ("monad", Printf.sprintf "%.2fx" r.monad_x);
         ("lwt", Printf.sprintf "%.2fx" r.lwt_x);
       ])

let report_finalisers ?quick () =
  let r = finalisers ?quick () in
  Printf.sprintf
    "Finalised continuations (§6.3.3)\n\
     (paper: generator 4.1x, chameneos 2.1x slower with a finaliser per\n\
     continuation — hence not attached by default)\n\n%s"
    (Retrofit_util.Table.render_kv
       [
         ("generator, finalised / plain", Printf.sprintf "%.2fx" r.generator_x);
         ("handler roundtrip, finalised / plain", Printf.sprintf "%.2fx" r.roundtrip_x);
       ])
