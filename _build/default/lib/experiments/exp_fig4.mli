(** Fig 4: normalized running time of the macro suite.

    Every workload runs under the four runtimes (stock, MC, MC+RedZone0,
    MC+RedZone32); times are normalized to stock and summarised by
    geometric mean.  The paper's result: the multicore variants average
    under 1 % slower, with most programs within 5 %. *)

type row = {
  workload : string;
  stock_ms : float;
  normalized : (string * float) list;  (** runtime name → time / stock *)
  checksum : int;
}

val rows : ?quick:bool -> unit -> row list
(** [quick] shrinks workload sizes for test runs. *)

val geomeans : row list -> (string * float) list

val report : ?quick:bool -> unit -> string
