(** Ablations of the design choices DESIGN.md calls out.

    - {e stack cache} (§5.2): mallocs with and without the cache under
      fiber churn;
    - {e red zone size}: dynamic check counts and static checked-function
      counts at red zones 0/8/16/32/64;
    - {e initial fiber size}: growth copies versus initial size;
    - {e exceptions as linked frames vs as effects} (§5.1): the
      instruction cost of raising through a trap chain versus
      implementing the same control transfer with a handler fiber;
    - {e one-shot vs multi-shot resumption} (§5.2): the copying cost the
      one-shot design avoids;
    - {e interpreted vs precompiled unwind tables} (§5.5 / Bastian et
      al.): CFI operations executed versus table memory. *)

val stack_cache : ?quick:bool -> unit -> string

val red_zone_sweep : ?quick:bool -> unit -> string

val initial_size_sweep : ?quick:bool -> unit -> string

val exceptions_vs_effects : ?quick:bool -> unit -> string

val one_shot_vs_multishot : ?quick:bool -> unit -> string

val unwind_strategy : ?quick:bool -> unit -> string

val report : ?quick:bool -> unit -> string
