module O = Retrofit_micro.Opcost
module H = Retrofit_harness

type result = {
  setup_teardown_ns : float;
  per_perform_ns : float;
  roundtrip_ns : float;
  baseline_call_ns : float;
}

let run ?(quick = false) () =
  let n = if quick then 20_000 else 1_000_000 in
  let runs = if quick then 2 else 7 in
  let per_op f = H.Bench.per_op_ns ~runs ~iters:n f in
  let handler_only = per_op (fun () -> O.handler_only_loop n) in
  let roundtrip = per_op (fun () -> O.roundtrip_loop n) in
  let heavy_performs = 8 in
  let heavy =
    H.Bench.median_ns ~runs (fun () ->
        O.perform_heavy_loop ~iters:(n / heavy_performs) ~performs:heavy_performs)
    /. float_of_int (n / heavy_performs)
  in
  let baseline = per_op (fun () -> O.baseline_call_loop n) in
  {
    setup_teardown_ns = handler_only -. baseline;
    per_perform_ns = (heavy -. handler_only) /. float_of_int heavy_performs;
    roundtrip_ns = roundtrip -. baseline;
    baseline_call_ns = baseline;
  }

let report ?quick () =
  let r = run ?quick () in
  Printf.sprintf
    "Effect operation costs on OCaml 5 (cf. the paper's 23/5/11/7 ns on a\n\
     Xeon Gold 5120: setup+teardown a-b + d-e = 30 ns, perform+resume\n\
     b-c + c-d = 16 ns)\n\n%s"
    (Retrofit_util.Table.render_kv
       [
         ("handler setup+teardown (a-b + d-e)", Printf.sprintf "%.1f ns" r.setup_teardown_ns);
         ("perform+handle+resume (b-c + c-d)", Printf.sprintf "%.1f ns" r.per_perform_ns);
         ("full roundtrip", Printf.sprintf "%.1f ns" r.roundtrip_ns);
         ("baseline call", Printf.sprintf "%.1f ns" r.baseline_call_ns);
       ])
