module M = Retrofit_macro
module F = Retrofit_fiber

type row = { workload : string; stock_bytes : int; normalized : (string * float) list }

let variants = [ ("mc", Some 16); ("mc+rz0", Some 0); ("mc+rz32", Some 32) ]

let macro_rows () =
  List.map
    (fun w ->
      let fns = M.Workload.functions w in
      let stock = M.Fn_meta.otss ~red_zone:None fns in
      {
        workload = M.Workload.name w;
        stock_bytes = stock;
        normalized =
          List.map
            (fun (name, red_zone) ->
              (name, float_of_int (M.Fn_meta.otss ~red_zone fns) /. float_of_int stock))
            variants;
      })
    M.Registry.all

let ir_programs =
  [
    ("ack", F.Programs.ack ~m:2 ~n:3);
    ("fib", F.Programs.fib ~n:10);
    ("tak", F.Programs.tak ~x:6 ~y:4 ~z:2);
    ("motzkin", F.Programs.motzkin ~n:6);
    ("sudan", F.Programs.sudan ~n:1 ~x:2 ~y:2 ());
    ("exnval", F.Programs.exnval ~iters:1);
    ("extcall", F.Programs.extcall ~iters:1);
    ("callback", F.Programs.callback ~iters:1);
    ("meander", F.Programs.meander);
    ("effects", F.Programs.effect_roundtrip ~iters:1);
  ]

let ir_rows () =
  List.map
    (fun (name, p) ->
      let compiled = F.Compile.compile p in
      let stock = F.Otss.total F.Config.stock compiled in
      let mc rz = F.Otss.total (F.Config.mc_red_zone rz) compiled in
      {
        workload = name;
        stock_bytes = stock;
        normalized =
          [
            ("mc", float_of_int (mc 16) /. float_of_int stock);
            ("mc+rz0", float_of_int (mc 0) /. float_of_int stock);
            ("mc+rz32", float_of_int (mc 32) /. float_of_int stock);
          ];
      })
    ir_programs

let geomeans rows =
  List.map
    (fun (variant, _) ->
      let values =
        rows |> List.map (fun r -> List.assoc variant r.normalized) |> Array.of_list
      in
      (variant, Retrofit_util.Stats.geomean values))
    variants

let render title rows =
  let header = [ "workload"; "stock (B)"; "mc"; "mc+rz0"; "mc+rz32" ] in
  let body =
    List.map
      (fun r ->
        r.workload
        :: string_of_int r.stock_bytes
        :: List.map (fun (_, v) -> Printf.sprintf "%.3f" v) r.normalized)
      rows
  in
  let gm = geomeans rows in
  let gm_row = "geomean" :: "" :: List.map (fun (_, v) -> Printf.sprintf "%.3f" v) gm in
  title ^ "\n"
  ^ Retrofit_util.Table.render
      ~align:
        [
          Retrofit_util.Table.Left; Retrofit_util.Table.Right; Retrofit_util.Table.Right;
          Retrofit_util.Table.Right; Retrofit_util.Table.Right;
        ]
      ~header
      (body @ [ gm_row ])

let report ?quick:_ () =
  "Fig 5: normalized OCaml text-section size\n\
   (paper: MC +19 %, MC+RedZone0 +30 %, MC+RedZone32 +19 %)\n\n"
  ^ render "Macro workload inventories:" (macro_rows ())
  ^ "\n"
  ^ render "Fiber-machine compiled programs (real emitted code):" (ir_rows ())
