(** Fig 1d / §5.5: the meander backtrace and DWARF validation.

    Reproduces the gdb backtrace of Fig 1d on the fiber machine —
    unwinding from the callback, across the C frames, through both
    handlers to main — and validates the unwind tables against the
    shadow stack over the whole program suite, as the paper did with
    the tool of Bastian et al. *)

val meander_backtrace : unit -> string
(** The formatted backtrace captured at the [raise E1] point. *)

val validation_summary : ?quick:bool -> unit -> string
(** Runs the program suite under both configurations with per-call
    validation probes and reports probes/frames/mismatches. *)

val report : ?quick:bool -> unit -> string
