(** Table 1: micro benchmarks without effects.

    Two complementary reproductions:

    - {e Instr}: instruction counts from the fiber-machine model, MC
      versus stock — the direct analogue of the paper's Instr row,
      since the model provides the stock baseline we cannot compile;
    - {e Time}: wall-clock per-operation times of the same benchmarks
      on OCaml 5 (the shipped retrofit), reported as absolute context —
      there is no stock compiler to diff against. *)

type row = {
  bench : string;
  stock_instr : int;
  mc_instr : int;
  instr_pct : float;
  ocaml5_ns_per_op : float option;
}

val rows : ?quick:bool -> unit -> row list

val report : ?quick:bool -> unit -> string
