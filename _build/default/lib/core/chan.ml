type ic = {
  ic_loop : Evloop.t;
  buffered : string Queue.t;
  mutable eof_signalled : bool;
  mutable ic_closed : bool;
  mutable expected : int;  (** arrivals scheduled but not yet delivered *)
  (* pull-driven source: the next line (or EOF) becomes available
     [src_latency] after the previous one is consumed *)
  mutable source : string list;
  src_latency : int;
  mutable armed : bool;
}

type oc = {
  oc_loop : Evloop.t;
  mutable written : (int * string) list;  (** newest first *)
  mutable oc_closed : bool;
}

let make_ic loop =
  {
    ic_loop = loop;
    buffered = Queue.create ();
    eof_signalled = false;
    ic_closed = false;
    expected = 0;
    source = [];
    src_latency = 0;
    armed = false;
  }

(* Schedule the delivery of the next source item; called at creation and
   after each consumption, so reads pay the latency serially when
   blocking and concurrently when asynchronous. *)
let arm ic =
  if (not ic.armed) && not ic.eof_signalled then begin
    ic.armed <- true;
    match ic.source with
    | line :: rest ->
        ic.source <- rest;
        Evloop.after ic.ic_loop ~delay:ic.src_latency (fun () ->
            ic.armed <- false;
            if not ic.eof_signalled then Queue.push line ic.buffered)
    | [] ->
        Evloop.after ic.ic_loop ~delay:ic.src_latency (fun () ->
            ic.armed <- false;
            ic.eof_signalled <- true)
  end

let make_ic_lazy loop ~latency lines =
  if latency < 0 then invalid_arg "Chan.make_ic_lazy: negative latency";
  let ic =
    {
      ic_loop = loop;
      buffered = Queue.create ();
      eof_signalled = false;
      ic_closed = false;
      expected = 0;
      source = lines;
      src_latency = latency;
      armed = false;
    }
  in
  arm ic;
  ic

let feed_line ic ~delay line =
  ic.expected <- ic.expected + 1;
  Evloop.after ic.ic_loop ~delay (fun () ->
      ic.expected <- ic.expected - 1;
      if not ic.eof_signalled then Queue.push line ic.buffered)

let feed_eof ic ~delay =
  ic.expected <- ic.expected + 1;
  Evloop.after ic.ic_loop ~delay (fun () ->
      ic.expected <- ic.expected - 1;
      ic.eof_signalled <- true)

let check_open ic = if ic.ic_closed then raise (Sys_error "input channel is closed")

let has_line ic = not (Queue.is_empty ic.buffered)

let at_eof ic = ic.eof_signalled && Queue.is_empty ic.buffered

let readable ic = has_line ic || at_eof ic

let read_line_nonblock ic =
  check_open ic;
  match Queue.pop ic.buffered with
  | line ->
      arm ic;
      `Line line
  | exception Queue.Empty -> if ic.eof_signalled then `Eof else `Not_ready

let read_line_blocking ic =
  check_open ic;
  let arrived = Evloop.advance_until ic.ic_loop (fun () -> readable ic) in
  if not arrived then raise (Sys_error "read would block forever")
  else begin
    match Queue.pop ic.buffered with
    | line ->
        arm ic;
        line
    | exception Queue.Empty -> raise End_of_file
  end

let close_in ic = ic.ic_closed <- true

let make_oc loop = { oc_loop = loop; written = []; oc_closed = false }

let write_string oc s =
  if oc.oc_closed then raise (Sys_error "output channel is closed");
  oc.written <- (Evloop.now oc.oc_loop, s) :: oc.written

let close_out oc = oc.oc_closed <- true

let writes oc = List.rev oc.written

let contents oc = String.concat "" (List.map snd (writes oc))
