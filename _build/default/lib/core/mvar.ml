(* State machine: Empty with a queue of parked takers, or Full with the
   value and a queue of parked putters (each carrying the value it wants
   to deposit). *)
type 'a state =
  | Empty of 'a Sched.resumer Queue.t
  | Full of 'a * ('a * unit Sched.resumer) Queue.t

type 'a t = { mutable state : 'a state }

let create_empty () = { state = Empty (Queue.create ()) }

let create v = { state = Full (v, Queue.create ()) }

let take t =
  match t.state with
  | Empty takers -> Sched.suspend (fun resume -> Queue.push resume takers)
  | Full (v, putters) ->
      (match Queue.pop putters with
      | v', resume ->
          t.state <- Full (v', putters);
          resume ()
      | exception Queue.Empty -> t.state <- Empty (Queue.create ()));
      v

let put t v =
  match t.state with
  | Full (_, putters) ->
      Sched.suspend (fun resume -> Queue.push (v, resume) putters)
  | Empty takers -> (
      match Queue.pop takers with
      | resume -> resume v
      | exception Queue.Empty -> t.state <- Full (v, Queue.create ()))

let try_take t =
  match t.state with
  | Empty _ -> None
  | Full (v, putters) ->
      (match Queue.pop putters with
      | v', resume ->
          t.state <- Full (v', putters);
          resume ()
      | exception Queue.Empty -> t.state <- Empty (Queue.create ()));
      Some v

let is_empty t = match t.state with Empty _ -> true | Full _ -> false
