type _ Effect.t +=
  | In_line : Chan.ic -> string Effect.t
  | Out_str : Chan.oc * string -> unit Effect.t

let input_line ic = Effect.perform (In_line ic)

let output_string oc s = Effect.perform (Out_str (oc, s))

(* A parked read: the channel and the continuation expecting the line. *)
type pending = Pending : Chan.ic * (string, unit) Effect.Deep.continuation -> pending

type mode = Sync | Async

let run_mode mode loop main =
  let runq : (unit -> unit) Queue.t = Queue.create () in
  let pending_reads : pending list ref = ref [] in
  let resume_read (Pending (ic, k)) =
    match Chan.read_line_nonblock ic with
    | `Line line -> Queue.push (fun () -> Effect.Deep.continue k line) runq
    | `Eof -> Queue.push (fun () -> Effect.Deep.discontinue k End_of_file) runq
    | `Not_ready -> assert false
    | exception (Sys_error _ as e) ->
        Queue.push (fun () -> Effect.Deep.discontinue k e) runq
  in
  let rec run_next () =
    match Queue.pop runq with
    | thunk -> thunk ()
    | exception Queue.Empty -> (
        match !pending_reads with
        | [] -> ()
        | todo ->
            (* Every thread is parked on I/O: advance virtual time until
               at least one read completes (the do_reads of §3.1). *)
            let progressed =
              Evloop.advance_until loop (fun () ->
                  List.exists (fun (Pending (ic, _)) -> Chan.readable ic) todo)
            in
            if not progressed then
              failwith "Aio: all threads blocked and no input will ever arrive";
            let ready, still =
              List.partition (fun (Pending (ic, _)) -> Chan.readable ic) todo
            in
            pending_reads := still;
            List.iter resume_read ready;
            run_next ())
  in
  let resumer_of k =
    let used = ref false in
    fun v ->
      if !used then invalid_arg "Aio: resumer invoked twice";
      used := true;
      Queue.push (fun () -> Effect.Deep.continue k v) runq
  in
  let rec spawn : (unit -> unit) -> unit =
   fun f ->
    Effect.Deep.match_with f ()
      {
        Effect.Deep.retc = (fun () -> run_next ());
        exnc = raise;
        effc =
          (fun (type c) (eff : c Effect.t) ->
            match eff with
            | Sched.Yield ->
                Some
                  (fun (k : (c, unit) Effect.Deep.continuation) ->
                    Queue.push (fun () -> Effect.Deep.continue k ()) runq;
                    run_next ())
            | Sched.Fork f' ->
                Some
                  (fun (k : (c, unit) Effect.Deep.continuation) ->
                    Queue.push (fun () -> Effect.Deep.continue k ()) runq;
                    spawn f')
            | Sched.Suspend g ->
                Some
                  (fun (k : (c, unit) Effect.Deep.continuation) ->
                    g (resumer_of k);
                    run_next ())
            | In_line ic ->
                Some
                  (fun (k : (c, unit) Effect.Deep.continuation) ->
                    match mode with
                    | Sync -> (
                        match Chan.read_line_blocking ic with
                        | line -> Effect.Deep.continue k line
                        | exception e -> Effect.Deep.discontinue k e)
                    | Async -> (
                        match Chan.read_line_nonblock ic with
                        | `Line line -> Effect.Deep.continue k line
                        | `Eof -> Effect.Deep.discontinue k End_of_file
                        | `Not_ready ->
                            pending_reads := Pending (ic, k) :: !pending_reads;
                            run_next ()
                        | exception (Sys_error _ as e) ->
                            Effect.Deep.discontinue k e))
            | Out_str (oc, s) ->
                Some
                  (fun (k : (c, unit) Effect.Deep.continuation) ->
                    match Chan.write_string oc s with
                    | () -> Effect.Deep.continue k ()
                    | exception e -> Effect.Deep.discontinue k e)
            | _ -> None);
      }
  in
  spawn main

let run_sync loop main = run_mode Sync loop main

let run_async loop main = run_mode Async loop main

(* The §3.2 example, structurally verbatim: defensive cleanup on normal
   end of input, and on any other exception.  close_* are idempotent. *)
let copy ic oc =
  let rec loop () =
    output_string oc (input_line ic ^ "\n");
    loop ()
  in
  try loop () with
  | End_of_file ->
      Chan.close_in ic;
      Chan.close_out oc
  | e ->
      Chan.close_in ic;
      Chan.close_out oc;
      raise e
