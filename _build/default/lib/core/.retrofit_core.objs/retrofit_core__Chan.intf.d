lib/core/chan.mli: Evloop
