lib/core/aio.ml: Chan Effect Evloop List Queue Sched
