lib/core/aio.ml: Chan Effect Evloop List Queue Retrofit_metrics Retrofit_trace Sched
