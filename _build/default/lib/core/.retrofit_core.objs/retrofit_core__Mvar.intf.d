lib/core/mvar.mli:
