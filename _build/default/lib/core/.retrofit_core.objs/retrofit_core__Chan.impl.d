lib/core/chan.ml: Evloop List Queue String
