lib/core/eff.mli: Effect
