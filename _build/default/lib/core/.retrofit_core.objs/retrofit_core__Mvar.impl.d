lib/core/mvar.ml: Queue Sched
