lib/core/evloop.mli:
