lib/core/sched.mli: Effect
