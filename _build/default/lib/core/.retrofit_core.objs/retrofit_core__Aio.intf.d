lib/core/aio.mli: Chan Evloop
