lib/core/sched.ml: Effect Queue Retrofit_metrics Retrofit_trace Stack
