lib/core/sched.ml: Effect Queue Stack
