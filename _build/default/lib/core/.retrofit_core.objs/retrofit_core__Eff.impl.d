lib/core/eff.ml: Effect Gc
