lib/core/evloop.ml: Retrofit_util
