type 'a eff = 'a Effect.t

type ('a, 'b) continuation = ('a, 'b) Effect.Deep.continuation

type ('a, 'b) handler = {
  retc : 'a -> 'b;
  exnc : exn -> 'b;
  effc : 'c. 'c eff -> (('c, 'b) continuation -> 'b) option;
}

let perform = Effect.perform

let continue = Effect.Deep.continue

let discontinue = Effect.Deep.discontinue

let match_with f (h : ('a, 'b) handler) =
  Effect.Deep.match_with f ()
    { Effect.Deep.retc = h.retc; exnc = h.exnc; effc = h.effc }

let value_handler retc = { retc; exnc = raise; effc = (fun _ -> None) }

exception Unwind

let finalise_continuation k =
  Gc.finalise
    (fun k -> try ignore (discontinue k Unwind) with _ -> ())
    k

let protect ~finally f =
  match f () with
  | v ->
      finally ();
      v
  | exception e ->
      finally ();
      raise e

let one_shot f =
  let used = ref false in
  fun x ->
    if !used then invalid_arg "one_shot: already invoked";
    used := true;
    f x
