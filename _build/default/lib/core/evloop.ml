type t = { events : (unit -> unit) Retrofit_util.Pqueue.t; mutable clock : int }

let create () = { events = Retrofit_util.Pqueue.create (); clock = 0 }

let now t = t.clock

let at t ~time callback =
  let time = max time t.clock in
  Retrofit_util.Pqueue.add t.events ~priority:time callback

let after t ~delay callback =
  if delay < 0 then invalid_arg "Evloop.after: negative delay";
  at t ~time:(t.clock + delay) callback

let pending t = Retrofit_util.Pqueue.length t.events

let next_event_time t =
  match Retrofit_util.Pqueue.peek t.events with
  | Some (time, _) -> Some time
  | None -> None

let advance_once t =
  match Retrofit_util.Pqueue.pop t.events with
  | None -> false
  | Some (time, callback) ->
      t.clock <- max t.clock time;
      callback ();
      (* run everything scheduled for the same instant *)
      let rec same_instant () =
        match Retrofit_util.Pqueue.peek t.events with
        | Some (time', _) when time' <= t.clock -> (
            match Retrofit_util.Pqueue.pop t.events with
            | Some (_, cb) ->
                cb ();
                same_instant ()
            | None -> ())
        | _ -> ()
      in
      same_instant ();
      true

let advance_until t cond =
  let rec go () = if cond () then true else if advance_once t then go () else cond () in
  go ()

let drain t = while advance_once t do () done
