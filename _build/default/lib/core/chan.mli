(** Simulated I/O channels over the virtual-time event loop.

    Input channels receive lines at scheduled virtual times (a stand-in
    for sockets and files); output channels record what was written and
    when.  Closed channels raise [Sys_error] and exhausted ones
    [End_of_file], matching the standard library behaviour the §3.2
    copy example defends against. *)

type ic

type oc

val make_ic : Evloop.t -> ic

val make_ic_lazy : Evloop.t -> latency:int -> string list -> ic
(** A pull-driven source: each line (and finally EOF) becomes readable
    [latency] virtual ns after the previous one was consumed, like a
    request/response connection.  Blocking readers therefore pay the
    latencies serially while asynchronous readers overlap them — the
    contrast §3.1's asynchronous scheduler exists to exploit. *)

val feed_line : ic -> delay:int -> string -> unit
(** Schedule a line to arrive [delay] virtual ns from now. *)

val feed_eof : ic -> delay:int -> unit
(** Schedule end-of-input; lines scheduled after it are dropped. *)

val has_line : ic -> bool
(** A line is already buffered. *)

val at_eof : ic -> bool
(** End-of-input was reached and the buffer is empty. *)

val readable : ic -> bool
(** [has_line] or [at_eof] — a blocking read would not block. *)

val read_line_nonblock : ic -> [ `Line of string | `Eof | `Not_ready ]
(** @raise Sys_error if the channel is closed. *)

val read_line_blocking : ic -> string
(** Advances virtual time until data or EOF arrives — this models a
    blocking read stalling the whole program.
    @raise End_of_file at end of input.
    @raise Sys_error if the channel is closed or input never arrives. *)

val close_in : ic -> unit
(** Idempotent, like [Stdlib.close_in]. *)

val make_oc : Evloop.t -> oc

val write_string : oc -> string -> unit
(** @raise Sys_error if closed. *)

val close_out : oc -> unit

val contents : oc -> string
(** Everything written, in order. *)

val writes : oc -> (int * string) list
(** (virtual time, string) per write, oldest first. *)
