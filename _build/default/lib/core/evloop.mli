(** A virtual-time event loop — the model's stand-in for libev.

    The loop keeps a priority queue of callbacks ordered by virtual
    nanoseconds.  "Blocking" I/O advances virtual time to the next
    event; an asynchronous scheduler instead runs other threads and
    only advances time when every thread is parked.  Because time is
    virtual, the latency benefit of asynchrony (§3.1) is exactly
    measurable and deterministic. *)

type t

val create : unit -> t

val now : t -> int
(** Current virtual time in nanoseconds. *)

val at : t -> time:int -> (unit -> unit) -> unit
(** Schedule a callback at an absolute virtual time (clamped to now). *)

val after : t -> delay:int -> (unit -> unit) -> unit
(** @raise Invalid_argument on a negative delay. *)

val pending : t -> int
(** Number of scheduled callbacks not yet run. *)

val next_event_time : t -> int option

val advance_once : t -> bool
(** Advance to the next scheduled callback and run it (plus any others
    scheduled for the same instant); false when nothing is pending. *)

val advance_until : t -> (unit -> bool) -> bool
(** Advance events until the condition holds; false if the queue drains
    first. *)

val drain : t -> unit
(** Run everything to quiescence. *)
