module Trace = Retrofit_trace.Trace
module Tev = Retrofit_trace.Event
module Metrics = Retrofit_metrics.Metrics

type policy = Fifo | Lifo

type 'a resumer = 'a -> unit

exception Cancelled

exception One_shot

(* Cancellation protocol (§2.3): a cancellable fiber owns a control cell
   shared between its runner and the cancel handle.  While the fiber is
   parked the cell holds a discontinue hook; cancel fires it exactly
   once, turning the suspension's resumer into a no-op.  The same cell
   protocol is reused by Aio for reads parked in its pending set. *)
module Ctl = struct
  type t = {
    mutable requested : bool;
    mutable parked : (exn -> unit) option;
    mutable finished : bool;
  }

  let create () = { requested = false; parked = None; finished = false }

  let finish t = t.finished <- true

  let cancelled t = t.requested

  let set_parked t d = t.parked <- Some d

  let clear_parked t = t.parked <- None

  let cancel t =
    if (not t.finished) && not t.requested then begin
      t.requested <- true;
      match t.parked with
      | Some d ->
          t.parked <- None;
          d Cancelled
      | None -> ()
    end

  (* Wire one suspension point.  The returned resumer enqueues a resume
     on first use, raises [One_shot] on a second use, and becomes a
     no-op once the suspension has been cancelled. *)
  let arm ?ctl ~enqueue ~continue ~discontinue =
    let state = ref `Waiting in
    (match ctl with
    | Some c ->
        set_parked c (fun e ->
            state := `Cancelled;
            enqueue (fun () -> discontinue e))
    | None -> ());
    fun v ->
      match !state with
      | `Waiting ->
          state := `Resumed;
          (match ctl with Some c -> clear_parked c | None -> ());
          enqueue (fun () -> continue v)
      | `Resumed -> raise One_shot
      | `Cancelled -> ()
end

type _ Effect.t +=
  | Fork : (unit -> unit) -> unit Effect.t
  | Yield : unit Effect.t
  | Suspend : ('a resumer -> unit) -> 'a Effect.t
  | Fork_cancellable : (unit -> unit) -> (unit -> unit) Effect.t

let fork f = Effect.perform (Fork f)

let fork_cancellable f = Effect.perform (Fork_cancellable f)

let yield () = Effect.perform Yield

let suspend f = Effect.perform (Suspend f)

let switches = ref 0

let stats_switches () = !switches

(* The run queue holds thunks rather than bare continuations so that
   resumers can close over the value to deliver (§3.1's asynchronous
   variant uses the same representation). *)
type runq = {
  queue : (unit -> unit) Queue.t;
  stack : (unit -> unit) Stack.t;
  policy : policy;
  mutable ops : int;
      (* enqueue/dequeue sequence number: the deterministic time base
         that stamps this scheduler's depth track in the eventlog *)
}

let rq_depth rq = Queue.length rq.queue + Stack.length rq.stack

let rq_observe rq =
  rq.ops <- rq.ops + 1;
  Trace.emit ~ts:rq.ops (Tev.Runq_depth { depth = rq_depth rq })

let rq_push rq thunk =
  (match rq.policy with
  | Fifo -> Queue.push thunk rq.queue
  | Lifo -> Stack.push thunk rq.stack);
  if Metrics.on () then Metrics.inc "sched_runq_pushes_total";
  if Trace.on () then rq_observe rq

let rq_pop rq =
  let popped =
    match rq.policy with
    | Fifo -> (
        match Queue.pop rq.queue with t -> Some t | exception Queue.Empty -> None)
    | Lifo -> (
        match Stack.pop rq.stack with t -> Some t | exception Stack.Empty -> None)
  in
  (match popped with Some _ when Trace.on () -> rq_observe rq | _ -> ());
  popped

let run ?(policy = Fifo) main =
  let rq = { queue = Queue.create (); stack = Stack.create (); policy; ops = 0 } in
  switches := 0;
  (* The control cell of the fiber currently executing; every thunk that
     re-enters a fiber restores it so nested suspensions park against
     the right cell. *)
  let current : Ctl.t option ref = ref None in
  let run_next () =
    match rq_pop rq with
    | Some thunk ->
        incr switches;
        if Metrics.on () then Metrics.inc "sched_switches_total";
        thunk ()
    | None -> ()
  in
  let rec spawn : Ctl.t option -> (unit -> unit) -> unit =
   fun ctl f ->
    current := ctl;
    Effect.Deep.match_with f ()
      {
        Effect.Deep.retc =
          (fun () ->
            (match ctl with Some c -> Ctl.finish c | None -> ());
            run_next ());
        exnc =
          (fun e ->
            (* A discontinued fiber unwinds with Cancelled after its
               cleanup handlers; that is a normal exit, not an error. *)
            match (ctl, e) with
            | Some c, Cancelled when Ctl.cancelled c ->
                Ctl.finish c;
                run_next ()
            | _ -> raise e);
        effc =
          (fun (type c) (eff : c Effect.t) ->
            match eff with
            | Yield ->
                Some
                  (fun (k : (c, unit) Effect.Deep.continuation) ->
                    let ctl = !current in
                    rq_push rq (fun () ->
                        current := ctl;
                        Effect.Deep.continue k ());
                    run_next ())
            | Fork f' ->
                Some
                  (fun (k : (c, unit) Effect.Deep.continuation) ->
                    let ctl = !current in
                    rq_push rq (fun () ->
                        current := ctl;
                        Effect.Deep.continue k ());
                    spawn None f')
            | Fork_cancellable f' ->
                Some
                  (fun (k : (c, unit) Effect.Deep.continuation) ->
                    let parent = !current in
                    let child = Ctl.create () in
                    rq_push rq (fun () ->
                        current := parent;
                        Effect.Deep.continue k (fun () -> Ctl.cancel child));
                    spawn (Some child) f')
            | Suspend f ->
                Some
                  (fun (k : (c, unit) Effect.Deep.continuation) ->
                    let ctl = !current in
                    (match ctl with
                    | Some c when Ctl.cancelled c ->
                        (* Cancel arrived before this park: discontinue
                           straight away instead of parking. *)
                        rq_push rq (fun () ->
                            current := ctl;
                            Effect.Deep.discontinue k Cancelled)
                    | _ ->
                        let resumer =
                          Ctl.arm ?ctl ~enqueue:(rq_push rq)
                            ~continue:(fun v ->
                              current := ctl;
                              Effect.Deep.continue k v)
                            ~discontinue:(fun e ->
                              current := ctl;
                              Effect.Deep.discontinue k e)
                        in
                        f resumer);
                    run_next ())
            | _ -> None);
      }
  in
  spawn None main
