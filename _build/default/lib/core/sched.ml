type policy = Fifo | Lifo

type 'a resumer = 'a -> unit

type _ Effect.t +=
  | Fork : (unit -> unit) -> unit Effect.t
  | Yield : unit Effect.t
  | Suspend : ('a resumer -> unit) -> 'a Effect.t

let fork f = Effect.perform (Fork f)

let yield () = Effect.perform Yield

let suspend f = Effect.perform (Suspend f)

let switches = ref 0

let stats_switches () = !switches

(* The run queue holds thunks rather than bare continuations so that
   resumers can close over the value to deliver (§3.1's asynchronous
   variant uses the same representation). *)
type runq = { queue : (unit -> unit) Queue.t; stack : (unit -> unit) Stack.t; policy : policy }

let rq_push rq thunk =
  match rq.policy with
  | Fifo -> Queue.push thunk rq.queue
  | Lifo -> Stack.push thunk rq.stack

let rq_pop rq =
  match rq.policy with
  | Fifo -> ( match Queue.pop rq.queue with t -> Some t | exception Queue.Empty -> None)
  | Lifo -> ( match Stack.pop rq.stack with t -> Some t | exception Stack.Empty -> None)

let run ?(policy = Fifo) main =
  let rq = { queue = Queue.create (); stack = Stack.create (); policy } in
  switches := 0;
  let run_next () =
    match rq_pop rq with
    | Some thunk ->
        incr switches;
        thunk ()
    | None -> ()
  in
  let resumer_of k =
    let used = ref false in
    fun v ->
      if !used then invalid_arg "Sched: resumer invoked twice";
      used := true;
      rq_push rq (fun () -> Effect.Deep.continue k v)
  in
  let rec spawn : (unit -> unit) -> unit =
   fun f ->
    Effect.Deep.match_with f ()
      {
        Effect.Deep.retc = (fun () -> run_next ());
        exnc = raise;
        effc =
          (fun (type c) (eff : c Effect.t) ->
            match eff with
            | Yield ->
                Some
                  (fun (k : (c, unit) Effect.Deep.continuation) ->
                    rq_push rq (fun () -> Effect.Deep.continue k ());
                    run_next ())
            | Fork f' ->
                Some
                  (fun (k : (c, unit) Effect.Deep.continuation) ->
                    rq_push rq (fun () -> Effect.Deep.continue k ());
                    spawn f')
            | Suspend f ->
                Some
                  (fun (k : (c, unit) Effect.Deep.continuation) ->
                    f (resumer_of k);
                    run_next ())
            | _ -> None);
      }
  in
  spawn main
