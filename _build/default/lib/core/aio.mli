(** Asynchronous I/O via effects: the run functions of §3.1.

    Client code performs [In_line]/[Out_str] through {!input_line} and
    {!output_string} — the same signatures as the standard library — and
    composes with {!Sched.fork} and {!Sched.yield}.  The choice between
    blocking and asynchronous I/O is made {e solely} by the runner:

    - {!run_sync} services each read by blocking (advancing virtual
      time) while every other thread waits;
    - {!run_async} parks readers, lets other threads run, and only
      advances time when all threads are blocked — the paper's
      [pending_reads]/[do_reads] structure.

    Requirement R4 (forwards compatibility) is thus observable: the
    same client code, run under [run_async], overlaps its I/O; virtual
    completion times prove it (see the tests and the async_io example).

    Exceptional completions use [discontinue]: end of input raises
    [End_of_file] and closed channels [Sys_error] at the perform site,
    so defensive resource-cleanup code written for blocking I/O (§3.2)
    keeps working. *)

val input_line : Chan.ic -> string
(** Performs [In_line]; must run under one of the runners. *)

val output_string : Chan.oc -> string -> unit
(** Performs [Out_str]. *)

val run_sync : Evloop.t -> (unit -> unit) -> unit
(** Also handles {!Sched.Fork}, {!Sched.Yield} and {!Sched.Suspend}, so
    threads and MVars work under it. *)

val run_async : Evloop.t -> (unit -> unit) -> unit

val copy : Chan.ic -> Chan.oc -> unit
(** The §3.2 copy loop, verbatim in structure: reads lines until
    [End_of_file], closing both channels on all exits and re-raising
    unexpected exceptions.  Works unchanged under both runners. *)
