(** The paper's effect-handler API (§4.1) on OCaml 5.

    OCaml 5 ships the design this paper describes; this module presents
    it under the paper's exact interface — a [('a, 'b) handler] record
    with return, exception and effect cases, [match_with], [perform],
    [continue] and [discontinue] — together with the resource-safety
    helpers discussed in §3.2/§5.6. *)

type 'a eff = 'a Effect.t

type ('a, 'b) continuation = ('a, 'b) Effect.Deep.continuation

type ('a, 'b) handler = {
  retc : 'a -> 'b;
  exnc : exn -> 'b;
  effc : 'c. 'c eff -> (('c, 'b) continuation -> 'b) option;
      (** [None] reperforms to the outer handler without running code on
          the resumption path *)
}

val perform : 'a eff -> 'a

val continue : ('a, 'b) continuation -> 'a -> 'b
(** @raise Continuation_already_resumed on a second resumption:
    continuations are one-shot (§3.1). *)

val discontinue : ('a, 'b) continuation -> exn -> 'b
(** Resumes by raising, so the suspended computation's exception
    handlers run and clean up resources (§3.2). *)

val match_with : (unit -> 'a) -> ('a, 'b) handler -> 'b

val value_handler : ('a -> 'b) -> ('a, 'b) handler
(** A handler with only a return case: exceptions re-raise, effects
    reperform. *)

exception Unwind
(** The exception a finaliser discontinues abandoned continuations with
    (§5.6). *)

val finalise_continuation : ('a, 'b) continuation -> unit
(** Attach a GC finaliser that discontinues the continuation with
    {!Unwind}, freeing its stack and releasing resources held by its
    frames.  The paper measures this costly enough (§6.3.3) that it is
    not done by default — here too it is explicit. *)

val protect : finally:(unit -> unit) -> (unit -> 'a) -> 'a
(** unwind-protect built from exception handlers, as OCaml libraries do
    (§7): [finally] runs on value return and on exception.  Like those
    libraries, it relies on continuations being resumed exactly once —
    a suspended effect is not an exit. *)

val one_shot : ('a -> 'b) -> 'a -> 'b
(** [one_shot f] is [f] restricted to a single call;
    @raise Invalid_argument on reuse.  Used by tests to pin the
    at-most-once discipline. *)
