(** The cooperative lightweight-thread scheduler of §3.1.

    Threads are continuations queued in a run queue; [Fork] spawns a
    thunk as a new thread, [Yield] reschedules the current one, and
    [Suspend] parks the current thread, handing its resumer to arbitrary
    synchronisation code (this is how {!Mvar} blocks threads).

    The scheduling policy is a parameter: the paper observes that
    changing the run queue from FIFO to LIFO changes the scheduling
    algorithm without touching any other code.

    Cancellation follows §2.3: {!fork_cancellable} returns a [cancel]
    handle that [discontinue]s the fiber with {!Cancelled} at its
    current (or next) suspension point, exactly once.  The discontinued
    fiber unwinds through its own cleanup handlers — the §3.2 [copy]
    pattern of closing resources on any exception keeps working — and
    its parked resumer becomes a no-op. *)

type policy = Fifo | Lifo

type 'a resumer = 'a -> unit
(** Resuming a parked thread: enqueues it, does not run it inline. *)

exception Cancelled
(** Raised at the suspension point of a fiber that has been cancelled
    via the handle returned by {!fork_cancellable}. *)

exception One_shot
(** Raised by a resumer invoked a second time (continuations are
    one-shot, §5.2).  A resumer whose suspension was {e cancelled} is a
    no-op instead: the cancel consumed the continuation, so a late
    resume has nothing left to do and must not crash the resuming
    code. *)

(** The cancellation control cell shared between a fiber's runner and
    its cancel handle.  Exposed so that other runners (notably {!Aio})
    can implement the same protocol for their own blocking points. *)
module Ctl : sig
  type t

  val create : unit -> t

  val finish : t -> unit
  (** Mark the fiber completed; cancel becomes a no-op. *)

  val cancelled : t -> bool
  (** Has cancel been requested? *)

  val set_parked : t -> (exn -> unit) -> unit
  (** Install the discontinue hook for the fiber's current suspension. *)

  val clear_parked : t -> unit

  val cancel : t -> unit
  (** Request cancellation: fires the parked hook with {!Cancelled} if
      the fiber is suspended, otherwise marks it for discontinuation at
      its next suspension point.  One-shot; a no-op after the fiber
      finishes or after a previous cancel. *)

  val arm :
    ?ctl:t ->
    enqueue:((unit -> unit) -> unit) ->
    continue:('a -> unit) ->
    discontinue:(exn -> unit) ->
    'a resumer
  (** Wire one suspension point: returns the one-shot resumer
      (first use enqueues [continue]; second use raises {!One_shot};
      any use after cancellation is a no-op) and, when [ctl] is given,
      installs the cancel hook that enqueues [discontinue]. *)
end

(** The scheduler effects are public so that other runners (notably
    {!Aio}) can handle them alongside their own — an effect declared
    once composes with any handler that chooses to serve it. *)
type _ Effect.t +=
  | Fork : (unit -> unit) -> unit Effect.t
  | Yield : unit Effect.t
  | Suspend : ('a resumer -> unit) -> 'a Effect.t
  | Fork_cancellable : (unit -> unit) -> (unit -> unit) Effect.t

val fork : (unit -> unit) -> unit
(** Must run inside {!run}. *)

val fork_cancellable : (unit -> unit) -> unit -> unit
(** [fork_cancellable f] spawns [f] like {!fork} and returns a
    [cancel] handle.  Calling it discontinues the fiber with
    {!Cancelled} at its current suspension (or its next one, if it is
    not currently parked), exactly once; calling it after the fiber has
    completed, or a second time, is a no-op. *)

val yield : unit -> unit

val suspend : ('a resumer -> unit) -> 'a
(** [suspend f] parks the current thread and calls [f resumer]; the
    thread continues (with the value passed to the resumer) after some
    other code invokes it.  Invoking a resumer twice raises
    {!One_shot}; invoking it after the suspension was cancelled is a
    no-op. *)

val run : ?policy:policy -> (unit -> unit) -> unit
(** Runs the main thread and every forked descendant to completion.
    An exception escaping any thread aborts the whole scheduler run,
    except {!Cancelled} leaving a cancelled fiber, which is a normal
    exit. *)

val stats_switches : unit -> int
(** Context switches performed by the most recent (or current) [run];
    used by the scheduling experiments. *)
