(** The cooperative lightweight-thread scheduler of §3.1.

    Threads are continuations queued in a run queue; [Fork] spawns a
    thunk as a new thread, [Yield] reschedules the current one, and
    [Suspend] parks the current thread, handing its resumer to arbitrary
    synchronisation code (this is how {!Mvar} blocks threads).

    The scheduling policy is a parameter: the paper observes that
    changing the run queue from FIFO to LIFO changes the scheduling
    algorithm without touching any other code. *)

type policy = Fifo | Lifo

type 'a resumer = 'a -> unit
(** Resuming a parked thread: enqueues it, does not run it inline. *)

(** The scheduler effects are public so that other runners (notably
    {!Aio}) can handle them alongside their own — an effect declared
    once composes with any handler that chooses to serve it. *)
type _ Effect.t +=
  | Fork : (unit -> unit) -> unit Effect.t
  | Yield : unit Effect.t
  | Suspend : ('a resumer -> unit) -> 'a Effect.t

val fork : (unit -> unit) -> unit
(** Must run inside {!run}. *)

val yield : unit -> unit

val suspend : ('a resumer -> unit) -> 'a
(** [suspend f] parks the current thread and calls [f resumer]; the
    thread continues (with the value passed to the resumer) after some
    other code invokes it.  Invoking a resumer twice raises
    [Invalid_argument]. *)

val run : ?policy:policy -> (unit -> unit) -> unit
(** Runs the main thread and every forked descendant to completion.
    An exception escaping any thread aborts the whole scheduler run. *)

val stats_switches : unit -> int
(** Context switches performed by the most recent (or current) [run];
    used by the scheduling experiments. *)
