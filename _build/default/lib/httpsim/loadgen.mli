(** The wrk2-style measurement harness (Fig 6), with an optional
    resilience layer.

    Drives a server (a cost model plus a real [process_raw] code path)
    with an open-loop constant-rate workload and records
    coordinated-omission-free latencies in an HDR histogram: each
    request's latency is measured from its {e scheduled} arrival time,
    so a backed-up server accrues queueing delay instead of silently
    slowing the load down.

    When {!run} is given a fault plan ([?faults]) or a resilience
    policy ([?resilience]), it switches to the resilient engine: the
    same virtual single-CPU world, plus per-request deadlines,
    client-side retry with exponential backoff and jitter, admission
    control (shedding to 503 past a queue-depth cap), and deadline
    propagation (expired requests answered 408 without paying
    service time).  With neither option the original engine runs,
    bit-for-bit. *)

type fault_account = {
  injected : int;  (** faults tagged onto the trace by {!Faults.plan} *)
  to_malformed : int;  (** wire damage that earned a 4xx *)
  to_retried : int;  (** drops recovered by a client retry *)
  to_timeout : int;  (** faults that killed the request *)
  to_server_error : int;  (** backend crashes that produced a 500 *)
  to_absorbed : int;  (** faults fully masked by the resilience layer *)
}
(** Where each injected fault ended up.  Attribution is exclusive:
    [injected = to_malformed + to_retried + to_timeout +
    to_server_error + to_absorbed] (a tested invariant). *)

val zero_faults : fault_account

type resilience = {
  deadline_ns : int;  (** end-to-end budget from first scheduled arrival *)
  max_attempts : int;  (** total tries, first attempt included *)
  backoff_base_ns : int;  (** retry [n] waits [base * 2^(n-1) + jitter] *)
  backoff_jitter_ns : int;  (** uniform in [0, jitter] *)
  drop_detect_ns : int;  (** how long the client takes to notice a drop *)
  queue_cap : int;  (** admission control: depth past this sheds to 503 *)
}

val default_resilience : resilience
(** 1 s deadline, 3 attempts, 1 ms base backoff with 0.5 ms jitter,
    0.2 ms drop detection, queue cap 512. *)

val lenient_resilience : resilience
(** Effectively-infinite deadline and cap, no retries: under
    {!Faults.none} this makes the resilient engine reproduce the plain
    engine's numbers exactly (a tested property). *)

type outcome = {
  model_name : string;
  offered_rps : int;
  achieved_rps : float;
  goodput_rps : float;
      (** 200s delivered within deadline per second of virtual time;
          equals [achieved_rps] on the plain path *)
  total_requests : int;  (** distinct requests in the trace *)
  completed : int;  (** 200 within deadline *)
  errors : int;  (** = [timeouts + malformed] on the resilient path *)
  timeouts : int;  (** deadline expired or retry budget exhausted *)
  retries : int;  (** retry attempts issued (event count) *)
  shed : int;  (** 503s from admission control (event count) *)
  malformed : int;  (** requests terminally rejected with a 4xx *)
  server_errors : int;  (** 500s from the crash barrier (event count) *)
  faults : fault_account;
  gc_pauses : int;
  mean_ns : float;
  p50_ns : int;
  p90_ns : int;
  p99_ns : int;
  p999_ns : int;
  max_ns : int;
}
(** Request dispositions are exclusive and exhaustive:
    [completed + timeouts + malformed = total_requests] on the
    resilient path (a tested invariant).  [shed], [server_errors] and
    [retries] count events along the way, not final dispositions. *)

val run :
  ?seed:int ->
  ?connections:int ->
  ?faults:Faults.rates ->
  ?resilience:resilience ->
  model:Server.model ->
  process:(string -> string) ->
  rate_rps:int ->
  duration_ms:int ->
  unit ->
  outcome
(** Simulate [duration_ms] of constant-rate load (default 1000
    connections, as in the paper).  Each request really executes
    [process]; its virtual completion time comes from the model's cost
    constants and a single-CPU queue with GC pauses.

    With neither [?faults] nor [?resilience] the original zero-fault
    engine runs unchanged.  Supplying either switches to the resilient
    engine ([?faults] defaults to {!Faults.none}, [?resilience] to
    {!default_resilience}). *)

val throughput_sweep :
  ?seed:int ->
  ?connections:int ->
  ?faults:Faults.rates ->
  ?resilience:resilience ->
  model:Server.model ->
  process:(string -> string) ->
  rates:int list ->
  duration_ms:int ->
  unit ->
  outcome list
