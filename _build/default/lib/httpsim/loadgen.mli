(** The wrk2-style measurement harness (Fig 6).

    Drives a server (a cost model plus a real [process_raw] code path)
    with an open-loop constant-rate workload and records
    coordinated-omission-free latencies in an HDR histogram: each
    request's latency is measured from its {e scheduled} arrival time,
    so a backed-up server accrues queueing delay instead of silently
    slowing the load down. *)

type outcome = {
  model_name : string;
  offered_rps : int;
  achieved_rps : float;
  completed : int;
  errors : int;  (** non-200 responses or unparseable replies *)
  gc_pauses : int;
  mean_ns : float;
  p50_ns : int;
  p90_ns : int;
  p99_ns : int;
  p999_ns : int;
  max_ns : int;
}

val run :
  ?seed:int ->
  ?connections:int ->
  model:Server.model ->
  process:(string -> string) ->
  rate_rps:int ->
  duration_ms:int ->
  unit ->
  outcome
(** Simulate [duration_ms] of constant-rate load (default 1000
    connections, as in the paper).  Each request really executes
    [process]; its virtual completion time comes from the model's cost
    constants and a single-CPU queue with GC pauses. *)

val throughput_sweep :
  ?seed:int ->
  ?connections:int ->
  model:Server.model ->
  process:(string -> string) ->
  rates:int list ->
  duration_ms:int ->
  unit ->
  outcome list
