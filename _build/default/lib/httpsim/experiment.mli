(** The Fig 6 experiment: throughput and tail latency for the three
    server architectures. *)

val servers : (Server.model * (string -> string)) list
(** Each model paired with its real code path. *)

val default_rates : int list
(** The offered-load sweep (requests per second). *)

val fig6a : ?duration_ms:int -> unit -> (string * (int * float) list) list
(** Per server: offered rate → achieved rate.  All three plateau at the
    service capacity (the paper observes ≈30k requests/s). *)

val fig6b : ?rate_rps:int -> ?duration_ms:int -> unit -> Loadgen.outcome list
(** Latency distributions at the default 20k requests/s — two thirds of
    the plateau, the paper's "optimal load" point. *)

val plateau : (int * float) list -> float
(** Largest achieved rate in a sweep. *)

type degradation_cell = { intensity : float; outcome : Loadgen.outcome }

val default_intensities : float list
(** Multipliers over {!Faults.default}: [0; 0.5; 1; 2]. *)

val degradation :
  ?seed:int ->
  ?duration_ms:int ->
  ?rates:int list ->
  ?intensities:float list ->
  unit ->
  (string * degradation_cell list) list
(** The degradation sweep: offered load × fault intensity, per server
    model, under {!Loadgen.default_resilience}.  Each cell carries the
    full resilient outcome (goodput, p99, error taxonomy, fault
    accounting).  Deterministic in [seed]. *)
