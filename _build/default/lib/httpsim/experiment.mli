(** The Fig 6 experiment: throughput and tail latency for the three
    server architectures. *)

val servers : (Server.model * (string -> string)) list
(** Each model paired with its real code path. *)

val default_rates : int list
(** The offered-load sweep (requests per second). *)

val fig6a : ?duration_ms:int -> unit -> (string * (int * float) list) list
(** Per server: offered rate → achieved rate.  All three plateau at the
    service capacity (the paper observes ≈30k requests/s). *)

val fig6b : ?rate_rps:int -> ?duration_ms:int -> unit -> Loadgen.outcome list
(** Latency distributions at the default 20k requests/s — two thirds of
    the plateau, the paper's "optimal load" point. *)

val plateau : (int * float) list -> float
(** Largest achieved rate in a sweep. *)
