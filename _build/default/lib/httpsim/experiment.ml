let servers =
  [
    (Server.mc, Server_effects.process_raw);
    (Server.lwt, Server_monad.process_raw);
    (Server.go, Server_go.process_raw);
  ]

let default_rates = [ 5_000; 10_000; 15_000; 20_000; 25_000; 30_000; 35_000; 40_000 ]

let fig6a ?(duration_ms = 2_000) () =
  List.map
    (fun (model, process) ->
      let outcomes =
        Loadgen.throughput_sweep ~model ~process ~rates:default_rates ~duration_ms ()
      in
      ( model.Server.name,
        List.map
          (fun (o : Loadgen.outcome) -> (o.offered_rps, o.achieved_rps))
          outcomes ))
    servers

let fig6b ?(rate_rps = 20_000) ?(duration_ms = 4_000) () =
  List.map
    (fun (model, process) -> Loadgen.run ~model ~process ~rate_rps ~duration_ms ())
    servers

let plateau points = List.fold_left (fun acc (_, a) -> max acc a) 0.0 points

type degradation_cell = {
  intensity : float;
  outcome : Loadgen.outcome;
}

let default_intensities = [ 0.0; 0.5; 1.0; 2.0 ]

let degradation ?(seed = 42) ?(duration_ms = 1_000) ?(rates = [ 10_000; 20_000; 30_000 ])
    ?(intensities = default_intensities) () =
  List.map
    (fun (model, process) ->
      ( model.Server.name,
        List.concat_map
          (fun intensity ->
            let faults = Faults.scale intensity Faults.default in
            List.map
              (fun rate_rps ->
                let outcome =
                  Loadgen.run ~seed ~faults ~model ~process ~rate_rps ~duration_ms ()
                in
                { intensity; outcome })
              rates)
          intensities ))
    servers
