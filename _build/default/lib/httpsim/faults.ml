module Rng = Retrofit_util.Rng

type rates = {
  truncate : float;
  corrupt : float;
  drop : float;
  stall : float;
  backend_slow : float;
  backend_fail : float;
}

let none =
  {
    truncate = 0.0;
    corrupt = 0.0;
    drop = 0.0;
    stall = 0.0;
    backend_slow = 0.0;
    backend_fail = 0.0;
  }

let default =
  {
    truncate = 0.004;
    corrupt = 0.004;
    drop = 0.010;
    stall = 0.010;
    backend_slow = 0.010;
    backend_fail = 0.005;
  }

let scale f r =
  if f < 0.0 then invalid_arg "Faults.scale: negative factor";
  {
    truncate = r.truncate *. f;
    corrupt = r.corrupt *. f;
    drop = r.drop *. f;
    stall = r.stall *. f;
    backend_slow = r.backend_slow *. f;
    backend_fail = r.backend_fail *. f;
  }

let total r =
  r.truncate +. r.corrupt +. r.drop +. r.stall +. r.backend_slow +. r.backend_fail

type fault =
  | Truncate of int
  | Corrupt of int
  | Drop
  | Stall of int
  | Backend_slow of int
  | Backend_fail

type injected = { event : Netsim.event; fault : fault option }

let fault_label = function
  | Truncate _ -> "truncate"
  | Corrupt _ -> "corrupt"
  | Drop -> "drop"
  | Stall _ -> "stall"
  | Backend_slow _ -> "backend_slow"
  | Backend_fail -> "backend_fail"

(* Perturbation magnitudes (virtual ns).  Stalls model a slow client
   dribbling its request bytes; slow-downs model a backend latency
   spike.  Both are uniform over a band so the tail is bounded and the
   sweep stays interpretable. *)
let stall_min_ns = 100_000

let stall_span_ns = 1_900_001 (* up to ~2 ms *)

let slow_min_ns = 200_000

let slow_span_ns = 800_001 (* up to 1 ms *)

let check_rates r =
  let each =
    [ r.truncate; r.corrupt; r.drop; r.stall; r.backend_slow; r.backend_fail ]
  in
  if List.exists (fun x -> x < 0.0 || not (Float.is_finite x)) each then
    invalid_arg "Faults.plan: negative or non-finite rate";
  if total r > 1.0 then invalid_arg "Faults.plan: rates sum past 1"

(* One uniform draw per event decides the fault category (cumulative
   bands over [0,1)); the parameters of the chosen fault come from
   subsequent draws of the same stream.  Everything is a pure function
   of (seed, rates, trace), so a plan is exactly reproducible. *)
let plan ~seed ~rates events =
  check_rates rates;
  let rng = Rng.create (seed lxor 0x5DEECE66) in
  List.map
    (fun (ev : Netsim.event) ->
      let u = Rng.float rng 1.0 in
      let t = rates.truncate in
      let c = t +. rates.corrupt in
      let d = c +. rates.drop in
      let s = d +. rates.stall in
      let sl = s +. rates.backend_slow in
      let f = sl +. rates.backend_fail in
      let len = String.length ev.raw in
      let fault =
        if u < t then Some (Truncate (Rng.int rng (max 1 len)))
        else if u < c then Some (Corrupt (Rng.int rng (max 1 (min 16 len))))
        else if u < d then Some Drop
        else if u < s then Some (Stall (stall_min_ns + Rng.int rng stall_span_ns))
        else if u < sl then
          Some (Backend_slow (slow_min_ns + Rng.int rng slow_span_ns))
        else if u < f then Some Backend_fail
        else None
      in
      { event = ev; fault })
    events

let injected_count plan =
  List.fold_left (fun n i -> if i.fault = None then n else n + 1) 0 plan

let damaged_raw raw fault =
  let len = String.length raw in
  match fault with
  | Truncate keep -> String.sub raw 0 (min keep len)
  | Corrupt i when i < len ->
      let b = Bytes.of_string raw in
      (* A control byte in the request line breaks tokenisation without
         ever reassembling into a valid message. *)
      Bytes.set b i '\x1f';
      Bytes.to_string b
  | Corrupt _ -> raw
  | Backend_fail -> (
      (* Tag the request so the application handler raises mid-service,
         exercising the server's crash barrier for real. *)
      match String.index_opt raw '\n' with
      | Some i ->
          String.sub raw 0 (i + 1)
          ^ Server.crash_header ^ ": crash\r\n"
          ^ String.sub raw (i + 1) (len - i - 1)
      | None -> raw)
  | Drop | Stall _ | Backend_slow _ -> raw
