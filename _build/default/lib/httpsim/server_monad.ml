module L = Retrofit_monad.Lwtlike

let handled = ref 0

let requests_handled () = !handled

let process_raw raw =
  incr handled;
  let open L in
  run
    (* Crash barrier: a handler exception fails the promise chain and is
       recovered into a 500 — it never escapes [run]. *)
    (catch
       (fun () ->
         pause () >>= fun () ->
         (match Http.parse_request raw with
         | Ok (req, _) -> return (Server.app_handler req)
         | Error e -> return (Http.bad_request e))
         >>= fun resp -> return (Http.format_response resp))
       (fun _e -> return (Http.format_response Server.internal_error)))
