module L = Retrofit_monad.Lwtlike

let handled = ref 0

let requests_handled () = !handled

let process_raw raw =
  incr handled;
  let open L in
  run
    ( pause () >>= fun () ->
      (match Http.parse_request raw with
      | Ok (req, _) -> return (Server.app_handler req)
      | Error e -> return (Http.bad_request e))
      >>= fun resp -> return (Http.format_response resp) )
