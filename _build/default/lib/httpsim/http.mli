(** HTTP/1.1 message parsing and serialisation.

    The web-server experiment (§6.3.4) uses httpaf for HTTP handling;
    this module is our substitute.  It implements enough of RFC 7230
    for the benchmark and the tests: request lines, header fields,
    [Content-Length] bodies, response serialisation, and keep-alive
    semantics. *)

type meth = GET | HEAD | POST | PUT | DELETE | OPTIONS | Other of string

type request = {
  meth : meth;
  target : string;
  version : string;  (** e.g. "HTTP/1.1" *)
  headers : (string * string) list;  (** names lower-cased, in order *)
  body : string;
}

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

val meth_to_string : meth -> string

val meth_of_string : string -> meth

val header : request -> string -> string option
(** Case-insensitive lookup of the first matching header. *)

val keep_alive : request -> bool
(** HTTP/1.1 defaults to keep-alive unless [Connection: close];
    HTTP/1.0 the reverse. *)

val parse_request : string -> (request * int, string) result
(** Parse one complete request from the front of the buffer, returning
    it with the number of bytes consumed (so pipelined requests parse
    by repeated calls).  [Error] describes the first problem;
    incomplete input is an error mentioning "incomplete". *)

val format_request : request -> string

val response : ?headers:(string * string) list -> status:int -> string -> response
(** Builds a response with the standard reason phrase and a
    [Content-Length] header. *)

val ok : string -> response

val not_found : response

val bad_request : string -> response

val format_response : response -> string

val parse_response : string -> (response * int, string) result
(** For the load generator's checking side. *)

val reason_phrase : int -> string
