type _ Effect.t += Io_ready : unit Effect.t

let handled = ref 0

let requests_handled () = !handled

(* The per-request thread body, in direct style: wait for the socket,
   parse, handle, serialise. *)
let request_thread raw () =
  Effect.perform Io_ready;
  match Http.parse_request raw with
  | Ok (req, _) -> Http.format_response (Server.app_handler req)
  | Error e -> Http.format_response (Http.bad_request e)

let process_raw raw =
  incr handled;
  Effect.Deep.match_with (request_thread raw) ()
    {
      Effect.Deep.retc = Fun.id;
      (* Crash barrier: an exception escaping the request fiber becomes
         a 500 at the handler boundary — it never aborts the server. *)
      exnc = (fun _e -> Http.format_response Server.internal_error);
      effc =
        (fun (type c) (eff : c Effect.t) ->
          match eff with
          | Io_ready ->
              (* In the simulation the bytes have already arrived, so the
                 scheduler resumes the fiber immediately. *)
              Some (fun (k : (c, string) Effect.Deep.continuation) ->
                  Effect.Deep.continue k ())
          | _ -> None);
    }
