lib/httpsim/http.mli:
