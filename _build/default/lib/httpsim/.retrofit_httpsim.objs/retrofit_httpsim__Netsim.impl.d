lib/httpsim/netsim.ml: Http List Retrofit_util
