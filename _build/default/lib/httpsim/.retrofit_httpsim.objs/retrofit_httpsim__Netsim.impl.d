lib/httpsim/netsim.ml: Http Int List Retrofit_util
