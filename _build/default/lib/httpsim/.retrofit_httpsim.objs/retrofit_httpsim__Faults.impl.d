lib/httpsim/faults.ml: Bytes Float List Netsim Retrofit_util Server String
