lib/httpsim/experiment.mli: Loadgen Server
