lib/httpsim/server_effects.mli:
