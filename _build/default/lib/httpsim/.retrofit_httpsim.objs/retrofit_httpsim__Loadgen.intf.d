lib/httpsim/loadgen.mli: Faults Server
