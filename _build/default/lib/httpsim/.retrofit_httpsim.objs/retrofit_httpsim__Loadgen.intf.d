lib/httpsim/loadgen.mli: Server
