lib/httpsim/server.mli: Http
