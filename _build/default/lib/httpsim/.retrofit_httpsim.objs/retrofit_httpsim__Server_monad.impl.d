lib/httpsim/server_monad.ml: Http Retrofit_monad Server
