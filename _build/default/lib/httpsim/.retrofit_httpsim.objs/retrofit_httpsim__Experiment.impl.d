lib/httpsim/experiment.ml: List Loadgen Server Server_effects Server_go Server_monad
