lib/httpsim/experiment.ml: Faults List Loadgen Server Server_effects Server_go Server_monad
