lib/httpsim/netsim.mli: Retrofit_util
