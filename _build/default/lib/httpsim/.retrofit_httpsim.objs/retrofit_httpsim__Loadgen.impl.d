lib/httpsim/loadgen.ml: Faults Http List Netsim Option Queue Retrofit_util Server
