lib/httpsim/loadgen.ml: Http List Netsim Retrofit_util Server
