lib/httpsim/loadgen.ml: Faults Http List Netsim Option Queue Retrofit_metrics Retrofit_trace Retrofit_util Server
