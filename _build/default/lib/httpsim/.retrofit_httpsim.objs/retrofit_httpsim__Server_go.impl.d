lib/httpsim/server_go.ml: Http Queue Server
