lib/httpsim/http.ml: Buffer List Printf String
