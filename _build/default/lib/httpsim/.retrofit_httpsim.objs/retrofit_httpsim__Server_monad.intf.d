lib/httpsim/server_monad.mli:
