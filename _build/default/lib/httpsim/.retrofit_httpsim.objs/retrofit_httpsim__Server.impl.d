lib/httpsim/server.ml: Buffer Http Printf
