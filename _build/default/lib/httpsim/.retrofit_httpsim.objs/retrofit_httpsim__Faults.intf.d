lib/httpsim/faults.mli: Netsim
