lib/httpsim/server_go.mli:
