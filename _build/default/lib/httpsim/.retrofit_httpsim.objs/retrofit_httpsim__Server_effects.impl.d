lib/httpsim/server_effects.ml: Effect Fun Http Server
