type event = { arrival_ns : int; conn_id : int; raw : string }

let request_for ~target ~conn_id =
  Http.format_request
    {
      Http.meth = Http.GET;
      target;
      version = "HTTP/1.1";
      headers =
        [
          ("host", "bench.local");
          ("user-agent", "retrofit-loadgen");
          ("x-conn", string_of_int conn_id);
        ];
      body = "";
    }

let check_params ~connections ~rate_rps ~duration_ms =
  if connections <= 0 then invalid_arg "Netsim: connections";
  if rate_rps <= 0 then invalid_arg "Netsim: rate";
  if duration_ms < 0 then invalid_arg "Netsim: duration"

let poisson_rate ~rng ~connections ~rate_rps ~duration_ms ~target () =
  check_params ~connections ~rate_rps ~duration_ms;
  let mean_interval = 1e9 /. float_of_int rate_rps in
  let horizon = duration_ms * 1_000_000 in
  let rec go now i acc =
    let gap = Retrofit_util.Rng.exponential rng ~mean:mean_interval in
    let now = now +. gap in
    if int_of_float now >= horizon then List.rev acc
    else begin
      let conn_id = i mod connections in
      let ev =
        { arrival_ns = int_of_float now; conn_id; raw = request_for ~target ~conn_id }
      in
      go now (i + 1) (ev :: acc)
    end
  in
  go 0.0 0 []

let constant_rate ?(jitter_ns = 0) ~rng ~connections ~rate_rps ~duration_ms ~target () =
  if connections <= 0 then invalid_arg "Netsim.constant_rate: connections";
  if rate_rps <= 0 then invalid_arg "Netsim.constant_rate: rate";
  if duration_ms < 0 then invalid_arg "Netsim.constant_rate: duration";
  let interval_ns = 1_000_000_000 / rate_rps in
  let total = rate_rps * duration_ms / 1000 in
  let events =
    List.init total (fun i ->
        let jitter =
          if jitter_ns > 0 then Retrofit_util.Rng.int rng (jitter_ns + 1) else 0
        in
        let conn_id = i mod connections in
        {
          arrival_ns = (i * interval_ns) + jitter;
          conn_id;
          raw = request_for ~target ~conn_id;
        })
  in
  (* Jitter larger than the nominal interval can reorder neighbouring
     events; Loadgen queues FIFO by arrival, so deliver the trace in
     non-decreasing arrival order (stable, to keep equal-instant events
     in issue order). *)
  List.stable_sort (fun a b -> Int.compare a.arrival_ns b.arrival_ns) events
