module Rng = Retrofit_util.Rng
module Histogram = Retrofit_util.Histogram

type outcome = {
  model_name : string;
  offered_rps : int;
  achieved_rps : float;
  completed : int;
  errors : int;
  gc_pauses : int;
  mean_ns : float;
  p50_ns : int;
  p90_ns : int;
  p99_ns : int;
  p999_ns : int;
  max_ns : int;
}

let run ?(seed = 42) ?(connections = 1000) ~model ~process ~rate_rps ~duration_ms () =
  let rng = Rng.create seed in
  let events =
    Netsim.poisson_rate ~rng ~connections ~rate_rps ~duration_ms ~target:"/" ()
  in
  let hist = Histogram.create ~max_value:60_000_000_000 () in
  let cpu_free = ref 0 in
  let alloc_since_gc = ref 0 in
  let gc_pauses = ref 0 in
  let errors = ref 0 in
  let completed = ref 0 in
  let last_completion = ref 0 in
  List.iter
    (fun (ev : Netsim.event) ->
      (* Really execute the server's code path and check the reply. *)
      let reply = process ev.raw in
      (match Http.parse_response reply with
      | Ok (resp, _) when resp.Http.status = 200 -> ()
      | _ -> incr errors);
      (* Virtual timing: single CPU, FIFO, with stop-the-world GC pauses
         driven by the machinery's allocation rate. *)
      alloc_since_gc := !alloc_since_gc + model.Server.alloc_per_request;
      let gc_pause =
        if !alloc_since_gc >= model.Server.gc_threshold then begin
          alloc_since_gc := 0;
          incr gc_pauses;
          model.Server.gc_pause_ns
        end
        else 0
      in
      (* Exponential service-time variance models cache misses and
         allocator noise; the occasional slow request models page-cache
         misses on the served file. *)
      let noise =
        int_of_float
          (Rng.exponential rng ~mean:(float_of_int model.Server.service_ns /. 5.0))
        + (if Rng.int rng 100 = 0 then model.Server.service_ns else 0)
      in
      let cost =
        model.Server.dispatch_overhead_ns + model.Server.parse_ns
        + model.Server.service_ns + noise + gc_pause
      in
      let start = max ev.arrival_ns !cpu_free in
      let finish = start + cost in
      cpu_free := finish;
      last_completion := finish;
      incr completed;
      Histogram.record hist (finish - ev.arrival_ns))
    events;
  let span_ns = max 1 !last_completion in
  {
    model_name = model.Server.name;
    offered_rps = rate_rps;
    achieved_rps = float_of_int !completed *. 1e9 /. float_of_int span_ns;
    completed = !completed;
    errors = !errors;
    gc_pauses = !gc_pauses;
    mean_ns = Histogram.mean hist;
    p50_ns = Histogram.value_at_percentile hist 50.0;
    p90_ns = Histogram.value_at_percentile hist 90.0;
    p99_ns = Histogram.value_at_percentile hist 99.0;
    p999_ns = Histogram.value_at_percentile hist 99.9;
    max_ns = Histogram.max_recorded hist;
  }

let throughput_sweep ?seed ?connections ~model ~process ~rates ~duration_ms () =
  List.map
    (fun rate_rps -> run ?seed ?connections ~model ~process ~rate_rps ~duration_ms ())
    rates
