(** Server cost models and the shared application handler.

    Three server architectures are compared (§6.3.4): thread-per-request
    on effect handlers (MC), monadic callbacks (lwt), and Go-style
    goroutines (go).  Each architecture pairs a {e cost model} — the
    per-request scheduling overhead, allocation footprint and GC pause
    behaviour of that machinery — with a {e real code path} implemented
    in the corresponding style (see {!Server_effects}, {!Server_monad},
    {!Server_go}).

    Model constants are calibrated to the qualitative relationships the
    paper reports and measures elsewhere in its evaluation: effect
    fibers have the cheapest dispatch and smallest allocation (stack
    frames live on the fiber, §6.2); promise chains allocate every
    continuation on the heap, giving higher dispatch cost and more GC
    work; Go sits between, with preemptable threads.  The absolute
    numbers are a model, documented in EXPERIMENTS.md. *)

type model = {
  name : string;
  dispatch_overhead_ns : int;  (** accept + schedule one request *)
  parse_ns : int;  (** HTTP parsing CPU *)
  service_ns : int;  (** application handler CPU for the static page *)
  alloc_per_request : int;  (** bytes the machinery allocates *)
  gc_threshold : int;  (** bytes of allocation between collections *)
  gc_pause_ns : int;  (** stop-the-world pause per collection *)
}

val mc : model

val lwt : model

val go : model

val all : model list

val static_page : string
(** The 1 KiB page every benchmark request serves. *)

exception Backend_failure
(** The simulated transient backend fault: raised by {!app_handler}
    mid-request when the fault injector tags a request (see
    {!crash_header}), so that every server model's crash barrier is
    exercised by a real exception unwinding real handler code. *)

val crash_header : string
(** The request header name ("x-fault-inject") whose value ["crash"]
    makes {!app_handler} raise {!Backend_failure}. *)

val internal_error : Http.response
(** The 500 every crash barrier answers with. *)

val app_handler : Http.request -> Http.response
(** The shared application logic: [GET /] serves {!static_page}; other
    targets get 404; non-GET methods get 405.
    @raise Backend_failure on a crash-tagged request. *)
