(** Monadic callback server (the lwt baseline of §6.3.4).

    The same request logic as {!Server_effects} but as a promise chain:
    parsing and handling are [bind]-sequenced callbacks with a [pause]
    where the socket wait would be.  There is no per-request stack —
    the property the paper contrasts with the effect version. *)

val process_raw : string -> string
(** Never raises: a handler exception fails the promise and is caught
    into a 500 (the crash barrier, [L.catch]). *)

val requests_handled : unit -> int
