(* Hot-path microbenchmarks for the fiber machine (see DESIGN.md,
   "Hot-path complexity").

   Three scaling probes, each targeting a path that used to be
   accidentally quadratic:

   - deep-chain:  perform through a chain of [depth] non-matching
     handlers (Programs.effect_depth).  Capture links one fiber per
     hop; the per-hop cost must stay flat as the chain deepens.
   - callback-storm:  a C function calls back into OCaml by name from
     a program with [fillers] unrelated functions; the per-callback
     cost must stay flat as the program grows.
   - backtrace-load:  snapshot the DWARF backtrace of every suspended
     continuation with [n] requests parked; the per-backtrace cost
     must be (near) independent of the live-fiber count.

   Usage:
     hotpath.exe             full sizes, prints one table per probe
     hotpath.exe --smoke     tiny sizes, single measured run (CI gate) *)

module F = Retrofit_fiber
module D = Retrofit_dwarf
module B = Retrofit_harness.Bench

let smoke = Array.exists (fun a -> a = "--smoke") Sys.argv
let warmups = if smoke then 0 else 2
let runs = if smoke then 1 else 5

let header title cols =
  Printf.printf "\n%s\n" title;
  Printf.printf "  %-10s %14s\n" cols "ns/op"

let row size ns = Printf.printf "  %-10d %14.1f\n%!" size ns

let expect_done v (outcome, _) =
  match outcome with
  | F.Machine.Done got when got = v -> ()
  | F.Machine.Done got -> failwith (Printf.sprintf "expected Done %d, got Done %d" v got)
  | _ -> failwith "program failed"

(* ------------------------------------------------------------------ *)

let deep_chain () =
  let depths = if smoke then [ 2; 8 ] else [ 2; 8; 32; 128 ] in
  let hops_total = if smoke then 400 else 20_000 in
  header "deep handler chain: continuation capture, per fiber hop" "depth";
  List.iter
    (fun depth ->
      (* keep the total hop count constant so runs are comparable *)
      let iters = max 1 (hops_total / depth) in
      let compiled = F.Compile.compile (F.Programs.effect_depth ~depth ~iters) in
      let ns =
        B.per_op_ns ~warmups ~runs ~iters:(iters * depth) (fun () ->
            expect_done 0 (F.Machine.run F.Config.mc compiled))
      in
      row depth ns)
    depths

(* ------------------------------------------------------------------ *)

let callback_storm_program ~fillers ~iters =
  let open F.Ir in
  let filler i = fn (Printf.sprintf "filler_%04d" i) [ "x" ] (Binop (Add, Var "x", Int i)) in
  (* the callback target comes last, the worst case for a linear scan *)
  let fns =
    List.init fillers filler
    @ [
        fn "ocaml_id" [ "x" ] (Var "x");
        fn "main" [] (Repeat (Int iters, Extcall ("c_cb", [ Int 7 ])));
      ]
  in
  { fns; main = "main" }

let callback_storm () =
  let sizes = if smoke then [ 16; 64 ] else [ 16; 64; 256; 1024 ] in
  let iters = if smoke then 50 else 2_000 in
  header "callback storm: run_callback name lookup, per callback" "fillers";
  List.iter
    (fun fillers ->
      let compiled = F.Compile.compile (callback_storm_program ~fillers ~iters) in
      let ns =
        B.per_op_ns ~warmups ~runs ~iters (fun () ->
            expect_done 0
              (F.Machine.run ~cfuns:[ F.Programs.c_callback_impl ] F.Config.mc compiled))
      in
      row fillers ns)
    sizes

(* ------------------------------------------------------------------ *)

let backtrace_load () =
  let sizes = if smoke then [ 4; 8 ] else [ 16; 64; 256; 1024 ] in
  header "backtrace under load: DWARF unwind of one suspended request" "fibers";
  List.iter
    (fun n ->
      let compiled = F.Compile.compile (F.Programs.suspended_requests ~n) in
      let table = D.Table.build compiled in
      let per_bt = ref nan in
      let list_pending ctx _args =
        let m = ctx.F.Machine.machine in
        (* the machine is paused inside the C call: every continuation is
           parked, so snapshotting is a pure read we can time in place *)
        let median =
          (B.measure ~warmups ~runs (fun () ->
               D.Unwind.snapshot_continuations table m))
            .B.median_ns
        in
        per_bt := median /. float_of_int n;
        List.length (F.Machine.live_continuations m)
      in
      expect_done n
        (F.Machine.run ~cfuns:[ ("list_pending", list_pending) ] F.Config.mc compiled);
      row n !per_bt)
    sizes

let () =
  Printf.printf "fiber-machine hot-path microbench%s\n"
    (if smoke then " (smoke mode)" else "");
  deep_chain ();
  callback_storm ();
  backtrace_load ()
