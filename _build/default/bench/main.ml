(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's per-experiment index).

   Usage:
     main.exe                 run every experiment at full size
     main.exe --quick         run every experiment at test size
     main.exe table1 fig6     run selected experiments
     main.exe --list          list experiment ids
     main.exe --bechamel      additionally run the Bechamel micro suite
       (one Test.make per table workload, with OLS per-run estimates) *)

module E = Retrofit_experiments

let bechamel_tests () =
  let open Bechamel in
  let module R = Retrofit_micro.Rec_bench in
  [
    (* Table 1 workloads *)
    Test.make ~name:"table1/exnval"
      (Staged.stage (fun () -> Retrofit_micro.Exn_bench.exnval_loop 1_000));
    Test.make ~name:"table1/exnraise"
      (Staged.stage (fun () -> Retrofit_micro.Exn_bench.exnraise_loop 1_000));
    Test.make ~name:"table1/extcall"
      (Staged.stage (fun () -> Retrofit_micro.Extern.extcall_loop 1_000));
    Test.make ~name:"table1/callback"
      (Staged.stage (fun () -> Retrofit_micro.Extern.callback_loop 1_000));
    Test.make ~name:"table1/ack" (Staged.stage (fun () -> R.plain.R.ack 2 6));
    Test.make ~name:"table1/fib" (Staged.stage (fun () -> R.plain.R.fib 18));
    Test.make ~name:"table1/motzkin" (Staged.stage (fun () -> R.plain.R.motzkin 10));
    Test.make ~name:"table1/sudan" (Staged.stage (fun () -> R.plain.R.sudan 2 2 2));
    Test.make ~name:"table1/tak" (Staged.stage (fun () -> R.plain.R.tak 14 10 4));
    (* Table 2 styles on a common workload *)
    Test.make ~name:"table2/fib-plain" (Staged.stage (fun () -> R.plain.R.fib 15));
    Test.make ~name:"table2/fib-handler" (Staged.stage (fun () -> R.handler.R.fib 15));
    Test.make ~name:"table2/fib-monad" (Staged.stage (fun () -> R.monadic.R.fib 15));
    (* Section 6.3 workloads *)
    Test.make ~name:"concurrent/generator-effect"
      (Staged.stage (fun () -> Retrofit_micro.Genbench.effect_sum ~depth:12));
    Test.make ~name:"concurrent/generator-cps"
      (Staged.stage (fun () -> Retrofit_micro.Genbench.cps_sum ~depth:12));
    Test.make ~name:"concurrent/generator-monad"
      (Staged.stage (fun () -> Retrofit_micro.Genbench.monad_sum ~depth:12));
    Test.make ~name:"concurrent/chameneos-effects"
      (Staged.stage (fun () -> Retrofit_micro.Chameneos.run_effects ~meetings:2_000));
    Test.make ~name:"concurrent/chameneos-monad"
      (Staged.stage (fun () -> Retrofit_micro.Chameneos.run_monad ~meetings:2_000));
    Test.make ~name:"concurrent/chameneos-lwt"
      (Staged.stage (fun () -> Retrofit_micro.Chameneos.run_lwt ~meetings:2_000));
  ]

let run_bechamel () =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1_000 ~quota:(Time.second 0.25) () in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  print_endline "Bechamel micro suite (monotonic clock, ns per run):";
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] test in
      let results =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) raw [] |> List.sort compare
      in
      List.iter
        (fun (name, m) ->
          let result = Analyze.one ols instance m in
          let estimate =
            match Analyze.OLS.estimates result with
            | Some [ est ] -> Printf.sprintf "%12.1f ns/run" est
            | _ -> "(no estimate)"
          in
          Printf.printf "  %-34s %s\n%!" name estimate)
        results)
    (bechamel_tests ())

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let quick = List.mem "--quick" args in
  let listing = List.mem "--list" args in
  let bechamel = List.mem "--bechamel" args in
  let ids = List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args in
  if listing then
    List.iter
      (fun (e : E.Registry.t) -> Printf.printf "%-11s %s (%s)\n" e.id e.title e.paper_ref)
      E.Registry.all
  else begin
    (match ids with
    | [] -> print_string (E.Registry.run_all ~quick ())
    | ids ->
        List.iter
          (fun id ->
            match E.Registry.find id with
            | Some e ->
                Printf.printf "=== %s: %s (%s) ===\n\n%s\n" e.id e.title e.paper_ref
                  (e.run ~quick ())
            | None ->
                Printf.eprintf "unknown experiment %s; known: %s\n" id
                  (String.concat ", " (E.Registry.ids ()));
                exit 1)
          ids);
    if bechamel then run_bechamel ()
  end
