(* Transparent asynchrony (§3.1, §3.2, requirement R4).

   The same direct-style [copy] code runs under a blocking runner and an
   asynchronous one; only the runner changes.  Virtual time makes the
   benefit exact: three connections whose reads each take 100 "ns"
   overlap under the asynchronous scheduler.

   Run with: dune exec examples/async_io.exe *)

module C = Retrofit_core

let make_world () =
  let loop = C.Evloop.create () in
  let mk name =
    ( name,
      C.Chan.make_ic_lazy loop ~latency:100
        [ name ^ "-line-1"; name ^ "-line-2"; name ^ "-line-3" ],
      C.Chan.make_oc loop )
  in
  (loop, [ mk "alpha"; mk "beta"; mk "gamma" ])

let run_with runner label =
  let loop, conns = make_world () in
  let main () =
    List.iter
      (fun (_, ic, oc) -> C.Sched.fork (fun () -> C.Aio.copy ic oc))
      (List.tl conns);
    let _, ic, oc = List.hd conns in
    C.Aio.copy ic oc
  in
  runner loop main;
  Printf.printf "%-5s total virtual time: %4d ns\n" label (C.Evloop.now loop);
  List.iter
    (fun (name, _, oc) ->
      Printf.printf "  %s copied %d bytes\n" name (String.length (C.Chan.contents oc)))
    conns

let () =
  print_endline "-- the same copy code, two runners (R4) --";
  run_with C.Aio.run_sync "sync";
  run_with C.Aio.run_async "async";

  print_endline "-- exceptional completions still clean up (§3.2) --";
  let loop = C.Evloop.create () in
  let ic = C.Chan.make_ic_lazy loop ~latency:10 [ "only-line" ] in
  let oc = C.Chan.make_oc loop in
  C.Aio.run_async loop (fun () ->
      C.Aio.copy ic oc;
      (* copy closed both channels on End_of_file; a further read must
         fail with Sys_error, which the defensive code re-raises *)
      match C.Aio.input_line ic with
      | _ -> assert false
      | exception Sys_error msg -> Printf.printf "read after close: Sys_error %S\n" msg);
  Printf.printf "copied: %S\n" (C.Chan.contents oc)
