(* The runtime model (§5): compile a program to the fiber machine,
   watch the cost counters, and unwind a cross-fiber backtrace with the
   DWARF tables (§5.5).

   Run with: dune exec examples/fiber_machine.exe *)

module F = Retrofit_fiber
module D = Retrofit_dwarf

let () =
  print_endline "-- compile and disassemble fib --";
  let compiled = F.Compile.compile (F.Programs.fib ~n:10) in
  print_string (F.Compile.disassemble compiled);

  print_endline "-- the same program under both runtimes --";
  List.iter
    (fun cfg ->
      let outcome, counters = F.Machine.run cfg compiled in
      match outcome with
      | F.Machine.Done v ->
          Printf.printf "%-10s fib 10 = %d  instructions=%d checks=%d growths=%d\n"
            (F.Config.name cfg) v
            (Retrofit_util.Counter.get counters "instructions")
            (Retrofit_util.Counter.get counters "overflow_check")
            (Retrofit_util.Counter.get counters "stack_grow")
      | _ -> print_endline "unexpected outcome")
    [ F.Config.stock; F.Config.mc ];

  print_endline "\n-- effect handling allocates, switches and frees fibers --";
  let compiled = F.Compile.compile (F.Programs.effect_roundtrip ~iters:1000) in
  let _, counters = F.Machine.run F.Config.mc compiled in
  List.iter
    (fun name ->
      Printf.printf "  %-16s %d\n" name (Retrofit_util.Counter.get counters name))
    [ "fiber_alloc"; "stack_cache_hit"; "malloc"; "perform"; "resume"; "fiber_free" ];

  print_endline "\n-- Fig 1d: DWARF backtrace from inside the callback --";
  let compiled = F.Compile.compile F.Programs.meander in
  let table = D.Table.build compiled in
  let shown = ref false in
  let hook m =
    let f = F.Machine.current_fiber m in
    if f.F.Fiber.regs.fn >= 0 then begin
      let name = (F.Machine.compiled m).F.Compile.fns.(f.regs.fn).F.Compile.fn_name in
      if name = "c_to_ocaml" && not !shown then begin
        shown := true;
        print_string (D.Unwind.format (D.Unwind.backtrace table m));
        print_endline "(shadow-stack ground truth:)";
        List.iter (Printf.printf "  %s\n") (F.Machine.shadow_backtrace m)
      end
    end
  in
  ignore
    (F.Machine.run ~cfuns:F.Programs.standard_cfuns ~on_call:hook F.Config.mc compiled)

(* §6.3.4: "it is possible to get a backtrace snapshot of all current
   requests" — park a few requests on an effect and snapshot each
   suspended continuation through the DWARF tables. *)
let () =
  print_endline "\n-- backtraces of all suspended requests (§6.3.4) --";
  let compiled = F.Compile.compile (F.Programs.suspended_requests ~n:3) in
  let table = D.Table.build compiled in
  let list_pending ctx _args =
    let m = ctx.F.Machine.machine in
    List.iter
      (fun (kid, entries) ->
        Printf.printf "request %d:\n%s" kid (D.Unwind.format entries))
      (D.Unwind.snapshot_continuations table m);
    List.length (F.Machine.live_continuations m)
  in
  match F.Machine.run ~cfuns:[ ("list_pending", list_pending) ] F.Config.mc compiled with
  | F.Machine.Done n, _ -> Printf.printf "%d requests in flight\n" n
  | _ -> print_endline "unexpected outcome"
