examples/webserver_sim.ml: List Printf Retrofit_httpsim String
