examples/generators.mli:
