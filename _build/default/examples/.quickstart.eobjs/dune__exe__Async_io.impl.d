examples/async_io.ml: List Printf Retrofit_core String
