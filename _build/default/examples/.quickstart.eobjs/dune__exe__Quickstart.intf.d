examples/quickstart.mli:
