examples/cooperative_threads.ml: List Printf Retrofit_core String
