examples/cooperative_threads.mli:
