examples/interp_demo.ml: Format List Option Printf Retrofit_semantics
