examples/fiber_machine.ml: Array List Printf Retrofit_dwarf Retrofit_fiber Retrofit_util
