examples/fiber_machine.mli:
