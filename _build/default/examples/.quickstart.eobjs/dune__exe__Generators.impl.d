examples/generators.ml: Array List Printf Retrofit_gen
