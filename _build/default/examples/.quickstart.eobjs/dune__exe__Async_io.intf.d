examples/async_io.mli:
