examples/quickstart.ml: Effect Obj Printexc Printf Retrofit_core String
