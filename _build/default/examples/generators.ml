(* Generators from iterators (§6.3.1): given any [iter], effect
   handlers derive a [next] function — no code changes to the data
   structure.

   Run with: dune exec examples/generators.exe *)

module G = Retrofit_gen

let () =
  print_endline "-- generator over a binary tree --";
  let tree = G.Tree.complete ~depth:3 in
  let next = G.Effect_gen.of_tree tree in
  let rec drain () =
    match next () with
    | Some v ->
        Printf.printf "%d " v;
        drain ()
    | None -> print_newline ()
  in
  drain ();

  print_endline "-- the same derivation works for any iterator --";
  let next = G.Effect_gen.of_iter (fun f -> List.iter f [ "fold"; "iter"; "map" ]) in
  let rec drain () =
    match next () with
    | Some s ->
        Printf.printf "%s " s;
        drain ()
    | None -> print_newline ()
  in
  drain ();

  print_endline "-- generators are demand-driven: zip two traversals --";
  let a = G.Effect_gen.of_tree (G.Tree.complete ~depth:2) in
  let b = G.Effect_gen.of_iter (fun f -> Array.iter f [| 10; 20; 30 |]) in
  let rec zip () =
    match (a (), b ()) with
    | Some x, Some y ->
        Printf.printf "(%d,%d) " x y;
        zip ()
    | _ -> print_newline ()
  in
  zip ();

  print_endline "-- all three implementations agree (§6.3.1) --";
  let depth = 10 in
  let t = G.Tree.complete ~depth in
  Printf.printf "effect: %d, cps: %d, monad: %d\n"
    (G.Effect_gen.sum_all (G.Effect_gen.of_tree t))
    (G.Cps_gen.sum_all (G.Cps_gen.of_tree t))
    (G.Monad_gen.sum_all (G.Monad_gen.of_tree t))
