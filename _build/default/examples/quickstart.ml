(* Quickstart: effect handlers through the paper's API (§4.1).

   Run with: dune exec examples/quickstart.exe *)

module Eff = Retrofit_core.Eff

(* Declare an effect: performing [Ask s] returns an int. *)
type _ Effect.t += Ask : string -> int Effect.t

exception Cancelled

let computation () =
  let a = Eff.perform (Ask "first") in
  let b = Eff.perform (Ask "second") in
  a + b

let () =
  (* A handler is a return case, an exception case and an effect case;
     the effect case receives the delimited continuation. *)
  let result =
    Eff.match_with computation
      {
        Eff.retc = (fun v -> Printf.sprintf "returned %d" v);
        exnc = (fun e -> Printf.sprintf "raised %s" (Printexc.to_string e));
        effc =
          (fun (type c) (eff : c Eff.eff) ->
            match eff with
            | Ask prompt ->
                Some
                  (fun (k : (c, string) Eff.continuation) ->
                    Printf.printf "handling (Ask %S)\n" prompt;
                    (* resume the computation with the answer *)
                    Eff.continue k (String.length prompt))
            | _ -> None);
      }
  in
  Printf.printf "first run : %s\n" result;

  (* discontinue resumes by raising at the perform site, so the
     computation's own exception handling (resource cleanup, §3.2)
     runs. *)
  let result =
    Eff.match_with
      (fun () -> try computation () with Cancelled -> -1)
      {
        Eff.retc = (fun v -> Printf.sprintf "returned %d" v);
        exnc = (fun e -> Printf.sprintf "raised %s" (Printexc.to_string e));
        effc =
          (fun (type c) (eff : c Eff.eff) ->
            match eff with
            | Ask _ ->
                Some
                  (fun (k : (c, string) Eff.continuation) ->
                    Eff.discontinue k Cancelled)
            | _ -> None);
      }
  in
  Printf.printf "second run: %s\n" result;

  (* Continuations are one-shot: a second resume raises. *)
  let saved = ref None in
  let _ =
    Eff.match_with computation
      {
        Eff.retc = string_of_int;
        exnc = Printexc.to_string;
        effc =
          (fun (type c) (eff : c Eff.eff) ->
            match eff with
            | Ask _ ->
                Some
                  (fun (k : (c, string) Eff.continuation) ->
                    saved := Some (Obj.repr k);
                    Eff.continue k 1)
            | _ -> None);
      }
  in
  (match !saved with
  | Some k -> (
      let k : (int, string) Eff.continuation = Obj.obj k in
      try ignore (Eff.continue k 2)
      with Effect.Continuation_already_resumed ->
        print_endline "one-shot: second resume raised, as §3.1 specifies")
  | None -> ());
  print_endline "quickstart done"
