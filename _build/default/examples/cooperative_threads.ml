(* Cooperative lightweight threads (§3.1): Fork, Yield and MVars.

   Run with: dune exec examples/cooperative_threads.exe *)

module Sched = Retrofit_core.Sched
module Mvar = Retrofit_core.Mvar

let () =
  print_endline "-- producer/consumer over an MVar --";
  Sched.run (fun () ->
      let mv = Mvar.create_empty () in
      Sched.fork (fun () ->
          for i = 1 to 5 do
            Printf.printf "producer: put %d\n" i;
            Mvar.put mv i
          done;
          Mvar.put mv 0);
      Sched.fork (fun () ->
          let rec drain () =
            let v = Mvar.take mv in
            if v <> 0 then begin
              Printf.printf "consumer: got %d\n" v;
              drain ()
            end
          in
          drain ());
      print_endline "main: forked both");

  print_endline "-- FIFO vs LIFO scheduling (§3.1: swap queue for stack) --";
  let trace policy =
    let log = ref [] in
    Sched.run ~policy (fun () ->
        for i = 1 to 3 do
          Sched.fork (fun () -> log := string_of_int i :: !log)
        done);
    String.concat " " (List.rev !log)
  in
  Printf.printf "FIFO order: %s\n" (trace Sched.Fifo);
  Printf.printf "LIFO order: %s\n" (trace Sched.Lifo);

  print_endline "-- fairness under yield --";
  Sched.run (fun () ->
      let turns = ref [] in
      Sched.fork (fun () ->
          for _ = 1 to 3 do
            turns := "a" :: !turns;
            Sched.yield ()
          done);
      Sched.fork (fun () ->
          for _ = 1 to 3 do
            turns := "b" :: !turns;
            Sched.yield ()
          done);
      Sched.yield ();
      (* let both finish *)
      Sched.yield ();
      Sched.yield ();
      Printf.printf "interleaving: %s\n" (String.concat "" (List.rev !turns)));
  Printf.printf "context switches in last run: %d\n" (Sched.stats_switches ())
