(* The executable formal semantics (§4): run the meander example and
   watch a small program reduce step by step.

   Run with: dune exec examples/interp_demo.exe *)

module S = Retrofit_semantics

let () =
  print_endline "-- every built-in example, checked --";
  List.iter
    (fun (ex : S.Examples.t) ->
      match S.Examples.check ex with
      | Ok () -> Printf.printf "  ok   %s\n" ex.name
      | Error msg -> Printf.printf "  FAIL %s: %s\n" ex.name msg)
    S.Examples.all;

  print_endline "\n-- meander (Fig 1) in the semantics --";
  let meander = Option.get (S.Examples.find "meander") in
  print_endline meander.S.Examples.source;
  Printf.printf "=> %s\n"
    (S.Machine.result_to_string (S.Machine.run_string meander.S.Examples.source));

  print_endline "\n-- a small trace: handling one effect --";
  let src = "match perform E 1 with v -> v | effect (E x) k -> continue k (x + 41) end" in
  Printf.printf "program: %s\n\n" src;
  let steps = ref 0 in
  let result =
    S.Machine.run
      ~trace:(fun cfg ->
        incr steps;
        if !steps <= 14 then Format.printf "%2d  %a@." !steps S.Syntax.pp_config cfg)
      (S.Parser.parse_exn src)
  in
  Printf.printf "... (%d steps total)\n=> %s\n" !steps
    (S.Machine.result_to_string result);

  print_endline "\n-- the semantics is multi-shot (§5.2) --";
  let src =
    "match 10 * perform Choice 0 with v -> v | effect (Choice u) k -> continue k 1 \
     + continue k 2 end"
  in
  Printf.printf "%s\n=> %s\n" src (S.Machine.result_to_string (S.Machine.run_string src))
