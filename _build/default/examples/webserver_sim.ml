(* The web-server experiment (§6.3.4) at a small scale: three server
   architectures under wrk2-style constant load.

   Run with: dune exec examples/webserver_sim.exe *)

module H = Retrofit_httpsim

let () =
  print_endline "-- one handled request, end to end --";
  let raw = H.Netsim.request_for ~target:"/" ~conn_id:0 in
  print_string raw;
  let reply = H.Server_effects.process_raw raw in
  (match H.Http.parse_response reply with
  | Ok (resp, _) ->
      Printf.printf "=> %d %s, %d body bytes\n\n" resp.H.Http.status resp.H.Http.reason
        (String.length resp.H.Http.resp_body)
  | Error e -> failwith e);

  print_endline "-- 2/3-capacity load, all three servers --";
  List.iter
    (fun (model, process) ->
      let o = H.Loadgen.run ~model ~process ~rate_rps:20_000 ~duration_ms:500 () in
      Printf.printf
        "%-4s achieved %.0f req/s  p50 %.2f ms  p99 %.2f ms  p99.9 %.2f ms  (gc pauses %d)\n"
        o.H.Loadgen.model_name o.achieved_rps
        (float_of_int o.p50_ns /. 1e6)
        (float_of_int o.p99_ns /. 1e6)
        (float_of_int o.p999_ns /. 1e6)
        o.gc_pauses)
    H.Experiment.servers;

  print_endline "\n-- pushing past the plateau --";
  List.iter
    (fun (model, process) ->
      let o = H.Loadgen.run ~model ~process ~rate_rps:40_000 ~duration_ms:300 () in
      Printf.printf "%-4s offered 40k => achieved %.0f req/s (saturated)\n"
        o.H.Loadgen.model_name o.achieved_rps)
    H.Experiment.servers
