module G = Retrofit_gen

let test name f = Alcotest.test_case name `Quick f

let tree_shape () =
  Alcotest.(check int) "size depth 0" 0 (G.Tree.size (G.Tree.complete ~depth:0));
  Alcotest.(check int) "size depth 4" 15 (G.Tree.size (G.Tree.complete ~depth:4));
  Alcotest.(check (list int)) "in-order labels" [ 1; 2; 3; 4; 5; 6; 7 ]
    (G.Tree.to_list (G.Tree.complete ~depth:3));
  Alcotest.(check int) "sum" 28 (G.Tree.sum (G.Tree.complete ~depth:3))

let effect_gen_basic () =
  let next = G.Effect_gen.of_tree (G.Tree.complete ~depth:3) in
  Alcotest.(check (option int)) "1" (Some 1) (next ());
  Alcotest.(check (option int)) "2" (Some 2) (next ());
  let rest = ref 0 in
  let rec drain () = match next () with Some _ -> incr rest; drain () | None -> () in
  drain ();
  Alcotest.(check int) "remaining" 5 !rest;
  Alcotest.(check (option int)) "stays None" None (next ());
  Alcotest.(check (option int)) "still None" None (next ())

let effect_gen_empty () =
  let next = G.Effect_gen.of_iter (fun _ -> ()) in
  Alcotest.(check (option int)) "empty" None (next ())

let effect_gen_any_iter () =
  let next = G.Effect_gen.of_iter (fun f -> String.iter f "abc") in
  let first = next () in
  let second = next () in
  let third = next () in
  Alcotest.(check (list char)) "string gen" [ 'a'; 'b'; 'c' ]
    (List.filter_map Fun.id [ first; second; third ])

let effect_gen_independent () =
  let a = G.Effect_gen.of_tree (G.Tree.complete ~depth:2) in
  let b = G.Effect_gen.of_tree (G.Tree.complete ~depth:2) in
  Alcotest.(check (option int)) "a1" (Some 1) (a ());
  Alcotest.(check (option int)) "b1" (Some 1) (b ());
  Alcotest.(check (option int)) "a2" (Some 2) (a ())

let implementations_agree () =
  List.iter
    (fun depth ->
      let t = G.Tree.complete ~depth in
      let e = G.Effect_gen.sum_all (G.Effect_gen.of_tree t) in
      let c = G.Cps_gen.sum_all (G.Cps_gen.of_tree t) in
      let m = G.Monad_gen.sum_all (G.Monad_gen.of_tree t) in
      Alcotest.(check int) (Printf.sprintf "cps d%d" depth) e c;
      Alcotest.(check int) (Printf.sprintf "monad d%d" depth) e m;
      Alcotest.(check int) (Printf.sprintf "closed form d%d" depth)
        (let n = (1 lsl depth) - 1 in
         n * (n + 1) / 2)
        e)
    [ 0; 1; 2; 5; 9 ]

let cps_gen_stream_order () =
  let next = G.Cps_gen.of_tree (G.Tree.complete ~depth:3) in
  let out = ref [] in
  let rec drain () =
    match next () with
    | Some v ->
        out := v :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "in-order" [ 1; 2; 3; 4; 5; 6; 7 ] (List.rev !out)

let prop_agree =
  QCheck.Test.make ~name:"generators agree on random lists" ~count:100
    QCheck.(list (int_range 0 1000))
    (fun xs ->
      let next = G.Effect_gen.of_iter (fun f -> List.iter f xs) in
      let rec drain acc =
        match next () with Some v -> drain (v :: acc) | None -> List.rev acc
      in
      drain [] = xs)

let suite =
  [
    test "tree shape" tree_shape;
    test "effect generator basics" effect_gen_basic;
    test "effect generator empty" effect_gen_empty;
    test "effect generator over any iter" effect_gen_any_iter;
    test "generators are independent" effect_gen_independent;
    test "three implementations agree" implementations_agree;
    test "cps generator order" cps_gen_stream_order;
    QCheck_alcotest.to_alcotest prop_agree;
  ]
