module Conc = Retrofit_monad.Conc
module L = Retrofit_monad.Lwtlike

let test name f = Alcotest.test_case name `Quick f

(* ---------------- Conc ---------------- *)

let conc_return_bind () =
  Alcotest.(check (option int)) "return" (Some 5) (Conc.run_main (Conc.return 5));
  Alcotest.(check (option int)) "bind" (Some 6)
    (Conc.run_main Conc.(return 5 >>= fun x -> return (x + 1)));
  Alcotest.(check (option int)) "map" (Some 10)
    (Conc.run_main (Conc.map (fun x -> x * 2) (Conc.return 5)))

let conc_fork_interleaves () =
  let log = Buffer.create 8 in
  Conc.run
    Conc.(
      fork
        (atom (fun () -> Buffer.add_char log 'a') >>= fun () ->
         yield >>= fun () -> atom (fun () -> Buffer.add_char log 'a'))
      >>= fun () ->
      atom (fun () -> Buffer.add_char log 'b') >>= fun () ->
      yield >>= fun () -> atom (fun () -> Buffer.add_char log 'b'));
  Alcotest.(check string) "interleaved" "abab" (Buffer.contents log)

let conc_mvar_rendezvous () =
  let mv = Conc.mvar_empty () in
  let result = ref 0 in
  Conc.run
    Conc.(
      fork (take mv >>= fun v -> atom (fun () -> result := v)) >>= fun () ->
      put mv 42);
  Alcotest.(check int) "rendezvous" 42 !result

let conc_mvar_put_blocks () =
  let mv = Conc.mvar_full 1 in
  let log = ref [] in
  Conc.run
    Conc.(
      fork (put mv 2 >>= fun () -> atom (fun () -> log := "put2" :: !log))
      >>= fun () ->
      take mv >>= fun a ->
      atom (fun () -> log := Printf.sprintf "take%d" a :: !log) >>= fun () ->
      take mv >>= fun b -> atom (fun () -> log := Printf.sprintf "take%d" b :: !log));
  (* the parked putter's continuation is requeued before the taker's own
     continuation action runs *)
  Alcotest.(check (list string)) "order" [ "put2"; "take1"; "take2" ] (List.rev !log)

let conc_deadlock_none () =
  Alcotest.(check (option int)) "deadlock yields None" None
    (Conc.run_main (Conc.take (Conc.mvar_empty ())))

let conc_fib_with_mvars () =
  let rec mfib n =
    let open Conc in
    if n < 2 then return n
    else begin
      let mv = mvar_empty () in
      fork (mfib (n - 1) >>= put mv) >>= fun () ->
      mfib (n - 2) >>= fun b ->
      take mv >>= fun a -> return (a + b)
    end
  in
  Alcotest.(check (option int)) "fib 12" (Some 144) (Conc.run_main (mfib 12))

let conc_poll () =
  let mv = Conc.mvar_full 9 in
  ignore (Conc.start (Conc.return ()));
  Alcotest.(check (option int)) "poll full" (Some 9) (Conc.poll mv);
  Alcotest.(check (option int)) "poll empty" None (Conc.poll mv)

(* ---------------- Lwtlike ---------------- *)

exception Test_exn

let lwt_basics () =
  Alcotest.(check int) "return" 5 (L.run (L.return 5));
  Alcotest.(check int) "bind" 6 (L.run L.(return 5 >>= fun x -> return (x + 1)));
  Alcotest.(check int) "map" 10 (L.run (L.map (fun x -> x * 2) (L.return 5)))

let lwt_wakeup () =
  let p, r = L.wait () in
  Alcotest.(check bool) "pending" true (L.state p = `Pending);
  L.wakeup r 7;
  Alcotest.(check int) "resolved" 7 (L.run p);
  Alcotest.check_raises "double wakeup"
    (Invalid_argument "Lwtlike.wakeup: already completed") (fun () -> L.wakeup r 8)

let lwt_fail_catch () =
  Alcotest.(check int) "catch" 3
    (L.run (L.catch (fun () -> L.fail Test_exn) (fun _ -> L.return 3)));
  Alcotest.(check int) "catch pass-through" 5
    (L.run (L.catch (fun () -> L.return 5) (fun _ -> L.return 0)));
  Alcotest.check_raises "uncaught" Test_exn (fun () -> ignore (L.run (L.fail Test_exn)))

let lwt_bind_on_pending () =
  let p, r = L.wait () in
  let q = L.(p >>= fun x -> return (x * 2)) in
  L.wakeup r 21;
  Alcotest.(check int) "chained" 42 (L.run q)

let lwt_pause_join () =
  let log = ref [] in
  let thread tag =
    L.(
      pause () >>= fun () ->
      log := tag :: !log;
      pause () >>= fun () ->
      log := tag :: !log;
      return ())
  in
  let ta = thread "a" in
  let tb = thread "b" in
  L.run (L.join [ ta; tb ]);
  Alcotest.(check (list string)) "round robin" [ "a"; "b"; "a"; "b" ] (List.rev !log)

let lwt_join_failure () =
  Alcotest.check_raises "join propagates" Test_exn (fun () ->
      ignore (L.run (L.join [ L.return (); L.fail Test_exn ])))

let lwt_deadlock () =
  let p, _r = L.wait () in
  Alcotest.(check bool) "deadlock detected" true
    (match L.run (p : int L.t) with
    | _ -> false
    | exception Failure _ -> true)

let lwt_mvar () =
  let mv = L.mvar_empty () in
  let got = ref 0 in
  L.run
    L.(
      join
        [
          (mvar_take mv >>= fun v ->
           got := v;
           return ());
          mvar_put mv 17;
        ]);
  Alcotest.(check int) "mvar" 17 !got

let suite =
  [
    test "conc return/bind/map" conc_return_bind;
    test "conc fork interleaves" conc_fork_interleaves;
    test "conc mvar rendezvous" conc_mvar_rendezvous;
    test "conc mvar put blocks" conc_mvar_put_blocks;
    test "conc deadlock yields None" conc_deadlock_none;
    test "conc fib via fork+mvar" conc_fib_with_mvars;
    test "conc poll" conc_poll;
    test "lwt basics" lwt_basics;
    test "lwt wakeup" lwt_wakeup;
    test "lwt fail/catch" lwt_fail_catch;
    test "lwt bind on pending" lwt_bind_on_pending;
    test "lwt pause/join round robin" lwt_pause_join;
    test "lwt join failure" lwt_join_failure;
    test "lwt deadlock" lwt_deadlock;
    test "lwt mvar" lwt_mvar;
  ]
