module Micro = Retrofit_micro
module R = Retrofit_micro.Rec_bench

let test name f = Alcotest.test_case name `Quick f

let extern_calls () =
  Alcotest.(check int) "ext_id" 42 (Micro.Extern.ext_id 42);
  Alcotest.(check int) "ext_add" 7 (Micro.Extern.ext_add 3 4);
  Alcotest.(check int) "ext_callback" 5 (Micro.Extern.ext_callback 5);
  Alcotest.(check int) "extcall loop" 55 (Micro.Extern.extcall_loop 10);
  Alcotest.(check int) "callback loop" 55 (Micro.Extern.callback_loop 10)

let exn_loops () =
  Alcotest.(check int) "exnval sums" 55 (Micro.Exn_bench.exnval_loop 10);
  Alcotest.(check int) "exnraise sums" 55 (Micro.Exn_bench.exnraise_loop 10);
  Alcotest.(check int) "depth raise" 100 (Micro.Exn_bench.exn_depth_raise ~depth:100)

let rec_styles_agree () =
  let cases =
    [
      ("ack 2 3", fun (i : R.impl) -> i.R.ack 2 3);
      ("fib 15", fun i -> i.R.fib 15);
      ("motzkin 10", fun i -> i.R.motzkin 10);
      ("sudan 2 2 1", fun i -> i.R.sudan 2 2 1);
      ("tak 12 8 4", fun i -> i.R.tak 12 8 4);
    ]
  in
  List.iter
    (fun (name, f) ->
      let expected = R.reference name in
      List.iter
        (fun impl ->
          Alcotest.(check int) (name ^ "/" ^ impl.R.style) expected (f impl))
        R.all)
    cases

let known_values () =
  Alcotest.(check int) "ack 3 3" 61 (R.plain.R.ack 3 3);
  Alcotest.(check int) "fib 20" 6765 (R.plain.R.fib 20);
  Alcotest.(check int) "motzkin 12" 15511 (R.plain.R.motzkin 12);
  Alcotest.(check int) "tak 18 12 6" 7 (R.plain.R.tak 18 12 6)

let opcost_loops_compute () =
  Alcotest.(check int) "handler only" (Micro.Opcost.baseline_call_loop 100)
    (Micro.Opcost.handler_only_loop 100);
  Alcotest.(check int) "roundtrip same value" (Micro.Opcost.handler_only_loop 100)
    (Micro.Opcost.roundtrip_loop 100);
  Alcotest.(check int) "perform heavy same value"
    (Micro.Opcost.handler_only_loop 50)
    (Micro.Opcost.perform_heavy_loop ~iters:50 ~performs:4)

let chameneos_counts () =
  List.iter
    (fun (name, run) ->
      Alcotest.(check int) (name ^ " meetings") 400 (run ~meetings:200))
    [
      ("effects", Micro.Chameneos.run_effects);
      ("monad", Micro.Chameneos.run_monad);
      ("lwt", Micro.Chameneos.run_lwt);
    ]

let chameneos_zero () =
  Alcotest.(check int) "zero meetings" 0 (Micro.Chameneos.run_effects ~meetings:0)

let genbench_sums () =
  let depth = 8 in
  let expected = Micro.Genbench.expected_sum ~depth in
  Alcotest.(check int) "effect" expected (Micro.Genbench.effect_sum ~depth);
  Alcotest.(check int) "cps" expected (Micro.Genbench.cps_sum ~depth);
  Alcotest.(check int) "monad" expected (Micro.Genbench.monad_sum ~depth)

let finaliser_correct () =
  let depth = 8 in
  Alcotest.(check int) "finalised generator sum"
    (Micro.Genbench.expected_sum ~depth)
    (Micro.Finaliser.effect_sum_finalised ~depth);
  Alcotest.(check int) "finalised roundtrip"
    (Micro.Finaliser.roundtrip_plain 100)
    (Micro.Finaliser.roundtrip_finalised 100);
  (* give the GC a chance to run the finalisers without crashing *)
  Gc.full_major ();
  Gc.full_major ()

let suite =
  [
    test "extern calls" extern_calls;
    test "exception loops" exn_loops;
    test "recursive styles agree" rec_styles_agree;
    test "known values" known_values;
    test "opcost loops compute" opcost_loops_compute;
    test "chameneos counts" chameneos_counts;
    test "chameneos zero meetings" chameneos_zero;
    test "generator bench sums" genbench_sums;
    test "finaliser variants correct" finaliser_correct;
  ]
