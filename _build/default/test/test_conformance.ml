(* Differential conformance: the §4 semantics, the fiber machine, and
   native effects must agree on generated programs, the runtime auditor
   and DWARF round-trips must stay clean, and the harness itself must
   be able to catch a seeded bug (sensitivity check). *)

module C = Retrofit_conformance
module F = Retrofit_fiber

let test name f = Alcotest.test_case name `Quick f

(* Fixed campaign parameters: seed 11 is an arbitrary committed choice;
   240 programs leave slack over the 200-per-pair floor even if a few
   fuel out. *)
let tier1_seed = 11

let tier1_count = 240

let corpus_replays_clean () =
  match C.Fuzz.replay_corpus () with
  | [] -> ()
  | (name, problem) :: _ -> Alcotest.failf "corpus entry %s: %s" name problem

let generator_emits_valid_programs () =
  for seed = 0 to 199 do
    let p = C.Gen.program_of_seed seed in
    match C.Ir.validate p with
    | Ok () -> ()
    | Error msg ->
        Alcotest.failf "seed %d generated an invalid program: %s\n%s" seed msg
          (C.Ir.program_to_string p)
  done

let generator_is_deterministic () =
  for seed = 0 to 49 do
    let a = C.Gen.program_of_seed seed and b = C.Gen.program_of_seed seed in
    if a <> b then Alcotest.failf "seed %d is not replayable" seed
  done

let campaign_agrees () =
  let stats = C.Fuzz.campaign ~seed:tier1_seed ~count:tier1_count () in
  (match stats.C.Fuzz.failures with
  | [] -> ()
  | f :: _ -> Alcotest.failf "disagreement:\n%s" (C.Fuzz.failure_to_string f));
  List.iter
    (fun (pair, n) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s agreed on at least 200 programs (got %d)" pair n)
        true (n >= 200))
    stats.C.Fuzz.agreements;
  Alcotest.(check bool) "auditor ran" true (stats.C.Fuzz.audit_checks > 0);
  Alcotest.(check bool) "dwarf probes ran" true (stats.C.Fuzz.dwarf_probes > 0)

let campaign_is_deterministic () =
  let run () =
    C.Fuzz.campaign ~seed:tier1_seed ~count:40 ~dwarf:false ~shrink:false ()
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical stats" true
    (a.C.Fuzz.agreements = b.C.Fuzz.agreements
    && a.C.Fuzz.skips = b.C.Fuzz.skips
    && List.length a.C.Fuzz.failures = List.length b.C.Fuzz.failures)

(* Sensitivity: with the fiber machine's one-shot check disabled
   (multishot config), the differential harness must notice within 200
   programs, and the shrinker must cut the counterexample down to a
   small replayable core. *)
let catches_fiber_multishot_mutation () =
  let fiber_config = F.Config.with_multishot true F.Config.mc in
  let stats =
    C.Fuzz.campaign ~fiber_config ~seed:42 ~count:200 ~dwarf:false
      ~max_failures:1 ()
  in
  match stats.C.Fuzz.failures with
  | [] -> Alcotest.fail "disabled one-shot check went unnoticed for 200 programs"
  | f :: _ -> (
      Alcotest.(check bool) "caught within 200 programs" true (f.C.Fuzz.index < 200);
      match f.C.Fuzz.shrunk with
      | None -> Alcotest.fail "no shrunk repro"
      | Some q ->
          let n = C.Ir.program_nodes q in
          Alcotest.(check bool)
            (Printf.sprintf "shrunk repro has %d nodes (<= 15)" n)
            true (n <= 15))

(* Same check against the other side: a semantics machine allowed to
   resume continuations twice must disagree with the two faithful
   models. *)
let catches_semantics_multishot_mutation () =
  let stats =
    C.Fuzz.campaign ~sem_one_shot:false ~seed:42 ~count:200 ~dwarf:false
      ~max_failures:1 ~shrink:false ()
  in
  match stats.C.Fuzz.failures with
  | [] ->
      Alcotest.fail "multi-shot semantics machine went unnoticed for 200 programs"
  | f :: _ ->
      Alcotest.(check bool) "caught within 200 programs" true (f.C.Fuzz.index < 200)

(* The shrinker must preserve the property it is given and only emit
   well-formed programs. *)
let shrinker_preserves_interestingness () =
  let p = C.Gen.program_of_seed 3 in
  let target = C.Native_backend.run p in
  let interesting q = C.Outcome.equal (C.Native_backend.run q) target in
  let q = C.Shrink.minimize ~interesting p in
  (match C.Ir.validate q with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "shrunk program invalid: %s" msg);
  Alcotest.(check bool) "still interesting" true (interesting q);
  Alcotest.(check bool) "no larger than the original" true
    (C.Ir.program_nodes q <= C.Ir.program_nodes p)

(* One-shot / discontinue edge battery: beyond the oracle agreement the
   corpus already enforces, pin the traced outcome of each entry on the
   semantics and fiber models individually, so a lockstep drift of the
   whole stack cannot slip through. *)
let corpus_outcomes_pinned_per_model () =
  List.iter
    (fun (e : C.Corpus.entry) ->
      let sem = C.Sem_backend.run e.program in
      let fib = (C.Fiber_backend.run e.program).C.Fiber_backend.outcome in
      let check model got =
        if not (C.Outcome.equal got e.expect) then
          Alcotest.failf "%s: %s produced %s, traced expectation is %s" e.name model
            (C.Outcome.to_string got)
            (C.Outcome.to_string e.expect)
      in
      check "semantics" sem;
      check "fiber" fib)
    C.Corpus.entries

let suite =
  [
    test "corpus replays clean" corpus_replays_clean;
    test "corpus outcomes pinned per model" corpus_outcomes_pinned_per_model;
    test "generator emits valid programs" generator_emits_valid_programs;
    test "generator is deterministic" generator_is_deterministic;
    test "campaign: three models agree" campaign_agrees;
    test "campaign is deterministic" campaign_is_deterministic;
    test "catches disabled fiber one-shot check" catches_fiber_multishot_mutation;
    test "catches multi-shot semantics machine" catches_semantics_multishot_mutation;
    test "shrinker preserves interestingness" shrinker_preserves_interestingness;
  ]
