module M = Retrofit_macro

let test name f = Alcotest.test_case name `Quick f

let small_size w =
  let d = M.Workload.default_size w in
  match M.Workload.name w with
  | "binarytrees" -> 8
  | "nqueens" -> 7
  | "sexp" -> 8
  | "quicksort" -> 5_000
  | "levenshtein" -> 30
  | "game_of_life" -> 32
  | "mandelbrot" -> 64
  | "spectralnorm" -> 60
  | "lu_decomposition" -> 40
  | "grammatrix" -> 40
  | "json" -> 100
  | "huffman" -> 4_000
  | "kmeans" -> 600
  | _ -> max 1 (d / 10)

let checksums_agree_across_runtimes () =
  List.iter
    (fun w ->
      let size = small_size w in
      let reference = M.Workload.run_with w (List.hd M.Runtime.all) ~size in
      List.iter
        (fun r ->
          let v = M.Workload.run_with w r ~size in
          Alcotest.(check int)
            (Printf.sprintf "%s under %s"
               (M.Workload.name w)
               (let module R = (val r : M.Runtime.RUNTIME) in
                R.name))
            reference v)
        (List.tl M.Runtime.all))
    M.Registry.all

let expected_checksums () =
  List.iter
    (fun w ->
      let module W = (val w : M.Workload.S) in
      match W.expected with
      | None -> ()
      | Some expected ->
          let module I = W.Make (M.Runtime.Stock) in
          Alcotest.(check int) W.name expected (I.run ~size:W.default_size))
    M.Registry.all

let runs_are_deterministic () =
  List.iter
    (fun w ->
      let size = small_size w in
      let a = M.Workload.run_with w (module M.Runtime.Mc16) ~size in
      let b = M.Workload.run_with w (module M.Runtime.Mc16) ~size in
      Alcotest.(check int) (M.Workload.name w) a b)
    M.Registry.all

let registry_complete () =
  Alcotest.(check int) "19 workloads" 19 (List.length M.Registry.all);
  Alcotest.(check bool) "find" true (M.Registry.find "nbody" <> None);
  Alcotest.(check bool) "find missing" true (M.Registry.find "zzz" = None);
  let names = M.Registry.names () in
  Alcotest.(check int) "unique names" (List.length names)
    (List.length (List.sort_uniq compare names));
  Alcotest.(check bool) "inventories nonempty" true (M.Registry.total_functions () > 50)

let counting_runtime_counts () =
  M.Runtime.reset_check_count ();
  ignore
    (M.Workload.run_with
       (Option.get (M.Registry.find "nqueens"))
       (module M.Runtime.Mc16_counting)
       ~size:6);
  Alcotest.(check bool) "counted checks" true (M.Runtime.checks_counted () > 0)

let fn_meta_check_rules () =
  Alcotest.(check bool) "stock never" false
    (M.Fn_meta.checked ~red_zone:None M.Fn_meta.Nonleaf);
  Alcotest.(check bool) "nonleaf always under mc" true
    (M.Fn_meta.checked ~red_zone:(Some 16) M.Fn_meta.Nonleaf);
  Alcotest.(check bool) "small leaf elided rz16" false
    (M.Fn_meta.checked ~red_zone:(Some 16) M.Fn_meta.Leaf_small);
  Alcotest.(check bool) "small leaf checked rz0" true
    (M.Fn_meta.checked ~red_zone:(Some 0) M.Fn_meta.Leaf_small);
  Alcotest.(check bool) "mid leaf checked rz16" true
    (M.Fn_meta.checked ~red_zone:(Some 16) M.Fn_meta.Leaf_mid);
  Alcotest.(check bool) "mid leaf elided rz32" false
    (M.Fn_meta.checked ~red_zone:(Some 32) M.Fn_meta.Leaf_mid);
  Alcotest.(check bool) "big leaf checked rz32" true
    (M.Fn_meta.checked ~red_zone:(Some 32) M.Fn_meta.Leaf_big)

let otss_ordering () =
  List.iter
    (fun w ->
      let fns = M.Workload.functions w in
      let stock = M.Fn_meta.otss ~red_zone:None fns in
      let rz0 = M.Fn_meta.otss ~red_zone:(Some 0) fns in
      let rz16 = M.Fn_meta.otss ~red_zone:(Some 16) fns in
      let rz32 = M.Fn_meta.otss ~red_zone:(Some 32) fns in
      let name = M.Workload.name w in
      Alcotest.(check bool) (name ^ " rz0 largest") true (rz0 >= rz16);
      Alcotest.(check bool) (name ^ " rz16 >= rz32") true (rz16 >= rz32);
      Alcotest.(check bool) (name ^ " all >= stock") true (rz32 >= stock))
    M.Registry.all

let categories_span () =
  let categories =
    List.sort_uniq compare
      (List.map (fun w -> let module W = (val w : M.Workload.S) in W.category)
         M.Registry.all)
  in
  Alcotest.(check bool) "at least 6 categories" true (List.length categories >= 6)

let suite =
  [
    test "checksums agree across runtimes" checksums_agree_across_runtimes;
    test "known checksums" expected_checksums;
    test "determinism" runs_are_deterministic;
    test "registry complete" registry_complete;
    test "counting runtime" counting_runtime_counts;
    test "fn_meta check rules" fn_meta_check_rules;
    test "otss ordering" otss_ordering;
    test "categories span the suite" categories_span;
  ]
