test/test_core.ml: Alcotest Buffer Effect Fun List Printf Retrofit_core
