test/test_httpsim.ml: Alcotest List Printexc Printf QCheck QCheck_alcotest Retrofit_httpsim Retrofit_util String
