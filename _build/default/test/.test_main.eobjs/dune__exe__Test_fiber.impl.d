test/test_fiber.ml: Alcotest Array List Option QCheck QCheck_alcotest Retrofit_fiber Retrofit_util String
