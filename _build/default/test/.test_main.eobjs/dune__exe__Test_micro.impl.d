test/test_micro.ml: Alcotest Gc List Retrofit_micro
