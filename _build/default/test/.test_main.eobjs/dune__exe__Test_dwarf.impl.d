test/test_dwarf.ml: Alcotest Array List Option Printf QCheck QCheck_alcotest Retrofit_dwarf Retrofit_experiments Retrofit_fiber String
