test/test_util.ml: Alcotest Array Counter Float Fun Gen Histogram List Pqueue QCheck QCheck_alcotest Retrofit_harness Retrofit_util Rng Stats String Table
