test/test_util.ml: Alcotest Array Counter Float Fun Gen Histogram List Pqueue Printf QCheck QCheck_alcotest Retrofit_harness Retrofit_util Rng Stats String Table
