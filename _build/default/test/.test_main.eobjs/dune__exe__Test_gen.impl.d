test/test_gen.ml: Alcotest Fun List Printf QCheck QCheck_alcotest Retrofit_gen String
