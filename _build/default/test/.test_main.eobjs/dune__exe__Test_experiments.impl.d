test/test_experiments.ml: Alcotest Array Int64 List Printf Retrofit_experiments Retrofit_harness String Sys
