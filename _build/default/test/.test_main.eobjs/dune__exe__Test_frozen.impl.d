test/test_frozen.ml: Alcotest List Printf Retrofit_fiber Retrofit_util String
