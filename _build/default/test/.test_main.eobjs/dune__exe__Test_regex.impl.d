test/test_regex.ml: Alcotest QCheck QCheck_alcotest Retrofit_regex String
