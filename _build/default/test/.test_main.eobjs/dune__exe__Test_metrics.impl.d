test/test_metrics.ml: Alcotest List Retrofit_metrics Retrofit_util String
