test/test_crosslevel.ml: Alcotest Effect Fun List Printf QCheck QCheck_alcotest Retrofit_fiber Retrofit_micro Retrofit_semantics
