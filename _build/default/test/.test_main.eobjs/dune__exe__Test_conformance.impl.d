test/test_conformance.ml: Alcotest List Printf Retrofit_conformance Retrofit_fiber
