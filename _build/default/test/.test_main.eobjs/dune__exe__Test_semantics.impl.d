test/test_semantics.ml: Alcotest List QCheck QCheck_alcotest Retrofit_semantics
