test/test_vec.ml: Alcotest List QCheck QCheck_alcotest Retrofit_util Vec
