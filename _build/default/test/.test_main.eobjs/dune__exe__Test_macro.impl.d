test/test_macro.ml: Alcotest List Option Printf Retrofit_macro
