test/test_monad.ml: Alcotest Buffer List Printf Retrofit_monad
