module Trace = Retrofit_trace.Trace
module Event = Retrofit_trace.Event
module Export = Retrofit_trace.Export
module Metrics = Retrofit_metrics.Metrics
module F = Retrofit_fiber
module HS = Retrofit_httpsim

let test name f = Alcotest.test_case name `Quick f

let mark i = { Event.ts = i; ev = Event.Mark { name = Printf.sprintf "m%d" i } }

(* ---------------- Ring buffer ---------------- *)

let ring_exact_capacity () =
  let r = Trace.create ~capacity:4 in
  for i = 1 to 4 do
    Trace.add r (mark i)
  done;
  Alcotest.(check int) "length" 4 (Trace.length r);
  Alcotest.(check int) "capacity" 4 (Trace.capacity r);
  Alcotest.(check int) "nothing dropped at exactly capacity" 0 (Trace.dropped r);
  Alcotest.(check (list int)) "oldest first" [ 1; 2; 3; 4 ]
    (List.map (fun (e : Event.t) -> e.ts) (Trace.to_list r))

let ring_wraparound_drops_oldest () =
  let r = Trace.create ~capacity:4 in
  for i = 1 to 7 do
    Trace.add r (mark i)
  done;
  Alcotest.(check int) "length stays at capacity" 4 (Trace.length r);
  Alcotest.(check int) "dropped counts the overwrites" 3 (Trace.dropped r);
  Alcotest.(check (list int)) "oldest events evicted first" [ 4; 5; 6; 7 ]
    (List.map (fun (e : Event.t) -> e.ts) (Trace.to_list r));
  (* one more wraps again *)
  Trace.add r (mark 8);
  Alcotest.(check (list int)) "steady-state window" [ 5; 6; 7; 8 ]
    (List.map (fun (e : Event.t) -> e.ts) (Trace.to_list r));
  Alcotest.(check int) "dropped keeps counting" 4 (Trace.dropped r)

let ring_rejects_bad_capacity () =
  Alcotest.(check bool) "capacity 0 rejected" true
    (match Trace.create ~capacity:0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let overflow_increments_dropped_metric () =
  Metrics.reset Metrics.default;
  let (), _ring =
    Metrics.scoped (fun _ ->
        Trace.scoped ~capacity:2 (fun () ->
            for i = 1 to 5 do
              Trace.emit ~ts:i (Event.Mark { name = "x" })
            done))
  in
  Alcotest.(check int) "trace_dropped_events counts the loss" 3
    (Metrics.get "trace_dropped_events")

(* ---------------- Session semantics ---------------- *)

let disabled_emit_is_noop () =
  Alcotest.(check bool) "off by default" false (Trace.on ());
  Trace.emit ~ts:1 (Event.Mark { name = "ignored" });
  Alcotest.(check int) "no events without a session" 0
    (List.length (Trace.events ()))

let scoped_nests_and_restores () =
  let (), outer =
    Trace.scoped (fun () ->
        Trace.emit ~ts:1 (Event.Mark { name = "outer" });
        let (), inner =
          Trace.scoped (fun () ->
              Alcotest.(check bool) "on inside" true (Trace.on ());
              Trace.emit ~ts:2 (Event.Mark { name = "inner" }))
        in
        Alcotest.(check int) "inner ring sees only inner" 1 (Trace.length inner);
        (* the outer session is restored after the inner scope *)
        Trace.emit ~ts:3 (Event.Mark { name = "outer again" }))
  in
  Alcotest.(check bool) "off after scope" false (Trace.on ());
  Alcotest.(check (list int)) "outer ring unaffected by inner scope" [ 1; 3 ]
    (List.map (fun (e : Event.t) -> e.ts) (Trace.to_list outer))

(* ---------------- Exporters and the schema checker ---------------- *)

let traced_machine_run () =
  let compiled =
    F.Compile.compile (F.Programs.effect_depth ~depth:4 ~iters:20)
  in
  Trace.scoped (fun () ->
      match F.Machine.run ~cfuns:F.Programs.standard_cfuns F.Config.mc compiled with
      | F.Machine.Done _, counters -> counters
      | _ -> Alcotest.fail "effect_depth failed")

let chrome_export_validates () =
  let _counters, ring = traced_machine_run () in
  Alcotest.(check bool) "machine emitted events" true (Trace.length ring > 0);
  let json = Export.of_trace_chrome ring in
  match Export.validate_chrome json with
  | Ok n -> Alcotest.(check int) "validator sees every event" (Trace.length ring) n
  | Error e -> Alcotest.failf "schema checker rejected our own export: %s" e

let validator_rejects_malformed () =
  let reject s =
    match Export.validate_chrome s with
    | Ok _ -> Alcotest.failf "accepted malformed input %S" s
    | Error _ -> ()
  in
  reject "";
  reject "not json";
  reject "[1,2,3]";
  reject "{\"traceEvents\": 5}";
  reject "{\"traceEvents\": [5]}";
  reject "{\"traceEvents\": [{\"name\": \"x\"}]}";
  (* unknown phase letter *)
  reject
    "{\"traceEvents\": [{\"name\":\"x\",\"cat\":\"c\",\"ph\":\"Z\",\"ts\":0,\
     \"pid\":1,\"tid\":1}]}";
  (* complete event without dur *)
  reject
    "{\"traceEvents\": [{\"name\":\"x\",\"cat\":\"c\",\"ph\":\"X\",\"ts\":0,\
     \"pid\":1,\"tid\":1}]}"

let text_export_covers_events () =
  let _counters, ring = traced_machine_run () in
  let text = Export.of_trace_text ring in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
  in
  Alcotest.(check int) "one line per event" (Trace.length ring) (List.length lines)

(* ---------------- Determinism ---------------- *)

let machine_trace_deterministic () =
  let _c1, r1 = traced_machine_run () in
  let _c2, r2 = traced_machine_run () in
  Alcotest.(check string) "byte-identical chrome export"
    (Export.of_trace_chrome r1) (Export.of_trace_chrome r2);
  Alcotest.(check string) "byte-identical text export"
    (Export.of_trace_text r1) (Export.of_trace_text r2)

let websim_trace_deterministic () =
  (* the seeded websim workload: resilient loadgen under fault injection,
     exactly what `retrofit websim --trace` records *)
  let go () =
    let model, process = List.hd HS.Experiment.servers in
    Trace.scoped (fun () ->
        ignore
          (HS.Loadgen.run ~seed:11
             ~faults:(HS.Faults.scale 0.5 HS.Faults.default)
             ~model ~process ~rate_rps:2_000 ~duration_ms:150 ()))
  in
  let (), r1 = go () in
  let (), r2 = go () in
  Alcotest.(check bool) "loadgen emitted events" true (Trace.length r1 > 0);
  Alcotest.(check string) "byte-identical websim eventlog"
    (Export.of_trace_chrome r1) (Export.of_trace_chrome r2)

let fuzz_campaign_trace_deterministic () =
  let go () =
    Trace.scoped (fun () ->
        ignore (Retrofit_conformance.Fuzz.campaign ~seed:3 ~count:15 ()))
  in
  let (), r1 = go () in
  let (), r2 = go () in
  Alcotest.(check string) "byte-identical fuzz-campaign eventlog"
    (Export.of_trace_chrome r1) (Export.of_trace_chrome r2)

let counters_unchanged_by_tracing () =
  (* enabling the eventlog must not move a single cost counter, or the
     pinned Table 1/2 outputs would drift *)
  let compiled =
    F.Compile.compile (F.Programs.effect_depth ~depth:4 ~iters:20)
  in
  let run () =
    F.Machine.run ~cfuns:F.Programs.standard_cfuns F.Config.mc compiled
  in
  let _, off = run () in
  let (_, on), _ring = Trace.scoped run in
  Alcotest.(check bool) "counter tables identical" true
    (Retrofit_util.Counter.to_list off = Retrofit_util.Counter.to_list on)

let suite =
  [
    test "ring at exact capacity" ring_exact_capacity;
    test "ring wraparound drops oldest" ring_wraparound_drops_oldest;
    test "ring rejects capacity 0" ring_rejects_bad_capacity;
    test "overflow increments trace_dropped_events" overflow_increments_dropped_metric;
    test "disabled emit is a no-op" disabled_emit_is_noop;
    test "scoped sessions nest and restore" scoped_nests_and_restores;
    test "chrome export passes the schema checker" chrome_export_validates;
    test "schema checker rejects malformed input" validator_rejects_malformed;
    test "text export covers every event" text_export_covers_events;
    test "machine eventlog deterministic" machine_trace_deterministic;
    test "websim eventlog deterministic" websim_trace_deterministic;
    test "fuzz-campaign eventlog deterministic" fuzz_campaign_trace_deterministic;
    test "tracing leaves cost counters untouched" counters_unchanged_by_tracing;
  ]
