module R = Retrofit_regex

let test name f = Alcotest.test_case name `Quick f

let re = R.Engine.of_string

let check_match name pattern subject expected =
  Alcotest.(check bool) name expected (R.Engine.is_match (re pattern) subject)

let literals () =
  check_match "simple" "abc" "xxabcxx" true;
  check_match "missing" "abc" "xxabxcx" false;
  check_match "empty subject" "a" "" false;
  check_match "escaped star" "a\\*b" "a*b" true

let classes () =
  check_match "class" "[abc]x" "bx" true;
  check_match "class miss" "[abc]x" "dx" false;
  check_match "range" "[a-f]9" "c9" true;
  check_match "range miss" "[a-f]9" "g9" false;
  check_match "negated" "[^0-9]z" "az" true;
  check_match "negated miss" "[^0-9]z" "5z" false

let repetition () =
  check_match "star zero" "ab*c" "ac" true;
  check_match "star many" "ab*c" "abbbbc" true;
  check_match "plus zero" "ab+c" "ac" false;
  check_match "plus one" "ab+c" "abc" true;
  check_match "opt" "ab?c" "ac" true;
  check_match "opt one" "ab?c" "abc" true;
  check_match "opt two" "xab?bc" "xabbc" true

let alternation () =
  check_match "alt left" "cat|dog" "a cat" true;
  check_match "alt right" "cat|dog" "a dog" true;
  check_match "alt none" "cat|dog" "a cow" false;
  check_match "grouping" "a(b|c)d" "acd" true

let find_positions () =
  let r = re "b+" in
  Alcotest.(check (option (pair int int))) "find" (Some (2, 3))
    (R.Engine.find r "aabbba");
  Alcotest.(check (option (pair int int))) "find from" (Some (8, 1))
    (R.Engine.find r ~start:6 "aabbba  b");
  Alcotest.(check (option (pair int int))) "no find" None (R.Engine.find r "aaa")

let longest_match () =
  (* leftmost-longest: at position 0, a* matches as much as possible *)
  let r = re "ab*" in
  Alcotest.(check (option (pair int int))) "longest" (Some (0, 4))
    (R.Engine.find r "abbbc")

let count_tests () =
  Alcotest.(check int) "count" 3 (R.Engine.count (re "aa") "aaaaaa");
  Alcotest.(check int) "count alt" 2 (R.Engine.count (re "cat|dog") "cat dog cow");
  Alcotest.(check int) "count none" 0 (R.Engine.count (re "zz") "aaa");
  (* the regex-redux pattern shape *)
  Alcotest.(check int) "dna variant" 2
    (R.Engine.count (re "agggtaaa|tttaccct") "xagggtaaax tttaccct")

let replace_tests () =
  Alcotest.(check string) "replace" "X X cow"
    (R.Engine.replace_all (re "cat|dog") ~by:"X" "cat dog cow");
  Alcotest.(check string) "replace classes" "D-D-D"
    (R.Engine.replace_all (re "[0-9]+") ~by:"D" "12-345-6");
  Alcotest.(check string) "no match unchanged" "hello"
    (R.Engine.replace_all (re "zz") ~by:"X" "hello")

let split_tests () =
  Alcotest.(check (list string)) "split" [ "a"; "b"; "c" ]
    (R.Engine.split_on (re ",") "a,b,c");
  Alcotest.(check (list string)) "split no match" [ "abc" ]
    (R.Engine.split_on (re ",") "abc")

let parse_errors () =
  let bad p =
    match R.Parse.parse p with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "unclosed paren" true (bad "(ab");
  Alcotest.(check bool) "unclosed class" true (bad "[ab");
  Alcotest.(check bool) "dangling star" true (bad "*a");
  Alcotest.(check bool) "trailing paren" true (bad "ab)");
  Alcotest.(check bool) "empty class" true (bad "[]");
  Alcotest.(check bool) "inverted range" true (bad "[z-a]")

let dot_matches () =
  check_match "dot" "a.c" "abc" true;
  check_match "dot not newline" "a.c" "a\nc" false

let nfa_properties () =
  let nfa = R.Nfa.compile (R.Parse.parse_exn "ab|cd") in
  Alcotest.(check bool) "can start a" true (R.Nfa.can_start nfa 'a');
  Alcotest.(check bool) "can start c" true (R.Nfa.can_start nfa 'c');
  Alcotest.(check bool) "cannot start b" false (R.Nfa.can_start nfa 'b');
  Alcotest.(check bool) "not nullable" false (R.Nfa.nullable nfa);
  let star = R.Nfa.compile (R.Parse.parse_exn "a*") in
  Alcotest.(check bool) "star nullable" true (R.Nfa.nullable star)

(* Property: the printer emits a pattern that reparses to an equal AST. *)
let gen_syntax =
  let open QCheck.Gen in
  let lit = map (fun c -> R.Syntax.Char c) (char_range 'a' 'z') in
  let cls =
    map
      (fun (lo, hi) ->
        let lo, hi = if lo <= hi then (lo, hi) else (hi, lo) in
        R.Syntax.Class { negated = false; ranges = [ (lo, hi) ] })
      (pair (char_range 'a' 'z') (char_range 'a' 'z'))
  in
  let base = oneof [ lit; cls; return R.Syntax.Any ] in
  let rec go depth =
    if depth = 0 then base
    else
      frequency
        [
          (3, base);
          (2, map2 (fun a b -> R.Syntax.Seq (a, b)) (go (depth - 1)) (go (depth - 1)));
          (2, map2 (fun a b -> R.Syntax.Alt (a, b)) (go (depth - 1)) (go (depth - 1)));
          (1, map (fun a -> R.Syntax.Star a) (go (depth - 1)));
          (1, map (fun a -> R.Syntax.Plus a) (go (depth - 1)));
          (1, map (fun a -> R.Syntax.Opt a) (go (depth - 1)));
        ]
  in
  go 4

let prop_print_parse =
  QCheck.Test.make ~name:"print/parse roundtrip" ~count:300
    (QCheck.make ~print:R.Syntax.to_string gen_syntax)
    (fun ast ->
      match R.Parse.parse (R.Syntax.to_string ast) with
      | Ok ast' -> R.Syntax.equal ast ast'
      | Error _ -> false)

(* Property: count agrees with a naive scan using is_match on slices for
   single-char literal patterns. *)
let prop_count_char =
  QCheck.Test.make ~name:"count of a literal char = occurrences" ~count:200
    QCheck.(
      pair
        (make QCheck.Gen.(char_range 'a' 'c'))
        (string_gen_of_size (QCheck.Gen.int_range 0 40) QCheck.Gen.(char_range 'a' 'c')))
    (fun (c, s) ->
      let r = re (String.make 1 c) in
      let naive = String.fold_left (fun acc x -> if x = c then acc + 1 else acc) 0 s in
      R.Engine.count r s = naive)

let prop_replace_removes =
  QCheck.Test.make ~name:"replace_all leaves no matches" ~count:100
    QCheck.(string_gen_of_size (QCheck.Gen.int_range 0 30) (QCheck.Gen.char_range 'a' 'c'))
    (fun s ->
      let r = re "ab" in
      not (R.Engine.is_match r (R.Engine.replace_all r ~by:"X" s)))

let suite =
  [
    test "literals" literals;
    test "classes" classes;
    test "repetition" repetition;
    test "alternation" alternation;
    test "find positions" find_positions;
    test "leftmost longest" longest_match;
    test "count" count_tests;
    test "replace" replace_tests;
    test "split" split_tests;
    test "parse errors" parse_errors;
    test "dot" dot_matches;
    test "nfa properties" nfa_properties;
    QCheck_alcotest.to_alcotest prop_print_parse;
    QCheck_alcotest.to_alcotest prop_count_char;
    QCheck_alcotest.to_alcotest prop_replace_removes;
  ]
