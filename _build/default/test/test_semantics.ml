module S = Retrofit_semantics

let test name f = Alcotest.test_case name `Quick f

(* ---------------- Lexer / Parser ---------------- *)

let lex_basics () =
  let toks = S.Lexer.tokenize "let x = 1 in x + 2" |> List.map fst in
  Alcotest.(check int) "count" 9 (List.length toks);
  Alcotest.(check string) "first" "let" (S.Lexer.token_to_string (List.hd toks))

let lex_comments () =
  let toks = S.Lexer.tokenize "1 (* a (* nested *) b *) + 2" |> List.map fst in
  Alcotest.(check int) "comment skipped" 4 (List.length toks)

let lex_errors () =
  Alcotest.(check bool) "illegal char" true
    (match S.Lexer.tokenize "a # b" with
    | _ -> false
    | exception Failure _ -> true);
  Alcotest.(check bool) "unterminated comment" true
    (match S.Lexer.tokenize "(* oops" with
    | _ -> false
    | exception Failure _ -> true)

let parse_ok src =
  match S.Parser.parse src with
  | Ok ast -> ast
  | Error msg -> Alcotest.failf "parse %S failed: %s" src msg

let parse_shapes () =
  (match parse_ok "1 + 2 * 3" with
  | S.Ast.Binop (S.Ast.Add, _, S.Ast.Binop (S.Ast.Mul, _, _)) -> ()
  | _ -> Alcotest.fail "precedence");
  (match parse_ok "f x y" with
  | S.Ast.App (S.Ast.App (S.Ast.Var "f", _), _) -> ()
  | _ -> Alcotest.fail "application left assoc");
  (match parse_ok "fun x -> x" with
  | S.Ast.Lam (S.Ast.OCaml_lam, "x", _) -> ()
  | _ -> Alcotest.fail "fun");
  match parse_ok "cfun x -> x" with
  | S.Ast.Lam (S.Ast.C_lam, "x", _) -> ()
  | _ -> Alcotest.fail "cfun"

let parse_match_cases () =
  match
    parse_ok
      "match 1 with v -> v | exception E x -> 0 | effect (F y) k -> continue k 1 end"
  with
  | S.Ast.Match (_, h) ->
      Alcotest.(check int) "exn cases" 1 (List.length h.S.Ast.exn_cases);
      Alcotest.(check int) "eff cases" 1 (List.length h.S.Ast.eff_cases);
      Alcotest.(check string) "return var" "v" h.S.Ast.return_var
  | _ -> Alcotest.fail "match"

let parse_errors () =
  let bad src = match S.Parser.parse src with Ok _ -> false | Error _ -> true in
  Alcotest.(check bool) "missing end" true (bad "match 1 with v -> v");
  Alcotest.(check bool) "trailing" true (bad "1 2 )");
  Alcotest.(check bool) "lonely arrow" true (bad "-> 3");
  Alcotest.(check bool) "missing in" true (bad "let x = 1 x")

let pp_roundtrip () =
  List.iter
    (fun (ex : S.Examples.t) ->
      let ast = parse_ok ex.source in
      let printed = S.Ast.to_string ast in
      match S.Parser.parse printed with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "%s reprint failed: %s\n%s" ex.name msg printed)
    S.Examples.all

let free_vars () =
  let ast = parse_ok "fun x -> x + y" in
  Alcotest.(check (list string)) "free" [ "y" ] (S.Ast.free_vars ast);
  let closed = parse_ok "let rec f n = if n = 0 then 0 else f (n - 1) in f 3" in
  Alcotest.(check (list string)) "closed" [] (S.Ast.free_vars closed)

(* ---------------- Machine ---------------- *)

let all_examples () =
  List.iter
    (fun (ex : S.Examples.t) ->
      match S.Examples.check ex with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" ex.name msg)
    S.Examples.all

let expect_int src n =
  Alcotest.(check int) src n (S.Machine.int_result (S.Machine.run_string src))

let expect_uncaught src label =
  match S.Machine.run_string src with
  | S.Machine.Uncaught_exception (l, _) -> Alcotest.(check string) src label l
  | other -> Alcotest.failf "%s: expected uncaught %s, got %s" src label
               (S.Machine.result_to_string other)

let machine_rules () =
  (* RetFib: nested return cases compose *)
  expect_int "match (match 1 with v -> v + 1 end) with v -> v * 10 end" 20;
  (* deep handler: a second perform is handled by the same handler *)
  expect_int
    "match perform A 0 + perform A 0 with v -> v | effect (A x) k -> continue k 21 end"
    42;
  (* effect payload can be a computation including calls *)
  expect_int
    "let rec f n = if n = 0 then 0 else 1 + f (n - 1) in\n\
     match perform E (f 5) with v -> v | effect (E x) k -> continue k (x * x) end"
    25;
  (* exceptions raised in handler bodies propagate from the handler *)
  expect_uncaught
    "match perform E 0 with v -> v | effect (E x) k -> raise Oops 1 end" "Oops";
  (* handler return case sees the discontinued computation's recovery *)
  expect_int
    "match (match perform E 0 with v -> v | exception Stop x -> 5 end) with\n\
     v -> v * 2 | effect (E x) k -> discontinue k Stop 0 end"
    10

let machine_c_stack_rules () =
  (* a cfun can call another cfun: CallC *)
  expect_int "let f = cfun x -> x + 1 in let g = cfun x -> f (x * 2) in g 3" 7;
  (* callback inside extcall inside callback: deep meander *)
  expect_int
    "let inner = fun x -> x + 1 in\n\
     let c1 = cfun x -> inner x in\n\
     let outer = fun x -> c1 x in\n\
     let c2 = cfun x -> outer x in c2 40"
    41;
  (* exception crosses two C boundaries *)
  expect_int
    "let boom = fun x -> raise B x in\n\
     let c1 = cfun x -> boom x in\n\
     let mid = fun x -> c1 x in\n\
     let c2 = cfun x -> mid x in\n\
     match c2 42 with v -> 0 | exception B x -> x end"
    42

let machine_stuck_states () =
  let stuck src =
    match S.Machine.run_string src with
    | S.Machine.Stuck_config _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "apply int" true (stuck "1 2");
  Alcotest.(check bool) "unbound" true (stuck "x + 1");
  Alcotest.(check bool) "arith on closure" true (stuck "(fun x -> x) + 1");
  (* installing a handler on the C stack is impossible in real OCaml and
     stuck in the semantics *)
  Alcotest.(check bool) "handler in C" true
    (stuck "let f = cfun x -> match x with v -> v end in f 1")

let machine_fuel () =
  match S.Machine.run ~fuel:50 (S.Parser.parse_exn "let rec f x = f x in f 0") with
  | S.Machine.Out_of_fuel _ -> ()
  | other -> Alcotest.failf "expected out of fuel, got %s" (S.Machine.result_to_string other)

let machine_div_zero () =
  expect_uncaught "1 / 0" "Division_by_zero";
  expect_int "match 1 / 0 with v -> v | exception Division_by_zero x -> 9 end" 9

let steps_are_deterministic () =
  let src = "let rec fib n = if n < 2 then n else fib (n-1) + fib (n-2) in fib 10" in
  let ast = S.Parser.parse_exn src in
  let s1, r1 = S.Machine.steps_taken ast in
  let s2, r2 = S.Machine.steps_taken ast in
  Alcotest.(check int) "same steps" s1 s2;
  Alcotest.(check int) "same result" (S.Machine.int_result r1) (S.Machine.int_result r2)

(* Property: for random arithmetic ASTs, the machine agrees with a
   direct evaluator. *)
let gen_arith =
  let open QCheck.Gen in
  let rec go depth =
    if depth = 0 then map (fun n -> S.Ast.Int n) (int_range (-20) 20)
    else
      frequency
        [
          (1, map (fun n -> S.Ast.Int n) (int_range (-20) 20));
          ( 3,
            map3
              (fun op a b -> S.Ast.Binop (op, a, b))
              (oneofl [ S.Ast.Add; S.Ast.Sub; S.Ast.Mul; S.Ast.Lt; S.Ast.Le; S.Ast.Eq ])
              (go (depth - 1)) (go (depth - 1)) );
          ( 1,
            map3
              (fun c t f -> S.Ast.If (c, t, f))
              (go (depth - 1)) (go (depth - 1)) (go (depth - 1)) );
        ]
  in
  go 5

let rec eval_direct (e : S.Ast.t) =
  match e with
  | S.Ast.Int n -> n
  | S.Ast.Binop (op, a, b) -> (
      let a = eval_direct a and b = eval_direct b in
      match op with
      | S.Ast.Add -> a + b
      | S.Ast.Sub -> a - b
      | S.Ast.Mul -> a * b
      | S.Ast.Lt -> if a < b then 1 else 0
      | S.Ast.Le -> if a <= b then 1 else 0
      | S.Ast.Eq -> if a = b then 1 else 0
      | S.Ast.Div -> a / b)
  | S.Ast.If (c, t, f) -> if eval_direct c <> 0 then eval_direct t else eval_direct f
  | _ -> failwith "not arithmetic"

let prop_machine_arith =
  QCheck.Test.make ~name:"machine agrees with direct evaluation" ~count:300
    (QCheck.make ~print:S.Ast.to_string gen_arith)
    (fun ast -> S.Machine.int_result (S.Machine.run ast) = eval_direct ast)

(* Property: stack depth returns to base after successful evaluation —
   checked implicitly by termination with Value; here we check fiber
   count is zero fibers beyond the callback fiber at completion by
   running examples with a trace that records the max. *)
let fiber_counts_bounded () =
  let max_fibers = ref 0 in
  let src =
    "let rec go n = if n = 0 then 0 else\n\
     (match perform T 0 with v -> v | effect (T u) k -> continue k 1 end) + go (n - 1)\n\
     in go 5"
  in
  let result =
    S.Machine.run
      ~trace:(fun cfg ->
        max_fibers := max !max_fibers (S.Syntax.fiber_count cfg.S.Syntax.stack))
      (S.Parser.parse_exn src)
  in
  Alcotest.(check int) "result" 5 (S.Machine.int_result result);
  Alcotest.(check bool) "handlers bounded" true (!max_fibers <= 3)

let suite =
  [
    test "lexer basics" lex_basics;
    test "lexer comments" lex_comments;
    test "lexer errors" lex_errors;
    test "parser shapes" parse_shapes;
    test "parser match cases" parse_match_cases;
    test "parser errors" parse_errors;
    test "printer/parser roundtrip on examples" pp_roundtrip;
    test "free variables" free_vars;
    test "all built-in examples" all_examples;
    test "handler rules" machine_rules;
    test "C stack rules" machine_c_stack_rules;
    test "stuck states" machine_stuck_states;
    test "fuel exhaustion" machine_fuel;
    test "division by zero" machine_div_zero;
    test "determinism" steps_are_deterministic;
    test "fiber counts bounded" fiber_counts_bounded;
    QCheck_alcotest.to_alcotest prop_machine_arith;
  ]
