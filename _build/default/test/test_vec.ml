open Retrofit_util

let test name f = Alcotest.test_case name `Quick f

let check_int = Alcotest.(check int)

let push_pop () =
  let v = Vec.create () in
  Alcotest.(check bool) "empty" true (Vec.is_empty v);
  for i = 0 to 99 do
    Vec.push v i
  done;
  check_int "length" 100 (Vec.length v);
  check_int "top" 99 (Vec.top v);
  check_int "pop" 99 (Vec.pop v);
  check_int "length after pop" 99 (Vec.length v);
  check_int "get" 42 (Vec.get v 42)

let bounds () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec: index 3 out of bounds (len 3)")
    (fun () -> ignore (Vec.get v 3));
  Alcotest.check_raises "neg" (Invalid_argument "Vec: index -1 out of bounds (len 3)")
    (fun () -> ignore (Vec.get v (-1)));
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop: empty") (fun () ->
      ignore (Vec.pop (Vec.create ())))

let truncate_clear () =
  let v = Vec.of_list [ 1; 2; 3; 4; 5 ] in
  Vec.truncate v 2;
  Alcotest.(check (list int)) "truncated" [ 1; 2 ] (Vec.to_list v);
  Vec.clear v;
  check_int "cleared" 0 (Vec.length v)

let set_get () =
  let v = Vec.of_list [ 10; 20; 30 ] in
  Vec.set v 1 99;
  Alcotest.(check (list int)) "set" [ 10; 99; 30 ] (Vec.to_list v)

let conversions () =
  let v = Vec.of_list [ 3; 1; 2 ] in
  Alcotest.(check (array int)) "to_array" [| 3; 1; 2 |] (Vec.to_array v);
  let w = Vec.map (fun x -> x * 2) v in
  Alcotest.(check (list int)) "map" [ 6; 2; 4 ] (Vec.to_list w);
  check_int "fold" 6 (Vec.fold_left ( + ) 0 v);
  Alcotest.(check bool) "exists" true (Vec.exists (fun x -> x = 1) v);
  Alcotest.(check bool) "not exists" false (Vec.exists (fun x -> x = 9) v)

let copy_independent () =
  let v = Vec.of_list [ 1; 2 ] in
  let w = Vec.copy v in
  Vec.push w 3;
  check_int "orig" 2 (Vec.length v);
  check_int "copy" 3 (Vec.length w)

let iteri_order () =
  let v = Vec.of_list [ 5; 6; 7 ] in
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check (list (pair int int))) "iteri" [ (0, 5); (1, 6); (2, 7) ] (List.rev !acc)

let prop_roundtrip =
  QCheck.Test.make ~name:"vec of_list/to_list roundtrip" ~count:200
    QCheck.(list int)
    (fun xs -> Vec.to_list (Vec.of_list xs) = xs)

let prop_push_pop =
  QCheck.Test.make ~name:"vec push then pop-all reverses" ~count:200
    QCheck.(list int)
    (fun xs ->
      let v = Vec.create () in
      List.iter (Vec.push v) xs;
      let out = ref [] in
      while not (Vec.is_empty v) do
        out := Vec.pop v :: !out
      done;
      !out = xs)

let suite =
  [
    test "push/pop/get" push_pop;
    test "bounds checking" bounds;
    test "truncate and clear" truncate_clear;
    test "set" set_get;
    test "conversions" conversions;
    test "copy is independent" copy_independent;
    test "iteri order" iteri_order;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_push_pop;
  ]
