(* Cross-level validation: the same computations expressed in the
   formal semantics (§4), on the fiber machine (§5), and on OCaml 5
   itself must agree — and where the levels intentionally differ
   (multi-shot semantics vs one-shot implementations, §5.2), the
   difference itself is pinned. *)

module S = Retrofit_semantics
module F = Retrofit_fiber
module R = Retrofit_micro.Rec_bench

let test name f = Alcotest.test_case name `Quick f

let sem src = S.Machine.int_result (S.Machine.run_string src)

let fib_src n =
  Printf.sprintf
    "let rec fib n = if n < 2 then n else fib (n-1) + fib (n-2) in fib %d" n

let machine ?cfuns p =
  match F.Machine.run ?cfuns F.Config.mc (F.Compile.compile p) with
  | F.Machine.Done v, _ -> v
  | F.Machine.Uncaught (l, _), _ -> Alcotest.failf "machine uncaught %s" l
  | F.Machine.Fatal m, _ -> Alcotest.failf "machine fatal %s" m

let machine_uncaught p =
  match F.Machine.run F.Config.mc (F.Compile.compile p) with
  | F.Machine.Uncaught (l, _), _ -> l
  | _ -> Alcotest.fail "expected an uncaught exception"

(* ---------------- pure recursion ---------------- *)

let fib_three_levels () =
  List.iter
    (fun n ->
      let native = R.plain.R.fib n in
      Alcotest.(check int) (Printf.sprintf "semantics fib %d" n) native
        (sem (fib_src n));
      Alcotest.(check int) (Printf.sprintf "machine fib %d" n) native
        (machine (F.Programs.fib ~n)))
    [ 0; 1; 2; 7; 12 ]

let ack_three_levels () =
  let native = R.plain.R.ack 2 3 in
  Alcotest.(check int) "semantics" native
    (sem
       "let rec ack m = fun n ->\n\
        if m = 0 then n + 1 else\n\
        if n = 0 then (ack (m - 1)) 1 else\n\
        (ack (m - 1)) ((ack m) (n - 1)) in (ack 2) 3");
  Alcotest.(check int) "machine" native (machine (F.Programs.ack ~m:2 ~n:3))

let tak_three_levels () =
  let native = R.plain.R.tak 12 8 4 in
  Alcotest.(check int) "machine" native (machine (F.Programs.tak ~x:12 ~y:8 ~z:4))

(* ---------------- effects ---------------- *)

(* sum of yields 1..n: counter_effect on the machine, the same handler
   in the semantics and on OCaml 5 *)

type _ Effect.t += Tick : int -> int Effect.t

let native_counter upto =
  let rec body i = if i = 0 then 0 else Effect.perform (Tick i) + body (i - 1) in
  Effect.Deep.match_with body upto
    {
      Effect.Deep.retc = Fun.id;
      exnc = raise;
      effc =
        (fun (type c) (eff : c Effect.t) ->
          match eff with
          | Tick x ->
              Some
                (fun (k : (c, int) Effect.Deep.continuation) ->
                  x + Effect.Deep.continue k 0)
          | _ -> None);
    }

let counter_three_levels () =
  List.iter
    (fun upto ->
      let native = native_counter upto in
      Alcotest.(check int) "triangular" (upto * (upto + 1) / 2) native;
      Alcotest.(check int)
        (Printf.sprintf "semantics counter %d" upto)
        native
        (sem
           (Printf.sprintf
              "let rec loop i = if i = 0 then 0 else perform Tick i + loop (i - 1) in\n\
               match loop %d with v -> v | effect (Tick x) k -> x + continue k 0 end"
              upto));
      Alcotest.(check int)
        (Printf.sprintf "machine counter %d" upto)
        native
        (machine (F.Programs.counter_effect ~upto)))
    [ 1; 5; 10 ]

(* discontinue-based cleanup agrees everywhere *)

exception Cancel of int

type _ Effect.t += Ask : unit Effect.t

let native_discontinue () =
  Effect.Deep.match_with
    (fun () -> try (Effect.perform Ask; 0) with Cancel x -> x + 1)
    ()
    {
      Effect.Deep.retc = Fun.id;
      exnc = raise;
      effc =
        (fun (type c) (eff : c Effect.t) ->
          match eff with
          | Ask ->
              Some
                (fun (k : (c, int) Effect.Deep.continuation) ->
                  Effect.Deep.discontinue k (Cancel 41))
          | _ -> None);
    }

let discontinue_three_levels () =
  let native = native_discontinue () in
  Alcotest.(check int) "native" 42 native;
  Alcotest.(check int) "semantics" native
    (sem
       "let body = fun u ->\n\
        match perform Ask 0 with v -> v | exception Cancel x -> x + 1 end in\n\
        match body 0 with v -> v | effect (Ask u) k -> discontinue k Cancel 41 end");
  Alcotest.(check int) "machine" native (machine F.Programs.discontinue_cleanup)

(* unhandled effects become exceptions at every level: Unhandled in the
   paper's design (semantics and machine), Effect.Unhandled on OCaml 5 *)

type _ Effect.t += Nope : unit Effect.t

let unhandled_three_levels () =
  (match S.Machine.run_string "perform Nope 0" with
  | S.Machine.Uncaught_exception ("Unhandled", _) -> ()
  | other -> Alcotest.failf "semantics: %s" (S.Machine.result_to_string other));
  Alcotest.(check string) "machine" "Unhandled"
    (machine_uncaught F.Programs.unhandled_effect);
  Alcotest.(check bool) "ocaml5" true
    (match Effect.perform Nope with
    | () -> false
    | exception Effect.Unhandled _ -> true)

(* ---------------- the documented divergence: shot discipline ---------- *)

(* §5.2: the operational semantics is multi-shot (continuations are
   values, resuming copies nothing away); the implementation is one-shot
   (second resume raises Invalid_argument / Continuation_already_resumed).
   This test pins BOTH behaviours. *)

type _ Effect.t += Choice : unit Effect.t

let shot_discipline () =
  (* semantics: both resumes succeed, 10*1 + 10*2 = 30 *)
  Alcotest.(check int) "semantics is multi-shot" 30
    (sem
       "match 10 * perform Choice 0 with v -> v\n\
        | effect (Choice u) k -> continue k 1 + continue k 2 end");
  (* fiber machine: the second resume raises Invalid_argument *)
  Alcotest.(check string) "machine is one-shot" "Invalid_argument"
    (machine_uncaught F.Programs.one_shot_violation);
  (* OCaml 5: Continuation_already_resumed *)
  let second_raises =
    Effect.Deep.match_with
      (fun () ->
        Effect.perform Choice;
        false)
      ()
      {
        Effect.Deep.retc = Fun.id;
        exnc = raise;
        effc =
          (fun (type c) (eff : c Effect.t) ->
            match eff with
            | Choice ->
                Some
                  (fun (k : (c, bool) Effect.Deep.continuation) ->
                    ignore (Effect.Deep.continue k ());
                    match Effect.Deep.continue k () with
                    | _ -> false
                    | exception Effect.Continuation_already_resumed -> true)
            | _ -> None);
      }
  in
  Alcotest.(check bool) "ocaml5 is one-shot" true second_raises

(* ---------------- random arithmetic across levels ---------------- *)

(* Generate arithmetic expression trees, translate to both the
   semantics AST and the fiber IR, and require agreement. *)

type arith = Lit of int | Add of arith * arith | Sub of arith * arith | Mul of arith * arith

let rec to_sem = function
  | Lit n -> S.Ast.Int n
  | Add (a, b) -> S.Ast.Binop (S.Ast.Add, to_sem a, to_sem b)
  | Sub (a, b) -> S.Ast.Binop (S.Ast.Sub, to_sem a, to_sem b)
  | Mul (a, b) -> S.Ast.Binop (S.Ast.Mul, to_sem a, to_sem b)

let rec to_ir = function
  | Lit n -> F.Ir.Int n
  | Add (a, b) -> F.Ir.Binop (F.Ir.Add, to_ir a, to_ir b)
  | Sub (a, b) -> F.Ir.Binop (F.Ir.Sub, to_ir a, to_ir b)
  | Mul (a, b) -> F.Ir.Binop (F.Ir.Mul, to_ir a, to_ir b)

let rec eval_native = function
  | Lit n -> n
  | Add (a, b) -> eval_native a + eval_native b
  | Sub (a, b) -> eval_native a - eval_native b
  | Mul (a, b) -> eval_native a * eval_native b

let gen_arith =
  let open QCheck.Gen in
  let rec go depth =
    if depth = 0 then map (fun n -> Lit n) (int_range (-9) 9)
    else
      frequency
        [
          (1, map (fun n -> Lit n) (int_range (-9) 9));
          (2, map2 (fun a b -> Add (a, b)) (go (depth - 1)) (go (depth - 1)));
          (2, map2 (fun a b -> Sub (a, b)) (go (depth - 1)) (go (depth - 1)));
          (1, map2 (fun a b -> Mul (a, b)) (go (depth - 1)) (go (depth - 1)));
        ]
  in
  go 4

let prop_levels_agree =
  QCheck.Test.make ~name:"semantics = fiber machine = native on arithmetic"
    ~count:150 (QCheck.make gen_arith) (fun e ->
      let native = eval_native e in
      let sem_v = S.Machine.int_result (S.Machine.run (to_sem e)) in
      let prog = { F.Ir.fns = [ F.Ir.fn "main" [] (to_ir e) ]; main = "main" } in
      let mach_v =
        match F.Machine.run F.Config.mc (F.Compile.compile prog) with
        | F.Machine.Done v, _ -> v
        | _ -> min_int
      in
      native = sem_v && native = mach_v)

let suite =
  [
    test "fib on three levels" fib_three_levels;
    test "ack on three levels" ack_three_levels;
    test "tak machine vs native" tak_three_levels;
    test "counter effect on three levels" counter_three_levels;
    test "discontinue on three levels" discontinue_three_levels;
    test "unhandled effects on three levels" unhandled_three_levels;
    test "shot discipline divergence (§5.2)" shot_discipline;
    QCheck_alcotest.to_alcotest prop_levels_agree;
  ]
