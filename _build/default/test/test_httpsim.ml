module H = Retrofit_httpsim

let test name f = Alcotest.test_case name `Quick f

(* ---------------- Http ---------------- *)

let simple_get = "GET /index.html HTTP/1.1\r\nHost: x\r\n\r\n"

let parse_get () =
  match H.Http.parse_request simple_get with
  | Ok (req, consumed) ->
      Alcotest.(check string) "method" "GET" (H.Http.meth_to_string req.H.Http.meth);
      Alcotest.(check string) "target" "/index.html" req.target;
      Alcotest.(check string) "version" "HTTP/1.1" req.version;
      Alcotest.(check (option string)) "host" (Some "x") (H.Http.header req "Host");
      Alcotest.(check int) "consumed" (String.length simple_get) consumed
  | Error e -> Alcotest.fail e

let parse_post_body () =
  let raw = "POST /submit HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello" in
  match H.Http.parse_request raw with
  | Ok (req, consumed) ->
      Alcotest.(check string) "body" "hello" req.H.Http.body;
      Alcotest.(check int) "consumed" (String.length raw) consumed
  | Error e -> Alcotest.fail e

let parse_pipelined () =
  let raw = simple_get ^ "GET /two HTTP/1.1\r\n\r\n" in
  match H.Http.parse_request raw with
  | Ok (_, consumed) -> (
      match H.Http.parse_request (String.sub raw consumed (String.length raw - consumed)) with
      | Ok (req2, _) -> Alcotest.(check string) "second" "/two" req2.H.Http.target
      | Error e -> Alcotest.fail e)
  | Error e -> Alcotest.fail e

let parse_incomplete () =
  let incomplete s =
    match H.Http.parse_request s with
    | Error e ->
        Alcotest.(check bool) "mentions incomplete" true
          (String.length e >= 10 && String.sub e 0 10 = "incomplete")
    | Ok _ -> Alcotest.fail ("parsed " ^ s)
  in
  incomplete "GET / HTTP/1.1";
  incomplete "GET / HTTP/1.1\r\nHost: x\r\n";
  incomplete "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"

let parse_malformed () =
  let bad s =
    match H.Http.parse_request s with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "no version" true (bad "GET /\r\n\r\n");
  Alcotest.(check bool) "bad version" true (bad "GET / HTTP/3.0\r\n\r\n");
  Alcotest.(check bool) "bad header" true (bad "GET / HTTP/1.1\r\nnocolon\r\n\r\n");
  Alcotest.(check bool) "bad content length" true
    (bad "GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n")

let keep_alive_rules () =
  let req ?(version = "HTTP/1.1") ?(headers = []) () =
    { H.Http.meth = H.Http.GET; target = "/"; version; headers; body = "" }
  in
  Alcotest.(check bool) "1.1 default" true (H.Http.keep_alive (req ()));
  Alcotest.(check bool) "1.1 close" false
    (H.Http.keep_alive (req ~headers:[ ("connection", "close") ] ()));
  Alcotest.(check bool) "1.0 default" false (H.Http.keep_alive (req ~version:"HTTP/1.0" ()));
  Alcotest.(check bool) "1.0 keep-alive" true
    (H.Http.keep_alive (req ~version:"HTTP/1.0" ~headers:[ ("connection", "keep-alive") ] ()))

let response_roundtrip () =
  let resp = H.Http.ok "hello world" in
  let raw = H.Http.format_response resp in
  match H.Http.parse_response raw with
  | Ok (parsed, consumed) ->
      Alcotest.(check int) "status" 200 parsed.H.Http.status;
      Alcotest.(check string) "body" "hello world" parsed.resp_body;
      Alcotest.(check int) "consumed" (String.length raw) consumed
  | Error e -> Alcotest.fail e

let request_roundtrip () =
  let raw = H.Netsim.request_for ~target:"/page" ~conn_id:3 in
  match H.Http.parse_request raw with
  | Ok (req, _) ->
      Alcotest.(check string) "target" "/page" req.H.Http.target;
      Alcotest.(check (option string)) "conn header" (Some "3")
        (H.Http.header req "x-conn")
  | Error e -> Alcotest.fail e

let reason_phrases () =
  Alcotest.(check string) "200" "OK" (H.Http.reason_phrase 200);
  Alcotest.(check string) "404" "Not Found" (H.Http.reason_phrase 404);
  Alcotest.(check string) "unknown" "Status 599" (H.Http.reason_phrase 599)

let prop_request_roundtrip =
  QCheck.Test.make ~name:"format/parse request roundtrip" ~count:100
    QCheck.(
      pair
        (string_gen_of_size (QCheck.Gen.int_range 1 20) QCheck.Gen.(char_range 'a' 'z'))
        (string_gen_of_size (QCheck.Gen.int_range 0 30) QCheck.Gen.(char_range 'a' 'z')))
    (fun (target, body) ->
      let req =
        {
          H.Http.meth = H.Http.POST;
          target = "/" ^ target;
          version = "HTTP/1.1";
          headers = [ ("host", "h") ];
          body;
        }
      in
      match H.Http.parse_request (H.Http.format_request req) with
      | Ok (parsed, _) ->
          parsed.H.Http.target = req.H.Http.target && parsed.body = body
      | Error _ -> false)

(* ---------------- Netsim ---------------- *)

let netsim_constant_rate () =
  let rng = Retrofit_util.Rng.create 1 in
  let events =
    H.Netsim.constant_rate ~rng ~connections:4 ~rate_rps:1000 ~duration_ms:100
      ~target:"/" ()
  in
  Alcotest.(check int) "count" 100 (List.length events);
  let sorted =
    List.for_all2
      (fun (a : H.Netsim.event) b -> a.arrival_ns <= b.H.Netsim.arrival_ns)
      (List.filteri (fun i _ -> i < 99) events)
      (List.tl events)
  in
  Alcotest.(check bool) "sorted" true sorted;
  let conns = List.map (fun (e : H.Netsim.event) -> e.conn_id) events in
  Alcotest.(check bool) "round robin" true
    (List.filteri (fun i _ -> i < 4) conns = [ 0; 1; 2; 3 ])

(* Regression: jitter larger than the nominal interval used to emit a
   non-monotonic trace (event i+1 before event i), breaking Loadgen's
   FIFO-by-arrival queueing model. *)
let netsim_jitter_monotonic () =
  let rng = Retrofit_util.Rng.create 5 in
  let interval_ns = 1_000_000_000 / 1000 in
  let events =
    H.Netsim.constant_rate ~jitter_ns:(5 * interval_ns) ~rng ~connections:4
      ~rate_rps:1000 ~duration_ms:100 ~target:"/" ()
  in
  Alcotest.(check int) "count unchanged by sorting" 100 (List.length events);
  let rec check_sorted = function
    | (a : H.Netsim.event) :: (b :: _ as rest) ->
        Alcotest.(check bool)
          (Printf.sprintf "monotonic %d <= %d" a.arrival_ns b.H.Netsim.arrival_ns)
          true
          (a.arrival_ns <= b.H.Netsim.arrival_ns);
        check_sorted rest
    | _ -> ()
  in
  check_sorted events

let netsim_poisson () =
  let rng = Retrofit_util.Rng.create 2 in
  let events =
    H.Netsim.poisson_rate ~rng ~connections:10 ~rate_rps:10_000 ~duration_ms:200
      ~target:"/" ()
  in
  let n = List.length events in
  (* expect about 2000 arrivals; allow generous slack *)
  Alcotest.(check bool) (Printf.sprintf "n=%d near 2000" n) true (n > 1600 && n < 2400);
  List.iter
    (fun (e : H.Netsim.event) ->
      Alcotest.(check bool) "in horizon" true
        (e.arrival_ns >= 0 && e.arrival_ns < 200_000_000))
    events

(* ---------------- Servers ---------------- *)

let servers_serve () =
  let raw = H.Netsim.request_for ~target:"/" ~conn_id:0 in
  List.iter
    (fun (model, process) ->
      match H.Http.parse_response (process raw) with
      | Ok (resp, _) ->
          Alcotest.(check int) (model.H.Server.name ^ " 200") 200 resp.H.Http.status;
          Alcotest.(check string)
            (model.H.Server.name ^ " body")
            H.Server.static_page resp.resp_body
      | Error e -> Alcotest.fail e)
    H.Experiment.servers

let servers_404_405 () =
  let process = H.Server_effects.process_raw in
  let raw = H.Netsim.request_for ~target:"/missing" ~conn_id:0 in
  (match H.Http.parse_response (process raw) with
  | Ok (resp, _) -> Alcotest.(check int) "404" 404 resp.H.Http.status
  | Error e -> Alcotest.fail e);
  let post = "POST / HTTP/1.1\r\nContent-Length: 0\r\n\r\n" in
  (match H.Http.parse_response (process post) with
  | Ok (resp, _) -> Alcotest.(check int) "405" 405 resp.H.Http.status
  | Error e -> Alcotest.fail e);
  match H.Http.parse_response (process "garbage\r\n\r\n") with
  | Ok (resp, _) -> Alcotest.(check int) "400" 400 resp.H.Http.status
  | Error e -> Alcotest.fail e

(* ---------------- Loadgen / Experiment ---------------- *)

let loadgen_sane () =
  let o =
    H.Loadgen.run ~model:H.Server.mc ~process:H.Server_effects.process_raw
      ~rate_rps:10_000 ~duration_ms:200 ()
  in
  Alcotest.(check int) "no errors" 0 o.H.Loadgen.errors;
  Alcotest.(check bool) "completed" true (o.completed > 1_000);
  Alcotest.(check bool) "p50 <= p99" true (o.p50_ns <= o.p99_ns);
  Alcotest.(check bool) "p99 <= p99.9" true (o.p99_ns <= o.p999_ns);
  Alcotest.(check bool) "achieved near offered" true
    (o.achieved_rps > 9_000. && o.achieved_rps < 11_000.)

let loadgen_deterministic () =
  let run () =
    H.Loadgen.run ~model:H.Server.mc ~process:H.Server_effects.process_raw
      ~rate_rps:5_000 ~duration_ms:100 ()
  in
  let a = run () and b = run () in
  Alcotest.(check int) "p99 deterministic" a.H.Loadgen.p99_ns b.H.Loadgen.p99_ns;
  Alcotest.(check int) "completed" a.completed b.completed

let throughput_saturates () =
  List.iter
    (fun (model, process) ->
      let low =
        H.Loadgen.run ~model ~process ~rate_rps:10_000 ~duration_ms:300 ()
      in
      let over =
        H.Loadgen.run ~model ~process ~rate_rps:60_000 ~duration_ms:300 ()
      in
      Alcotest.(check bool)
        (model.H.Server.name ^ " keeps up at 10k")
        true
        (low.H.Loadgen.achieved_rps > 9_500.);
      Alcotest.(check bool)
        (model.H.Server.name ^ " saturates under 40k")
        true
        (over.H.Loadgen.achieved_rps < 40_000.))
    H.Experiment.servers

let mc_best_tail () =
  let outcomes = H.Experiment.fig6b ~rate_rps:20_000 ~duration_ms:1_000 () in
  let find name =
    List.find (fun (o : H.Loadgen.outcome) -> o.model_name = name) outcomes
  in
  let mc = find "mc" and lwt = find "lwt" in
  Alcotest.(check bool) "mc p99.9 <= lwt p99.9" true
    (mc.H.Loadgen.p999_ns <= lwt.H.Loadgen.p999_ns)

let suite =
  [
    test "parse GET" parse_get;
    test "parse POST with body" parse_post_body;
    test "parse pipelined" parse_pipelined;
    test "incomplete requests" parse_incomplete;
    test "malformed requests" parse_malformed;
    test "keep-alive rules" keep_alive_rules;
    test "response roundtrip" response_roundtrip;
    test "loadgen request roundtrip" request_roundtrip;
    test "reason phrases" reason_phrases;
    QCheck_alcotest.to_alcotest prop_request_roundtrip;
    test "netsim constant rate" netsim_constant_rate;
    test "netsim jitter stays monotonic" netsim_jitter_monotonic;
    test "netsim poisson" netsim_poisson;
    test "all servers serve the page" servers_serve;
    test "servers handle 404/405/400" servers_404_405;
    test "loadgen sanity" loadgen_sane;
    test "loadgen deterministic" loadgen_deterministic;
    test "throughput saturates" throughput_saturates;
    test "mc has best tail" mc_best_tail;
  ]
