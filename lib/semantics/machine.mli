(** The abstract machine of Fig 2: top-level, administrative, C and OCaml
    reductions.

    The machine is a CEK machine extended with alternating OCaml/C stack
    segments.  Administrative reductions are common to both segment
    kinds; calls, returns, exceptions and effects dispatch on the kind of
    the current segment, which models external calls, callbacks,
    exception forwarding across C frames, and the rule that effects do
    {e not} cross C frames (an effect reaching the callback's identity
    fiber is turned into an [Unhandled] exception raised at the perform
    site — rule EffUnHn).

    Unlike the one-shot implementation of §5, this semantics is
    multi-shot: continuations are immutable values and may be resumed any
    number of times (§5.2 notes the same about the paper's semantics). *)

type outcome =
  | Step of Syntax.config
  | Done of Syntax.value  (** the program produced a value *)
  | Uncaught of string * Syntax.value
      (** an exception reached the bottom of the stack: fatal_uncaught *)
  | Stuck of string  (** no rule applies; the message names the reason *)

val unhandled_label : string
(** The label of the exception raised by rule EffUnHn ("Unhandled"). *)

val division_label : string
(** The label raised on division by zero ("Division_by_zero"). *)

val one_shot_label : string
(** The label raised by the one-shot discipline on a second resume
    ("Invalid_argument"), matching the runtime's behaviour (§5.2). *)

val step : Syntax.config -> outcome
(** One top-level reduction (STEPC or STEPO). *)

type result =
  | Value of Syntax.value
  | Uncaught_exception of string * Syntax.value
  | Stuck_config of string * Syntax.config
  | Out_of_fuel of Syntax.config

val run :
  ?fuel:int -> ?trace:(Syntax.config -> unit) -> ?one_shot:bool -> Ast.t -> result
(** Elaborates, then iterates [step] from the initial configuration.
    [fuel] bounds the number of steps (default 10_000_000); [trace] is
    called on every configuration including the initial one.
    [one_shot] (default false, i.e. the paper's multi-shot semantics)
    overlays §5's linearity restriction: resuming the same continuation
    twice raises {!one_shot_label} at the resume site, which is how the
    conformance fuzzer aligns this machine with the one-shot fiber
    runtime and native OCaml effects. *)

val run_string : ?fuel:int -> string -> result
(** Parse and [run]. @raise Invalid_argument on a syntax error. *)

val steps_taken : ?fuel:int -> Ast.t -> int * result
(** Like [run] but also counts reduction steps, for the semantics-level
    cost experiments. *)

val result_to_string : result -> string

val int_result : result -> int
(** Extracts an integer value result.  @raise Failure otherwise, with a
    descriptive message — convenient in tests. *)
