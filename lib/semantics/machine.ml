open Syntax

type outcome =
  | Step of config
  | Done of value
  | Uncaught of string * value
  | Stuck of string

let unhandled_label = "Unhandled"

let division_label = "Division_by_zero"

let one_shot_label = "Invalid_argument"

(* The semantics of Fig 2 is multi-shot: continuations are immutable
   values.  The optional one-shot discipline overlays §5's linearity
   restriction: resuming a continuation a second time raises
   Invalid_argument at the resume site, exactly as the runtime's
   continuation-taking primitive does.  Physical identity is the right
   notion here — every capture (EffHn, EffFwd) allocates a fresh cons
   cell, so [memq] distinguishes continuations that happen to share
   structure. *)
type discipline = { mutable resumed : Syntax.continuation list }

let one_shot_discipline () = { resumed = [] }

(* ------------------------------------------------------------------ *)
(* Administrative reductions (Fig 2c): operate on the current frame
   list and are shared by the C and OCaml steps. *)

type admin_result =
  | A_step of term * env * frame list
  | A_none  (** not an administrative redex; try segment-specific rules *)
  | A_stuck of string

let bind_closure (c : closure) arg =
  let env = env_bind c.env c.param arg in
  match c.self with
  | None -> env
  | Some f -> env_bind env f (V_clos c)

let eval_binop op n1 n2 =
  match (op : Ast.binop) with
  | Add -> Some (n1 + n2)
  | Sub -> Some (n1 - n2)
  | Mul -> Some (n1 * n2)
  | Div -> if n2 = 0 then None else Some (n1 / n2)
  | Lt -> Some (if n1 < n2 then 1 else 0)
  | Le -> Some (if n1 <= n2 then 1 else 0)
  | Eq -> Some (if n1 = n2 then 1 else 0)

let admin term env frames : admin_result =
  match term with
  | Expr e -> (
      match e with
      | Ast.Int n -> A_step (Value (V_int n), env, frames)
      | Ast.Var x -> (
          (* Var *)
          match env_lookup env x with
          | Some v -> A_step (Value v, env, frames)
          | None -> A_stuck (Printf.sprintf "unbound variable %s" x))
      | Ast.Lam (kind, param, body) ->
          (* App2: abstractions evaluate to closures *)
          A_step (Value (V_clos { kind; self = None; param; body; env }), env, frames)
      | Ast.Letrec (f, param, body, k) ->
          let clos = { kind = Ast.OCaml_lam; self = Some f; param; body; env } in
          A_step (Expr k, env_bind env f (V_clos clos), frames)
      | Ast.Let (x, e1, e2) -> A_step (Expr e1, env, F_let (x, e2, env) :: frames)
      | Ast.Binop (op, e1, e2) ->
          (* Arith1 *)
          A_step (Expr e1, env, F_op1 (op, e2, env) :: frames)
      | Ast.If (c, t, f) -> A_step (Expr c, env, F_if (t, f, env) :: frames)
      | Ast.App (e1, e2) ->
          (* App1 *)
          A_step (Expr e1, env, F_arg (e2, env) :: frames)
      | Ast.Raise (l, e) ->
          (* Raise *)
          A_step (Expr e, env, F_fun (V_exn l) :: frames)
      | Ast.Perform (l, e) ->
          (* Perform: the effect value carries the empty continuation
             [([], id)] *)
          A_step (Expr e, env, F_fun (V_eff (l, [ identity_fiber ])) :: frames)
      | Ast.Match _ ->
          (* Handle is an OCaml-only reduction *)
          A_none
      | Ast.Continue _ | Ast.Discontinue _ ->
          A_stuck "continue/discontinue must be elaborated before execution")
  | Value v -> (
      match (v, frames) with
      | _, F_let (x, e2, env') :: rest -> A_step (Expr e2, env_bind env' x v, rest)
      | V_int n, F_op1 (op, e2, env') :: rest ->
          (* Arith2 *)
          A_step (Expr e2, env', F_op2 (op, n) :: rest)
      | V_int n2, F_op2 (op, n1) :: rest -> (
          (* Arith3; division by zero raises Division_by_zero with the
             dividend as payload *)
          match eval_binop op n1 n2 with
          | Some n -> A_step (Value (V_int n), env, rest)
          | None ->
              A_step (Value (V_int n1), env, F_fun (V_exn division_label) :: rest))
      | V_int n, F_if (t, f, env') :: rest ->
          A_step (Expr (if n <> 0 then t else f), env', rest)
      | _, F_op1 _ :: _ | _, F_op2 _ :: _ | _, F_if _ :: _ ->
          A_stuck "arithmetic or conditional on a non-integer"
      | V_cont k, F_arg (e1, env1) :: (F_arg _ :: _ as below) ->
          (* Resume1 *)
          A_step (Expr e1, env1, F_fun (V_cont k) :: below)
      | V_clos c, F_fun (V_cont k) :: F_arg (e2, env2) :: rest ->
          (* Resume2 *)
          A_step (Expr e2, env2, F_fun (V_cont k) :: F_fun (V_clos c) :: rest)
      | V_clos _, F_arg (e2, env2) :: rest ->
          (* App3 *)
          A_step (Expr e2, env2, F_fun v :: rest)
      | (V_int _ | V_eff _ | V_exn _), F_arg _ :: _ ->
          A_stuck "application of a non-function"
      | V_cont _, F_arg _ :: _ ->
          A_stuck "continuation applied outside continue/discontinue"
      | _ -> A_none)

(* ------------------------------------------------------------------ *)
(* Handler case lookup *)

let find_exn_case ((h, henv) : handler_closure) l =
  List.find_map
    (fun (l', x, body) -> if l' = l then Some (x, body, henv) else None)
    h.Ast.exn_cases

let find_eff_case ((h, henv) : handler_closure) l =
  List.find_map
    (fun (l', x, k, body) -> if l' = l then Some (x, k, body, henv) else None)
    h.Ast.eff_cases

(* ------------------------------------------------------------------ *)
(* C reductions (Fig 2d) *)

let step_c term env c_frames (c_under : ocaml_stack) : outcome =
  match admin term env c_frames with
  | A_step (term, env, c_frames) ->
      Step { term; env; stack = C_stack { c_frames; c_under } }
  | A_stuck msg -> Stuck msg
  | A_none -> (
      match (term, c_frames) with
      | Value v, F_fun (V_clos ({ kind = Ast.C_lam; _ } as c)) :: rest ->
          (* CallC: C functions run on the current C stack *)
          Step
            {
              term = Expr c.body;
              env = bind_closure c v;
              stack = C_stack { c_frames = rest; c_under };
            }
      | Value v, F_fun (V_clos ({ kind = Ast.OCaml_lam; _ } as c)) :: rest ->
          (* Callback: entering OCaml from C creates a fresh OCaml stack
             with a single identity fiber over the remaining C frames *)
          Step
            {
              term = Expr c.body;
              env = bind_closure c v;
              stack =
                OCaml_stack
                  (O_stack
                     {
                       cont = [ identity_fiber ];
                       o_under = { c_frames = rest; c_under };
                     });
            }
      | Value v, [] -> (
          (* RetToO, or program completion when no OCaml stack remains *)
          match c_under with
          | O_empty -> Done v
          | O_stack _ -> Step { term = Value v; env; stack = OCaml_stack c_under })
      | Value v, F_fun (V_exn l) :: _ -> (
          (* ExnFwdO: unwind all remaining C frames, re-raising on the
             OCaml stack below; with no OCaml stack this is
             fatal_uncaught *)
          match c_under with
          | O_empty -> Uncaught (l, v)
          | O_stack { cont = (fr, h) :: k; o_under } ->
              Step
                {
                  term = Value v;
                  env;
                  stack =
                    OCaml_stack
                      (O_stack
                         { cont = (F_fun (V_exn l) :: fr, h) :: k; o_under });
                }
          | O_stack { cont = []; _ } -> Stuck "OCaml stack with no fiber")
      | Value _, F_fun (V_eff (l, _)) :: _ ->
          (* Effects must not cross C frames (§3.1); the real runtime
             cannot even express this state, so the machine is stuck. *)
          Stuck (Printf.sprintf "effect %s performed on the C stack" l)
      | Value _, F_fun (V_cont _) :: _ ->
          Stuck "continuation resumed on the C stack"
      | Value _, F_fun (V_int _) :: _ -> Stuck "application of a non-function"
      | Expr (Ast.Match _), _ ->
          Stuck "effect handler installed on the C stack"
      | _ -> Stuck "no C reduction applies")

(* ------------------------------------------------------------------ *)
(* OCaml reductions (Fig 2e): the current stack is ⌈(ψ,η)◁k, γ⌉o *)

let step_o disc term env (cont : continuation) (o_under : c_stack) : outcome =
  match cont with
  | [] -> Stuck "OCaml stack with no fiber"
  | (frames, handler) :: k_rest -> (
      let rebuild term env frames =
        Step
          {
            term;
            env;
            stack = OCaml_stack (O_stack { cont = (frames, handler) :: k_rest; o_under });
          }
      in
      match admin term env frames with
      | A_step (term, env, frames) -> rebuild term env frames
      | A_stuck msg -> Stuck msg
      | A_none -> (
          match (term, frames) with
          | Expr (Ast.Match (e, h)), _ ->
              (* Handle: push a fresh fiber carrying the handler *)
              Step
                {
                  term = Expr e;
                  env;
                  stack =
                    OCaml_stack
                      (O_stack
                         { cont = ([], (h, env)) :: cont; o_under });
                }
          | Value v, F_fun (V_cont k) :: F_fun (V_clos ({ kind = Ast.OCaml_lam; _ } as c)) :: rest
            -> (
              (* Resume: reinstate the captured fibers in front of the
                 current stack and run the resumption closure on top.
                 Under the one-shot discipline a second resume instead
                 raises Invalid_argument at the resume site (§5.2). *)
              match disc with
              | Some d when List.memq k d.resumed ->
                  rebuild (Expr (Ast.Raise (one_shot_label, Ast.Int 0))) env rest
              | _ ->
                  (match disc with
                  | Some d -> d.resumed <- k :: d.resumed
                  | None -> ());
                  Step
                    {
                      term = Expr c.body;
                      env = bind_closure c v;
                      stack =
                        OCaml_stack
                          (O_stack { cont = k @ ((rest, handler) :: k_rest); o_under });
                    })
          | Value v, F_fun (V_clos ({ kind = Ast.OCaml_lam; _ } as c)) :: rest ->
              (* CallO *)
              Step
                {
                  term = Expr c.body;
                  env = bind_closure c v;
                  stack =
                    OCaml_stack
                      (O_stack { cont = (rest, handler) :: k_rest; o_under });
                }
          | Value v, F_fun (V_clos ({ kind = Ast.C_lam; _ } as c)) :: rest ->
              (* ExtCall: run the C function on a fresh C segment *)
              Step
                {
                  term = Expr c.body;
                  env = bind_closure c v;
                  stack =
                    C_stack
                      {
                        c_frames = [];
                        c_under =
                          O_stack
                            { cont = (rest, handler) :: k_rest; o_under };
                      };
                }
          | Value v, [] -> (
              match k_rest with
              | [] ->
                  if is_identity_handler handler then
                    (* RetToC *)
                    Step { term = Value v; env; stack = C_stack o_under }
                  else
                    Stuck "bottom fiber does not carry the identity handler"
              | _ ->
                  (* RetFib: evaluate the return case on the fiber below *)
                  let h, henv = handler in
                  Step
                    {
                      term = Expr h.Ast.return_body;
                      env = env_bind henv h.Ast.return_var v;
                      stack = OCaml_stack (O_stack { cont = k_rest; o_under });
                    })
          | Value v, F_fun (V_exn l) :: _ -> (
              match find_exn_case handler l with
              | Some (x, body, henv) ->
                  (* ExnHn: unwind the current fiber, run the case *)
                  Step
                    {
                      term = Expr body;
                      env = env_bind henv x v;
                      stack = OCaml_stack (O_stack { cont = k_rest; o_under });
                    }
              | None -> (
                  match k_rest with
                  | (fr', h') :: k' ->
                      (* ExnFwdFib *)
                      Step
                        {
                          term = Value v;
                          env;
                          stack =
                            OCaml_stack
                              (O_stack
                                 {
                                   cont = (F_fun (V_exn l) :: fr', h') :: k';
                                   o_under;
                                 });
                        }
                  | [] ->
                      (* ExnFwdC: the bottom fiber is the callback's
                         identity fiber; forward onto the C frames *)
                      Step
                        {
                          term = Value v;
                          env;
                          stack =
                            C_stack
                              {
                                c_frames = F_fun (V_exn l) :: o_under.c_frames;
                                c_under = o_under.c_under;
                              };
                        }))
          | Value v, F_fun (V_eff (l, k)) :: psi -> (
              let captured = k @ [ (psi, handler) ] in
              match find_eff_case handler l with
              | Some (x, r, body, henv) ->
                  (* EffHn: deep handler — the captured continuation
                     includes the handling fiber itself *)
                  let env' = env_bind (env_bind henv r (V_cont captured)) x v in
                  Step
                    {
                      term = Expr body;
                      env = env';
                      stack = OCaml_stack (O_stack { cont = k_rest; o_under });
                    }
              | None -> (
                  match k_rest with
                  | (fr', h') :: k' ->
                      (* EffFwd *)
                      Step
                        {
                          term = Value v;
                          env;
                          stack =
                            OCaml_stack
                              (O_stack
                                 {
                                   cont =
                                     (F_fun (V_eff (l, captured)) :: fr', h') :: k';
                                   o_under;
                                 });
                        }
                  | [] ->
                      (* EffUnHn: reinstate the captured continuation and
                         raise Unhandled at the perform site *)
                      Step
                        {
                          term = Expr (Ast.Raise (unhandled_label, Ast.Int 0));
                          env = [];
                          stack =
                            OCaml_stack (O_stack { cont = captured; o_under });
                        }))
          | Value _, F_fun (V_int _) :: _ -> Stuck "application of a non-function"
          | Value _, F_fun (V_cont _) :: _ ->
              Stuck "continuation resumed without a resumption closure"
          | _ -> Stuck "no OCaml reduction applies"))

let step_disciplined disc (cfg : config) : outcome =
  match cfg.stack with
  | C_stack { c_frames; c_under } -> step_c cfg.term cfg.env c_frames c_under
  | OCaml_stack O_empty -> Stuck "current stack is the empty OCaml stack"
  | OCaml_stack (O_stack { cont; o_under }) ->
      step_o disc cfg.term cfg.env cont o_under

let step cfg = step_disciplined None cfg

(* ------------------------------------------------------------------ *)
(* Driver *)

type result =
  | Value of Syntax.value
  | Uncaught_exception of string * Syntax.value
  | Stuck_config of string * Syntax.config
  | Out_of_fuel of Syntax.config

let run_config ?(fuel = 10_000_000) ?trace ?(one_shot = false) cfg =
  let disc = if one_shot then Some (one_shot_discipline ()) else None in
  let count = ref 0 in
  let emit cfg = match trace with Some f -> f cfg | None -> () in
  let rec go cfg fuel =
    emit cfg;
    if fuel = 0 then (!count, Out_of_fuel cfg)
    else begin
      match step_disciplined disc cfg with
      | Step cfg' ->
          incr count;
          go cfg' (fuel - 1)
      | Done v -> (!count, Value v)
      | Uncaught (l, v) -> (!count, Uncaught_exception (l, v))
      | Stuck msg -> (!count, Stuck_config (msg, cfg))
    end
  in
  go cfg fuel

let steps_taken ?fuel e = run_config ?fuel (initial (Ast.elaborate e))

let run ?fuel ?trace ?one_shot e =
  snd (run_config ?fuel ?trace ?one_shot (initial (Ast.elaborate e)))

let run_string ?fuel src = run ?fuel (Parser.parse_exn src)

let result_to_string = function
  | Value v -> Printf.sprintf "value %s" (value_to_string v)
  | Uncaught_exception (l, v) ->
      Printf.sprintf "uncaught exception %s %s" l (value_to_string v)
  | Stuck_config (msg, _) -> Printf.sprintf "stuck: %s" msg
  | Out_of_fuel _ -> "out of fuel"

let int_result = function
  | Value (V_int n) -> n
  | other -> failwith ("expected an integer result, got " ^ result_to_string other)
