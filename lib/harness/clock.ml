let now_ns () = Monotonic_clock.now ()

let elapsed_ns f =
  let t0 = now_ns () in
  let result = f () in
  let t1 = now_ns () in
  (result, Int64.sub t1 t0)

(* Virtual time, for the observability layer: deterministic, advanced
   by the simulated workloads, never by the host.  Delegates to the
   process-wide Util.Vclock so libraries that must not depend on the
   harness (trace, metrics) read the same clock. *)

let virtual_now () = Retrofit_util.Vclock.now ()

let set_virtual v = Retrofit_util.Vclock.set v

let advance_virtual n = Retrofit_util.Vclock.advance n

let reset_virtual () = Retrofit_util.Vclock.reset ()
