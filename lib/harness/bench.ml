type measurement = {
  runs_ns : float array;
  median_ns : float;
  mean_ns : float;
  stddev_ns : float;
}

let measure ?(warmups = 2) ?(runs = 5) f =
  if warmups < 0 then invalid_arg "Bench.measure: warmups must be non-negative";
  if runs < 1 then invalid_arg "Bench.measure: runs must be positive";
  for _ = 1 to warmups do
    ignore (Sys.opaque_identity (f ()))
  done;
  let runs_ns =
    Array.init runs (fun _ ->
        let _, dt = Clock.elapsed_ns (fun () -> Sys.opaque_identity (f ())) in
        Int64.to_float dt)
  in
  {
    runs_ns;
    median_ns = Retrofit_util.Stats.median runs_ns;
    mean_ns = Retrofit_util.Stats.mean runs_ns;
    stddev_ns = Retrofit_util.Stats.stddev runs_ns;
  }

let median_ns ?warmups ?runs f = (measure ?warmups ?runs f).median_ns

let per_op_ns ?warmups ?runs ~iters f =
  if iters <= 0 then invalid_arg "Bench.per_op_ns: iters must be positive";
  median_ns ?warmups ?runs f /. float_of_int iters
