(** Timing harness for the wall-clock experiments.

    Microarchitectural noise makes sub-15 % differences unreliable
    (§6.1 notes loop-alignment effects of that size); the harness
    therefore reports the median of repeated runs after warmups, and
    the experiment write-ups compare ratios, not absolute times. *)

type measurement = {
  runs_ns : float array;  (** per-run wall time *)
  median_ns : float;
  mean_ns : float;
  stddev_ns : float;
}

val measure : ?warmups:int -> ?runs:int -> (unit -> 'a) -> measurement
(** Defaults: 2 warmups, 5 measured runs.  The thunk's result is
    guarded with [Sys.opaque_identity] so the work cannot be
    eliminated.  @raise Invalid_argument if [warmups] is negative or
    [runs] is not positive. *)

val median_ns : ?warmups:int -> ?runs:int -> (unit -> 'a) -> float

val per_op_ns : ?warmups:int -> ?runs:int -> iters:int -> (unit -> 'a) -> float
(** Median divided by the iteration count. *)
