(** Function inventories for the macro-suite OTSS model (Fig 5).

    Each workload declares its functions with their shape class and an
    approximate compiled body size; the OTSS model adds the size of an
    overflow-check sequence for each function the configuration checks
    — the same rule {!Retrofit_fiber.Otss} applies to compiled fiber
    programs. *)

type kind = Leaf_small | Leaf_mid | Leaf_big | Nonleaf

type t = { fn_name : string; kind : kind; body_bytes : int }

val make : string -> kind -> body_bytes:int -> t

val frame_words_of_kind : kind -> int
(** Modeled frame size per shape class; the static red-zone audit's
    macro-suite agreement test feeds these through
    {!Retrofit_fiber.Otss.needs_check} and pins the result to
    {!checked}. *)

val checked : red_zone:int option -> kind -> bool
(** [red_zone = None] is stock: nothing checked. *)

val check_bytes : int
(** Size of one emitted check sequence; shared with
    {!Retrofit_fiber.Otss.check_bytes}'s role but defined here to keep
    the libraries independent. *)

val otss : red_zone:int option -> t list -> int

val checked_count : red_zone:int option -> t list -> int
