(* The `retrofit causal` text report.

   Every line is a pure function of the span graph (itself a pure
   function of the eventlog), so double runs of a seeded workload are
   byte-identical — CI diffs this output against a golden file. *)

open Graph

let pct num den = if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let mean num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

let render ?(top = 8) (g : t) : string =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let s = g.summary in
  line "== causal span graph ==";
  line "events            %d" s.g_events;
  line "dropped_events    %d" s.g_dropped;
  line "requests          %d" s.g_requests;
  line "complete          %d" s.g_complete;
  line "incomplete_spans  %d" s.g_incomplete;
  line "unbalanced_spans  %d" s.g_unbalanced;
  line "fiber_switches    %d" s.g_fiber_switches;
  line "handler_spans     %d" s.g_handler_spans;
  line "ffi_spans         %d" s.g_ffi_spans;
  line "nursery_spans     %d" s.g_nursery_spans;
  line "performs %d  resumes %d  discontinues %d  sup_restarts %d" s.g_performs
    s.g_resumes s.g_discontinues s.g_restarts;
  if s.g_wakeups <> [] then begin
    line "";
    line "wakeups (runnable -> running):";
    line "  %-10s %10s %14s %12s" "reason" "count" "total_wait_ns" "mean_ns";
    List.iter
      (fun (reason, (count, total)) ->
        line "  %-10s %10d %14d %12.1f" reason count total (mean total count))
      s.g_wakeups
  end;
  line "";
  line "== per-request attribution (%d complete requests) ==" s.g_complete;
  let n = List.length g.requests in
  if n = 0 then line "(no complete requests)"
  else begin
    let total_latency = List.fold_left (fun acc r -> acc + latency r) 0 g.requests in
    let fold f = List.fold_left (fun acc r -> acc + f r.r_buckets) 0 g.requests in
    let rows =
      [
        ("running", fold (fun b -> b.b_running));
        ("sched_wait", fold (fun b -> b.b_sched));
        ("io_wait", fold (fun b -> b.b_io));
        ("gc", fold (fun b -> b.b_gc));
        ("fault_stall", fold (fun b -> b.b_fault));
      ]
    in
    line "  %-12s %14s %8s %12s" "bucket" "total_ns" "share" "mean_ns";
    List.iter
      (fun (name, total) ->
        line "  %-12s %14d %7.2f%% %12.1f" name total (pct total total_latency)
          (mean total n))
      rows;
    line "  %-12s %14d %7.2f%% %12.1f" "latency" total_latency 100.0
      (mean total_latency n);
    let exact =
      List.length (List.filter (fun r -> buckets_sum r.r_buckets = latency r) g.requests)
    in
    line "invariant: buckets sum to latency for %d/%d complete requests" exact n;
    let by_disposition =
      List.sort_uniq compare (List.map (fun r -> r.r_disposition) g.requests)
      |> List.map (fun d ->
             (d, List.length (List.filter (fun r -> r.r_disposition = d) g.requests)))
    in
    line "dispositions: %s"
      (String.concat " "
         (List.map (fun (d, c) -> Printf.sprintf "%s=%d" d c) by_disposition))
  end;
  line "";
  line "== critical-path edges (top %d by total time) ==" top;
  let edges = Reconstruct.critical_edges g in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | e :: rest -> e :: take (k - 1) rest
  in
  let edges_shown = take top edges in
  if edges_shown = [] then line "(no edges)"
  else begin
    line "  %-14s %8s %14s %12s %12s" "edge" "count" "total_ns" "mean_ns" "max_ns";
    List.iter
      (fun e ->
        line "  %-14s %8d %14d %12.1f %12d" e.e_kind e.e_count e.e_total
          (mean e.e_total e.e_count) e.e_max)
      edges_shown
  end;
  line "";
  line "== tail exemplars (p99 latency) ==";
  (match g.requests with
  | [] -> line "(no complete requests)"
  | requests ->
      let lats = List.sort compare (List.map latency requests) in
      let n = List.length lats in
      let p99 = List.nth lats (min (n - 1) (n * 99 / 100)) in
      line "p99_latency_ns    %d" p99;
      let tail =
        List.filter (fun r -> latency r >= p99) requests
        |> List.sort (fun r r' -> compare (-latency r, r.r_id) (-latency r', r'.r_id))
      in
      let exemplars = take 3 tail in
      List.iter
        (fun r ->
          line "req %d  conn %d  disposition %s  latency %d ns  attempts %d" r.r_id
            r.r_conn r.r_disposition (latency r) (List.length r.r_attempts);
          List.iter
            (fun sg ->
              let extra =
                match sg.s_kind with
                | Seg_queue b when b >= 0 -> Printf.sprintf "  blocked-by req %d" b
                | _ -> ""
              in
              line "  %12d..%-12d %-12s attempt %d  (%d ns)%s" sg.s_t0 sg.s_t1
                (Reconstruct.edge_label sg.s_kind)
                sg.s_attempt (sg.s_t1 - sg.s_t0) extra)
            r.r_path)
        exemplars);
  Buffer.contents buf
