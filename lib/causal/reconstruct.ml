(* Eventlog -> span graph.

   One pass over the log builds per-request lifecycles (arrival, wire
   waits, queue entries, service attempts, terminal resolution) plus
   the machine-side tallies (fiber switches, handler / FFI / nursery
   span matching, wakeup-reason histogram).  A second pass finalises
   each request: its wait and service segments must tile the interval
   [arrival, done] with no gap and no overlap — only then is the
   request "complete" and attributed.  Anything else (an opening
   evicted by the ring's drop-oldest policy, a log that stops
   mid-request, a duplicated or out-of-order marker) lands in
   [incomplete] / [unbalanced] and is excluded from attribution: the
   wraparound contract is "report the loss, never mis-attribute". *)

module Tev = Retrofit_trace.Event
open Graph

type builder = {
  br_id : int;
  mutable br_conn : int;
  mutable br_arrival : int option;
  mutable br_waits : seg list;  (* stall / drop / backoff, reversed *)
  mutable br_enqueues : (int * int) list;  (* attempt no -> enqueue ts *)
  mutable br_slow : (int * int) list;  (* attempt no -> pending slow dur *)
  mutable br_attempts : attempt_span list;  (* reversed *)
  mutable br_done : (int * string) option;
  mutable br_bad : bool;  (* structural anomaly: never attribute *)
}

let new_builder id =
  {
    br_id = id;
    br_conn = -1;
    br_arrival = None;
    br_waits = [];
    br_enqueues = [];
    br_slow = [];
    br_attempts = [];
    br_done = None;
    br_bad = false;
  }

let of_events ?(dropped = 0) (events : Tev.t list) : t =
  (* [reqs] holds the {e current} lifecycle per request id; [retired]
     holds finished earlier epochs.  One capture can contain several
     sequential engine runs (retrofit websim traces all three server
     models into one ring), and each run numbers its requests from 0 —
     so a new arrival for an id whose current lifecycle already
     resolved starts a new builder instead of flagging a duplicate. *)
  let reqs : (int, builder) Hashtbl.t = Hashtbl.create 1024 in
  let retired : builder list ref = ref [] in
  let get id =
    match Hashtbl.find_opt reqs id with
    | Some b -> b
    | None ->
        let b = new_builder id in
        Hashtbl.add reqs id b;
        b
  in
  (* Gc_pause is emitted immediately before the Request event of the
     attempt that paid it; pair them by the shared start timestamp
     (service intervals are disjoint on the single virtual CPU, so
     starts are unique). *)
  let pending_gc = ref None in
  let unbalanced = ref 0 in
  let fiber_switches = ref 0 in
  let handler_spans = ref 0 in
  let ffi_spans = ref 0 in
  let nursery_spans = ref 0 in
  let performs = ref 0 in
  let resumes = ref 0 in
  let discontinues = ref 0 in
  let restarts = ref 0 in
  let handler_stacks : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let ffi_stack = ref [] in
  let nursery_open : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let wakeups : (string, (int * int) ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (e : Tev.t) ->
      match e.ev with
      | Tev.Fiber_switch _ -> incr fiber_switches
      | Tev.Perform _ -> incr performs
      | Tev.Resume _ -> incr resumes
      | Tev.Discontinue _ -> incr discontinues
      | Tev.Sup_restart _ -> incr restarts
      | Tev.Wakeup { reason; wait_ns } -> (
          match Hashtbl.find_opt wakeups reason with
          | Some cell ->
              let c, w = !cell in
              cell := (c + 1, w + wait_ns)
          | None -> Hashtbl.add wakeups reason (ref (1, wait_ns)))
      | Tev.Handler_push { hidx; fiber } -> (
          match Hashtbl.find_opt handler_stacks fiber with
          | Some st -> st := hidx :: !st
          | None -> Hashtbl.add handler_stacks fiber (ref [ hidx ]))
      | Tev.Handler_pop { hidx; fiber } -> (
          match Hashtbl.find_opt handler_stacks fiber with
          | Some st -> (
              match !st with
              | top :: rest when top = hidx ->
                  st := rest;
                  incr handler_spans
              | _ -> incr unbalanced)
          | None -> incr unbalanced)
      | Tev.Extcall_begin { name } | Tev.Callback_begin { name } ->
          ffi_stack := name :: !ffi_stack
      | Tev.Extcall_end { name } | Tev.Callback_end { name } -> (
          match !ffi_stack with
          | top :: rest when top = name ->
              ffi_stack := rest;
              incr ffi_spans
          | _ -> incr unbalanced)
      | Tev.Nursery_begin { name } ->
          Hashtbl.replace nursery_open name
            (1 + Option.value ~default:0 (Hashtbl.find_opt nursery_open name))
      | Tev.Nursery_end { name } -> (
          match Hashtbl.find_opt nursery_open name with
          | Some n when n > 0 ->
              Hashtbl.replace nursery_open name (n - 1);
              incr nursery_spans
          | _ -> incr unbalanced)
      | Tev.Gc_pause { start; dur } ->
          (* two pauses with no Request between them cannot be paired *)
          if !pending_gc <> None then incr unbalanced;
          pending_gc := Some (start, dur)
      | Tev.Req_arrival { req; conn } ->
          let b = get req in
          let b =
            if b.br_done <> None then begin
              retired := b :: !retired;
              let b' = new_builder req in
              Hashtbl.replace reqs req b';
              b'
            end
            else b
          in
          if b.br_arrival <> None then b.br_bad <- true;
          b.br_arrival <- Some e.ts;
          b.br_conn <- conn
      | Tev.Req_stall { req; dur } ->
          let b = get req in
          b.br_waits <-
            { s_kind = Seg_stall; s_t0 = e.ts - dur; s_t1 = e.ts; s_attempt = 0 }
            :: b.br_waits
      | Tev.Req_drop { req; attempt; dur } ->
          let b = get req in
          b.br_waits <-
            { s_kind = Seg_drop; s_t0 = e.ts - dur; s_t1 = e.ts; s_attempt = attempt }
            :: b.br_waits
      | Tev.Req_backoff { req; attempt; dur } ->
          let b = get req in
          b.br_waits <-
            {
              s_kind = Seg_backoff;
              s_t0 = e.ts - dur;
              s_t1 = e.ts;
              s_attempt = attempt;
            }
            :: b.br_waits
      | Tev.Req_enqueue { req; attempt } ->
          let b = get req in
          if List.mem_assoc attempt b.br_enqueues then b.br_bad <- true
          else b.br_enqueues <- (attempt, e.ts) :: b.br_enqueues
      | Tev.Req_fault_slow { req; attempt; dur } ->
          let b = get req in
          b.br_slow <- (attempt, dur) :: b.br_slow
      | Tev.Request { req; conn = _; attempt; status; start; finish } ->
          let b = get req in
          let gc =
            match !pending_gc with
            | Some (s, d) when s = start ->
                pending_gc := None;
                d
            | _ -> 0
          in
          let slow = Option.value ~default:0 (List.assoc_opt attempt b.br_slow) in
          b.br_slow <- List.remove_assoc attempt b.br_slow;
          let enqueue =
            match List.assoc_opt attempt b.br_enqueues with
            | Some ts -> ts
            | None ->
                (* enqueue marker evicted by wraparound *)
                b.br_bad <- true;
                start
          in
          b.br_attempts <-
            {
              a_no = attempt;
              a_enqueue = enqueue;
              a_start = start;
              a_finish = finish;
              a_status = status;
              a_gc = gc;
              a_slow = slow;
            }
            :: b.br_attempts
      | Tev.Req_done { req; disposition } ->
          let b = get req in
          if b.br_done <> None then b.br_bad <- true;
          b.br_done <- Some (e.ts, disposition)
      | _ -> ())
    events;
  (* dangling machine spans at end-of-log *)
  Hashtbl.iter (fun _ st -> unbalanced := !unbalanced + List.length !st) handler_stacks;
  unbalanced := !unbalanced + List.length !ffi_stack;
  Hashtbl.iter (fun _ n -> unbalanced := !unbalanced + n) nursery_open;
  if !pending_gc <> None then incr unbalanced;
  (* Who blocked the queue waits: an attempt starts exactly when the
     blocking attempt's service freed the CPU, so index every attempt
     finish timestamp (finishes are unique: each attempt advances the
     CPU by at least the dispatch overhead). *)
  let all_builders =
    Hashtbl.fold (fun _ b acc -> b :: acc) reqs !retired
  in
  let finish_index : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun b ->
      List.iter
        (fun a -> Hashtbl.replace finish_index a.a_finish b.br_id)
        b.br_attempts)
    all_builders;
  let finalize (b : builder) : request option =
    match (b.br_arrival, b.br_done) with
    | Some arrival, Some (done_ts, disposition) when not b.br_bad ->
        let attempts =
          List.sort (fun a a' -> compare a.a_no a'.a_no) (List.rev b.br_attempts)
        in
        let segs =
          b.br_waits
          @ List.concat_map
              (fun a ->
                let queue =
                  if a.a_start > a.a_enqueue then
                    let blocker =
                      match Hashtbl.find_opt finish_index a.a_start with
                      | Some id -> id
                      | None -> -1
                    in
                    [
                      {
                        s_kind = Seg_queue blocker;
                        s_t0 = a.a_enqueue;
                        s_t1 = a.a_start;
                        s_attempt = a.a_no;
                      };
                    ]
                  else []
                in
                queue
                @ [
                    {
                      s_kind = Seg_service;
                      s_t0 = a.a_start;
                      s_t1 = a.a_finish;
                      s_attempt = a.a_no;
                    };
                  ])
              attempts
        in
        let segs = List.filter (fun s -> s.s_t1 > s.s_t0) segs in
        let segs = List.sort (fun s s' -> compare s.s_t0 s'.s_t0) segs in
        (* the tiling check: segments must cover [arrival, done]
           contiguously — any hole means an evicted or missing span *)
        let rec contiguous at = function
          | [] -> at = done_ts
          | s :: rest -> s.s_t0 = at && contiguous s.s_t1 rest
        in
        if not (contiguous arrival segs) then None
        else begin
          let sum kind_pred =
            List.fold_left
              (fun acc s -> if kind_pred s.s_kind then acc + (s.s_t1 - s.s_t0) else acc)
              0 segs
          in
          let stall = sum (function Seg_stall -> true | _ -> false) in
          let dropw = sum (function Seg_drop -> true | _ -> false) in
          let backoff = sum (function Seg_backoff -> true | _ -> false) in
          let queue = sum (function Seg_queue _ -> true | _ -> false) in
          let service = sum (function Seg_service -> true | _ -> false) in
          let gc = List.fold_left (fun acc a -> acc + a.a_gc) 0 attempts in
          let slow = List.fold_left (fun acc a -> acc + a.a_slow) 0 attempts in
          Some
            {
              r_id = b.br_id;
              r_conn = b.br_conn;
              r_arrival = arrival;
              r_done = done_ts;
              r_disposition = disposition;
              r_attempts = attempts;
              r_buckets =
                {
                  b_running = service - gc - slow;
                  b_sched = queue;
                  b_io = backoff;
                  b_gc = gc;
                  b_fault = stall + dropw + slow;
                };
              r_path = segs;
            }
        end
    | _ -> None
  in
  let complete = ref [] in
  let n_requests = List.length all_builders in
  List.iter
    (fun b -> match finalize b with Some r -> complete := r :: !complete | None -> ())
    all_builders;
  let requests = List.sort (fun r r' -> compare r.r_id r'.r_id) !complete in
  let g_wakeups =
    Hashtbl.fold (fun reason cell acc -> (reason, !cell) :: acc) wakeups []
    |> List.sort compare
  in
  {
    summary =
      {
        g_events = List.length events;
        g_dropped = dropped;
        g_requests = n_requests;
        g_complete = List.length requests;
        g_incomplete = n_requests - List.length requests;
        g_unbalanced = !unbalanced;
        g_fiber_switches = !fiber_switches;
        g_handler_spans = !handler_spans;
        g_ffi_spans = !ffi_spans;
        g_nursery_spans = !nursery_spans;
        g_performs = !performs;
        g_resumes = !resumes;
        g_discontinues = !discontinues;
        g_restarts = !restarts;
        g_wakeups;
      };
    requests;
  }

let of_trace tr = of_events ~dropped:(Retrofit_trace.Trace.dropped tr)
    (Retrofit_trace.Trace.to_list tr)

(* ------------------------------------------------------------------ *)
(* Critical-path edge aggregation *)

let edge_label = function
  | Seg_stall -> "fault-stall"
  | Seg_drop -> "drop-detect"
  | Seg_backoff -> "backoff"
  | Seg_queue _ -> "queue"
  | Seg_service -> "service"

let critical_edges (g : t) : edge_stat list =
  let tbl : (string, (int * int * int) ref) Hashtbl.t = Hashtbl.create 8 in
  let add kind dur =
    if dur > 0 then
      match Hashtbl.find_opt tbl kind with
      | Some cell ->
          let c, tot, mx = !cell in
          cell := (c + 1, tot + dur, max mx dur)
      | None -> Hashtbl.add tbl kind (ref (1, dur, dur))
  in
  List.iter
    (fun r ->
      List.iter
        (fun s ->
          match s.s_kind with
          | Seg_service ->
              (* split the service interval into its causal parts *)
              let a =
                List.find_opt (fun a -> a.a_no = s.s_attempt) r.r_attempts
              in
              let gc, slow =
                match a with Some a -> (a.a_gc, a.a_slow) | None -> (0, 0)
              in
              add "service" (s.s_t1 - s.s_t0 - gc - slow);
              add "gc-pause" gc;
              add "backend-slow" slow
          | k -> add (edge_label k) (s.s_t1 - s.s_t0))
        r.r_path)
    g.requests;
  Hashtbl.fold
    (fun kind cell acc ->
      let c, tot, mx = !cell in
      { e_kind = kind; e_count = c; e_total = tot; e_max = mx } :: acc)
    tbl []
  |> List.sort (fun e e' ->
         compare (-e.e_total, e.e_kind) (-e'.e_total, e'.e_kind))

(* ------------------------------------------------------------------ *)
(* Flow-event synthesis: one Chrome flow per complete request, from its
   arrival through each attempt's service start to its resolution, so
   Perfetto draws the causal arrows across the httpsim track. *)

let flows (g : t) : Tev.t list =
  List.concat_map
    (fun r ->
      let mk ts step =
        {
          Tev.ts;
          ev = Tev.Flow { step; id = r.r_id; name = "req"; tid = 3 };
        }
      in
      (mk r.r_arrival Tev.Flow_start
      :: List.map (fun a -> mk a.a_start Tev.Flow_step) r.r_attempts)
      @ [ mk r.r_done Tev.Flow_end ])
    g.requests

let with_flows (events : Tev.t list) (g : t) : Tev.t list =
  List.stable_sort
    (fun (e : Tev.t) (e' : Tev.t) -> compare e.ts e'.ts)
    (events @ flows g)
