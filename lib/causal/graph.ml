(* The span-graph vocabulary shared by the reconstructor and the report.

   A request's life is reconstructed as a {e critical path}: a gap-free
   tiling of [arrival, done] by segments, each naming the resource the
   request was causally waiting on during that interval.  The five
   attribution buckets are exact sums over that tiling — the invariant
   [running + sched_wait + io_wait + gc + fault_stall = latency] holds
   by construction for every complete request, and the reconstructor
   refuses to attribute a request whose tiling has a hole (eventlog
   wraparound can evict span openings; those become incomplete_spans,
   never silent mis-attribution). *)

type attempt_span = {
  a_no : int;  (** 1-based client attempt number *)
  a_enqueue : int;  (** entered the server queue *)
  a_start : int;  (** won the CPU *)
  a_finish : int;  (** reply (or rejection) timestamp *)
  a_status : int;  (** HTTP status of this attempt *)
  a_gc : int;  (** stop-the-world pause inside [start, finish] *)
  a_slow : int;  (** Backend_slow surcharge inside [start, finish] *)
}

type seg_kind =
  | Seg_stall  (** wire stall before the bytes reached the server *)
  | Seg_drop  (** waiting to detect a dropped connection *)
  | Seg_backoff  (** client-side retry backoff *)
  | Seg_queue of int
      (** waiting for the server CPU; payload is the request id whose
          service blocked this one ([-1] when the blocker's span was
          evicted from the ring) *)
  | Seg_service  (** on the CPU (includes its gc / slow sub-intervals) *)

type seg = {
  s_kind : seg_kind;
  s_t0 : int;
  s_t1 : int;
  s_attempt : int;  (** owning attempt number; 0 for pre-attempt waits *)
}

(** The five time-state buckets of the tentpole.  [b_sched] is time
    runnable but waiting for the (single, virtual) CPU; [b_io] is
    client-side wait between attempts; [b_fault] collects injected
    stalls, drop-detection waits and backend-slow surcharges. *)
type buckets = {
  b_running : int;
  b_sched : int;
  b_io : int;
  b_gc : int;
  b_fault : int;
}

let buckets_sum b = b.b_running + b.b_sched + b.b_io + b.b_gc + b.b_fault

type request = {
  r_id : int;
  r_conn : int;
  r_arrival : int;
  r_done : int;
  r_disposition : string;  (** ok / timeout / malformed / error *)
  r_attempts : attempt_span list;  (** in attempt order *)
  r_buckets : buckets;
  r_path : seg list;  (** the critical path, in time order *)
}

let latency r = r.r_done - r.r_arrival

(** Aggregated causal-edge statistics over all complete requests'
    critical paths: one row per edge kind. *)
type edge_stat = {
  e_kind : string;
  e_count : int;
  e_total : int;
  e_max : int;
}

type summary = {
  g_events : int;
  g_dropped : int;  (** ring evictions during capture *)
  g_requests : int;  (** request ids seen in any lifecycle event *)
  g_complete : int;
  g_incomplete : int;  (** requests excluded: truncated / unbalanced *)
  g_unbalanced : int;  (** machine spans with no matching open/close *)
  g_fiber_switches : int;
  g_handler_spans : int;
  g_ffi_spans : int;
  g_nursery_spans : int;
  g_performs : int;
  g_resumes : int;
  g_discontinues : int;
  g_restarts : int;
  g_wakeups : (string * (int * int)) list;
      (** reason -> (count, total wait ns), sorted by reason *)
}

type t = {
  summary : summary;
  requests : request list;  (** complete requests, sorted by id *)
}
