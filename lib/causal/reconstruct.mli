(** Eventlog -> span graph reconstruction.

    Builds per-request critical paths and attribution buckets from a
    captured eventlog, tolerating ring wraparound: a request whose span
    openings were evicted (or whose markers are structurally
    inconsistent) is counted in [summary.g_incomplete] and excluded
    from attribution rather than mis-attributed. *)

val of_events : ?dropped:int -> Retrofit_trace.Event.t list -> Graph.t

val of_trace : Retrofit_trace.Trace.t -> Graph.t

val edge_label : Graph.seg_kind -> string
(** Stable display name of a segment kind (queue blockers elided). *)

val critical_edges : Graph.t -> Graph.edge_stat list
(** Causal-edge totals over all complete requests' critical paths
    (service split into service / gc-pause / backend-slow), sorted by
    total time descending, then kind. *)

val flows : Graph.t -> Retrofit_trace.Event.t list
(** One Chrome flow (s/t/f chain) per complete request: arrival ->
    each attempt's service start -> resolution, id = request id. *)

val with_flows :
  Retrofit_trace.Event.t list -> Graph.t -> Retrofit_trace.Event.t list
(** The original events merged with {!flows}, stably sorted by
    timestamp — ready for {!Retrofit_trace.Export.to_chrome}. *)
