(** Deterministic text report over a span graph: summary counts,
    per-request attribution table (with the buckets-sum-to-latency
    invariant line), top-k critical-path edges, and p99 tail exemplars
    with their concrete span chains.  [top] bounds the edge table
    (default 8). *)

val render : ?top:int -> Graph.t -> string
