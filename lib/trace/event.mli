(** Typed events of the runtime eventlog.

    One constructor per observable runtime action: fiber lifecycle and
    stack management (§5.1–5.2), effect operations, handler
    setup/teardown, the external-call/callback boundary (§5.3), httpsim
    request lifecycle and fault injections, and scheduler queue depths.
    Timestamps are virtual (machine events: cumulative weighted
    instructions; httpsim events: simulated nanoseconds), so an
    eventlog is a pure function of the workload seed. *)

type flow_step = Flow_start | Flow_step | Flow_end

type ev =
  | Fiber_create of { id : int; parent : int; size : int }
  | Fiber_switch of { from_id : int; to_id : int }
  | Fiber_grow of { id : int; old_words : int; new_words : int; copied : int }
  | Fiber_free of { id : int }
  | Cache_hit of { size : int }
  | Cache_miss of { size : int }
  | Perform of { eff : string }
  | Resume of { kid : int; fibers : int }
  | Discontinue of { kid : int; exn : string }
  | Raise of { exn : string }
  | Handler_push of { hidx : int; fiber : int }
  | Handler_pop of { hidx : int; fiber : int }
  | Extcall_begin of { name : string }
  | Extcall_end of { name : string }
  | Callback_begin of { name : string }
  | Callback_end of { name : string }
  | Runq_depth of { depth : int }
  | Io_pending of { depth : int }
  | Wakeup of { reason : string; wait_ns : int }
      (** a runnable thunk ran: [ts] is the run instant, [ts - wait_ns]
          its runnable-enqueue instant, [reason] the wakeup cause *)
  | Request of {
      req : int;
      conn : int;
      attempt : int;
      status : int;
      start : int;
      finish : int;
    }
  | Fault_injected of { conn : int; kind : string }
  | Shed of { conn : int }
  | Retry of { conn : int; attempt : int }
  | Gc_pause of { start : int; dur : int }
  | Inflight_depth of { depth : int }
  | Req_arrival of { req : int; conn : int }
  | Req_enqueue of { req : int; attempt : int }
  | Req_stall of { req : int; dur : int }
  | Req_backoff of { req : int; attempt : int; dur : int }
  | Req_drop of { req : int; attempt : int; dur : int }
  | Req_fault_slow of { req : int; attempt : int; dur : int }
  | Req_done of { req : int; disposition : string }
  | Sup_child_exit of { path : string; how : string }
  | Sup_restart of { path : string }
  | Sup_escalate of { path : string }
  | Chaos_inject of { kind : string }
  | Drain_phase of { phase : string }
  | Nursery_begin of { name : string }
  | Nursery_end of { name : string }
  | Flow of { step : flow_step; id : int; name : string; tid : int }
      (** Chrome flow event (phase s/t/f) synthesized by the causal
          layer; [tid] anchors it to a subsystem track *)
  | Mark of { name : string }

type t = { ts : int; ev : ev }

val track : ev -> int
(** Virtual thread id for the Chrome exporter: 1 = fiber machine,
    2 = schedulers, 3 = httpsim, 4 = supervision/chaos, 0 = free-form
    marks. *)

val cat : ev -> string

val name : ev -> string

val args : ev -> (string * int) list

type phase =
  | Begin
  | End
  | Complete of int
  | Counter
  | Instant
  | Flow_phase of flow_step

val phase : ev -> phase

val phase_letter : phase -> string

val flow_id : ev -> int option
(** The flow binding id of a [Flow] event (the Chrome ["id"] field);
    [None] for every other constructor. *)
