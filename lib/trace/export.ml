(* Eventlog exporters and the Chrome trace_event schema checker.

   [to_chrome] renders the JSON Array Format variant of the Chrome
   trace_event spec (the one chrome://tracing and Perfetto both load):
   a top-level object with a "traceEvents" array plus metadata.
   Timestamps are written in the event's own virtual nanoseconds; we
   declare "displayTimeUnit":"ns" and never consult a wall clock, so
   the bytes are a pure function of the captured events.

   [to_text] is the human-readable flat form: one line per event,
   fixed-width timestamp, category, name, then key=value args.

   [validate_chrome] re-parses exporter output (or any file claiming
   the format) with a small self-contained JSON reader and checks the
   schema the tools actually rely on: traceEvents is an array of
   objects, each with string "name"/"cat"/"ph", integer "ts"/"pid"/
   "tid", a known phase letter, and a "dur" on complete events. *)

let escape_json s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pid = 1

let chrome_event buf (e : Event.t) =
  let ph = Event.phase e.ev in
  Buffer.add_string buf
    (Printf.sprintf {|{"name":"%s","cat":"%s","ph":"%s","ts":%d,"pid":%d,"tid":%d|}
       (escape_json (Event.name e.ev))
       (escape_json (Event.cat e.ev))
       (Event.phase_letter ph)
       (match ph with
       (* complete events span [start, finish]; ts is the start *)
       | Event.Complete d -> e.ts - d
       | _ -> e.ts)
       pid (Event.track e.ev));
  (match ph with
  | Event.Complete d -> Buffer.add_string buf (Printf.sprintf {|,"dur":%d|} d)
  | _ -> ());
  (* flow events (s/t/f) join on their binding id; "bp":"e" binds each
     point to the slice enclosing its timestamp, which is how Perfetto
     draws the arrow from span to span *)
  (match Event.flow_id e.ev with
  | Some id -> Buffer.add_string buf (Printf.sprintf {|,"id":%d,"bp":"e"|} id)
  | None -> ());
  (match Event.args e.ev with
  | [] -> ()
  | args ->
      Buffer.add_string buf {|,"args":{|};
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf {|"%s":%d|} (escape_json k) v))
        args;
      Buffer.add_char buf '}');
  Buffer.add_char buf '}'

let to_chrome ?(dropped = 0) events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf {|{"displayTimeUnit":"ns","droppedEvents":|};
  Buffer.add_string buf (string_of_int dropped);
  Buffer.add_string buf {|,"traceEvents":[|};
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string buf ",\n";
      chrome_event buf e)
    events;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let of_trace_chrome t = to_chrome ~dropped:(Trace.dropped t) (Trace.to_list t)

let to_text events =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (e : Event.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%12d %-6s %-24s" e.ts (Event.cat e.ev) (Event.name e.ev));
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf " %s=%d" k v))
        (Event.args e.ev);
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let of_trace_text t = to_text (Trace.to_list t)

(* ------------------------------------------------------------------ *)
(* Minimal JSON reader (objects, arrays, strings, ints/floats, atoms) *)

type json =
  | J_null
  | J_bool of bool
  | J_int of int
  | J_float of float
  | J_string of string
  | J_list of json list
  | J_obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("bad literal " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 't' -> Buffer.add_char buf '\t'
           | 'r' -> Buffer.add_char buf '\r'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
               if !pos + 4 >= n then fail "truncated \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               (match int_of_string_opt ("0x" ^ hex) with
               | Some code when code < 128 -> Buffer.add_char buf (Char.chr code)
               | Some _ -> Buffer.add_char buf '?'
               | None -> fail "bad \\u escape");
               pos := !pos + 4
           | c -> fail (Printf.sprintf "bad escape \\%c" c));
          advance ();
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match int_of_string_opt text with
    | Some i -> J_int i
    | None -> (
        match float_of_string_opt text with
        | Some f -> J_float f
        | None -> fail ("bad number " ^ text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          J_obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                J_obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          J_list []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                J_list (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          elements []
        end
    | Some '"' -> J_string (parse_string ())
    | Some 't' -> literal "true" (J_bool true)
    | Some 'f' -> literal "false" (J_bool false)
    | Some 'n' -> literal "null" J_null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing bytes after JSON value";
  v

(* ------------------------------------------------------------------ *)
(* Schema checking *)

let known_phases = [ "B"; "E"; "X"; "C"; "i"; "I"; "M"; "b"; "e"; "s"; "t"; "f" ]
let flow_phases = [ "s"; "t"; "f" ]

let validate_chrome (text : string) : (int, string) result =
  match parse_json text with
  | exception Bad_json msg -> Error ("not JSON: " ^ msg)
  | J_obj fields -> (
      match List.assoc_opt "traceEvents" fields with
      | None -> Error "missing traceEvents key"
      | Some (J_list events) -> (
          let check i = function
            | J_obj ev ->
                let str key =
                  match List.assoc_opt key ev with
                  | Some (J_string s) -> Ok s
                  | Some _ -> Error (Printf.sprintf "event %d: %s not a string" i key)
                  | None -> Error (Printf.sprintf "event %d: missing %s" i key)
                in
                let int key =
                  match List.assoc_opt key ev with
                  | Some (J_int _) -> Ok ()
                  | Some _ ->
                      Error (Printf.sprintf "event %d: %s not an integer" i key)
                  | None -> Error (Printf.sprintf "event %d: missing %s" i key)
                in
                let ( let* ) = Result.bind in
                let* _name = str "name" in
                let* _cat = str "cat" in
                let* ph = str "ph" in
                let* () =
                  if List.mem ph known_phases then Ok ()
                  else Error (Printf.sprintf "event %d: unknown phase %S" i ph)
                in
                let* () = int "ts" in
                let* () = int "pid" in
                let* () = int "tid" in
                let* () = if ph = "X" then int "dur" else Ok () in
                (* flow events are useless without a binding id *)
                let* () = if List.mem ph flow_phases then int "id" else Ok () in
                Ok ()
            | _ -> Error (Printf.sprintf "event %d: not an object" i)
          in
          let rec go i = function
            | [] -> Ok (List.length events)
            | ev :: rest -> (
                match check i ev with Ok () -> go (i + 1) rest | Error e -> Error e)
          in
          match go 0 events with
          | Ok count -> Ok count
          | Error e -> Error e)
      | Some _ -> Error "traceEvents is not an array")
  | _ -> Error "top level is not an object"
