(* The typed event vocabulary of the runtime eventlog.

   One constructor per thing the runtime can do that is worth seeing on
   a timeline: fiber lifecycle and stack management in the machine
   (§5.1-§5.2), effect operations, handler setup/teardown, the external
   call / callback boundary (§5.3), httpsim request lifecycle and fault
   injections, and scheduler queue depths.  Timestamps are virtual —
   fiber-machine events are stamped with the machine's cumulative
   instruction count, httpsim events with simulated nanoseconds — so an
   eventlog is a pure function of the workload seed.

   Span semantics: [*_begin]/[*_end] pairs nest strictly (they follow
   the call stack); [Request] carries both endpoints of its interval
   because overlapping requests do not nest.  Everything else is an
   instant.  [Runq_depth]/[Io_pending]/[Inflight_depth] are counter
   tracks. *)

(* Chrome flow-event step: where on a causal chain a flow event sits.
   Synthesized by the causal layer (lib/causal), never emitted by
   instrumentation sites directly. *)
type flow_step = Flow_start | Flow_step | Flow_end

type ev =
  (* fiber machine *)
  | Fiber_create of { id : int; parent : int; size : int }
  | Fiber_switch of { from_id : int; to_id : int }
  | Fiber_grow of { id : int; old_words : int; new_words : int; copied : int }
  | Fiber_free of { id : int }
  | Cache_hit of { size : int }
  | Cache_miss of { size : int }
  | Perform of { eff : string }
  | Resume of { kid : int; fibers : int }
  | Discontinue of { kid : int; exn : string }
  | Raise of { exn : string }
  | Handler_push of { hidx : int; fiber : int }
  | Handler_pop of { hidx : int; fiber : int }
  | Extcall_begin of { name : string }
  | Extcall_end of { name : string }
  | Callback_begin of { name : string }
  | Callback_end of { name : string }
  (* schedulers *)
  | Runq_depth of { depth : int }
  | Io_pending of { depth : int }
  | Wakeup of { reason : string; wait_ns : int }
      (* a runnable thunk left the queue and ran: [ts] is the run
         instant, [ts - wait_ns] the runnable-enqueue instant, [reason]
         why it became runnable (yield / fork / wakeup / io-* / cancel /
         kill) *)
  (* httpsim *)
  | Request of {
      req : int;
      conn : int;
      attempt : int;
      status : int;
      start : int;
      finish : int;
    }
  | Fault_injected of { conn : int; kind : string }
  | Shed of { conn : int }
  | Retry of { conn : int; attempt : int }
  | Gc_pause of { start : int; dur : int }
  | Inflight_depth of { depth : int }
  (* httpsim request causal lifecycle: enough endpoints that the causal
     layer can re-derive, for every request, a gap-free segmentation of
     [arrival, done] into running / queue / wire / gc / fault time *)
  | Req_arrival of { req : int; conn : int }
  | Req_enqueue of { req : int; attempt : int }
      (* the attempt reached the server queue (runnable-at-server) *)
  | Req_stall of { req : int; dur : int }
      (* wire stall fault delayed delivery; covers [ts - dur, ts] *)
  | Req_backoff of { req : int; attempt : int; dur : int }
      (* client retry backoff before [attempt]; covers [ts - dur, ts] *)
  | Req_drop of { req : int; attempt : int; dur : int }
      (* dropped on the wire; client detection delay covers [ts - dur, ts] *)
  | Req_fault_slow of { req : int; attempt : int; dur : int }
      (* fault-injected extra backend service time inside the attempt *)
  | Req_done of { req : int; disposition : string }
      (* terminal resolution: ok / timeout / malformed / error *)
  (* supervision / chaos (PR 6) *)
  | Sup_child_exit of { path : string; how : string }
  | Sup_restart of { path : string }
  | Sup_escalate of { path : string }
  | Chaos_inject of { kind : string }
  | Drain_phase of { phase : string }
  | Nursery_begin of { name : string }
  | Nursery_end of { name : string }
  (* Chrome flow event (ph s/t/f), synthesized from a causal graph;
     [tid] anchors the flow to the emitting subsystem's track *)
  | Flow of { step : flow_step; id : int; name : string; tid : int }
  (* free-form instant marker *)
  | Mark of { name : string }

type t = { ts : int; ev : ev }

(* Track assignment for the Chrome exporter: one virtual thread per
   subsystem so the three virtual time bases never interleave on a
   track. *)
let track = function
  | Fiber_create _ | Fiber_switch _ | Fiber_grow _ | Fiber_free _ | Cache_hit _
  | Cache_miss _ | Perform _ | Resume _ | Discontinue _ | Raise _ | Handler_push _
  | Handler_pop _ | Extcall_begin _ | Extcall_end _ | Callback_begin _
  | Callback_end _ ->
      1
  | Runq_depth _ | Io_pending _ | Wakeup _ -> 2
  | Request _ | Fault_injected _ | Shed _ | Retry _ | Gc_pause _ | Inflight_depth _
  | Req_arrival _ | Req_enqueue _ | Req_stall _ | Req_backoff _ | Req_drop _
  | Req_fault_slow _ | Req_done _ ->
      3
  | Sup_child_exit _ | Sup_restart _ | Sup_escalate _ | Chaos_inject _
  | Drain_phase _ | Nursery_begin _ | Nursery_end _ ->
      4
  | Flow { tid; _ } -> tid
  | Mark _ -> 0

let cat = function
  | Fiber_create _ | Fiber_switch _ | Fiber_grow _ | Fiber_free _ | Cache_hit _
  | Cache_miss _ ->
      "fiber"
  | Perform _ | Resume _ | Discontinue _ | Raise _ | Handler_push _ | Handler_pop _
    ->
      "effect"
  | Extcall_begin _ | Extcall_end _ | Callback_begin _ | Callback_end _ -> "ffi"
  | Runq_depth _ | Io_pending _ | Wakeup _ -> "sched"
  | Request _ | Fault_injected _ | Shed _ | Retry _ | Gc_pause _ | Inflight_depth _
  | Req_arrival _ | Req_enqueue _ | Req_stall _ | Req_backoff _ | Req_drop _
  | Req_fault_slow _ | Req_done _ ->
      "http"
  | Sup_child_exit _ | Sup_restart _ | Sup_escalate _ | Nursery_begin _
  | Nursery_end _ ->
      "sup"
  | Chaos_inject _ | Drain_phase _ -> "chaos"
  | Flow _ -> "flow"
  | Mark _ -> "mark"

let name = function
  | Fiber_create _ -> "fiber_create"
  | Fiber_switch _ -> "fiber_switch"
  | Fiber_grow _ -> "fiber_grow"
  | Fiber_free _ -> "fiber_free"
  | Cache_hit _ -> "stack_cache_hit"
  | Cache_miss _ -> "stack_cache_miss"
  | Perform { eff } -> "perform:" ^ eff
  | Resume _ -> "resume"
  | Discontinue _ -> "discontinue"
  | Raise { exn } -> "raise:" ^ exn
  | Handler_push _ -> "handler_push"
  | Handler_pop _ -> "handler_pop"
  | Extcall_begin { name } | Extcall_end { name } -> "extcall:" ^ name
  | Callback_begin { name } | Callback_end { name } -> "callback:" ^ name
  | Runq_depth _ -> "runq_depth"
  | Io_pending _ -> "io_pending"
  | Wakeup { reason; _ } -> "wakeup:" ^ reason
  | Request _ -> "request"
  | Req_arrival _ -> "req_arrival"
  | Req_enqueue _ -> "req_enqueue"
  | Req_stall _ -> "req_stall"
  | Req_backoff _ -> "req_backoff"
  | Req_drop _ -> "req_drop"
  | Req_fault_slow _ -> "req_fault_slow"
  | Req_done { disposition; _ } -> "req_done:" ^ disposition
  | Fault_injected { kind; _ } -> "fault:" ^ kind
  | Shed _ -> "shed"
  | Retry _ -> "retry"
  | Gc_pause _ -> "gc_pause"
  | Inflight_depth _ -> "inflight_depth"
  | Sup_child_exit { path; how } -> "sup_exit:" ^ path ^ ":" ^ how
  | Sup_restart { path } -> "sup_restart:" ^ path
  | Sup_escalate { path } -> "sup_escalate:" ^ path
  | Chaos_inject { kind } -> "chaos:" ^ kind
  | Drain_phase { phase } -> "drain:" ^ phase
  | Nursery_begin { name } -> "nursery_begin:" ^ name
  | Nursery_end { name } -> "nursery_end:" ^ name
  | Flow { name; _ } -> name
  | Mark { name } -> name

(* integer arguments, rendered into the exporters' args objects *)
let args = function
  | Fiber_create { id; parent; size } ->
      [ ("id", id); ("parent", parent); ("size", size) ]
  | Fiber_switch { from_id; to_id } -> [ ("from", from_id); ("to", to_id) ]
  | Fiber_grow { id; old_words; new_words; copied } ->
      [ ("id", id); ("old", old_words); ("new", new_words); ("copied", copied) ]
  | Fiber_free { id } -> [ ("id", id) ]
  | Cache_hit { size } | Cache_miss { size } -> [ ("size", size) ]
  | Perform _ -> []
  | Resume { kid; fibers } -> [ ("kid", kid); ("fibers", fibers) ]
  | Discontinue { kid; _ } -> [ ("kid", kid) ]
  | Raise _ -> []
  | Handler_push { hidx; fiber } | Handler_pop { hidx; fiber } ->
      [ ("hidx", hidx); ("fiber", fiber) ]
  | Extcall_begin _ | Extcall_end _ | Callback_begin _ | Callback_end _ -> []
  | Runq_depth { depth } | Io_pending { depth } | Inflight_depth { depth } ->
      [ ("depth", depth) ]
  | Wakeup { wait_ns; _ } -> [ ("wait_ns", wait_ns) ]
  | Request { req; conn; attempt; status; start; finish } ->
      [ ("req", req); ("conn", conn); ("attempt", attempt); ("status", status);
        ("dur", finish - start) ]
  | Fault_injected { conn; _ } -> [ ("conn", conn) ]
  | Shed { conn } -> [ ("conn", conn) ]
  | Retry { conn; attempt } -> [ ("conn", conn); ("attempt", attempt) ]
  | Gc_pause { start = _; dur } -> [ ("dur", dur) ]
  | Req_arrival { req; conn } -> [ ("req", req); ("conn", conn) ]
  | Req_enqueue { req; attempt } -> [ ("req", req); ("attempt", attempt) ]
  | Req_stall { req; dur } -> [ ("req", req); ("dur", dur) ]
  | Req_backoff { req; attempt; dur } ->
      [ ("req", req); ("attempt", attempt); ("dur", dur) ]
  | Req_drop { req; attempt; dur } ->
      [ ("req", req); ("attempt", attempt); ("dur", dur) ]
  | Req_fault_slow { req; attempt; dur } ->
      [ ("req", req); ("attempt", attempt); ("dur", dur) ]
  | Req_done { req; _ } -> [ ("req", req) ]
  | Sup_child_exit _ | Sup_restart _ | Sup_escalate _ | Chaos_inject _
  | Drain_phase _ | Nursery_begin _ | Nursery_end _ ->
      []
  | Flow _ -> []
  | Mark _ -> []

type phase =
  | Begin
  | End
  | Complete of int (* duration *)
  | Counter
  | Instant
  | Flow_phase of flow_step

(* Nursery scopes overlap freely (one per live connection), so unlike
   the FFI spans they cannot be Chrome B/E pairs, which must nest
   strictly per thread: they export as instants and the causal layer
   pairs them by name. *)
let phase = function
  | Extcall_begin _ | Callback_begin _ -> Begin
  | Extcall_end _ | Callback_end _ -> End
  | Request { start; finish; _ } -> Complete (finish - start)
  | Gc_pause { dur; _ } -> Complete dur
  | Runq_depth _ | Io_pending _ | Inflight_depth _ -> Counter
  | Flow { step; _ } -> Flow_phase step
  | _ -> Instant

(* Chrome trace_event phase letter *)
let phase_letter = function
  | Begin -> "B"
  | End -> "E"
  | Complete _ -> "X"
  | Counter -> "C"
  | Instant -> "i"
  | Flow_phase Flow_start -> "s"
  | Flow_phase Flow_step -> "t"
  | Flow_phase Flow_end -> "f"

(* Flow binding id, rendered as the Chrome "id" field on s/t/f events. *)
let flow_id = function Flow { id; _ } -> Some id | _ -> None
