(* The typed event vocabulary of the runtime eventlog.

   One constructor per thing the runtime can do that is worth seeing on
   a timeline: fiber lifecycle and stack management in the machine
   (§5.1-§5.2), effect operations, handler setup/teardown, the external
   call / callback boundary (§5.3), httpsim request lifecycle and fault
   injections, and scheduler queue depths.  Timestamps are virtual —
   fiber-machine events are stamped with the machine's cumulative
   instruction count, httpsim events with simulated nanoseconds — so an
   eventlog is a pure function of the workload seed.

   Span semantics: [*_begin]/[*_end] pairs nest strictly (they follow
   the call stack); [Request] carries both endpoints of its interval
   because overlapping requests do not nest.  Everything else is an
   instant.  [Runq_depth]/[Io_pending]/[Inflight_depth] are counter
   tracks. *)

type ev =
  (* fiber machine *)
  | Fiber_create of { id : int; parent : int; size : int }
  | Fiber_switch of { from_id : int; to_id : int }
  | Fiber_grow of { id : int; old_words : int; new_words : int; copied : int }
  | Fiber_free of { id : int }
  | Cache_hit of { size : int }
  | Cache_miss of { size : int }
  | Perform of { eff : string }
  | Resume of { kid : int; fibers : int }
  | Discontinue of { kid : int; exn : string }
  | Raise of { exn : string }
  | Handler_push of { hidx : int; fiber : int }
  | Handler_pop of { hidx : int; fiber : int }
  | Extcall_begin of { name : string }
  | Extcall_end of { name : string }
  | Callback_begin of { name : string }
  | Callback_end of { name : string }
  (* schedulers *)
  | Runq_depth of { depth : int }
  | Io_pending of { depth : int }
  (* httpsim *)
  | Request of { conn : int; attempt : int; status : int; start : int; finish : int }
  | Fault_injected of { conn : int; kind : string }
  | Shed of { conn : int }
  | Retry of { conn : int; attempt : int }
  | Gc_pause of { start : int; dur : int }
  | Inflight_depth of { depth : int }
  (* supervision / chaos (PR 6) *)
  | Sup_child_exit of { path : string; how : string }
  | Sup_restart of { path : string }
  | Sup_escalate of { path : string }
  | Chaos_inject of { kind : string }
  | Drain_phase of { phase : string }
  (* free-form instant marker *)
  | Mark of { name : string }

type t = { ts : int; ev : ev }

(* Track assignment for the Chrome exporter: one virtual thread per
   subsystem so the three virtual time bases never interleave on a
   track. *)
let track = function
  | Fiber_create _ | Fiber_switch _ | Fiber_grow _ | Fiber_free _ | Cache_hit _
  | Cache_miss _ | Perform _ | Resume _ | Discontinue _ | Raise _ | Handler_push _
  | Handler_pop _ | Extcall_begin _ | Extcall_end _ | Callback_begin _
  | Callback_end _ ->
      1
  | Runq_depth _ | Io_pending _ -> 2
  | Request _ | Fault_injected _ | Shed _ | Retry _ | Gc_pause _ | Inflight_depth _
    ->
      3
  | Sup_child_exit _ | Sup_restart _ | Sup_escalate _ | Chaos_inject _
  | Drain_phase _ ->
      4
  | Mark _ -> 0

let cat = function
  | Fiber_create _ | Fiber_switch _ | Fiber_grow _ | Fiber_free _ | Cache_hit _
  | Cache_miss _ ->
      "fiber"
  | Perform _ | Resume _ | Discontinue _ | Raise _ | Handler_push _ | Handler_pop _
    ->
      "effect"
  | Extcall_begin _ | Extcall_end _ | Callback_begin _ | Callback_end _ -> "ffi"
  | Runq_depth _ | Io_pending _ -> "sched"
  | Request _ | Fault_injected _ | Shed _ | Retry _ | Gc_pause _ | Inflight_depth _
    ->
      "http"
  | Sup_child_exit _ | Sup_restart _ | Sup_escalate _ -> "sup"
  | Chaos_inject _ | Drain_phase _ -> "chaos"
  | Mark _ -> "mark"

let name = function
  | Fiber_create _ -> "fiber_create"
  | Fiber_switch _ -> "fiber_switch"
  | Fiber_grow _ -> "fiber_grow"
  | Fiber_free _ -> "fiber_free"
  | Cache_hit _ -> "stack_cache_hit"
  | Cache_miss _ -> "stack_cache_miss"
  | Perform { eff } -> "perform:" ^ eff
  | Resume _ -> "resume"
  | Discontinue _ -> "discontinue"
  | Raise { exn } -> "raise:" ^ exn
  | Handler_push _ -> "handler_push"
  | Handler_pop _ -> "handler_pop"
  | Extcall_begin { name } | Extcall_end { name } -> "extcall:" ^ name
  | Callback_begin { name } | Callback_end { name } -> "callback:" ^ name
  | Runq_depth _ -> "runq_depth"
  | Io_pending _ -> "io_pending"
  | Request _ -> "request"
  | Fault_injected { kind; _ } -> "fault:" ^ kind
  | Shed _ -> "shed"
  | Retry _ -> "retry"
  | Gc_pause _ -> "gc_pause"
  | Inflight_depth _ -> "inflight_depth"
  | Sup_child_exit { path; how } -> "sup_exit:" ^ path ^ ":" ^ how
  | Sup_restart { path } -> "sup_restart:" ^ path
  | Sup_escalate { path } -> "sup_escalate:" ^ path
  | Chaos_inject { kind } -> "chaos:" ^ kind
  | Drain_phase { phase } -> "drain:" ^ phase
  | Mark { name } -> name

(* integer arguments, rendered into the exporters' args objects *)
let args = function
  | Fiber_create { id; parent; size } ->
      [ ("id", id); ("parent", parent); ("size", size) ]
  | Fiber_switch { from_id; to_id } -> [ ("from", from_id); ("to", to_id) ]
  | Fiber_grow { id; old_words; new_words; copied } ->
      [ ("id", id); ("old", old_words); ("new", new_words); ("copied", copied) ]
  | Fiber_free { id } -> [ ("id", id) ]
  | Cache_hit { size } | Cache_miss { size } -> [ ("size", size) ]
  | Perform _ -> []
  | Resume { kid; fibers } -> [ ("kid", kid); ("fibers", fibers) ]
  | Discontinue { kid; _ } -> [ ("kid", kid) ]
  | Raise _ -> []
  | Handler_push { hidx; fiber } | Handler_pop { hidx; fiber } ->
      [ ("hidx", hidx); ("fiber", fiber) ]
  | Extcall_begin _ | Extcall_end _ | Callback_begin _ | Callback_end _ -> []
  | Runq_depth { depth } | Io_pending { depth } | Inflight_depth { depth } ->
      [ ("depth", depth) ]
  | Request { conn; attempt; status; start; finish } ->
      [ ("conn", conn); ("attempt", attempt); ("status", status);
        ("dur", finish - start) ]
  | Fault_injected { conn; _ } -> [ ("conn", conn) ]
  | Shed { conn } -> [ ("conn", conn) ]
  | Retry { conn; attempt } -> [ ("conn", conn); ("attempt", attempt) ]
  | Gc_pause { start = _; dur } -> [ ("dur", dur) ]
  | Sup_child_exit _ | Sup_restart _ | Sup_escalate _ | Chaos_inject _
  | Drain_phase _ ->
      []
  | Mark _ -> []

type phase = Begin | End | Complete of int (* duration *) | Counter | Instant

let phase = function
  | Extcall_begin _ | Callback_begin _ -> Begin
  | Extcall_end _ | Callback_end _ -> End
  | Request { start; finish; _ } -> Complete (finish - start)
  | Gc_pause { dur; _ } -> Complete dur
  | Runq_depth _ | Io_pending _ | Inflight_depth _ -> Counter
  | _ -> Instant

(* Chrome trace_event phase letter *)
let phase_letter = function
  | Begin -> "B"
  | End -> "E"
  | Complete _ -> "X"
  | Counter -> "C"
  | Instant -> "i"
