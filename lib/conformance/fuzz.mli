(** Campaign driver: generate, cross-check, shrink, report.

    Program [i] of a campaign is generated from the derived seed
    [prog_seed ~seed i], so any failure is replayable from the campaign
    seed and the program index alone — independent of how many programs
    ran before it or of any other command-line setting. *)

type failure = {
  index : int;
  prog_seed : int;
  report : Oracle.report;
  analysis : string option;
      (** analyzer-vs-oracle soundness contradiction, when [analyze] *)
  policy : string option;
      (** name of the stack policy whose run disagreed with the default
          policy, when the failure is a policy differential *)
  policy_outcome : Outcome.t option;
  shrunk : Ir.program option;
  shrunk_report : Oracle.report option;
}

type stats = {
  programs : int;
  agreements : (string * int) list;  (** per pair *)
  skips : (string * int) list;  (** per pair, fuel-outs *)
  policy_agreements : (string * int) list;
      (** per stack policy, vs the default policy's outcome *)
  policy_skips : (string * int) list;
      (** per stack policy: fuel-outs, plus reservation exhaustion the
          default policy did not hit *)
  audit_checks : int;
  dwarf_probes : int;
  analyzed : int;  (** programs run through the static analyzer *)
  dispatch_checks : int;
      (** dynamic perform dispatches held against the handler-resolution
          candidate sets (instrumented runs, all campaign configs) *)
  bound_checks : int;
      (** counter tables held against the static cost bounds *)
  failures : failure list;
}

val prog_seed : seed:int -> int -> int
(** Deterministic per-program seed derived from the campaign seed. *)

val default_policies : Retrofit_fiber.Stack_policy.t list
(** The non-default stack policies ([segmented], [segmented-cow],
    [reserve]) — the [policies] argument of the nightly differential
    matrix. *)

val campaign :
  ?cfg:Gen.cfg ->
  ?fiber_config:Retrofit_fiber.Config.t ->
  ?fib_fuel:int ->
  ?sem_one_shot:bool ->
  ?audit:bool ->
  ?dwarf:bool ->
  ?analyze:bool ->
  ?max_failures:int ->
  ?shrink:bool ->
  ?policies:Retrofit_fiber.Stack_policy.t list ->
  ?multishot:bool ->
  seed:int ->
  count:int ->
  unit ->
  stats
(** Runs [count] programs.  Stops early after [max_failures] failures
    (default 5).  [dwarf] (default true) samples unwind round-trips,
    reusing the per-program seed for probe placement.  [analyze]
    (default false) additionally runs {!Static.analyze} on every
    program and records a failure whenever the analyzer's [Safe] or
    [Must] claims contradict a backend's observed outcome (or the
    analyzer itself raises).  With [analyze] on the campaign also
    re-runs the fiber backend instrumented — under the default config
    and every listed policy — recording the actual handler identity at
    each dynamic perform site and the final counter table, and fails on
    any dispatch outside the site's statically resolved candidate set,
    any handler-less [Unhandled] at a site not flagged
    [+toplevel]/[+via-c], and any measured counter exceeding its finite
    static bound ({!Static.dispatch_contradiction},
    {!Static.bound_contradiction}).  When the metrics registry is
    enabled, each analyzed program's per-site resolution census is
    recorded as [perform_site_resolution_total{class=...}].  [shrink]
    (default true) minimises each failing program before recording it;
    with [analyze] on, a program stays interesting while either the
    oracle disagrees or the contradiction persists.

    [policies] (default [[]]) additionally runs every program on the
    fiber backend under each listed stack policy and diffs the outcome
    against the default policy's run; a disagreement (or a policy-side
    audit violation or unwind failure) is a campaign failure whose
    shrunk repro names the offending policy.  Fuel-outs, and a
    policy-side [Stack_overflow] the default policy did not produce
    (reservation exhaustion), are skips.

    [multishot] (default [false]) runs a multishot campaign: the
    semantics machine drops its one-shot discipline and the native leg
    is skipped (host continuations cannot resume twice), so generated
    programs that resume a continuation multiple times are checked
    semantics<->fiber — and across [policies], exercising clone
    strategies.  Raises [Invalid_argument] — loudly, rather than
    generating programs the backend then rejects — when [fiber_config]
    does not have multishot cloning enabled. *)

val replay_corpus : unit -> (string * string) list
(** Runs every {!Corpus} entry through the oracle and pins its native
    outcome to the entry's [expect]; returns [(name, problem)] pairs,
    empty when the corpus is green. *)

val failure_to_string : failure -> string

val stats_to_string : stats -> string
