(* Chaos campaign over the supervised websim: each scenario derives a
   small randomized config from the campaign seed, runs it TWICE, and
   byte-compares the two summary lines — the determinism contract of
   the chaos scheduler (§2.3 protocol under adversarial interleaving)
   checked end-to-end through supervision, nurseries, watchdog and
   drain.  On top of determinism each run is audited for accounting
   invariants: every request has exactly one disposition, nothing is
   silently dropped, and a chaos-free undrained run completes
   everything with zero restarts. *)

module Rng = Retrofit_util.Rng
module Sched = Retrofit_core.Sched
module Sup = Retrofit_core.Supervise
module Sim = Retrofit_httpsim.Supervised
module Server = Retrofit_httpsim.Server

type failure = {
  index : int;
  scenario_seed : int;
  kind : string;  (** [nondet] | [invariant] | [crash] *)
  detail : string;
}

type stats = {
  scenarios : int;
  runs : int;  (** simulation executions (2x per scenario) *)
  chaotic : int;  (** scenarios with chaos enabled *)
  drained : int;  (** scenarios exercising graceful drain *)
  restarts : int;  (** total supervisor restarts observed *)
  failures : failure list;
}

let scenario_seed ~seed i = (seed lxor ((i + 1) * 0x85EBCA6B)) land max_int

let scenario_config sseed =
  let rng = Rng.create sseed in
  let connections = 2 + Rng.int rng 5 in
  let requests_per_conn = 1 + Rng.int rng 4 in
  let shards = 1 + Rng.int rng 2 in
  let base = Sim.default_config ~seed:sseed in
  let chaos =
    if Rng.bool rng then
      let c = Sched.Chaos.default ~seed:(sseed lxor 0x5bd1e995) in
      Some
        {
          c with
          Sched.Chaos.kill_rate = (if Rng.bool rng then 0.01 else 0.002);
          delay_rate = 0.05 +. Rng.float rng 0.1;
        }
    else None
  in
  let drain =
    if Rng.int rng 3 = 0 then
      Some (base.Sim.interarrival_ns * connections * (1 + Rng.int rng 2))
    else None
  in
  let model =
    match Rng.int rng 3 with 0 -> Server.mc | 1 -> Server.go | _ -> Server.lwt
  in
  ( {
      base with
      Sim.connections;
      requests_per_conn;
      shards;
      chaos;
      wedge_rate = (if Rng.int rng 4 = 0 then 0.3 else 0.0);
      wedge_ns = 3_000_000;
      listener_strategy =
        (match Rng.int rng 3 with
        | 0 -> Sup.One_for_one
        | 1 -> Sup.One_for_all
        | _ -> Sup.Rest_for_one);
      max_restarts = 50;
      drain_after_ns = drain;
      drain_deadline_ns = 1_000_000;
    },
    model )

let process_for (model : Server.model) =
  if model.Server.name = "go" then Retrofit_httpsim.Server_go.process_raw_with
  else if model.Server.name = "lwt" then
    Retrofit_httpsim.Server_monad.process_raw_with
  else Retrofit_httpsim.Server_effects.process_raw_with

let check_invariants cfg (s : Sim.summary) =
  let errs = ref [] in
  let add m = errs := m :: !errs in
  if Sim.accounted s <> s.Sim.total then
    add
      (Printf.sprintf "accounting: %d dispositions over %d requests"
         (Sim.accounted s) s.Sim.total);
  if s.Sim.silent <> 0 then
    add (Printf.sprintf "silent drops: %d" s.Sim.silent);
  (if cfg.Sim.chaos = None && cfg.Sim.drain_after_ns = None
   && cfg.Sim.wedge_rate = 0.0 then begin
     if s.Sim.completed <> s.Sim.total then
       add
         (Printf.sprintf "calm run incomplete: %d/%d" s.Sim.completed
            s.Sim.total);
     if s.Sim.restarts <> 0 then
       add (Printf.sprintf "calm run restarted %d times" s.Sim.restarts)
   end);
  List.rev !errs

let campaign ?(count = 200) ~seed () =
  let failures = ref [] in
  let runs = ref 0 in
  let chaotic = ref 0 in
  let drained = ref 0 in
  let restarts = ref 0 in
  for i = 0 to count - 1 do
    let sseed = scenario_seed ~seed i in
    let cfg, model = scenario_config sseed in
    if cfg.Sim.chaos <> None then incr chaotic;
    if cfg.Sim.drain_after_ns <> None then incr drained;
    let fail kind detail =
      failures := { index = i; scenario_seed = sseed; kind; detail } :: !failures
    in
    match
      let run () =
        incr runs;
        Sim.run ~model ~process:(process_for model) cfg
      in
      let a = run () in
      let b = run () in
      (a, b)
    with
    | exception e -> fail "crash" (Printexc.to_string e)
    | a, b ->
        let la = Sim.summary_to_string a and lb = Sim.summary_to_string b in
        if la <> lb then
          fail "nondet" (Printf.sprintf "run1: %s\nrun2: %s" la lb)
        else begin
          restarts := !restarts + a.Sim.restarts;
          match check_invariants cfg a with
          | [] -> ()
          | errs -> fail "invariant" (String.concat "; " errs ^ " | " ^ la)
        end
  done;
  {
    scenarios = count;
    runs = !runs;
    chaotic = !chaotic;
    drained = !drained;
    restarts = !restarts;
    failures = List.rev !failures;
  }

let stats_to_string st =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "chaos campaign: %d scenarios (%d runs, %d chaotic, %d drained), %d \
     restarts, %d failures\n"
    st.scenarios st.runs st.chaotic st.drained st.restarts
    (List.length st.failures);
  List.iter
    (fun f ->
      Printf.bprintf b "  FAIL #%d seed=%d [%s] %s\n" f.index f.scenario_seed
        f.kind f.detail)
    st.failures;
  Buffer.contents b
