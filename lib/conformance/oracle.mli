(** Differential oracle: run one program on all three models and diff
    the normalised outcomes.

    Comparison rules:
    - a pair where either side ran out of fuel is {i skipped}
      (inconclusive, not a disagreement);
    - [Model_error] outcomes are never equal to anything, and any
      model error fails the report outright (even if every pair
      skipped);
    - otherwise outcomes must be structurally equal.

    A report also fails if the fiber machine's runtime auditor
    recorded a violation or a sampled DWARF unwind failed to
    round-trip. *)

type verdict = Agree | Skip | Diff

val compare_pair : Outcome.t -> Outcome.t -> verdict
(** The pairwise rule above, exposed so policy-differential campaigns
    can diff extra backend runs under the same conventions. *)

type report = {
  program : Ir.program;
  sem : Outcome.t;
  fib : Outcome.t;
  nat : Outcome.t;
  pairs : (string * verdict) list;
      (** ["semantics<->fiber"], ["fiber<->native"],
          ["semantics<->native"] *)
  audit_checks : int;
  audit_violations : (string * string) list;
  dwarf_probes : int;
  dwarf_failures : string list;
}

val run :
  ?sem_fuel:int ->
  ?fib_fuel:int ->
  ?nat_fuel:int ->
  ?audit:bool ->
  ?dwarf_seed:int ->
  ?fiber_config:Retrofit_fiber.Config.t ->
  ?sem_one_shot:bool ->
  ?with_native:bool ->
  Ir.program ->
  report
(** [sem_one_shot] defaults to [true] so the §4 machine enforces the
    same one-shot discipline as the other two models; pass [false] to
    deliberately reintroduce multi-shot semantics (used by the
    mutation-catching tests and by multishot campaigns).

    [with_native] defaults to [true]; pass [false] to drop the native
    leg — its outcome is recorded as [Fuel_out] so every pair involving
    it is skipped.  Multishot campaigns need this: host continuations
    are genuinely one-shot, so the native backend cannot execute
    programs that resume twice. *)

val ok : report -> bool

val to_string : report -> string
