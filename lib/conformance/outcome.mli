(** Normalised results, the common currency of the differential oracle.

    Each backend maps its own notion of termination onto this type:

    - a program value → [Value];
    - an uncaught user exception → [Exn (label, payload)];
    - an effect reaching a handler-less boundary (the main stack, or a
      callback frame — §3.1's "effects do not cross C frames") →
      [Unhandled] (the semantics raises label "Unhandled", the machine
      its interned built-in, native OCaml [Effect.Unhandled]);
    - a second resume of a continuation → [One_shot] (label
      "Invalid_argument" in the semantics and machine,
      [Continuation_already_resumed] natively);
    - step/op budget exhausted → [Fuel_out], which makes any comparison
      with that backend inconclusive rather than a disagreement;
    - a state a correct model cannot reach (stuck configurations, fatal
      machine errors, interpreter failures) → [Model_error], which is
      never equal to anything, including itself: a model error is
      always a reportable failure. *)

type t =
  | Value of int
  | Exn of string * int
  | Unhandled
  | One_shot
  | Fuel_out
  | Model_error of string

val normalize_exn : string -> int -> t
(** An uncaught exception by label and payload: "Unhandled" →
    {!Unhandled}, "Invalid_argument" → {!One_shot}, anything else →
    [Exn]. *)

val equal : t -> t -> bool

val to_string : t -> string
