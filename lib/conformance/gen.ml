module Rng = Retrofit_util.Rng

type cfg = {
  max_fns : int;
  max_depth : int;
  small_count : int;
  big_count : int;
  extcalls : bool;
  oneshot_violations : bool;
}

let default_cfg =
  {
    max_fns = 5;
    max_depth = 4;
    small_count = 6;
    big_count = 160;
    extcalls = true;
    oneshot_violations = true;
  }

type info = { gi_name : string; gi_arity : int; gi_kind : Ir.kind; gi_rec : bool }

type st = {
  rng : Rng.t;
  cfg : cfg;
  mutable pool : info list;  (* earlier functions, oldest first *)
  mutable fresh : int;
  mutable big_left : bool;  (* at most one deep-recursion driver *)
  mutable in_main : bool;
}

let fresh st prefix =
  st.fresh <- st.fresh + 1;
  Printf.sprintf "%s%d" prefix st.fresh

let pick st xs = List.nth xs (Rng.int st.rng (List.length xs))

let plain_fns st = List.filter (fun i -> i.gi_kind = Ir.Plain) st.pool

let arity1_fns st = List.filter (fun i -> i.gi_kind = Ir.Plain && i.gi_arity = 1) st.pool

let eff_fns st = List.filter (fun i -> i.gi_kind = Ir.Eff_case) st.pool

let exn_labels = [ "A"; "B" ]

let eff_labels = [ "E1"; "E2" ]

let catch_labels =
  (* user labels plus the built-ins a Try may legitimately observe *)
  [ "A"; "A"; "B"; "B"; "Division_by_zero"; "Unhandled"; "Invalid_argument" ]

(* The first argument of a recursive call is its termination counter
   and is always a literal: small in general, so nested recursion stays
   multiplicative-bounded, with one big draw allowed per program to
   force stack growth. *)
let rec_counter st =
  if st.in_main && st.big_left && Rng.int st.rng 3 = 0 then begin
    st.big_left <- false;
    Ir.Int (st.cfg.big_count + Rng.int st.rng 64)
  end
  else Ir.Int (1 + Rng.int st.rng st.cfg.small_count)

let rec gen_expr st ~depth ~vars ~kvar : Ir.expr =
  let leaf () =
    if vars <> [] && Rng.bool st.rng then Ir.Var (pick st vars)
    else Ir.Int (Rng.int st.rng 21 - 10)
  in
  if depth <= 0 then leaf ()
  else begin
    let sub ?(d = depth - 1) () = gen_expr st ~depth:d ~vars ~kvar in
    let plain = plain_fns st in
    let arity1 = arity1_fns st in
    let choices =
      [
        (18, fun () -> leaf ());
        ( 14,
          fun () ->
            let op =
              pick st
                [ Ir.Add; Ir.Add; Ir.Sub; Ir.Sub; Ir.Mul; Ir.Div; Ir.Lt; Ir.Le; Ir.Eq ]
            in
            Ir.Binop (op, sub (), sub ()) );
        (8, fun () -> Ir.If (sub (), sub (), sub ()));
        ( 6,
          fun () ->
            let x = fresh st "v" in
            Ir.Let (x, sub (), gen_expr st ~depth:(depth - 1) ~vars:(x :: vars) ~kvar)
        );
        (5, fun () -> Ir.Seq (sub (), sub ()));
        (6, fun () -> Ir.Raise (pick st exn_labels, sub ()));
        ( 8,
          fun () ->
            let body = sub () in
            let n = 1 + Rng.int st.rng 2 in
            let rec labels acc = function
              | 0 -> acc
              | n ->
                  let l = pick st catch_labels in
                  labels (if List.mem l acc then acc else l :: acc) (n - 1)
            in
            let cases =
              List.map
                (fun l ->
                  let x = fresh st "e" in
                  (l, x, gen_expr st ~depth:(depth - 1) ~vars:(x :: vars) ~kvar))
                (labels [] n)
            in
            Ir.Try (body, cases) );
        (10, fun () -> Ir.Perform (pick st eff_labels, sub ()));
      ]
      @ (if plain = [] then []
         else [ (10, fun () -> gen_call st ~depth ~vars ~kvar (pick st plain)) ])
      @ (if arity1 = [] then []
         else [ (10, fun () -> gen_handle st ~depth ~vars ~kvar) ])
      @ (if not st.cfg.extcalls then []
         else
           (4, fun () -> Ir.Ext_id (sub ()))
           ::
           (if arity1 = [] then []
            else
              [
                ( 4,
                  fun () ->
                    let target = pick st arity1 in
                    let arg = if target.gi_rec then rec_counter st else sub () in
                    Ir.Callback (target.gi_name, arg) );
              ]))
      @
      match kvar with
      | None -> []
      | Some k ->
          [
            (14, fun () -> Ir.Continue (k, sub ()));
            (6, fun () -> Ir.Discontinue (k, pick st exn_labels, sub ()));
          ]
          @
          if st.cfg.oneshot_violations then
            [
              ( 10,
                fun () ->
                  Ir.Seq (Ir.Continue (k, sub ~d:1 ()), Ir.Continue (k, sub ~d:1 ())) );
              ( 4,
                fun () ->
                  Ir.Seq
                    ( Ir.Discontinue (k, pick st exn_labels, sub ~d:1 ()),
                      Ir.Continue (k, sub ~d:1 ()) ) );
            ]
          else []
    in
    let total = List.fold_left (fun n (w, _) -> n + w) 0 choices in
    let rec select r = function
      | [] -> leaf ()
      | (w, f) :: rest -> if r < w then f () else select (r - w) rest
    in
    select (Rng.int st.rng total) choices
  end

and gen_call st ~depth ~vars ~kvar (target : info) =
  let args =
    List.init target.gi_arity (fun i ->
        if i = 0 && target.gi_rec then rec_counter st
        else gen_expr st ~depth:(depth - 1) ~vars ~kvar)
  in
  Ir.Call (target.gi_name, args)

and gen_handle st ~depth ~vars ~kvar =
  let body = pick st (plain_fns st) in
  let args =
    List.init body.gi_arity (fun i ->
        if i = 0 && body.gi_rec then rec_counter st
        else gen_expr st ~depth:(depth - 1) ~vars ~kvar)
  in
  let arity1 = arity1_fns st in
  let ret = pick st arity1 in
  let exncs =
    List.filter_map
      (fun l ->
        if Rng.int st.rng 100 < 35 then Some (l, (pick st arity1).gi_name) else None)
      exn_labels
  in
  let effcs =
    match eff_fns st with
    | [] -> []
    | effs ->
        List.filter_map
          (fun l ->
            if Rng.int st.rng 100 < 70 then Some (l, (pick st effs).gi_name) else None)
          eff_labels
  in
  Ir.Handle { h_body = (body.gi_name, args); h_ret = ret.gi_name; h_exncs = exncs; h_effcs = effcs }

(* A recursive function follows the guarded template
   [if p0 <= 0 then base else ... self(p0 - 1, ...) ...], so every
   self-call strictly decreases the literal counter it was entered
   with. *)
let gen_rec_body st ~name ~params =
  let p0 = List.hd params in
  let vars = params in
  let base = gen_expr st ~depth:2 ~vars ~kvar:None in
  let rec_call =
    Ir.Call
      ( name,
        Ir.Binop (Ir.Sub, Ir.Var p0, Ir.Int 1)
        :: List.map
             (fun _ -> gen_expr st ~depth:1 ~vars ~kvar:None)
             (List.tl params) )
  in
  let step =
    match Rng.int st.rng 4 with
    | 0 -> rec_call
    | 1 -> Ir.Binop (Ir.Add, rec_call, gen_expr st ~depth:2 ~vars ~kvar:None)
    | 2 -> Ir.Seq (gen_expr st ~depth:2 ~vars ~kvar:None, rec_call)
    | _ ->
        let x = fresh st "v" in
        Ir.Let (x, gen_expr st ~depth:2 ~vars ~kvar:None, rec_call)
  in
  Ir.If (Ir.Binop (Ir.Le, Ir.Var p0, Ir.Int 0), base, step)

let gen_fn st =
  let mk_plain () =
    let arity = Rng.int st.rng 3 in
    let name = fresh st "f" in
    let params = List.init arity (fun i -> Printf.sprintf "%s_p%d" name i) in
    let recursive = arity >= 1 && Rng.int st.rng 100 < 45 in
    let body =
      if recursive then gen_rec_body st ~name ~params
      else gen_expr st ~depth:(st.cfg.max_depth - 1) ~vars:params ~kvar:None
    in
    ( { Ir.fn_name = name; fn_params = params; fn_kind = Ir.Plain; fn_body = body },
      { gi_name = name; gi_arity = arity; gi_kind = Ir.Plain; gi_rec = recursive } )
  in
  let mk_eff () =
    let name = fresh st "h" in
    let x = name ^ "_x" and k = name ^ "_k" in
    let body = gen_expr st ~depth:st.cfg.max_depth ~vars:[ x ] ~kvar:(Some k) in
    ( {
        Ir.fn_name = name;
        fn_params = [ x; k ];
        fn_kind = Ir.Eff_case;
        fn_body = body;
      },
      { gi_name = name; gi_arity = 2; gi_kind = Ir.Eff_case; gi_rec = false } )
  in
  let fn, i = if Rng.int st.rng 100 < 45 then mk_eff () else mk_plain () in
  st.pool <- st.pool @ [ i ];
  fn

let gen ?(cfg = default_cfg) rng : Ir.program =
  let st = { rng; cfg; pool = []; fresh = 0; big_left = true; in_main = false } in
  (* Seed the pool with a guaranteed 1-argument plain function so that
     handlers (which need a return case) can always be formed. *)
  let id_name = fresh st "f" in
  let id_fn =
    {
      Ir.fn_name = id_name;
      fn_params = [ id_name ^ "_p0" ];
      fn_kind = Ir.Plain;
      fn_body = Ir.Var (id_name ^ "_p0");
    }
  in
  st.pool <- [ { gi_name = id_name; gi_arity = 1; gi_kind = Ir.Plain; gi_rec = false } ];
  let n = 2 + Rng.int rng cfg.max_fns in
  let helpers = List.init n (fun _ -> gen_fn st) in
  st.in_main <- true;
  let main_body = gen_expr st ~depth:cfg.max_depth ~vars:[] ~kvar:None in
  st.in_main <- false;
  let main =
    { Ir.fn_name = "main"; fn_params = []; fn_kind = Ir.Plain; fn_body = main_body }
  in
  { Ir.fns = (id_fn :: helpers) @ [ main ]; main = "main" }

let program_of_seed ?cfg seed = gen ?cfg (Rng.create seed)
