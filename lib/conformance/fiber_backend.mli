(** Lowering to the §5 runtime model (the {!Retrofit_fiber} machine).

    The IR maps near-directly onto the fiber machine's source language.
    [Ext_id] becomes an external call to a registered identity C
    function; [Callback f] becomes an external call whose C
    implementation re-enters the machine through [ctx.callback],
    exercising the §5.3 boundary (context word, boundary trap, blanked
    handler_info).  Runs carry a per-step {!Retrofit_fiber.Machine}
    auditor and, when [dwarf_seed] is given, DWARF unwind round-trips
    at randomly sampled call sites via {!Retrofit_dwarf.Validate}. *)

type result = {
  outcome : Outcome.t;
  audit_checks : int;  (** full invariant passes performed *)
  audit_violations : (string * string) list;
  dwarf_probes : int;  (** sampled unwind round-trips *)
  dwarf_failures : string list;
  counters : Retrofit_util.Counter.t;
}

val lower : Ir.program -> Retrofit_fiber.Ir.program

val ext_id_cfun : string
(** Name of the C identity stub [Ext_id] lowers to. *)

val callback_cfun : string -> string
(** [callback_cfun f] — name of the C stub [Callback f] lowers to; the
    stub re-enters the machine through [f]. *)

val run :
  ?config:Retrofit_fiber.Config.t ->
  ?fuel:int ->
  ?audit:bool ->
  ?audit_interval:int ->
  ?dwarf_seed:int ->
  ?dwarf_max_probes:int ->
  ?on_perform:(site:int -> eff:int -> handler:int -> unit) ->
  Ir.program ->
  result
(** Defaults: {!Retrofit_fiber.Config.mc}, 20-million-op fuel, audit
    every step, no DWARF sampling.  When a [dwarf_seed] is given, about
    one call in eight is probed, up to [dwarf_max_probes] (default 500)
    per program — each probe unwinds the whole stack, so an unbounded
    rate would be quadratic on deep fuel-bound runs.  Pass
    [Config.with_multishot true Config.mc] to disable the one-shot
    check — the canonical seeded mutation the fuzzer must catch.

    [on_perform] is threaded to {!Retrofit_fiber.Machine.run}: it fires
    once per dynamic perform with the [PerformI] pc, the effect id, and
    the handle-descriptor index of the matching handler fiber (-1 at a
    handler-less boundary) — the observation stream the handler
    resolution soundness check consumes. *)
