module Eff = Retrofit_core.Eff

type nv = N_int of int | N_cont of (int, int) Eff.continuation

type _ Effect.t += Conf_eff : string * int -> int Effect.t

exception Conf_exn of string * int

exception Fuel_exhausted

exception Model_failure of string

let unhandled_label = "Unhandled"

let one_shot_label = "Invalid_argument"

let division_label = "Division_by_zero"

let run ?(fuel = 10_000_000) (p : Ir.program) : Outcome.t =
  let fns = Hashtbl.create 16 in
  List.iter (fun (f : Ir.fn) -> Hashtbl.replace fns f.fn_name f) p.fns;
  let fuel = ref fuel in
  let tick () =
    decr fuel;
    if !fuel <= 0 then raise Fuel_exhausted
  in
  let as_int = function
    | N_int n -> n
    | N_cont _ -> raise (Model_failure "continuation used as an integer")
  in
  let rec eval env (e : Ir.expr) : int =
    tick ();
    match e with
    | Ir.Int n -> n
    | Ir.Var x -> (
        match List.assoc_opt x env with
        | Some v -> as_int v
        | None -> raise (Model_failure ("unbound variable " ^ x)))
    | Ir.Binop (op, a, b) -> (
        (* left-to-right, like the other two backends; OCaml's own
           argument order is unspecified, so sequence explicitly *)
        let va = eval env a in
        let vb = eval env b in
        match op with
        | Ir.Add -> va + vb
        | Ir.Sub -> va - vb
        | Ir.Mul -> va * vb
        | Ir.Div ->
            if vb = 0 then raise (Conf_exn (division_label, va)) else va / vb
        | Ir.Lt -> if va < vb then 1 else 0
        | Ir.Le -> if va <= vb then 1 else 0
        | Ir.Eq -> if va = vb then 1 else 0)
    | Ir.If (c, t, f) -> if eval env c <> 0 then eval env t else eval env f
    | Ir.Let (x, a, b) ->
        let v = eval env a in
        eval ((x, N_int v) :: env) b
    | Ir.Seq (a, b) ->
        ignore (eval env a);
        eval env b
    | Ir.Call (f, args) -> call f (eval_args env args)
    | Ir.Raise (l, e) -> raise (Conf_exn (l, eval env e))
    | Ir.Try (b, cases) -> (
        match eval env b with
        | v -> v
        | exception (Conf_exn (l, payload) as ex) -> (
            match List.find_opt (fun (l', _, _) -> l' = l) cases with
            | Some (_, x, h) -> eval ((x, N_int payload) :: env) h
            | None -> raise ex))
    | Ir.Perform (l, e) -> (
        let v = eval env e in
        try Eff.perform (Conf_eff (l, v))
        with Effect.Unhandled _ -> raise (Conf_exn (unhandled_label, 0)))
    | Ir.Handle h ->
        let f, args = h.h_body in
        let vs = eval_args env args in
        handle h f vs
    | Ir.Continue (k, e) -> (
        let v = eval env e in
        match List.assoc_opt k env with
        | Some (N_cont c) -> (
            try Eff.continue c v
            with Effect.Continuation_already_resumed ->
              raise (Conf_exn (one_shot_label, 0)))
        | _ -> raise (Model_failure "continue outside an effect case"))
    | Ir.Discontinue (k, l, e) -> (
        let v = eval env e in
        match List.assoc_opt k env with
        | Some (N_cont c) -> (
            try Eff.discontinue c (Conf_exn (l, v))
            with Effect.Continuation_already_resumed ->
              raise (Conf_exn (one_shot_label, 0)))
        | _ -> raise (Model_failure "discontinue outside an effect case"))
    | Ir.Ext_id e -> eval env e
    | Ir.Callback (f, e) ->
        let v = eval env e in
        barrier (fun () -> call f [ N_int v ])
  and eval_args env = function
    | [] -> []
    | a :: rest ->
        let v = eval env a in
        N_int v :: eval_args env rest
  and call f vs =
    match Hashtbl.find_opt fns f with
    | None -> raise (Model_failure ("unknown function " ^ f))
    | Some fn ->
        if List.length fn.Ir.fn_params <> List.length vs then
          raise (Model_failure ("arity mismatch calling " ^ f));
        eval (List.combine fn.fn_params vs) fn.fn_body
  and handle (h : Ir.handle) f vs : int =
    Eff.match_with
      (fun () -> call f vs)
      {
        Eff.retc = (fun r -> call h.h_ret [ N_int r ]);
        exnc =
          (fun ex ->
            match ex with
            | Conf_exn (l, payload) -> (
                match List.assoc_opt l h.h_exncs with
                | Some g -> call g [ N_int payload ]
                | None -> raise ex)
            | _ -> raise ex);
        effc =
          (fun (type c) (eff : c Effect.t) ->
            match eff with
            | Conf_eff (l, v) -> (
                match List.assoc_opt l h.h_effcs with
                | Some g ->
                    Some
                      (fun (k : (c, _) Eff.continuation) ->
                        call g [ N_int v; N_cont k ])
                | None -> None)
            | _ -> None);
      }
  and barrier body : int =
    (* §3.1: effects must not cross C frames.  A callback boundary is a
       handler that discontinues every effect with Unhandled, raised at
       the perform site inside the callback. *)
    Eff.match_with body
      {
        Eff.retc = Fun.id;
        exnc = raise;
        effc =
          (fun (type c) (eff : c Effect.t) ->
            match eff with
            | Conf_eff _ ->
                Some
                  (fun (k : (c, _) Eff.continuation) ->
                    Eff.discontinue k (Conf_exn (unhandled_label, 0)))
            | _ -> None);
      }
  in
  match call p.main [] with
  | n -> Outcome.Value n
  | exception Conf_exn (l, payload) -> Outcome.normalize_exn l payload
  | exception Fuel_exhausted -> Outcome.Fuel_out
  | exception Model_failure m -> Outcome.Model_error ("native: " ^ m)
  | exception Effect.Unhandled _ -> Outcome.Unhandled
  | exception Effect.Continuation_already_resumed -> Outcome.One_shot
  | exception Stack_overflow -> Outcome.Model_error "native: stack overflow"
