(** Direct execution on native OCaml 5 effects.

    The IR is interpreted over real [Effect.Deep] fibers through the
    paper-shaped API in {!Retrofit_core.Eff}: [Handle] installs a
    deep [match_with] handler, [Perform]/[Continue]/[Discontinue] use
    the runtime primitives, and [Callback] runs its target under a
    barrier handler that discontinues any effect with an "Unhandled"
    exception — modelling §3.1's rule that effects do not cross C
    frames, since the interpreter has no real C frames to block them
    with.  Native failure modes are translated at the raising site:
    [Effect.Unhandled] → the "Unhandled" exception at the perform
    site, [Continuation_already_resumed] → "Invalid_argument" at the
    resume site, exactly as the other two models behave. *)

val run : ?fuel:int -> Ir.program -> Outcome.t
(** Default fuel: 10 million interpreted nodes. *)
