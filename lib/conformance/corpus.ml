type entry = {
  name : string;
  note : string;
  program : Ir.program;
  expect : Outcome.t;
}

open Ir

let plain name params body =
  { fn_name = name; fn_params = params; fn_kind = Plain; fn_body = body }

let effc name body =
  (* convention: an Eff_case [h] binds [h_x] (payload) and [h_k]. *)
  { fn_name = name; fn_params = [ name ^ "_x"; name ^ "_k" ]; fn_kind = Eff_case; fn_body = body }

let id = plain "id" [ "id_p" ] (Var "id_p")

let mk name note fns expect =
  let program = { fns; main = "main" } in
  (match validate program with
  | Ok () -> ()
  | Error msg -> invalid_arg (Printf.sprintf "corpus entry %s: %s" name msg));
  { name; note; program; expect }

let entries =
  [
    mk "double_resume_after_return"
      "second resume of a continuation whose first resume already ran the \
       body to completion raises Invalid_argument at the resume site"
      [
        id;
        effc "h" (Seq (Continue ("h_k", Var "h_x"), Continue ("h_k", Var "h_x")));
        plain "body" [] (Perform ("E1", Int 1));
        plain "main" []
          (Handle { h_body = ("body", []); h_ret = "id"; h_exncs = []; h_effcs = [ ("E1", "h") ] });
      ]
      Outcome.One_shot;
    mk "discontinue_never_resumed"
      "discontinue of a fresh continuation injects the exception at the \
       perform site, where the body catches it"
      [
        id;
        effc "h" (Discontinue ("h_k", "A", Var "h_x"));
        plain "body" []
          (Try
             ( Perform ("E1", Int 7),
               [ ("A", "e", Binop (Add, Var "e", Int 100)) ] ));
        plain "main" []
          (Handle { h_body = ("body", []); h_ret = "id"; h_exncs = []; h_effcs = [ ("E1", "h") ] });
      ]
      (Outcome.Value 107);
    mk "effect_in_return_branch"
      "a perform in a handler's return case runs outside that handler and \
       reaches the enclosing one"
      [
        id;
        plain "retperform" [ "r" ] (Perform ("E2", Binop (Add, Var "r", Int 1)));
        effc "h2" (Continue ("h2_k", Binop (Add, Var "h2_x", Int 5)));
        plain "body" [] (Int 5);
        plain "inner" []
          (Handle { h_body = ("body", []); h_ret = "retperform"; h_exncs = []; h_effcs = [] });
        plain "main" []
          (Handle { h_body = ("inner", []); h_ret = "id"; h_exncs = []; h_effcs = [ ("E2", "h2") ] });
      ]
      (Outcome.Value 11);
    mk "effect_in_return_unhandled"
      "a handler does not handle effects performed by its own return case, \
       even for labels it has a case for"
      [
        id;
        effc "h" (Continue ("h_k", Var "h_x"));
        plain "retperform" [ "r" ] (Perform ("E1", Var "r"));
        plain "body" [] (Int 1);
        plain "main" []
          (Handle
             { h_body = ("body", []); h_ret = "retperform"; h_exncs = []; h_effcs = [ ("E1", "h") ] });
      ]
      Outcome.Unhandled;
    mk "discontinue_then_continue"
      "a discontinued continuation counts as resumed: a later continue \
       raises Invalid_argument"
      [
        id;
        effc "h" (Seq (Discontinue ("h_k", "A", Int 0), Continue ("h_k", Var "h_x")));
        plain "body" [] (Try (Perform ("E1", Int 3), [ ("A", "e", Int 42) ]));
        plain "main" []
          (Handle { h_body = ("body", []); h_ret = "id"; h_exncs = []; h_effcs = [ ("E1", "h") ] });
      ]
      Outcome.One_shot;
    mk "unhandled_in_callback"
      "an effect performed inside a callback cannot reach handlers outside \
       the external frame (\xc2\xa73.1); it fails with Unhandled at the perform site"
      [
        id;
        effc "h" (Continue ("h_k", Var "h_x"));
        plain "perf" [ "p" ] (Perform ("E1", Var "p"));
        plain "body" []
          (Try (Callback ("perf", Int 5), [ ("Unhandled", "e", Int 99) ]));
        plain "main" []
          (Handle { h_body = ("body", []); h_ret = "id"; h_exncs = []; h_effcs = [ ("E1", "h") ] });
      ]
      (Outcome.Value 99);
    mk "div_by_zero_payload"
      "division by zero carries the dividend as its payload in all three \
       models"
      [
        plain "main" []
          (Try
             ( Binop (Div, Int 7, Int 0),
               [ ("Division_by_zero", "e", Var "e") ] ));
      ]
      (Outcome.Value 7);
    mk "deep_growth_capture"
      "capture at recursion depth 200 forces fiber stack growth before the \
       continuation is taken and resumed"
      [
        id;
        plain "down" [ "n" ]
          (If
             ( Binop (Le, Var "n", Int 0),
               Perform ("E1", Int 0),
               Binop (Add, Call ("down", [ Binop (Sub, Var "n", Int 1) ]), Int 1) ));
        effc "h" (Continue ("h_k", Var "h_x"));
        plain "body" [] (Call ("down", [ Int 200 ]));
        plain "main" []
          (Handle { h_body = ("body", []); h_ret = "id"; h_exncs = []; h_effcs = [ ("E1", "h") ] });
      ]
      (Outcome.Value 200);
    mk "nested_reperform"
      "an effect unhandled by the inner handler is forwarded to the outer \
       one; resuming runs back through both"
      [
        id;
        effc "hout" (Continue ("hout_k", Binop (Add, Var "hout_x", Int 1)));
        effc "hother" (Continue ("hother_k", Var "hother_x"));
        plain "body" [] (Perform ("E1", Int 5));
        plain "inner" []
          (Handle
             { h_body = ("body", []); h_ret = "id"; h_exncs = []; h_effcs = [ ("E2", "hother") ] });
        plain "main" []
          (Handle
             { h_body = ("inner", []); h_ret = "id"; h_exncs = []; h_effcs = [ ("E1", "hout") ] });
      ]
      (Outcome.Value 6);
    mk "exception_through_handler"
      "an exception with no case in the handler passes through it to an \
       enclosing try"
      [
        id;
        effc "h" (Continue ("h_k", Var "h_x"));
        plain "body" [] (Raise ("A", Int 9));
        plain "handled" []
          (Handle { h_body = ("body", []); h_ret = "id"; h_exncs = []; h_effcs = [ ("E1", "h") ] });
        plain "main" [] (Try (Call ("handled", []), [ ("A", "e", Var "e") ]));
      ]
      (Outcome.Value 9);
  ]
