(** The common IR of the conformance fuzzer.

    One program, three executions: the differential oracle lowers each
    program in this IR to a {!Retrofit_semantics} term (the §4
    semantics), a {!Retrofit_fiber} program (the §5 runtime model), and
    a directly-interpreted native OCaml effects function — so the IR is
    the intersection of what the three can express.

    The language is first-order and integer-typed.  As in the fiber
    machine's source language, handler cases are named functions rather
    than closures; an effect case is a dedicated [Eff_case] function
    whose second parameter binds the captured continuation, and
    continuation variables may only be consumed by [Continue] and
    [Discontinue].  Functions may reference earlier-defined functions
    or themselves (general recursion), which keeps the semantics
    lowering to nested [let rec]s faithful. *)

type binop = Add | Sub | Mul | Div | Lt | Le | Eq

type expr =
  | Int of int
  | Var of string
  | Binop of binop * expr * expr
  | If of expr * expr * expr  (** 0 is false *)
  | Let of string * expr * expr
  | Seq of expr * expr
  | Call of string * expr list
  | Raise of string * expr
  | Try of expr * (string * string * expr) list
      (** [Try (body, [label, var, handler; ...])]; unmatched labels
          re-raise *)
  | Perform of string * expr
  | Handle of handle
  | Continue of string * expr  (** continuation variable, resume value *)
  | Discontinue of string * string * expr
      (** continuation variable, label, payload *)
  | Ext_id of expr
      (** identity through an external C call: the argument crosses to
          the C stack and back *)
  | Callback of string * expr
      (** call the named 1-argument function back from C: OCaml → C →
          OCaml, installing a handler-less boundary in between *)

and handle = {
  h_body : string * expr list;  (** body function and its arguments *)
  h_ret : string;  (** 1-argument [Plain] function *)
  h_exncs : (string * string) list;  (** label → 1-argument [Plain] fn *)
  h_effcs : (string * string) list;  (** label → [Eff_case] fn *)
}

type kind =
  | Plain
  | Eff_case  (** exactly two parameters: the payload and the continuation *)

type fn = {
  fn_name : string;
  fn_params : string list;
  fn_kind : kind;
  fn_body : expr;
}

type program = { fns : fn list; main : string }
(** [main] names a 0-argument [Plain] function, conventionally last. *)

val expr_nodes : expr -> int

val program_nodes : program -> int
(** Expression nodes summed over every function body — the size measure
    the shrinker minimises and the "≤ N node repro" criterion counts. *)

val expr_to_string : expr -> string

val program_to_string : program -> string
(** One line per function; stable, so corpus entries and shrunk repros
    print reproducibly. *)

val validate : program -> (unit, string) result
(** Well-formedness: unique function names; a 0-argument [Plain] main;
    [Eff_case] functions have exactly two parameters and are referenced
    only from [h_effcs]; calls, handler cases and callbacks reference
    earlier-defined functions (or, for calls, the function itself) with
    matching arity; variables are bound; [Continue]/[Discontinue]
    consume exactly the enclosing [Eff_case] function's continuation
    parameter, which is never used as an integer.  Generator output
    always validates; the shrinker discards candidates that do not. *)
