module F = Retrofit_fiber
module D = Retrofit_dwarf
module Rng = Retrofit_util.Rng

type result = {
  outcome : Outcome.t;
  audit_checks : int;
  audit_violations : (string * string) list;
  dwarf_probes : int;
  dwarf_failures : string list;
  counters : Retrofit_util.Counter.t;
}

let binop : Ir.binop -> F.Ir.binop = function
  | Ir.Add -> F.Ir.Add
  | Ir.Sub -> F.Ir.Sub
  | Ir.Mul -> F.Ir.Mul
  | Ir.Div -> F.Ir.Div
  | Ir.Lt -> F.Ir.Lt
  | Ir.Le -> F.Ir.Le
  | Ir.Eq -> F.Ir.Eq

let ext_id_cfun = "c_id"

let callback_cfun f = "cb_" ^ f

let rec lower_expr (e : Ir.expr) : F.Ir.expr =
  match e with
  | Ir.Int n -> F.Ir.Int n
  | Ir.Var x -> F.Ir.Var x
  | Ir.Binop (op, a, b) -> F.Ir.Binop (binop op, lower_expr a, lower_expr b)
  | Ir.If (c, t, f) -> F.Ir.If (lower_expr c, lower_expr t, lower_expr f)
  | Ir.Let (x, a, b) -> F.Ir.Let (x, lower_expr a, lower_expr b)
  | Ir.Seq (a, b) -> F.Ir.Seq (lower_expr a, lower_expr b)
  | Ir.Call (f, args) -> F.Ir.Call (f, List.map lower_expr args)
  | Ir.Raise (l, e) -> F.Ir.Raise (l, lower_expr e)
  | Ir.Try (b, cases) ->
      F.Ir.Trywith (lower_expr b, List.map (fun (l, x, e) -> (l, x, lower_expr e)) cases)
  | Ir.Perform (l, e) -> F.Ir.Perform (l, lower_expr e)
  | Ir.Handle h ->
      F.Ir.Handle
        {
          F.Ir.body_fn = fst h.h_body;
          body_args = List.map lower_expr (snd h.h_body);
          retc = h.h_ret;
          exncs = h.h_exncs;
          effcs = h.h_effcs;
        }
  | Ir.Continue (k, e) -> F.Ir.Continue (F.Ir.Var k, lower_expr e)
  | Ir.Discontinue (k, l, e) -> F.Ir.Discontinue (F.Ir.Var k, l, lower_expr e)
  | Ir.Ext_id e -> F.Ir.Extcall (ext_id_cfun, [ lower_expr e ])
  | Ir.Callback (f, e) -> F.Ir.Extcall (callback_cfun f, [ lower_expr e ])

let lower_fn (fn : Ir.fn) : F.Ir.fn =
  { F.Ir.fn_name = fn.fn_name; params = fn.fn_params; body = lower_expr fn.fn_body }

let lower (p : Ir.program) : F.Ir.program =
  { F.Ir.fns = List.map lower_fn p.fns; main = p.main }

(* Functions invoked through [Callback] need a registered C stub that
   re-enters the machine. *)
let callback_targets (p : Ir.program) =
  let acc = ref [] in
  let rec go = function
    | Ir.Int _ | Ir.Var _ -> ()
    | Ir.Binop (_, a, b) | Ir.Seq (a, b) | Ir.Let (_, a, b) ->
        go a;
        go b
    | Ir.If (a, b, c) ->
        go a;
        go b;
        go c
    | Ir.Call (_, args) -> List.iter go args
    | Ir.Raise (_, e)
    | Ir.Perform (_, e)
    | Ir.Continue (_, e)
    | Ir.Discontinue (_, _, e)
    | Ir.Ext_id e ->
        go e
    | Ir.Callback (f, e) ->
        if not (List.mem f !acc) then acc := f :: !acc;
        go e
    | Ir.Try (b, cases) ->
        go b;
        List.iter (fun (_, _, e) -> go e) cases
    | Ir.Handle h -> List.iter go (snd h.h_body)
  in
  List.iter (fun f -> go f.Ir.fn_body) p.fns;
  List.sort compare !acc

let cfuns p =
  (ext_id_cfun, fun (_ : F.Machine.ctx) args -> args.(0))
  :: List.map
       (fun f ->
         (callback_cfun f, fun (ctx : F.Machine.ctx) args -> ctx.callback f args))
       (callback_targets p)

let run ?(config = F.Config.mc) ?(fuel = 20_000_000) ?(audit = true)
    ?(audit_interval = 1) ?dwarf_seed ?(dwarf_max_probes = 500) ?on_perform
    (p : Ir.program) : result =
  match F.Compile.compile (lower p) with
  | exception F.Compile.Error msg ->
      {
        outcome = Outcome.Model_error ("fiber compile: " ^ msg);
        audit_checks = 0;
        audit_violations = [];
        dwarf_probes = 0;
        dwarf_failures = [];
        counters = Retrofit_util.Counter.create ();
      }
  | prog ->
      let auditor = if audit then Some (F.Machine.audit ~interval:audit_interval ()) else None in
      let probes = ref 0 in
      let dwarf_failures = ref [] in
      let on_call =
        match dwarf_seed with
        | None -> None
        | Some seed ->
            let table = D.Table.build prog in
            let rng = Rng.create seed in
            Some
              (fun m ->
                (* Each probe unwinds the whole stack, so probing a fixed
                   fraction of calls would be quadratic on deep fuel-bound
                   runs; stop sampling after the per-program budget. *)
                if !probes < dwarf_max_probes && Rng.int rng 8 = 0 then begin
                  incr probes;
                  match D.Validate.check_now table m with
                  | Ok () -> ()
                  | Error e ->
                      if List.length !dwarf_failures < 5 then
                        dwarf_failures := e :: !dwarf_failures
                end)
      in
      let outcome, counters =
        F.Machine.run ~cfuns:(cfuns p) ?on_call ?on_perform ?audit:auditor ~fuel
          config prog
      in
      let outcome =
        match outcome with
        | F.Machine.Done n -> Outcome.Value n
        | F.Machine.Uncaught (l, payload) -> Outcome.normalize_exn l payload
        | F.Machine.Fatal "out of fuel" -> Outcome.Fuel_out
        | F.Machine.Fatal msg -> Outcome.Model_error ("fiber: " ^ msg)
      in
      {
        outcome;
        audit_checks = (match auditor with Some a -> F.Machine.audit_checks a | None -> 0);
        audit_violations =
          (match auditor with Some a -> F.Machine.audit_violations a | None -> []);
        dwarf_probes = !probes;
        dwarf_failures = List.rev !dwarf_failures;
        counters;
      }
