(** Greedy structural shrinker.

    [minimize ~interesting p] repeatedly tries single-point
    simplifications of [p] — replacing a subexpression by a constant or
    one of its own integer-typed children, dropping individual [Try] or
    [Handle] cases, collapsing a [Handle] to a bare call of its body —
    prunes functions unreachable from [main], filters out candidates
    that no longer validate, and commits the smallest candidate for
    which [interesting] still holds.  The loop is greedy and bounded,
    so it terminates even when [interesting] is expensive: every
    accepted step strictly decreases {!Ir.program_nodes}. *)

val variants : Ir.program -> Ir.program list
(** All single-simplification candidates (unvalidated, unpruned). *)

val prune : Ir.program -> Ir.program
(** Drop functions unreachable from [main]. *)

val minimize : interesting:(Ir.program -> bool) -> Ir.program -> Ir.program
