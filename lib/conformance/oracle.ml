type verdict = Agree | Skip | Diff

type report = {
  program : Ir.program;
  sem : Outcome.t;
  fib : Outcome.t;
  nat : Outcome.t;
  pairs : (string * verdict) list;
  audit_checks : int;
  audit_violations : (string * string) list;
  dwarf_probes : int;
  dwarf_failures : string list;
}

let compare_pair a b =
  match (a, b) with
  | Outcome.Fuel_out, _ | _, Outcome.Fuel_out -> Skip
  | _ -> if Outcome.equal a b then Agree else Diff

let is_model_error = function Outcome.Model_error _ -> true | _ -> false

let run ?sem_fuel ?fib_fuel ?nat_fuel ?(audit = true) ?dwarf_seed
    ?(fiber_config = Retrofit_fiber.Config.mc) ?(sem_one_shot = true)
    ?(with_native = true) (p : Ir.program) : report =
  let sem = Sem_backend.run ?fuel:sem_fuel ~one_shot:sem_one_shot p in
  let fr = Fiber_backend.run ~config:fiber_config ?fuel:fib_fuel ~audit ?dwarf_seed p in
  (* Host effects are one-shot; multishot campaigns drop the native leg
     by reporting it as inconclusive, which [compare_pair] skips. *)
  let nat =
    if with_native then Native_backend.run ?fuel:nat_fuel p else Outcome.Fuel_out
  in
  let fib = fr.Fiber_backend.outcome in
  {
    program = p;
    sem;
    fib;
    nat;
    pairs =
      [
        ("semantics<->fiber", compare_pair sem fib);
        ("fiber<->native", compare_pair fib nat);
        ("semantics<->native", compare_pair sem nat);
      ];
    audit_checks = fr.audit_checks;
    audit_violations = fr.audit_violations;
    dwarf_probes = fr.dwarf_probes;
    dwarf_failures = fr.dwarf_failures;
  }

let ok r =
  List.for_all (fun (_, v) -> v <> Diff) r.pairs
  && r.audit_violations = []
  && r.dwarf_failures = []
  && not (is_model_error r.sem || is_model_error r.fib || is_model_error r.nat)

let verdict_to_string = function Agree -> "agree" | Skip -> "skip" | Diff -> "DIFF"

let to_string r =
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "semantics: %s\n" (Outcome.to_string r.sem));
  Buffer.add_string b (Printf.sprintf "fiber:     %s\n" (Outcome.to_string r.fib));
  Buffer.add_string b (Printf.sprintf "native:    %s\n" (Outcome.to_string r.nat));
  List.iter
    (fun (name, v) ->
      Buffer.add_string b (Printf.sprintf "  %-20s %s\n" name (verdict_to_string v)))
    r.pairs;
  if r.audit_violations <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "audit violations (%d checks):\n" r.audit_checks);
    List.iter
      (fun (inv, msg) -> Buffer.add_string b (Printf.sprintf "  [%s] %s\n" inv msg))
      r.audit_violations
  end;
  if r.dwarf_failures <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "dwarf failures (%d probes):\n" r.dwarf_probes);
    List.iter (fun m -> Buffer.add_string b (Printf.sprintf "  %s\n" m)) r.dwarf_failures
  end;
  Buffer.contents b
