(** Chaos campaign over the supervised websim.

    Scenario [i] derives a small randomized configuration (2-6
    connections, 1-4 requests each, 1-2 shards, random supervision
    strategy, random server model, chaos on/off, drain on/off, wedges
    on/off) from [scenario_seed ~seed i], runs the simulation twice and
    byte-compares the deterministic summary lines, then audits the
    accounting invariants: dispositions sum to [total], zero silent
    drops, and a calm (no chaos, no drain, no wedges) run completes
    everything with zero restarts. *)

type failure = {
  index : int;
  scenario_seed : int;
  kind : string;  (** [nondet] | [invariant] | [crash] *)
  detail : string;
}

type stats = {
  scenarios : int;
  runs : int;  (** simulation executions (2x per scenario) *)
  chaotic : int;  (** scenarios with chaos enabled *)
  drained : int;  (** scenarios exercising graceful drain *)
  restarts : int;  (** total supervisor restarts observed *)
  failures : failure list;
}

val scenario_seed : seed:int -> int -> int
(** Deterministic per-scenario seed, replayable from campaign seed and
    index alone. *)

val campaign : ?count:int -> seed:int -> unit -> stats
(** Run [count] (default 200) scenarios. *)

val stats_to_string : stats -> string
