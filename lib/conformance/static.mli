(** Bridge from the conformance IR to the static effect-safety
    analyzer, and the soundness cross-check the fuzzer enforces.

    A generated program is lowered with {!Fiber_backend.lower} and
    analyzed with the precise external-function model (the lowering's
    [Ext_id] stub is pure, its [Callback f] stub re-enters [f]).  The
    analyzer's [Safe] and [Must] claims are then held against what the
    backends actually observed: a [Safe]-from-[Unhandled] (or
    one-shot) claim contradicted by any backend, or a [Must] claim
    contradicted by a settled terminating outcome, is a soundness bug
    and fails the campaign.  Fuel-outs and model errors are never
    contradictions. *)

val cfun_model : string -> Retrofit_analysis.Cfg.cfun_model

type claims = {
  lowered : Retrofit_fiber.Ir.program;
  result : Retrofit_analysis.Analyze.result;
}

val analyze : ?must_fuel:int -> Ir.program -> claims

val verdicts :
  one_shot:bool ->
  claims ->
  Retrofit_analysis.Diag.verdict * Retrofit_analysis.Diag.verdict
(** [(unhandled, one_shot_violation)] as claimed against a backend that
    does ([one_shot:true]) or does not enforce the one-shot
    discipline. *)

val contradiction : ?one_shot:bool -> claims -> Outcome.t -> string option

val check :
  ?fiber_config:Retrofit_fiber.Config.t ->
  ?sem_one_shot:bool ->
  claims ->
  Oracle.report ->
  string option
(** First contradiction across the three backends of one oracle
    report, labelled with the backend name. *)

val claims_to_string : claims -> string
