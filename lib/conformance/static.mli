(** Bridge from the conformance IR to the static effect-safety
    analyzer, and the soundness cross-check the fuzzer enforces.

    A generated program is lowered with {!Fiber_backend.lower} and
    analyzed with the precise external-function model (the lowering's
    [Ext_id] stub is pure, its [Callback f] stub re-enters [f]).  The
    analyzer's [Safe] and [Must] claims are then held against what the
    backends actually observed: a [Safe]-from-[Unhandled] (or
    one-shot) claim contradicted by any backend, or a [Must] claim
    contradicted by a settled terminating outcome, is a soundness bug
    and fails the campaign.  Fuel-outs and model errors are never
    contradictions. *)

val cfun_model : string -> Retrofit_analysis.Cfg.cfun_model

type claims = {
  lowered : Retrofit_fiber.Ir.program;
  result : Retrofit_analysis.Analyze.result;
}

val analyze :
  ?must_fuel:int ->
  ?compiled:Retrofit_fiber.Compile.compiled ->
  Ir.program ->
  claims
(** [compiled], when given, must be the compiled form of the {e
    lowered} program (what {!Fiber_backend.run} compiles internally);
    callers that execute the program anyway pass it here so the
    analyzer is not charged for a second compile. *)

val verdicts :
  one_shot:bool ->
  claims ->
  Retrofit_analysis.Diag.verdict * Retrofit_analysis.Diag.verdict
(** [(unhandled, one_shot_violation)] as claimed against a backend that
    does ([one_shot:true]) or does not enforce the one-shot
    discipline. *)

val contradiction : ?one_shot:bool -> claims -> Outcome.t -> string option

val check :
  ?fiber_config:Retrofit_fiber.Config.t ->
  ?sem_one_shot:bool ->
  claims ->
  Oracle.report ->
  string option
(** First contradiction across the three backends of one oracle
    report, labelled with the backend name. *)

val claims_to_string : claims -> string

(** {1 Handler-resolution and cost-bound soundness}

    The resolution pass claims, per perform site, the set of handle
    specs that can dynamically receive it; the cost pass claims a
    per-counter upper bound per stack policy.  Both are checked against
    an instrumented {!Fiber_backend.run} — the [on_perform] observation
    stream and the returned counter table. *)

val runtime_map : claims -> Retrofit_analysis.Resolve.rt
(** Static-to-runtime identity maps over the compiled form inside the
    claims; valid for any independent compile of the same lowered
    program (the compiler is deterministic). *)

val dispatch_contradiction :
  claims -> Retrofit_analysis.Resolve.rt -> (int * int) list -> string option
(** [(site_pc, handler_index)] observations from [on_perform].  A
    contradiction is a dispatch to a spec outside the site's candidate
    set, a handler-less boundary at a site not flagged
    [+toplevel]/[+via-c], or a perform at an unmapped pc. *)

val bound_contradiction :
  claims ->
  policy:Retrofit_fiber.Stack_policy.t ->
  multishot:bool ->
  ?red_zone:int ->
  Retrofit_util.Counter.t ->
  string option
(** First measured counter exceeding its finite static bound under the
    given policy/discipline; ∞ bounds are vacuous.  [red_zone] defaults
    to the machine's 16 words. *)
