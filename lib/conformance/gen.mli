(** Seeded generator of well-formed conformance programs.

    Fully deterministic: the whole program is a function of the seed
    (via {!Retrofit_util.Rng}), so [(seed)] alone replays any generated
    program.  Coverage by construction:

    - perform / continue / discontinue, nested deep handlers,
      reperform chains (handlers missing the performed label);
    - exceptions raised through handlers and caught by [Try] cases,
      including the built-in labels;
    - one-shot violations (a [Seq] of two resumes of the same
      continuation) when [oneshot_violations] is on;
    - unhandled effects (performs outside any matching handler);
    - recursion: functions may call themselves with a structurally
      decreasing counter; one call site per program may draw a
      [big_count]-sized counter, deep enough to force fiber growth;
    - external calls and callbacks ([Ext_id]/[Callback]) when
      [extcalls] is on.

    Termination is structural: every call targets an earlier function
    or the caller itself with a strictly smaller first argument, and
    recursion counters are literals, so generated programs cannot
    diverge (they can still exhaust fuel, which the oracle treats as
    inconclusive). *)

type cfg = {
  max_fns : int;  (** helper functions generated before main *)
  max_depth : int;  (** expression tree depth *)
  small_count : int;  (** bound for nested recursion counters *)
  big_count : int;
      (** base for the one deep-recursion driver allowed per program,
          sized to overflow [Config.mc]'s initial fiber several times *)
  extcalls : bool;
  oneshot_violations : bool;
}

val default_cfg : cfg

val gen : ?cfg:cfg -> Retrofit_util.Rng.t -> Ir.program

val program_of_seed : ?cfg:cfg -> int -> Ir.program
(** [gen] on a fresh generator seeded with the given value — the replay
    entry point: a counterexample is reproducible from its seed
    alone. *)
