module F = Retrofit_fiber
module A = Retrofit_analysis

type failure = {
  index : int;
  prog_seed : int;
  report : Oracle.report;
  analysis : string option;
  policy : string option;
  policy_outcome : Outcome.t option;
  shrunk : Ir.program option;
  shrunk_report : Oracle.report option;
}

type stats = {
  programs : int;
  agreements : (string * int) list;
  skips : (string * int) list;
  policy_agreements : (string * int) list;
  policy_skips : (string * int) list;
  audit_checks : int;
  dwarf_probes : int;
  analyzed : int;
  dispatch_checks : int;
  bound_checks : int;
  failures : failure list;
}

(* Knuth multiplicative mixing keeps per-program seeds decorrelated
   even for consecutive campaign seeds; masking keeps them positive. *)
let prog_seed ~seed i = (seed lxor ((i + 1) * 0x9E3779B1)) land max_int

let pair_names = [ "semantics<->fiber"; "fiber<->native"; "semantics<->native" ]

let default_policies = F.Stack_policy.[ segmented; segmented_cow; large_reserve ]

let campaign ?cfg ?(fiber_config = F.Config.mc) ?fib_fuel ?sem_one_shot
    ?(audit = true) ?(dwarf = true) ?(analyze = false) ?(max_failures = 5)
    ?(shrink = true) ?(policies = []) ?(multishot = false) ~seed ~count () :
    stats =
  if multishot && not fiber_config.F.Config.multishot then
    invalid_arg
      "Fuzz.campaign: a multishot campaign needs a fiber configuration with \
       multishot continuation cloning enabled (Config.with_multishot true); \
       the default one-shot runtime cannot execute programs that resume a \
       continuation twice";
  let sem_one_shot = if multishot then Some false else sem_one_shot in
  let with_native = not multishot in
  let agree = Hashtbl.create 4 and skip = Hashtbl.create 4 in
  List.iter
    (fun p ->
      Hashtbl.replace agree p 0;
      Hashtbl.replace skip p 0)
    pair_names;
  let policy_cfgs =
    List.map
      (fun p -> (F.Stack_policy.name p, F.Config.with_policy p fiber_config))
      policies
  in
  let pagree = Hashtbl.create 4 and pskip = Hashtbl.create 4 in
  List.iter
    (fun (n, _) ->
      Hashtbl.replace pagree n 0;
      Hashtbl.replace pskip n 0)
    policy_cfgs;
  let bump tbl p = Hashtbl.replace tbl p (Hashtbl.find tbl p + 1) in
  let audit_checks = ref 0 and dwarf_probes = ref 0 in
  let failures = ref [] in
  let analyzed = ref 0 in
  let run_oracle p s =
    Oracle.run ~fiber_config ?fib_fuel ?sem_one_shot ~audit ~with_native
      ?dwarf_seed:(if dwarf then Some s else None)
      p
  in
  let run_policies p s =
    List.map
      (fun (name, cfgp) ->
        ( name,
          Fiber_backend.run ~config:cfgp ?fuel:fib_fuel ~audit
            ?dwarf_seed:(if dwarf then Some s else None)
            p ))
      policy_cfgs
  in
  (* A policy run disagrees when its outcome differs from the default
     policy's, or its auditor/unwinder tripped.  Running out of the
     (finite) reservation is a resource limit of the policy, not a
     semantic disagreement, so a policy-side Stack_overflow the default
     policy did not produce is inconclusive. *)
  let policy_verdict base (fr : Fiber_backend.result) =
    if fr.Fiber_backend.audit_violations <> [] || fr.Fiber_backend.dwarf_failures <> []
    then Oracle.Diff
    else
      match fr.Fiber_backend.outcome with
      | Outcome.Exn ("Stack_overflow", _) as o when not (Outcome.equal base o) ->
          Oracle.Skip
      | o -> Oracle.compare_pair base o
  in
  let policy_diffs base runs =
    List.filter_map
      (fun (name, fr) ->
        match policy_verdict base fr with
        | Oracle.Diff -> Some (name, fr.Fiber_backend.outcome)
        | Oracle.Agree | Oracle.Skip -> None)
      runs
  in
  (* Handler-resolution and cost-bound soundness: re-run the fiber
     backend instrumented (default config plus every campaign policy),
     recording the actual handler identity at each dynamic perform and
     the final counter table, and hold both against the static claims.
     A mono-resolved site dispatching elsewhere, an Unhandled at a site
     not flagged +toplevel/+via-c, or a measured counter above its
     finite bound is a campaign failure like any other — shrinking sees
     it through the same predicate. *)
  let probe_cfgs = ("default", fiber_config) :: policy_cfgs in
  let dispatch_checks = ref 0 and bound_checks = ref 0 in
  let soundness_probe (c : Static.claims) p =
    let rt = Static.runtime_map c in
    List.find_map
      (fun (name, cfgp) ->
        let obs = ref [] in
        let on_perform ~site ~eff:_ ~handler = obs := (site, handler) :: !obs in
        let fr =
          Fiber_backend.run ~config:cfgp ?fuel:fib_fuel ~audit:false ~on_perform
            p
        in
        match fr.Fiber_backend.outcome with
        | Outcome.Model_error _ -> None
        | _ -> (
            let observed = List.rev !obs in
            dispatch_checks := !dispatch_checks + List.length observed;
            match Static.dispatch_contradiction c rt observed with
            | Some msg -> Some (Printf.sprintf "[%s] %s" name msg)
            | None -> (
                incr bound_checks;
                match
                  Static.bound_contradiction c ~policy:cfgp.F.Config.policy
                    ~multishot:cfgp.F.Config.multishot fr.Fiber_backend.counters
                with
                | Some msg -> Some (Printf.sprintf "[%s] %s" name msg)
                | None -> None)))
      probe_cfgs
  in
  (* The per-site resolution census feeds the metrics registry (when
     enabled); recorded once per campaign program, not per shrink
     step. *)
  let record_resolution (c : Static.claims) =
    if Retrofit_metrics.Metrics.on () then
      List.iter
        (fun (s : A.Resolve.site) ->
          Retrofit_metrics.Metrics.inc
            ~labels:[ ("class", A.Resolve.klass_to_string s.A.Resolve.r_class) ]
            "perform_site_resolution_total")
        (A.Resolve.all_sites c.Static.result.A.Analyze.resolve)
  in
  (* The analyzer-vs-oracle soundness check: a crash in the analyzer is
     as much a campaign failure as an unsound claim. *)
  let static_check ?(record = false) p r =
    if not analyze then None
    else begin
      incr analyzed;
      match Static.analyze p with
      | c -> (
          if record then record_resolution c;
          match Static.check ~fiber_config ?sem_one_shot c r with
          | Some _ as s -> s
          | None -> soundness_probe c p)
      | exception e ->
          Some (Printf.sprintf "analyzer raised %s" (Printexc.to_string e))
    end
  in
  let i = ref 0 in
  while !i < count && List.length !failures < max_failures do
    let s = prog_seed ~seed !i in
    let p = Gen.program_of_seed ?cfg s in
    let r = run_oracle p s in
    audit_checks := !audit_checks + r.Oracle.audit_checks;
    dwarf_probes := !dwarf_probes + r.Oracle.dwarf_probes;
    List.iter
      (fun (name, v) ->
        match v with
        | Oracle.Agree -> bump agree name
        | Oracle.Skip -> bump skip name
        | Oracle.Diff -> ())
      r.Oracle.pairs;
    let pol_runs = run_policies p s in
    List.iter
      (fun (name, fr) ->
        audit_checks := !audit_checks + fr.Fiber_backend.audit_checks;
        dwarf_probes := !dwarf_probes + fr.Fiber_backend.dwarf_probes;
        match policy_verdict r.Oracle.fib fr with
        | Oracle.Agree -> bump pagree name
        | Oracle.Skip -> bump pskip name
        | Oracle.Diff -> ())
      pol_runs;
    let offending = policy_diffs r.Oracle.fib pol_runs in
    let analysis = static_check ~record:true p r in
    if (not (Oracle.ok r)) || analysis <> None || offending <> [] then begin
      let failing q rq =
        (not (Oracle.ok rq))
        || static_check q rq <> None
        || policy_diffs rq.Oracle.fib (run_policies q s) <> []
      in
      let shrunk, shrunk_report =
        if shrink then begin
          let interesting q = failing q (run_oracle q s) in
          let q = Shrink.minimize ~interesting p in
          (Some q, Some (run_oracle q s))
        end
        else (None, None)
      in
      let analysis =
        match (analysis, shrunk, shrunk_report) with
        | None, _, _ | _, None, _ | _, _, None -> analysis
        | Some _, Some q, Some rq -> (
            (* re-derive the message for the minimized program, keeping
               the original if shrinking converged on an oracle diff *)
            match static_check q rq with None -> analysis | some -> some)
      in
      let policy, policy_outcome =
        (* name the policy the shrunk program still disagrees on when
           there is one, else the original offender *)
        let shrunk_offender =
          match (shrunk, shrunk_report) with
          | Some q, Some rq -> policy_diffs rq.Oracle.fib (run_policies q s)
          | _ -> []
        in
        match (shrunk_offender, offending) with
        | (n, o) :: _, _ | [], (n, o) :: _ -> (Some n, Some o)
        | [], [] -> (None, None)
      in
      failures :=
        {
          index = !i;
          prog_seed = s;
          report = r;
          analysis;
          policy;
          policy_outcome;
          shrunk;
          shrunk_report;
        }
        :: !failures
    end;
    incr i
  done;
  {
    programs = !i;
    agreements = List.map (fun p -> (p, Hashtbl.find agree p)) pair_names;
    skips = List.map (fun p -> (p, Hashtbl.find skip p)) pair_names;
    policy_agreements =
      List.map (fun (n, _) -> (n, Hashtbl.find pagree n)) policy_cfgs;
    policy_skips = List.map (fun (n, _) -> (n, Hashtbl.find pskip n)) policy_cfgs;
    audit_checks = !audit_checks;
    dwarf_probes = !dwarf_probes;
    analyzed = !analyzed;
    dispatch_checks = !dispatch_checks;
    bound_checks = !bound_checks;
    failures = List.rev !failures;
  }

let replay_corpus () =
  List.filter_map
    (fun (e : Corpus.entry) ->
      let r = Oracle.run ~audit:true ~dwarf_seed:1 e.program in
      if not (Oracle.ok r) then
        Some (e.name, "oracle disagreement:\n" ^ Oracle.to_string r)
      else if not (Outcome.equal r.Oracle.nat e.expect) then
        Some
          ( e.name,
            Printf.sprintf "expected %s, native produced %s"
              (Outcome.to_string e.expect)
              (Outcome.to_string r.Oracle.nat) )
      else None)
    Corpus.entries

let failure_to_string f =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "--- failure at program %d (seed %d) ---\n" f.index f.prog_seed);
  Buffer.add_string b (Ir.program_to_string f.report.Oracle.program);
  Buffer.add_char b '\n';
  Buffer.add_string b (Oracle.to_string f.report);
  (match f.analysis with
  | Some msg -> Buffer.add_string b (Printf.sprintf "static soundness: %s\n" msg)
  | None -> ());
  (match (f.policy, f.policy_outcome) with
  | Some name, Some o ->
      Buffer.add_string b
        (Printf.sprintf "offending stack policy %s: %s (default policy: %s)\n"
           name (Outcome.to_string o)
           (Outcome.to_string f.report.Oracle.fib))
  | _ -> ());
  (match (f.shrunk, f.shrunk_report) with
  | Some q, Some r ->
      Buffer.add_string b
        (Printf.sprintf "shrunk to %d nodes:\n" (Ir.program_nodes q));
      Buffer.add_string b (Ir.program_to_string q);
      Buffer.add_char b '\n';
      Buffer.add_string b (Oracle.to_string r)
  | _ -> ());
  Buffer.add_string b
    (Printf.sprintf "replay: Gen.program_of_seed %d  (campaign program %d)\n"
       f.prog_seed f.index);
  Buffer.contents b

let stats_to_string s =
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "programs: %d\n" s.programs);
  List.iter
    (fun (p, n) ->
      Buffer.add_string b
        (Printf.sprintf "  %-20s agree %d, skip %d\n" p n (List.assoc p s.skips)))
    s.agreements;
  List.iter
    (fun (p, n) ->
      Buffer.add_string b
        (Printf.sprintf "  policy %-13s agree %d, skip %d\n" p n
           (List.assoc p s.policy_skips)))
    s.policy_agreements;
  Buffer.add_string b
    (Printf.sprintf "audit checks: %d, dwarf probes: %d, analyzed: %d, failures: %d\n"
       s.audit_checks s.dwarf_probes s.analyzed (List.length s.failures));
  if s.dispatch_checks > 0 || s.bound_checks > 0 then
    Buffer.add_string b
      (Printf.sprintf "dispatches checked: %d, counter-bound tables checked: %d\n"
         s.dispatch_checks s.bound_checks);
  List.iter (fun f -> Buffer.add_string b (failure_to_string f)) s.failures;
  Buffer.contents b
