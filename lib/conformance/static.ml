module A = Retrofit_analysis

(* The two external functions the lowering emits are fully understood:
   [Ext_id] never re-enters the program, [Callback f] re-enters through
   exactly [f].  Anything else (there is none today) stays opaque. *)
let cfun_model c =
  if c = Fiber_backend.ext_id_cfun then A.Cfg.Pure
  else if String.length c > 3 && String.sub c 0 3 = "cb_" then
    A.Cfg.Calls_back (String.sub c 3 (String.length c - 3))
  else A.Cfg.Opaque

type claims = {
  lowered : Retrofit_fiber.Ir.program;
  result : A.Analyze.result;
}

let analyze ?must_fuel (p : Ir.program) : claims =
  let lowered = Fiber_backend.lower p in
  { lowered; result = A.Analyze.analyze ~cfun_model ?must_fuel lowered }

(* The per-backend verdict.  The must pass's execution follows the
   one-shot discipline; it also predicts a multi-shot backend as long
   as it never actually resumed a dead continuation.  Otherwise
   multi-shot claims fall back to the flow analysis, which is sound
   for every discipline. *)
let sharpen ~flow ~(must : A.Analyze.must) ~usable label =
  if usable then
    match must with
    | A.Analyze.M_raises l when l = label -> A.Diag.Must
    | _ when not flow -> A.Diag.Safe
    | A.Analyze.M_value | A.Analyze.M_raises _ -> A.Diag.Safe
    | A.Analyze.M_unknown -> A.Diag.May
  else if flow then A.Diag.May
  else A.Diag.Safe

let verdicts ~one_shot (c : claims) =
  let r = c.result in
  let usable = one_shot || not r.A.Analyze.hit_violation in
  ( sharpen ~flow:r.A.Analyze.flow_unhandled_may ~must:r.A.Analyze.must ~usable
      "Unhandled",
    sharpen ~flow:r.A.Analyze.flow_one_shot_may ~must:r.A.Analyze.must ~usable
      "Invalid_argument" )

let contradiction ?(one_shot = true) (c : claims) (o : Outcome.t) :
    string option =
  let vu, vo = verdicts ~one_shot c in
  match o with
  | Outcome.Unhandled ->
      if vu = A.Diag.Safe then
        Some "analyzer claimed safe-from-Unhandled; backend observed Unhandled"
      else None
  | Outcome.One_shot ->
      if vo = A.Diag.Safe then
        Some
          "analyzer claimed safe-from-one-shot; backend observed a one-shot \
           violation"
      else None
  | Outcome.Value _ | Outcome.Exn _ ->
      if vu = A.Diag.Must then
        Some
          (Printf.sprintf
             "analyzer claimed must-Unhandled; backend observed %s"
             (Outcome.to_string o))
      else if vo = A.Diag.Must then
        Some
          (Printf.sprintf
             "analyzer claimed must-one-shot; backend observed %s"
             (Outcome.to_string o))
      else None
  | Outcome.Fuel_out | Outcome.Model_error _ -> None

(* All three oracle backends at once; [fiber_config]/[sem_one_shot]
   mirror the campaign's run parameters so each backend is judged
   against the discipline it actually enforces. *)
let check ?(fiber_config = Retrofit_fiber.Config.mc) ?(sem_one_shot = true)
    (c : claims) (r : Oracle.report) : string option =
  let probe name one_shot o =
    match contradiction ~one_shot c o with
    | Some msg -> Some (Printf.sprintf "%s: %s" name msg)
    | None -> None
  in
  match probe "semantics" sem_one_shot r.Oracle.sem with
  | Some _ as s -> s
  | None -> (
      match
        probe "fiber"
          (not fiber_config.Retrofit_fiber.Config.multishot)
          r.Oracle.fib
      with
      | Some _ as s -> s
      | None -> probe "native" true r.Oracle.nat)

let claims_to_string (c : claims) =
  let vu, vo = verdicts ~one_shot:true c in
  Printf.sprintf "static: unhandled=%s one-shot=%s (flow %b/%b, must %s%s)"
    (A.Diag.verdict_to_string vu)
    (A.Diag.verdict_to_string vo)
    c.result.A.Analyze.flow_unhandled_may c.result.A.Analyze.flow_one_shot_may
    (match c.result.A.Analyze.must with
    | A.Analyze.M_value -> "value"
    | A.Analyze.M_raises l -> "raises " ^ l
    | A.Analyze.M_unknown -> "unknown")
    (if c.result.A.Analyze.hit_violation then ", violated" else "")
