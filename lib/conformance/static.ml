module A = Retrofit_analysis

(* The two external functions the lowering emits are fully understood:
   [Ext_id] never re-enters the program, [Callback f] re-enters through
   exactly [f].  Anything else (there is none today) stays opaque. *)
let cfun_model c =
  if c = Fiber_backend.ext_id_cfun then A.Cfg.Pure
  else if String.length c > 3 && String.sub c 0 3 = "cb_" then
    A.Cfg.Calls_back (String.sub c 3 (String.length c - 3))
  else A.Cfg.Opaque

type claims = {
  lowered : Retrofit_fiber.Ir.program;
  result : A.Analyze.result;
}

(* The campaign cross-checks program-level claims (verdicts, handler
   resolution, cost bounds) against executions; the rendered per-site
   lint findings are a CLI concern, so their construction is skipped
   here — it is a third of the analyzer's time budget. *)
let analyze ?must_fuel ?compiled (p : Ir.program) : claims =
  let lowered = Fiber_backend.lower p in
  {
    lowered;
    result =
      A.Analyze.analyze ~cfun_model ?must_fuel ?compiled ~lints:false lowered;
  }

(* The per-backend verdict.  The must pass's execution follows the
   one-shot discipline; it also predicts a multi-shot backend as long
   as it never actually resumed a dead continuation.  Otherwise
   multi-shot claims fall back to the flow analysis, which is sound
   for every discipline. *)
let sharpen ~flow ~(must : A.Analyze.must) ~usable label =
  if usable then
    match must with
    | A.Analyze.M_raises l when l = label -> A.Diag.Must
    | _ when not flow -> A.Diag.Safe
    | A.Analyze.M_value | A.Analyze.M_raises _ -> A.Diag.Safe
    | A.Analyze.M_unknown -> A.Diag.May
  else if flow then A.Diag.May
  else A.Diag.Safe

let verdicts ~one_shot (c : claims) =
  let r = c.result in
  let usable = one_shot || not r.A.Analyze.hit_violation in
  ( sharpen ~flow:r.A.Analyze.flow_unhandled_may ~must:r.A.Analyze.must ~usable
      "Unhandled",
    sharpen ~flow:r.A.Analyze.flow_one_shot_may ~must:r.A.Analyze.must ~usable
      "Invalid_argument" )

let contradiction ?(one_shot = true) (c : claims) (o : Outcome.t) :
    string option =
  let vu, vo = verdicts ~one_shot c in
  match o with
  | Outcome.Unhandled ->
      if vu = A.Diag.Safe then
        Some "analyzer claimed safe-from-Unhandled; backend observed Unhandled"
      else None
  | Outcome.One_shot ->
      if vo = A.Diag.Safe then
        Some
          "analyzer claimed safe-from-one-shot; backend observed a one-shot \
           violation"
      else None
  | Outcome.Value _ | Outcome.Exn _ ->
      if vu = A.Diag.Must then
        Some
          (Printf.sprintf
             "analyzer claimed must-Unhandled; backend observed %s"
             (Outcome.to_string o))
      else if vo = A.Diag.Must then
        Some
          (Printf.sprintf
             "analyzer claimed must-one-shot; backend observed %s"
             (Outcome.to_string o))
      else None
  | Outcome.Fuel_out | Outcome.Model_error _ -> None

(* All three oracle backends at once; [fiber_config]/[sem_one_shot]
   mirror the campaign's run parameters so each backend is judged
   against the discipline it actually enforces. *)
let check ?(fiber_config = Retrofit_fiber.Config.mc) ?(sem_one_shot = true)
    (c : claims) (r : Oracle.report) : string option =
  let probe name one_shot o =
    match contradiction ~one_shot c o with
    | Some msg -> Some (Printf.sprintf "%s: %s" name msg)
    | None -> None
  in
  match probe "semantics" sem_one_shot r.Oracle.sem with
  | Some _ as s -> s
  | None -> (
      match
        probe "fiber"
          (not fiber_config.Retrofit_fiber.Config.multishot)
          r.Oracle.fib
      with
      | Some _ as s -> s
      | None -> probe "native" true r.Oracle.nat)

(* ------------------------------------------------------------------ *)
(* Handler-resolution and cost-bound soundness.  The resolution pass
   claims a candidate-handler set per perform site and the cost pass a
   per-counter upper bound per stack policy; both are held against an
   instrumented fiber run.  The runtime map is built from the compiled
   form inside [claims]; the deterministic compiler makes the same pcs
   and handle indices valid for the independent compile inside
   {!Fiber_backend.run}. *)

module IS = Set.Make (Int)

let runtime_map (c : claims) : A.Resolve.rt =
  A.Resolve.runtime_map c.result.A.Analyze.resolve c.result.A.Analyze.compiled

let dispatch_contradiction (c : claims) (rt : A.Resolve.rt)
    (observed : (int * int) list) : string option =
  let resolve = c.result.A.Analyze.resolve in
  List.find_map
    (fun (pc, handler) ->
      match Hashtbl.find_opt rt.A.Resolve.rt_site_of_pc pc with
      | None ->
          Some
            (Printf.sprintf
               "perform executed at pc %d, but handler resolution mapped no \
                site there (reachability unsoundness or stale site map)"
               pc)
      | Some s ->
          if handler = -1 then
            if s.A.Resolve.r_top || s.A.Resolve.r_via_c then None
            else
              Some
                (Printf.sprintf
                   "site resolved to handlers only, yet it reached a \
                    handler-less boundary: %s"
                   (A.Resolve.site_to_string resolve s))
          else
            let sp =
              if handler >= 0 && handler < Array.length rt.A.Resolve.rt_spec_of_handle
              then rt.A.Resolve.rt_spec_of_handle.(handler)
              else -1
            in
            if sp >= 0 && IS.mem sp s.A.Resolve.r_cands then None
            else
              Some
                (Printf.sprintf
                   "%s site dispatched to handle spec#%d outside its \
                    candidate set: %s"
                   (A.Resolve.klass_to_string s.A.Resolve.r_class)
                   sp
                   (A.Resolve.site_to_string resolve s)))
    observed

let bound_contradiction (c : claims) ~(policy : Retrofit_fiber.Stack_policy.t)
    ~multishot ?(red_zone = 16) (counters : Retrofit_util.Counter.t) :
    string option =
  let bounds =
    A.Costbound.counter_bounds c.result.A.Analyze.cost ~policy ~multishot
      ~red_zone
  in
  List.find_map
    (fun (name, b) ->
      match A.Costbound.finite b with
      | None -> None
      | Some limit ->
          let v = Retrofit_util.Counter.get counters name in
          if v > limit then
            Some
              (Printf.sprintf
                 "counter %s measured %d under policy %s%s, exceeding its \
                  static bound %d"
                 name v
                 (Retrofit_fiber.Stack_policy.name policy)
                 (if multishot then " (multishot)" else "")
                 limit)
          else None)
    bounds

let claims_to_string (c : claims) =
  let vu, vo = verdicts ~one_shot:true c in
  Printf.sprintf "static: unhandled=%s one-shot=%s (flow %b/%b, must %s%s)"
    (A.Diag.verdict_to_string vu)
    (A.Diag.verdict_to_string vo)
    c.result.A.Analyze.flow_unhandled_may c.result.A.Analyze.flow_one_shot_may
    (match c.result.A.Analyze.must with
    | A.Analyze.M_value -> "value"
    | A.Analyze.M_raises l -> "raises " ^ l
    | A.Analyze.M_unknown -> "unknown")
    (if c.result.A.Analyze.hit_violation then ", violated" else "")
