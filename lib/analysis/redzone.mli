(** Static red-zone soundness audit (§5.2).

    The runtime elides the prologue overflow check of a function that
    is a leaf and whose frame fits in the red zone, trusting the
    compiler's [is_leaf] and [frame_words] claims.  This audit
    recomputes both from the instruction stream alone — leafness by
    scanning for frame-pushing or stack-switching instructions, locals
    from the highest touched slot, trap depth and operand depth by
    forward dataflow over {!Cfg.instr_successors} — and reports every
    function whose check would be elided on an under-reserving claim.
    Over-reservation (claimed frame larger than recomputed) is safe and
    not reported. *)

type computed = {
  c_leaf : bool;
  c_nlocals : int;
  c_max_traps : int;
  c_frame_words : int;
  c_max_ostack : int;
}

val compute :
  Retrofit_fiber.Compile.compiled -> Retrofit_fiber.Compile.cfn -> computed

val audit_fn :
  red_zone:int ->
  Retrofit_fiber.Compile.compiled ->
  Retrofit_fiber.Compile.cfn ->
  Diag.t option

val audit : red_zone:int -> Retrofit_fiber.Compile.compiled -> Diag.t list

val agrees : red_zone:int -> Retrofit_fiber.Compile.compiled -> bool
(** No findings: the audit and {!Retrofit_fiber.Otss.needs_check} make
    the same elision decisions on every function. *)
