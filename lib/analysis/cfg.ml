module F = Retrofit_fiber

type cfun_model = Pure | Calls_back of string | Opaque

type spec = { sp_id : int; sp_in : string; sp : F.Ir.handle_spec }

type t = {
  program : F.Ir.program;
  fn_tbl : (string, F.Ir.fn) Hashtbl.t;
  fn_names : string list;
  specs : spec array;
  specs_in : (string, spec list) Hashtbl.t;
  cfun_model : string -> cfun_model;
  reachable : (string, unit) Hashtbl.t;
  parent : (string, string) Hashtbl.t;
  mutable reach_order : F.Ir.fn list;
  eff_labels : string list;
  exn_labels : string list;
  has_opaque_cfun : bool;
}

exception Unknown_function of string

let fn t name =
  match Hashtbl.find_opt t.fn_tbl name with
  | Some f -> f
  | None -> raise (Unknown_function name)

let rec iter_expr f (e : F.Ir.expr) =
  f e;
  match e with
  | F.Ir.Int _ | F.Ir.Var _ -> ()
  | F.Ir.Binop (_, a, b)
  | F.Ir.Let (_, a, b)
  | F.Ir.Seq (a, b)
  | F.Ir.Repeat (a, b)
  | F.Ir.Continue (a, b) ->
      iter_expr f a;
      iter_expr f b
  | F.Ir.If (a, b, c) ->
      iter_expr f a;
      iter_expr f b;
      iter_expr f c
  | F.Ir.Call (_, args) | F.Ir.Extcall (_, args) -> List.iter (iter_expr f) args
  | F.Ir.Raise (_, a) | F.Ir.Perform (_, a) -> iter_expr f a
  | F.Ir.Discontinue (a, _, b) ->
      iter_expr f a;
      iter_expr f b
  | F.Ir.Trywith (body, cases) ->
      iter_expr f body;
      List.iter (fun (_, _, e) -> iter_expr f e) cases
  | F.Ir.Handle h -> List.iter (iter_expr f) h.F.Ir.body_args

(* Interprocedural edges out of one function: direct calls, the five
   function positions of a handler installation, and — through the
   C-function model — callback re-entries from external calls.  An
   [Opaque] C function is assumed able to call back into any function of
   the program. *)
type edge_kind =
  | Ecall
  | Ehandle_body
  | Ehandle_case
  | Ecallback of string  (** via the named C function *)

let iter_edges t name k =
  let f = fn t name in
  iter_expr
    (fun e ->
      match e with
      | F.Ir.Call (g, _) -> k Ecall g
      | F.Ir.Handle h ->
          k Ehandle_body h.F.Ir.body_fn;
          k Ehandle_case h.F.Ir.retc;
          List.iter (fun (_, g) -> k Ehandle_case g) h.F.Ir.exncs;
          List.iter (fun (_, g) -> k Ehandle_case g) h.F.Ir.effcs
      | F.Ir.Extcall (c, _) -> (
          match t.cfun_model c with
          | Pure -> ()
          | Calls_back g -> k (Ecallback c) g
          | Opaque -> List.iter (fun g -> k (Ecallback c) g) t.fn_names)
      | _ -> ())
    f.F.Ir.body

let builtin_exns =
  [ "Unhandled"; "Invalid_argument"; "Division_by_zero"; "Stack_overflow" ]

let build ?(cfun_model = fun _ -> Opaque) (program : F.Ir.program) =
  let fn_tbl = Hashtbl.create 16 in
  List.iter (fun (f : F.Ir.fn) -> Hashtbl.replace fn_tbl f.F.Ir.fn_name f)
    program.F.Ir.fns;
  let fn_names = List.map (fun (f : F.Ir.fn) -> f.F.Ir.fn_name) program.F.Ir.fns in
  let specs = ref [] and nspecs = ref 0 in
  let specs_in = Hashtbl.create 16 in
  let effs = ref [] and exns = ref (List.rev builtin_exns) in
  let add_label set l = if not (List.mem l !set) then set := l :: !set in
  let has_opaque = ref false in
  List.iter
    (fun (f : F.Ir.fn) ->
      iter_expr
        (fun e ->
          match e with
          | F.Ir.Handle h ->
              let sp = { sp_id = !nspecs; sp_in = f.F.Ir.fn_name; sp = h } in
              incr nspecs;
              specs := sp :: !specs;
              Hashtbl.replace specs_in f.F.Ir.fn_name
                (sp
                 ::
                 (match Hashtbl.find_opt specs_in f.F.Ir.fn_name with
                 | Some l -> l
                 | None -> []));
              List.iter (fun (l, _) -> add_label effs l) h.F.Ir.effcs;
              List.iter (fun (l, _) -> add_label exns l) h.F.Ir.exncs
          | F.Ir.Perform (l, _) -> add_label effs l
          | F.Ir.Raise (l, _) | F.Ir.Discontinue (_, l, _) -> add_label exns l
          | F.Ir.Trywith (_, cases) ->
              List.iter (fun (l, _, _) -> add_label exns l) cases
          | F.Ir.Extcall (c, _) ->
              if cfun_model c = Opaque then has_opaque := true
          | _ -> ())
        f.F.Ir.body)
    program.F.Ir.fns;
  let t =
    {
      program;
      fn_tbl;
      fn_names;
      specs = Array.of_list (List.rev !specs);
      specs_in;
      cfun_model;
      reachable = Hashtbl.create 16;
      parent = Hashtbl.create 16;
      reach_order = [];
      eff_labels = List.rev !effs;
      exn_labels = List.rev !exns;
      has_opaque_cfun = !has_opaque;
    }
  in
  (* Reachability from main over all edge kinds; the BFS tree doubles as
     the witness-path provenance for diagnostics. *)
  let q = Queue.create () in
  let visit ~from name =
    if Hashtbl.mem t.fn_tbl name && not (Hashtbl.mem t.reachable name) then begin
      Hashtbl.replace t.reachable name ();
      (match from with
      | Some p -> Hashtbl.replace t.parent name p
      | None -> ());
      Queue.push name q
    end
  in
  visit ~from:None program.F.Ir.main;
  let order = ref [] in
  while not (Queue.is_empty q) do
    let name = Queue.pop q in
    order := fn t name :: !order;
    iter_edges t name (fun _ g -> visit ~from:(Some name) g)
  done;
  t.reach_order <- List.rev !order;
  t

let is_reachable t name = Hashtbl.mem t.reachable name

let path_to t name =
  let rec up acc name =
    match Hashtbl.find_opt t.parent name with
    | Some p -> up (name :: acc) p
    | None -> name :: acc
  in
  if is_reachable t name then up [] name else [ name ]

let specs_inside t name =
  match Hashtbl.find_opt t.specs_in name with Some l -> List.rev l | None -> []

(* ------------------------------------------------------------------ *)
(* Instruction-level CFG over compiled code, for the red-zone audit. *)

type edge = Fallthrough | Branch | Trap_handler

let instr_successors ~(code : int -> F.Ir.instr) ~at =
  match code at with
  | F.Ir.Jump a -> [ (a, Branch) ]
  | F.Ir.JumpIfNot a -> [ (a, Branch); (at + 1, Fallthrough) ]
  | F.Ir.PushtrapI a -> [ (a, Trap_handler); (at + 1, Fallthrough) ]
  | F.Ir.RaiseI _ | F.Ir.ReraiseI | F.Ir.Ret | F.Ir.Stop -> []
  | _ -> [ (at + 1, Fallthrough) ]
