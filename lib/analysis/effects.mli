(** Whole-program handled-effect dataflow.

    Two cooperating fixed points over the {!Cfg} index:

    {b Phase A} (top-down) computes, per function and effect label,
    whether the dynamic handler stack above an activation may lack the
    label — and whether the nearest barrier is then the toplevel or a
    §5.3 callback frame.  Contexts flow over calls, into handler bodies
    (minus the labels the installation handles), into case functions
    (which run in the installer's — and after a resume, the resumer's —
    frame), and into callback targets, where the blanked handler chain
    makes every label C-barred.

    {b Phase B} (bottom-up) computes per function the effect labels
    that may be performed and escape its extent, and the exception
    labels that may be raised out of it.  The runtime's synthetic
    exceptions are ordinary labels here: ["Unhandled"] is injected at
    perform sites phase A marks as possibly bare, ["Invalid_argument"]
    at resume sites the {!Linearity} pass flags as possibly-second,
    ["Division_by_zero"] at non-literal divisions.  A resume site also
    releases what the reinstated body can still do.

    Both directions over-approximate: a [Safe] derived from these sets
    claims the behaviour is impossible in every execution, which the
    conformance fuzzer cross-checks against all backends. *)

type ctx_entry = {
  top : bool;  (** some context reaching the function leaves the label
                   unhandled all the way to toplevel *)
  via_c : string option;  (** ... or up to a callback frame of this C
                              function *)
}

type esc = { eff : Set.Make(String).t; exn : Set.Make(String).t }

type t

val analyze : ?multishot:bool -> Cfg.t -> Linearity.t -> t
(** [multishot] (default [false]) analyzes for a runtime that clones
    continuations on resume: resume sites stop injecting
    ["Invalid_argument"], and {!Diag.May_resume_twice} findings are
    reported with a [Safe] verdict — the shape is still worth flagging,
    but a second resume is legal. *)

val ctx_entry : t -> string -> string -> ctx_entry
(** [ctx_entry t fn label] *)

val escape : t -> string -> esc

val diagnostics : t -> Diag.t list
(** Possibly-unhandled and effect-across-C-frame per perform site,
    dead-handler-clause, may-resume-twice and may-leak per reachable
    installation; deterministically sorted. *)

val unhandled_may : t -> bool
(** ["Unhandled"] escapes [main] — the program's [Unhandled] outcome is
    not excluded. *)

val one_shot_may : t -> bool

val unhandled : string

val invalid_argument : string

val division_by_zero : string
