(** Structured diagnostics of the static effect-safety analyzer.

    Verdicts are three-valued.  For the escape lints the soundness
    direction is {e may}: [Safe] claims the behaviour cannot happen in
    any execution (the claim the fuzzer cross-checks against the
    runtime), [May] that some over-approximated path exhibits it, and
    [Must] that a conservative straight-line interpretation proves it on
    every terminating run.  [Dead_handler_clause] points the other way:
    it is emitted only when the over-approximation shows the clause can
    never fire, so it is always a [Must]. *)

type verdict = Safe | May | Must

type clause = Eff_clause | Exn_clause

type kind =
  | Possibly_unhandled of { effect_name : string }
      (** the effect may escape every handler and reach toplevel, where
          the runtime raises [Unhandled] at the perform site (§3.2) *)
  | Effect_across_c_frame of { effect_name : string; cfun : string }
      (** the perform is reachable under an external-call frame with no
          intervening handler — the §5.3 prohibition *)
  | Dead_handler_clause of { clause : clause; label : string; case_fn : string }
  | May_resume_twice of { origin : string }
      (** a one-shot violation: some path resumes the continuation twice;
          the second resume raises [Invalid_argument] (§3.1) *)
  | May_leak of { origin : string }
      (** the linear-resource leak: a captured continuation on which
          neither [Continue] nor [Discontinue] is reachable *)
  | Redzone_unsound of {
      claimed_frame : int;
      computed_frame : int;
      claimed_leaf : bool;
      computed_leaf : bool;
    }
      (** the §5.2 elision rule would skip the prologue check, but the
          recomputed frame usage could overrun the red zone *)
  | Megamorphic_dispatch of { effect_name : string; outcomes : int }
      (** the handler-resolution pass found too many distinct dynamic
          dispatch outcomes at this perform site for an inline cache *)
  | Unbounded_cost of { counter : string; cause : string }
      (** the cost-bound pass cannot give the named runtime counter a
          finite whole-program bound (recursion, a non-constant loop
          count, or an opaque external call) *)

type t = {
  kind : kind;
  verdict : verdict;
  fn : string;  (** source function the finding anchors to *)
  path : string list;  (** call-graph witness from [main], outermost first *)
  site : string;  (** printed fragment of the offending expression *)
}

type report = {
  diags : t list;
  unhandled : verdict;  (** can the program end with outcome [Unhandled]? *)
  one_shot : verdict;  (** can it end with a one-shot violation? *)
}

val verdict_to_string : verdict -> string

val kind_label : kind -> string

val to_string : ?loc:(string -> string option) -> t -> string
(** [loc] maps a witness-path function name to a terminal-clickable
    [file:line] position; steps with a position render as
    [name(file:line)]. *)

val locator :
  file:string -> Retrofit_fiber.Ir.program -> string -> string option
(** Positions every function at its line in the
    {!Retrofit_fiber.Ir.program_to_string} listing of [file] — one
    function per line, program order. *)

val sorted : t list -> t list
(** Deterministic order: kind label, then function, then detail. *)

val dedup : t list -> t list
(** {!sorted}, with findings that differ only in witness path (same
    kind, verdict, function and site) collapsed to the one with the
    shortest — then lexicographically least — path. *)

val report_to_string : ?loc:(string -> string option) -> report -> string
