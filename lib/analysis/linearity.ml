module F = Retrofit_fiber
module IS = Set.Make (Int)

type range = { lo : int; hi : int }

type resume_kind = Rcontinue | Rdiscontinue of string

type site = {
  s_fn : string;
  s_idx : int;
  s_kind : resume_kind;
  mutable s_specs : IS.t;
  mutable s_may_second : bool;
}

type t = {
  cfg : Cfg.t;
  sites : (string, site array) Hashtbl.t;
  escaped : IS.t;
  resumes : (int, (string, range) Hashtbl.t) Hashtbl.t;
      (* spec → fn → resume count of one continuation of that spec
         during a single invocation of the function *)
}

let sat n = if n > 2 then 2 else if n < 0 then 0 else n

let radd a b = { lo = sat (a.lo + b.lo); hi = sat (a.hi + b.hi) }

let rhull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

let rzero = { lo = 0; hi = 0 }

let rone = { lo = 1; hi = 1 }

(* ------------------------------------------------------------------ *)
(* Resume-site enumeration.  Sites are numbered by the pre-order
   traversal position of their [Continue]/[Discontinue] node — claimed
   on node entry, before descending into subterms — and every other
   walk in this module and in {!Effects} claims indices in the same
   order, so a site index is a stable cross-analysis key. *)

let enumerate_sites (cfg : Cfg.t) =
  let sites = Hashtbl.create 16 in
  List.iter
    (fun (f : F.Ir.fn) ->
      let acc = ref [] and n = ref 0 in
      Cfg.iter_expr
        (fun e ->
          let add kind =
            acc :=
              {
                s_fn = f.F.Ir.fn_name;
                s_idx = !n;
                s_kind = kind;
                s_specs = IS.empty;
                s_may_second = false;
              }
              :: !acc;
            incr n
          in
          match e with
          | F.Ir.Continue _ -> add Rcontinue
          | F.Ir.Discontinue (_, l, _) -> add (Rdiscontinue l)
          | _ -> ())
        f.F.Ir.body;
      Hashtbl.replace sites f.F.Ir.fn_name (Array.of_list (List.rev !acc)))
    cfg.Cfg.reach_order;
  sites

(* ------------------------------------------------------------------ *)
(* Continuation-taint analysis.  Each handler installation is one taint
   source: the machine passes the captured continuation as the second
   argument of the spec's effect-case functions.  Taints flow through
   lets, calls, handle body arguments and the value positions that can
   carry them; a continuation reaching a position we cannot track
   (arithmetic, payloads, external calls) degrades its spec to
   [escaped], which the clients treat as "may be resumed anywhere, any
   number of times". *)

type taint_state = {
  var_t : (string * string, IS.t) Hashtbl.t;  (* (fn, var) → specs *)
  ret_t : (string, IS.t) Hashtbl.t;
  mutable esc_t : IS.t;
  mutable changed : bool;
}

let get_tbl tbl key =
  match Hashtbl.find_opt tbl key with Some s -> s | None -> IS.empty

let add_tbl st tbl key s =
  if not (IS.is_empty s) then begin
    let old = get_tbl tbl key in
    let merged = IS.union old s in
    if not (IS.equal old merged) then begin
      Hashtbl.replace tbl key merged;
      st.changed <- true
    end
  end

let degrade st s =
  if not (IS.subset s st.esc_t) then begin
    st.esc_t <- IS.union st.esc_t s;
    st.changed <- true
  end

let param_name (cfg : Cfg.t) g i =
  match Hashtbl.find_opt cfg.Cfg.fn_tbl g with
  | Some f -> List.nth_opt f.F.Ir.params i
  | None -> None

let add_param st cfg g i s =
  match param_name cfg g i with
  | Some x -> add_tbl st st.var_t (g, x) s
  | None -> ()

let case_fns (h : F.Ir.handle_spec) =
  (h.F.Ir.retc :: List.map snd h.F.Ir.exncs) @ List.map snd h.F.Ir.effcs

let taint_fixpoint (cfg : Cfg.t) sites =
  let st =
    {
      var_t = Hashtbl.create 64;
      ret_t = Hashtbl.create 16;
      esc_t = IS.empty;
      changed = true;
    }
  in
  (* The value a resume evaluates to is what the resumed computation's
     handler chain returns; likewise for a [Handle] expression. *)
  let chain_ret kk =
    IS.fold
      (fun i acc ->
        List.fold_left
          (fun acc g -> IS.union acc (get_tbl st.ret_t g))
          acc
          (case_fns cfg.Cfg.specs.(i).Cfg.sp))
      kk IS.empty
  in
  let rounds = ref 0 in
  while st.changed && !rounds < 1000 do
    st.changed <- false;
    incr rounds;
    (* machine-side seeds; a handler installed in unreachable code
       never captures, and unreachable functions never run, so the
       whole pass — like every fixpoint in this library — only walks
       the reachable part of the call graph *)
    Array.iter
      (fun (s : Cfg.spec) ->
        if Cfg.is_reachable cfg s.Cfg.sp_in then begin
          List.iter
            (fun (_, g) -> add_param st cfg g 1 (IS.singleton s.Cfg.sp_id))
            s.Cfg.sp.F.Ir.effcs;
          add_param st cfg s.Cfg.sp.F.Ir.retc 0
            (get_tbl st.ret_t s.Cfg.sp.F.Ir.body_fn)
        end)
      cfg.Cfg.specs;
    List.iter
      (fun (f : F.Ir.fn) ->
        let fname = f.F.Ir.fn_name in
        let fsites = Hashtbl.find sites fname in
        let n = ref 0 in
        let rec ev (e : F.Ir.expr) : IS.t =
          match e with
          | F.Ir.Int _ -> IS.empty
          | F.Ir.Var x -> get_tbl st.var_t (fname, x)
          | F.Ir.Binop (_, a, b) ->
              degrade st (ev a);
              degrade st (ev b);
              IS.empty
          | F.Ir.If (c, t, e) ->
              (* left-to-right with explicit sequencing: the site
                 counter must claim indices in enumeration order *)
              degrade st (ev c);
              let tt = ev t in
              let ee = ev e in
              IS.union tt ee
          | F.Ir.Let (x, a, b) ->
              add_tbl st st.var_t (fname, x) (ev a);
              ev b
          | F.Ir.Seq (a, b) ->
              ignore (ev a);
              ev b
          | F.Ir.Call (g, args) ->
              List.iteri (fun i a -> add_param st cfg g i (ev a)) args;
              get_tbl st.ret_t g
          | F.Ir.Raise (_, e) | F.Ir.Perform (_, e) ->
              degrade st (ev e);
              IS.empty
          | F.Ir.Trywith (b, cases) ->
              List.fold_left
                (fun acc (_, _, ce) -> IS.union acc (ev ce))
                (ev b) cases
          | F.Ir.Handle h ->
              List.iteri
                (fun i a -> add_param st cfg h.F.Ir.body_fn i (ev a))
                h.F.Ir.body_args;
              List.fold_left
                (fun acc g -> IS.union acc (get_tbl st.ret_t g))
                IS.empty (case_fns h)
          | F.Ir.Continue (k, v) ->
              let idx = !n in
              incr n;
              let kk = ev k in
              degrade st (ev v);
              fsites.(idx).s_specs <- IS.union fsites.(idx).s_specs kk;
              chain_ret kk
          | F.Ir.Discontinue (k, _, v) ->
              let idx = !n in
              incr n;
              let kk = ev k in
              degrade st (ev v);
              fsites.(idx).s_specs <- IS.union fsites.(idx).s_specs kk;
              chain_ret kk
          | F.Ir.Extcall (_, args) ->
              List.iter (fun a -> degrade st (ev a)) args;
              IS.empty
          | F.Ir.Repeat (c, b) ->
              degrade st (ev c);
              ignore (ev b);
              IS.empty
        in
        add_tbl st st.ret_t fname (ev f.F.Ir.body))
      cfg.Cfg.reach_order
  done;
  st

(* Side-effect-free mirror of [ev]'s result, used to ask whether an
   argument expression may carry a given taint. *)
let rec taints_of st (cfg : Cfg.t) fname (e : F.Ir.expr) : IS.t =
  match e with
  | F.Ir.Int _ | F.Ir.Binop _ | F.Ir.Raise _ | F.Ir.Perform _ | F.Ir.Extcall _
  | F.Ir.Repeat _ ->
      IS.empty
  | F.Ir.Var x -> get_tbl st.var_t (fname, x)
  | F.Ir.If (_, t, e) ->
      IS.union (taints_of st cfg fname t) (taints_of st cfg fname e)
  | F.Ir.Let (_, _, b) | F.Ir.Seq (_, b) -> taints_of st cfg fname b
  | F.Ir.Call (g, _) -> get_tbl st.ret_t g
  | F.Ir.Trywith (b, cases) ->
      List.fold_left
        (fun acc (_, _, ce) -> IS.union acc (taints_of st cfg fname ce))
        (taints_of st cfg fname b)
        cases
  | F.Ir.Handle h ->
      List.fold_left
        (fun acc g -> IS.union acc (get_tbl st.ret_t g))
        IS.empty (case_fns h)
  | F.Ir.Continue (k, _) | F.Ir.Discontinue (k, _, _) ->
      let kk = taints_of st cfg fname k in
      IS.fold
        (fun i acc ->
          List.fold_left
            (fun acc g -> IS.union acc (get_tbl st.ret_t g))
            acc
            (case_fns cfg.Cfg.specs.(i).Cfg.sp))
        kk IS.empty

(* ------------------------------------------------------------------ *)
(* Per-continuation resume counting for one spec.  [resumes(f)] is the
   saturating (min, max) number of resumes applied to a single captured
   continuation of the spec during one invocation of [f]; the spec's
   own range is [resumes(effc_fn)], since each capture enters the
   analysis as a fresh second argument of an effect-case invocation.
   A site is flagged may-second when the running upper count at its
   program point can already be >= 1 — including re-entry through a
   loop and entry into a callee that was passed a possibly-consumed
   continuation. *)

let count_spec (cfg : Cfg.t) st sites sp_id =
  let r_tbl = Hashtbl.create 16 in
  let entered = Hashtbl.create 16 in
  List.iter
    (fun (f : F.Ir.fn) -> Hashtbl.replace r_tbl f.F.Ir.fn_name rzero)
    cfg.Cfg.reach_order;
  let get_r g =
    match Hashtbl.find_opt r_tbl g with Some r -> r | None -> rzero
  in
  let is_entered g = Hashtbl.mem entered g in
  let changed = ref true in
  let rounds = ref 0 in
  let carries e fname = IS.mem sp_id (taints_of st cfg fname e) in
  (* the taint fixpoint has already converged, so whether a call-site
     argument carries this spec is a constant of the counting loop:
     resolve it once per site, indexed in pre-order claim-at-entry
     position like the resume sites *)
  let arg_carries = Hashtbl.create 16 in
  List.iter
    (fun (f : F.Ir.fn) ->
      let flags = ref [] in
      Cfg.iter_expr
        (fun e ->
          match e with
          | F.Ir.Call (_, args) ->
              flags :=
                List.exists (fun a -> carries a f.F.Ir.fn_name) args :: !flags
          | F.Ir.Handle h ->
              flags :=
                List.exists (fun a -> carries a f.F.Ir.fn_name) h.F.Ir.body_args
                :: !flags
          | _ -> ())
        f.F.Ir.body;
      Hashtbl.replace arg_carries f.F.Ir.fn_name
        (Array.of_list (List.rev !flags)))
    cfg.Cfg.reach_order;
  while !changed && !rounds < 1000 do
    changed := false;
    incr rounds;
    List.iter
      (fun (f : F.Ir.fn) ->
        let fname = f.F.Ir.fn_name in
        let fsites = Hashtbl.find sites fname in
        let fcarries = Hashtbl.find arg_carries fname in
        let n = ref 0 in
        let cn = ref 0 in
        let enter g pre =
          if (pre.hi >= 1 || is_entered fname) && not (is_entered g) then begin
            Hashtbl.replace entered g ();
            changed := true
          end
        in
        let flow g ci pre =
          if fcarries.(ci) then begin
            enter g pre;
            radd pre (get_r g)
          end
          else pre
        in
        let rec w pre (e : F.Ir.expr) : range =
          match e with
          | F.Ir.Int _ | F.Ir.Var _ -> pre
          | F.Ir.Binop (_, a, b) | F.Ir.Let (_, a, b) | F.Ir.Seq (a, b) ->
              w (w pre a) b
          | F.Ir.If (c, t, e) ->
              let pc = w pre c in
              let pt = w pc t in
              let pe = w pc e in
              rhull pt pe
          | F.Ir.Call (g, args) ->
              let ci = !cn in
              incr cn;
              let p = List.fold_left w pre args in
              flow g ci p
          | F.Ir.Raise (_, e) | F.Ir.Perform (_, e) ->
              (* control may leave here; falling through overstates the
                 minimum, which the exn-aware refinement in {!Effects}
                 compensates for *)
              w pre e
          | F.Ir.Trywith (b, cases) ->
              let pb = w pre b in
              (* a case body runs after an unknown prefix of the body:
                 at least [pre.lo], at most [pb.hi] resumes happened *)
              let pcase = { lo = pre.lo; hi = pb.hi } in
              List.fold_left
                (fun acc (_, _, ce) -> rhull acc (w pcase ce))
                pb cases
          | F.Ir.Handle h ->
              let ci = !cn in
              incr cn;
              let p = List.fold_left w pre h.F.Ir.body_args in
              (* machine-invoked case functions of [h] can only touch
                 this spec's continuation if it leaks through their
                 parameters, which the taint pass degrades to escaped —
                 so only the body-argument flow counts here *)
              flow h.F.Ir.body_fn ci p
          | F.Ir.Continue (k, v) | F.Ir.Discontinue (k, _, v) ->
              let idx = !n in
              incr n;
              let p = w (w pre k) v in
              let site = fsites.(idx) in
              if IS.mem sp_id site.s_specs then begin
                if (p.hi >= 1 || is_entered fname) && not site.s_may_second
                then begin
                  site.s_may_second <- true;
                  changed := true
                end;
                radd p rone
              end
              else p
          | F.Ir.Extcall (_, args) -> List.fold_left w pre args
          | F.Ir.Repeat (c, b) ->
              let pc = w pre c in
              let c0 = !n in
              let p1 = w pc b in
              let c1 = !n in
              if p1.hi > pc.hi && c <> F.Ir.Int 0 && c <> F.Ir.Int 1 then begin
                (* the body consumes and may run again: every site it
                   contains can see an already-resumed continuation *)
                Array.iter
                  (fun site ->
                    if
                      site.s_idx >= c0 && site.s_idx < c1
                      && IS.mem sp_id site.s_specs
                      && not site.s_may_second
                    then begin
                      site.s_may_second <- true;
                      changed := true
                    end)
                  fsites;
                { lo = pc.lo; hi = 2 }
              end
              else rhull pc p1
        in
        let r = w rzero f.F.Ir.body in
        let old = get_r fname in
        let merged = { lo = max old.lo r.lo; hi = max old.hi r.hi } in
        if merged <> old then begin
          Hashtbl.replace r_tbl fname merged;
          changed := true
        end)
      cfg.Cfg.reach_order
  done;
  r_tbl

let analyze (cfg : Cfg.t) =
  let sites = enumerate_sites cfg in
  let st = taint_fixpoint cfg sites in
  let resumes = Hashtbl.create 8 in
  Array.iter
    (fun (s : Cfg.spec) ->
      if not (IS.mem s.Cfg.sp_id st.esc_t) then
        Hashtbl.replace resumes s.Cfg.sp_id
          (count_spec cfg st sites s.Cfg.sp_id))
    cfg.Cfg.specs;
  { cfg; sites; escaped = st.esc_t; resumes }

let sites_of t fname =
  match Hashtbl.find_opt t.sites fname with
  | Some a -> a
  | None -> [||]

let is_escaped t sp_id = IS.mem sp_id t.escaped

let resumes_in t ~spec ~fn =
  if is_escaped t spec then { lo = 0; hi = 2 }
  else
    match Hashtbl.find_opt t.resumes spec with
    | None -> { lo = 0; hi = 2 }
    | Some tbl -> (
        match Hashtbl.find_opt tbl fn with Some r -> r | None -> rzero)

(* Effective spec set at a site: the tracked taints plus, if any spec
   escaped tracking, every escaped spec — an untracked continuation
   could reach any resume site. *)
let site_specs t site = IS.union site.s_specs t.escaped

let site_may_second t site =
  site.s_may_second || not (IS.is_empty (IS.inter site.s_specs t.escaped))
  || not (IS.is_empty t.escaped)
