type verdict = Safe | May | Must

type clause = Eff_clause | Exn_clause

type kind =
  | Possibly_unhandled of { effect_name : string }
  | Effect_across_c_frame of { effect_name : string; cfun : string }
  | Dead_handler_clause of { clause : clause; label : string; case_fn : string }
  | May_resume_twice of { origin : string }
  | May_leak of { origin : string }
  | Redzone_unsound of {
      claimed_frame : int;
      computed_frame : int;
      claimed_leaf : bool;
      computed_leaf : bool;
    }

type t = {
  kind : kind;
  verdict : verdict;
  fn : string;  (** source function the finding anchors to *)
  path : string list;  (** call-graph witness from [main], outermost first *)
  site : string;  (** printed fragment of the offending expression *)
}

type report = {
  diags : t list;
  unhandled : verdict;
  one_shot : verdict;
}

let verdict_to_string = function Safe -> "safe" | May -> "may" | Must -> "must"

let kind_label = function
  | Possibly_unhandled _ -> "possibly-unhandled"
  | Effect_across_c_frame _ -> "effect-across-c-frame"
  | Dead_handler_clause _ -> "dead-handler-clause"
  | May_resume_twice _ -> "may-resume-twice"
  | May_leak _ -> "may-leak"
  | Redzone_unsound _ -> "red-zone-unsound"

let kind_detail = function
  | Possibly_unhandled { effect_name } ->
      Printf.sprintf "effect %s may escape to toplevel" effect_name
  | Effect_across_c_frame { effect_name; cfun } ->
      Printf.sprintf "effect %s may reach the C frame of %s with no intervening \
                      handler"
        effect_name cfun
  | Dead_handler_clause { clause; label; case_fn } ->
      Printf.sprintf "%s clause for %s (case %s) can never fire"
        (match clause with Eff_clause -> "effect" | Exn_clause -> "exception")
        label case_fn
  | May_resume_twice { origin } ->
      Printf.sprintf "continuation captured for %s may be resumed twice on one \
                      path"
        origin
  | May_leak { origin } ->
      Printf.sprintf "continuation captured for %s may be neither continued nor \
                      discontinued"
        origin
  | Redzone_unsound { claimed_frame; computed_frame; claimed_leaf; computed_leaf }
    ->
      Printf.sprintf
        "overflow check elided but recomputed frame disagrees (claimed %d words \
         leaf=%b, computed %d words leaf=%b)"
        claimed_frame claimed_leaf computed_frame computed_leaf

let to_string d =
  Printf.sprintf "%-22s %-4s %s: %s%s%s" (kind_label d.kind)
    (verdict_to_string d.verdict)
    d.fn (kind_detail d.kind)
    (if d.path = [] then "" else " [" ^ String.concat " -> " d.path ^ "]")
    (if d.site = "" then "" else "\n    at " ^ d.site)

(* Deterministic report order: by kind label, function, then detail. *)
let sort_key d = (kind_label d.kind, d.fn, kind_detail d.kind, d.site)

let sorted diags = List.sort (fun a b -> compare (sort_key a) (sort_key b)) diags

let report_to_string r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "verdicts: unhandled=%s one-shot=%s\n"
       (verdict_to_string r.unhandled)
       (verdict_to_string r.one_shot));
  if r.diags = [] then Buffer.add_string b "no findings\n"
  else
    List.iter
      (fun d -> Buffer.add_string b (to_string d ^ "\n"))
      (sorted r.diags);
  Buffer.contents b
