type verdict = Safe | May | Must

type clause = Eff_clause | Exn_clause

type kind =
  | Possibly_unhandled of { effect_name : string }
  | Effect_across_c_frame of { effect_name : string; cfun : string }
  | Dead_handler_clause of { clause : clause; label : string; case_fn : string }
  | May_resume_twice of { origin : string }
  | May_leak of { origin : string }
  | Redzone_unsound of {
      claimed_frame : int;
      computed_frame : int;
      claimed_leaf : bool;
      computed_leaf : bool;
    }
  | Megamorphic_dispatch of { effect_name : string; outcomes : int }
  | Unbounded_cost of { counter : string; cause : string }

type t = {
  kind : kind;
  verdict : verdict;
  fn : string;  (** source function the finding anchors to *)
  path : string list;  (** call-graph witness from [main], outermost first *)
  site : string;  (** printed fragment of the offending expression *)
}

type report = {
  diags : t list;
  unhandled : verdict;
  one_shot : verdict;
}

let verdict_to_string = function Safe -> "safe" | May -> "may" | Must -> "must"

let kind_label = function
  | Possibly_unhandled _ -> "possibly-unhandled"
  | Effect_across_c_frame _ -> "effect-across-c-frame"
  | Dead_handler_clause _ -> "dead-handler-clause"
  | May_resume_twice _ -> "may-resume-twice"
  | May_leak _ -> "may-leak"
  | Redzone_unsound _ -> "red-zone-unsound"
  | Megamorphic_dispatch _ -> "megamorphic-dispatch"
  | Unbounded_cost _ -> "unbounded-cost"

let kind_detail = function
  | Possibly_unhandled { effect_name } ->
      Printf.sprintf "effect %s may escape to toplevel" effect_name
  | Effect_across_c_frame { effect_name; cfun } ->
      Printf.sprintf "effect %s may reach the C frame of %s with no intervening \
                      handler"
        effect_name cfun
  | Dead_handler_clause { clause; label; case_fn } ->
      Printf.sprintf "%s clause for %s (case %s) can never fire"
        (match clause with Eff_clause -> "effect" | Exn_clause -> "exception")
        label case_fn
  | May_resume_twice { origin } ->
      Printf.sprintf "continuation captured for %s may be resumed twice on one \
                      path"
        origin
  | May_leak { origin } ->
      Printf.sprintf "continuation captured for %s may be neither continued nor \
                      discontinued"
        origin
  | Redzone_unsound { claimed_frame; computed_frame; claimed_leaf; computed_leaf }
    ->
      Printf.sprintf
        "overflow check elided but recomputed frame disagrees (claimed %d words \
         leaf=%b, computed %d words leaf=%b)"
        claimed_frame claimed_leaf computed_frame computed_leaf
  | Megamorphic_dispatch { effect_name; outcomes } ->
      Printf.sprintf
        "perform %s may dispatch to %d distinct handler clauses — not an \
         inline-cache candidate"
        effect_name outcomes
  | Unbounded_cost { counter; cause } ->
      Printf.sprintf "no finite static bound for counter %s (%s)" counter cause

(* A witness step renders as [name(file:line)] when the caller supplies
   a locator — the listing position of the function's definition, in a
   terminal-clickable [file:line] shape. *)
let step_to_string ?loc name =
  match loc with
  | None -> name
  | Some f -> (
      match f name with
      | Some pos -> Printf.sprintf "%s(%s)" name pos
      | None -> name)

let to_string ?loc d =
  Printf.sprintf "%-22s %-4s %s: %s%s%s" (kind_label d.kind)
    (verdict_to_string d.verdict)
    d.fn (kind_detail d.kind)
    (if d.path = [] then ""
     else
       " [" ^ String.concat " -> " (List.map (step_to_string ?loc) d.path) ^ "]")
    (if d.site = "" then "" else "\n    at " ^ d.site)

let locator ~file (p : Retrofit_fiber.Ir.program) =
  let tbl = Hashtbl.create 16 in
  List.iteri
    (fun i (f : Retrofit_fiber.Ir.fn) ->
      (* [Ir.program_to_string] prints one function per line, in program
         order, so the definition of the [i]-th function sits on line
         [i + 1] of the listing. *)
      if not (Hashtbl.mem tbl f.Retrofit_fiber.Ir.fn_name) then
        Hashtbl.replace tbl f.Retrofit_fiber.Ir.fn_name (i + 1))
    p.Retrofit_fiber.Ir.fns;
  fun name ->
    match Hashtbl.find_opt tbl name with
    | Some line -> Some (Printf.sprintf "%s:%d" file line)
    | None -> None

(* Deterministic report order: by kind label, function, then detail. *)
let sort_key d = (kind_label d.kind, d.fn, kind_detail d.kind, d.site)

let sorted diags = List.sort (fun a b -> compare (sort_key a) (sort_key b)) diags

(* Findings that differ only in their call-graph witness are one
   finding: keep the shortest (then lexicographically least) path so
   reports stay deterministic and the count reflects distinct
   kind/verdict/function/site facts. *)
let dedup diags =
  let better a b =
    compare (List.length a.path, a.path) (List.length b.path, b.path) < 0
  in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun d ->
      let key = (sort_key d, verdict_to_string d.verdict) in
      match Hashtbl.find_opt tbl key with
      | Some prev when not (better d prev) -> ()
      | _ -> Hashtbl.replace tbl key d)
    diags;
  sorted (Hashtbl.fold (fun _ d acc -> d :: acc) tbl [])

let report_to_string ?loc r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "verdicts: unhandled=%s one-shot=%s\n"
       (verdict_to_string r.unhandled)
       (verdict_to_string r.one_shot));
  if r.diags = [] then Buffer.add_string b "no findings\n"
  else
    List.iter
      (fun d -> Buffer.add_string b (to_string ?loc d ^ "\n"))
      (dedup r.diags);
  Buffer.contents b
