module F = Retrofit_fiber
module Eff = Retrofit_core.Eff

type must = M_value | M_raises of string | M_unknown

type result = {
  report : Diag.report;
  flow_unhandled_may : bool;
  flow_one_shot_may : bool;
  must : must;
  hit_violation : bool;
  resolve : Resolve.t;
  cost : Costbound.t;
  compiled : F.Compile.compiled;
}

(* ------------------------------------------------------------------ *)
(* The must pass: a bounded concrete interpreter.  Fiber programs are
   closed and deterministic, so when one terminating evaluation fits in
   the fuel budget its outcome is the program's outcome — under the
   one-shot discipline — and [May] verdicts sharpen to [Must] (or, for
   the other label, to [Safe]).  Anything the interpreter cannot decide
   exactly (an external call's return value steering a branch, fuel or
   host-stack exhaustion, a runtime-injected payload being inspected)
   aborts to [M_unknown] rather than guessing.

   Continuations are real: the interpreter runs on OCaml's own effect
   handlers, so one-shot violations, discontinue routing, deep-handler
   forwarding and exception paths into resumed fibers all follow the
   semantics the fiber machine implements.  [hit_violation] records
   that a second resume happened: past that point a multi-shot runtime
   diverges from this execution, so multi-shot claims must fall back to
   the flow analysis. *)

type mval = M_int of int | M_cont of (mval, mval) Eff.continuation | M_unk

type _ Effect.t += M_eff : string * mval -> mval Effect.t

exception M_raise of string * mval

exception M_abort

exception M_fuel

let must_run ?(fuel = 200_000) (cfun_model : string -> Cfg.cfun_model)
    (p : F.Ir.program) : must * bool =
  let fns = Hashtbl.create 16 in
  List.iter (fun (f : F.Ir.fn) -> Hashtbl.replace fns f.F.Ir.fn_name f) p.F.Ir.fns;
  let fuel = ref fuel in
  let violated = ref false in
  let tick () =
    decr fuel;
    if !fuel <= 0 then raise M_fuel
  in
  let as_int = function M_int n -> Some n | _ -> None in
  let rec eval env (e : F.Ir.expr) : mval =
    tick ();
    match e with
    | F.Ir.Int n -> M_int n
    | F.Ir.Var x -> (
        match List.assoc_opt x env with Some v -> v | None -> raise M_abort)
    | F.Ir.Binop (op, a, b) -> (
        let va = eval env a in
        let vb = eval env b in
        match op with
        | F.Ir.Div | F.Ir.Mod -> (
            match as_int vb with
            | None -> raise M_abort
            | Some 0 -> raise (M_raise (Effects.division_by_zero, M_unk))
            | Some d -> (
                match as_int va with
                | None -> M_unk
                | Some n ->
                    M_int (if op = F.Ir.Div then n / d else n mod d)))
        | _ -> (
            match (as_int va, as_int vb) with
            | Some x, Some y ->
                M_int
                  (match op with
                  | F.Ir.Add -> x + y
                  | F.Ir.Sub -> x - y
                  | F.Ir.Mul -> x * y
                  | F.Ir.Lt -> if x < y then 1 else 0
                  | F.Ir.Le -> if x <= y then 1 else 0
                  | F.Ir.Eq -> if x = y then 1 else 0
                  | F.Ir.Ne -> if x <> y then 1 else 0
                  | F.Ir.Div | F.Ir.Mod -> assert false)
            | _ -> M_unk))
    | F.Ir.If (c, t, f) -> (
        match as_int (eval env c) with
        | Some 0 -> eval env f
        | Some _ -> eval env t
        | None -> raise M_abort)
    | F.Ir.Let (x, a, b) ->
        let v = eval env a in
        eval ((x, v) :: env) b
    | F.Ir.Seq (a, b) ->
        ignore (eval env a);
        eval env b
    | F.Ir.Call (f, args) ->
        let vs = List.map (eval env) args in
        call f vs
    | F.Ir.Raise (l, e) -> raise (M_raise (l, eval env e))
    | F.Ir.Trywith (b, cases) -> (
        match eval env b with
        | v -> v
        | exception (M_raise (l, payload) as ex) -> (
            match List.find_opt (fun (l', _, _) -> l' = l) cases with
            | Some (_, x, h) -> eval ((x, payload) :: env) h
            | None -> raise ex))
    | F.Ir.Perform (l, e) -> (
        let v = eval env e in
        (* no handler above: the machine raises Unhandled at the
           perform site, catchable on the way out *)
        try Eff.perform (M_eff (l, v))
        with Effect.Unhandled _ -> raise (M_raise (Effects.unhandled, M_unk)))
    | F.Ir.Handle h ->
        let vs = List.map (eval env) h.F.Ir.body_args in
        Eff.match_with
          (fun () -> call h.F.Ir.body_fn vs)
          {
            Eff.retc = (fun r -> call h.F.Ir.retc [ r ]);
            exnc =
              (fun ex ->
                match ex with
                | M_raise (l, payload) -> (
                    match List.assoc_opt l h.F.Ir.exncs with
                    | Some g -> call g [ payload ]
                    | None -> raise ex)
                | _ -> raise ex);
            effc =
              (fun (type c) (eff : c Effect.t) ->
                match eff with
                | M_eff (l, v) -> (
                    match List.assoc_opt l h.F.Ir.effcs with
                    | Some g ->
                        Some
                          (fun (k : (c, _) Eff.continuation) ->
                            call g [ v; M_cont k ])
                    | None -> None)
                | _ -> None);
          }
    | F.Ir.Continue (k, e) -> (
        let v = eval env e in
        match eval env k with
        | M_cont c -> (
            try Eff.continue c v
            with Effect.Continuation_already_resumed ->
              violated := true;
              raise (M_raise (Effects.invalid_argument, M_unk)))
        | _ -> raise M_abort)
    | F.Ir.Discontinue (k, l, e) -> (
        let v = eval env e in
        match eval env k with
        | M_cont c -> (
            try Eff.discontinue c (M_raise (l, v))
            with Effect.Continuation_already_resumed ->
              violated := true;
              raise (M_raise (Effects.invalid_argument, M_unk)))
        | _ -> raise M_abort)
    | F.Ir.Extcall (c, args) -> (
        List.iter (fun a -> ignore (eval env a)) args;
        match cfun_model c with
        | Cfg.Pure -> M_unk
        | Cfg.Calls_back _ | Cfg.Opaque -> raise M_abort)
    | F.Ir.Repeat (c, b) -> (
        match as_int (eval env c) with
        | None -> raise M_abort
        | Some n ->
            for _ = 1 to n do
              ignore (eval env b)
            done;
            M_int 0)
  and call f vs =
    match Hashtbl.find_opt fns f with
    | None -> raise M_abort
    | Some fn ->
        if List.length fn.F.Ir.params <> List.length vs then raise M_abort
        else eval (List.combine fn.F.Ir.params vs) fn.F.Ir.body
  in
  let res =
    match call p.F.Ir.main [] with
    | M_int _ | M_unk | M_cont _ -> M_value
    | exception M_raise (l, _) -> M_raises l
    | exception (M_abort | M_fuel | Stack_overflow) -> M_unknown
    | exception Effect.Unhandled _ -> M_unknown
    | exception Effect.Continuation_already_resumed -> M_unknown
  in
  (res, !violated)

(* ------------------------------------------------------------------ *)

(* One flow-level May sharpened by the must pass.  The must pass's
   unique execution follows the one-shot discipline; after a violation
   a multi-shot runtime diverges from it, so the flow booleans in
   [result] — not these verdicts — are the sound basis for multi-shot
   claims. *)
let refine ~flow_may ~(must : must) label =
  match must with
  | M_raises l when l = label -> Diag.Must
  | _ when not flow_may -> Diag.Safe
  | M_value -> Diag.Safe
  | M_raises _ -> Diag.Safe
  | M_unknown -> Diag.May

let analyze ?cfun_model ?must_fuel ?(multishot = false) ?compiled
    ?(lints = true) (p : F.Ir.program) : result =
  let cfg = Cfg.build ?cfun_model p in
  let lin = Linearity.analyze cfg in
  let eff = Effects.analyze ~multishot cfg lin in
  let diags = if lints then Effects.diagnostics eff else [] in
  let flow_u = Effects.unhandled_may eff in
  let flow_o = Effects.one_shot_may eff in
  let resolve = Resolve.analyze cfg lin in
  let compiled =
    match compiled with Some c -> c | None -> F.Compile.compile p
  in
  let cost = Costbound.analyze ~cfun_model:cfg.Cfg.cfun_model compiled in
  let must, hit_violation = must_run ?fuel:must_fuel cfg.Cfg.cfun_model p in
  (* The interpreter's continuations are the host's, hence one-shot:
     past a violation its execution diverges from the cloning runtime,
     so its outcome cannot sharpen multishot verdicts. *)
  let must_usable = if multishot && hit_violation then M_unknown else must in
  let unhandled = refine ~flow_may:flow_u ~must:must_usable Effects.unhandled in
  let one_shot =
    refine ~flow_may:flow_o ~must:must_usable Effects.invalid_argument
  in
  {
    report = { Diag.diags; unhandled; one_shot };
    flow_unhandled_may = flow_u;
    flow_one_shot_may = flow_o;
    must;
    hit_violation;
    resolve;
    cost;
    compiled;
  }

let lint ?cfun_model ?(red_zone = 16) ?must_fuel ?multishot (p : F.Ir.program) :
    Diag.report =
  let r = analyze ?cfun_model ?must_fuel ?multishot p in
  let rz = Redzone.audit ~red_zone r.compiled in
  { r.report with Diag.diags = Diag.dedup (rz @ r.report.Diag.diags) }
