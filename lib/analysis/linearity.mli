(** Continuation-linearity analysis.

    Continuations are born at handler installations — the machine hands
    the captured continuation to a spec's effect-case function as its
    second argument — and the §3.1 discipline demands each be resumed
    exactly once.  This module tracks where those values can flow
    (interprocedurally, through lets, call arguments, handle body
    arguments and resume results) and bounds, per captured
    continuation, how many resume operations a single handling episode
    can apply: a saturating [(lo, hi)] count in [{0, 1, 2}], where 2
    means "two or more".

    [hi >= 2] at the spec level is the may-resume-twice lint; [lo = 0]
    the may-leak lint.  A continuation that reaches an untrackable
    position (arithmetic, an exception payload, an external call)
    degrades its spec to {e escaped}: every bound collapses to the
    worst case and every resume site is treated as possibly touching
    it.  Raises are counted as falling through, so minimum counts can
    be overstated on exceptional paths — {!Effects} compensates by
    zeroing the minimum when the case function can raise. *)

type range = { lo : int; hi : int }

type resume_kind = Rcontinue | Rdiscontinue of string

type site = {
  s_fn : string;
  s_idx : int;  (** pre-order position among the function's resume sites *)
  s_kind : resume_kind;
  mutable s_specs : Set.Make(Int).t;  (** spec ids possibly resumed here *)
  mutable s_may_second : bool;
      (** some path reaches this site with the continuation already
          resumed — the machine raises [Invalid_argument] here *)
}

type t = {
  cfg : Cfg.t;
  sites : (string, site array) Hashtbl.t;
  escaped : Set.Make(Int).t;
  resumes : (int, (string, range) Hashtbl.t) Hashtbl.t;
}

val analyze : Cfg.t -> t

val sites_of : t -> string -> site array
(** In traversal order; index [i] is the site claimed [i]-th by the
    shared pre-order walk. *)

val is_escaped : t -> int -> bool

val resumes_in : t -> spec:int -> fn:string -> range
(** Resume count one captured continuation of [spec] experiences during
    one invocation of [fn]; the spec-level verdict is [resumes_in]
    applied to its effect-case functions. *)

val site_specs : t -> site -> Set.Make(Int).t
(** Tracked specs plus every escaped spec. *)

val site_may_second : t -> site -> bool
