(** Interprocedural handler resolution: which handler clauses can
    dynamically receive each [perform]?

    A context-sensitive refinement of the {!Effects} phase-A dataflow:
    instead of tracking only whether a label may be unhandled, each
    function carries, per effect label, the set of handle-spec
    installations that may be the {e nearest} handler above one of its
    activations.  Inside a spec's body — and on re-entry after a resume
    — the labels the spec handles resolve to exactly that spec,
    shadowing every outer candidate; [Calls_back]/[Opaque] external
    calls blank the chain (the §5.3 barrier), and [Opaque] re-entries
    flow into every function.

    Sites are classified by their number of distinct dynamic dispatch
    outcomes (candidate specs, plus one for a possible handler-less
    boundary): 1 is monomorphic — the inline-cache candidate the
    ROADMAP dispatch work wants — 2–4 polymorphic, 5+ megamorphic.
    The claim the conformance campaign checks is the candidate set
    itself: every observed dispatch target must be a candidate, and a
    handler-less [Unhandled] raise can only happen at a site flagged
    [+toplevel] or [+via-c]. *)

type klass = Mono | Poly | Mega

type site = {
  r_fn : string;
  r_idx : int;
      (** compile-order position among the function's perform sites:
          the [r_idx]-th [PerformI] of its compiled code *)
  r_label : string;
  r_site : string;  (** printed [Perform] expression *)
  r_cands : Set.Make(Int).t;  (** candidate handle specs, by [sp_id] *)
  r_top : bool;  (** may reach toplevel with no handler *)
  r_via_c : bool;  (** may reach a §5.3 callback barrier *)
  r_class : klass;
}

type t

val analyze : Cfg.t -> Linearity.t -> t

val sites_of : t -> string -> site array
(** Compile order; [[||]] for an unreachable function. *)

val all_sites : t -> site list
(** Program order, compile order within each function. *)

val census : t -> int * int * int
(** [(mono, poly, mega)] over {!all_sites}. *)

val klass_to_string : klass -> string

val outcomes : site -> int

val site_to_string : t -> site -> string

val report : t -> string
(** The inline-cache candidate table: one census line, then one line
    per site with candidates, boundary flags and witness path. *)

val diagnostics : t -> Diag.t list
(** One [May]-verdict {!Diag.Megamorphic_dispatch} per megamorphic
    site. *)

(** {1 Static-to-runtime identity maps}

    Built against the compiled form of the {e same} program the
    analysis ran on; the deterministic compiler makes the pairing
    stable across independent compiles. *)

type rt = {
  rt_site_of_pc : (int, site) Hashtbl.t;
      (** [PerformI] pc — what {!Retrofit_fiber.Machine.run}'s
          [on_perform] reports as [site] — to the static site *)
  rt_spec_of_handle : int array;
      (** handle-descriptor index (what [on_perform] reports as
          [handler]) to [sp_id]; -1 when unmatched *)
  rt_handle_of_spec : int array;  (** inverse; -1 when unmatched *)
}

val runtime_map : t -> Retrofit_fiber.Compile.compiled -> rt
