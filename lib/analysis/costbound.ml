module F = Retrofit_fiber

(* ------------------------------------------------------------------ *)
(* The ∞-aware bound domain.  Arithmetic saturates well below the OCaml
   int range so products of large trip counts cannot wrap. *)

type bound = Fin of int | Inf

let sat = 1_000_000_000_000

let fin n = if n > sat then Inf else Fin n

let badd a b =
  match (a, b) with Inf, _ | _, Inf -> Inf | Fin x, Fin y -> fin (x + y)

let bmul a b =
  match (a, b) with
  | Fin 0, _ | _, Fin 0 -> Fin 0
  | Inf, _ | _, Inf -> Inf
  | Fin x, Fin y -> if x > sat / y then Inf else fin (x * y)

let ble a b =
  match (a, b) with
  | _, Inf -> true
  | Inf, Fin _ -> false
  | Fin x, Fin y -> x <= y

let bound_to_string = function Fin n -> string_of_int n | Inf -> "inf"

let finite = function Fin n -> Some n | Inf -> None

(* ------------------------------------------------------------------ *)
(* Per-function abstract summary over compiled code: how many times per
   invocation each cost-bearing instruction can execute.  The only
   backward branch the compiler emits is the [Repeat] latch; its exact
   shape (count; Store s; top: Load s; JumpIfNot exit; body; Pop;
   Load s; Const 1; Sub; Store s; Jump top) is recognised here the way
   {!Redzone} re-derives frame words — a constant count [n] multiplies
   the loop span by [n + 1] (header executes once more than the body),
   anything else widens the span to ∞.  Nested loops multiply. *)

let multipliers (c : F.Compile.compiled) (cf : F.Compile.cfn) =
  let entry = cf.F.Compile.entry and code_end = cf.F.Compile.code_end in
  let code = c.F.Compile.code in
  let mult = Array.make (max (code_end - entry) 1) (Fin 1) in
  for pc = entry to code_end - 1 do
    match code.(pc) with
    | F.Ir.Jump t when t < pc ->
        let factor =
          if t >= entry + 2 && pc >= t + 7 then
            match
              ( code.(t),
                code.(t + 1),
                code.(pc - 5),
                code.(pc - 4),
                code.(pc - 3),
                code.(pc - 2),
                code.(pc - 1) )
            with
            | ( F.Ir.Load s,
                F.Ir.JumpIfNot x,
                F.Ir.Pop,
                F.Ir.Load s3,
                F.Ir.Const 1,
                F.Ir.Bin F.Ir.Sub,
                F.Ir.Store s2 )
              when x = pc + 1 && s2 = s && s3 = s ->
                let clean = ref true in
                for q = t + 2 to pc - 6 do
                  match code.(q) with
                  | F.Ir.Store s' when s' = s -> clean := false
                  | _ -> ()
                done;
                if not !clean then Inf
                else begin
                  match (code.(t - 2), code.(t - 1)) with
                  | F.Ir.Const n, F.Ir.Store s' when s' = s -> fin (max n 0 + 1)
                  | _ -> Inf
                end
            | _ -> Inf
          else Inf
        in
        for q = t to pc do
          mult.(q - entry) <- bmul mult.(q - entry) factor
        done
    | _ -> ()
  done;
  mult

type fsum = {
  fs_perform : bound;
  fs_handle : bound;
  fs_resume : bound;
  fs_calls : (int * bound) list;  (** callee function index, multiplier *)
  fs_handles : (int * bound) list;  (** handle-descriptor index, multiplier *)
  fs_callbacks : (int * bound) list;  (** callback target index, multiplier *)
  fs_opaque : bound;  (** multiplier mass of opaque external calls *)
}

let summarize (c : F.Compile.compiled) cfun_model (cf : F.Compile.cfn) =
  let mult = multipliers c cf in
  let entry = cf.F.Compile.entry in
  let perform = ref (Fin 0)
  and handle = ref (Fin 0)
  and resume = ref (Fin 0)
  and opaque = ref (Fin 0)
  and calls = ref []
  and handles = ref []
  and callbacks = ref [] in
  for pc = entry to cf.F.Compile.code_end - 1 do
    let m = mult.(pc - entry) in
    match c.F.Compile.code.(pc) with
    | F.Ir.PerformI _ -> perform := badd !perform m
    | F.Ir.HandleI h ->
        handle := badd !handle m;
        handles := (h, m) :: !handles
    | F.Ir.ContinueI | F.Ir.DiscontinueI _ -> resume := badd !resume m
    | F.Ir.CallI fid -> calls := (fid, m) :: !calls
    | F.Ir.ExtcallI (cid, _) -> (
        match cfun_model c.F.Compile.cfun_names.(cid) with
        | Cfg.Pure -> ()
        | Cfg.Calls_back g -> (
            match Hashtbl.find_opt c.F.Compile.fn_ids g with
            | Some fid -> callbacks := (fid, m) :: !callbacks
            | None -> opaque := badd !opaque m)
        | Cfg.Opaque -> opaque := badd !opaque m)
    | _ -> ()
  done;
  {
    fs_perform = !perform;
    fs_handle = !handle;
    fs_resume = !resume;
    fs_calls = !calls;
    fs_handles = !handles;
    fs_callbacks = !callbacks;
    fs_opaque = !opaque;
  }

(* ------------------------------------------------------------------ *)
(* Invocation bounds: a widened interprocedural fixpoint.

   inv(g) bounds how many times g is invoked through [emulate_call]:
   once for main, plus call/callback/handler-body/return-clause/
   exception-clause edges weighted by the caller's invocation bound and
   the site's loop multiplier.  An effect clause can be invoked once
   per dispatched perform, so each reachable installation's effect
   clauses absorb the running whole-program perform total — folded into
   the same fixpoint.  Widening keeps it terminating and sound: a
   bound that increases after its first finite value jumps straight to
   ∞ (the classic 0 → k → ∞ ascent), so the loop stops at a genuine
   post-fixpoint.  One reachable opaque external call makes every
   invocation bound ∞ — the model's [Opaque] may re-enter anything,
   any number of times.  [Calls_back] is modeled as at most one
   callback per external call execution, the contract the conformance
   harness's [cb_*] stubs implement. *)

type t = {
  compiled : F.Compile.compiled;
  sums : fsum array;
  inv : bound array;
  opaque_in : string option;  (** function with a live opaque extcall *)
}

let perform_total sums inv =
  let p = ref (Fin 0) in
  Array.iteri (fun i s -> p := badd !p (bmul inv.(i) s.fs_perform)) sums;
  !p

let analyze ?(cfun_model = fun _ -> Cfg.Opaque) (c : F.Compile.compiled) =
  let nf = Array.length c.F.Compile.fns in
  let sums = Array.map (summarize c cfun_model) c.F.Compile.fns in
  let inv = Array.make nf (Fin 0) in
  let opaque_in = ref None in
  let widen old nw =
    if ble nw old then old
    else match old with Fin 0 -> nw | Fin _ | Inf -> Inf
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < (2 * nf) + 8 do
    changed := false;
    incr rounds;
    let p = perform_total sums inv in
    let acc =
      Array.init nf (fun i ->
          if i = c.F.Compile.main_index then Fin 1 else Fin 0)
    in
    let add g b = acc.(g) <- badd acc.(g) b in
    Array.iteri
      (fun i s ->
        if inv.(i) <> Fin 0 then begin
          List.iter (fun (g, m) -> add g (bmul inv.(i) m)) s.fs_calls;
          List.iter (fun (g, m) -> add g (bmul inv.(i) m)) s.fs_callbacks;
          List.iter
            (fun (h, m) ->
              let w = bmul inv.(i) m in
              let hd = c.F.Compile.handles.(h) in
              add hd.F.Compile.h_body w;
              add hd.F.Compile.h_retc w;
              List.iter (fun (_, fid) -> add fid w) hd.F.Compile.h_exncs;
              if w <> Fin 0 then
                List.iter (fun (_, fid) -> add fid p) hd.F.Compile.h_effcs)
            s.fs_handles;
          if bmul inv.(i) s.fs_opaque <> Fin 0 && !opaque_in = None then
            opaque_in := Some c.F.Compile.fns.(i).F.Compile.fn_name
        end)
      sums;
    if !opaque_in <> None then Array.fill acc 0 nf Inf;
    Array.iteri
      (fun g old ->
        let nw = widen old acc.(g) in
        if nw <> old then begin
          inv.(g) <- nw;
          changed := true
        end)
      inv
  done;
  { compiled = c; sums; inv; opaque_in = !opaque_in }

let inv t name =
  match Hashtbl.find_opt t.compiled.F.Compile.fn_ids name with
  | Some i -> t.inv.(i)
  | None -> Fin 0

type totals = {
  t_performs : bound;
  t_handles : bound;
  t_resumes : bound;
  t_calls : bound;
}

let totals t =
  let p = ref (Fin 0) and h = ref (Fin 0) and r = ref (Fin 0) in
  let c = ref (Fin 0) in
  Array.iteri
    (fun i s ->
      p := badd !p (bmul t.inv.(i) s.fs_perform);
      h := badd !h (bmul t.inv.(i) s.fs_handle);
      r := badd !r (bmul t.inv.(i) s.fs_resume);
      c := badd !c t.inv.(i))
    t.sums;
  { t_performs = !p; t_handles = !h; t_resumes = !r; t_calls = !c }

(* ------------------------------------------------------------------ *)
(* Counter bounds, per stack policy.

   One-shot discipline makes per-invocation accounting sound: a
   perform suspends the frame and at most one resume continues that
   same execution.  Under multishot, a second resume re-runs a cloned
   suffix, so once [R >= 2] is possible (and a continuation exists at
   all) every bound collapses to ∞; [R <= 1] is one-shot-equivalent
   except for the cloning counters themselves. *)

let counter_names =
  [
    "perform";
    "reperform";
    "eff_tbl_probe";
    "handle";
    "fiber_alloc";
    "resume";
    "cont_copy";
    "call";
    "switch";
    "overflow_check";
    "check_elided";
    "stack_grow";
    "segment_check";
    "chunk_commit";
    "cont_share";
    "page_fault";
    "page_commit";
  ]

let counter_bounds t ~(policy : F.Stack_policy.t) ~multishot ~red_zone =
  let { t_performs = p; t_handles = h; t_resumes = r; t_calls = c } =
    totals t
  in
  if multishot && ble (Fin 2) r && ble (Fin 1) p then
    List.map (fun n -> (n, Inf)) counter_names
  else begin
    let zero = Fin 0 in
    (* multishot cloning can add up to R copied chains of at most
       1 + H fibers each to the live-handler population *)
    let clones = if multishot then bmul r (badd (Fin 1) h) else zero in
    let live_handlers = badd h clones in
    let k =
      let ext = F.Stack_policy.ext_words policy in
      if ext = 0 then zero
      else begin
        let fmax =
          Array.fold_left
            (fun m (cf : F.Compile.cfn) -> max m cf.F.Compile.frame_words)
            0 t.compiled.F.Compile.fns
        in
        Fin (((fmax + red_zone + ext - 1) / ext) + 1)
      end
    in
    let commits =
      bmul (bmul c k) (badd (Fin 1) (if multishot then r else zero))
    in
    let base =
      [
        ("perform", p);
        ("reperform", bmul p live_handlers);
        ("eff_tbl_probe", bmul p live_handlers);
        ("handle", h);
        ("fiber_alloc", h);
        ("resume", r);
        ("cont_copy", (if multishot then r else zero));
        ("call", c);
        (* per perform, resume and handle one switch; every created
           fiber (installations plus clones) is exited at most once,
           by return or by an exception crossing its boundary *)
        ("switch", badd (badd p r) (badd (bmul (Fin 2) h) clones));
      ]
    in
    let policy_bounds =
      match policy.F.Stack_policy.pk with
      | F.Stack_policy.Copy_double ->
          [
            ("overflow_check", c);
            ("check_elided", c);
            ("stack_grow", c);
            ("segment_check", zero);
            ("chunk_commit", zero);
            ("cont_share", zero);
            ("page_fault", zero);
            ("page_commit", zero);
          ]
      | F.Stack_policy.Segmented ->
          [
            ("overflow_check", zero);
            ("check_elided", zero);
            ("stack_grow", zero);
            ("segment_check", c);
            ("chunk_commit", commits);
            ( "cont_share",
              if policy.F.Stack_policy.cow_clone && multishot then
                bmul r (badd (Fin 1) h)
              else zero );
            ("page_fault", zero);
            ("page_commit", zero);
          ]
      | F.Stack_policy.Large_reserve ->
          [
            ("overflow_check", zero);
            ("check_elided", zero);
            ("stack_grow", zero);
            ("segment_check", zero);
            ("chunk_commit", zero);
            ("cont_share", zero);
            ("page_fault", c);
            ("page_commit", commits);
          ]
    in
    List.map
      (fun n ->
        match List.assoc_opt n base with
        | Some b -> (n, b)
        | None -> (n, List.assoc n policy_bounds))
      counter_names
  end

(* ------------------------------------------------------------------ *)
(* Reporting and diagnostics. *)

let fn_line t i =
  let cf = t.compiled.F.Compile.fns.(i) in
  let s = t.sums.(i) in
  let per_inv_calls =
    List.fold_left (fun acc (_, m) -> badd acc m) (Fin 0) s.fs_calls
  in
  Printf.sprintf "  %s: inv<=%s performs/inv<=%s handles/inv<=%s \
                  resumes/inv<=%s calls/inv<=%s"
    cf.F.Compile.fn_name
    (bound_to_string t.inv.(i))
    (bound_to_string s.fs_perform)
    (bound_to_string s.fs_handle)
    (bound_to_string s.fs_resume)
    (bound_to_string per_inv_calls)

let report ?(multishot = false) ?(red_zone = 16) t =
  let b = Buffer.create 256 in
  let { t_performs; t_handles; t_resumes; t_calls } = totals t in
  Buffer.add_string b
    (Printf.sprintf
       "cost bounds%s: performs<=%s handles<=%s resumes<=%s calls<=%s\n"
       (if multishot then " (multishot)" else "")
       (bound_to_string t_performs)
       (bound_to_string t_handles)
       (bound_to_string t_resumes)
       (bound_to_string t_calls));
  Array.iteri (fun i _ -> Buffer.add_string b (fn_line t i ^ "\n")) t.sums;
  List.iter
    (fun (pname, policy) ->
      let bounds = counter_bounds t ~policy ~multishot ~red_zone in
      let interesting =
        List.filter (fun (_, bd) -> bd <> Fin 0) bounds
      in
      Buffer.add_string b
        (Printf.sprintf "  [%s] %s\n" pname
           (String.concat " "
              (List.map
                 (fun (n, bd) -> Printf.sprintf "%s<=%s" n (bound_to_string bd))
                 interesting))))
    F.Stack_policy.all;
  Buffer.contents b

let diagnostics t =
  let cause =
    match t.opaque_in with
    | Some f -> Printf.sprintf "opaque external call reachable in %s" f
    | None -> (
        (* the first function whose invocation bound widened to ∞ in
           program order, else the first with an ∞ per-invocation count
           (a non-constant loop) *)
        let named = ref None in
        Array.iteri
          (fun i b ->
            if !named = None && b = Inf then
              named := Some t.compiled.F.Compile.fns.(i).F.Compile.fn_name)
          t.inv;
        match !named with
        | Some f ->
            Printf.sprintf
              "unbounded invocations of %s (recursion or unbounded handler \
               episodes)"
              f
        | None ->
            let loopy = ref "main" in
            Array.iteri
              (fun i s ->
                if
                  !loopy = "main"
                  && (s.fs_perform = Inf || s.fs_handle = Inf
                    || s.fs_resume = Inf
                    || List.exists (fun (_, m) -> m = Inf) s.fs_calls)
                then loopy := t.compiled.F.Compile.fns.(i).F.Compile.fn_name)
              t.sums;
            Printf.sprintf "non-constant loop count in %s" !loopy)
  in
  let { t_performs; t_handles; t_resumes; t_calls } = totals t in
  let main_name =
    t.compiled.F.Compile.fns.(t.compiled.F.Compile.main_index)
      .F.Compile.fn_name
  in
  let mk counter =
    {
      Diag.kind = Diag.Unbounded_cost { counter; cause };
      verdict = Diag.May;
      fn = main_name;
      path = [];
      site = "";
    }
  in
  let out = ref [] in
  if t_calls = Inf then out := mk "call" :: !out;
  if t_performs = Inf then out := mk "perform" :: !out;
  if t_handles = Inf then out := mk "handle" :: !out;
  if t_resumes = Inf then out := mk "resume" :: !out;
  Diag.sorted !out
