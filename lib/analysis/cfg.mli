(** Whole-program index over a {!Retrofit_fiber.Ir} program: function
    table, collected handler installations, the interprocedural call
    graph (direct calls, handler body/case functions, and callback
    re-entries through external calls), reachability from [main] with a
    BFS witness tree, and the label universes.

    Everything downstream — the handled-effect dataflow, the linearity
    analysis, the red-zone audit — starts from this index. *)

(** How an external C function behaves for analysis purposes.  [Pure]
    never re-enters the program and raises nothing; [Calls_back f] may
    invoke the named function (once or many times) behind a §5.3
    callback barrier; [Opaque] may call back into any function and
    raise any interned exception. *)
type cfun_model = Pure | Calls_back of string | Opaque

type spec = {
  sp_id : int;  (** dense id, stable across a build *)
  sp_in : string;  (** function whose body contains the [Handle] *)
  sp : Retrofit_fiber.Ir.handle_spec;
}

type t = {
  program : Retrofit_fiber.Ir.program;
  fn_tbl : (string, Retrofit_fiber.Ir.fn) Hashtbl.t;
  fn_names : string list;  (** in program order *)
  specs : spec array;  (** indexed by [sp_id] *)
  specs_in : (string, spec list) Hashtbl.t;
  cfun_model : string -> cfun_model;
  reachable : (string, unit) Hashtbl.t;
  parent : (string, string) Hashtbl.t;  (** BFS tree edge, child → parent *)
  mutable reach_order : Retrofit_fiber.Ir.fn list;
      (** reachable functions in BFS order from [main] — callers before
          the functions they reach.  The interprocedural fixpoints
          iterate this list: top-down passes forward, bottom-up passes
          reversed, so chains converge in a near-constant number of
          rounds instead of one round per call-graph level. *)
  eff_labels : string list;  (** every effect label mentioned *)
  exn_labels : string list;  (** every exception label, builtins first *)
  has_opaque_cfun : bool;
}

exception Unknown_function of string

val build :
  ?cfun_model:(string -> cfun_model) -> Retrofit_fiber.Ir.program -> t
(** [cfun_model] defaults to treating every external function as
    [Opaque] — the sound default when nothing is known. *)

val fn : t -> string -> Retrofit_fiber.Ir.fn
(** @raise Unknown_function *)

val iter_expr : (Retrofit_fiber.Ir.expr -> unit) -> Retrofit_fiber.Ir.expr -> unit
(** Pre-order traversal of every sub-expression, left to right.  The
    traversal order is part of the contract: the escape analysis and the
    linearity analysis both number resume sites by this order. *)

type edge_kind =
  | Ecall
  | Ehandle_body
  | Ehandle_case
  | Ecallback of string  (** via the named C function *)

val iter_edges : t -> string -> (edge_kind -> string -> unit) -> unit

val is_reachable : t -> string -> bool

val path_to : t -> string -> string list
(** Call-graph witness from [main] to the function, outermost first;
    [[name]] if unreachable. *)

val specs_inside : t -> string -> spec list

val builtin_exns : string list

(** {1 Instruction-level CFG}

    Successor relation over compiled code, shared with the red-zone
    audit.  A [PushtrapI] exposes its handler target as a
    [Trap_handler] edge — entered with the two words the machine pushes
    (payload and exception id) on the operand stack. *)

type edge = Fallthrough | Branch | Trap_handler

val instr_successors :
  code:(int -> Retrofit_fiber.Ir.instr) -> at:int -> (int * edge) list
