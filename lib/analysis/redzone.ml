module F = Retrofit_fiber

type computed = {
  c_leaf : bool;
  c_nlocals : int;
  c_max_traps : int;
  c_frame_words : int;
  c_max_ostack : int;
}

(* Recompute a function's frame metadata from its instruction range
   alone — deliberately not reusing the compiler's per-expression
   bookkeeping, so a wrong claim in [cfn] cannot leak into the audit.

   Trap depth is a forward dataflow: a [PushtrapI] deepens the
   fall-through path by one, and its handler target is entered at the
   push-site depth (the machine pops the trap before jumping there).
   Operand depth follows the same edges, with the handler target two
   words deeper for the pushed [payload; id]. *)
let compute (c : F.Compile.compiled) (fn : F.Compile.cfn) =
  let len = fn.F.Compile.code_end - fn.F.Compile.entry in
  let code at = c.F.Compile.code.(at) in
  let leaf = ref true in
  let max_slot = ref (-1) in
  let arity fid = c.F.Compile.fns.(fid).F.Compile.nparams in
  let handle_nargs h = c.F.Compile.handles.(h).F.Compile.h_nargs in
  (* (trap depth, operand depth) entering each instruction *)
  let traps = Array.make len (-1) in
  let ostack = Array.make len (-1) in
  let max_traps = ref 0 and max_ostack = ref 0 in
  let q = Queue.create () in
  let visit at td od =
    if at >= fn.F.Compile.entry && at < fn.F.Compile.code_end then begin
      let i = at - fn.F.Compile.entry in
      if traps.(i) < td || ostack.(i) < od then begin
        if td > traps.(i) then traps.(i) <- td;
        if od > ostack.(i) then ostack.(i) <- od;
        if td > !max_traps then max_traps := td;
        if od > !max_ostack then max_ostack := od;
        Queue.push (at, td, od) q
      end
    end
  in
  visit fn.F.Compile.entry 0 0;
  while not (Queue.is_empty q) do
    let at, td, od = Queue.pop q in
    (match code at with
    | F.Ir.CallI _ | F.Ir.ExtcallI _ | F.Ir.HandleI _ | F.Ir.PerformI _
    | F.Ir.ContinueI | F.Ir.DiscontinueI _ ->
        leaf := false
    | F.Ir.Load s | F.Ir.Store s -> if s > !max_slot then max_slot := s
    | _ -> ());
    let od' =
      match code at with
      | F.Ir.Const _ | F.Ir.Load _ | F.Ir.Dup -> od + 1
      | F.Ir.Store _ | F.Ir.Pop | F.Ir.Bin _ | F.Ir.ContinueI
      | F.Ir.DiscontinueI _ ->
          od - 1
      | F.Ir.CallI fid -> od - arity fid + 1
      | F.Ir.HandleI h -> od - handle_nargs h + 1
      | F.Ir.ExtcallI (_, n) -> od - n + 1
      | _ -> od
    in
    List.iter
      (fun (next, edge) ->
        match edge with
        | Cfg.Trap_handler -> visit next td (od + 2)
        | Cfg.Fallthrough | Cfg.Branch -> (
            match code at with
            | F.Ir.PushtrapI _ -> visit next (td + 1) od'
            | F.Ir.PoptrapI -> visit next (td - 1) od'
            | F.Ir.JumpIfNot _ -> visit next td (od - 1)
            | _ -> visit next td od'))
      (Cfg.instr_successors ~code ~at)
  done;
  let nlocals = max fn.F.Compile.nparams (!max_slot + 1) in
  {
    c_leaf = !leaf;
    c_nlocals = nlocals;
    c_max_traps = !max_traps;
    c_frame_words = 1 + nlocals + (F.Layout.trap_words * !max_traps);
    c_max_ostack = !max_ostack;
  }

(* The §5.2 elision rule is sound as long as a function whose check is
   skipped really is a leaf whose frame fits in the red zone.  A claim
   that over-reserves (frame larger than the recomputed one, or leaf
   claimed non-leaf) costs a check it didn't need; a claim that
   under-reserves lets an unchecked frame overrun the zone, which is
   the only direction the audit reports. *)
let audit_fn ~red_zone (c : F.Compile.compiled) (fn : F.Compile.cfn) =
  let cm = compute c fn in
  let elides =
    not
      (F.Otss.needs_check ~red_zone ~is_leaf:fn.F.Compile.is_leaf
         ~frame_words:fn.F.Compile.frame_words)
  in
  if elides && ((not cm.c_leaf) || cm.c_frame_words > red_zone) then
    Some
      {
        Diag.kind =
          Diag.Redzone_unsound
            {
              claimed_frame = fn.F.Compile.frame_words;
              computed_frame = cm.c_frame_words;
              claimed_leaf = fn.F.Compile.is_leaf;
              computed_leaf = cm.c_leaf;
            };
        verdict = Diag.Must;
        fn = fn.F.Compile.fn_name;
        path = [];
        site = Printf.sprintf "code [%d, %d)" fn.F.Compile.entry
            fn.F.Compile.code_end;
      }
  else None

let audit ~red_zone (c : F.Compile.compiled) =
  Diag.sorted
    (Array.to_list c.F.Compile.fns
    |> List.filter_map (audit_fn ~red_zone c))

(* Agreement with the runtime's decision procedure, for the macro-suite
   cross-check: on a sound compile the audit must accept exactly the
   functions [Otss.needs_check] exempts. *)
let agrees ~red_zone (c : F.Compile.compiled) = audit ~red_zone c = []
