(** Analyzer driver: index, linearity, effect dataflow, the must pass,
    and the red-zone audit, assembled into one {!Diag.report}.

    Program-level verdicts compose two soundness directions.  The flow
    analyses over-approximate, so their negative answer is a [Safe]
    claim: the outcome cannot happen in any execution, under any
    resume discipline.  The must pass runs the (closed, deterministic)
    program in a bounded concrete interpreter under the one-shot
    discipline; when it terminates within budget, [May] sharpens to
    [Must] for the observed outcome and to [Safe] for the other.  After
    a one-shot violation a multi-shot runtime diverges from that unique
    execution, so multi-shot claims should use the [flow_*] fields,
    which remain sound for every discipline. *)

type must = M_value | M_raises of string | M_unknown

type result = {
  report : Diag.report;
  flow_unhandled_may : bool;
      (** ["Unhandled"] escapes [main] in the over-approximation *)
  flow_one_shot_may : bool;
  must : must;
  hit_violation : bool;
      (** the must pass resumed a dead continuation: its execution is
          only valid under the one-shot discipline from that point *)
  resolve : Resolve.t;  (** per-perform-site handler resolution *)
  cost : Costbound.t;  (** whole-program cost bounds *)
  compiled : Retrofit_fiber.Compile.compiled;
      (** the compiled form the cost pass (and any red-zone audit or
          runtime map) ran against *)
}

val must_run :
  ?fuel:int ->
  (string -> Cfg.cfun_model) ->
  Retrofit_fiber.Ir.program ->
  must * bool

val analyze :
  ?cfun_model:(string -> Cfg.cfun_model) ->
  ?must_fuel:int ->
  ?multishot:bool ->
  ?compiled:Retrofit_fiber.Compile.compiled ->
  ?lints:bool ->
  Retrofit_fiber.Ir.program ->
  result
(** [compiled], when given, must be the compiled form of the program
    being analyzed; it is used for the cost pass and stored in the
    result instead of compiling afresh.  Callers that compile the
    program anyway to execute it (the conformance campaign, benches)
    pass it here so the compile is not paid twice.

    [lints] (default [true]) controls construction of the per-site
    {!Diag.t} findings, which involves rendering sites and call paths;
    with [lints:false] the [report.diags] list is empty while every
    program-level verdict, flow fact, resolution and cost claim is
    still computed.  The conformance campaign — which cross-checks
    claims, not lint renderings — runs with lints off.

    [multishot] (default [false]) targets a runtime that clones
    continuations on resume: {!Diag.May_resume_twice} findings carry a
    [Safe] verdict, resume sites stop counting as ["Invalid_argument"]
    sources for the [one_shot] verdict, and a must-pass execution that
    hit a one-shot violation is discarded rather than used to sharpen
    (the interpreter's own continuations are one-shot, so past that
    point it diverges from the cloning runtime). *)

val lint :
  ?cfun_model:(string -> Cfg.cfun_model) ->
  ?red_zone:int ->
  ?must_fuel:int ->
  ?multishot:bool ->
  Retrofit_fiber.Ir.program ->
  Diag.report
(** [analyze] plus the §5.2 red-zone audit over the compiled form;
    [red_zone] defaults to the paper's 16 words. *)
