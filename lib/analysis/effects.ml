module F = Retrofit_fiber
module SS = Set.Make (String)
module IS = Set.Make (Int)

type ctx_entry = { top : bool; via_c : string option }

type esc = { eff : SS.t; exn : SS.t }

type t = {
  cfg : Cfg.t;
  lin : Linearity.t;
  multishot : bool;
  ctx : (string, (string, ctx_entry) Hashtbl.t) Hashtbl.t;
  esc_tbl : (string, esc) Hashtbl.t;
}

let unhandled = "Unhandled"

let invalid_argument = "Invalid_argument"

let division_by_zero = "Division_by_zero"

let esc_empty = { eff = SS.empty; exn = SS.empty }

let esc_union a b = { eff = SS.union a.eff b.eff; exn = SS.union a.exn b.exn }

let ctx_of t fname =
  match Hashtbl.find_opt t.ctx fname with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 4 in
      Hashtbl.replace t.ctx fname tbl;
      tbl

let ctx_entry t fname label =
  match Hashtbl.find_opt (ctx_of t fname) label with
  | Some e -> e
  | None -> { top = false; via_c = None }

let escape t fname =
  match Hashtbl.find_opt t.esc_tbl fname with Some e -> e | None -> esc_empty

(* ------------------------------------------------------------------ *)
(* Phase A: per function and effect label, may the dynamic handler
   stack above an activation of the function lack the label — and if
   so, is the nearest barrier the toplevel or a §5.3 callback frame?
   Propagated top-down from [main] over calls (same stack), handler
   installations (body loses the handled labels, case functions run in
   the installer's frame), callback entries (the runtime blanks the
   handler chain: everything is unhandled at the C barrier), and
   resumptions (the reinstated body — and subsequent case-function
   invocations — runs above the resumer's context). *)

let join_ctx changed t fname (entries : (string * ctx_entry) list) =
  let tbl = ctx_of t fname in
  List.iter
    (fun (l, e) ->
      let old =
        match Hashtbl.find_opt tbl l with
        | Some o -> o
        | None -> { top = false; via_c = None }
      in
      let merged =
        {
          top = old.top || e.top;
          via_c = (match old.via_c with Some _ -> old.via_c | None -> e.via_c);
        }
      in
      if merged <> old then begin
        Hashtbl.replace tbl l merged;
        changed := true
      end)
    entries

let ctx_entries t fname =
  Hashtbl.fold (fun l e acc -> (l, e) :: acc) (ctx_of t fname) []

let minus_labels entries labels =
  List.filter (fun (l, _) -> not (List.mem l labels)) entries

let effc_labels (sp : F.Ir.handle_spec) = List.map fst sp.F.Ir.effcs

let exnc_labels (sp : F.Ir.handle_spec) = List.map fst sp.F.Ir.exncs

let case_fns (sp : F.Ir.handle_spec) =
  (sp.F.Ir.retc :: List.map snd sp.F.Ir.exncs) @ List.map snd sp.F.Ir.effcs

(* Functions that may resume a given spec's continuation. *)
let resumer_fns t (s : Cfg.spec) =
  let out = ref [] in
  Hashtbl.iter
    (fun fname sites ->
      if
        Array.exists
          (fun site -> IS.mem s.Cfg.sp_id (Linearity.site_specs t.lin site))
          sites
      then out := fname :: !out)
    t.lin.Linearity.sites;
  !out

(* The propagation structure of a function — its calls, installations
   and external calls — is fixed; only the contexts joined through it
   change between rounds.  Summarising each reachable function once
   keeps the fixpoint rounds free of AST walks. *)
type a_summary = {
  a_calls : string list;
  a_handles : (string * string list * string list) list;
      (** body fn, handled effect labels, case fns *)
  a_extcalls : (string * Cfg.cfun_model) list;
}

let summarize_a (cfg : Cfg.t) =
  List.map
    (fun (f : F.Ir.fn) ->
      let calls = ref [] and handles = ref [] and exts = ref [] in
      Cfg.iter_expr
        (fun e ->
          match e with
          | F.Ir.Call (g, _) -> calls := g :: !calls
          | F.Ir.Handle h ->
              handles := (h.F.Ir.body_fn, effc_labels h, case_fns h) :: !handles
          | F.Ir.Extcall (c, _) -> exts := (c, cfg.Cfg.cfun_model c) :: !exts
          | _ -> ())
        f.F.Ir.body;
      (f.F.Ir.fn_name, { a_calls = !calls; a_handles = !handles; a_extcalls = !exts }))
    cfg.Cfg.reach_order

let phase_a t =
  let cfg = t.cfg in
  join_ctx (ref false) t cfg.Cfg.program.F.Ir.main
    (List.map (fun l -> (l, { top = true; via_c = None })) cfg.Cfg.eff_labels);
  let all_via_c c =
    List.map (fun l -> (l, { top = false; via_c = Some c })) cfg.Cfg.eff_labels
  in
  let summaries = summarize_a cfg in
  (* who can resume which spec depends only on the linearity sites —
     loop-invariant, so computed once rather than every round, as are
     each spec's own handled labels and case functions *)
  let resumers =
    Array.map
      (fun (s : Cfg.spec) ->
        if Cfg.is_reachable cfg s.Cfg.sp_in then resumer_fns t s else [])
      cfg.Cfg.specs
  in
  let spec_labels =
    Array.map (fun (s : Cfg.spec) -> effc_labels s.Cfg.sp) cfg.Cfg.specs
  in
  let spec_cases =
    Array.map (fun (s : Cfg.spec) -> case_fns s.Cfg.sp) cfg.Cfg.specs
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 1000 do
    changed := false;
    incr rounds;
    List.iter
      (fun (fname, s) ->
        let cf = ctx_entries t fname in
        List.iter (fun g -> join_ctx changed t g cf) s.a_calls;
        List.iter
          (fun (body_fn, labels, cases) ->
            join_ctx changed t body_fn (minus_labels cf labels);
            List.iter (fun g -> join_ctx changed t g cf) cases)
          s.a_handles;
        List.iter
          (fun (c, model) ->
            match model with
            | Cfg.Pure -> ()
            | Cfg.Calls_back g -> join_ctx changed t g (all_via_c c)
            | Cfg.Opaque ->
                List.iter
                  (fun g -> join_ctx changed t g (all_via_c c))
                  cfg.Cfg.fn_names)
          s.a_extcalls)
      summaries;
    Array.iteri
      (fun i (s : Cfg.spec) ->
        List.iter
          (fun r ->
            let cr = ctx_entries t r in
            join_ctx changed t s.Cfg.sp.F.Ir.body_fn
              (minus_labels cr spec_labels.(i));
            List.iter (fun g -> join_ctx changed t g cr) spec_cases.(i))
          resumers.(i))
      cfg.Cfg.specs
  done

(* ------------------------------------------------------------------ *)
(* Phase B: per function, which effect labels may be performed and
   escape the function's dynamic extent, and which exception labels may
   be raised out of it.  "Unhandled" is an ordinary label here — the
   machine raises it at the perform site when phase A says no handler
   is above — and so is the "Invalid_argument" of a second resume,
   injected at sites the linearity analysis flagged.  Everything a
   resumed body can still do (its remaining performs, its exceptions,
   the injected label of a discontinue) surfaces at the resume site. *)

let release t (s : Cfg.spec) =
  let sp = s.Cfg.sp in
  let body = escape t sp.F.Ir.body_fn in
  let cases =
    List.fold_left (fun acc g -> esc_union acc (escape t g)) esc_empty
      (case_fns sp)
  in
  {
    eff =
      SS.union cases.eff
        (SS.filter (fun l -> not (List.mem l (effc_labels sp))) body.eff);
    exn =
      SS.union cases.exn
        (SS.filter (fun l -> not (List.mem l (exnc_labels sp))) body.exn);
  }

let phase_b t =
  let cfg = t.cfg in
  let exn_universe = SS.of_list cfg.Cfg.exn_labels in
  (* escapes flow callee-to-caller: walking callees first makes deep
     call chains converge in a couple of rounds *)
  let fns_rev = List.rev cfg.Cfg.reach_order in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 1000 do
    changed := false;
    incr rounds;
    List.iter
      (fun (f : F.Ir.fn) ->
        let fname = f.F.Ir.fn_name in
        let fsites = Linearity.sites_of t.lin fname in
        let n = ref 0 in
        let rec ev (e : F.Ir.expr) : esc =
          match e with
          | F.Ir.Int _ | F.Ir.Var _ -> esc_empty
          | F.Ir.Binop ((F.Ir.Div | F.Ir.Mod), a, b) ->
              (* subterms are walked left-to-right with explicit
                 sequencing throughout [ev]: the site counter must claim
                 indices in enumeration (pre)order *)
              let ea = ev a in
              let eb = ev b in
              let inner = esc_union ea eb in
              let divides =
                match b with F.Ir.Int n -> n = 0 | _ -> true
              in
              if divides then
                { inner with exn = SS.add division_by_zero inner.exn }
              else inner
          | F.Ir.Binop (_, a, b)
          | F.Ir.Let (_, a, b)
          | F.Ir.Seq (a, b)
          | F.Ir.Repeat (a, b) ->
              let ea = ev a in
              let eb = ev b in
              esc_union ea eb
          | F.Ir.If (a, b, c) ->
              let ea = ev a in
              let eb = ev b in
              let ec = ev c in
              esc_union ea (esc_union eb ec)
          | F.Ir.Call (g, args) ->
              List.fold_left
                (fun acc a -> esc_union acc (ev a))
                (escape t g) args
          | F.Ir.Raise (l, e) ->
              let inner = ev e in
              { inner with exn = SS.add l inner.exn }
          | F.Ir.Trywith (b, cases) ->
              let eb = ev b in
              let handled = List.map (fun (l, _, _) -> l) cases in
              List.fold_left
                (fun acc (_, _, ce) -> esc_union acc (ev ce))
                {
                  eb with
                  exn = SS.filter (fun l -> not (List.mem l handled)) eb.exn;
                }
                cases
          | F.Ir.Perform (l, p) ->
              let inner = ev p in
              let entry = ctx_entry t fname l in
              let exn =
                if entry.top || entry.via_c <> None then
                  SS.add unhandled inner.exn
                else inner.exn
              in
              { eff = SS.add l inner.eff; exn }
          | F.Ir.Handle h ->
              let body = escape t h.F.Ir.body_fn in
              let cases =
                List.fold_left
                  (fun acc g -> esc_union acc (escape t g))
                  esc_empty (case_fns h)
              in
              let inner =
                List.fold_left
                  (fun acc a -> esc_union acc (ev a))
                  esc_empty h.F.Ir.body_args
              in
              esc_union inner
                {
                  eff =
                    SS.union cases.eff
                      (SS.filter
                         (fun l -> not (List.mem l (effc_labels h)))
                         body.eff);
                  exn =
                    SS.union cases.exn
                      (SS.filter
                         (fun l -> not (List.mem l (exnc_labels h)))
                         body.exn);
                }
          | F.Ir.Continue (k, v) | F.Ir.Discontinue (k, _, v) ->
              let idx = !n in
              incr n;
              let ek = ev k in
              let evv = ev v in
              let inner = esc_union ek evv in
              let site = fsites.(idx) in
              let specs = Linearity.site_specs t.lin site in
              let rel =
                IS.fold
                  (fun i acc -> esc_union acc (release t cfg.Cfg.specs.(i)))
                  specs esc_empty
              in
              let rel =
                match e with
                | F.Ir.Discontinue (_, l, _) ->
                    let injected =
                      IS.fold
                        (fun i acc ->
                          if List.mem l (exnc_labels cfg.Cfg.specs.(i).Cfg.sp)
                          then acc
                          else SS.add l acc)
                        specs
                        (if IS.is_empty specs then SS.singleton l else SS.empty)
                    in
                    { rel with exn = SS.union injected rel.exn }
                | _ -> rel
              in
              let rel =
                (* Under a multishot runtime a second resume clones the
                   fiber chain instead of raising, so resume sites stop
                   being Invalid_argument sources. *)
                if
                  (not t.multishot)
                  && (Linearity.site_may_second t.lin site || IS.is_empty specs)
                then { rel with exn = SS.add invalid_argument rel.exn }
                else rel
              in
              esc_union inner rel
          | F.Ir.Extcall (c, args) ->
              let inner =
                List.fold_left
                  (fun acc a -> esc_union acc (ev a))
                  esc_empty args
              in
              (* exceptions cross the C frame (re-raised at the call
                 site); effects never do *)
              let cb =
                match cfg.Cfg.cfun_model c with
                | Cfg.Pure -> SS.empty
                | Cfg.Calls_back g -> (escape t g).exn
                | Cfg.Opaque -> exn_universe
              in
              { inner with exn = SS.union cb inner.exn }
        in
        let e = ev f.F.Ir.body in
        let old = escape t fname in
        let merged = esc_union old e in
        if
          not
            (SS.equal old.eff merged.eff && SS.equal old.exn merged.exn)
        then begin
          Hashtbl.replace t.esc_tbl fname merged;
          changed := true
        end)
      fns_rev
  done

let analyze ?(multishot = false) (cfg : Cfg.t) (lin : Linearity.t) =
  let t =
    { cfg; lin; multishot; ctx = Hashtbl.create 16; esc_tbl = Hashtbl.create 16 }
  in
  phase_a t;
  phase_b t;
  t

(* ------------------------------------------------------------------ *)
(* Diagnostics. *)

let spec_origin (s : Cfg.spec) label case_fn =
  Printf.sprintf "%s captured by %s (handle in %s)" label case_fn s.Cfg.sp_in

let clause_live_exn t (s : Cfg.spec) label =
  SS.mem label (escape t s.Cfg.sp.F.Ir.body_fn).exn
  || Hashtbl.fold
       (fun _ sites acc ->
         acc
         || Array.exists
              (fun site ->
                match site.Linearity.s_kind with
                | Linearity.Rdiscontinue l ->
                    l = label
                    && IS.mem s.Cfg.sp_id (Linearity.site_specs t.lin site)
                | Linearity.Rcontinue -> false)
              sites)
       t.lin.Linearity.sites false

let diagnostics t =
  let cfg = t.cfg in
  let out = ref [] in
  let add d = out := d :: !out in
  (* perform-site lints *)
  List.iter
    (fun (f : F.Ir.fn) ->
      let fname = f.F.Ir.fn_name in
      Cfg.iter_expr
          (fun e ->
            match e with
            | F.Ir.Perform (l, _) ->
                let entry = ctx_entry t fname l in
                (* rendering the site and call path is the expensive
                   part of this walk: do it only for firing lints *)
                let site = lazy (F.Ir.expr_to_string e) in
                let path = lazy (Cfg.path_to cfg fname) in
                let site = fun () -> Lazy.force site
                and path = fun () -> Lazy.force path in
                if entry.top then
                  add
                    {
                      Diag.kind = Diag.Possibly_unhandled { effect_name = l };
                      verdict = Diag.May;
                      fn = fname;
                      path = path ();
                      site = site ();
                    };
                (match entry.via_c with
                | Some c ->
                    add
                      {
                        Diag.kind =
                          Diag.Effect_across_c_frame
                            { effect_name = l; cfun = c };
                        verdict = Diag.May;
                        fn = fname;
                        path = path ();
                        site = site ();
                      }
                | None -> ())
            | _ -> ())
        f.F.Ir.body)
    cfg.Cfg.reach_order;
  (* handler-clause and continuation lints, per installation *)
  Array.iter
    (fun (s : Cfg.spec) ->
      if Cfg.is_reachable cfg s.Cfg.sp_in then begin
        let sp = s.Cfg.sp in
        let body = escape t sp.F.Ir.body_fn in
        let site = lazy (F.Ir.expr_to_string (F.Ir.Handle sp)) in
        let path = lazy (Cfg.path_to cfg s.Cfg.sp_in) in
        let site = fun () -> Lazy.force site
        and path = fun () -> Lazy.force path in
        List.iter
          (fun (l, g) ->
            if not (SS.mem l body.eff) then
              add
                {
                  Diag.kind =
                    Diag.Dead_handler_clause
                      { clause = Diag.Eff_clause; label = l; case_fn = g };
                  verdict = Diag.Must;
                  fn = s.Cfg.sp_in;
                  path = path ();
                  site = site ();
                })
          sp.F.Ir.effcs;
        List.iter
          (fun (l, g) ->
            if not (clause_live_exn t s l) then
              add
                {
                  Diag.kind =
                    Diag.Dead_handler_clause
                      { clause = Diag.Exn_clause; label = l; case_fn = g };
                  verdict = Diag.Must;
                  fn = s.Cfg.sp_in;
                  path = path ();
                  site = site ();
                })
          sp.F.Ir.exncs;
        List.iter
          (fun (l, g) ->
            if SS.mem l body.eff then begin
              (* the clause can fire, so a continuation is captured *)
              let r = Linearity.resumes_in t.lin ~spec:s.Cfg.sp_id ~fn:g in
              let origin = spec_origin s l g in
              if r.Linearity.hi >= 2 || Linearity.is_escaped t.lin s.Cfg.sp_id
              then
                add
                  {
                    Diag.kind = Diag.May_resume_twice { origin };
                    (* verified-safe under multishot cloning: the second
                       resume runs a fresh copy instead of raising *)
                    verdict = (if t.multishot then Diag.Safe else Diag.May);
                    fn = s.Cfg.sp_in;
                    path = path ();
                    site = site ();
                  };
              (* raises fall through the counter, so a guaranteed
                 resume only holds if the case function cannot raise *)
              let lo =
                if SS.is_empty (escape t g).exn then r.Linearity.lo else 0
              in
              if lo = 0 then
                add
                  {
                    Diag.kind = Diag.May_leak { origin };
                    verdict =
                      (if
                         r.Linearity.hi = 0
                         && not (Linearity.is_escaped t.lin s.Cfg.sp_id)
                       then Diag.Must
                       else Diag.May);
                    fn = s.Cfg.sp_in;
                    path = path ();
                    site = site ();
                  }
            end)
          sp.F.Ir.effcs
      end)
    cfg.Cfg.specs;
  Diag.sorted !out

let unhandled_may t =
  SS.mem unhandled (escape t t.cfg.Cfg.program.F.Ir.main).exn

let one_shot_may t =
  SS.mem invalid_argument (escape t t.cfg.Cfg.program.F.Ir.main).exn
