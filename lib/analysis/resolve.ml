module F = Retrofit_fiber
module IS = Set.Make (Int)

type klass = Mono | Poly | Mega

type site = {
  r_fn : string;
  r_idx : int;
  r_label : string;
  r_site : string;
  r_cands : IS.t;
  r_top : bool;
  r_via_c : bool;
  r_class : klass;
}

(* Per function and effect label: the handle specs that may be the
   {e nearest} handler above an activation, plus whether the nearest
   barrier may instead be the toplevel or a §5.3 callback frame.  This
   is {!Effects} phase A refined from "may the label be missing" to
   "which installation receives it": the same top-down joins over
   calls, installations, callbacks and resumptions, with one new rule —
   inside a spec's body (and on re-entry after a resume) the labels the
   spec handles resolve to exactly that spec, shadowing every outer
   candidate. *)
type rctx = { cands : IS.t; r_top : bool; r_via_c : bool }

type t = {
  cfg : Cfg.t;
  sites : (string, site array) Hashtbl.t;
}

let bottom = { cands = IS.empty; r_top = false; r_via_c = false }

let klass_to_string = function
  | Mono -> "mono"
  | Poly -> "poly"
  | Mega -> "mega"

let outcomes s =
  IS.cardinal s.r_cands + if s.r_top || s.r_via_c then 1 else 0

let classify s =
  match outcomes s with
  | 0 | 1 -> Mono
  | n when n <= 4 -> Poly
  | _ -> Mega

(* ------------------------------------------------------------------ *)
(* Context propagation. *)

let ctx_of ctx fname =
  match Hashtbl.find_opt ctx fname with
  | Some tbl -> tbl
  | None ->
      let tbl = Hashtbl.create 4 in
      Hashtbl.replace ctx fname tbl;
      tbl

let entry_of ctx fname label =
  match Hashtbl.find_opt (ctx_of ctx fname) label with
  | Some e -> e
  | None -> bottom

let join changed ctx fname entries =
  let tbl = ctx_of ctx fname in
  List.iter
    (fun (l, e) ->
      let old =
        match Hashtbl.find_opt tbl l with Some o -> o | None -> bottom
      in
      let merged =
        {
          cands = IS.union old.cands e.cands;
          r_top = old.r_top || e.r_top;
          r_via_c = old.r_via_c || e.r_via_c;
        }
      in
      if
        not
          (IS.equal merged.cands old.cands
          && merged.r_top = old.r_top
          && merged.r_via_c = old.r_via_c)
      then begin
        Hashtbl.replace tbl l merged;
        changed := true
      end)
    entries

let entries_of ctx fname =
  Hashtbl.fold (fun l e acc -> (l, e) :: acc) (ctx_of ctx fname) []

let effc_labels (sp : F.Ir.handle_spec) = List.map fst sp.F.Ir.effcs

let case_fns (sp : F.Ir.handle_spec) =
  (sp.F.Ir.retc :: List.map snd sp.F.Ir.exncs) @ List.map snd sp.F.Ir.effcs

let spec_of cfg fname (h : F.Ir.handle_spec) =
  List.find (fun (s : Cfg.spec) -> s.Cfg.sp == h) (Cfg.specs_inside cfg fname)

(* Context entering a spec's body function, from the installer's (or,
   on resumption, the resumer's) entries: the spec's own labels resolve
   to the spec alone; everything else flows through. *)
let body_entries (s : Cfg.spec) outer =
  let own = effc_labels s.Cfg.sp in
  List.map (fun l -> (l, { bottom with cands = IS.singleton s.Cfg.sp_id })) own
  @ List.filter (fun (l, _) -> not (List.mem l own)) outer

let resumer_fns (lin : Linearity.t) (s : Cfg.spec) =
  let out = ref [] in
  Hashtbl.iter
    (fun fname sites ->
      if
        Array.exists
          (fun site -> IS.mem s.Cfg.sp_id (Linearity.site_specs lin site))
          sites
      then out := fname :: !out)
    lin.Linearity.sites;
  !out

(* The propagation structure of a function — its calls, installations
   and external calls — is fixed; only the contexts joined through it
   change between rounds.  Summarising each reachable function (and
   resolving every [Handle] node to its spec) once keeps the fixpoint
   rounds free of AST walks and spec lookups. *)
type fn_summary = {
  s_calls : string list;
  s_handles : (Cfg.spec * string list) list;  (** spec, its case fns *)
  s_extcalls : Cfg.cfun_model list;
}

let summarize_fns (cfg : Cfg.t) =
  List.map
    (fun (f : F.Ir.fn) ->
      let fname = f.F.Ir.fn_name in
      let calls = ref [] and handles = ref [] and exts = ref [] in
      Cfg.iter_expr
        (fun e ->
          match e with
          | F.Ir.Call (g, _) -> calls := g :: !calls
          | F.Ir.Handle h -> handles := (spec_of cfg fname h, case_fns h) :: !handles
          | F.Ir.Extcall (c, _) -> exts := cfg.Cfg.cfun_model c :: !exts
          | _ -> ())
        f.F.Ir.body;
      (fname, { s_calls = !calls; s_handles = !handles; s_extcalls = !exts }))
    cfg.Cfg.reach_order

let propagate (cfg : Cfg.t) (lin : Linearity.t) =
  let ctx : (string, (string, rctx) Hashtbl.t) Hashtbl.t = Hashtbl.create 16 in
  join (ref false) ctx cfg.Cfg.program.F.Ir.main
    (List.map (fun l -> (l, { bottom with r_top = true })) cfg.Cfg.eff_labels);
  let all_via_c =
    List.map (fun l -> (l, { bottom with r_via_c = true })) cfg.Cfg.eff_labels
  in
  let summaries = summarize_fns cfg in
  (* who can resume which spec depends only on the linearity sites —
     loop-invariant, as are each spec's own case functions *)
  let resumers =
    Array.map
      (fun (s : Cfg.spec) ->
        if Cfg.is_reachable cfg s.Cfg.sp_in then resumer_fns lin s else [])
      cfg.Cfg.specs
  in
  let spec_cases = Array.map (fun (s : Cfg.spec) -> case_fns s.Cfg.sp) cfg.Cfg.specs in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 1000 do
    changed := false;
    incr rounds;
    List.iter
      (fun (fname, s) ->
        let cf = entries_of ctx fname in
        List.iter (fun g -> join changed ctx g cf) s.s_calls;
        List.iter
          (fun (sp, cases) ->
            join changed ctx sp.Cfg.sp.F.Ir.body_fn (body_entries sp cf);
            List.iter (fun g -> join changed ctx g cf) cases)
          s.s_handles;
        List.iter
          (function
            | Cfg.Pure -> ()
            | Cfg.Calls_back g -> join changed ctx g all_via_c
            | Cfg.Opaque ->
                List.iter (fun g -> join changed ctx g all_via_c) cfg.Cfg.fn_names)
          s.s_extcalls)
      summaries;
    Array.iteri
      (fun i (s : Cfg.spec) ->
        List.iter
          (fun r ->
            let cr = entries_of ctx r in
            join changed ctx s.Cfg.sp.F.Ir.body_fn (body_entries s cr);
            List.iter (fun g -> join changed ctx g cr) spec_cases.(i))
          resumers.(i))
      cfg.Cfg.specs
  done;
  ctx

(* ------------------------------------------------------------------ *)
(* Site enumeration, in {e compile} order: the compiler emits a
   [PerformI] after compiling its payload, so a site is claimed after
   walking the payload subtree (post-order on performs, left-to-right
   everywhere else).  Index [i] here is the [i]-th [PerformI] of the
   function's compiled code — the contract {!runtime_map} relies on. *)

let enumerate_sites claim (body : F.Ir.expr) =
  let rec walk e =
    (match e with
    | F.Ir.Int _ | F.Ir.Var _ -> ()
    | F.Ir.Binop (_, a, b)
    | F.Ir.Let (_, a, b)
    | F.Ir.Seq (a, b)
    | F.Ir.Repeat (a, b)
    | F.Ir.Continue (a, b) ->
        walk a;
        walk b
    | F.Ir.If (a, b, c) ->
        walk a;
        walk b;
        walk c
    | F.Ir.Call (_, args) | F.Ir.Extcall (_, args) -> List.iter walk args
    | F.Ir.Raise (_, a) -> walk a
    | F.Ir.Discontinue (a, _, b) ->
        walk a;
        walk b
    | F.Ir.Trywith (b, cases) ->
        walk b;
        List.iter (fun (_, _, ce) -> walk ce) cases
    | F.Ir.Perform (_, p) -> walk p
    | F.Ir.Handle h -> List.iter walk h.F.Ir.body_args);
    match e with F.Ir.Perform (l, _) -> claim l e | _ -> ()
  in
  walk body

let analyze (cfg : Cfg.t) (lin : Linearity.t) =
  let ctx = propagate cfg lin in
  let sites = Hashtbl.create 16 in
  List.iter
    (fun (f : F.Ir.fn) ->
      let fname = f.F.Ir.fn_name in
      let acc = ref [] in
      let n = ref 0 in
      enumerate_sites
        (fun l e ->
          let entry = entry_of ctx fname l in
          let partial =
            {
              r_fn = fname;
              r_idx = !n;
              r_label = l;
              r_site = F.Ir.expr_to_string e;
              r_cands = entry.cands;
              r_top = entry.r_top;
              r_via_c = entry.r_via_c;
              r_class = Mono;
            }
          in
          acc := { partial with r_class = classify partial } :: !acc;
          incr n)
        f.F.Ir.body;
      Hashtbl.replace sites fname (Array.of_list (List.rev !acc)))
    cfg.Cfg.reach_order;
  { cfg; sites }

let sites_of t fname =
  match Hashtbl.find_opt t.sites fname with Some a -> a | None -> [||]

(* Program order, compile order within a function: the deterministic
   iteration every report and check uses. *)
let all_sites t =
  List.concat_map
    (fun fname -> Array.to_list (sites_of t fname))
    t.cfg.Cfg.fn_names

let census t =
  List.fold_left
    (fun (m, p, g) s ->
      match s.r_class with
      | Mono -> (m + 1, p, g)
      | Poly -> (m, p + 1, g)
      | Mega -> (m, p, g + 1))
    (0, 0, 0) (all_sites t)

let site_to_string t s =
  let cands =
    IS.fold
      (fun i acc ->
        let sp = t.cfg.Cfg.specs.(i) in
        Printf.sprintf "spec#%d in %s" i sp.Cfg.sp_in :: acc)
      s.r_cands []
  in
  Printf.sprintf "%s#%d perform %s: %s {%s}%s%s" s.r_fn s.r_idx s.r_label
    (klass_to_string s.r_class)
    (String.concat ", " (List.rev cands))
    (if s.r_top then " +toplevel" else "")
    (if s.r_via_c then " +via-c" else "")

let report t =
  let b = Buffer.create 256 in
  let mono, poly, mega = census t in
  Buffer.add_string b
    (Printf.sprintf "handler resolution: mono=%d poly=%d mega=%d\n" mono poly
       mega);
  List.iter
    (fun s ->
      Buffer.add_string b ("  " ^ site_to_string t s);
      let path = Cfg.path_to t.cfg s.r_fn in
      if path <> [] then
        Buffer.add_string b (" [" ^ String.concat " -> " path ^ "]");
      Buffer.add_char b '\n')
    (all_sites t);
  Buffer.contents b

let diagnostics t =
  let out = ref [] in
  List.iter
    (fun s ->
      if s.r_class = Mega then
        out :=
          {
            Diag.kind =
              Diag.Megamorphic_dispatch
                { effect_name = s.r_label; outcomes = outcomes s };
            verdict = Diag.May;
            fn = s.r_fn;
            path = Cfg.path_to t.cfg s.r_fn;
            site = s.r_site;
          }
          :: !out)
    (all_sites t);
  Diag.sorted !out

(* ------------------------------------------------------------------ *)
(* Static-to-runtime identity maps.

   Perform sites: the [i]-th site of a function is its [i]-th
   [PerformI] in [entry, code_end) — both sides enumerate in compile
   order.  Handle specs: [HandleI] descriptors are appended to the
   global table after the body-args subtree, functions in program
   order, so an emission-order walk of the IR pairs each [handle_spec]
   record (matched physically against {!Cfg.specs}) with its
   descriptor index. *)

type rt = {
  rt_site_of_pc : (int, site) Hashtbl.t;
  rt_spec_of_handle : int array;  (** handle index -> [sp_id], -1 unknown *)
  rt_handle_of_spec : int array;  (** [sp_id] -> handle index, -1 unknown *)
}

let runtime_map t (c : F.Compile.compiled) =
  let p = t.cfg.Cfg.program in
  let nhandles = Array.length c.F.Compile.handles in
  let spec_of_handle = Array.make nhandles (-1) in
  let handle_of_spec = Array.make (Array.length t.cfg.Cfg.specs) (-1) in
  let next = ref 0 in
  let claim fname (h : F.Ir.handle_spec) =
    let idx = !next in
    incr next;
    match
      List.find_opt
        (fun (s : Cfg.spec) -> s.Cfg.sp == h)
        (Cfg.specs_inside t.cfg fname)
    with
    | Some s ->
        if idx < nhandles then begin
          spec_of_handle.(idx) <- s.Cfg.sp_id;
          handle_of_spec.(s.Cfg.sp_id) <- idx
        end
    | None -> ()
  in
  List.iter
    (fun (f : F.Ir.fn) ->
      let rec walk e =
        (match e with
        | F.Ir.Int _ | F.Ir.Var _ -> ()
        | F.Ir.Binop (_, a, b)
        | F.Ir.Let (_, a, b)
        | F.Ir.Seq (a, b)
        | F.Ir.Repeat (a, b)
        | F.Ir.Continue (a, b) ->
            walk a;
            walk b
        | F.Ir.If (a, b, c) ->
            walk a;
            walk b;
            walk c
        | F.Ir.Call (_, args) | F.Ir.Extcall (_, args) -> List.iter walk args
        | F.Ir.Raise (_, a) -> walk a
        | F.Ir.Discontinue (a, _, b) ->
            walk a;
            walk b
        | F.Ir.Trywith (b, cases) ->
            walk b;
            List.iter (fun (_, _, ce) -> walk ce) cases
        | F.Ir.Perform (_, q) -> walk q
        | F.Ir.Handle h -> List.iter walk h.F.Ir.body_args);
        match e with F.Ir.Handle h -> claim f.F.Ir.fn_name h | _ -> ()
      in
      walk f.F.Ir.body)
    p.F.Ir.fns;
  let site_of_pc = Hashtbl.create 64 in
  Array.iter
    (fun (cf : F.Compile.cfn) ->
      let fsites = sites_of t cf.F.Compile.fn_name in
      let k = ref 0 in
      for pc = cf.F.Compile.entry to cf.F.Compile.code_end - 1 do
        match c.F.Compile.code.(pc) with
        | F.Ir.PerformI eid ->
            if !k < Array.length fsites then begin
              let s = fsites.(!k) in
              (* the mapping is only trusted when the labels agree *)
              if
                Hashtbl.find_opt c.F.Compile.eff_ids s.r_label = Some eid
              then Hashtbl.replace site_of_pc pc s
            end;
            incr k
        | _ -> ()
      done)
    c.F.Compile.fns;
  {
    rt_site_of_pc = site_of_pc;
    rt_spec_of_handle = spec_of_handle;
    rt_handle_of_spec = handle_of_spec;
  }
