(** Whole-program cost-bound analysis over compiled code.

    Derives upper bounds on the paper's cost counters — performs,
    handler installations, resumes, stack switches, per-policy
    grow/commit/check counts, handler-table probes, continuation
    captures — by abstract interpretation of the compiled instruction
    stream, the way {!Redzone} recomputes frame words: per-instruction
    execution multipliers from the compiler's (recognisable) [Repeat]
    loop shape, composed through a widened interprocedural
    invocation-bound fixpoint.  Everything is a sound
    over-approximation; ∞ ([Inf]) means "no finite static bound", never
    "unknown but finite".

    The runtime contract, checked by the conformance campaign: for
    every counter with a finite bound, the measured value of a real
    execution (any stack policy, one-shot or multishot) never exceeds
    it. *)

type bound = Fin of int | Inf

val badd : bound -> bound -> bound

val bmul : bound -> bound -> bound

val ble : bound -> bound -> bool

val bound_to_string : bound -> string

val finite : bound -> int option

type t

val analyze :
  ?cfun_model:(string -> Cfg.cfun_model) ->
  Retrofit_fiber.Compile.compiled ->
  t
(** [cfun_model] defaults to all-[Opaque].  An executable [Opaque]
    external call collapses every invocation bound to ∞; [Calls_back]
    is modeled as at most one callback per external-call execution —
    the contract the conformance harness's [cb_*] stubs implement. *)

val inv : t -> string -> bound
(** Invocations of the named function per run. *)

type totals = {
  t_performs : bound;
  t_handles : bound;
  t_resumes : bound;
  t_calls : bound;
}

val totals : t -> totals

val counter_names : string list
(** The machine counters this pass bounds. *)

val counter_bounds :
  t ->
  policy:Retrofit_fiber.Stack_policy.t ->
  multishot:bool ->
  red_zone:int ->
  (string * bound) list
(** One entry per {!counter_names}.  Under multishot, if a second
    resume is possible ([R >= 2] with at least one perform) every bound
    is ∞: re-executed cloned suffixes break per-invocation
    accounting. *)

val report : ?multishot:bool -> ?red_zone:int -> t -> string
(** Totals, the per-function invocation table, and the counter-bound
    line for each stack policy. *)

val diagnostics : t -> Diag.t list
(** A [May]-verdict {!Diag.Unbounded_cost} per ∞ whole-program total,
    with the widening cause (opaque call, recursion, non-constant
    loop). *)
