(** The fiber machine: an executable model of the runtime of §5.

    The machine executes compiled bytecode over word-addressed stack
    segments.  Under the [Stock] configuration it behaves like stock
    OCaml (§2): one contiguous stack, no overflow checks, linked trap
    frames, direct external calls; effect instructions are a fatal
    error.  Under [Mc] it implements the full design of §5:
    heap-allocated fibers with the Fig 3a layout, prologue overflow
    checks with red-zone elision, growth by copy-and-double with pointer
    rebasing, a stack cache, continuation capture without copying
    (linked fibers), one-shot enforcement, reperform chains, callbacks
    on the current fiber with saved handler_info, and exception
    forwarding across both fiber and C boundaries.

    Every run returns the cost counters; the "instructions" counter is
    the weighted total defined by {!Costs} and backs the Table 1
    instruction-count experiment. *)

type outcome =
  | Done of int
  | Uncaught of string * int  (** exception label and payload *)
  | Fatal of string
      (** a state the real runtime cannot reach or does not support,
          e.g. effect handlers under the stock configuration *)

type t

(** Context handed to host-implemented C functions. *)
type ctx = {
  machine : t;
  callback : string -> int array -> int;
      (** call back into an OCaml function by name; OCaml exceptions
          escaping the callback propagate as {!Ocaml_exn} *)
}

exception Ocaml_exn of string * int
(** Raised inside C-function implementations when an OCaml exception
    crosses the callback boundary; re-raise it (or let it escape) to
    forward the exception to the OCaml caller, as C code does. *)

type cfun = ctx -> int array -> int

(** {1 Runtime invariant auditing}

    An auditor re-checks the structural invariants of §5 between
    machine steps (including steps taken inside callbacks):

    - the Fig 3a handler_info words (parent id at [top-1], handler
      index at [top-2]) mirror the fiber records, allowing for the
      blanked handler of a live callback boundary;
    - saved registers stay inside the segment and [cfa >= sp];
    - the in-memory trap chain is strictly increasing, lies in the used
      region, and matches the mirror Vec trap for trap;
    - the base-address index covers exactly the live fibers;
    - no stack-cache entry is aliased by a live fiber's stack;
    - live continuations hold pairwise-disjoint chains of live,
      registered, correctly parent-linked fibers, none of which is the
      running fiber (one-shot linearity);
    - every prologue overflow check is emitted or elided exactly when
      {!Otss.needs_check} says so (checked at call time, not on the
      audit interval).

    Violations are recorded rather than fatal so a conformance run can
    report them alongside outcome differences. *)

type audit

val audit : ?interval:int -> ?soft_cap:int -> unit -> audit
(** A fresh auditor checking every [interval] steps (default 1).  Every
    audit pass walks the whole machine, so to stay sub-quadratic on
    pathological fuel-bound runs the interval doubles after each
    [soft_cap] passes (default 50k): runs up to [interval * soft_cap]
    steps are audited at full density, longer ones logarithmically. *)

val audit_checks : audit -> int
(** Number of full audit passes performed. *)

val audit_ok : audit -> bool

val audit_violation_count : audit -> int

val audit_violations : audit -> (string * string) list
(** Recorded [(invariant, detail)] pairs, oldest first, capped at 20. *)

val run :
  ?cache:Stack_cache.t ->
  ?cfuns:(string * cfun) list ->
  ?on_call:(t -> unit) ->
  ?on_step:(t -> unit) ->
  ?on_perform:(site:int -> eff:int -> handler:int -> unit) ->
  ?audit:audit ->
  ?fuel:int ->
  Config.t ->
  Compile.compiled ->
  outcome * Retrofit_util.Counter.t
(** Executes the program's main function.  [cfuns] supplies C-function
    implementations by name; a program calling an unregistered name
    fails with [Fatal].  [on_call] runs after every call frame is
    established — the hook the DWARF validator uses.  [on_step] runs
    after every executed instruction (including those inside callbacks)
    — the hook the sampling profiler hangs its interval countdown on.
    [on_perform] fires once per dynamic perform with the PerformI pc
    ([site]), the effect id, and the identity of the handler clause
    that receives it: the handle-spec index of the matching handler
    fiber, or [-1] when the effect crosses a handler-less boundary and
    the runtime raises [Unhandled] — the hook the analyzer soundness
    campaign records dispatch targets with.
    [audit] enables per-step invariant checking.  [fuel] bounds the
    executed operation count (default 200 million).

    When the eventlog is enabled ({!Retrofit_trace.Trace.on}), the
    machine emits fiber lifecycle, switch, effect, handler and FFI
    boundary events stamped with the cumulative "instructions" cost.
    Disabled, every site is a single untaken branch: no counter moves
    and the frozen cost tables stay bit-identical. *)

val c_raise : t -> string -> int -> 'a
(** For C-function implementations: raise an OCaml exception across the
    external call, like [caml_raise] in C stubs. *)

(** {1 Introspection (for the unwinder, the validator and tests)} *)

val compiled : t -> Compile.compiled

val config : t -> Config.t

val counters : t -> Retrofit_util.Counter.t

val current_fiber : t -> Fiber.t

val fiber_by_id : t -> int -> Fiber.t option

val fiber_of_addr : t -> int -> Fiber.t option
(** The live fiber whose segment contains the address — O(log n) in the
    live-fiber count via a base-address interval index that is updated
    on allocation, free and growth.  Each lookup increments the
    [addr_index_probe] counter. *)

val read_mem : t -> int -> int
(** Read a word of stack memory.  @raise Invalid_argument on an
    unmapped address. *)

val live_fiber_count : t -> int

val live_continuations : t -> (int * Fiber.t list) list
(** Every live (capturable, not yet resumed) continuation with its
    fiber chain — the suspended requests of a server, each of which the
    unwinder can snapshot (§6.3.4). *)

val shadow_backtrace : t -> string list
(** Ground truth: function names from the innermost frame outwards,
    crossing fiber boundaries via parent pointers and marking callback
    boundaries with ["<C>"]; ends with ["<main>"]. *)
