type bucket = { mutable segs : Segment.t list; mutable count : int }

type stats = {
  lookups : int;
  hits : int;
  misses : int;
  puts : int;
  rejected : int;
}

let zero_stats = { lookups = 0; hits = 0; misses = 0; puts = 0; rejected = 0 }

type t = {
  buckets : (int, bucket) Hashtbl.t;
  max_per_bucket : int;
  max_total_words : int;
  mutable total_words : int;
  mutable total_count : int;
  (* Per-instance lifetime event counts.  These back the observability
     layer (metrics gauges, the DESIGN.md ablation) and are
     deliberately not machine counters: a cache can be shared across
     machine runs, and each experiment reads its own window via
     [scoped_stats] (or calls [reset_stats]) so back-to-back runs in
     one process never see each other's traffic. *)
  mutable s_lookups : int;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_puts : int;
  mutable s_rejected : int;
}

let create ?(max_per_bucket = 64) ?(max_total_words = max_int) () =
  if max_per_bucket < 0 then invalid_arg "Stack_cache.create: max_per_bucket";
  if max_total_words < 0 then invalid_arg "Stack_cache.create: max_total_words";
  {
    buckets = Hashtbl.create 8;
    max_per_bucket;
    max_total_words;
    total_words = 0;
    total_count = 0;
    s_lookups = 0;
    s_hits = 0;
    s_misses = 0;
    s_puts = 0;
    s_rejected = 0;
  }

let bucket t size =
  match Hashtbl.find_opt t.buckets size with
  | Some b -> b
  | None ->
      let b = { segs = []; count = 0 } in
      Hashtbl.add t.buckets size b;
      b

let put t ~size seg =
  let accepted =
    if
      t.max_per_bucket > 0
      && size <= t.max_total_words - t.total_words
    then begin
      let b = bucket t size in
      if b.count < t.max_per_bucket then begin
        b.segs <- seg :: b.segs;
        b.count <- b.count + 1;
        t.total_words <- t.total_words + size;
        t.total_count <- t.total_count + 1;
        true
      end
      else false
    end
    else false
  in
  if accepted then t.s_puts <- t.s_puts + 1 else t.s_rejected <- t.s_rejected + 1

let take t ~size =
  t.s_lookups <- t.s_lookups + 1;
  match Hashtbl.find_opt t.buckets size with
  | Some ({ segs = seg :: rest; _ } as b) ->
      b.segs <- rest;
      b.count <- b.count - 1;
      t.total_words <- t.total_words - size;
      t.total_count <- t.total_count - 1;
      t.s_hits <- t.s_hits + 1;
      Segment.zero seg;
      Some seg
  | _ ->
      t.s_misses <- t.s_misses + 1;
      None

let iter t f =
  Hashtbl.iter (fun _ b -> List.iter f b.segs) t.buckets

let population t = t.total_count

let total_words t = t.total_words

let stats t =
  {
    lookups = t.s_lookups;
    hits = t.s_hits;
    misses = t.s_misses;
    puts = t.s_puts;
    rejected = t.s_rejected;
  }

let reset_stats t =
  t.s_lookups <- 0;
  t.s_hits <- 0;
  t.s_misses <- 0;
  t.s_puts <- 0;
  t.s_rejected <- 0

let diff_stats a b =
  {
    lookups = a.lookups - b.lookups;
    hits = a.hits - b.hits;
    misses = a.misses - b.misses;
    puts = a.puts - b.puts;
    rejected = a.rejected - b.rejected;
  }

let scoped_stats t f =
  let before = stats t in
  let result = f () in
  (result, diff_stats (stats t) before)

let clear t =
  Hashtbl.reset t.buckets;
  t.total_words <- 0;
  t.total_count <- 0
