type binop = Add | Sub | Mul | Div | Mod | Lt | Le | Eq | Ne

type expr =
  | Int of int
  | Var of string
  | Binop of binop * expr * expr
  | If of expr * expr * expr
  | Let of string * expr * expr
  | Seq of expr * expr
  | Call of string * expr list
  | Raise of string * expr
  | Trywith of expr * (string * string * expr) list
  | Perform of string * expr
  | Handle of handle_spec
  | Continue of expr * expr
  | Discontinue of expr * string * expr
  | Extcall of string * expr list
  | Repeat of expr * expr

and handle_spec = {
  body_fn : string;
  body_args : expr list;
  retc : string;
  exncs : (string * string) list;
  effcs : (string * string) list;
}

type fn = { fn_name : string; params : string list; body : expr }

type program = { fns : fn list; main : string }

type instr =
  | Const of int
  | Load of int
  | Store of int
  | Dup
  | Pop
  | Bin of binop
  | Jump of int
  | JumpIfNot of int
  | CallI of int
  | Ret
  | PushtrapI of int
  | PoptrapI
  | RaiseI of int
  | ReraiseI
  | PerformI of int
  | HandleI of int
  | ContinueI
  | DiscontinueI of int
  | ExtcallI of int * int
  | Stop

let binop_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Mod -> "mod"
  | Lt -> "lt"
  | Le -> "le"
  | Eq -> "eq"
  | Ne -> "ne"

let instr_to_string = function
  | Const n -> Printf.sprintf "const %d" n
  | Load i -> Printf.sprintf "load %d" i
  | Store i -> Printf.sprintf "store %d" i
  | Dup -> "dup"
  | Pop -> "pop"
  | Bin op -> binop_to_string op
  | Jump a -> Printf.sprintf "jump %d" a
  | JumpIfNot a -> Printf.sprintf "jumpifnot %d" a
  | CallI f -> Printf.sprintf "call f%d" f
  | Ret -> "ret"
  | PushtrapI a -> Printf.sprintf "pushtrap %d" a
  | PoptrapI -> "poptrap"
  | RaiseI e -> Printf.sprintf "raise e%d" e
  | ReraiseI -> "reraise"
  | PerformI e -> Printf.sprintf "perform eff%d" e
  | HandleI h -> Printf.sprintf "handle h%d" h
  | ContinueI -> "continue"
  | DiscontinueI e -> Printf.sprintf "discontinue e%d" e
  | ExtcallI (c, n) -> Printf.sprintf "extcall c%d/%d" c n
  | Stop -> "stop"

(* ------------------------------------------------------------------ *)
(* Printing.

   The printer is injective on the constructor structure: every [expr]
   form prints with a distinct head symbol and every subterm is
   parenthesised, so two structurally different expressions can only
   print alike if their embedded names collide (names are taken verbatim
   and must not contain spaces or parentheses).  The analyzer's
   diagnostics quote these strings, and a QCheck property in the test
   suite pins the injectivity. *)

let rec expr_to_string = function
  | Int n -> Printf.sprintf "(int %d)" n
  | Var x -> Printf.sprintf "(var %s)" x
  | Binop (op, a, b) ->
      Printf.sprintf "(%s %s %s)" (binop_to_string op) (expr_to_string a)
        (expr_to_string b)
  | If (c, t, f) ->
      Printf.sprintf "(if %s %s %s)" (expr_to_string c) (expr_to_string t)
        (expr_to_string f)
  | Let (x, e1, e2) ->
      Printf.sprintf "(let (%s %s) %s)" x (expr_to_string e1) (expr_to_string e2)
  | Seq (a, b) -> Printf.sprintf "(seq %s %s)" (expr_to_string a) (expr_to_string b)
  | Call (f, args) ->
      Printf.sprintf "(call %s%s)" f (args_to_string args)
  | Raise (l, e) -> Printf.sprintf "(raise %s %s)" l (expr_to_string e)
  | Trywith (body, cases) ->
      Printf.sprintf "(try %s%s)" (expr_to_string body)
        (String.concat ""
           (List.map
              (fun (l, x, e) ->
                Printf.sprintf " (case %s %s %s)" l x (expr_to_string e))
              cases))
  | Perform (l, e) -> Printf.sprintf "(perform %s %s)" l (expr_to_string e)
  | Handle h ->
      Printf.sprintf "(handle (body %s%s) (ret %s)%s%s)" h.body_fn
        (args_to_string h.body_args)
        h.retc
        (String.concat ""
           (List.map (fun (l, g) -> Printf.sprintf " (exn %s %s)" l g) h.exncs))
        (String.concat ""
           (List.map (fun (l, g) -> Printf.sprintf " (eff %s %s)" l g) h.effcs))
  | Continue (k, v) ->
      Printf.sprintf "(continue %s %s)" (expr_to_string k) (expr_to_string v)
  | Discontinue (k, l, e) ->
      Printf.sprintf "(discontinue %s %s %s)" (expr_to_string k) l
        (expr_to_string e)
  | Extcall (c, args) -> Printf.sprintf "(extcall %s%s)" c (args_to_string args)
  | Repeat (c, b) ->
      Printf.sprintf "(repeat %s %s)" (expr_to_string c) (expr_to_string b)

and args_to_string args =
  String.concat "" (List.map (fun a -> " " ^ expr_to_string a) args)

let fn_to_string f =
  Printf.sprintf "(fn %s (%s) %s)" f.fn_name
    (String.concat " " f.params)
    (expr_to_string f.body)

let program_to_string p =
  String.concat "\n" (List.map fn_to_string p.fns @ [ "(main " ^ p.main ^ ")" ])

let call name args = Call (name, args)

let seq = function
  | [] -> invalid_arg "Ir.seq: empty sequence"
  | e :: rest -> List.fold_left (fun acc e -> Seq (acc, e)) e rest

let fn fn_name params body = { fn_name; params; body }
