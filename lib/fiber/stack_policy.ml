type kind = Copy_double | Segmented | Large_reserve

type t = {
  pk : kind;
  chunk_words : int;
  reserve_words : int;
  page_words : int;
  cow_clone : bool;
}

let copy_double =
  {
    pk = Copy_double;
    chunk_words = 0;
    reserve_words = 0;
    page_words = 0;
    cow_clone = false;
  }

let segmented =
  {
    pk = Segmented;
    chunk_words = 64;
    reserve_words = 1 lsl 20;
    page_words = 0;
    cow_clone = false;
  }

let segmented_cow = { segmented with cow_clone = true }

let large_reserve =
  {
    pk = Large_reserve;
    chunk_words = 0;
    reserve_words = 1 lsl 20;
    page_words = 256;
    cow_clone = false;
  }

let with_chunk_words n t =
  if n < 8 then invalid_arg "Stack_policy.with_chunk_words: too small";
  { t with chunk_words = n }

let with_reserve_words n t =
  if n < 64 then invalid_arg "Stack_policy.with_reserve_words: too small";
  { t with reserve_words = n }

let with_page_words n t =
  if n < 8 then invalid_arg "Stack_policy.with_page_words: too small";
  { t with page_words = n }

let name t =
  match t.pk with
  | Copy_double -> "copy"
  | Segmented -> if t.cow_clone then "segmented-cow" else "segmented"
  | Large_reserve -> "reserve"

let all =
  [
    ("copy", copy_double);
    ("segmented", segmented);
    ("segmented-cow", segmented_cow);
    ("reserve", large_reserve);
  ]

let of_string s = List.assoc_opt s all

(* The extension granularity a policy commits stack memory in: linked
   chunks for Segmented, guard-page-sized commits for Large_reserve,
   none for Copy_double (whose segments are always fully committed). *)
let ext_words t =
  match t.pk with
  | Copy_double -> 0
  | Segmented -> t.chunk_words
  | Large_reserve -> t.page_words
