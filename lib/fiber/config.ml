type kind = Stock | Mc

type t = {
  kind : kind;
  initial_words : int;
  red_zone : int;
  stack_cache : bool;
  stock_stack_words : int;
  multishot : bool;
  policy : Stack_policy.t;
}

let stock =
  {
    kind = Stock;
    initial_words = 0;
    red_zone = 0;
    stack_cache = false;
    stock_stack_words = 1 lsl 20;
    multishot = false;
    policy = Stack_policy.copy_double;
  }

let mc =
  {
    kind = Mc;
    initial_words = 16;
    red_zone = 16;
    stack_cache = true;
    stock_stack_words = 1 lsl 20;
    multishot = false;
    policy = Stack_policy.copy_double;
  }

let mc_red_zone n =
  if n < 0 then invalid_arg "Config.mc_red_zone: negative size";
  { mc with red_zone = n }

let with_cache stack_cache t = { t with stack_cache }

let with_initial_words initial_words t =
  if initial_words < 1 then invalid_arg "Config.with_initial_words: must be positive";
  { t with initial_words }

let with_policy policy t = { t with policy }

let name t =
  match t.kind with
  | Stock -> "stock"
  | Mc ->
      let base = Printf.sprintf "mc(rz=%d)" t.red_zone in
      let base = if t.stack_cache then base else base ^ "-nocache" in
      let base =
        if t.policy.Stack_policy.pk = Stack_policy.Copy_double then base
        else base ^ "-" ^ Stack_policy.name t.policy
      in
      if t.multishot then base ^ "-ms" else base

let with_multishot multishot t = { t with multishot }
