module Vec = Retrofit_util.Vec

(* A chunk is a reference-counted window of committed words.  Sharing
   ([rc] > 1) only arises from [share_clone]; a write to a shared chunk
   replaces the writer's chunk record with a private copy, leaving the
   other owners on the original (copy-on-write). *)
type chunk = { mutable rc : int; data : int array }

type t = {
  seg_base : int;  (* reservation floor *)
  seg_top : int;  (* one past the highest word *)
  sg_ext_words : int;  (* uniform extension size; 0 = not extensible *)
  head_lo : int;  (* head chunk covers [head_lo, seg_top) *)
  mutable head : chunk;
  exts : chunk Vec.t;
      (* exts.(i) covers [head_lo - (i+1)*ext, head_lo - i*ext) *)
  mutable notify_cow : int -> unit;
}

let no_notify (_ : int) = ()

let create_reserved ~base ~reserve ~committed ~ext_words =
  if committed <= 0 then invalid_arg "Segment.create_reserved: committed must be positive";
  if committed > reserve then
    invalid_arg "Segment.create_reserved: committed exceeds the reservation";
  if ext_words < 0 then invalid_arg "Segment.create_reserved: negative ext_words";
  {
    seg_base = base;
    seg_top = base + reserve;
    sg_ext_words = ext_words;
    head_lo = base + reserve - committed;
    head = { rc = 1; data = Array.make committed 0 };
    exts = Vec.create ();
    notify_cow = no_notify;
  }

let create ~base ~size =
  if size <= 0 then invalid_arg "Segment.create: size must be positive";
  create_reserved ~base ~reserve:size ~committed:size ~ext_words:0

let base t = t.seg_base

let top t = t.seg_top

let limit t = t.head_lo - (Vec.length t.exts * t.sg_ext_words)

let size t = t.seg_top - limit t

let reserve t = t.seg_top - t.seg_base

let ext_words t = t.sg_ext_words

let ext_count t = Vec.length t.exts

let is_flat t = t.head_lo = t.seg_base && Vec.is_empty t.exts

let contains t addr = addr >= limit t && addr < t.seg_top

let check t addr =
  if not (contains t addr) then
    invalid_arg
      (Printf.sprintf "Segment: address %d outside [%d, %d)" addr (limit t) t.seg_top)

(* Address -> chunk in O(1): head first (the flat fast path and the hot
   top-of-stack region), otherwise index arithmetic over the uniform
   extension chunks. *)
let ext_index t addr = (t.head_lo - 1 - addr) / t.sg_ext_words

let read t addr =
  if addr >= t.head_lo && addr < t.seg_top then t.head.data.(addr - t.head_lo)
  else begin
    check t addr;
    let i = ext_index t addr in
    let c = Vec.get t.exts i in
    c.data.(addr - (t.head_lo - ((i + 1) * t.sg_ext_words)))
  end

let privatize_head t =
  let c = t.head in
  if c.rc > 1 then begin
    c.rc <- c.rc - 1;
    t.head <- { rc = 1; data = Array.copy c.data };
    t.notify_cow (Array.length c.data)
  end

let privatize_ext t i =
  let c = Vec.get t.exts i in
  if c.rc > 1 then begin
    c.rc <- c.rc - 1;
    Vec.set t.exts i { rc = 1; data = Array.copy c.data };
    t.notify_cow (Array.length c.data)
  end

let write t addr v =
  if addr >= t.head_lo && addr < t.seg_top then begin
    if t.head.rc > 1 then privatize_head t;
    t.head.data.(addr - t.head_lo) <- v
  end
  else begin
    check t addr;
    let i = ext_index t addr in
    if (Vec.get t.exts i).rc > 1 then privatize_ext t i;
    (Vec.get t.exts i).data.(addr - (t.head_lo - ((i + 1) * t.sg_ext_words)))
    <- v
  end

let can_extend t =
  t.sg_ext_words > 0 && limit t - t.sg_ext_words >= t.seg_base

let extend t arr =
  if t.sg_ext_words = 0 then invalid_arg "Segment.extend: segment is not extensible";
  if Array.length arr <> t.sg_ext_words then
    invalid_arg "Segment.extend: chunk has the wrong size";
  if limit t - t.sg_ext_words < t.seg_base then
    invalid_arg "Segment.extend: reservation exhausted";
  Vec.push t.exts { rc = 1; data = arr }

let strip t =
  let freed = ref [] in
  while not (Vec.is_empty t.exts) do
    let c = Vec.pop t.exts in
    if c.rc = 1 then freed := c.data :: !freed else c.rc <- c.rc - 1
  done;
  !freed

let fully_private t =
  t.head.rc = 1 && not (Vec.exists (fun c -> c.rc > 1) t.exts)

let release t =
  t.head.rc <- t.head.rc - 1;
  Vec.iter (fun c -> c.rc <- c.rc - 1) t.exts;
  Vec.clear t.exts

let share_clone t ~base =
  t.head.rc <- t.head.rc + 1;
  let exts = Vec.copy t.exts in
  Vec.iter (fun c -> c.rc <- c.rc + 1) exts;
  {
    seg_base = base;
    seg_top = base + (t.seg_top - t.seg_base);
    sg_ext_words = t.sg_ext_words;
    head_lo = base + (t.head_lo - t.seg_base);
    head = t.head;
    exts;
    notify_cow = no_notify;
  }

let set_notify_cow t f = t.notify_cow <- f

let zero t =
  Array.fill t.head.data 0 (Array.length t.head.data) 0;
  Vec.iter (fun c -> Array.fill c.data 0 (Array.length c.data) 0) t.exts

let blit_into ~src ~dst =
  let src_size = size src and dst_size = size dst in
  if dst_size < src_size then invalid_arg "Segment.blit_into: destination too small";
  if is_flat src && is_flat dst then
    Array.blit src.head.data 0 dst.head.data (dst_size - src_size) src_size
  else begin
    let src_lo = limit src in
    let delta = dst.seg_top - src.seg_top in
    for addr = src_lo to src.seg_top - 1 do
      write dst (addr + delta) (read src addr)
    done
  end
