(** Canonical programs for the fiber machine.

    These cover the micro benchmarks of Table 1 (exception install/raise
    loops, external-call and callback loops, and the recursive programs
    ack, fib, motzkin, sudan and tak), the meander example of Fig 1, and
    effect-handler exercises used by the tests and by the DWARF
    demonstrations.

    The machine performs no tail-call optimisation, so iteration loops
    recurse; iteration counts are chosen by the caller and kept moderate
    (the instruction-count ratios the experiments report are
    insensitive to the count). *)

val ack : m:int -> n:int -> Ir.program

val fib : n:int -> Ir.program

val tak : x:int -> y:int -> z:int -> Ir.program

val motzkin : n:int -> Ir.program
(** Naive doubly recursive Motzkin numbers. *)

val sudan : ?iters:int -> n:int -> x:int -> y:int -> unit -> Ir.program
(** [iters] repeats the computation in a loop (default 1), so stack
    growth amortises as it does in a long-running program. *)

val exnval : iters:int -> Ir.program
(** Install an exception handler and return a value, [iters] times. *)

val exnraise : iters:int -> Ir.program
(** Install a handler and raise into it, [iters] times. *)

val extcall : iters:int -> Ir.program
(** Call the C identity function [iters] times; requires the
    {!c_identity} implementation. *)

val callback : iters:int -> Ir.program
(** Call a C function that calls back into an OCaml identity function,
    [iters] times; requires {!c_callback_impl}. *)

val meander : Ir.program
(** Fig 1: OCaml installs handlers for E1 and E2, calls C, C calls back
    into OCaml, the callback raises E1; the program evaluates to 42.
    Requires {!c_meander_impl}. *)

val effect_roundtrip : iters:int -> Ir.program
(** The annotated sequence of §6.3: install a handler, perform, handle,
    resume, return — [iters] times. *)

val effect_depth : depth:int -> iters:int -> Ir.program
(** Perform through [depth] non-matching handlers (reperform chain). *)

val counter_effect : upto:int -> Ir.program
(** A get/put-style effect used as an integration test; evaluates to the
    triangular number of [upto]. *)

val one_shot_violation : Ir.program
(** Resumes a continuation twice; the second resume must raise
    [Invalid_argument] (§3.1). *)

val unhandled_effect : Ir.program
(** Performs an effect with no handler; must end with an uncaught
    [Unhandled] exception. *)

val discontinue_cleanup : Ir.program
(** The handler discontinues; the performer's try/with cleans up and the
    program evaluates to 42 (§3.2). *)

val deep_recursion : depth:int -> Ir.program
(** Forces repeated stack growth inside a handler fiber. *)

val effect_in_callback : Ir.program
(** Performs an effect under a callback: the effect must not cross the C
    boundary, so Unhandled is raised and caught by the OCaml caller,
    evaluating to 7.  Requires {!c_meander_impl}. *)

(** {1 C function implementations} *)

val c_identity : string * Machine.cfun
(** ["c_id"]: returns its single argument. *)

val c_callback_impl : string * Machine.cfun
(** ["c_cb"]: calls back into the OCaml function ["ocaml_id"] with its
    argument. *)

val c_meander_impl : string * Machine.cfun
(** ["ocaml_to_c"]: calls back into ["c_to_ocaml"], as in Fig 1b. *)

val standard_cfuns : (string * Machine.cfun) list
(** All of the above. *)

val cross_resume : Ir.program
(** A continuation captured by one handler is resumed from inside a
    different fiber; evaluates to 42.  Exercises parent re-linking at
    resume (§5.4) and the unwinder's view of it. *)

val multishot_choice : Ir.program
(** Resumes one continuation twice: [Invalid_argument] under the
    default one-shot discipline, 30 under {!Config.with_multishot}
    (matching the multi-shot operational semantics of §4). *)

val nqueens : n:int -> Ir.program
(** Backtracking n-queens via a multishot [Pick] effect: the handler
    resumes each captured continuation once per column, so the handle
    evaluates to the solution count (2 for [n=4], 10 for [n=5], 4 for
    [n=6]).  Requires {!Config.with_multishot}; under the one-shot
    discipline the second resume raises [Invalid_argument]. *)

val suspended_requests : n:int -> Ir.program
(** Parks [n] requests on a Wait effect without resuming them, then
    calls the C function ["list_pending"]; the test registers an
    implementation that snapshots every suspended continuation's
    backtrace (§6.3.4). *)
