(** Bytecode compiler for the fiber machine.

    Besides code generation, the compiler produces the metadata the
    runtime model needs:

    - per-function frame sizes (return address + locals + the deepest
      nesting of trap frames), which drive the overflow check and the
      red-zone elision decision of §5.2;
    - the leaf-function analysis: a function is a leaf if its body
      performs no calls of any kind, so its stack use is bounded by its
      own frame;
    - CFI edits — for every program point where the distance between the
      stack pointer and the canonical frame address changes (trap pushes
      and pops), an edit is recorded, from which the DWARF builder
      generates unwind tables (§5.5);
    - the text-section size accounting used by the OTSS experiment
      (Fig 5): each instruction has a byte cost, and configurations that
      insert overflow checks pay for them per checked function. *)

type cfn = {
  fn_index : int;
  fn_name : string;
  entry : int;  (** code address of the first instruction *)
  code_end : int;  (** one past the last instruction *)
  nparams : int;
  nlocals : int;  (** params + lets *)
  max_traps : int;  (** deepest static trap nesting *)
  frame_words : int;  (** 1 + nlocals + trap words *)
  is_leaf : bool;
  max_ostack : int;
      (** peak operand-stack depth of any execution through the body,
          by forward dataflow over the instruction range (trap handlers
          entered at their recorded depth + 2 for \[payload; id\]).
          Exposed so the static analyzer can cross-check it instead of
          re-deriving frame metadata from scratch. *)
  cfi_edits : (int * int) list;
      (** (code address, new cfa offset) — the first entry is the
          post-prologue state at [entry] *)
}

type handle_desc = {
  h_body : int;
  h_nargs : int;
  h_retc : int;
  h_exncs : (int * int) list;  (** exception id → function index *)
  h_effcs : (int * int) list;  (** effect id → function index *)
  h_exn_tbl : (int, int) Hashtbl.t;
      (** [h_exncs] as an O(1) dispatch table, built at compile time so
          the runtime's raise path never scans the case list *)
  h_eff_tbl : (int, int) Hashtbl.t;
      (** [h_effcs] as an O(1) dispatch table for the perform path *)
}

type compiled = {
  code : Ir.instr array;
  fns : cfn array;
  handles : handle_desc array;
  exn_names : string array;
  eff_names : string array;
  cfun_names : string array;
  fn_ids : (string, int) Hashtbl.t;
      (** function name → index; the callback entry path uses this
          instead of scanning [fns] *)
  exn_ids : (string, int) Hashtbl.t;  (** exception label → id *)
  eff_ids : (string, int) Hashtbl.t;  (** effect label → id *)
  main_index : int;
}

exception Error of string

val compile : Ir.program -> compiled
(** @raise Error on unknown functions, arity mismatches, or a missing
    main. *)

val function_at : compiled -> int -> cfn option
(** The function whose code range contains the given address, by binary
    search over the (sorted, disjoint) code ranges — O(log n). *)

val exn_id : compiled -> string -> int
(** O(1). @raise Not_found if the program never mentions the label. *)

val exn_name : compiled -> int -> string

val eff_id : compiled -> string -> int

val disassemble : compiled -> string

(** {1 Built-in exception labels}

    These are interned in every program so the runtime can raise them. *)

val unhandled_exn : string

val invalid_argument_exn : string

val division_by_zero_exn : string

val stack_overflow_exn : string
