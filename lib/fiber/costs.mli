(** The instruction-cost model of the fiber machine.

    Each bytecode operation is charged a weight approximating the number
    of x86-64 instructions the corresponding native-code sequence
    executes; the machine accumulates the weighted total in its
    "instructions" counter.  The weights encode the structural claims of
    the paper: exceptions cost the same under both runtimes (§5.1);
    Multicore pays for prologue overflow checks (§5.2), stack switching
    on external calls (§5.3), and room/bookkeeping on callbacks; fiber
    allocation dominates handler setup (§6.3: the a–b segment, at 23 ns,
    is "dominated by the memory allocation").

    Absolute values are a calibrated model, not measurements; the
    experiments report {e relative} differences between configurations,
    which depend only on which operations each configuration performs. *)

val basic : int
(** loads, stores, constants, arithmetic, jumps *)

val call : int
(** push return address, jump, frame setup *)

val check : int
(** one overflow check: compare and predicted branch *)

val ret : int

val pushtrap : int
(** push handler pc and exception pointer, update exception pointer *)

val poptrap : int

val raise_ : int
(** set sp from the exception pointer, reload, jump *)

val extcall : Config.t -> int
(** direct under stock; under MC also saves the fiber sp and switches to
    the system stack and back *)

val cfun_body : int
(** cost charged for the body of a host C function, identical in both
    configurations; it dilutes the switching overhead the way real C
    work does *)

val callback : Config.t -> int
(** under MC also checks room on the fiber and saves/restores
    handler_info *)

val fiber_alloc : int
(** malloc + preamble initialisation (the a–b cost) *)

val fiber_alloc_cached : int
(** stack-cache hit: pop + preamble initialisation *)

val fiber_free : int

val perform : int
(** allocate the continuation, sever the parent, switch (b–c) *)

val reperform : int
(** one extra handler hop: append fiber, switch *)

val resume : int
(** continue/discontinue base cost (c–d); plus [resume_per_fiber] per
    fiber traversed in the chain *)

val resume_per_fiber : int

val fiber_return : int
(** switch to parent and invoke the value closure (d–e) *)

val grow_base : int
(** reallocation bookkeeping; the copy itself is charged one unit per
    word through [grow_per_word] *)

val grow_per_word : int

(** {1 Alternative stack policies (see {!Stack_policy})} *)

val segment_check : int
(** the per-call boundary check of the segmented policy; unlike the
    red-zone scheme it cannot be elided for leaf frames *)

val chunk_commit : int
(** link one chunk from the free list (or allocate it) into the
    committed region *)

val page_fault : int
(** taking the modeled guard-page trap of the large-reserve policy *)

val page_commit : int
(** committing one page after a fault; charged per page *)

val cow_share : int
(** setting up one chunk-sharing clone fiber (refcount bumps plus
    register/bookkeeping copies) *)

val cow_per_word : int
(** deferred copy cost when a shared chunk is privatized by a write *)
