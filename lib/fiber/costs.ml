let basic = 1

let call = 3

let check = 2

let ret = 3

let pushtrap = 3

let poptrap = 2

let raise_ = 3

let extcall (c : Config.t) = match c.kind with Config.Stock -> 3 | Config.Mc -> 8

let cfun_body = 12

let callback (c : Config.t) = match c.kind with Config.Stock -> 4 | Config.Mc -> 16

let fiber_alloc = 25

let fiber_alloc_cached = 10

let fiber_free = 4

let perform = 6

let reperform = 4

let resume = 8

let resume_per_fiber = 2

let fiber_return = 8

let grow_base = 20

let grow_per_word = 1

let segment_check = 2

let chunk_commit = 12

let page_fault = 30

let page_commit = 6

let cow_share = 5

let cow_per_word = 1
