module Vec = Retrofit_util.Vec
module Counter = Retrofit_util.Counter
module Trace = Retrofit_trace.Trace
module Tev = Retrofit_trace.Event

(* Base-address index of live fibers.  Segments are carved out of
   disjoint address ranges (fresh ones at monotonically increasing
   bases; cached ones recycle a previously retired range), so the live
   set is a set of disjoint intervals keyed by base: the fiber owning an
   address, if any, is the one with the greatest base <= addr. *)
module Imap = Map.Make (Int)

type outcome = Done of int | Uncaught of string * int | Fatal of string

exception Ocaml_exn of string * int

exception Fatal_error of string

exception Cb_return of int
(* Internal: thrown by Ret when it pops a callback's base frame, to exit
   the nested execution loop in run_callback. *)

type cont = { fibers : Fiber.t Vec.t; mutable cont_live : bool }
(* [fibers] holds the captured chain innermost first; a Vec so capture
   appends in O(1) and resume reads both ends in O(1). *)

type audit = {
  mutable a_interval : int;
  a_soft_cap : int;
  mutable a_budget : int; (* checks left before the interval doubles *)
  mutable a_countdown : int;
  mutable a_checks : int;
  mutable a_nviolations : int;
  mutable a_violations : (string * string) list; (* newest first, capped *)
}

let max_recorded_violations = 20

let audit ?(interval = 1) ?(soft_cap = 50_000) () =
  if interval <= 0 then invalid_arg "Machine.audit: interval must be positive";
  if soft_cap <= 0 then invalid_arg "Machine.audit: soft_cap must be positive";
  {
    a_interval = interval;
    a_soft_cap = soft_cap;
    a_budget = soft_cap;
    a_countdown = interval;
    a_checks = 0;
    a_nviolations = 0;
    a_violations = [];
  }

let audit_checks a = a.a_checks

let audit_violation_count a = a.a_nviolations

let audit_violations a = List.rev a.a_violations

let audit_ok a = a.a_nviolations = 0

let audit_fail a inv detail =
  a.a_nviolations <- a.a_nviolations + 1;
  if List.length a.a_violations < max_recorded_violations then
    a.a_violations <- (inv, detail) :: a.a_violations

type t = {
  cfg : Config.t;
  prog : Compile.compiled;
  t_counters : Counter.t;
  cache : Stack_cache.t;
  mutable current : Fiber.t;
  fibers_live : (int, Fiber.t) Hashtbl.t;
  mutable by_base : Fiber.t Imap.t;
  conts : cont Vec.t;
  mutable next_base : int;
  mutable next_id : int;
  cfun_impls : (ctx -> int array -> int) option array;
  (* Chunk free-list for the segmented and large-reserve policies: the
     backing arrays of stripped extension chunks, all of the policy's
     uniform size, recycled across fibers. *)
  mutable chunk_pool : int array list;
  mutable chunk_pool_len : int;
  mutable result : outcome option;
  mutable fuel : int;
  on_call : (t -> unit) option;
  on_step : (t -> unit) option;
  on_perform : (site:int -> eff:int -> handler:int -> unit) option;
  auditor : audit option;
  unhandled_id : int;
  invalid_arg_id : int;
  divzero_id : int;
  overflow_id : int;
}

and ctx = { machine : t; callback : string -> int array -> int }

type cfun = ctx -> int array -> int

let compiled t = t.prog

let config t = t.cfg

let counters t = t.t_counters

let current_fiber t = t.current

let fiber_by_id t id = Hashtbl.find_opt t.fibers_live id

let fatal msg = raise (Fatal_error msg)

let charge t n = Counter.add t.t_counters "instructions" n

let count t name = Counter.incr t.t_counters name

(* Eventlog emission.  Machine events are stamped with the cumulative
   instruction cost — the machine's own virtual clock — and every site
   guards with [Trace.on ()] so the disabled path is one branch: no
   event is built, no counter is touched, and the frozen cost tables
   stay bit-identical. *)
let emit_ev t ev = Trace.emit ~ts:(Counter.get t.t_counters "instructions") ev

let fiber_of_addr t addr =
  count t "addr_index_probe";
  match Imap.find_last_opt (fun b -> b <= addr) t.by_base with
  | Some (_, f) when Segment.contains f.Fiber.seg addr -> Some f
  | _ -> None

let read_mem t addr =
  match fiber_of_addr t addr with
  | Some f -> Segment.read f.Fiber.seg addr
  | None -> invalid_arg (Printf.sprintf "Machine.read_mem: unmapped address %d" addr)

let live_fiber_count t = Hashtbl.length t.fibers_live

(* ------------------------------------------------------------------ *)
(* Operand stack and memory helpers (always on the current fiber) *)

let rd f addr = Segment.read f.Fiber.seg addr

let wr f addr v = Segment.write f.Fiber.seg addr v

let push_op (f : Fiber.t) v = Vec.push f.ops v

let pop_op (f : Fiber.t) =
  if Vec.is_empty f.ops then fatal "operand stack underflow" else Vec.pop f.ops

(* ------------------------------------------------------------------ *)
(* Fiber allocation, preamble initialisation and growth *)

let mc_policy t =
  match t.cfg.kind with
  | Config.Stock -> Stack_policy.copy_double
  | Config.Mc -> t.cfg.Config.policy

(* Chunk free-list (segmented / large-reserve policies). *)

let take_chunk t ~words =
  match t.chunk_pool with
  | arr :: rest when Array.length arr = words ->
      t.chunk_pool <- rest;
      t.chunk_pool_len <- t.chunk_pool_len - 1;
      count t "chunk_pool_hit";
      Array.fill arr 0 words 0;
      arr
  | _ -> Array.make words 0

let put_chunk t arr =
  if t.chunk_pool_len < 1024 then begin
    t.chunk_pool <- arr :: t.chunk_pool;
    t.chunk_pool_len <- t.chunk_pool_len + 1
  end

let seg_create t ~size =
  let pol = mc_policy t in
  let seg =
    match pol.Stack_policy.pk with
    | Stack_policy.Copy_double -> Segment.create ~base:t.next_base ~size
    | Stack_policy.Segmented | Stack_policy.Large_reserve ->
        Segment.create_reserved ~base:t.next_base
          ~reserve:(max pol.Stack_policy.reserve_words size)
          ~committed:size
          ~ext_words:(Stack_policy.ext_words pol)
  in
  (* Leave a small unmapped gap between segments so that stray
     pointer arithmetic cannot silently cross into a neighbour. *)
  t.next_base <- t.next_base + Segment.reserve seg + 8;
  seg

let alloc_segment t ~size =
  if t.cfg.stack_cache then count t "stack_cache_lookup";
  match if t.cfg.stack_cache then Stack_cache.take t.cache ~size else None with
  | Some seg ->
      count t "stack_cache_hit";
      charge t Costs.fiber_alloc_cached;
      if Trace.on () then emit_ev t (Tev.Cache_hit { size });
      seg
  | None ->
      if t.cfg.stack_cache then begin
        count t "stack_cache_miss";
        if Trace.on () then emit_ev t (Tev.Cache_miss { size })
      end;
      count t "malloc";
      charge t Costs.fiber_alloc;
      seg_create t ~size

(* Lay out the Fig 3a preamble at the high end of the fiber and point
   the registers below it.  [bottom_trap] is the sentinel handler pc of
   the fiber's bottom trap frame: [Layout.trap_forward] for handler
   fibers, [Layout.main_uncaught] for the main stack. *)
let init_preamble t (f : Fiber.t) ~handler_index ~bottom_trap =
  let top = Segment.top f.seg in
  let parent_id = match f.parent with Some p -> p.Fiber.id | None -> -1 in
  wr f (top - 1) parent_id;
  wr f (top - 2) handler_index;
  wr f (top - 3) 0;
  wr f (top - 4) 0;
  (* context block *)
  wr f (top - 5) 0;
  wr f (top - 6) 0;
  (* bottom trap frame: [old exn_ptr = null; handler pc] *)
  let trap = top - 8 in
  wr f trap 0;
  wr f (trap + 1) bottom_trap;
  Vec.clear f.traps;
  Vec.push f.traps (trap, 0);
  f.regs.pc <- 0;
  f.regs.sp <- trap;
  f.regs.cfa <- trap;
  f.regs.fn <- -1;
  f.regs.exn_ptr <- trap;
  Vec.clear f.ops;
  Vec.clear f.shadow;
  ignore t

let register_fiber t f =
  Hashtbl.replace t.fibers_live f.Fiber.id f;
  t.by_base <- Imap.add (Segment.base f.Fiber.seg) f t.by_base

let new_fiber t ~parent ~handler ~handler_index ~bottom_trap ~size =
  let seg = alloc_segment t ~size in
  let f = Fiber.create ~id:t.next_id ~seg ~parent ~handler in
  t.next_id <- t.next_id + 1;
  init_preamble t f ~handler_index ~bottom_trap;
  register_fiber t f;
  if Trace.on () then
    emit_ev t
      (Tev.Fiber_create
         {
           id = f.Fiber.id;
           parent = (match parent with Some p -> p.Fiber.id | None -> -1);
           size;
         });
  f

let free_fiber t (f : Fiber.t) =
  if Trace.on () then emit_ev t (Tev.Fiber_free { id = f.Fiber.id });
  f.live <- false;
  Hashtbl.remove t.fibers_live f.id;
  t.by_base <- Imap.remove (Segment.base f.seg) t.by_base;
  count t "fiber_free";
  charge t Costs.fiber_free;
  match (mc_policy t).Stack_policy.pk with
  | Stack_policy.Copy_double ->
      if t.cfg.stack_cache then
        Stack_cache.put t.cache ~size:(Segment.size f.seg) f.seg
  | Stack_policy.Segmented | Stack_policy.Large_reserve ->
      (* Extension chunks go back to the free list; the stripped base
         segment is recyclable through the stack cache only when no
         multishot clone still shares its chunks. *)
      List.iter (put_chunk t) (Segment.strip f.seg);
      if Segment.fully_private f.seg then begin
        if t.cfg.stack_cache then
          Stack_cache.put t.cache ~size:(Segment.size f.seg) f.seg
      end
      else Segment.release f.seg

(* Grow the fiber by copying it into a segment of (at least) double the
   size, then rebase every stored stack address, including the trap
   chain threaded through the copied memory (§5.2: "the two fiber_info
   fields are the only ones that need to be updated when fibers are
   moved" — plus, in any faithful model, the saved exception pointers,
   which the real runtime also rewrites when reallocating a stack). *)
let grow t (f : Fiber.t) ~needed =
  let old_seg = f.seg in
  let old_size = Segment.size old_seg in
  let used = Segment.top old_seg - f.regs.sp in
  let rec pick size =
    if size - used - t.cfg.red_zone >= needed then size else pick (size * 2)
  in
  let new_size = pick (old_size * 2) in
  let new_seg = alloc_segment t ~size:new_size in
  Segment.blit_into ~src:old_seg ~dst:new_seg;
  count t "stack_grow";
  Counter.add t.t_counters "words_copied" old_size;
  charge t (Costs.grow_base + (Costs.grow_per_word * old_size));
  if Trace.on () then
    emit_ev t
      (Tev.Fiber_grow
         { id = f.Fiber.id; old_words = old_size; new_words = new_size;
           copied = old_size });
  let delta = Segment.top new_seg - Segment.top old_seg in
  f.seg <- new_seg;
  (* The fiber moved: invalidate its old interval and index the new one. *)
  t.by_base <-
    Imap.add (Segment.base new_seg) f (Imap.remove (Segment.base old_seg) t.by_base);
  Fiber.rebase f ~delta;
  (* Rebase the exception pointers saved inside the copied trap chain. *)
  let rec fix addr =
    if addr <> 0 then begin
      let old_ptr = rd f addr in
      if old_ptr <> 0 then begin
        wr f addr (old_ptr + delta);
        fix (old_ptr + delta)
      end
    end
  in
  fix f.regs.exn_ptr;
  if t.cfg.stack_cache then Stack_cache.put t.cache ~size:old_size old_seg

(* Every control transfer between fibers funnels through here so the
   switch counter and the eventlog cannot drift apart.  Callers that
   free or reparent must do so first: [t.current] is still the source
   fiber when this runs. *)
let switch_to t (f : Fiber.t) =
  if Trace.on () then
    emit_ev t
      (Tev.Fiber_switch { from_id = t.current.Fiber.id; to_id = f.Fiber.id });
  t.current <- f;
  count t "switch"

(* ------------------------------------------------------------------ *)
(* Calls *)

let raise_ref :
    (t -> int -> int -> unit) ref =
  ref (fun _ _ _ -> assert false)
(* machine_raise and emulate_call are mutually recursive with the
   overflow path; tied below. *)

(* In-place growth for the segmented and large-reserve policies: commit
   chunks below the live region until the frame (plus the red-zone
   scratch that callbacks and boundary traps rely on) fits.  No copy,
   no rebasing.  Returns false — after raising Stack_overflow — when
   the reservation is exhausted. *)
let grow_in_place t (f : Fiber.t) ~needed ~per_chunk =
  let seg = f.seg in
  let old_words = Segment.size seg in
  let fits () = f.regs.sp - needed >= Segment.limit seg + t.cfg.red_zone in
  let rec loop () =
    if fits () then true
    else if Segment.can_extend seg then begin
      per_chunk ();
      Segment.extend seg (take_chunk t ~words:(Segment.ext_words seg));
      loop ()
    end
    else begin
      (* The reservation's guard page: a real overflow. *)
      !raise_ref t t.overflow_id 0;
      false
    end
  in
  let ok = loop () in
  if ok && Trace.on () && Segment.size seg > old_words then
    emit_ev t
      (Tev.Fiber_grow
         {
           id = f.Fiber.id;
           old_words;
           new_words = Segment.size seg;
           copied = 0;
         });
  ok

let emulate_call t (f : Fiber.t) fid (args : int array) ~ra =
  let fn = t.prog.fns.(fid) in
  let needed = fn.frame_words in
  let ok =
    match t.cfg.kind with
    | Config.Stock ->
        if f.regs.sp - needed < Segment.limit f.seg then begin
          (* Guard page hit: stock OCaml raises Stack_overflow. *)
          !raise_ref t t.overflow_id 0;
          false
        end
        else true
    | Config.Mc -> (
        match t.cfg.Config.policy.Stack_policy.pk with
        | Stack_policy.Copy_double ->
            let checked = not (fn.is_leaf && needed <= t.cfg.red_zone) in
            (match t.auditor with
            | Some a
              when checked
                   <> Otss.needs_check ~red_zone:t.cfg.red_zone ~is_leaf:fn.is_leaf
                        ~frame_words:needed ->
                audit_fail a "red-zone-elision"
                  (Printf.sprintf
                     "%s: overflow check %s but Otss.needs_check says %b (leaf=%b, \
                      frame=%d, red_zone=%d)"
                     fn.fn_name
                     (if checked then "emitted" else "elided")
                     (not checked) fn.is_leaf needed t.cfg.red_zone)
            | _ -> ());
            if checked then begin
              count t "overflow_check";
              charge t Costs.check;
              if f.regs.sp - needed < Segment.limit f.seg + t.cfg.red_zone then
                grow t f ~needed
            end
            else count t "check_elided";
            if f.regs.sp - needed < Segment.limit f.seg then
              fatal (Printf.sprintf "red zone violated by %s" fn.fn_name);
            true
        | Stack_policy.Segmented ->
            (* Every call pays the boundary check; there is no red-zone
               elision to buy back (the libseff segmented trade-off). *)
            count t "segment_check";
            charge t Costs.segment_check;
            if f.regs.sp - needed < Segment.limit f.seg + t.cfg.red_zone then
              grow_in_place t f ~needed ~per_chunk:(fun () ->
                  count t "chunk_commit";
                  charge t Costs.chunk_commit)
            else true
        | Stack_policy.Large_reserve ->
            (* No prologue checks at all: the guard page is the check.
               Crossing the committed watermark is a modeled fault that
               commits pages in place. *)
            if f.regs.sp - needed < Segment.limit f.seg + t.cfg.red_zone then begin
              count t "page_fault";
              charge t Costs.page_fault;
              grow_in_place t f ~needed ~per_chunk:(fun () ->
                  count t "page_commit";
                  charge t Costs.page_commit)
            end
            else true)
  in
  if ok then begin
    count t "call";
    charge t Costs.call;
    let ra_addr = f.regs.sp - 1 in
    wr f ra_addr ra;
    Vec.push f.shadow
      {
        Fiber.sf_fn = fid;
        sf_ra = ra;
        sf_caller_cfa = f.regs.cfa;
        sf_caller_fn = f.regs.fn;
        sf_cfa = ra_addr + 1;
        sf_ops_base = Vec.length f.ops;
      };
    f.regs.cfa <- ra_addr + 1;
    f.regs.fn <- fid;
    f.regs.pc <- fn.entry;
    f.regs.sp <- ra_addr - fn.nlocals;
    Array.iteri (fun i v -> wr f (f.regs.cfa - 2 - i) v) args;
    match t.on_call with Some hook -> hook t | None -> ()
  end

(* ------------------------------------------------------------------ *)
(* Exceptions *)

let machine_raise t exn_id payload =
  count t "raise";
  charge t Costs.raise_;
  if Trace.on () then
    emit_ev t (Tev.Raise { exn = Compile.exn_name t.prog exn_id });
  let rec unwind () =
    let f = t.current in
    let a = f.Fiber.regs.exn_ptr in
    if a = 0 then fatal "exception with no trap frame";
    let old = rd f a and hpc = rd f (a + 1) in
    let maddr, mops = Vec.pop f.traps in
    if maddr <> a then fatal "trap mirror out of sync";
    f.regs.sp <- a + 2;
    f.regs.exn_ptr <- old;
    Vec.truncate f.ops mops;
    if hpc = Layout.trap_forward then begin
      (* Fiber bottom: forward the exception to the parent fiber,
         running the handler's exception case there if it matches. *)
      let p =
        match f.parent with
        | Some p -> p
        | None -> fatal "exception unwound past a captured fiber"
      in
      let h =
        match f.handler with
        | Some h -> h
        | None -> fatal "handler fiber without a handler"
      in
      free_fiber t f;
      switch_to t p;
      match Hashtbl.find_opt h.Compile.h_exn_tbl exn_id with
      | Some fid -> emulate_call t p fid [| payload |] ~ra:p.regs.pc
      | None -> unwind ()
    end
    else if hpc = Layout.c_trap then begin
      (* Callback boundary: pop the saved-pc context word too, then
         propagate to the C caller as a host exception. *)
      while (Vec.top f.shadow).Fiber.sf_cfa <= a do
        ignore (Vec.pop f.shadow)
      done;
      f.regs.sp <- a + 3;
      raise (Ocaml_exn (Compile.exn_name t.prog exn_id, payload))
    end
    else if hpc = Layout.main_uncaught then
      t.result <- Some (Uncaught (Compile.exn_name t.prog exn_id, payload))
    else begin
      (* Ordinary trap: unwind the shadow stack to the frame holding the
         trap and enter the handler code with [payload; id] pushed. *)
      while (Vec.top f.shadow).Fiber.sf_cfa <= a do
        ignore (Vec.pop f.shadow)
      done;
      let sf = Vec.top f.shadow in
      f.regs.cfa <- sf.Fiber.sf_cfa;
      f.regs.fn <- sf.Fiber.sf_fn;
      f.regs.pc <- hpc;
      push_op f payload;
      push_op f exn_id
    end
  in
  unwind ()

let () = raise_ref := machine_raise

let c_raise _t name payload = raise (Ocaml_exn (name, payload))

(* ------------------------------------------------------------------ *)
(* Fiber returns, effects, continuations *)

let fiber_return t result =
  let f = t.current in
  let p =
    match f.Fiber.parent with
    | Some p -> p
    | None -> fatal "fiber return without a parent"
  in
  let h =
    match f.handler with Some h -> h | None -> fatal "fiber return without a handler"
  in
  count t "fiber_return";
  charge t Costs.fiber_return;
  if Trace.on () then
    emit_ev t
      (Tev.Handler_pop
         { hidx = rd f (Segment.top f.Fiber.seg - 2); fiber = f.Fiber.id });
  free_fiber t f;
  switch_to t p;
  emulate_call t p h.Compile.h_retc [| result |] ~ra:p.regs.pc

let do_perform t eff_id =
  count t "perform";
  charge t Costs.perform;
  if Trace.on () then emit_ev t (Tev.Perform { eff = t.prog.eff_names.(eff_id) });
  (* [exec_instr] bumps pc before dispatching, so the PerformI site is
     one behind the current pc.  Captured here, before any switching. *)
  let site_pc = t.current.Fiber.regs.pc - 1 in
  let notify handler =
    match t.on_perform with
    | Some hook -> hook ~site:site_pc ~eff:eff_id ~handler
    | None -> ()
  in
  let v = pop_op t.current in
  let kid = Vec.length t.conts in
  let k = { fibers = Vec.create (); cont_live = true } in
  Vec.push t.conts k;
  (* parent pointers live both in the fiber record and in the
     handler_info word at the top of its stack (Fig 3a); the unwinder
     reads the latter, so both must move together *)
  let set_parent (f : Fiber.t) = function
    | Some (p : Fiber.t) ->
        f.Fiber.parent <- Some p;
        wr f (Segment.top f.Fiber.seg - 1) p.Fiber.id
    | None ->
        f.Fiber.parent <- None;
        wr f (Segment.top f.Fiber.seg - 1) (-1)
  in
  (* The chain tail is the most recently captured fiber: O(1) at the
     end of the Vec, so capture cost stays linear in reperform depth. *)
  let relink_last_to target =
    if not (Vec.is_empty k.fibers) then set_parent (Vec.top k.fibers) (Some target)
  in
  let rec hop (cur : Fiber.t) =
    match cur.handler with
    | None ->
        (* Handler-less boundary: the main stack or a callback.  The
           effect is unhandled; reinstate whatever was captured and
           raise Unhandled at the perform site (§3.2). *)
        if Vec.is_empty k.fibers then begin
          notify (-1);
          machine_raise t t.unhandled_id 0
        end
        else begin
          let first = Vec.get k.fibers 0 in
          relink_last_to cur;
          k.cont_live <- false;
          switch_to t first;
          notify (-1);
          machine_raise t t.unhandled_id 0
        end
    | Some h -> (
        count t "eff_tbl_probe";
        relink_last_to cur;
        Vec.push k.fibers cur;
        let p =
          match cur.parent with
          | Some p -> p
          | None -> fatal "handler fiber without a parent during perform"
        in
        set_parent cur None;
        match Hashtbl.find_opt h.Compile.h_eff_tbl eff_id with
        | Some fid ->
            notify (rd cur (Segment.top cur.Fiber.seg - 2));
            switch_to t p;
            emulate_call t p fid [| v; kid |] ~ra:p.regs.pc
        | None ->
            count t "reperform";
            charge t Costs.reperform;
            hop p)
  in
  hop t.current

let take_cont t kid =
  if kid < 0 || kid >= Vec.length t.conts then fatal "invalid continuation value";
  Vec.get t.conts kid

(* Deep-copy one captured fiber for multi-shot resumption (§5.2's
   semantics-faithful behaviour): a fresh segment with the same
   contents, rebased registers, shadow stack and trap mirror, and the
   in-memory trap chain rewritten — the same fixups as stack growth.

   The clone is policy-aware.  Copy-and-double clones eagerly through
   the stack cache.  The chunked policies rebuild the source's chunk
   shape (free-list chunks plus a cache-recycled base) and copy the
   committed words; with [cow_clone] the clone instead {e shares} the
   source's chunks and defers each chunk's copy to its first write
   ([chunk_cow]/[cow_words] count the deferred copies as they
   happen). *)
let copy_fiber t (f : Fiber.t) =
  let size = Segment.size f.seg in
  let pol = mc_policy t in
  let seg =
    match pol.Stack_policy.pk with
    | Stack_policy.Copy_double ->
        let seg = alloc_segment t ~size in
        Segment.blit_into ~src:f.seg ~dst:seg;
        Counter.add t.t_counters "words_copied" size;
        charge t (Costs.grow_per_word * size);
        seg
    | Stack_policy.Segmented when pol.Stack_policy.cow_clone ->
        let seg = Segment.share_clone f.seg ~base:t.next_base in
        t.next_base <- t.next_base + Segment.reserve seg + 8;
        count t "cont_share";
        charge t Costs.cow_share;
        Segment.set_notify_cow seg (fun words ->
            count t "chunk_cow";
            Counter.add t.t_counters "cow_words" words;
            charge t (Costs.cow_per_word * words));
        seg
    | Stack_policy.Segmented | Stack_policy.Large_reserve ->
        let ext = Segment.ext_words f.seg in
        let head = size - (Segment.ext_count f.seg * ext) in
        let seg = alloc_segment t ~size:head in
        let commit_counter, commit_cost =
          match pol.Stack_policy.pk with
          | Stack_policy.Large_reserve -> ("page_commit", Costs.page_commit)
          | _ -> ("chunk_commit", Costs.chunk_commit)
        in
        for _ = 1 to Segment.ext_count f.seg do
          count t commit_counter;
          charge t commit_cost;
          Segment.extend seg (take_chunk t ~words:ext)
        done;
        Segment.blit_into ~src:f.seg ~dst:seg;
        Counter.add t.t_counters "words_copied" size;
        charge t (Costs.grow_per_word * size);
        seg
  in
  let copy = Fiber.create ~id:t.next_id ~seg ~parent:None ~handler:f.handler in
  t.next_id <- t.next_id + 1;
  copy.regs.pc <- f.regs.pc;
  copy.regs.sp <- f.regs.sp;
  copy.regs.cfa <- f.regs.cfa;
  copy.regs.fn <- f.regs.fn;
  copy.regs.exn_ptr <- f.regs.exn_ptr;
  Vec.iter (push_op copy) f.ops;
  Vec.iter (Vec.push copy.shadow) f.shadow;
  Vec.iter (Vec.push copy.traps) f.traps;
  let delta = Segment.top seg - Segment.top f.seg in
  Fiber.rebase copy ~delta;
  let rec fix addr =
    if addr <> 0 then begin
      let old_ptr = rd copy addr in
      if old_ptr <> 0 then begin
        wr copy addr (old_ptr + delta);
        fix (old_ptr + delta)
      end
    end
  in
  fix copy.regs.exn_ptr;
  register_fiber t copy;
  copy

(* Copy a whole chain, re-linking parents (and the parent-id words in
   each copy's handler_info) within the copy. *)
let copy_chain t fibers =
  let copies = Vec.map (copy_fiber t) fibers in
  for i = 0 to Vec.length copies - 2 do
    let a = Vec.get copies i and b = Vec.get copies (i + 1) in
    a.Fiber.parent <- Some b;
    wr a (Segment.top a.Fiber.seg - 1) b.Fiber.id
  done;
  copies

let do_resume t ~raise_instead v kid =
  let k = take_cont t kid in
  if not k.cont_live then machine_raise t t.invalid_arg_id 0
  else begin
    count t "resume";
    charge t (Costs.resume + (Costs.resume_per_fiber * Vec.length k.fibers));
    if Trace.on () then begin
      match raise_instead with
      | None -> emit_ev t (Tev.Resume { kid; fibers = Vec.length k.fibers })
      | Some exn_id ->
          emit_ev t
            (Tev.Discontinue { kid; exn = Compile.exn_name t.prog exn_id })
    end;
    let fibers =
      if t.cfg.multishot then begin
        (* resuming copies the fibers and leaves the continuation as it
           is (§5.2, operational semantics) *)
        count t "cont_copy";
        copy_chain t k.fibers
      end
      else begin
        k.cont_live <- false;
        k.fibers
      end
    in
    if Vec.is_empty fibers then fatal "empty continuation";
    (* Both chain ends in O(1): the head is switched to, the tail is
       reparented onto the resumer. *)
    let first = Vec.get fibers 0 in
    let last = Vec.top fibers in
    last.Fiber.parent <- Some t.current;
    wr last (Segment.top last.Fiber.seg - 1) t.current.Fiber.id;
    switch_to t first;
    match raise_instead with
    | None -> push_op first v
    | Some exn_id -> machine_raise t exn_id v
  end

let do_handle t hidx =
  count t "handle";
  let spec = t.prog.handles.(hidx) in
  let args = Array.make spec.h_nargs 0 in
  for i = spec.h_nargs - 1 downto 0 do
    args.(i) <- pop_op t.current
  done;
  (* The variable area provides [initial_words] of checked headroom; the
     red zone sits below it so that unchecked leaf frames always fit. *)
  let size = Layout.preamble_words + t.cfg.initial_words + t.cfg.red_zone in
  let f =
    new_fiber t ~parent:(Some t.current) ~handler:(Some spec) ~handler_index:hidx
      ~bottom_trap:Layout.trap_forward ~size
  in
  count t "fiber_alloc";
  if Trace.on () then
    emit_ev t (Tev.Handler_push { hidx; fiber = f.Fiber.id });
  switch_to t f;
  emulate_call t f spec.h_body args ~ra:Layout.ret_to_parent

(* ------------------------------------------------------------------ *)
(* Traps *)

let push_trap t (f : Fiber.t) ~hpc =
  count t "pushtrap";
  charge t Costs.pushtrap;
  let a = f.regs.sp - 2 in
  wr f a f.regs.exn_ptr;
  wr f (a + 1) hpc;
  f.regs.sp <- a;
  f.regs.exn_ptr <- a;
  Vec.push f.traps (a, Vec.length f.ops)

let pop_trap t (f : Fiber.t) =
  count t "poptrap";
  charge t Costs.poptrap;
  let a = f.regs.exn_ptr in
  if a <> f.regs.sp then fatal "poptrap with a non-top trap";
  f.regs.exn_ptr <- rd f a;
  f.regs.sp <- a + 2;
  ignore (Vec.pop f.traps)

(* ------------------------------------------------------------------ *)
(* Runtime invariant auditing.

   With an auditor installed, the machine re-checks the structural
   invariants of §5 between steps: the Fig 3a handler_info words agree
   with the fiber records, register and trap-chain well-formedness, the
   base-address index covers exactly the live fibers, stack-cache
   entries are never aliased by a live stack, and live continuations
   form disjoint well-linked chains (one-shot linearity).  Violations
   are recorded, not fatal, so a conformance run can report them
   alongside outcome diffs. *)

let audit_fiber t a (f : Fiber.t) =
  let where = Printf.sprintf "fiber %d" f.Fiber.id in
  let top = Segment.top f.seg and base = Segment.base f.seg in
  if not f.live then audit_fail a "liveness" (where ^ " registered but marked dead");
  (* Fig 3a handler_info: parent-id word mirrors the parent pointer. *)
  let parent_word = rd f (top - 1) in
  let expect_parent = match f.parent with Some p -> p.Fiber.id | None -> -1 in
  if parent_word <> expect_parent then
    audit_fail a "layout-parent"
      (Printf.sprintf "%s: parent word %d but fiber record says %d" where
         parent_word expect_parent);
  (* Fig 3a handler_info: the handler word names the installed handler;
     -1 on the main stack.  A callback boundary blanks the record while
     its boundary trap is live, leaving the word in place. *)
  let has_c_trap = ref false in
  Vec.iter
    (fun (addr, _) -> if rd f (addr + 1) = Layout.c_trap then has_c_trap := true)
    f.traps;
  let handler_word = rd f (top - 2) in
  (match f.handler with
  | Some h ->
      if
        handler_word < 0
        || handler_word >= Array.length t.prog.handles
        || not (t.prog.handles.(handler_word) == h)
      then
        audit_fail a "layout-handler"
          (Printf.sprintf "%s: handler word %d does not name the installed handler"
             where handler_word)
  | None ->
      if handler_word <> -1 && not !has_c_trap then
        audit_fail a "layout-handler"
          (Printf.sprintf
             "%s: no handler installed but handler word is %d and no callback \
              boundary is live"
             where handler_word));
  (* Saved registers stay inside the segment, frame address above sp. *)
  if f.regs.sp < base || f.regs.sp > top then
    audit_fail a "layout-sp"
      (Printf.sprintf "%s: sp %d outside [%d, %d]" where f.regs.sp base top);
  if f.regs.cfa < f.regs.sp || f.regs.cfa > top then
    audit_fail a "layout-cfa"
      (Printf.sprintf "%s: cfa %d outside [sp=%d, %d]" where f.regs.cfa f.regs.sp top);
  (* The in-memory trap chain is strictly increasing, lies in the used
     region, and matches the mirror Vec trap for trap. *)
  let nmirror = Vec.length f.traps in
  let rec walk addr i =
    if addr = 0 then begin
      if i <> nmirror then
        audit_fail a "trap-chain"
          (Printf.sprintf "%s: chain has %d traps but mirror has %d" where i nmirror)
    end
    else if i >= nmirror then
      audit_fail a "trap-chain" (where ^ ": in-memory trap chain longer than mirror")
    else begin
      let maddr, _ = Vec.get f.traps (nmirror - 1 - i) in
      if maddr <> addr then
        audit_fail a "trap-chain"
          (Printf.sprintf "%s: trap %d at address %d but mirror says %d" where i addr
             maddr);
      if addr < f.regs.sp || addr + 1 >= top then
        audit_fail a "trap-chain"
          (Printf.sprintf "%s: trap address %d outside [sp=%d, top)" where addr
             f.regs.sp);
      let next = rd f addr in
      if next <> 0 && next <= addr then
        audit_fail a "trap-chain"
          (Printf.sprintf "%s: trap chain not strictly increasing at %d" where addr)
      else walk next (i + 1)
    end
  in
  walk f.regs.exn_ptr 0

let audit_index t a =
  let nlive = Hashtbl.length t.fibers_live in
  let nindexed = Imap.cardinal t.by_base in
  if nlive <> nindexed then
    audit_fail a "addr-index"
      (Printf.sprintf "%d live fibers but %d indexed bases" nlive nindexed);
  Hashtbl.iter
    (fun _ (f : Fiber.t) ->
      match Imap.find_opt (Segment.base f.seg) t.by_base with
      | Some g when g == f -> ()
      | _ ->
          audit_fail a "addr-index"
            (Printf.sprintf "fiber %d missing from the base index" f.id))
    t.fibers_live

let audit_cache t a =
  Stack_cache.iter t.cache (fun seg ->
      match Imap.find_opt (Segment.base seg) t.by_base with
      | Some f when f.Fiber.seg == seg ->
          audit_fail a "cache-alias"
            (Printf.sprintf "cached segment at base %d is fiber %d's live stack"
               (Segment.base seg) f.Fiber.id)
      | _ -> ())

let audit_conts t a =
  let owner = Hashtbl.create 16 in
  Vec.iteri
    (fun kid k ->
      if k.cont_live && not (Vec.is_empty k.fibers) then begin
        let n = Vec.length k.fibers in
        Vec.iteri
          (fun i (f : Fiber.t) ->
            (match Hashtbl.find_opt owner f.Fiber.id with
            | Some kid' ->
                audit_fail a "one-shot"
                  (Printf.sprintf "fiber %d captured by live continuations %d and %d"
                     f.id kid' kid)
            | None -> Hashtbl.add owner f.id kid);
            if not f.live then
              audit_fail a "one-shot"
                (Printf.sprintf "continuation %d holds dead fiber %d" kid f.id);
            if f == t.current then
              audit_fail a "one-shot"
                (Printf.sprintf "continuation %d holds the running fiber %d" kid f.id);
            (match Hashtbl.find_opt t.fibers_live f.id with
            | Some g when g == f -> ()
            | _ ->
                audit_fail a "one-shot"
                  (Printf.sprintf "continuation %d holds unregistered fiber %d" kid
                     f.id));
            let expected_parent =
              if i = n - 1 then None else Some (Vec.get k.fibers (i + 1))
            in
            match (f.parent, expected_parent) with
            | None, None -> ()
            | Some p, Some q when p == q -> ()
            | _ ->
                audit_fail a "cont-chain"
                  (Printf.sprintf "continuation %d: fiber %d parent link broken" kid
                     f.id))
          k.fibers
      end)
    t.conts

let audit_machine t a =
  a.a_checks <- a.a_checks + 1;
  (if t.current.Fiber.id >= 0 then
     match Hashtbl.find_opt t.fibers_live t.current.Fiber.id with
     | Some g when g == t.current -> ()
     | _ -> audit_fail a "liveness" "the running fiber is not registered live");
  audit_index t a;
  Hashtbl.iter (fun _ f -> audit_fiber t a f) t.fibers_live;
  audit_cache t a;
  audit_conts t a

(* Audited invariants hold between steps of a running machine; after
   the final step (result set) the unwinder legitimately leaves cfa
   pointing at the frame that raised, below the popped trap. *)
let audit_tick t =
  if t.result <> None then ()
  else
    match t.auditor with
    | None -> ()
    | Some a ->
      a.a_countdown <- a.a_countdown - 1;
      if a.a_countdown <= 0 then begin
        (* Each audit walks the whole machine, so per-step auditing of a
           fuel-bound pathological program would be quadratic.  After
           [soft_cap] checks the interval doubles, keeping total audit
           work logarithmic in the step count while still checking every
           step of ordinarily-sized runs. *)
        a.a_budget <- a.a_budget - 1;
        if a.a_budget <= 0 then begin
          a.a_interval <- a.a_interval * 2;
          a.a_budget <- a.a_soft_cap
        end;
        a.a_countdown <- a.a_interval;
        audit_machine t a
      end

(* ------------------------------------------------------------------ *)
(* Instruction dispatch *)

let binop t op a b =
  match (op : Ir.binop) with
  | Ir.Add -> Some (a + b)
  | Ir.Sub -> Some (a - b)
  | Ir.Mul -> Some (a * b)
  | Ir.Div ->
      if b = 0 then begin
        machine_raise t t.divzero_id a;
        None
      end
      else Some (a / b)
  | Ir.Mod ->
      if b = 0 then begin
        machine_raise t t.divzero_id a;
        None
      end
      else Some (a mod b)
  | Ir.Lt -> Some (if a < b then 1 else 0)
  | Ir.Le -> Some (if a <= b then 1 else 0)
  | Ir.Eq -> Some (if a = b then 1 else 0)
  | Ir.Ne -> Some (if a <> b then 1 else 0)

let require_mc t what =
  match t.cfg.kind with
  | Config.Mc -> ()
  | Config.Stock ->
      fatal (what ^ " is not supported by the stock runtime configuration")

let rec exec_instr t =
  if t.fuel <= 0 then fatal "out of fuel";
  t.fuel <- t.fuel - 1;
  count t "ops";
  let f = t.current in
  let pc = f.Fiber.regs.pc in
  if pc < 0 || pc >= Array.length t.prog.code then
    fatal (Printf.sprintf "pc %d outside code" pc);
  let instr = t.prog.code.(pc) in
  f.regs.pc <- pc + 1;
  match instr with
  | Ir.Const n ->
      charge t Costs.basic;
      push_op f n
  | Ir.Load i ->
      charge t Costs.basic;
      push_op f (rd f (f.regs.cfa - 2 - i))
  | Ir.Store i ->
      charge t Costs.basic;
      wr f (f.regs.cfa - 2 - i) (pop_op f)
  | Ir.Dup ->
      charge t Costs.basic;
      push_op f (Vec.top f.ops)
  | Ir.Pop ->
      charge t Costs.basic;
      ignore (pop_op f)
  | Ir.Bin op -> (
      charge t Costs.basic;
      let b = pop_op f in
      let a = pop_op f in
      match binop t op a b with Some r -> push_op f r | None -> ())
  | Ir.Jump a ->
      charge t Costs.basic;
      f.regs.pc <- a
  | Ir.JumpIfNot a ->
      charge t Costs.basic;
      if pop_op f = 0 then f.regs.pc <- a
  | Ir.CallI fid ->
      let fn = t.prog.fns.(fid) in
      let args = Array.make fn.nparams 0 in
      for i = fn.nparams - 1 downto 0 do
        args.(i) <- pop_op f
      done;
      emulate_call t f fid args ~ra:f.regs.pc
  | Ir.Ret -> (
      count t "ret";
      charge t Costs.ret;
      let result = pop_op f in
      let sf = Vec.pop f.shadow in
      Vec.truncate f.ops sf.Fiber.sf_ops_base;
      f.regs.sp <- sf.sf_cfa;
      f.regs.cfa <- sf.sf_caller_cfa;
      f.regs.fn <- sf.sf_caller_fn;
      let ra = sf.sf_ra in
      if ra = Layout.ret_to_parent then fiber_return t result
      else if ra = Layout.main_done then t.result <- Some (Done result)
      else if ra = Layout.cb_done then raise (Cb_return result)
      else begin
        f.regs.pc <- ra;
        push_op f result
      end)
  | Ir.PushtrapI target -> push_trap t f ~hpc:target
  | Ir.PoptrapI -> pop_trap t f
  | Ir.RaiseI id ->
      let payload = pop_op f in
      machine_raise t id payload
  | Ir.ReraiseI ->
      let id = pop_op f in
      let payload = pop_op f in
      machine_raise t id payload
  | Ir.PerformI eid ->
      require_mc t "perform";
      do_perform t eid
  | Ir.HandleI hidx ->
      require_mc t "an effect handler";
      do_handle t hidx
  | Ir.ContinueI ->
      require_mc t "continue";
      let v = pop_op f in
      let kid = pop_op f in
      do_resume t ~raise_instead:None v kid
  | Ir.DiscontinueI exn_id ->
      require_mc t "discontinue";
      let payload = pop_op f in
      let kid = pop_op f in
      do_resume t ~raise_instead:(Some exn_id) payload kid
  | Ir.ExtcallI (cid, nargs) -> (
      count t "extcall";
      charge t (Costs.extcall t.cfg + Costs.cfun_body);
      if Trace.on () then
        emit_ev t (Tev.Extcall_begin { name = t.prog.cfun_names.(cid) });
      let args = Array.make nargs 0 in
      for i = nargs - 1 downto 0 do
        args.(i) <- pop_op f
      done;
      match t.cfun_impls.(cid) with
      | None ->
          fatal
            (Printf.sprintf "unregistered C function %s" t.prog.cfun_names.(cid))
      | Some impl -> (
          let ctx = { machine = t; callback = run_callback t } in
          match impl ctx args with
          | v ->
              if Trace.on () then
                emit_ev t (Tev.Extcall_end { name = t.prog.cfun_names.(cid) });
              push_op t.current v
          | exception Ocaml_exn (name, payload) -> (
              if Trace.on () then
                emit_ev t (Tev.Extcall_end { name = t.prog.cfun_names.(cid) });
              match Compile.exn_id t.prog name with
              | id -> machine_raise t id payload
              | exception Not_found ->
                  fatal
                    (Printf.sprintf "C function raised unknown exception %s" name))))
  | Ir.Stop -> t.result <- Some (Done (pop_op f))

(* Run an OCaml function from C on the current fiber (§5.3): push a
   context word saving the pre-callback pc, a boundary trap, and blank
   out handler_info for the duration. *)
and run_callback t name args =
  let fid =
    match Hashtbl.find_opt t.prog.fn_ids name with
    | Some fid ->
        if t.prog.fns.(fid).nparams <> Array.length args then
          fatal (Printf.sprintf "callback arity mismatch for %s" name);
        fid
    | None -> fatal (Printf.sprintf "callback to unknown function %s" name)
  in
  count t "callback";
  charge t (Costs.callback t.cfg);
  if Trace.on () then emit_ev t (Tev.Callback_begin { name });
  let f = t.current in
  (* Save and blank the handler for the duration (§5.3): effects
     performed under the callback must not find it.  The parent pointer
     stays — backtraces cross callback boundaries (Fig 1d) — and is
     unreachable for control flow while the boundary trap is live. *)
  let saved_handler = f.Fiber.handler in
  (* context word: the pre-callback pc, for the unwinder *)
  wr f (f.regs.sp - 1) f.regs.pc;
  f.regs.sp <- f.regs.sp - 1;
  push_trap t f ~hpc:Layout.c_trap;
  f.handler <- None;
  let restore () = f.Fiber.handler <- saved_handler in
  emulate_call t f fid args ~ra:Layout.cb_done;
  let rec loop () =
    match t.result with
    | Some _ -> fatal "program terminated inside a callback"
    | None ->
        step t;
        loop ()
  in
  match loop () with
  | () -> assert false
  | exception Cb_return v ->
      (* Ret restored sp to the trap address; pop the boundary trap and
         the context word, resuming at the saved pre-callback pc. *)
      let a = f.Fiber.regs.exn_ptr in
      f.regs.exn_ptr <- rd f a;
      f.regs.pc <- rd f (a + 2);
      f.regs.sp <- a + 3;
      ignore (Vec.pop f.traps);
      restore ();
      if Trace.on () then emit_ev t (Tev.Callback_end { name });
      v
  | exception (Ocaml_exn _ as e) ->
      (* machine_raise already popped the trap and the context word *)
      restore ();
      if Trace.on () then emit_ev t (Tev.Callback_end { name });
      raise e

and step t =
  exec_instr t;
  (match t.on_step with Some hook -> hook t | None -> ());
  audit_tick t

(* ------------------------------------------------------------------ *)
(* Backtraces (ground truth) *)

(* Suspended continuations: every live continuation's fiber chain.
   This is what lets a server take "a backtrace snapshot of all current
   requests" (§6.3.4) — each suspended request is a fiber chain whose
   saved registers the unwinder can start from. *)
let live_continuations t =
  let out = ref [] in
  Vec.iteri
    (fun kid k ->
      if k.cont_live && not (Vec.is_empty k.fibers) then
        out := (kid, Vec.to_list k.fibers) :: !out)
    t.conts;
  List.rev !out

let shadow_backtrace t =
  let out = ref [] in
  let emit s = out := s :: !out in
  let fn_name i = if i >= 0 then t.prog.fns.(i).fn_name else "?" in
  let rec walk_fiber (f : Fiber.t) idx =
    if idx < 0 then ()
    else begin
      let sf = Vec.get f.shadow idx in
      emit (fn_name sf.Fiber.sf_fn);
      if sf.sf_ra = Layout.ret_to_parent then begin
        match f.parent with
        | Some p -> walk_fiber p (Vec.length p.Fiber.shadow - 1)
        | None -> emit "<captured>"
      end
      else if sf.sf_ra = Layout.cb_done then begin
        emit "<C>";
        walk_fiber f (idx - 1)
      end
      else if sf.sf_ra = Layout.main_done then emit "<main>"
      else walk_fiber f (idx - 1)
    end
  in
  let f = t.current in
  walk_fiber f (Vec.length f.Fiber.shadow - 1);
  List.rev !out

(* ------------------------------------------------------------------ *)
(* Driver *)

let run ?cache ?(cfuns = []) ?on_call ?on_step ?on_perform ?audit
    ?(fuel = 200_000_000) cfg prog =
  let counters = Counter.create () in
  let cache = match cache with Some c -> c | None -> Stack_cache.create () in
  let cfun_impls =
    Array.map
      (fun name -> List.assoc_opt name cfuns)
      prog.Compile.cfun_names
  in
  let dummy_seg = Segment.create ~base:0 ~size:1 in
  let dummy = Fiber.create ~id:(-1) ~seg:dummy_seg ~parent:None ~handler:None in
  let t =
    {
      cfg;
      prog;
      t_counters = counters;
      cache;
      current = dummy;
      fibers_live = Hashtbl.create 64;
      by_base = Imap.empty;
      conts = Vec.create ();
      next_base = 16;
      next_id = 0;
      cfun_impls;
      chunk_pool = [];
      chunk_pool_len = 0;
      result = None;
      fuel;
      on_call;
      on_step;
      on_perform;
      auditor = audit;
      unhandled_id = Compile.exn_id prog Compile.unhandled_exn;
      invalid_arg_id = Compile.exn_id prog Compile.invalid_argument_exn;
      divzero_id = Compile.exn_id prog Compile.division_by_zero_exn;
      overflow_id = Compile.exn_id prog Compile.stack_overflow_exn;
    }
  in
  let main_size =
    match cfg.kind with
    | Config.Stock -> cfg.stock_stack_words
    | Config.Mc -> Layout.preamble_words + cfg.initial_words + cfg.red_zone
  in
  let main =
    new_fiber t ~parent:None ~handler:None ~handler_index:(-1)
      ~bottom_trap:Layout.main_uncaught ~size:main_size
  in
  t.current <- main;
  let outcome =
    match
      emulate_call t main prog.main_index [||] ~ra:Layout.main_done;
      while t.result = None do
        step t
      done
    with
    | () -> ( match t.result with Some r -> r | None -> Fatal "no result")
    | exception Fatal_error msg -> Fatal msg
    | exception Cb_return _ -> Fatal "callback return outside a callback"
    | exception Ocaml_exn (name, payload) -> Uncaught (name, payload)
  in
  (outcome, counters)
