(** A word-addressed stack segment.

    Segments live in a flat virtual address space: each owns the
    reservation [\[base, top)] assigned at allocation time, of which
    the {e committed} suffix [\[limit, top)] is readable and writable.
    Stack pointers and exception pointers are plain addresses in this
    space, so moving a fiber to a bigger segment changes the addresses
    of its contents — exactly the situation the runtime handles when
    growing a stack by copying (§5.2).

    Under the default copy-and-double policy a segment is {e flat}:
    fully committed, [limit = base], one backing array — byte-for-byte
    the original representation.  The segmented and large-reserve
    policies commit lazily: the head chunk covers the top of the
    reservation and growth {!extend}s the committed region downwards in
    uniform [ext_words]-sized chunks, in place, with no copying and no
    address changes.  Committed chunks are reference-counted so a
    multishot clone can {!share_clone} them and copy only on first
    write. *)

type t

val create : base:int -> size:int -> t
(** A flat, fully committed segment: [limit = base], not extensible. *)

val create_reserved :
  base:int -> reserve:int -> committed:int -> ext_words:int -> t
(** A [reserve]-word reservation with the top [committed] words backed;
    growth commits further [ext_words]-sized chunks downwards via
    {!extend}.  @raise Invalid_argument if [committed] is non-positive
    or exceeds [reserve]. *)

val base : t -> int
(** The reservation floor — the segment's identity in the machine's
    base-address index; committed memory may not reach down to it. *)

val top : t -> int
(** One past the highest address, i.e. the initial stack pointer of an
    empty stack. *)

val limit : t -> int
(** Lowest committed (usable) address.  Equal to [base] for flat
    segments; moves down as chunks are committed. *)

val size : t -> int
(** Committed words, [top - limit].  This is the growth/copy cost unit
    and the stack-cache bucket key. *)

val reserve : t -> int
(** Total reservation, [top - base]. *)

val ext_words : t -> int

val ext_count : t -> int
(** Number of committed extension chunks (0 for flat segments). *)

val is_flat : t -> bool

val contains : t -> int -> bool
(** Whether the address is committed: in [\[limit, top)]. *)

val read : t -> int -> int
(** @raise Invalid_argument when the address is outside the committed
    region. *)

val write : t -> int -> int -> unit
(** @raise Invalid_argument when the address is outside the committed
    region.  Writing to a chunk shared with a clone first copies it
    (copy-on-write), reporting the copied word count through the
    {!set_notify_cow} hook. *)

val can_extend : t -> bool
(** Whether another [ext_words] chunk fits above the reservation
    floor. *)

val extend : t -> int array -> unit
(** Commit one more chunk (the array becomes its backing store; must
    have length [ext_words]).  @raise Invalid_argument if the segment
    is not extensible, the array has the wrong size, or the reservation
    is exhausted. *)

val strip : t -> int array list
(** Detach every extension chunk, restoring [limit] to the head chunk's
    floor.  Returns the backing arrays of the chunks this segment owned
    exclusively — the chunk free-list feedstock; chunks still shared
    with a clone are released (refcount decremented) but not
    returned. *)

val fully_private : t -> bool
(** No chunk is shared with a clone — the condition for recycling the
    segment through the stack cache. *)

val release : t -> unit
(** Drop this segment's ownership of every chunk without recycling
    anything; used when a shared segment dies. *)

val share_clone : t -> base:int -> t
(** A clone at a fresh base sharing every committed chunk with [t]
    (refcounts incremented).  Reads see the shared words; the first
    write to a chunk from either side copies it. *)

val set_notify_cow : t -> (int -> unit) -> unit
(** Install the copy-on-write observer: called with the chunk's word
    count each time a shared chunk is privatized by a write to this
    segment. *)

val zero : t -> unit
(** Clear every committed word to 0.  Freed stacks are zeroed before
    reuse so a recycled segment cannot leak a previous fiber's frames
    or handler_info into its next occupant.  Only safe on fully
    private segments. *)

val blit_into : src:t -> dst:t -> unit
(** Copy the committed contents of [src] into the {e high} end of
    [dst], preserving distance-from-top; used when growing a stack by
    copying and when cloning eagerly.  Flat-to-flat copies take the
    [Array.blit] fast path.  @raise Invalid_argument if [dst]'s
    committed region is smaller than [src]'s. *)
