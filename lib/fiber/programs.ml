open Ir

let prog fns main = { fns; main }

let id_fn name = fn name [ "v" ] (Var "v")

(* ------------------------------------------------------------------ *)
(* Recursive micro benchmarks (Table 1 / Table 2 workloads) *)

let ack ~m ~n =
  prog
    [
      fn "ack" [ "m"; "n" ]
        (If
           ( Binop (Eq, Var "m", Int 0),
             Binop (Add, Var "n", Int 1),
             If
               ( Binop (Eq, Var "n", Int 0),
                 Call ("ack", [ Binop (Sub, Var "m", Int 1); Int 1 ]),
                 Call
                   ( "ack",
                     [
                       Binop (Sub, Var "m", Int 1);
                       Call ("ack", [ Var "m"; Binop (Sub, Var "n", Int 1) ]);
                     ] ) ) ));
      fn "main" [] (Call ("ack", [ Int m; Int n ]));
    ]
    "main"

let fib ~n =
  prog
    [
      fn "fib" [ "n" ]
        (If
           ( Binop (Lt, Var "n", Int 2),
             Var "n",
             Binop
               ( Add,
                 Call ("fib", [ Binop (Sub, Var "n", Int 1) ]),
                 Call ("fib", [ Binop (Sub, Var "n", Int 2) ]) ) ));
      fn "main" [] (Call ("fib", [ Int n ]));
    ]
    "main"

let tak ~x ~y ~z =
  prog
    [
      fn "tak" [ "x"; "y"; "z" ]
        (If
           ( Binop (Lt, Var "y", Var "x"),
             Call
               ( "tak",
                 [
                   Call ("tak", [ Binop (Sub, Var "x", Int 1); Var "y"; Var "z" ]);
                   Call ("tak", [ Binop (Sub, Var "y", Int 1); Var "z"; Var "x" ]);
                   Call ("tak", [ Binop (Sub, Var "z", Int 1); Var "x"; Var "y" ]);
                 ] ),
             Var "z" ));
      fn "main" [] (Call ("tak", [ Int x; Int y; Int z ]));
    ]
    "main"

let motzkin ~n =
  prog
    [
      fn "moz" [ "n" ]
        (If
           ( Binop (Lt, Var "n", Int 2),
             Int 1,
             Binop
               ( Add,
                 Call ("moz", [ Binop (Sub, Var "n", Int 1) ]),
                 Call ("moz_sum", [ Var "n"; Int 0 ]) ) ));
      fn "moz_sum" [ "n"; "i" ]
        (If
           ( Binop (Le, Var "i", Binop (Sub, Var "n", Int 2)),
             Binop
               ( Add,
                 Binop
                   ( Mul,
                     Call ("moz", [ Var "i" ]),
                     Call
                       ("moz", [ Binop (Sub, Binop (Sub, Var "n", Int 2), Var "i") ])
                   ),
                 Call ("moz_sum", [ Var "n"; Binop (Add, Var "i", Int 1) ]) ),
             Int 0 ));
      fn "main" [] (Call ("moz", [ Int n ]));
    ]
    "main"

let sudan ?(iters = 1) ~n ~x ~y () =
  prog
    [
      fn "sudan" [ "n"; "x"; "y" ]
        (If
           ( Binop (Eq, Var "n", Int 0),
             Binop (Add, Var "x", Var "y"),
             If
               ( Binop (Eq, Var "y", Int 0),
                 Var "x",
                 Let
                   ( "s",
                     Call ("sudan", [ Var "n"; Var "x"; Binop (Sub, Var "y", Int 1) ]),
                     Call
                       ( "sudan",
                         [
                           Binop (Sub, Var "n", Int 1);
                           Var "s";
                           Binop (Add, Var "s", Var "y");
                         ] ) ) ) ));
      fn "main" []
        (if iters = 1 then Call ("sudan", [ Int n; Int x; Int y ])
         else Repeat (Int iters, Call ("sudan", [ Int n; Int x; Int y ])));
    ]
    "main"

(* ------------------------------------------------------------------ *)
(* Exception / external-call loops *)

let exnval ~iters =
  prog
    [
      fn "main" []
        (Repeat (Int iters, Trywith (Int 1, [ ("E", "x", Int 0) ])));
    ]
    "main"

let exnraise ~iters =
  prog
    [
      fn "main" []
        (Repeat (Int iters, Trywith (Raise ("E", Int 1), [ ("E", "x", Var "x") ])));
    ]
    "main"

let extcall ~iters =
  prog
    [ fn "main" [] (Repeat (Int iters, Extcall ("c_id", [ Int 7 ]))) ]
    "main"

let callback ~iters =
  prog
    [
      id_fn "ocaml_id";
      fn "main" [] (Repeat (Int iters, Extcall ("c_cb", [ Int 7 ])));
    ]
    "main"

(* ------------------------------------------------------------------ *)
(* Fig 1: the meander program *)

let meander =
  prog
    [
      fn "c_to_ocaml" [ "u" ] (Raise ("E1", Int 0));
      fn "omain" [ "u" ]
        (Trywith
           ( Trywith (Extcall ("ocaml_to_c", [ Int 0 ]), [ ("E2", "x", Int 0) ]),
             [ ("E1", "x", Int 42) ] ));
      fn "main" [] (Call ("omain", [ Int 0 ]));
    ]
    "main"

(* ------------------------------------------------------------------ *)
(* Effect handler exercises *)

let effect_roundtrip ~iters =
  prog
    [
      fn "rt_body" [ "u" ] (Perform ("E", Var "u"));
      id_fn "rt_ret";
      fn "rt_eff" [ "x"; "k" ] (Continue (Var "k", Int 0));
      fn "main" []
        (Repeat
           ( Int iters,
             Handle
               {
                 body_fn = "rt_body";
                 body_args = [ Int 1 ];
                 retc = "rt_ret";
                 exncs = [];
                 effcs = [ ("E", "rt_eff") ];
               } ));
    ]
    "main"

(* Perform through [depth] handlers that do not handle E; only the
   outermost one does.  Builds the reperform chain of §5.4. *)
let effect_depth ~depth ~iters =
  prog
    [
      fn "ed_perform" [ "u" ] (Perform ("E", Var "u"));
      fn "ed_nest" [ "d" ]
        (If
           ( Binop (Eq, Var "d", Int 0),
             Call ("ed_perform", [ Int 5 ]),
             Handle
               {
                 body_fn = "ed_nest";
                 body_args = [ Binop (Sub, Var "d", Int 1) ];
                 retc = "ed_ret";
                 exncs = [];
                 effcs = [ ("F", "ed_other") ];
               } ));
      id_fn "ed_ret";
      fn "ed_other" [ "x"; "k" ] (Continue (Var "k", Int 0));
      fn "ed_eff" [ "x"; "k" ] (Continue (Var "k", Binop (Mul, Var "x", Int 2)));
      fn "main" []
        (Repeat
           ( Int iters,
             Handle
               {
                 body_fn = "ed_nest";
                 body_args = [ Int depth ];
                 retc = "ed_ret";
                 exncs = [];
                 effcs = [ ("E", "ed_eff") ];
               } ));
    ]
    "main"

let counter_effect ~upto =
  prog
    [
      fn "cy_body" [ "i" ]
        (If
           ( Binop (Eq, Var "i", Int 0),
             Int 0,
             Binop
               ( Add,
                 Perform ("Tick", Var "i"),
                 Call ("cy_body", [ Binop (Sub, Var "i", Int 1) ]) ) ));
      id_fn "cy_ret";
      fn "cy_eff" [ "x"; "k" ] (Binop (Add, Var "x", Continue (Var "k", Int 0)));
      fn "main" []
        (Handle
           {
             body_fn = "cy_body";
             body_args = [ Int upto ];
             retc = "cy_ret";
             exncs = [];
             effcs = [ ("Tick", "cy_eff") ];
           });
    ]
    "main"

let one_shot_violation =
  prog
    [
      fn "ov_body" [ "u" ] (Perform ("E", Var "u"));
      id_fn "ov_ret";
      fn "ov_eff" [ "x"; "k" ]
        (Seq (Continue (Var "k", Int 1), Continue (Var "k", Int 2)));
      fn "main" []
        (Handle
           {
             body_fn = "ov_body";
             body_args = [ Int 0 ];
             retc = "ov_ret";
             exncs = [];
             effcs = [ ("E", "ov_eff") ];
           });
    ]
    "main"

let unhandled_effect =
  prog [ fn "main" [] (Perform ("Nope", Int 0)) ] "main"

let discontinue_cleanup =
  prog
    [
      fn "dc_body" [ "u" ]
        (Trywith
           (Perform ("Ask", Int 0), [ ("Cancel", "x", Binop (Add, Var "x", Int 1)) ]));
      id_fn "dc_ret";
      fn "dc_eff" [ "x"; "k" ] (Discontinue (Var "k", "Cancel", Int 41));
      fn "main" []
        (Handle
           {
             body_fn = "dc_body";
             body_args = [ Int 0 ];
             retc = "dc_ret";
             exncs = [];
             effcs = [ ("Ask", "dc_eff") ];
           });
    ]
    "main"

let deep_recursion ~depth =
  prog
    [
      fn "dr_rec" [ "n" ]
        (If
           ( Binop (Eq, Var "n", Int 0),
             Int 0,
             Binop (Add, Int 1, Call ("dr_rec", [ Binop (Sub, Var "n", Int 1) ])) ));
      id_fn "dr_ret";
      fn "main" []
        (Handle
           {
             body_fn = "dr_rec";
             body_args = [ Int depth ];
             retc = "dr_ret";
             exncs = [];
             effcs = [];
           });
    ]
    "main"

let effect_in_callback =
  prog
    [
      fn "c_to_ocaml" [ "u" ] (Perform ("E", Var "u"));
      fn "thru" [ "u" ] (Extcall ("ocaml_to_c", [ Var "u" ]));
      id_fn "ec_ret";
      fn "ec_eff" [ "x"; "k" ] (Continue (Var "k", Int 1));
      fn "main" []
        (Trywith
           ( Handle
               {
                 body_fn = "thru";
                 body_args = [ Int 0 ];
                 retc = "ec_ret";
                 exncs = [];
                 effcs = [ ("E", "ec_eff") ];
               },
             [ ("Unhandled", "x", Int 7) ] ));
    ]
    "main"

(* ------------------------------------------------------------------ *)
(* C function implementations *)

let c_identity = ("c_id", fun _ctx args -> args.(0))

let c_callback_impl =
  ("c_cb", fun ctx args -> ctx.Machine.callback "ocaml_id" [| args.(0) |])

let c_meander_impl =
  ( "ocaml_to_c",
    fun ctx args ->
      ignore (ctx.Machine.callback "c_to_ocaml" [| args.(0) |]);
      0 )

let standard_cfuns = [ c_identity; c_callback_impl; c_meander_impl ]

(* Resume a continuation from inside a *different* fiber than the one
   whose handler captured it: the resumer fiber becomes the new parent,
   which the unwinder must observe (the handler_info parent word is
   rewritten at resume). *)
let cross_resume =
  prog
    [
      fn "cr_body" [ "u" ] (Binop (Add, Perform ("E", Var "u"), Int 1));
      id_fn "cr_ret";
      fn "cr_resumer" [ "k" ] (Continue (Var "k", Int 41));
      fn "cr_eff" [ "x"; "k" ]
        (Handle
           {
             body_fn = "cr_resumer";
             body_args = [ Var "k" ];
             retc = "cr_ret";
             exncs = [];
             effcs = [];
           });
      fn "main" []
        (Handle
           {
             body_fn = "cr_body";
             body_args = [ Int 0 ];
             retc = "cr_ret";
             exncs = [];
             effcs = [ ("E", "cr_eff") ];
           });
    ]
    "main"

(* The multi-shot choice program: resuming one continuation twice.
   One-shot configurations end with Invalid_argument; with
   Config.multishot the copying semantics of §4 applies and the result
   is 10*1 + 10*2 = 30, exactly as the operational semantics gives. *)
let multishot_choice =
  prog
    [
      fn "ms_body" [ "u" ] (Binop (Mul, Int 10, Perform ("Choice", Var "u")));
      id_fn "ms_ret";
      fn "ms_eff" [ "x"; "k" ]
        (Binop (Add, Continue (Var "k", Int 1), Continue (Var "k", Int 2)));
      fn "main" []
        (Handle
           {
             body_fn = "ms_body";
             body_args = [ Int 0 ];
             retc = "ms_ret";
             exncs = [];
             effcs = [ ("Choice", "ms_eff") ];
           });
    ]
    "main"

(* Backtracking n-queens over a Pick effect: the handler resumes each
   captured continuation once per column, so one capture fans out into
   n clone executions and the handle's result is the solution count.
   The canonical multishot workload — every clone mutates its own
   stack, so any sharing bug between siblings corrupts the count. *)
let nqueens ~n =
  let v x = Var x in
  let i k = Int k in
  let add a b = Binop (Add, a, b) in
  let sub a b = Binop (Sub, a, b) in
  prog
    [
      fn "nq_pow2" [ "c" ]
        (If
           ( Binop (Eq, v "c", i 0),
             i 1,
             Binop (Mul, i 2, Call ("nq_pow2", [ sub (v "c") (i 1) ])) ));
      (* bit i of mask m, as 0/1 *)
      fn "nq_bit" [ "m"; "i" ]
        (Binop (Mod, Binop (Div, v "m", Call ("nq_pow2", [ v "i" ])), i 2));
      (* resume k with every column in [c, n): each Continue runs a
         fresh clone; their solution counts sum *)
      fn "nq_try" [ "k"; "c"; "n" ]
        (If
           ( Binop (Eq, v "c", v "n"),
             i 0,
             add
               (Continue (v "k", v "c"))
               (Call ("nq_try", [ v "k"; add (v "c") (i 1); v "n" ])) ));
      fn "nq_eff" [ "x"; "k" ] (Call ("nq_try", [ v "k"; i 0; v "x" ]));
      (* cols/d1/d2 are attack bitmasks; d1 is indexed by r+c, d2 by
         r-c+n-1 so both stay non-negative *)
      fn "nq_solve" [ "r"; "n"; "cols"; "d1"; "d2" ]
        (If
           ( Binop (Eq, v "r", v "n"),
             i 1,
             Let
               ( "c",
                 Perform ("Pick", v "n"),
                 Let
                   ( "dd1",
                     add (v "r") (v "c"),
                     Let
                       ( "dd2",
                         add (sub (v "r") (v "c")) (sub (v "n") (i 1)),
                         If
                           ( Binop
                               ( Eq,
                                 add
                                   (Call ("nq_bit", [ v "cols"; v "c" ]))
                                   (add
                                      (Call ("nq_bit", [ v "d1"; v "dd1" ]))
                                      (Call ("nq_bit", [ v "d2"; v "dd2" ]))),
                                 i 0 ),
                             Call
                               ( "nq_solve",
                                 [
                                   add (v "r") (i 1);
                                   v "n";
                                   add (v "cols") (Call ("nq_pow2", [ v "c" ]));
                                   add (v "d1") (Call ("nq_pow2", [ v "dd1" ]));
                                   add (v "d2") (Call ("nq_pow2", [ v "dd2" ]));
                                 ] ),
                             i 0 ) ) ) ) ));
      fn "nq_body" [ "n" ]
        (Call ("nq_solve", [ i 0; v "n"; i 0; i 0; i 0 ]));
      id_fn "nq_ret";
      fn "main" []
        (Handle
           {
             body_fn = "nq_body";
             body_args = [ i n ];
             retc = "nq_ret";
             exncs = [];
             effcs = [ ("Pick", "nq_eff") ];
           });
    ]
    "main"

(* N requests park on a Wait effect (the handler keeps the continuation
   without resuming), then a C call inspects the machine — the setting
   for §6.3.4's "backtrace snapshot of all current requests". *)
let suspended_requests ~n =
  prog
    [
      fn "req_inner" [ "u" ] (Perform ("Wait", Var "u"));
      fn "req_body" [ "u" ] (Binop (Add, Call ("req_inner", [ Var "u" ]), Int 1));
      id_fn "sr_ret";
      fn "sr_eff" [ "x"; "k" ] (Int 0);
      fn "main" []
        (Seq
           ( Repeat
               ( Int n,
                 Handle
                   {
                     body_fn = "req_body";
                     body_args = [ Int 0 ];
                     retc = "sr_ret";
                     exncs = [];
                     effcs = [ ("Wait", "sr_eff") ];
                   } ),
             Extcall ("list_pending", []) ));
    ]
    "main"
