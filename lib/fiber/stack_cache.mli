(** Cache of recently freed fiber stacks (§5.2).

    Fibers are malloc-allocated and freed when the handled computation
    returns; a cache of freed stacks, bucketed by size, turns most
    allocations into a pop.  The machine's [stack_cache_hit] versus
    [stack_cache_miss] counters quantify the benefit (one of the
    DESIGN.md ablations).

    Every operation is O(1): buckets carry their own element count (no
    list traversal on [put]) and the cache tracks its aggregate size, so
    both the per-bucket bound and the total-words bound are constant-time
    admission checks. *)

type t

val create : ?max_per_bucket:int -> ?max_total_words:int -> unit -> t
(** [max_per_bucket] (default 64) bounds retained stacks per size;
    [0] degrades the cache to a pass-through that retains nothing.
    [max_total_words] (default unlimited) bounds the aggregate retained
    words across all buckets. *)

val put : t -> size:int -> Segment.t -> unit
(** Offer a freed segment to the cache; dropped if its bucket is full or
    retaining it would exceed [max_total_words].  O(1). *)

val take : t -> size:int -> Segment.t option
(** A cached segment of exactly [size] words, if any, zeroed before it
    is handed out so no words from its previous life (frames, trap
    records, handler_info) survive into the new fiber.  O(size) on a
    hit for the zeroing pass, O(1) otherwise. *)

val iter : t -> (Segment.t -> unit) -> unit
(** Visit every cached segment; used by [Machine.audit] to assert that
    no retained segment is aliased by a live fiber. *)

val population : t -> int
(** Number of segments currently held.  O(1). *)

val total_words : t -> int
(** Aggregate words currently retained.  O(1). *)

(** {2 Per-instance statistics}

    Lifetime event counts owned by the cache instance (not by any
    machine), so they can be read, windowed and reset independently of
    the frozen machine counters.  A cache shared by several experiment
    runs in one process must be read through [scoped_stats] (or reset
    between runs): the counters otherwise accumulate across runs. *)

type stats = {
  lookups : int;  (** [take] calls *)
  hits : int;  (** takes that returned a segment *)
  misses : int;  (** takes that found the bucket empty *)
  puts : int;  (** offers the cache retained *)
  rejected : int;  (** offers dropped by a capacity bound *)
}

val zero_stats : stats

val stats : t -> stats

val reset_stats : t -> unit
(** Zero the statistics (the cached segments are untouched). *)

val diff_stats : stats -> stats -> stats
(** Componentwise [a - b]. *)

val scoped_stats : t -> (unit -> 'a) -> 'a * stats
(** Run the thunk and return the statistics delta it produced — the
    seam that keeps back-to-back experiments' stats independent. *)

val clear : t -> unit
