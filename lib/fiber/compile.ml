type cfn = {
  fn_index : int;
  fn_name : string;
  entry : int;
  code_end : int;
  nparams : int;
  nlocals : int;
  max_traps : int;
  frame_words : int;
  is_leaf : bool;
  max_ostack : int;
  cfi_edits : (int * int) list;
}

type handle_desc = {
  h_body : int;
  h_nargs : int;
  h_retc : int;
  h_exncs : (int * int) list;
  h_effcs : (int * int) list;
  h_exn_tbl : (int, int) Hashtbl.t;
  h_eff_tbl : (int, int) Hashtbl.t;
}

type compiled = {
  code : Ir.instr array;
  fns : cfn array;
  handles : handle_desc array;
  exn_names : string array;
  eff_names : string array;
  cfun_names : string array;
  fn_ids : (string, int) Hashtbl.t;
  exn_ids : (string, int) Hashtbl.t;
  eff_ids : (string, int) Hashtbl.t;
  main_index : int;
}

exception Error of string

let error fmt = Printf.ksprintf (fun msg -> raise (Error msg)) fmt

let unhandled_exn = "Unhandled"

let invalid_argument_exn = "Invalid_argument"

let division_by_zero_exn = "Division_by_zero"

let stack_overflow_exn = "Stack_overflow"

(* ------------------------------------------------------------------ *)
(* Interning *)

type 'a interner = { table : (string, int) Hashtbl.t; mutable items : string list }

let interner () = { table = Hashtbl.create 16; items = [] }

let intern t name =
  match Hashtbl.find_opt t.table name with
  | Some i -> i
  | None ->
      let i = Hashtbl.length t.table in
      Hashtbl.add t.table name i;
      t.items <- name :: t.items;
      i

let interned t = Array.of_list (List.rev t.items)

(* Dispatch table for a handler's (id → function) cases.  [List.assoc]
   takes the first binding for a duplicated id, so the table must too. *)
let dispatch_tbl assoc =
  let tbl = Hashtbl.create (max 4 (List.length assoc)) in
  List.iter
    (fun (id, fid) -> if not (Hashtbl.mem tbl id) then Hashtbl.add tbl id fid)
    assoc;
  tbl

(* ------------------------------------------------------------------ *)
(* Leaf analysis: a function is a leaf when its body contains no call of
   any kind (OCaml call, external call, handler installation, perform or
   resumption — all of which push frames or switch stacks). *)

let rec has_calls (e : Ir.expr) =
  match e with
  | Ir.Int _ | Ir.Var _ -> false
  | Ir.Binop (_, a, b) | Ir.Seq (a, b) | Ir.Let (_, a, b) | Ir.Repeat (a, b) ->
      has_calls a || has_calls b
  | Ir.If (c, t, f) -> has_calls c || has_calls t || has_calls f
  | Ir.Call _ | Ir.Extcall _ | Ir.Handle _ | Ir.Perform _ | Ir.Continue _
  | Ir.Discontinue _ ->
      true
  | Ir.Raise (_, a) -> has_calls a
  | Ir.Trywith (body, cases) ->
      has_calls body || List.exists (fun (_, _, b) -> has_calls b) cases

(* ------------------------------------------------------------------ *)

type fn_state = {
  mutable nlocals : int;
  mutable cur_traps : int;
  mutable max_traps : int;
  mutable edits : (int * int) list;  (* collected in reverse *)
}

(* ------------------------------------------------------------------ *)
(* Operand-stack depth of one compiled function, by forward dataflow
   over its instruction range.  The depth entering each instruction is
   deterministic (the compiler always materialises the same stack shape
   at a join), so taking the max at joins is exact; the peak over entry
   depths is the peak Vec length because every intra-instruction push is
   the entry depth of some successor.  A trap handler is entered with
   the depth recorded at its PushtrapI plus the two words (payload; id)
   the runtime pushes after truncating. *)

let max_operand_depth ~(code : int -> Ir.instr) ~entry ~code_end ~arity
    ~handle_nargs =
  let n = code_end - entry in
  let depth = Array.make (max n 1) (-1) in
  let maxd = ref 0 in
  let work = Queue.create () in
  let visit addr d =
    if addr >= entry && addr < code_end && depth.(addr - entry) < d then begin
      depth.(addr - entry) <- d;
      Queue.push addr work
    end
  in
  visit entry 0;
  while not (Queue.is_empty work) do
    let addr = Queue.pop work in
    let d = depth.(addr - entry) in
    if d > !maxd then maxd := d;
    let next nd = visit (addr + 1) nd in
    match code addr with
    | Ir.Const _ | Ir.Load _ | Ir.Dup -> next (d + 1)
    | Ir.Store _ | Ir.Pop | Ir.Bin _ -> next (d - 1)
    | Ir.Jump a -> visit a d
    | Ir.JumpIfNot a ->
        visit a (d - 1);
        next (d - 1)
    | Ir.CallI fid -> next (d - arity fid + 1)
    | Ir.HandleI h -> next (d - handle_nargs h + 1)
    | Ir.ExtcallI (_, nargs) -> next (d - nargs + 1)
    | Ir.PerformI _ -> next d (* payload popped; result pushed on resume *)
    | Ir.ContinueI | Ir.DiscontinueI _ -> next (d - 1)
    | Ir.PushtrapI target ->
        visit target (d + 2);
        next d
    | Ir.PoptrapI -> next d
    | Ir.RaiseI _ | Ir.ReraiseI | Ir.Ret | Ir.Stop -> ()
  done;
  !maxd

let compile (program : Ir.program) =
  let code = Retrofit_util.Vec.create ~capacity:256 () in
  let emit i =
    Retrofit_util.Vec.push code i;
    Retrofit_util.Vec.length code - 1
  in
  let here () = Retrofit_util.Vec.length code in
  let patch addr i = Retrofit_util.Vec.set code addr i in
  let exns = interner () in
  let effs = interner () in
  let cfuns = interner () in
  (* Built-ins are always interned so the runtime can raise them. *)
  ignore (intern exns unhandled_exn);
  ignore (intern exns invalid_argument_exn);
  ignore (intern exns division_by_zero_exn);
  ignore (intern exns stack_overflow_exn);
  let fn_index = Hashtbl.create 16 in
  List.iteri
    (fun i (f : Ir.fn) ->
      if Hashtbl.mem fn_index f.Ir.fn_name then
        error "duplicate function %s" f.Ir.fn_name;
      Hashtbl.add fn_index f.Ir.fn_name i)
    program.Ir.fns;
  let fn_arr = Array.of_list program.Ir.fns in
  let lookup_fn name =
    match Hashtbl.find_opt fn_index name with
    | Some i -> i
    | None -> error "unknown function %s" name
  in
  let arity i = List.length fn_arr.(i).Ir.params in
  let handles = Retrofit_util.Vec.create () in
  (* cfa offset at a point = 1 (ra) + nlocals + trap words currently
     pushed.  nlocals is the function's final local count, which is known
     only after compiling the body, so edits record the TRAP part and are
     fixed up afterwards. *)
  let record_edit st =
    st.edits <- (here (), st.cur_traps) :: st.edits
  in
  let rec compile_expr st env (e : Ir.expr) =
    match e with
    | Ir.Int n -> ignore (emit (Ir.Const n))
    | Ir.Var x -> (
        match List.assoc_opt x env with
        | Some slot -> ignore (emit (Ir.Load slot))
        | None -> error "unbound variable %s" x)
    | Ir.Binop (op, a, b) ->
        compile_expr st env a;
        compile_expr st env b;
        ignore (emit (Ir.Bin op))
    | Ir.If (c, t, f) ->
        compile_expr st env c;
        let jf = emit (Ir.JumpIfNot 0) in
        compile_expr st env t;
        let jend = emit (Ir.Jump 0) in
        patch jf (Ir.JumpIfNot (here ()));
        compile_expr st env f;
        patch jend (Ir.Jump (here ()))
    | Ir.Let (x, e1, e2) ->
        compile_expr st env e1;
        let slot = st.nlocals in
        st.nlocals <- st.nlocals + 1;
        ignore (emit (Ir.Store slot));
        compile_expr st ((x, slot) :: env) e2
    | Ir.Seq (a, b) ->
        compile_expr st env a;
        ignore (emit Ir.Pop);
        compile_expr st env b
    | Ir.Call (name, args) ->
        let fid = lookup_fn name in
        if List.length args <> arity fid then
          error "arity mismatch calling %s" name;
        List.iter (compile_expr st env) args;
        ignore (emit (Ir.CallI fid))
    | Ir.Extcall (name, args) ->
        let cid = intern cfuns name in
        List.iter (compile_expr st env) args;
        ignore (emit (Ir.ExtcallI (cid, List.length args)))
    | Ir.Raise (label, payload) ->
        compile_expr st env payload;
        ignore (emit (Ir.RaiseI (intern exns label)))
    | Ir.Trywith (body, cases) ->
        let push = emit (Ir.PushtrapI 0) in
        st.cur_traps <- st.cur_traps + 1;
        if st.cur_traps > st.max_traps then st.max_traps <- st.cur_traps;
        record_edit st;
        compile_expr st env body;
        ignore (emit Ir.PoptrapI);
        st.cur_traps <- st.cur_traps - 1;
        record_edit st;
        let jend = emit (Ir.Jump 0) in
        (* Handler entry: the runtime has popped the trap (so the cfa
           offset here is the post-pop one) and pushed [payload; id] with
           the id on top. *)
        patch push (Ir.PushtrapI (here ()));
        let exit_jumps = ref [ jend ] in
        let slot = st.nlocals in
        st.nlocals <- st.nlocals + 1;
        List.iter
          (fun (label, var, handler_body) ->
            let id = intern exns label in
            ignore (emit Ir.Dup);
            ignore (emit (Ir.Const id));
            ignore (emit (Ir.Bin Ir.Eq));
            let skip = emit (Ir.JumpIfNot 0) in
            ignore (emit Ir.Pop);
            (* drop the id, bind the payload *)
            ignore (emit (Ir.Store slot));
            compile_expr st ((var, slot) :: env) handler_body;
            exit_jumps := emit (Ir.Jump 0) :: !exit_jumps;
            patch skip (Ir.JumpIfNot (here ())))
          cases;
        (* no case matched: re-raise (ops hold payload; id) *)
        ignore (emit Ir.ReraiseI);
        List.iter (fun j -> patch j (Ir.Jump (here ()))) !exit_jumps
    | Ir.Perform (label, payload) ->
        compile_expr st env payload;
        ignore (emit (Ir.PerformI (intern effs label)))
    | Ir.Handle spec ->
        let body = lookup_fn spec.Ir.body_fn in
        if List.length spec.Ir.body_args <> arity body then
          error "arity mismatch in handle body %s" spec.Ir.body_fn;
        let retc = lookup_fn spec.Ir.retc in
        if arity retc <> 1 then error "retc %s must take 1 argument" spec.Ir.retc;
        let h_exncs =
          List.map
            (fun (label, fname) ->
              let f = lookup_fn fname in
              if arity f <> 1 then
                error "exception case %s must take 1 argument" fname;
              (intern exns label, f))
            spec.Ir.exncs
        in
        let h_effcs =
          List.map
            (fun (label, fname) ->
              let f = lookup_fn fname in
              if arity f <> 2 then
                error "effect case %s must take 2 arguments (x, k)" fname;
              (intern effs label, f))
            spec.Ir.effcs
        in
        List.iter (compile_expr st env) spec.Ir.body_args;
        Retrofit_util.Vec.push handles
          {
            h_body = body;
            h_nargs = arity body;
            h_retc = retc;
            h_exncs;
            h_effcs;
            h_exn_tbl = dispatch_tbl h_exncs;
            h_eff_tbl = dispatch_tbl h_effcs;
          };
        ignore (emit (Ir.HandleI (Retrofit_util.Vec.length handles - 1)))
    | Ir.Repeat (count, body) ->
        compile_expr st env count;
        let slot = st.nlocals in
        st.nlocals <- st.nlocals + 1;
        ignore (emit (Ir.Store slot));
        let top = here () in
        ignore (emit (Ir.Load slot));
        let exit_jump = emit (Ir.JumpIfNot 0) in
        compile_expr st env body;
        ignore (emit Ir.Pop);
        ignore (emit (Ir.Load slot));
        ignore (emit (Ir.Const 1));
        ignore (emit (Ir.Bin Ir.Sub));
        ignore (emit (Ir.Store slot));
        ignore (emit (Ir.Jump top));
        patch exit_jump (Ir.JumpIfNot (here ()));
        ignore (emit (Ir.Const 0))
    | Ir.Continue (k, v) ->
        compile_expr st env k;
        compile_expr st env v;
        ignore (emit Ir.ContinueI)
    | Ir.Discontinue (k, label, payload) ->
        compile_expr st env k;
        compile_expr st env payload;
        ignore (emit (Ir.DiscontinueI (intern exns label)))
  in
  let compiled_fns =
    Array.mapi
      (fun fn_idx (f : Ir.fn) ->
        let entry = here () in
        let nparams = List.length f.Ir.params in
        let st = { nlocals = nparams; cur_traps = 0; max_traps = 0; edits = [] } in
        let env = List.mapi (fun i p -> (p, i)) f.Ir.params in
        compile_expr st env f.Ir.body;
        ignore (emit Ir.Ret);
        let code_end = here () in
        let max_ostack =
          max_operand_depth
            ~code:(Retrofit_util.Vec.get code)
            ~entry ~code_end ~arity
            ~handle_nargs:(fun h -> (Retrofit_util.Vec.get handles h).h_nargs)
        in
        let base_offset = 1 + st.nlocals in
        let cfi_edits =
          (entry, base_offset)
          :: List.rev_map
               (fun (addr, traps) -> (addr, base_offset + (Layout.trap_words * traps)))
               st.edits
        in
        {
          fn_index = fn_idx;
          fn_name = f.Ir.fn_name;
          entry;
          code_end;
          nparams;
          nlocals = st.nlocals;
          max_traps = st.max_traps;
          frame_words = 1 + st.nlocals + (Layout.trap_words * st.max_traps);
          is_leaf = not (has_calls f.Ir.body);
          max_ostack;
          cfi_edits;
        })
      fn_arr
  in
  let main_index =
    match Hashtbl.find_opt fn_index program.Ir.main with
    | Some i ->
        if arity i <> 0 then error "main function %s must take 0 arguments" program.Ir.main;
        i
    | None -> error "missing main function %s" program.Ir.main
  in
  {
    code = Retrofit_util.Vec.to_array code;
    fns = compiled_fns;
    handles = Retrofit_util.Vec.to_array handles;
    exn_names = interned exns;
    eff_names = interned effs;
    cfun_names = interned cfuns;
    fn_ids = Hashtbl.copy fn_index;
    exn_ids = Hashtbl.copy exns.table;
    eff_ids = Hashtbl.copy effs.table;
    main_index;
  }

(* Functions are emitted back to back, so [fns] is sorted by [entry]
   and the ranges are disjoint: binary-search the covering one. *)
let function_at compiled addr =
  let fns = compiled.fns in
  let lo = ref 0 and hi = ref (Array.length fns - 1) in
  let found = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let f = fns.(mid) in
    if addr < f.entry then hi := mid - 1
    else if addr >= f.code_end then lo := mid + 1
    else begin
      found := Some f;
      lo := !hi + 1
    end
  done;
  !found

let exn_id compiled name =
  match Hashtbl.find_opt compiled.exn_ids name with
  | Some i -> i
  | None -> raise Not_found

let exn_name compiled id =
  if id >= 0 && id < Array.length compiled.exn_names then compiled.exn_names.(id)
  else Printf.sprintf "<exn:%d>" id

let eff_id compiled name =
  match Hashtbl.find_opt compiled.eff_ids name with
  | Some i -> i
  | None -> raise Not_found

let disassemble compiled =
  let buf = Buffer.create 1024 in
  Array.iter
    (fun f ->
      Buffer.add_string buf
        (Printf.sprintf "%s/%d (frame=%d words%s):\n" f.fn_name f.nparams
           f.frame_words
           (if f.is_leaf then ", leaf" else ""));
      for addr = f.entry to f.code_end - 1 do
        Buffer.add_string buf
          (Printf.sprintf "  %4d  %s\n" addr (Ir.instr_to_string compiled.code.(addr)))
      done)
    compiled.fns;
  Buffer.contents buf
