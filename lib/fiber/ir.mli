(** Source language and bytecode of the fiber machine.

    Programs for the runtime model are written in a small first-order
    language with named functions, exceptions and effect handlers, and
    compiled to a bytecode whose execution model mirrors the native-code
    runtime of §5: calls push a return address into stack memory, trap
    frames form a linked list threaded through the stack (§2.2), and
    [Handle]/[Perform]/[Continue] manage heap-allocated fibers.

    Handler bodies and cases are {e named functions} rather than
    closures: the model has no closure conversion, so any context a
    handler body needs is passed explicitly through [body_args].  This
    loses no generality for the paper's benchmarks and keeps frame
    layouts transparent. *)

type binop = Add | Sub | Mul | Div | Mod | Lt | Le | Eq | Ne

type expr =
  | Int of int
  | Var of string
  | Binop of binop * expr * expr
  | If of expr * expr * expr  (** 0 is false *)
  | Let of string * expr * expr
  | Seq of expr * expr
  | Call of string * expr list
  | Raise of string * expr
  | Trywith of expr * (string * string * expr) list
      (** [Trywith (body, [label, var, handler; ...])]; unmatched labels
          re-raise *)
  | Perform of string * expr
  | Handle of handle_spec
  | Continue of expr * expr  (** continuation value, resume value *)
  | Discontinue of expr * string * expr  (** continuation, label, payload *)
  | Extcall of string * expr list  (** call a registered C function *)
  | Repeat of expr * expr
      (** [Repeat (count, body)]: evaluate [body] that many times and
          yield 0 — a counted loop with a back-edge, compiled without
          calls, like an OCaml [for] loop.  The iteration-style micro
          benchmarks use it so their loop bodies carry no prologue
          checks, matching the paper's for-loop benchmarks. *)

and handle_spec = {
  body_fn : string;
  body_args : expr list;
  retc : string;  (** name of a 1-argument function *)
  exncs : (string * string) list;  (** label → 1-argument function *)
  effcs : (string * string) list;  (** label → 2-argument function (x, k) *)
}

type fn = { fn_name : string; params : string list; body : expr }

type program = { fns : fn list; main : string }
(** [main] names a 0-argument function. *)

(** {1 Bytecode} *)

type instr =
  | Const of int
  | Load of int  (** push local slot *)
  | Store of int  (** pop into local slot *)
  | Dup
  | Pop
  | Bin of binop
  | Jump of int  (** absolute code address *)
  | JumpIfNot of int  (** pops; jumps when 0 *)
  | CallI of int  (** function index *)
  | Ret
  | PushtrapI of int  (** absolute handler address *)
  | PoptrapI
  | RaiseI of int  (** exception id; payload popped *)
  | ReraiseI  (** pops id then payload *)
  | PerformI of int  (** effect id; payload popped; result pushed on resume *)
  | HandleI of int  (** handle-spec index; body args popped *)
  | ContinueI  (** pops resume value then continuation *)
  | DiscontinueI of int  (** exception id; pops payload then continuation *)
  | ExtcallI of int * int  (** C-function index, argument count *)
  | Stop  (** terminates the program with the popped value *)

val instr_to_string : instr -> string
(** Each constructor prints with a distinct head, so the rendering is
    injective on structure. *)

(** {1 Printing}

    Fully parenthesised, s-expression-like renderings.  Every [expr]
    constructor prints with a distinct head symbol and every subterm is
    parenthesised, so the printer is injective as long as the embedded
    names contain no spaces or parentheses (a QCheck property pins
    this).  {!Retrofit_analysis} diagnostics quote these strings. *)

val expr_to_string : expr -> string

val fn_to_string : fn -> string

val program_to_string : program -> string

(** {1 Convenience constructors} *)

val call : string -> expr list -> expr

val seq : expr list -> expr
(** [seq \[e1; ...; en\]] evaluates all, keeping the last value.
    @raise Invalid_argument on an empty list. *)

val fn : string -> string list -> expr -> fn
