(** Stack-management policies for the fiber machine.

    The paper's runtime hard-codes one strategy: fibers start small and
    grow by copy-and-double with pointer rebasing, backed by a
    free-list stack cache (§5.1-5.2).  The libseff evaluation (Yu,
    2025) shows that segmented stacks and large-reserve/guard-page
    layouts make materially different trade-offs on deep recursion and
    perform/resume ping-pong; this descriptor makes the choice a
    config axis of the machine.

    - {b Copy_double}: the status quo.  A fiber's segment is always
      fully committed; outgrowing it copies the whole stack into a
      segment of (at least) double the size and rebases every stored
      address.  Prologue overflow checks are elided for leaf frames
      inside the red zone.  Must stay bit-identical on the frozen cost
      counters.
    - {b Segmented}: a large virtual reservation committed in linked
      [chunk_words]-sized chunks.  Growth commits another chunk in
      place — no copy, no rebasing — but {e every} call pays a
      segment-boundary check ([Costs.segment_check]); there is no
      red-zone elision.  Freed chunks go to a machine-wide free list.
    - {b Large_reserve}: one big reservation per fiber with a guard
      page.  Calls pay no check at all; running past the committed
      watermark is a modeled fault ([Costs.page_fault]) that commits
      [page_words]-sized pages in place.  Exhausting the reservation
      raises [Stack_overflow].

    [cow_clone] selects the multishot cloning strategy for Segmented:
    instead of eagerly copying a captured fiber's committed words at
    resume, the clone shares the chunks (reference-counted) and copies
    each chunk only when one side first writes to it. *)

type kind = Copy_double | Segmented | Large_reserve

type t = {
  pk : kind;
  chunk_words : int;  (** Segmented: words per linked chunk *)
  reserve_words : int;
      (** Segmented / Large_reserve: total reservation per fiber; the
          hard ceiling behind the guard page *)
  page_words : int;  (** Large_reserve: words committed per fault *)
  cow_clone : bool;
      (** Segmented: share chunks on multishot clone, copy on write *)
}

val copy_double : t

val segmented : t
(** 64-word chunks, 1M-word reservation. *)

val segmented_cow : t
(** [segmented] with copy-on-write multishot cloning. *)

val large_reserve : t
(** 1M-word reservation, 256-word pages. *)

val with_chunk_words : int -> t -> t

val with_reserve_words : int -> t -> t

val with_page_words : int -> t -> t

val name : t -> string
(** ["copy"], ["segmented"], ["segmented-cow"] or ["reserve"]. *)

val all : (string * t) list
(** Every policy, keyed by {!name} — the conformance matrix. *)

val of_string : string -> t option

val ext_words : t -> int
(** The commit granularity: [chunk_words] for Segmented, [page_words]
    for Large_reserve, 0 for Copy_double (always fully committed). *)
