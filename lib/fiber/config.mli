(** Runtime configurations for the fiber machine.

    [Stock] models the stock OCaml runtime of §2: one large contiguous
    stack, no overflow checks (a guard page catches overflow), direct
    external calls.  [Mc] models the Multicore runtime of §5:
    heap-allocated fibers that start small and grow by copying, prologue
    overflow checks elided for small leaf functions inside the red zone,
    external calls on a separate system stack, and a stack cache. *)

type kind = Stock | Mc

type t = {
  kind : kind;
  initial_words : int;
      (** initial size of the variable area of a fiber (default 16, §5.2) *)
  red_zone : int;
      (** in words; leaf functions with frames at most this large skip the
          overflow check (default 16, §5.2) *)
  stack_cache : bool;  (** reuse recently freed fiber stacks (§5.2) *)
  stock_stack_words : int;
      (** size of the contiguous stock stack; exceeding it is a fatal
          stack overflow *)
  multishot : bool;
      (** resume by {e copying} the captured fibers instead of consuming
          them — the semantics-faithful behaviour §5.2 describes and the
          implementation rejects as "unnecessary and inefficient" for
          the concurrency use case; off by default, measurable via the
          ablation bench *)
  policy : Stack_policy.t;
      (** the stack-management strategy (growth, checks, cloning);
          {!Stack_policy.copy_double} — the paper's design — by
          default.  Only meaningful under [Mc]. *)
}

val stock : t

val mc : t
(** The Multicore OCaml defaults: 16-word initial fibers, 16-word red
    zone, stack cache on. *)

val mc_red_zone : int -> t
(** [mc] with a different red-zone size; [mc_red_zone 0] is the
    MC+RedZone0 variant of §6.1 in which every OCaml function carries an
    overflow check. *)

val with_cache : bool -> t -> t

val with_initial_words : int -> t -> t

val with_multishot : bool -> t -> t

val with_policy : Stack_policy.t -> t -> t

val name : t -> string
(** E.g. ["mc(rz=16)"], ["mc(rz=16)-segmented"], ["mc(rz=16)-ms"]. *)
