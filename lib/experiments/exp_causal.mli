(** The causal-attribution experiment: resilient-websim sweep over
    fault intensity x admission-queue cap with tracing on, span-graph
    reconstruction per cell, and a bucket-share table showing how
    latency attribution shifts (DESIGN.md §14). *)

type cell = {
  c_intensity : float;
  c_cap : int;
  c_outcome : Retrofit_httpsim.Loadgen.outcome;
  c_graph : Retrofit_causal.Graph.t;
}

val run_cell :
  seed:int ->
  rate_rps:int ->
  duration_ms:int ->
  intensity:float ->
  queue_cap:int ->
  cell

val sweep :
  ?seed:int ->
  ?rate_rps:int ->
  duration_ms:int ->
  ?intensities:float list ->
  ?caps:int list ->
  unit ->
  cell list

val report : ?quick:bool -> unit -> string
