(** Supervision + chaos experiment: recovery under seeded fiber-kill
    chaos, graceful-drain disposition accounting, and the double-run
    determinism campaign over the supervised websim. *)

val report : ?quick:bool -> unit -> string
