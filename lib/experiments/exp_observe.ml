module F = Retrofit_fiber
module D = Retrofit_dwarf
module Sched = Retrofit_core.Sched
module Trace = Retrofit_trace.Trace
module Export = Retrofit_trace.Export
module Metrics = Retrofit_metrics.Metrics

(* A reperform-heavy workload: every [perform] hops through a handler
   chain, so almost every profiler sample lands on a stack that the
   unwinder has to carry across fiber boundaries — the §5.4 walk the
   acceptance criteria want visible in the folded output. *)
let machine_workload ~quick =
  F.Programs.effect_depth ~depth:6 ~iters:(if quick then 10 else 60)

let default_interval = 500

let profiled_run ?(quick = false) ?(interval = default_interval) () =
  let compiled = F.Compile.compile (machine_workload ~quick) in
  let table = D.Table.build compiled in
  let prof = D.Profile.create ~interval table in
  let cache = F.Stack_cache.create () in
  let (outcome, counters), cache_stats =
    F.Stack_cache.scoped_stats cache (fun () ->
        F.Machine.run ~cache ~cfuns:F.Programs.standard_cfuns
          ~on_step:(D.Profile.hook prof) F.Config.mc compiled)
  in
  (match outcome with
  | F.Machine.Done _ -> ()
  | F.Machine.Uncaught (l, _) -> failwith ("observe workload raised " ^ l)
  | F.Machine.Fatal m -> failwith ("observe workload fatal: " ^ m));
  if Metrics.on () then begin
    Metrics.merge_counter_table ~prefix:"fiber_" counters;
    Metrics.set_gauge "stack_cache_lookups" cache_stats.F.Stack_cache.lookups;
    Metrics.set_gauge "stack_cache_hits" cache_stats.F.Stack_cache.hits;
    Metrics.set_gauge "stack_cache_misses" cache_stats.F.Stack_cache.misses;
    Metrics.set_gauge "stack_cache_puts" cache_stats.F.Stack_cache.puts;
    Metrics.set_gauge "stack_cache_rejected" cache_stats.F.Stack_cache.rejected
  end;
  D.Profile.publish prof;
  prof

(* A small cooperative workload so the scheduler's run-queue metrics
   and depth track appear in the same snapshot. *)
let sched_workload () =
  let total = ref 0 in
  Sched.run (fun () ->
      for i = 1 to 8 do
        Sched.fork (fun () ->
            for _ = 1 to 4 do
              Sched.yield ()
            done;
            total := !total + i)
      done);
  !total

(* Satellite of the causal layer: derive blocked-time samples for the
   profiler from an eventlog.  The machine's sampler only fires while
   instructions retire, so parked/runnable time is invisible to it; the
   causal reconstruction knows exactly which intervals were spent
   waiting, and each wait interval (plus each nonzero scheduler wakeup
   wait) becomes one synthetic [<wait:io>] / [<wait:runq>] sample. *)
let fold_waits prof (events : Retrofit_trace.Event.t list) =
  let module CG = Retrofit_causal.Graph in
  let g = Retrofit_causal.Reconstruct.of_events events in
  let runq = ref 0 in
  let io = ref 0 in
  List.iter
    (fun (r : CG.request) ->
      List.iter
        (fun (s : CG.seg) ->
          match s.CG.s_kind with
          | CG.Seg_queue _ -> incr runq
          | CG.Seg_stall | CG.Seg_drop | CG.Seg_backoff -> incr io
          | CG.Seg_service -> ())
        r.CG.r_path)
    g.CG.requests;
  List.iter
    (fun (reason, (count, total)) ->
      if total > 0 then
        match reason with
        | "io-line" | "io-eof" | "io-error" -> io := !io + count
        | _ -> runq := !runq + count)
    g.CG.summary.CG.g_wakeups;
  D.Profile.record_wait ~n:!runq prof ~kind:"runq";
  D.Profile.record_wait ~n:!io prof ~kind:"io";
  g

let report ?(quick = false) () =
  let buf = Buffer.create 1024 in
  let (), ring =
    Trace.scoped (fun () ->
        Metrics.scoped (fun _ ->
            let prof = profiled_run ~quick () in
            let sched_sum = sched_workload () in
            let folded = D.Profile.folded prof in
            let boundary =
              List.length
                (List.filter
                   (fun (stack, _) ->
                     List.mem "<fiber>" (String.split_on_char ';' stack))
                   (D.Profile.stacks prof))
            in
            Buffer.add_string buf
              (Printf.sprintf
                 "profiler: %d samples, %d distinct stacks (%d crossing fiber \
                  boundaries), %d unwind failures\n"
                 (D.Profile.samples prof)
                 (List.length (D.Profile.stacks prof))
                 boundary (D.Profile.failures prof));
            Buffer.add_string buf
              (Printf.sprintf "scheduler workload sum: %d\n" sched_sum);
            Buffer.add_string buf
              (Printf.sprintf "folded flamegraph (%d bytes):\n%s"
                 (String.length folded) folded);
            Buffer.add_string buf "\nmetrics snapshot:\n";
            Buffer.add_string buf (Metrics.to_prometheus ())))
  in
  Buffer.add_string buf
    (Printf.sprintf "\neventlog: %d events (%d dropped)\n" (Trace.length ring)
       (Trace.dropped ring));
  Buffer.contents buf
