(** The degradation sweep: goodput and p99 for the three server models
    under offered load × fault intensity, with the resilience layer's
    error taxonomy and fault accounting at the reference cell. *)

val report : ?quick:bool -> unit -> string
