type t = {
  id : string;
  title : string;
  paper_ref : string;
  run : ?quick:bool -> unit -> string;
}

let all =
  [
    {
      id = "table1";
      title = "micro benchmarks without effects";
      paper_ref = "Table 1";
      run = Exp_table1.report;
    };
    {
      id = "fig4";
      title = "macro benchmark normalized time";
      paper_ref = "Figure 4";
      run = Exp_fig4.report;
    };
    {
      id = "fig5";
      title = "normalized OCaml text-section size";
      paper_ref = "Figure 5";
      run = Exp_fig5.report;
    };
    {
      id = "table2";
      title = "handlers but no perform";
      paper_ref = "Table 2";
      run = Exp_table2.report;
    };
    {
      id = "opcost";
      title = "effect operation costs";
      paper_ref = "Section 6.3";
      run = Exp_opcost.report;
    };
    {
      id = "generators";
      title = "generators from iterators";
      paper_ref = "Section 6.3.1";
      run = Exp_concurrent.report_generators;
    };
    {
      id = "chameneos";
      title = "chameneos concurrency game";
      paper_ref = "Section 6.3.2";
      run = Exp_concurrent.report_chameneos;
    };
    {
      id = "finalisers";
      title = "finalised continuations";
      paper_ref = "Section 6.3.3";
      run = Exp_concurrent.report_finalisers;
    };
    {
      id = "fig6";
      title = "web server throughput and latency";
      paper_ref = "Figure 6";
      run = Exp_fig6.report;
    };
    {
      id = "degradation";
      title = "web server goodput under fault injection";
      paper_ref = "Section 6.4 (extension)";
      run = Exp_degradation.report;
    };
    {
      id = "chaos";
      title = "supervision trees and chaos scheduling";
      paper_ref = "Section 6.3.4 (robustness extension)";
      run = Exp_chaos.report;
    };
    {
      id = "backtrace";
      title = "meander backtrace and DWARF validation";
      paper_ref = "Figure 1d / Section 5.5";
      run = Exp_backtrace.report;
    };
    {
      id = "observe";
      title = "eventlog, metrics and sampling profiler";
      paper_ref = "Section 5.4 (observability extension)";
      run = Exp_observe.report;
    };
    {
      id = "causal";
      title = "span graphs and per-request latency attribution";
      paper_ref = "Section 5.4 (causal-tracing extension)";
      run = Exp_causal.report;
    };
    {
      id = "ablation";
      title = "design-choice ablations";
      paper_ref = "Sections 5.1, 5.2, 5.5";
      run = Exp_ablation.report;
    };
    {
      id = "stacklab";
      title = "stack-management strategy lab";
      paper_ref = "Sections 2.1, 5.2 (policy alternatives)";
      run = Exp_stacklab.report;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let ids () = List.map (fun e -> e.id) all

let run_all ?quick () =
  all
  |> List.map (fun e ->
         let rule = String.make 72 '=' in
         Printf.sprintf "%s\n%s: %s (%s)\n%s\n\n%s\n" rule e.id e.title e.paper_ref rule
           (e.run ?quick ()))
  |> String.concat "\n"
