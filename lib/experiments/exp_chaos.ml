(* Supervision + chaos experiment (ISSUE 7).

   Three tables over the supervised websim:

   1. Recovery — each server model run calm, then under seeded chaos
      (fiber kills at suspension points, delayed resumes, spurious
      wakeups, reorders) plus wedge injection; the supervision tree
      must recover completed throughput to >=95% of the calm run.
   2. Drain — graceful-shutdown disposition accounting: every in-flight
      request completes or is cancelled at the deadline, every
      unaccepted one is rejected, nothing is silent.
   3. Determinism — the chaos campaign (small randomized scenarios run
      twice, summaries byte-compared). *)

module Sim = Retrofit_httpsim.Supervised
module Server = Retrofit_httpsim.Server
module Sched = Retrofit_core.Sched
module Chaos = Retrofit_conformance.Chaos
module Table = Retrofit_util.Table

let models =
  [
    (Server.mc, Retrofit_httpsim.Server_effects.process_raw_with);
    (Server.go, Retrofit_httpsim.Server_go.process_raw_with);
    (Server.lwt, Retrofit_httpsim.Server_monad.process_raw_with);
  ]

let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b

let recovery_rows ~seed ~connections =
  List.map
    (fun ((model : Server.model), process) ->
      let base = { (Sim.default_config ~seed) with Sim.connections } in
      let calm = Sim.run ~model ~process base in
      let chaos =
        Sim.run ~model ~process
          {
            base with
            Sim.chaos = Some (Sched.Chaos.default ~seed);
            wedge_rate = 0.05;
            max_restarts = 1000;
          }
      in
      [
        model.Server.name;
        string_of_int calm.Sim.completed;
        string_of_int chaos.Sim.completed;
        Printf.sprintf "%.1f%%" (pct chaos.Sim.completed calm.Sim.completed);
        string_of_int chaos.Sim.killed;
        string_of_int chaos.Sim.restarts;
        string_of_int chaos.Sim.watchdog_kills;
        string_of_int chaos.Sim.silent;
        (match chaos.Sim.chaos_stats with
        | Some c ->
            Printf.sprintf "%d/%d/%d/%d" c.Sched.Chaos.kills
              c.Sched.Chaos.delays c.Sched.Chaos.reorders
              c.Sched.Chaos.spurious
        | None -> "-");
      ])
    models

let drain_rows ~seed ~connections =
  List.map
    (fun ((model : Server.model), process) ->
      let base = { (Sim.default_config ~seed) with Sim.connections } in
      let s =
        Sim.run ~model ~process
          {
            base with
            Sim.drain_after_ns = Some 400_000;
            (* tight deadline: some in-flight requests hit it, proving
               the cancel-at-deadline path alongside the complete path *)
            drain_deadline_ns = 60_000;
          }
      in
      [
        model.Server.name;
        string_of_int s.Sim.total;
        string_of_int s.Sim.completed;
        string_of_int s.Sim.cancelled_drain;
        string_of_int s.Sim.rejected_drain;
        string_of_int s.Sim.silent;
        Printf.sprintf "%.2f"
          (float_of_int s.Sim.drain_latency_ns /. 1e6);
        s.Sim.outcome;
      ])
    models

let report ?(quick = false) () =
  let seed = 1 in
  let connections = if quick then 40 else 120 in
  let count = if quick then 100 else 1000 in
  let r_header =
    [ "server"; "calm ok"; "chaos ok"; "recovery"; "killed"; "restarts";
      "wd kills"; "silent"; "k/d/r/s" ]
  in
  let d_header =
    [ "server"; "total"; "ok"; "drained"; "rejected"; "silent"; "drain ms";
      "outcome" ]
  in
  let align hdr = Table.Left :: List.map (fun _ -> Table.Right) (List.tl hdr) in
  let recovery =
    Table.render ~align:(align r_header) ~header:r_header
      (recovery_rows ~seed ~connections)
  in
  let drain =
    Table.render ~align:(align d_header) ~header:d_header
      (drain_rows ~seed ~connections)
  in
  let st = Chaos.campaign ~count ~seed () in
  Printf.sprintf
    "Supervised websim under seeded chaos (seed=%d, %d connections x 6 \
     requests, 4 shards)\n\
     chaos policy: kill 0.2%%, delay 5%%, reorder 10%%, spurious 2%% at \
     suspension points; wedge 5%% of accepts\n\n\
     Recovery (supervision tree restarts killed/wedged accept loops; \
     target >=95%% of calm completed):\n\
     %s\n\
     Graceful drain (stop accepting at t=0.4ms, 0.06ms deadline, then \
     bottom-up shutdown):\n\
     %s\n\
     Determinism campaign (%d randomized scenarios, each run twice, \
     summaries byte-compared):\n\
     %s"
    seed connections recovery drain count (Chaos.stats_to_string st)
