(** Observability demonstration: the sampling profiler, the metrics
    registry and the eventlog exercised together on seeded fiber-machine
    and scheduler workloads (DESIGN.md §10).

    [profiled_run] is also the machinery behind [retrofit websim
    --profile]: it runs a reperform-heavy fiber-machine program under
    the DWARF sampling profiler, so the folded stacks cross fiber
    boundaries, and (when the registry is enabled) merges the machine's
    cost counters in under a [fiber_] prefix plus the stack-cache
    statistics as gauges. *)

val default_interval : int

val machine_workload : quick:bool -> Retrofit_fiber.Ir.program

val profiled_run :
  ?quick:bool -> ?interval:int -> unit -> Retrofit_dwarf.Profile.t
(** @raise Failure if the workload does not complete normally. *)

val sched_workload : unit -> int
(** Fork/yield a batch of cooperative threads under {!Retrofit_core.Sched};
    returns a checksum. *)

val fold_waits :
  Retrofit_dwarf.Profile.t ->
  Retrofit_trace.Event.t list ->
  Retrofit_causal.Graph.t
(** Derive blocked-time profiler samples from an eventlog: each wait
    segment on a reconstructed critical path (and each nonzero-wait
    scheduler wakeup) becomes one synthetic [<wait:io>] /
    [<wait:runq>] folded sample via {!Retrofit_dwarf.Profile.record_wait}.
    Returns the reconstructed span graph for reuse. *)

val report : ?quick:bool -> unit -> string
