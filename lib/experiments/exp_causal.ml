(* Where does request time go, and how does the answer move?

   Sweeps the resilient websim over fault intensity x admission-queue
   cap with tracing on, reconstructs the span graph of every cell, and
   tabulates the five attribution buckets as shares of total latency.
   The interesting shape: raising fault intensity shifts time from
   running into fault_stall and io_wait (backoff), while tightening the
   queue cap converts sched_wait into retries and sheds.  Everything is
   seeded, so the table is byte-stable. *)

module HS = Retrofit_httpsim
module Trace = Retrofit_trace.Trace
module Causal = Retrofit_causal
module Table = Retrofit_util.Table

type cell = {
  c_intensity : float;
  c_cap : int;
  c_outcome : HS.Loadgen.outcome;
  c_graph : Causal.Graph.t;
}

let run_cell ~seed ~rate_rps ~duration_ms ~intensity ~queue_cap =
  let faults = HS.Faults.scale intensity HS.Faults.default in
  let resilience = { HS.Loadgen.default_resilience with queue_cap } in
  let outcome, ring =
    Trace.scoped ~capacity:(1 lsl 18) (fun () ->
        HS.Loadgen.run ~seed ~faults ~resilience ~model:HS.Server.mc
          ~process:HS.Server_effects.process_raw ~rate_rps ~duration_ms ())
  in
  {
    c_intensity = intensity;
    c_cap = queue_cap;
    c_outcome = outcome;
    c_graph = Causal.Reconstruct.of_trace ring;
  }

let sweep ?(seed = 42) ?(rate_rps = 20_000) ~duration_ms
    ?(intensities = [ 0.0; 0.5; 2.0 ]) ?(caps = [ 64; 512 ]) () =
  List.concat_map
    (fun intensity ->
      List.map
        (fun queue_cap -> run_cell ~seed ~rate_rps ~duration_ms ~intensity ~queue_cap)
        caps)
    intensities

let share total part = if total = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int total

let row (c : cell) =
  let g = c.c_graph in
  let open Causal.Graph in
  let fold f = List.fold_left (fun acc r -> acc + f r.r_buckets) 0 g.requests in
  let lat = List.fold_left (fun acc r -> acc + latency r) 0 g.requests in
  [
    Printf.sprintf "%.1fx" c.c_intensity;
    string_of_int c.c_cap;
    string_of_int g.summary.g_requests;
    string_of_int g.summary.g_complete;
    string_of_int g.summary.g_incomplete;
    Printf.sprintf "%.1f" (share lat (fold (fun b -> b.b_running)));
    Printf.sprintf "%.1f" (share lat (fold (fun b -> b.b_sched)));
    Printf.sprintf "%.1f" (share lat (fold (fun b -> b.b_io)));
    Printf.sprintf "%.1f" (share lat (fold (fun b -> b.b_gc)));
    Printf.sprintf "%.1f" (share lat (fold (fun b -> b.b_fault)));
    string_of_int c.c_outcome.HS.Loadgen.completed;
    string_of_int c.c_outcome.HS.Loadgen.timeouts;
    string_of_int c.c_outcome.HS.Loadgen.shed;
  ]

let report ?(quick = false) () =
  let duration_ms = if quick then 150 else 500 in
  let cells = sweep ~duration_ms () in
  let header =
    [
      "faults"; "cap"; "reqs"; "complete"; "incompl"; "run%"; "sched%"; "io%";
      "gc%"; "fault%"; "ok"; "timeout"; "shed";
    ]
  in
  let align = Table.Left :: List.map (fun _ -> Table.Right) (List.tl header) in
  let exact =
    List.for_all
      (fun c ->
        List.for_all
          (fun r -> Causal.Graph.(buckets_sum r.r_buckets = latency r))
          c.c_graph.Causal.Graph.requests)
      cells
  in
  Printf.sprintf
    "Causal attribution sweep (mc model, %d req/s, %d ms): latency bucket \
     shares vs fault intensity x queue cap\n\n\
     %s\n\
     attribution invariant (buckets sum to latency, every complete request, \
     every cell): %s\n"
    20_000 duration_ms
    (Table.render ~align ~header (List.map row cells))
    (if exact then "holds" else "VIOLATED")
