(** Stack-management strategy lab: the same workloads under every
    {!Retrofit_fiber.Stack_policy}, in the style of the libseff /
    wasmfx segmented-vs-contiguous comparisons.

    - {e growth}: deep recursion — relocation copies (copy-and-double)
      versus linked chunks (segmented) versus committed guard pages
      (large reserve);
    - {e per-call overhead}: the perform/resume ping-pong — red-zone
      elided prologue checks versus unelidable segment-boundary checks
      versus none;
    - {e cache}: stack-cache and chunk-free-list hit rates under fiber
      churn;
    - {e multishot cloning}: n-queens backtracking — eager fiber copies
      versus refcounted chunk sharing with copy-on-resume
      ([segmented-cow]). *)

val growth : ?quick:bool -> unit -> string

val per_call : ?quick:bool -> unit -> string

val cache : ?quick:bool -> unit -> string

val nqueens : ?quick:bool -> unit -> string

val report : ?quick:bool -> unit -> string
