module F = Retrofit_fiber
module Counter = Retrofit_util.Counter
module Table = Retrofit_util.Table

(* Stack-management strategy lab: the same workloads under every
   {!Retrofit_fiber.Stack_policy}, in the style of the libseff /
   wasmfx segmented-vs-contiguous comparisons.  The default
   copy-and-double policy is the paper's design (§5.2); the segmented
   and large-reserve policies are the alternatives §2.1 describes the
   mainline runtime rejecting (resizing by copying "won the argument"
   against segmented stacks' pointer-stability cost and mmap-hungry
   reservations), quantified here on the cost model. *)

let policies =
  F.Stack_policy.[ copy_double; segmented; large_reserve ]

let run_counters cfg p =
  let compiled = F.Compile.compile p in
  match F.Machine.run ~cfuns:F.Programs.standard_cfuns cfg compiled with
  | F.Machine.Fatal msg, _ -> failwith ("stacklab program failed: " ^ msg)
  | _, counters -> counters

let num c name = string_of_int (Counter.get c name)

let right n = List.init n (fun _ -> Table.Right)

let growth ?(quick = false) () =
  let depth = if quick then 1_000 else 20_000 in
  let p = F.Programs.deep_recursion ~depth in
  let rows =
    List.map
      (fun pol ->
        let c = run_counters (F.Config.with_policy pol F.Config.mc) p in
        [
          F.Stack_policy.name pol;
          num c "stack_grow";
          num c "words_copied";
          num c "chunk_commit";
          num c "page_fault";
          num c "instructions";
        ])
      policies
  in
  "Growth strategy (deep recursion inside a handler, depth "
  ^ string_of_int depth
  ^ "):\n  copy-and-double relocates the whole stack on overflow; the\n\
    \  segmented policy links a fresh chunk and the large reserve commits\n\
    \  guard pages, both copying nothing:\n"
  ^ Table.render
      ~align:(Table.Left :: right 5)
      ~header:
        [ "policy"; "growths"; "words copied"; "chunks"; "page faults"; "instructions" ]
      rows

let per_call ?(quick = false) () =
  let iters = if quick then 500 else 20_000 in
  let p = F.Programs.effect_roundtrip ~iters in
  let rows =
    List.map
      (fun pol ->
        let c = run_counters (F.Config.with_policy pol F.Config.mc) p in
        let instr = Counter.get c "instructions" in
        [
          F.Stack_policy.name pol;
          num c "overflow_check";
          num c "check_elided";
          num c "segment_check";
          string_of_int instr;
          Printf.sprintf "%.1f" (float_of_int instr /. float_of_int iters);
        ])
      policies
  in
  "Per-call overhead (perform/resume ping-pong, " ^ string_of_int iters
  ^ " roundtrips):\n  copy-and-double pays a prologue check only outside the red zone;\n\
    \  the segmented policy pays a boundary check on every call (no\n\
    \  elision: chunk edges are not red-zone-safe); the reserve pays\n\
    \  nothing until a guard page faults:\n"
  ^ Table.render
      ~align:(Table.Left :: right 5)
      ~header:
        [
          "policy"; "checks run"; "checks elided"; "segment checks"; "instructions";
          "instr/iter";
        ]
      rows

let cache ?(quick = false) () =
  let iters = if quick then 500 else 20_000 in
  let p = F.Programs.effect_roundtrip ~iters in
  let rows =
    List.map
      (fun pol ->
        let c = run_counters (F.Config.with_policy pol F.Config.mc) p in
        let lookups = Counter.get c "stack_cache_lookup" in
        let hits = Counter.get c "stack_cache_hit" in
        [
          F.Stack_policy.name pol;
          string_of_int lookups;
          string_of_int hits;
          (if lookups = 0 then "-"
           else Printf.sprintf "%.1f%%" (100. *. float_of_int hits /. float_of_int lookups));
          num c "chunk_pool_hit";
          num c "malloc";
        ])
      policies
  in
  "Stack cache and chunk pool (fiber churn: one fiber per roundtrip):\n"
  ^ Table.render
      ~align:(Table.Left :: right 5)
      ~header:[ "policy"; "cache lookups"; "hits"; "hit rate"; "chunk pool hits"; "malloc" ]
      rows

(* Multishot cloning: eager copies vs segmented chunk sharing with
   copy-on-resume.  n-queens is the canonical backtracking workload —
   each captured continuation is resumed once per column, so cloning
   cost dominates and sharing pays exactly when clones touch few of
   the chunks they inherit. *)
let nqueens ?(quick = false) () =
  let n = if quick then 4 else 6 in
  let clone_policies =
    F.Stack_policy.[ copy_double; segmented; segmented_cow; large_reserve ]
  in
  let p = F.Programs.nqueens ~n in
  let rows =
    List.map
      (fun pol ->
        let cfg = F.Config.with_multishot true (F.Config.with_policy pol F.Config.mc) in
        let compiled = F.Compile.compile p in
        let outcome, c = F.Machine.run ~cfuns:F.Programs.standard_cfuns cfg compiled in
        let solutions =
          match outcome with
          | F.Machine.Done v -> string_of_int v
          | F.Machine.Uncaught (l, _) -> "uncaught " ^ l
          | F.Machine.Fatal m -> "fatal: " ^ m
        in
        [
          F.Stack_policy.name pol;
          solutions;
          num c "cont_copy";
          num c "words_copied";
          num c "cont_share";
          num c "cow_words";
          num c "instructions";
        ])
      clone_policies
  in
  Printf.sprintf
    "Multishot cloning strategy (n-queens via a Pick effect, n=%d):\n\
    \  every policy eagerly copies the captured fibers on the second\n\
    \  resume except segmented-cow, which bumps chunk refcounts and\n\
    \  privatizes a chunk only when a clone writes to it:\n" n
  ^ Table.render
      ~align:(Table.Left :: right 6)
      ~header:
        [
          "policy"; "solutions"; "clones"; "words copied"; "shares"; "cow words";
          "instructions";
        ]
      rows

let report ?quick () =
  String.concat "\n"
    [ growth ?quick (); per_call ?quick (); cache ?quick (); nqueens ?quick () ]
