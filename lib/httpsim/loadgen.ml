module Rng = Retrofit_util.Rng
module Histogram = Retrofit_util.Histogram
module Pqueue = Retrofit_util.Pqueue
module Trace = Retrofit_trace.Trace
module Tev = Retrofit_trace.Event
module Metrics = Retrofit_metrics.Metrics

type fault_account = {
  injected : int;
  to_malformed : int;
  to_retried : int;
  to_timeout : int;
  to_server_error : int;
  to_absorbed : int;
}

let zero_faults =
  {
    injected = 0;
    to_malformed = 0;
    to_retried = 0;
    to_timeout = 0;
    to_server_error = 0;
    to_absorbed = 0;
  }

type resilience = {
  deadline_ns : int;
  max_attempts : int;
  backoff_base_ns : int;
  backoff_jitter_ns : int;
  drop_detect_ns : int;
  queue_cap : int;
}

let default_resilience =
  {
    deadline_ns = 1_000_000_000;
    max_attempts = 3;
    backoff_base_ns = 1_000_000;
    backoff_jitter_ns = 500_000;
    drop_detect_ns = 200_000;
    queue_cap = 512;
  }

let lenient_resilience =
  {
    deadline_ns = max_int / 2;
    max_attempts = 1;
    backoff_base_ns = 0;
    backoff_jitter_ns = 0;
    drop_detect_ns = 0;
    queue_cap = max_int;
  }

type outcome = {
  model_name : string;
  offered_rps : int;
  achieved_rps : float;
  goodput_rps : float;
  total_requests : int;
  completed : int;
  errors : int;
  timeouts : int;
  retries : int;
  shed : int;
  malformed : int;
  server_errors : int;
  faults : fault_account;
  gc_pauses : int;
  mean_ns : float;
  p50_ns : int;
  p90_ns : int;
  p99_ns : int;
  p999_ns : int;
  max_ns : int;
}

(* Push a finished run's error taxonomy and latency distribution into
   the metrics registry, labelled by server model.  Counters and the
   histogram are only touched when the registry is enabled, so the
   pinned Fig 6 numbers cannot move. *)
let publish_metrics (o : outcome) hist =
  if Metrics.on () then begin
    let labels = [ ("model", o.model_name) ] in
    Metrics.inc ~labels ~by:o.total_requests "httpsim_requests_total";
    Metrics.inc ~labels ~by:o.completed "httpsim_completed_total";
    Metrics.inc ~labels ~by:o.errors "httpsim_errors_total";
    Metrics.inc ~labels ~by:o.timeouts "httpsim_timeouts_total";
    Metrics.inc ~labels ~by:o.retries "httpsim_retries_total";
    Metrics.inc ~labels ~by:o.shed "httpsim_shed_total";
    Metrics.inc ~labels ~by:o.malformed "httpsim_malformed_total";
    Metrics.inc ~labels ~by:o.server_errors "httpsim_server_errors_total";
    Metrics.inc ~labels ~by:o.gc_pauses "httpsim_gc_pauses_total";
    Metrics.inc ~labels ~by:o.faults.injected "httpsim_faults_injected_total";
    let disposition kind n =
      Metrics.inc
        ~labels:(("disposition", kind) :: labels)
        ~by:n "httpsim_fault_dispositions_total"
    in
    disposition "malformed" o.faults.to_malformed;
    disposition "retried" o.faults.to_retried;
    disposition "timeout" o.faults.to_timeout;
    disposition "server_error" o.faults.to_server_error;
    disposition "absorbed" o.faults.to_absorbed;
    Metrics.observe_histogram ~labels "httpsim_latency_ns" hist
  end

(* ------------------------------------------------------------------ *)
(* The original zero-fault engine, unchanged: this is the Fig 6 code
   path and its numbers are pinned bit-for-bit by the tests. *)

let run_plain ~seed ~connections ~model ~process ~rate_rps ~duration_ms =
  let rng = Rng.create seed in
  let events =
    Netsim.poisson_rate ~rng ~connections ~rate_rps ~duration_ms ~target:"/" ()
  in
  let hist = Histogram.create ~max_value:60_000_000_000 () in
  let cpu_free = ref 0 in
  let alloc_since_gc = ref 0 in
  let gc_pauses = ref 0 in
  let errors = ref 0 in
  let completed = ref 0 in
  let last_completion = ref 0 in
  List.iteri
    (fun req (ev : Netsim.event) ->
      (* Really execute the server's code path and check the reply. *)
      let reply = process ev.raw in
      let status =
        match Http.parse_response reply with
        | Ok (resp, _) -> resp.Http.status
        | Error _ -> 500
      in
      if status <> 200 then incr errors;
      (* Virtual timing: single CPU, FIFO, with stop-the-world GC pauses
         driven by the machinery's allocation rate. *)
      alloc_since_gc := !alloc_since_gc + model.Server.alloc_per_request;
      let gc_pause =
        if !alloc_since_gc >= model.Server.gc_threshold then begin
          alloc_since_gc := 0;
          incr gc_pauses;
          model.Server.gc_pause_ns
        end
        else 0
      in
      (* Exponential service-time variance models cache misses and
         allocator noise; the occasional slow request models page-cache
         misses on the served file. *)
      let noise =
        int_of_float
          (Rng.exponential rng ~mean:(float_of_int model.Server.service_ns /. 5.0))
        + (if Rng.int rng 100 = 0 then model.Server.service_ns else 0)
      in
      let cost =
        model.Server.dispatch_overhead_ns + model.Server.parse_ns
        + model.Server.service_ns + noise + gc_pause
      in
      let start = max ev.arrival_ns !cpu_free in
      let finish = start + cost in
      cpu_free := finish;
      last_completion := finish;
      incr completed;
      if Trace.on () then begin
        Trace.emit ~ts:ev.arrival_ns (Tev.Req_arrival { req; conn = ev.conn_id });
        Trace.emit ~ts:ev.arrival_ns (Tev.Req_enqueue { req; attempt = 1 });
        if gc_pause > 0 then
          Trace.emit ~ts:(start + gc_pause)
            (Tev.Gc_pause { start; dur = gc_pause });
        Trace.emit ~ts:finish
          (Tev.Request
             { req; conn = ev.conn_id; attempt = 1; status; start; finish });
        Trace.emit ~ts:finish
          (Tev.Req_done
             { req; disposition = (if status = 200 then "ok" else "error") })
      end;
      Histogram.record hist (finish - ev.arrival_ns))
    events;
  let span_ns = max 1 !last_completion in
  let out =
    {
    model_name = model.Server.name;
    offered_rps = rate_rps;
    achieved_rps = float_of_int !completed *. 1e9 /. float_of_int span_ns;
    goodput_rps = float_of_int !completed *. 1e9 /. float_of_int span_ns;
    total_requests = !completed;
    completed = !completed;
    errors = !errors;
    timeouts = 0;
    retries = 0;
    shed = 0;
    malformed = 0;
    server_errors = 0;
    faults = zero_faults;
    gc_pauses = !gc_pauses;
    mean_ns = Histogram.mean hist;
    p50_ns = Histogram.value_at_percentile hist 50.0;
    p90_ns = Histogram.value_at_percentile hist 90.0;
    p99_ns = Histogram.value_at_percentile hist 99.0;
      p999_ns = Histogram.value_at_percentile hist 99.9;
      max_ns = Histogram.max_recorded hist;
    }
  in
  publish_metrics out hist;
  out

(* ------------------------------------------------------------------ *)
(* The resilient engine: the same virtual single-CPU FIFO world, driven
   through a time-ordered queue so client retries merge into the
   arrival stream.

   Request dispositions are exclusive: every request ends exactly once
   as completed (200 within deadline), malformed (its damaged bytes
   earned a 4xx — terminal, a real client does not retry its "own"
   bad request), or timed out (deadline expired or retry budget
   exhausted).  shed / server_errors / retries are event counts layered
   on top (one per 503, per 500, per retry attempt).

   Fault accounting is also exclusive: each injected fault is
   attributed exactly once, at the resolution of the attempt that
   carried it — to_malformed (wire damage), to_retried (drop recovered
   by a retry), to_timeout (it killed the request), to_server_error
   (the 500 happened), or to_absorbed (the resilience layer masked it
   entirely).  [injected = sum of the five] is a tested invariant. *)

type attempt = {
  req : int;  (* request id: index in the fault plan's arrival order *)
  attempt_no : int;
  conn : int;
  orig_arrival : int;
  deadline : int;
  clean_raw : string;
  sent_raw : string;
  fault : Faults.fault option;
}

let run_resilient ~seed ~connections ~rates ~resilience ~model ~process ~rate_rps
    ~duration_ms =
  let rng = Rng.create seed in
  let events =
    Netsim.poisson_rate ~rng ~connections ~rate_rps ~duration_ms ~target:"/" ()
  in
  let plan = Faults.plan ~seed ~rates events in
  let retry_rng = Rng.create (seed lxor 0x2545F491) in
  let q : attempt Pqueue.t = Pqueue.create () in
  List.iteri
    (fun req (inj : Faults.injected) ->
      let ev = inj.Faults.event in
      let stall = match inj.fault with Some (Faults.Stall d) -> d | _ -> 0 in
      let sent_raw =
        match inj.fault with
        | Some f -> Faults.damaged_raw ev.raw f
        | None -> ev.raw
      in
      (match inj.fault with
      | Some f when Trace.on () ->
          Trace.emit ~ts:ev.arrival_ns
            (Tev.Fault_injected { conn = ev.conn_id; kind = Faults.fault_label f })
      | _ -> ());
      Pqueue.add q ~priority:(ev.arrival_ns + stall)
        {
          req;
          attempt_no = 1;
          conn = ev.conn_id;
          orig_arrival = ev.arrival_ns;
          deadline = ev.arrival_ns + resilience.deadline_ns;
          clean_raw = ev.raw;
          sent_raw;
          fault = inj.fault;
        })
    plan;
  let hist = Histogram.create ~max_value:60_000_000_000 () in
  let cpu_free = ref 0 in
  let alloc_since_gc = ref 0 in
  let gc_pauses = ref 0 in
  let completed = ref 0 in
  let last_completion = ref 0 in
  let timeouts = ref 0 in
  let retries = ref 0 in
  let shed = ref 0 in
  let malformed = ref 0 in
  let server_errors = ref 0 in
  let fa_malformed = ref 0 in
  let fa_retried = ref 0 in
  let fa_timeout = ref 0 in
  let fa_server_error = ref 0 in
  let fa_absorbed = ref 0 in
  (* Finish times of admitted-but-unfinished requests; arrivals are
     processed in time order, so pruning entries at or before "now"
     leaves exactly the virtual queue depth. *)
  let in_flight : int Queue.t = Queue.create () in
  let max_inflight = ref 0 in
  let prune now =
    let rec go () =
      match Queue.peek_opt in_flight with
      | Some f when f <= now ->
          ignore (Queue.pop in_flight);
          go ()
      | _ -> ()
    in
    go ()
  in
  (* Client-side retry with exponential backoff and jitter, capped by
     both the attempt budget and the request deadline. *)
  let schedule_retry ~now a =
    if a.attempt_no >= resilience.max_attempts then false
    else begin
      let backoff =
        (resilience.backoff_base_ns * (1 lsl (a.attempt_no - 1)))
        + (if resilience.backoff_jitter_ns > 0 then
             Rng.int retry_rng (resilience.backoff_jitter_ns + 1)
           else 0)
      in
      let t = now + backoff in
      if t > a.deadline then false
      else begin
        incr retries;
        if Trace.on () then begin
          Trace.emit ~ts:t (Tev.Retry { conn = a.conn; attempt = a.attempt_no + 1 });
          (* the client sat out [now, t] before resending *)
          Trace.emit ~ts:t
            (Tev.Req_backoff
               { req = a.req; attempt = a.attempt_no + 1; dur = backoff })
        end;
        (* Retries resend the pristine bytes: the fault was on the wire,
           not in the request. *)
        Pqueue.add q ~priority:t
          { a with attempt_no = a.attempt_no + 1; sent_raw = a.clean_raw; fault = None };
        true
      end
    end
  in
  (* Attribute an attempt's fault (if any) when the attempt resolves
     without reaching the service path. *)
  let account_shed_or_408 ~is_408 a =
    match a.fault with
    | Some (Faults.Truncate _ | Faults.Corrupt _) -> incr fa_malformed
    | Some (Faults.Stall _) -> if is_408 then incr fa_timeout else incr fa_absorbed
    | Some (Faults.Backend_slow _ | Faults.Backend_fail) -> incr fa_absorbed
    | Some Faults.Drop -> assert false
    | None -> ()
  in
  let process_attempt now a =
    (* Terminal-resolution marker: every request emits exactly one. *)
    let done_ev ~ts disposition =
      if Trace.on () then
        Trace.emit ~ts (Tev.Req_done { req = a.req; disposition })
    in
    prune now;
    let depth = Queue.length in_flight in
    if depth > !max_inflight then max_inflight := depth;
    if Trace.on () then begin
      Trace.emit ~ts:now (Tev.Req_enqueue { req = a.req; attempt = a.attempt_no });
      Trace.emit ~ts:now (Tev.Inflight_depth { depth })
    end;
    if depth >= resilience.queue_cap then begin
      (* Admission control: shed to 503 for the cost of the dispatch
         alone — the queue never grows past the cap. *)
      incr shed;
      let start = max now !cpu_free in
      let finish = start + model.Server.dispatch_overhead_ns in
      cpu_free := finish;
      Queue.push finish in_flight;
      if Trace.on () then begin
        Trace.emit ~ts:finish (Tev.Shed { conn = a.conn });
        Trace.emit ~ts:finish
          (Tev.Request
             {
               req = a.req;
               conn = a.conn;
               attempt = a.attempt_no;
               status = 503;
               start;
               finish;
             })
      end;
      account_shed_or_408 ~is_408:false a;
      if not (schedule_retry ~now:finish a) then begin
        incr timeouts;
        done_ev ~ts:finish "timeout"
      end
    end
    else begin
      let start = max now !cpu_free in
      if start > a.deadline then begin
        (* Deadline propagation: the deadline expired before service
           start, so answer 408 without paying service_ns. *)
        incr timeouts;
        let finish = start + model.Server.dispatch_overhead_ns in
        cpu_free := finish;
        Queue.push finish in_flight;
        if Trace.on () then
          Trace.emit ~ts:finish
            (Tev.Request
               {
                 req = a.req;
                 conn = a.conn;
                 attempt = a.attempt_no;
                 status = 408;
                 start;
                 finish;
               });
        done_ev ~ts:finish "timeout";
        account_shed_or_408 ~is_408:true a
      end
      else begin
        (* Really execute the (crash-barriered) server code path. *)
        let reply = process a.sent_raw in
        let status =
          match Http.parse_response reply with
          | Ok (resp, _) -> resp.Http.status
          | Error _ -> 500
        in
        (* Identical cost-model draws to the plain engine, so the
           zero-fault resilient run reproduces its numbers exactly. *)
        alloc_since_gc := !alloc_since_gc + model.Server.alloc_per_request;
        let gc_pause =
          if !alloc_since_gc >= model.Server.gc_threshold then begin
            alloc_since_gc := 0;
            incr gc_pauses;
            model.Server.gc_pause_ns
          end
          else 0
        in
        let noise =
          int_of_float
            (Rng.exponential rng ~mean:(float_of_int model.Server.service_ns /. 5.0))
          + (if Rng.int rng 100 = 0 then model.Server.service_ns else 0)
        in
        let extra =
          match a.fault with Some (Faults.Backend_slow d) -> d | _ -> 0
        in
        let service_part =
          match status with
          | 200 -> model.Server.service_ns + extra + noise
          | _ -> 0 (* 4xx rejected at parse; 500 fails fast *)
        in
        let cost =
          model.Server.dispatch_overhead_ns + model.Server.parse_ns + service_part
          + gc_pause
        in
        let finish = start + cost in
        cpu_free := finish;
        Queue.push finish in_flight;
        last_completion := max !last_completion finish;
        if Trace.on () then begin
          if gc_pause > 0 then
            Trace.emit ~ts:(start + gc_pause)
              (Tev.Gc_pause { start; dur = gc_pause });
          if status = 200 && extra > 0 then
            (* the Backend_slow surcharge tail [finish - extra, finish] *)
            Trace.emit ~ts:finish
              (Tev.Req_fault_slow { req = a.req; attempt = a.attempt_no; dur = extra });
          Trace.emit ~ts:finish
            (Tev.Request
               {
                 req = a.req;
                 conn = a.conn;
                 attempt = a.attempt_no;
                 status;
                 start;
                 finish;
               })
        end;
        if status = 200 then
          if finish <= a.deadline then begin
            incr completed;
            Histogram.record hist (finish - a.orig_arrival);
            done_ev ~ts:finish "ok";
            match a.fault with
            | Some (Faults.Stall _ | Faults.Backend_slow _) -> incr fa_absorbed
            | Some _ -> assert false
            | None -> ()
          end
          else begin
            (* The reply came back after the client stopped waiting. *)
            incr timeouts;
            done_ev ~ts:finish "timeout";
            match a.fault with
            | Some (Faults.Stall _ | Faults.Backend_slow _) -> incr fa_timeout
            | Some _ -> assert false
            | None -> ()
          end
        else if status = 500 then begin
          incr server_errors;
          (match a.fault with
          | Some Faults.Backend_fail -> incr fa_server_error
          | Some _ -> assert false
          | None -> ());
          if not (schedule_retry ~now:finish a) then begin
            incr timeouts;
            done_ev ~ts:finish "timeout"
          end
        end
        else begin
          (* 4xx: only damaged bytes produce these in this workload. *)
          incr malformed;
          done_ev ~ts:finish "malformed";
          match a.fault with
          | Some (Faults.Truncate _ | Faults.Corrupt _) -> incr fa_malformed
          | Some _ -> assert false
          | None -> ()
        end
      end
    end
  in
  let rec drain () =
    match Pqueue.pop q with
    | None -> ()
    | Some (now, a) ->
        (* Lifecycle markers are emitted here, at dequeue, rather than
           when the plan is built: ring order then keeps each request's
           span openings next to its other events, so an undersized
           ring truncates whole requests instead of evicting every
           arrival first.  Timestamps are still the true instants: the
           first attempt's dequeue time is arrival + wire stall. *)
        if Trace.on () && a.attempt_no = 1 then begin
          Trace.emit ~ts:a.orig_arrival
            (Tev.Req_arrival { req = a.req; conn = a.conn });
          if now > a.orig_arrival then
            Trace.emit ~ts:now
              (Tev.Req_stall { req = a.req; dur = now - a.orig_arrival })
        end;
        (match a.fault with
        | Some Faults.Drop ->
            (* The connection died on the wire; the client notices after
               its detection delay and retries. *)
            let detect = now + resilience.drop_detect_ns in
            if Trace.on () then
              Trace.emit ~ts:detect
                (Tev.Req_drop
                   {
                     req = a.req;
                     attempt = a.attempt_no;
                     dur = resilience.drop_detect_ns;
                   });
            if schedule_retry ~now:detect a then incr fa_retried
            else begin
              incr timeouts;
              incr fa_timeout;
              if Trace.on () then
                Trace.emit ~ts:detect
                  (Tev.Req_done { req = a.req; disposition = "timeout" })
            end
        | _ -> process_attempt now a);
        drain ()
  in
  drain ();
  let span_ns = max 1 !last_completion in
  let goodput = float_of_int !completed *. 1e9 /. float_of_int span_ns in
  let out =
    {
    model_name = model.Server.name;
    offered_rps = rate_rps;
    achieved_rps = goodput;
    goodput_rps = goodput;
    total_requests = List.length events;
    completed = !completed;
    errors = !timeouts + !malformed;
    timeouts = !timeouts;
    retries = !retries;
    shed = !shed;
    malformed = !malformed;
    server_errors = !server_errors;
    faults =
      {
        injected = Faults.injected_count plan;
        to_malformed = !fa_malformed;
        to_retried = !fa_retried;
        to_timeout = !fa_timeout;
        to_server_error = !fa_server_error;
        to_absorbed = !fa_absorbed;
      };
    gc_pauses = !gc_pauses;
    mean_ns = Histogram.mean hist;
    p50_ns = Histogram.value_at_percentile hist 50.0;
    p90_ns = Histogram.value_at_percentile hist 90.0;
    p99_ns = Histogram.value_at_percentile hist 99.0;
      p999_ns = Histogram.value_at_percentile hist 99.9;
      max_ns = Histogram.max_recorded hist;
    }
  in
  publish_metrics out hist;
  if Metrics.on () then
    Metrics.set_gauge
      ~labels:[ ("model", model.Server.name) ]
      "httpsim_inflight_peak" !max_inflight;
  out

let run ?(seed = 42) ?(connections = 1000) ?faults ?resilience ~model ~process
    ~rate_rps ~duration_ms () =
  match (faults, resilience) with
  | None, None -> run_plain ~seed ~connections ~model ~process ~rate_rps ~duration_ms
  | _ ->
      let rates = Option.value faults ~default:Faults.none in
      let resilience = Option.value resilience ~default:default_resilience in
      run_resilient ~seed ~connections ~rates ~resilience ~model ~process ~rate_rps
        ~duration_ms

let throughput_sweep ?seed ?connections ?faults ?resilience ~model ~process ~rates
    ~duration_ms () =
  List.map
    (fun rate_rps ->
      run ?seed ?connections ?faults ?resilience ~model ~process ~rate_rps
        ~duration_ms ())
    rates
