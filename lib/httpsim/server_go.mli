(** Go-model server: one goroutine per request.

    Goroutines are modelled as closures on a run queue with
    channel-style result delivery — the structure of [net/http]'s
    handler dispatch, minus preemption (requests here never block
    mid-handler). *)

val process_raw : string -> string
(** Never raises: a panicking handler goroutine is recovered into a 500
    (the crash barrier). *)

val process_raw_with : ?pre:(unit -> unit) -> string -> string
(** Like {!process_raw} with [pre] (the simulated service time) run
    inside the recover barrier.  {!Retrofit_core.Sched.Cancelled} and
    {!Retrofit_core.Sched.Killed} re-raise instead of recovering to a
    500: cancelled ≠ crashed. *)

val requests_handled : unit -> int
