module Sched = Retrofit_core.Sched

let handled = ref 0

let requests_handled () = !handled

(* A single-threaded GOMAXPROCS=1 world: goroutines are queued closures
   run to completion. *)
let runq : (unit -> unit) Queue.t = Queue.create ()

let go f = Queue.push f runq

let run_all () =
  while not (Queue.is_empty runq) do
    (Queue.pop runq) ()
  done

let process_raw_with ?(pre = fun () -> ()) raw =
  incr handled;
  let result = ref "" in
  go (fun () ->
      (* Crash barrier: a panicking handler goroutine recovers to a 500
         (Go's recover-in-ServeHTTP), never killing the server loop.
         But recover does not catch goroutine destruction: a Cancelled
         or chaos-Killed unwind propagates (cancelled ≠ crashed). *)
      let resp =
        match Http.parse_request raw with
        | Ok (req, _) -> (
            try
              pre ();
              Server.app_handler req
            with
            | (Sched.Cancelled | Sched.Killed) as e -> raise e
            | _ -> Server.internal_error)
        | Error e -> Http.bad_request e
      in
      result := Http.format_response resp);
  run_all ();
  !result

let process_raw raw = process_raw_with raw
