(** Supervised web-server simulation (ISSUE 7 tentpole wiring).

    Runs one of the three §6.3.4 servers at the fiber level under a
    {!Retrofit_core.Supervise} tree: sharded accept loops (transient,
    killable workers under a listener supervisor), per-connection
    {!Retrofit_core.Supervise.Nursery} scopes with one fiber per
    pipelined request, a watchdog worker that health-checks accept-loop
    heartbeats and kills wedged loops, and a graceful drain protocol
    (stop accepting, give in-flight requests a deadline, then shut the
    tree down bottom-up).

    The simulation is pure in its config: all randomness (arrival
    times, service jitter, wedge placement) comes from [seed], virtual
    time comes from a private {!Retrofit_core.Evloop}, and optional
    chaos comes from the seeded {!Retrofit_core.Sched.Chaos} policy —
    so two runs of the same config produce byte-identical summaries. *)

type config = {
  seed : int;
  connections : int;
  requests_per_conn : int;
  interarrival_ns : int;  (** mean gap between connection arrivals *)
  think_ns : int;  (** gap between pipelined requests on a connection *)
  service_jitter_ns : int;  (** uniform jitter added to each service time *)
  shards : int;  (** number of accept loops *)
  listener_strategy : Retrofit_core.Supervise.strategy;
  max_restarts : int;
  window_ns : int;  (** restart-intensity window; 0 = unbounded *)
  chaos : Retrofit_core.Sched.Chaos.t option;
  wedge_rate : float;  (** P(a connection wedges its accept loop) *)
  wedge_ns : int;  (** how long a wedged loop stops heartbeating *)
  watchdog_interval_ns : int;
  watchdog_stale_ns : int;  (** heartbeat age that gets a loop killed *)
  accept_chunk_ns : int;  (** max sleep between accept-loop heartbeats *)
  drain_after_ns : int option;  (** start graceful drain at this time *)
  drain_deadline_ns : int;  (** grace period before in-flight cancel *)
  poll_ns : int;  (** main/drain poll interval *)
}

val default_config : seed:int -> config
(** 120 connections x 6 requests, 4 shards, no chaos, no wedges, no
    drain: a healthy baseline run. *)

(** Where every request ended up.  Each of the [total] requests lands
    in exactly one of the disposition counters; [silent] counts
    accepted requests that reached the final sweep with no disposition
    at all (the invariant the chaos campaign checks is [silent = 0]). *)
type summary = {
  server : string;
  total : int;
  completed : int;  (** 2xx responses *)
  server_errors : int;  (** 5xx: the crash barrier fired *)
  client_errors : int;  (** 4xx *)
  killed : int;  (** aborted by a kill/crash before any drain *)
  cancelled_drain : int;  (** in-flight, cancelled at the drain deadline *)
  rejected_drain : int;  (** never accepted: listener was draining *)
  lost : int;  (** never accepted: the tree gave up *)
  silent : int;  (** accepted but unaccounted — must be 0 *)
  conns_aborted : int;  (** connection nurseries that failed *)
  restarts : int;
  escalations : int;
  watchdog_kills : int;
  chaos_stats : Retrofit_core.Sched.Chaos.stats option;
  outcome : string;  (** ["completed"] or ["gave_up:<path>"] *)
  duration_ns : int;  (** virtual time at exit *)
  drain_latency_ns : int;  (** drain begin -> tree down; -1 if no drain *)
  throughput_rps : float;  (** completed per virtual second *)
  p50_ns : int;  (** latency percentiles over 200s *)
  p99_ns : int;
}

val run :
  ?model:Server.model ->
  ?process:(?pre:(unit -> unit) -> string -> string) ->
  config ->
  summary
(** Run the supervised simulation.  [model] (default {!Server.mc})
    supplies the cost constants; [process] (default
    {!Server_effects.process_raw_with}) handles one raw request with
    the request's service time injected via [?pre]. *)

val run_servers : config -> summary list
(** [run] once per server: effects (mc), goroutine (go), monadic
    (lwt), in that order. *)

val summary_to_string : summary -> string
(** One deterministic line — the chaos campaign byte-compares these. *)

val accounted : summary -> int
(** Sum of all disposition counters; equals [total] on every run. *)
