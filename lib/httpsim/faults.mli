(** Deterministic fault injection for the httpsim stack.

    A fault {e plan} perturbs a {!Netsim} trace: each event is tagged
    with at most one fault, chosen by a dedicated xoshiro stream so the
    plan is a pure function of [(seed, rates, trace)] — equal seeds
    give bit-identical plans, which is what makes the degradation
    sweep (and its CI determinism check) possible.

    The taxonomy models the §6.4 failure surface:
    - {b wire damage}: truncated or corrupted request bytes (the server
      must answer 4xx, never crash);
    - {b dropped connections}: the request never arrives; the client
      notices and retries;
    - {b slow clients}: the request's arrival is stalled;
    - {b backend latency spikes}: extra service time;
    - {b transient backend failures}: the application handler raises
      mid-request ({!Server.Backend_failure}), exercising each server
      model's crash barrier. *)

type rates = {
  truncate : float;  (** probability of truncating the request bytes *)
  corrupt : float;  (** probability of corrupting one byte *)
  drop : float;  (** probability the connection is dropped *)
  stall : float;  (** probability of a slow-client stall *)
  backend_slow : float;  (** probability of a backend latency spike *)
  backend_fail : float;  (** probability of a transient backend crash *)
}

val none : rates
(** All rates zero: a plan from [none] injects nothing. *)

val default : rates
(** The default plan: ~4 % of requests faulted, spread across the
    taxonomy (see the field-by-field values in the implementation). *)

val scale : float -> rates -> rates
(** Multiply every rate; the fault-intensity axis of the degradation
    sweep.  @raise Invalid_argument on a negative factor. *)

val total : rates -> float

type fault =
  | Truncate of int  (** keep only this many leading bytes *)
  | Corrupt of int  (** overwrite the byte at this index *)
  | Drop  (** the request never reaches the server *)
  | Stall of int  (** arrival delayed by this many virtual ns *)
  | Backend_slow of int  (** service inflated by this many virtual ns *)
  | Backend_fail  (** the handler raises {!Server.Backend_failure} *)

type injected = { event : Netsim.event; fault : fault option }

val plan : seed:int -> rates:rates -> Netsim.event list -> injected list
(** Tag each event with at most one fault.  Order- and
    length-preserving; deterministic in [(seed, rates)].
    @raise Invalid_argument if any rate is negative, non-finite, or the
    rates sum past 1. *)

val injected_count : injected list -> int

val damaged_raw : string -> fault -> string
(** The bytes the server actually sees for a faulted event: a strict
    prefix for [Truncate], a control byte spliced in for [Corrupt], a
    crash-tag header for [Backend_fail], and the original bytes for the
    timing-only faults. *)

val fault_label : fault -> string
