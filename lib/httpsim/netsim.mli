(** Synthetic network workload generation.

    Models the client side of §6.3.4: [connections] open keep-alive
    connections issuing GET requests for a static page at a constant
    aggregate rate — the open-loop, constant-throughput discipline of
    wrk2, under which a slow server cannot slow the arrival process
    down (avoiding coordinated omission). *)

type event = { arrival_ns : int; conn_id : int; raw : string }

val request_for : target:string -> conn_id:int -> string
(** The raw bytes of one GET request. *)

val constant_rate :
  ?jitter_ns:int ->
  rng:Retrofit_util.Rng.t ->
  connections:int ->
  rate_rps:int ->
  duration_ms:int ->
  target:string ->
  unit ->
  event list
(** Events in non-decreasing arrival order (ties keep issue order).
    Inter-arrival time is exactly [1e9 / rate_rps] ns plus uniform
    jitter in [\[0, jitter_ns\]] (default 0) — jitter beyond one
    interval is re-sorted so the trace stays monotonic; connections are
    used round-robin. *)

val poisson_rate :
  rng:Retrofit_util.Rng.t ->
  connections:int ->
  rate_rps:int ->
  duration_ms:int ->
  target:string ->
  unit ->
  event list
(** Poisson arrivals at the given mean rate — the aggregate of many
    independent keep-alive connections, and what gives the latency
    distribution its queueing tail. *)
