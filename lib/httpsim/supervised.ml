(* The supervised web-server simulation: the three §6.3.4 servers run
   at the fiber level under a supervision tree, with per-connection
   nurseries, a watchdog health-checking the accept loops, graceful
   drain, and (optionally) the seeded chaos scheduler underneath.

   Topology:

     root (one_for_one)
     ├── listeners (sup, strategy configurable)
     │   ├── accept-0 .. accept-(shards-1)   transient, killable
     │   └── (each accept loop owns a Nursery of connection handlers,
     │        each connection handler a Nursery of request fibers)
     └── watchdog                            transient, killable

   Everything is virtual-time (one Evloop drives sleeps via Sched.run's
   idle hook) and every random draw comes from the config seed, so a
   run — including one under chaos — is a pure function of the config
   and double runs are byte-identical.

   Every request ends in exactly one disposition (the [silent] counter
   exists to prove its own zero): completed (by status class), aborted
   by a kill/crash, cancelled by the drain deadline, rejected because
   the listener was draining, or lost because the tree gave up. *)

module Rng = Retrofit_util.Rng
module Histogram = Retrofit_util.Histogram
module Sched = Retrofit_core.Sched
module Evloop = Retrofit_core.Evloop
module Sup = Retrofit_core.Supervise
module Nursery = Retrofit_core.Supervise.Nursery
module Trace = Retrofit_trace.Trace
module Tev = Retrofit_trace.Event
module Metrics = Retrofit_metrics.Metrics

type config = {
  seed : int;
  connections : int;
  requests_per_conn : int;
  interarrival_ns : int;  (** mean gap between connection arrivals *)
  think_ns : int;  (** gap between pipelined requests on a connection *)
  service_jitter_ns : int;  (** uniform jitter added to each service time *)
  shards : int;  (** number of accept loops *)
  listener_strategy : Sup.strategy;
  max_restarts : int;
  window_ns : int;  (** restart-intensity window; 0 = unbounded *)
  chaos : Sched.Chaos.t option;
  wedge_rate : float;  (** P(a connection wedges its accept loop) *)
  wedge_ns : int;  (** how long a wedged loop stops heartbeating *)
  watchdog_interval_ns : int;
  watchdog_stale_ns : int;  (** heartbeat age that gets a loop killed *)
  accept_chunk_ns : int;  (** max sleep between accept-loop heartbeats *)
  drain_after_ns : int option;  (** start graceful drain at this time *)
  drain_deadline_ns : int;  (** grace period before in-flight cancel *)
  poll_ns : int;  (** main/drain poll interval *)
}

let default_config ~seed =
  {
    seed;
    connections = 120;
    requests_per_conn = 6;
    interarrival_ns = 20_000;
    think_ns = 30_000;
    service_jitter_ns = 10_000;
    shards = 4;
    listener_strategy = Sup.One_for_one;
    max_restarts = 100;
    window_ns = 0;
    chaos = None;
    wedge_rate = 0.0;
    wedge_ns = 5_000_000;
    watchdog_interval_ns = 200_000;
    watchdog_stale_ns = 1_000_000;
    accept_chunk_ns = 100_000;
    drain_after_ns = None;
    drain_deadline_ns = 2_000_000;
    poll_ns = 50_000;
  }

(* Exactly one terminal disposition per request. *)
type cell_state =
  | Pending
  | Started
  | Done of int  (* response status *)
  | Aborted  (* killed / crashed / scope-cancelled before drain *)
  | Drained  (* cancelled by the drain deadline *)
  | Rejected  (* connection never accepted: listener was draining *)
  | Lost  (* connection never accepted: tree gave up *)

type cell = { mutable st : cell_state; mutable cost : int }

type summary = {
  server : string;
  total : int;
  completed : int;
  server_errors : int;
  client_errors : int;
  killed : int;
  cancelled_drain : int;
  rejected_drain : int;
  lost : int;
  silent : int;
  conns_aborted : int;
  restarts : int;
  escalations : int;
  watchdog_kills : int;
  chaos_stats : Sched.Chaos.stats option;
  outcome : string;
  duration_ns : int;
  drain_latency_ns : int;
  throughput_rps : float;
  p50_ns : int;
  p99_ns : int;
}

let is_terminal = function Pending | Started -> false | _ -> true

let run_server ~(model : Server.model)
    ~(process : ?pre:(unit -> unit) -> string -> string) cfg =
  if cfg.shards < 1 then invalid_arg "Supervised.run_server: shards < 1";
  let loop = Evloop.create () in
  let now () = Evloop.now loop in
  let sleep d =
    if d > 0 then Sched.suspend (fun r -> Evloop.after loop ~delay:d (fun () -> r ()))
    else Sched.yield ()
  in
  (* The whole workload plan is drawn up front from the seed, so the
     chaos rng (inside Sched) and the workload rng never interleave. *)
  let rng = Rng.create cfg.seed in
  let arrivals = Array.make cfg.connections 0 in
  let wedges = Array.make cfg.connections false in
  let t = ref 0 in
  for c = 0 to cfg.connections - 1 do
    t := !t + 1 + Rng.int rng (max 1 (2 * cfg.interarrival_ns));
    arrivals.(c) <- !t;
    wedges.(c) <- cfg.wedge_rate > 0.0 && Rng.float rng 1.0 < cfg.wedge_rate
  done;
  let cells =
    Array.init cfg.connections (fun _ ->
        Array.init cfg.requests_per_conn (fun _ ->
            {
              st = Pending;
              cost =
                model.Server.parse_ns + model.Server.service_ns
                + Rng.int rng (max 1 cfg.service_jitter_ns);
            }))
  in
  let raws =
    Array.init cfg.connections (fun c ->
        Netsim.request_for ~target:"/" ~conn_id:c)
  in
  let total = cfg.connections * cfg.requests_per_conn in
  let remaining = ref total in
  let mark cell st =
    if not (is_terminal cell.st) then begin
      cell.st <- st;
      decr remaining
    end
  in
  let hist = Histogram.create ~max_value:1_000_000_000 () in
  let accepted = Array.make cfg.connections false in
  let draining = ref false in
  let drained = ref false in
  let drain_latency = ref (-1) in
  let conns_aborted = ref 0 in
  let watchdog_kills = ref 0 in
  let outcome = ref None in
  let h_ref : Sup.handle option ref = ref None in
  (* shard c handles connections with c mod shards = shard *)
  let shard_conns =
    Array.init cfg.shards (fun s ->
        Array.of_list
          (List.filter
             (fun c -> c mod cfg.shards = s)
             (List.init cfg.connections (fun c -> c))))
  in
  let cursor = Array.init cfg.shards (fun _ -> ref 0) in
  let pending_conn = Array.init cfg.shards (fun _ -> ref None) in
  let shard_state = Array.make cfg.shards `Idle in
  let emit_drain phase =
    if Trace.on () then Trace.emit ~ts:(now ()) (Tev.Drain_phase { phase })
  in
  let request_fiber c r () =
    let cell = cells.(c).(r) in
    cell.st <- Started;
    let issue = now () in
    match process ~pre:(fun () -> sleep cell.cost) raws.(c) with
    | reply ->
        let lat = now () - issue in
        let status =
          match Http.parse_response reply with
          | Ok (resp, _) -> resp.Http.status
          | Error _ -> 500
        in
        mark cell (Done status);
        if status = 200 then Histogram.record hist lat
    | exception Sched.Cancelled ->
        mark cell (if !draining then Drained else Aborted);
        raise Sched.Cancelled
    | exception Sched.Killed ->
        mark cell Aborted;
        raise Sched.Killed
  in
  let conn_handler c () =
    match
      Nursery.run ~clock:now
        ~name:("conn-" ^ string_of_int c)
        (fun n ->
          for r = 0 to cfg.requests_per_conn - 1 do
            if r > 0 then sleep cfg.think_ns;
            Nursery.check n;
            Nursery.fork n (request_fiber c r)
          done;
          Nursery.join n)
    with
    | () -> ()
    | exception e -> (
        (* connection-level barrier: account for every request that
           will now never run, and keep the listener alive *)
        incr conns_aborted;
        Array.iter
          (fun cell ->
            if not (is_terminal cell.st) then
              mark cell (if !draining then Drained else Aborted))
          cells.(c);
        match e with Sched.Cancelled | Sched.Killed | _ -> ())
  in
  let rec wait_until target =
    let n = now () in
    if n < target && not !draining then begin
      sleep (min cfg.accept_chunk_ns (target - n));
      Sup.heartbeat ();
      wait_until target
    end
  in
  let accept_loop shard () =
    shard_state.(shard) <- `Accepting;
    Sup.heartbeat ();
    Nursery.run ~clock:now
      ~name:("accept-" ^ string_of_int shard)
      (fun n ->
        let rec next () =
          if not !draining then
            match
              match !(pending_conn.(shard)) with
              | Some c -> Some c
              | None ->
                  let cur = cursor.(shard) in
                  if !cur < Array.length shard_conns.(shard) then begin
                    let c = shard_conns.(shard).(!cur) in
                    incr cur;
                    (* remembered across a kill: a restarted loop
                       re-accepts the connection it was parked on *)
                    pending_conn.(shard) := Some c;
                    Some c
                  end
                  else None
            with
            | None -> ()
            | Some c ->
                wait_until arrivals.(c);
                if wedges.(c) && not !draining then begin
                  wedges.(c) <- false;
                  (* wedged: a long sleep with no heartbeat — the
                     watchdog's job is to notice and kill us *)
                  sleep cfg.wedge_ns
                end;
                if not !draining then begin
                  Sup.heartbeat ();
                  accepted.(c) <- true;
                  Nursery.fork n (conn_handler c);
                  pending_conn.(shard) := None;
                  next ()
                end
        in
        next ();
        shard_state.(shard) <- `Joining;
        Nursery.join n);
    shard_state.(shard) <- `Done
  in
  let watchdog () =
    let rec wd () =
      sleep cfg.watchdog_interval_ns;
      Sup.heartbeat ();
      if not !draining then begin
        (match !h_ref with
        | Some h ->
            for i = 0 to cfg.shards - 1 do
              let name = "accept-" ^ string_of_int i in
              if shard_state.(i) = `Accepting then
                match Sup.last_heartbeat h name with
                | Some beat when now () - beat > cfg.watchdog_stale_ns ->
                    incr watchdog_kills;
                    if Metrics.on () then Metrics.inc "websim_watchdog_kills_total";
                    ignore (Sup.kill h name)
                | _ -> ()
            done
        | None -> ());
        wd ()
      end
    in
    wd ()
  in
  let tree =
    Sup.supervisor ~strategy:Sup.One_for_one ~max_restarts:cfg.max_restarts
      ~window:cfg.window_ns "root"
      [
        Sup.supervisor ~strategy:cfg.listener_strategy
          ~max_restarts:cfg.max_restarts ~window:cfg.window_ns "listeners"
          (List.init cfg.shards (fun i ->
               Sup.worker ~restart:Sup.Transient ~killable:true
                 ("accept-" ^ string_of_int i)
                 (accept_loop i)));
        Sup.worker ~restart:Sup.Transient ~killable:true "watchdog" watchdog;
      ]
  in
  let in_flight () =
    let n = ref 0 in
    Array.iteri
      (fun c row ->
        if accepted.(c) then
          Array.iter (fun cell -> if not (is_terminal cell.st) then incr n) row)
      cells;
    !n
  in
  let all_terminal () = !remaining = 0 in
  let stats_restarts = ref 0 in
  let stats_escalations = ref 0 in
  Sched.run ?chaos:cfg.chaos ~clock:now
    ~idle:(fun () -> Evloop.advance_once loop)
    (fun () ->
      let h = Sup.start ~clock:now tree in
      h_ref := Some h;
      (match cfg.drain_after_ns with
      | Some t0 ->
          Sched.fork (fun () ->
              let d = t0 - now () in
              sleep d;
              if Sup.running h then begin
                draining := true;
                emit_drain "begin";
                let t_begin = now () in
                let deadline = t_begin + cfg.drain_deadline_ns in
                let rec poll () =
                  if in_flight () > 0 && now () < deadline && Sup.running h
                  then begin
                    sleep cfg.poll_ns;
                    poll ()
                  end
                in
                poll ();
                emit_drain (if in_flight () = 0 then "complete" else "deadline");
                (* graceful bottom-up teardown; anything past the
                   deadline is cancelled on the way down *)
                outcome := Some (Sup.shutdown h);
                drain_latency := now () - t_begin;
                emit_drain "done"
              end;
              drained := true)
      | None -> ());
      let rec waitloop () =
        let finished =
          match cfg.drain_after_ns with
          | Some _ -> !drained
          | None -> all_terminal () || not (Sup.running h)
        in
        if not finished then begin
          sleep cfg.poll_ns;
          waitloop ()
        end
      in
      waitloop ();
      stats_restarts := Sup.restarts h;
      stats_escalations := Sup.escalations h;
      match !outcome with
      | Some _ -> ()
      | None ->
          outcome := Some (if Sup.running h then Sup.shutdown h else Sup.wait h));
  (* Final sweep: everything not terminal gets its disposition here —
     nothing may remain silent. *)
  let silent = ref 0 in
  Array.iteri
    (fun c row ->
      Array.iter
        (fun cell ->
          match cell.st with
          | Pending | Started ->
              if not accepted.(c) then
                mark cell (if !draining then Rejected else Lost)
              else begin
                (* accepted but no disposition: a genuine silent drop *)
                incr silent;
                mark cell Aborted
              end
          | _ -> ())
        row)
    cells;
  let count f =
    Array.fold_left
      (fun acc row ->
        Array.fold_left (fun acc cell -> if f cell.st then acc + 1 else acc) acc row)
      0 cells
  in
  let completed = count (function Done s -> s >= 200 && s < 300 | _ -> false) in
  let duration_ns = max 1 (now ()) in
  let s =
    {
      server = model.Server.name;
      total;
      completed;
      server_errors = count (function Done s -> s >= 500 | _ -> false);
      client_errors = count (function Done s -> s >= 400 && s < 500 | _ -> false);
      killed = count (function Aborted -> true | _ -> false);
      cancelled_drain = count (function Drained -> true | _ -> false);
      rejected_drain = count (function Rejected -> true | _ -> false);
      lost = count (function Lost -> true | _ -> false);
      silent = !silent;
      conns_aborted = !conns_aborted;
      restarts = !stats_restarts;
      escalations = !stats_escalations;
      watchdog_kills = !watchdog_kills;
      chaos_stats =
        (match cfg.chaos with Some _ -> Sched.chaos_stats () | None -> None);
      outcome =
        (match !outcome with
        | Some Sup.Completed -> "completed"
        | Some (Sup.Gave_up p) -> "gave_up:" ^ p
        | None -> "none");
      duration_ns;
      drain_latency_ns = !drain_latency;
      throughput_rps = float_of_int completed *. 1e9 /. float_of_int duration_ns;
      p50_ns = (if Histogram.count hist = 0 then 0 else Histogram.value_at_percentile hist 50.0);
      p99_ns = (if Histogram.count hist = 0 then 0 else Histogram.value_at_percentile hist 99.0);
    }
  in
  if Metrics.on () then begin
    Metrics.inc "websim_supervised_runs_total";
    Metrics.set_gauge "websim_supervised_restarts" s.restarts;
    Metrics.set_gauge "websim_supervised_completed" s.completed;
    if s.drain_latency_ns >= 0 then
      Metrics.observe ~max_value:1_000_000_000 "websim_drain_latency_ns"
        s.drain_latency_ns
  end;
  s

let run ?(model = Server.mc) ?process cfg =
  let process =
    match process with Some p -> p | None -> Server_effects.process_raw_with
  in
  run_server ~model ~process cfg

let run_servers cfg =
  [
    run_server ~model:Server.mc ~process:Server_effects.process_raw_with cfg;
    run_server ~model:Server.go ~process:Server_go.process_raw_with cfg;
    run_server ~model:Server.lwt ~process:Server_monad.process_raw_with cfg;
  ]

let chaos_of_summary s =
  match s.chaos_stats with
  | None -> "-"
  | Some c ->
      Printf.sprintf "k%d/d%d/r%d/s%d" c.Sched.Chaos.kills c.Sched.Chaos.delays
        c.Sched.Chaos.reorders c.Sched.Chaos.spurious

let summary_to_string s =
  Printf.sprintf
    "%s: total=%d ok=%d 5xx=%d 4xx=%d killed=%d drained=%d rejected=%d lost=%d \
     silent=%d conns_aborted=%d restarts=%d escalations=%d watchdog_kills=%d \
     chaos=%s outcome=%s drain_ns=%d p50_ns=%d p99_ns=%d"
    s.server s.total s.completed s.server_errors s.client_errors s.killed
    s.cancelled_drain s.rejected_drain s.lost s.silent s.conns_aborted
    s.restarts s.escalations s.watchdog_kills (chaos_of_summary s) s.outcome
    s.drain_latency_ns s.p50_ns s.p99_ns

let accounted s =
  s.completed + s.server_errors + s.client_errors + s.killed
  + s.cancelled_drain + s.rejected_drain + s.lost
