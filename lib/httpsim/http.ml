type meth = GET | HEAD | POST | PUT | DELETE | OPTIONS | Other of string

type request = {
  meth : meth;
  target : string;
  version : string;
  headers : (string * string) list;
  body : string;
}

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

let meth_to_string = function
  | GET -> "GET"
  | HEAD -> "HEAD"
  | POST -> "POST"
  | PUT -> "PUT"
  | DELETE -> "DELETE"
  | OPTIONS -> "OPTIONS"
  | Other s -> s

let meth_of_string = function
  | "GET" -> GET
  | "HEAD" -> HEAD
  | "POST" -> POST
  | "PUT" -> PUT
  | "DELETE" -> DELETE
  | "OPTIONS" -> OPTIONS
  | s -> Other s

let header req name =
  let name = String.lowercase_ascii name in
  List.assoc_opt name req.headers

let keep_alive req =
  match (req.version, header req "connection") with
  | _, Some c when String.lowercase_ascii c = "close" -> false
  | "HTTP/1.0", Some c when String.lowercase_ascii c = "keep-alive" -> true
  | "HTTP/1.0", _ -> false
  | _, _ -> true

(* ------------------------------------------------------------------ *)
(* Parsing *)

let find_crlf s from =
  let n = String.length s in
  let rec go i = if i + 1 >= n then None else if s.[i] = '\r' && s.[i + 1] = '\n' then Some i else go (i + 1) in
  go from

let parse_headers s start =
  (* Returns (headers, offset just past the blank line) *)
  let rec go acc pos =
    match find_crlf s pos with
    | None -> Error "incomplete headers"
    | Some eol when eol = pos -> Ok (List.rev acc, pos + 2)
    | Some eol -> (
        let line = String.sub s pos (eol - pos) in
        match String.index_opt line ':' with
        | None -> Error (Printf.sprintf "malformed header %S" line)
        | Some colon ->
            let name = String.lowercase_ascii (String.trim (String.sub line 0 colon)) in
            let value =
              String.trim (String.sub line (colon + 1) (String.length line - colon - 1))
            in
            if name = "" then Error "empty header name"
            else go ((name, value) :: acc) (eol + 2))
  in
  go [] start

let split_on_spaces line =
  line |> String.split_on_char ' ' |> List.filter (fun s -> s <> "")

let content_length headers =
  match List.assoc_opt "content-length" headers with
  | None -> Ok 0
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n >= 0 -> Ok n
      | _ -> Error (Printf.sprintf "bad content-length %S" v))

let parse_request s =
  match find_crlf s 0 with
  | None -> Error "incomplete request line"
  | Some eol -> (
      let line = String.sub s 0 eol in
      match split_on_spaces line with
      | [ m; target; version ] -> (
          if version <> "HTTP/1.1" && version <> "HTTP/1.0" then
            Error (Printf.sprintf "unsupported version %S" version)
          else begin
            match parse_headers s (eol + 2) with
            | Error e -> Error e
            | Ok (headers, body_start) -> (
                match content_length headers with
                | Error e -> Error e
                | Ok len ->
                    if String.length s < body_start + len then
                      Error "incomplete body"
                    else begin
                      let body = String.sub s body_start len in
                      Ok
                        ( { meth = meth_of_string m; target; version; headers; body },
                          body_start + len )
                    end)
          end)
      | _ -> Error (Printf.sprintf "malformed request line %S" line))

let format_headers buf headers =
  List.iter
    (fun (name, value) ->
      Buffer.add_string buf name;
      Buffer.add_string buf ": ";
      Buffer.add_string buf value;
      Buffer.add_string buf "\r\n")
    headers

let format_request req =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (meth_to_string req.meth);
  Buffer.add_char buf ' ';
  Buffer.add_string buf req.target;
  Buffer.add_char buf ' ';
  Buffer.add_string buf req.version;
  Buffer.add_string buf "\r\n";
  (* Header names are case-insensitive (RFC 7230 §3.2): a caller header
     spelled "Content-Length" must suppress the synthesised one. *)
  let has_content_length =
    List.exists
      (fun (name, _) -> String.lowercase_ascii name = "content-length")
      req.headers
  in
  let headers =
    if has_content_length || req.body = "" then req.headers
    else req.headers @ [ ("content-length", string_of_int (String.length req.body)) ]
  in
  format_headers buf headers;
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf req.body;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Responses *)

let reason_phrase = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 204 -> "No Content"
  | 301 -> "Moved Permanently"
  | 302 -> "Found"
  | 304 -> "Not Modified"
  | 400 -> "Bad Request"
  | 403 -> "Forbidden"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Payload Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | n -> Printf.sprintf "Status %d" n

let response ?(headers = []) ~status body =
  {
    status;
    reason = reason_phrase status;
    resp_headers = headers @ [ ("content-length", string_of_int (String.length body)) ];
    resp_body = body;
  }

let ok body = response ~status:200 body

let not_found = response ~status:404 "not found"

let bad_request msg = response ~status:400 msg

let format_response r =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "HTTP/1.1 ";
  Buffer.add_string buf (string_of_int r.status);
  Buffer.add_char buf ' ';
  Buffer.add_string buf r.reason;
  Buffer.add_string buf "\r\n";
  format_headers buf r.resp_headers;
  Buffer.add_string buf "\r\n";
  Buffer.add_string buf r.resp_body;
  Buffer.contents buf

let parse_response s =
  match find_crlf s 0 with
  | None -> Error "incomplete status line"
  | Some eol -> (
      let line = String.sub s 0 eol in
      match split_on_spaces line with
      | version :: status :: reason_words when version = "HTTP/1.1" || version = "HTTP/1.0"
        -> (
          match int_of_string_opt status with
          | None -> Error (Printf.sprintf "bad status %S" status)
          | Some status -> (
              match parse_headers s (eol + 2) with
              | Error e -> Error e
              | Ok (headers, body_start) -> (
                  match content_length headers with
                  | Error e -> Error e
                  | Ok len ->
                      if String.length s < body_start + len then Error "incomplete body"
                      else begin
                        Ok
                          ( {
                              status;
                              reason = String.concat " " reason_words;
                              resp_headers = headers;
                              resp_body = String.sub s body_start len;
                            },
                            body_start + len )
                      end)))
      | _ -> Error (Printf.sprintf "malformed status line %S" line))
