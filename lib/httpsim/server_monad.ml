module L = Retrofit_monad.Lwtlike
module Sched = Retrofit_core.Sched

let handled = ref 0

let requests_handled () = !handled

let process_raw_with ?(pre = fun () -> ()) raw =
  incr handled;
  let open L in
  run
    (* Crash barrier: a handler exception fails the promise chain and is
       recovered into a 500 — it never escapes [run].  Except a
       Cancelled/Killed unwind, which the recovery callback re-raises
       out of the promise graph (cancelled ≠ crashed). *)
    (catch
       (fun () ->
         pause () >>= fun () ->
         pre ();
         (match Http.parse_request raw with
         | Ok (req, _) -> return (Server.app_handler req)
         | Error e -> return (Http.bad_request e))
         >>= fun resp -> return (Http.format_response resp))
       (fun e ->
         match e with
         | Sched.Cancelled | Sched.Killed -> raise e
         | _ -> return (Http.format_response Server.internal_error)))

let process_raw raw = process_raw_with raw
