module Sched = Retrofit_core.Sched

type _ Effect.t += Io_ready : unit Effect.t

let handled = ref 0

let requests_handled () = !handled

(* The per-request thread body, in direct style: wait for the socket,
   parse, handle, serialise.  [pre] runs between the socket wait and
   the parse: the supervised simulation injects the request's service
   time there as a cooperative sleep, so the barrier below guards real
   suspension points. *)
let request_thread ~pre raw () =
  Effect.perform Io_ready;
  pre ();
  match Http.parse_request raw with
  | Ok (req, _) -> Http.format_response (Server.app_handler req)
  | Error e -> Http.format_response (Http.bad_request e)

let process_raw_with ?(pre = fun () -> ()) raw =
  incr handled;
  Effect.Deep.match_with (request_thread ~pre raw) ()
    {
      Effect.Deep.retc = Fun.id;
      (* Crash barrier: an exception escaping the request fiber becomes
         a 500 at the handler boundary — it never aborts the server.
         Asynchronous terminations are not handler crashes: a Cancelled
         or chaos-Killed unwind passes through to whoever initiated it
         (cancelled ≠ crashed — it must not count as a 500). *)
      exnc =
        (fun e ->
          match e with
          | Sched.Cancelled | Sched.Killed -> raise e
          | _ -> Http.format_response Server.internal_error);
      effc =
        (fun (type c) (eff : c Effect.t) ->
          match eff with
          | Io_ready ->
              (* In the simulation the bytes have already arrived, so the
                 scheduler resumes the fiber immediately. *)
              Some (fun (k : (c, string) Effect.Deep.continuation) ->
                  Effect.Deep.continue k ())
          | _ -> None);
    }

let process_raw raw = process_raw_with raw
