(** Monadic callback server (the lwt baseline of §6.3.4).

    The same request logic as {!Server_effects} but as a promise chain:
    parsing and handling are [bind]-sequenced callbacks with a [pause]
    where the socket wait would be.  There is no per-request stack —
    the property the paper contrasts with the effect version. *)

val process_raw : string -> string
(** Never raises: a handler exception fails the promise and is caught
    into a 500 (the crash barrier, [L.catch]). *)

val process_raw_with : ?pre:(unit -> unit) -> string -> string
(** Like {!process_raw} with [pre] (the simulated service time) run
    inside the promise chain.  {!Retrofit_core.Sched.Cancelled} and
    {!Retrofit_core.Sched.Killed} re-raise out of the recovery callback
    instead of resolving to a 500: cancelled ≠ crashed. *)

val requests_handled : unit -> int
