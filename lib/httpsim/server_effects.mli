(** Thread-per-request server on effect handlers (the MC server).

    Every request runs in its own fiber, written in direct style: it
    performs an I/O-readiness effect where a real server would block on
    the socket, parses the request, runs the application handler and
    serialises the response.  The paper's point — a backtrace exists per
    request because each has a stack — is demonstrated by
    {!request_backtrace_demo} in the examples. *)

type _ Effect.t += Io_ready : unit Effect.t

val process_raw : string -> string
(** Handle one raw request through the fiber machinery.  Never raises:
    a handler exception is stopped at the fiber boundary (the handler's
    [exnc] crash barrier) and answered with a 500. *)

val process_raw_with : ?pre:(unit -> unit) -> string -> string
(** Like {!process_raw}, but runs [pre] inside the crash barrier,
    between the socket wait and the parse — the supervised simulation
    injects the request's service time there as a cooperative sleep.
    The barrier distinguishes crashes from asynchronous terminations:
    an exception escaping the handler still becomes a 500, but a
    {!Retrofit_core.Sched.Cancelled} or {!Retrofit_core.Sched.Killed}
    unwind re-raises (cancelled ≠ crashed). *)

val requests_handled : unit -> int
(** Total requests processed since program start. *)
